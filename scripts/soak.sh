#!/usr/bin/env bash
# Streaming kill/restore soak: the long-run resilience acceptance test.
#
# For each fault rate, this script
#   1. synthesizes a reproducible chaos capture (capture_generator --seed
#      --fault-rate, so any failure replays from the command line),
#   2. runs the batch reference (longrun_monitor without a checkpoint:
#      streaming with no restore is exactly the batch analyzer),
#   3. streams the same capture while repeatedly kill-9-ing the monitor
#      (--kill-after exits with no shutdown checkpoint, like a crash) and
#      restarting it from the last periodic checkpoint,
#   4. asserts the final headline metrics from the kill/restore run equal
#      the batch run. Checkpoint resume replays from an exact packet
#      cursor, so equality — stronger than the documented chaos drift
#      bounds (stations +/-1, flows +/-10%, same clusters) — must hold.
#
# A second phase soaks the live-ingest daemon (iec104d): a fleet of
# concurrent tapstream connections (UNCHARTED_SOAK_CONNS, default 500;
# the nightly CI job runs 10000), the daemon SIGKILL'd mid-ingest and
# restored from its checkpoint, and the final report byte-compared with
# an uninterrupted run at --threads 1 and 8 — plus a hostile fleet that
# must exit 3 with zero benign flows dropped, and a peak-RSS bound
# (UNCHARTED_SOAK_RSS_MB, default 1024).
#
# A third phase soaks the daemon's own syscall surface: iec104d is run
# with --sysfault-rate/--sysfault-seed/--sysfault-mode compound (seeded
# OS fault injection on read/write/accept/poll plus ENOSPC/EIO/torn
# rename on the checkpoint writer), SIGKILL'd mid-ingest, restored from
# whatever checkpoint survived the storage chaos, and the final report
# byte-compared with a fault-free run. Pinned seeds
# (UNCHARTED_SOAK_SYSFAULT_SEEDS, default "1 2 3") keep failures
# replayable from the command line.
#
# An opt-in fourth phase (UNCHARTED_SOAK_STALL=1) wedges the daemon's
# checkpoint writer and asserts the health watchdog climbs its recovery
# ladder: restart-checkpoint twice, then self-terminate with exit 4 while
# the health query socket keeps answering.
#
# Usage: scripts/soak.sh [--duration SECONDS] [--rates "0 0.01 0.05 0.20"]
#                        [--seed N] [--build-dir DIR] [--kill-step PACKETS]
#                        [--daemon-conns N] [--daemon-only] [--skip-daemon]
#                        [--skip-sysfault]
set -euo pipefail
cd "$(dirname "$0")/.."

duration=600
rates="0 0.01 0.05 0.20"
seed=7
build_dir=build-release
kill_step=20000
daemon_conns="${UNCHARTED_SOAK_CONNS:-500}"
rss_bound_mb="${UNCHARTED_SOAK_RSS_MB:-1024}"
daemon_only=0
skip_daemon=0
skip_sysfault=0
sysfault_rate="${UNCHARTED_SOAK_SYSFAULT_RATE:-0.02}"
sysfault_seeds="${UNCHARTED_SOAK_SYSFAULT_SEEDS:-1 2 3}"
soak_stall="${UNCHARTED_SOAK_STALL:-0}"
stall_poll="${UNCHARTED_SOAK_STALL_POLL:-0.1}"
stall_deadline="${UNCHARTED_SOAK_STALL_DEADLINE:-1}"

while [ $# -gt 0 ]; do
  case "$1" in
    --duration)     duration="$2"; shift 2 ;;
    --rates)        rates="$2"; shift 2 ;;
    --seed)         seed="$2"; shift 2 ;;
    --build-dir)    build_dir="$2"; shift 2 ;;
    --kill-step)    kill_step="$2"; shift 2 ;;
    --daemon-conns) daemon_conns="$2"; shift 2 ;;
    --daemon-only)  daemon_only=1; shift ;;
    --skip-daemon)  skip_daemon=1; shift ;;
    --skip-sysfault) skip_sysfault=1; shift ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

gen="$build_dir/examples/capture_generator"
mon="$build_dir/examples/longrun_monitor"
daemon_bin="$build_dir/examples/iec104d"
fleet_bin="$build_dir/examples/iec104_fleet"
needed="$daemon_bin $fleet_bin"
[ "$daemon_only" -eq 1 ] || needed="$gen $mon $needed"
[ "$skip_daemon" -eq 1 ] && needed="$gen $mon"
for bin in $needed; do
  if [ ! -x "$bin" ]; then
    echo "missing $bin — build the examples first (cmake --preset release)" >&2
    exit 2
  fi
done

# UNCHARTED_SOAK_WORKDIR keeps every daemon stderr log, health JSON and
# report in a caller-chosen directory that survives the run — CI uploads
# it as a failure artifact. Unset, a throwaway tmpdir is cleaned on exit.
if [ -n "${UNCHARTED_SOAK_WORKDIR:-}" ]; then
  workdir="$UNCHARTED_SOAK_WORKDIR"
  mkdir -p "$workdir"
else
  workdir="$(mktemp -d "${TMPDIR:-/tmp}/soak.XXXXXX")"
  trap 'rm -rf "$workdir"' EXIT
fi

failures=0
[ "$daemon_only" -eq 1 ] && rates=""
for rate in $rates; do
  echo "==> soak @ fault rate $rate (duration ${duration}s, seed $seed)"
  pcap="$workdir/soak_$rate.pcap"
  ckpt="$workdir/soak_$rate.ckpt"
  "$gen" --year 1 --duration "$duration" --seed "$seed" \
         --fault-rate "$rate" --fault-seed "$seed" --out "$pcap" >/dev/null

  # Exit 2 (degraded) and 3 (hostile) still mean "analysis completed" —
  # fault-injected captures are degraded by construction.
  rc=0
  batch="$("$mon" --pcap "$pcap" --quiet)" || rc=$?
  if [ "$rc" -ne 0 ] && [ "$rc" -ne 2 ] && [ "$rc" -ne 3 ]; then
    echo "    FAIL: batch monitor exited $rc at rate $rate" >&2
    failures=$((failures + 1))
    continue
  fi
  echo "    batch:    $batch"

  # Kill/restore loop: each incarnation dies $kill_step packets further
  # in, until one survives to the end of the capture.
  kill_after=$kill_step
  restarts=0
  while :; do
    rc=0
    out="$("$mon" --pcap "$pcap" --checkpoint "$ckpt" --interval 2000 \
                  --kill-after "$kill_after" --quiet)" || rc=$?
    if [ "$rc" -eq 0 ] || [ "$rc" -eq 2 ] || [ "$rc" -eq 3 ]; then
      streamed="$(printf '%s\n' "$out" | tail -n 1)"
      break
    elif [ "$rc" -eq 42 ]; then
      restarts=$((restarts + 1))
      kill_after=$((kill_after + kill_step))
    else
      echo "    FAIL: monitor crashed for real (exit $rc) at rate $rate" >&2
      printf '%s\n' "$out" >&2
      failures=$((failures + 1))
      streamed=""
      break
    fi
  done
  [ -n "$streamed" ] || continue
  echo "    streamed: $streamed  (survived $restarts kills)"

  if [ "$streamed" != "$batch" ]; then
    echo "    FAIL: kill/restore run diverged from batch at rate $rate" >&2
    failures=$((failures + 1))
  fi
done

# ---------------------------------------------------------------------------
# Daemon soak: live ingest under kill/restore, overload, and hostile peers
# ---------------------------------------------------------------------------

# Polls a daemon's captured stdout for its "listening on ADDR:PORT" line.
wait_for_port() {
  local out_file="$1" p=""
  for _ in $(seq 1 100); do
    p="$(sed -n 's/^listening on .*:\([0-9][0-9]*\)$/\1/p' "$out_file" | head -n 1)"
    if [ -n "$p" ]; then echo "$p"; return 0; fi
    sleep 0.1
  done
  return 1
}

# Tracks a process's peak VmRSS (KiB) into a file until it exits.
sample_rss() {
  local pid="$1" out_file="$2" max=0 cur
  while kill -0 "$pid" 2>/dev/null; do
    cur="$(awk '/^VmRSS:/{print $2}' "/proc/$pid/status" 2>/dev/null || true)"
    if [ -n "$cur" ] && [ "$cur" -gt "$max" ]; then max="$cur"; fi
    echo "$max" >"$out_file"
    sleep 0.2
  done
}

check_rss() {
  local rss_file="$1" what="$2"
  local kib
  kib="$(cat "$rss_file" 2>/dev/null || echo 0)"
  echo "    peak RSS ($what): $((kib / 1024)) MiB (bound ${rss_bound_mb} MiB)"
  if [ "$((kib / 1024))" -gt "$rss_bound_mb" ]; then
    echo "    FAIL: $what peak RSS exceeded ${rss_bound_mb} MiB" >&2
    failures=$((failures + 1))
  fi
}

daemon_soak() {
  ulimit -n 65536 2>/dev/null || true
  local dur=10

  # Probe the deterministic fleet shape (connection refused on the discard
  # port fails fast; only the header line matters).
  local probe base_streams
  probe="$("$fleet_bin" --connect 127.0.0.1:9 --year 1 --duration "$dur" \
             --seed "$seed" --retry-for 0 2>&1 || true)"
  base_streams="$(printf '%s\n' "$probe" |
                  sed -n 's/^fleet: \([0-9][0-9]*\) streams.*/\1/p')"
  if [ -z "$base_streams" ] || [ "$base_streams" -eq 0 ]; then
    echo "    FAIL: cannot probe fleet shape" >&2
    failures=$((failures + 1))
    return
  fi
  local clones=$(( (daemon_conns + base_streams - 1) / base_streams ))
  [ "$clones" -ge 1 ] || clones=1
  probe="$("$fleet_bin" --connect 127.0.0.1:9 --year 1 --duration "$dur" \
             --seed "$seed" --clones "$clones" --retry-for 0 2>&1 || true)"
  local streams frames
  streams="$(printf '%s\n' "$probe" |
             sed -n 's/^fleet: \([0-9][0-9]*\) streams.*/\1/p')"
  frames="$(printf '%s\n' "$probe" |
            sed -n 's/^fleet: .*, \([0-9][0-9]*\) frames$/\1/p')"
  echo "==> daemon soak: $streams concurrent streams ($clones clones), $frames frames"

  local threads
  for threads in 1 8; do
    echo "==> daemon kill/restore equivalence @ --threads $threads"
    local ref="$workdir/daemon_ref_t$threads.json"
    local killed="$workdir/daemon_killed_t$threads.json"
    local dckpt="$workdir/daemon_t$threads.ckpt"
    local port rc

    # Uninterrupted reference run.
    : >"$workdir/dref.out"
    "$daemon_bin" --port 0 --threads "$threads" --expect-streams "$streams" \
        --drain-when-done --run-for 900 --report "$ref" --quiet \
        >"$workdir/dref.out" 2>&1 &
    local dref=$!
    port="$(wait_for_port "$workdir/dref.out")" || {
      echo "    FAIL: reference daemon never listened" >&2
      failures=$((failures + 1)); kill "$dref" 2>/dev/null || true; continue
    }
    sample_rss "$dref" "$workdir/rss_ref" &
    local rss_watch=$!
    "$fleet_bin" --connect "127.0.0.1:$port" --year 1 --duration "$dur" \
        --seed "$seed" --clones "$clones" --quiet || {
      echo "    FAIL: reference fleet dropped benign flows" >&2
      failures=$((failures + 1))
    }
    rc=0; wait "$dref" || rc=$?
    wait "$rss_watch" 2>/dev/null || true
    if [ "$rc" -ne 0 ]; then
      echo "    FAIL: reference daemon exited $rc (want 0)" >&2
      failures=$((failures + 1)); continue
    fi
    check_rss "$workdir/rss_ref" "reference daemon t$threads"

    # Killed + restored run against a lingering fleet on the same port.
    rm -f "$dckpt" "$dckpt.1"
    : >"$workdir/dkill.out"
    "$daemon_bin" --port 0 --threads "$threads" --expect-streams "$streams" \
        --checkpoint "$dckpt" --interval 0.2 --run-for 900 \
        --kill-after-frames $((frames / 3)) --quiet \
        >"$workdir/dkill.out" 2>&1 &
    local d1=$!
    port="$(wait_for_port "$workdir/dkill.out")" || {
      echo "    FAIL: daemon (pre-kill) never listened" >&2
      failures=$((failures + 1)); kill "$d1" 2>/dev/null || true; continue
    }
    "$fleet_bin" --connect "127.0.0.1:$port" --year 1 --duration "$dur" \
        --seed "$seed" --clones "$clones" --linger --quiet \
        >/dev/null 2>&1 &
    local fpid=$!
    sample_rss "$d1" "$workdir/rss_d1" &
    rss_watch=$!
    rc=0; wait "$d1" || rc=$?
    wait "$rss_watch" 2>/dev/null || true
    if [ "$rc" -ne 42 ]; then
      echo "    FAIL: daemon did not simulate the crash (exit $rc, want 42)" >&2
      failures=$((failures + 1))
      kill -TERM "$fpid" 2>/dev/null || true; wait "$fpid" 2>/dev/null || true
      continue
    fi
    check_rss "$workdir/rss_d1" "killed daemon t$threads"

    "$daemon_bin" --port "$port" --threads "$threads" \
        --expect-streams "$streams" --checkpoint "$dckpt" --restore \
        --drain-when-done --run-for 900 --report "$killed" --quiet \
        >"$workdir/drestore.out" 2>&1 &
    local d2=$!
    sample_rss "$d2" "$workdir/rss_d2" &
    rss_watch=$!
    rc=0; wait "$d2" || rc=$?
    wait "$rss_watch" 2>/dev/null || true
    if [ "$rc" -ne 0 ]; then
      echo "    FAIL: restored daemon exited $rc (want 0)" >&2
      cat "$workdir/drestore.out" >&2
      failures=$((failures + 1))
      kill -TERM "$fpid" 2>/dev/null || true; wait "$fpid" 2>/dev/null || true
      continue
    fi
    check_rss "$workdir/rss_d2" "restored daemon t$threads"

    # Zero dropped benign flows across the kill: the lingering fleet must
    # still report every benign stream acknowledged.
    kill -TERM "$fpid" 2>/dev/null || true
    rc=0; wait "$fpid" || rc=$?
    if [ "$rc" -ne 0 ]; then
      echo "    FAIL: fleet dropped benign flows across the kill (exit $rc)" >&2
      failures=$((failures + 1)); continue
    fi

    if cmp -s "$ref" "$killed"; then
      echo "    kill/restore report == uninterrupted report (--threads $threads)"
    else
      echo "    FAIL: restored report diverged at --threads $threads" >&2
      failures=$((failures + 1))
    fi
  done

  # Hostile fleet: content attacks, garbage hellos, slow-loris dribbles.
  # Both binaries follow the uniform exit ladder: the daemon must exit 3
  # (hostile traffic analyzed) and the fleet must exit 3 too (hostile
  # modes scripted) — benign losslessness is asserted from its stats line
  # (failed=0), not its exit code. Garbage peers never say hello, so they
  # are not counted in --expect-streams.
  echo "==> daemon hostile fleet (content=2 garbage=2 slow-loris=2)"
  local hn hexpect port rc fout
  hn="$("$fleet_bin" --connect 127.0.0.1:9 --year 1 --duration "$dur" \
          --seed "$seed" --hostile-content 2 --garbage 2 --slow-loris 2 \
          --retry-for 0 2>&1 || true)"
  hn="$(printf '%s\n' "$hn" | sed -n 's/^fleet: \([0-9][0-9]*\) streams.*/\1/p')"
  hexpect=$((hn - 2))
  : >"$workdir/dhost.out"
  "$daemon_bin" --port 0 --threads 8 --expect-streams "$hexpect" \
      --drain-when-done --run-for 120 --handshake-timeout 2 --read-timeout 2 \
      --idle-timeout 5 --report "$workdir/hostile.json" --quiet \
      >"$workdir/dhost.out" 2>&1 &
  local dh=$!
  port="$(wait_for_port "$workdir/dhost.out")" || {
    echo "    FAIL: hostile-phase daemon never listened" >&2
    failures=$((failures + 1)); kill "$dh" 2>/dev/null || true; return
  }
  rc=0
  fout="$("$fleet_bin" --connect "127.0.0.1:$port" --year 1 --duration "$dur" \
      --seed "$seed" --hostile-content 2 --garbage 2 --slow-loris 2 \
      2>&1)" || rc=$?
  if [ "$rc" -ne 3 ]; then
    echo "    FAIL: hostile-phase fleet exit $rc (want 3: hostile modes scripted)" >&2
    failures=$((failures + 1))
  fi
  if ! printf '%s\n' "$fout" | grep -q 'failed=0$'; then
    echo "    FAIL: hostile-phase fleet dropped benign flows" >&2
    printf '%s\n' "$fout" >&2
    failures=$((failures + 1))
  fi
  rc=0; wait "$dh" || rc=$?
  if [ "$rc" -ne 3 ]; then
    echo "    FAIL: daemon exit $rc under hostile fleet (want 3)" >&2
    failures=$((failures + 1))
  else
    echo "    hostile fleet flagged (exit 3 both sides), zero benign flows dropped"
  fi
}

# ---------------------------------------------------------------------------
# Stall soak: a wedged checkpoint writer must climb the recovery ladder
# (opt-in: UNCHARTED_SOAK_STALL=1 — the gtest chaos suite covers the stall
# classes deterministically; this phase proves the shipped binary's knobs)
# ---------------------------------------------------------------------------

stall_soak() {
  echo "==> stall soak: wedged checkpoint writer (restart ×2 -> exit 4)"
  local sckpt="$workdir/stall.ckpt" port rc
  : >"$workdir/dstall.out"
  "$daemon_bin" --port 0 --threads 8 --checkpoint "$sckpt" --interval 0.1 \
      --stall-checkpoint --watchdog-poll "$stall_poll" \
      --watchdog-checkpoint "$stall_deadline" --run-for 120 \
      >"$workdir/dstall.out" 2>&1 &
  local d=$!
  port="$(wait_for_port "$workdir/dstall.out")" || {
    echo "    FAIL: stall-phase daemon never listened" >&2
    failures=$((failures + 1)); kill "$d" 2>/dev/null || true; return
  }
  # The health endpoint must answer while the daemon is stalled.
  if ! "$fleet_bin" --connect "127.0.0.1:$port" --health \
        >"$workdir/stall_health.json" 2>/dev/null; then
    echo "    FAIL: health query refused during the stall" >&2
    failures=$((failures + 1))
  fi
  rc=0; wait "$d" || rc=$?
  if [ "$rc" -ne 4 ]; then
    echo "    FAIL: stalled daemon exited $rc (want 4: supervisor restart)" >&2
    cat "$workdir/dstall.out" >&2
    failures=$((failures + 1)); return
  fi
  if ! grep -q 'restart-checkpoint' "$workdir/dstall.out"; then
    echo "    FAIL: no restart-checkpoint rung in the recovery ledger" >&2
    failures=$((failures + 1)); return
  fi
  echo "    ladder climbed: restart-checkpoint ×2 -> self-terminate (exit 4)"
}

# ---------------------------------------------------------------------------
# Sysfault soak: the daemon attacking its own syscalls (compound chaos)
# ---------------------------------------------------------------------------

sysfault_soak() {
  local dur=10 threads=8

  # Probe the deterministic fleet shape (same trick as daemon_soak; a
  # single clone keeps this phase short — the gtest chaos soak covers the
  # seed x thread matrix, this phase proves the shipped binary's knobs).
  local probe streams frames
  probe="$("$fleet_bin" --connect 127.0.0.1:9 --year 1 --duration "$dur" \
             --seed "$seed" --retry-for 0 2>&1 || true)"
  streams="$(printf '%s\n' "$probe" |
             sed -n 's/^fleet: \([0-9][0-9]*\) streams.*/\1/p')"
  frames="$(printf '%s\n' "$probe" |
            sed -n 's/^fleet: .*, \([0-9][0-9]*\) frames$/\1/p')"
  if [ -z "$streams" ] || [ "$streams" -eq 0 ]; then
    echo "    FAIL: cannot probe fleet shape for the sysfault phase" >&2
    failures=$((failures + 1))
    return
  fi
  echo "==> sysfault soak: $streams streams, $frames frames," \
       "compound rate $sysfault_rate, seeds {$sysfault_seeds}"

  # Fault-free reference report.
  local sref="$workdir/sysfault_ref.json" port rc
  : >"$workdir/sref.out"
  "$daemon_bin" --port 0 --threads "$threads" --expect-streams "$streams" \
      --drain-when-done --run-for 900 --report "$sref" --quiet \
      >"$workdir/sref.out" 2>&1 &
  local dref=$!
  port="$(wait_for_port "$workdir/sref.out")" || {
    echo "    FAIL: sysfault reference daemon never listened" >&2
    failures=$((failures + 1)); kill "$dref" 2>/dev/null || true; return
  }
  "$fleet_bin" --connect "127.0.0.1:$port" --year 1 --duration "$dur" \
      --seed "$seed" --quiet || {
    echo "    FAIL: sysfault reference fleet dropped benign flows" >&2
    failures=$((failures + 1))
  }
  rc=0; wait "$dref" || rc=$?
  if [ "$rc" -ne 0 ]; then
    echo "    FAIL: sysfault reference daemon exited $rc (want 0)" >&2
    failures=$((failures + 1)); return
  fi

  local sfseed
  for sfseed in $sysfault_seeds; do
    echo "==> sysfault kill/restore @ seed $sfseed (rate $sysfault_rate, compound)"
    local sckpt="$workdir/sysfault_s$sfseed.ckpt"
    local sout="$workdir/sysfault_s$sfseed.json"
    rm -f "$sckpt" "$sckpt.1"

    # Pre-kill incarnation: ingest a third of the capture under fire.
    # Periodic checkpoints race the storage faults; any generation that
    # lands whole is enough for the restore.
    : >"$workdir/skill.out"
    "$daemon_bin" --port 0 --threads "$threads" --expect-streams "$streams" \
        --checkpoint "$sckpt" --interval 0.2 --run-for 900 \
        --kill-after-frames $((frames / 3)) \
        --sysfault-rate "$sysfault_rate" --sysfault-seed "$sfseed" \
        --sysfault-mode compound --quiet \
        >"$workdir/skill.out" 2>&1 &
    local d1=$!
    port="$(wait_for_port "$workdir/skill.out")" || {
      echo "    FAIL: sysfault daemon (pre-kill) never listened" >&2
      failures=$((failures + 1)); kill "$d1" 2>/dev/null || true; continue
    }
    "$fleet_bin" --connect "127.0.0.1:$port" --year 1 --duration "$dur" \
        --seed "$seed" --linger --retry-for 300 --quiet \
        >/dev/null 2>&1 &
    local fpid=$!
    rc=0; wait "$d1" || rc=$?
    if [ "$rc" -ne 42 ]; then
      echo "    FAIL: sysfault daemon did not simulate the crash (exit $rc, want 42)" >&2
      cat "$workdir/skill.out" >&2
      failures=$((failures + 1))
      kill -TERM "$fpid" 2>/dev/null || true; wait "$fpid" 2>/dev/null || true
      continue
    fi

    # Restore on the same port, still under fire, and drain to a report.
    rc=0
    "$daemon_bin" --port "$port" --threads "$threads" \
        --expect-streams "$streams" --checkpoint "$sckpt" --restore \
        --drain-when-done --run-for 900 --report "$sout" \
        --sysfault-rate "$sysfault_rate" --sysfault-seed "$sfseed" \
        --sysfault-mode compound --quiet \
        >"$workdir/srestore.out" 2>&1 || rc=$?
    if [ "$rc" -ne 0 ]; then
      echo "    FAIL: restored sysfault daemon exited $rc (want 0)" >&2
      cat "$workdir/srestore.out" >&2
      failures=$((failures + 1))
      kill -TERM "$fpid" 2>/dev/null || true; wait "$fpid" 2>/dev/null || true
      continue
    fi

    kill -TERM "$fpid" 2>/dev/null || true
    rc=0; wait "$fpid" || rc=$?
    if [ "$rc" -ne 0 ]; then
      echo "    FAIL: fleet dropped benign flows under syscall chaos (exit $rc)" >&2
      failures=$((failures + 1)); continue
    fi

    # The fault ledger (stderr summary) proves the chaos actually fired.
    local ledger
    ledger="$(sed -n 's/^sysfault: //p' "$workdir/srestore.out" | head -n 1)"
    echo "    faults injected: ${ledger:-none reported}"
    if [ -z "$ledger" ] || [ "$ledger" = "clean" ]; then
      echo "    FAIL: sysfault run injected nothing at seed $sfseed" >&2
      failures=$((failures + 1))
    fi

    if cmp -s "$sref" "$sout"; then
      echo "    sysfault kill/restore report == fault-free report (seed $sfseed)"
    else
      echo "    FAIL: report diverged under syscall chaos at seed $sfseed" >&2
      failures=$((failures + 1))
    fi
  done
}

if [ "$skip_daemon" -eq 0 ]; then
  daemon_soak
fi
if [ "$skip_daemon" -eq 0 ] && [ "$skip_sysfault" -eq 0 ]; then
  sysfault_soak
fi
if [ "$skip_daemon" -eq 0 ] && [ "$soak_stall" = "1" ]; then
  stall_soak
fi

if [ "$failures" -gt 0 ]; then
  echo "==> soak FAILED ($failures phase(s) diverged or crashed)" >&2
  exit 1
fi
echo "==> soak passed: kill/restore == batch at every fault rate; daemon bounded, lossless, hostile-aware; syscall chaos byte-identical"
