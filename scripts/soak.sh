#!/usr/bin/env bash
# Streaming kill/restore soak: the long-run resilience acceptance test.
#
# For each fault rate, this script
#   1. synthesizes a reproducible chaos capture (capture_generator --seed
#      --fault-rate, so any failure replays from the command line),
#   2. runs the batch reference (longrun_monitor without a checkpoint:
#      streaming with no restore is exactly the batch analyzer),
#   3. streams the same capture while repeatedly kill-9-ing the monitor
#      (--kill-after exits with no shutdown checkpoint, like a crash) and
#      restarting it from the last periodic checkpoint,
#   4. asserts the final headline metrics from the kill/restore run equal
#      the batch run. Checkpoint resume replays from an exact packet
#      cursor, so equality — stronger than the documented chaos drift
#      bounds (stations +/-1, flows +/-10%, same clusters) — must hold.
#
# Usage: scripts/soak.sh [--duration SECONDS] [--rates "0 0.01 0.05 0.20"]
#                        [--seed N] [--build-dir DIR] [--kill-step PACKETS]
set -euo pipefail
cd "$(dirname "$0")/.."

duration=600
rates="0 0.01 0.05 0.20"
seed=7
build_dir=build-release
kill_step=20000

while [ $# -gt 0 ]; do
  case "$1" in
    --duration)  duration="$2"; shift 2 ;;
    --rates)     rates="$2"; shift 2 ;;
    --seed)      seed="$2"; shift 2 ;;
    --build-dir) build_dir="$2"; shift 2 ;;
    --kill-step) kill_step="$2"; shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

gen="$build_dir/examples/capture_generator"
mon="$build_dir/examples/longrun_monitor"
for bin in "$gen" "$mon"; do
  if [ ! -x "$bin" ]; then
    echo "missing $bin — build the examples first (cmake --preset release)" >&2
    exit 2
  fi
done

workdir="$(mktemp -d "${TMPDIR:-/tmp}/soak.XXXXXX")"
trap 'rm -rf "$workdir"' EXIT

failures=0
for rate in $rates; do
  echo "==> soak @ fault rate $rate (duration ${duration}s, seed $seed)"
  pcap="$workdir/soak_$rate.pcap"
  ckpt="$workdir/soak_$rate.ckpt"
  "$gen" --year 1 --duration "$duration" --seed "$seed" \
         --fault-rate "$rate" --fault-seed "$seed" --out "$pcap" >/dev/null

  batch="$("$mon" --pcap "$pcap" --quiet)"
  echo "    batch:    $batch"

  # Kill/restore loop: each incarnation dies $kill_step packets further
  # in, until one survives to the end of the capture.
  kill_after=$kill_step
  restarts=0
  while :; do
    rc=0
    out="$("$mon" --pcap "$pcap" --checkpoint "$ckpt" --interval 2000 \
                  --kill-after "$kill_after" --quiet)" || rc=$?
    if [ "$rc" -eq 0 ]; then
      streamed="$(printf '%s\n' "$out" | tail -n 1)"
      break
    elif [ "$rc" -eq 42 ]; then
      restarts=$((restarts + 1))
      kill_after=$((kill_after + kill_step))
    else
      echo "    FAIL: monitor crashed for real (exit $rc) at rate $rate" >&2
      printf '%s\n' "$out" >&2
      failures=$((failures + 1))
      streamed=""
      break
    fi
  done
  [ -n "$streamed" ] || continue
  echo "    streamed: $streamed  (survived $restarts kills)"

  if [ "$streamed" != "$batch" ]; then
    echo "    FAIL: kill/restore run diverged from batch at rate $rate" >&2
    failures=$((failures + 1))
  fi
done

if [ "$failures" -gt 0 ]; then
  echo "==> soak FAILED ($failures rate(s) diverged or crashed)" >&2
  exit 1
fi
echo "==> soak passed: kill/restore streaming == batch at every fault rate"
