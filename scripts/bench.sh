#!/usr/bin/env bash
# Throughput benchmark driver: builds the release preset and runs
# bench_throughput, leaving the machine-readable BENCH_throughput.json in
# the repo root (CI uploads it as an artifact).
#
# Every run is also appended to BENCH_trajectory.json as
# {git_sha, date, results}, so the repo carries the performance history of
# its own hot path alongside the latest snapshot.
#
# Usage: scripts/bench.sh [--out FILE] [--reps N] [--scale FACTOR]
#                         [--no-trajectory]
#   --out            output JSON path (default BENCH_throughput.json)
#   --reps           repetitions per (capture, threads, stage) cell, fastest wins
#   --scale          capture scale factor (sets UNCHARTED_BENCH_SCALE)
#   --no-trajectory  skip the BENCH_trajectory.json append (smoke/CI runs)
set -euo pipefail
cd "$(dirname "$0")/.."

out="BENCH_throughput.json"
reps=3
scale=""
trajectory=1
while [ $# -gt 0 ]; do
  case "$1" in
    --out)   out="$2"; shift 2 ;;
    --reps)  reps="$2"; shift 2 ;;
    --scale) scale="$2"; shift 2 ;;
    --no-trajectory) trajectory=0; shift ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

jobs="$(nproc 2>/dev/null || echo 2)"
cmake --preset release
cmake --build --preset release --target bench_throughput -j "$jobs"

if [ -n "$scale" ]; then
  export UNCHARTED_BENCH_SCALE="$scale"
fi
build-release/bench/bench_throughput --out "$out" --reps "$reps"

if [ "$trajectory" -eq 1 ]; then
  git_sha="$(git rev-parse HEAD 2>/dev/null || echo unknown)"
  if ! git diff --quiet HEAD 2>/dev/null; then
    git_sha="${git_sha}-dirty"
  fi
  run_date="$(date -u +%Y-%m-%dT%H:%M:%SZ)"
  GIT_SHA="$git_sha" RUN_DATE="$run_date" BENCH_OUT="$out" python3 - <<'PY'
import json, os

with open(os.environ["BENCH_OUT"]) as f:
    snapshot = json.load(f)

path = "BENCH_trajectory.json"
try:
    with open(path) as f:
        trajectory = json.load(f)
except FileNotFoundError:
    trajectory = []

trajectory.append({
    "git_sha": os.environ["GIT_SHA"],
    "date": os.environ["RUN_DATE"],
    "results": snapshot,
})
with open(path, "w") as f:
    json.dump(trajectory, f, indent=1)
    f.write("\n")
print(f"appended {os.environ['GIT_SHA'][:12]} to {path} "
      f"({len(trajectory)} entries)")
PY
fi
