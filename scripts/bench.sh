#!/usr/bin/env bash
# Throughput benchmark driver: builds the release preset and runs
# bench_throughput, leaving the machine-readable BENCH_throughput.json in
# the repo root (CI uploads it as an artifact).
#
# Usage: scripts/bench.sh [--out FILE] [--reps N] [--scale FACTOR]
#   --out    output JSON path (default BENCH_throughput.json)
#   --reps   repetitions per (capture, threads, stage) cell, fastest wins
#   --scale  capture scale factor (sets UNCHARTED_BENCH_SCALE)
set -euo pipefail
cd "$(dirname "$0")/.."

out="BENCH_throughput.json"
reps=3
scale=""
while [ $# -gt 0 ]; do
  case "$1" in
    --out)   out="$2"; shift 2 ;;
    --reps)  reps="$2"; shift 2 ;;
    --scale) scale="$2"; shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

jobs="$(nproc 2>/dev/null || echo 2)"
cmake --preset release
cmake --build --preset release --target bench_throughput -j "$jobs"

if [ -n "$scale" ]; then
  export UNCHARTED_BENCH_SCALE="$scale"
fi
build-release/bench/bench_throughput --out "$out" --reps "$reps"
