#!/usr/bin/env bash
# Local reproduction of the CI jobs (.github/workflows/ci.yml):
#
#   1. Release build + ctest
#   2. unchartedlint: the project-invariant static analyzer (determinism,
#      seq15 consolidation, decoder byte-safety, include layering) over the
#      full tree — any unsuppressed violation fails the run
#   3. Debug ASan+UBSan build + ctest (includes the fault-injection chaos
#      sweep, called out explicitly so a chaos regression is easy to spot)
#   4. the hostile-peer adversarial sweep under sanitizers: every
#      sim::HostilePeer attack scenario through the full pipeline plus the
#      conformance machine and supervisor quarantine tests
#   5. ThreadSanitizer over the work-stealing pool and the parallel
#      flow-sharded pipeline (the determinism tests double as race
#      detectors: every stage runs concurrently at threads=8)
#   6. clang-tidy over src/ (skipped with a notice if clang-tidy is absent)
#   7. a short streaming kill/restore soak (scripts/soak.sh; the nightly
#      CI job runs the full 10-minute matrix) plus the live-ingest daemon
#      soak: ~500 concurrent tapstream connections, SIGKILL + --restore
#      byte-identical reports at --threads 1 and 8, a hostile fleet that
#      must exit 3 with zero benign flows dropped, and a peak-RSS bound
#      (the nightly daemon-soak CI job runs 10k connections)
#
# Usage: scripts/check.sh [--fuzz]
#   --fuzz   additionally build the fuzz harnesses and run each one for
#            10k iterations over the seed corpus (the `fuzz` preset)
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 2)"
run_fuzz=0
for arg in "$@"; do
  case "$arg" in
    --fuzz) run_fuzz=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

echo "==> [1/8] release: build + ctest"
cmake --preset release
cmake --build --preset release -j "$jobs"
ctest --preset release -j "$jobs"

echo "==> [2/8] unchartedlint: project invariants (determinism/seq15/bytes/layering)"
build-release/tools/lint/unchartedlint --root .

echo "==> [3/8] debug-asan-ubsan: build + ctest"
cmake --preset debug-asan-ubsan
cmake --build --preset debug-asan-ubsan -j "$jobs"
ASAN_OPTIONS=strict_string_checks=1:detect_stack_use_after_return=1 \
UBSAN_OPTIONS=print_stacktrace=1 \
  ctest --preset debug-asan-ubsan -j "$jobs"

echo "==> [4/8] chaos sweep under sanitizers (packet faults 0-20% + syscall/storage faults)"
ASAN_OPTIONS=strict_string_checks=1:detect_stack_use_after_return=1 \
UBSAN_OPTIONS=print_stacktrace=1 \
  ctest --preset debug-asan-ubsan \
    -R 'ChaosSweep|FaultInject|SysFault|CheckpointDurability' --output-on-failure

echo "==> [5/8] hostile-peer: adversarial sweep under sanitizers"
ASAN_OPTIONS=strict_string_checks=1:detect_stack_use_after_return=1 \
UBSAN_OPTIONS=print_stacktrace=1 \
  ctest --preset debug-asan-ubsan \
    -R 'HostilePeer|Conformance|QuarantinePolicy|Supervisor.Hostile' \
    --output-on-failure

echo "==> [6/8] tsan: work-stealing pool + parallel pipeline"
cmake --preset tsan
cmake --build --preset tsan --target test_parallel -j "$jobs"
TSAN_OPTIONS=halt_on_error=1 \
  ctest --preset tsan -R 'Pool|ParallelFor|ParallelDeterminism' --output-on-failure

echo "==> [7/8] clang-tidy over src/"
if command -v clang-tidy >/dev/null 2>&1; then
  cmake --preset tidy
  cmake --build --preset tidy -j "$jobs"
else
  echo "    clang-tidy not installed; skipping (CI runs this job)"
fi

echo "==> [8/8] kill/restore soak + daemon soak (short; nightly CI runs the full matrix)"
scripts/soak.sh --duration 120 --rates "0 0.01" --kill-step 10000

if [ "$run_fuzz" -eq 1 ]; then
  echo "==> [fuzz] harnesses: 10k iterations over the seed corpus"
  cmake --preset fuzz
  cmake --build --preset fuzz -j "$jobs"
  ctest --preset fuzz -L fuzz -j "$jobs"
fi

echo "==> all checks passed"
