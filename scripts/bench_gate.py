#!/usr/bin/env python3
"""Throughput regression gate for CI.

Compares a fresh bench_throughput run against the committed baseline
(BENCH_throughput.json) and fails if the threads-1 ingest packet rate of
any capture regressed by more than the allowed fraction. Only the
single-threaded ingest stage is gated: it is the zero-copy hot path the
repo commits a trajectory for, and it is the least noisy cell on shared
CI runners (no scheduler effects from worker threads).

Usage: scripts/bench_gate.py --baseline BENCH_throughput.json \
           --candidate bench-smoke.json [--max-regression 0.15]

Exit codes: 0 pass, 1 regression, 2 bad input.
"""
import argparse
import json
import sys


def ingest_threads1(snapshot):
    """Map capture name -> packets_per_s for the (ingest, threads=1) cells."""
    out = {}
    for row in snapshot.get("results", []):
        if row.get("stage") == "ingest" and row.get("threads") == 1:
            out[row["capture"]] = float(row["packets_per_s"])
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--candidate", required=True)
    parser.add_argument("--max-regression", type=float, default=0.15)
    args = parser.parse_args()

    try:
        with open(args.baseline) as f:
            baseline = ingest_threads1(json.load(f))
        with open(args.candidate) as f:
            candidate = ingest_threads1(json.load(f))
    except (OSError, json.JSONDecodeError, KeyError, ValueError) as err:
        print(f"bench_gate: cannot load inputs: {err}", file=sys.stderr)
        return 2

    if not baseline:
        print("bench_gate: baseline has no (ingest, threads=1) rows",
              file=sys.stderr)
        return 2

    failed = False
    for capture, base_pps in sorted(baseline.items()):
        cand_pps = candidate.get(capture)
        if cand_pps is None:
            print(f"bench_gate: candidate missing capture {capture!r}",
                  file=sys.stderr)
            failed = True
            continue
        ratio = cand_pps / base_pps
        floor = 1.0 - args.max_regression
        verdict = "OK" if ratio >= floor else "REGRESSION"
        print(f"{capture}: ingest t1 {cand_pps:,.0f} pkt/s vs baseline "
              f"{base_pps:,.0f} pkt/s ({ratio:.3f}x, floor {floor:.2f}x) "
              f"{verdict}")
        if ratio < floor:
            failed = True

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
