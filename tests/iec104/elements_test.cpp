#include "iec104/elements.hpp"

#include <gtest/gtest.h>

#include "iec104/asdu.hpp"

namespace uncharted::iec104 {
namespace {

/// Exemplar element for every supported typeID, with distinctive values so
/// a misaligned decode cannot accidentally compare equal.
ElementValue sample_element(TypeId t) {
  switch (t) {
    case TypeId::M_SP_NA_1:
    case TypeId::M_SP_TB_1:
      return SinglePoint{true, Quality::decode(0x40)};
    case TypeId::M_DP_NA_1:
    case TypeId::M_DP_TB_1:
      return DoublePoint{2, Quality::decode(0x80)};
    case TypeId::M_ST_NA_1:
    case TypeId::M_ST_TB_1:
      return StepPosition{-17, true, Quality{}};
    case TypeId::M_BO_NA_1:
    case TypeId::M_BO_TB_1:
      return Bitstring32{0xCAFEBABE, Quality{}};
    case TypeId::M_ME_NA_1:
    case TypeId::M_ME_TD_1:
    case TypeId::M_ME_ND_1:
      return NormalizedValue{-12345, Quality{}};
    case TypeId::M_ME_NB_1:
    case TypeId::M_ME_TE_1:
      return ScaledValue{-3000, Quality::decode(0x10)};
    case TypeId::M_ME_NC_1:
    case TypeId::M_ME_TF_1:
      return ShortFloat{59.97f, Quality{}};
    case TypeId::M_IT_NA_1:
    case TypeId::M_IT_TB_1:
      return IntegratedTotals{987654, 0x15};
    case TypeId::M_PS_NA_1:
      return PackedSinglePoints{0xAAAA, 0x5555, Quality{}};
    case TypeId::M_EP_TD_1:
      return ProtectionEvent{2, 1500};
    case TypeId::M_EP_TE_1:
      return ProtectionStartEvents{0x3f, 0x10, 250};
    case TypeId::M_EP_TF_1:
      return ProtectionOutputCircuit{0x0f, 0x00, 750};
    case TypeId::M_EI_NA_1:
      return EndOfInit{0x02};
    case TypeId::C_SC_NA_1:
    case TypeId::C_SC_TA_1:
      return SingleCommand{true, true, 3};
    case TypeId::C_DC_NA_1:
    case TypeId::C_DC_TA_1:
      return DoubleCommand{2, false, 1};
    case TypeId::C_RC_NA_1:
    case TypeId::C_RC_TA_1:
      return RegulatingStep{1, true, 0};
    case TypeId::C_SE_NA_1:
    case TypeId::C_SE_TA_1:
      return SetpointNormalized{22222, 0};
    case TypeId::C_SE_NB_1:
    case TypeId::C_SE_TB_1:
      return SetpointScaled{-4242, 1};
    case TypeId::C_SE_NC_1:
    case TypeId::C_SE_TC_1:
      return SetpointFloat{123.5f, 0};
    case TypeId::C_BO_NA_1:
    case TypeId::C_BO_TA_1:
      return BitstringCommand{0x12345678};
    case TypeId::C_IC_NA_1:
      return InterrogationCommand{20};
    case TypeId::C_CI_NA_1:
      return CounterInterrogation{5};
    case TypeId::C_RD_NA_1:
      return ReadCommand{};
    case TypeId::C_CS_NA_1: {
      Cp56Time2a time;
      time.year = 20;
      time.month = 10;
      time.day_of_month = 27;
      time.hour = 12;
      return ClockSync{time};
    }
    case TypeId::C_RP_NA_1:
      return ResetProcess{1};
    case TypeId::C_TS_TA_1:
      return TestCommand{0xAA55};
    case TypeId::P_ME_NA_1:
      return ParameterNormalized{100, 1};
    case TypeId::P_ME_NB_1:
      return ParameterScaled{-100, 2};
    case TypeId::P_ME_NC_1:
      return ParameterFloat{0.25f, 3};
    case TypeId::P_AC_NA_1:
      return ParameterActivation{1};
    case TypeId::F_FR_NA_1:
      return FileReady{7, 0x012345, 0x80};
    case TypeId::F_SR_NA_1:
      return SectionReady{7, 2, 0x00abcd, 0x00};
    case TypeId::F_SC_NA_1:
      return CallFile{7, 2, 1};
    case TypeId::F_LS_NA_1:
      return LastSection{7, 2, 3, 0x5a};
    case TypeId::F_AF_NA_1:
      return AckFile{7, 2, 1};
    case TypeId::F_SG_NA_1:
      return Segment{7, 2, {1, 2, 3, 4, 5}};
    case TypeId::F_DR_TA_1:
      return DirectoryEntry{9, 0x001000, 0x01};
    case TypeId::F_SC_NB_1: {
      QueryLog q;
      q.file_name = 3;
      q.start.year = 19;
      q.start.month = 6;
      q.start.day_of_month = 15;
      q.stop.year = 19;
      q.stop.month = 6;
      q.stop.day_of_month = 16;
      return q;
    }
  }
  return ReadCommand{};
}

std::vector<std::uint8_t> all_supported_codes() {
  std::vector<std::uint8_t> codes;
  for (int c = 1; c <= 127; ++c) {
    if (is_supported_type(static_cast<std::uint8_t>(c))) {
      codes.push_back(static_cast<std::uint8_t>(c));
    }
  }
  return codes;
}

TEST(SupportedTypes, ExactlyThe54FromTable5) {
  EXPECT_EQ(all_supported_codes().size(), 54u);
  EXPECT_FALSE(is_supported_type(0));
  EXPECT_FALSE(is_supported_type(2));    // IEC 101-only type
  EXPECT_FALSE(is_supported_type(44));   // gap
  EXPECT_FALSE(is_supported_type(104));  // IEC 101-only
}

class ElementRoundTrip : public ::testing::TestWithParam<std::uint8_t> {};

TEST_P(ElementRoundTrip, EncodeDecodeIdentity) {
  auto type = static_cast<TypeId>(GetParam());
  ElementValue value = sample_element(type);

  ByteWriter w;
  auto st = encode_element(type, value, w);
  ASSERT_TRUE(st.ok()) << type_acronym(type) << ": " << st.error().str();

  int expected = element_size(type);
  if (expected >= 0) {
    EXPECT_EQ(w.size(), static_cast<std::size_t>(expected)) << type_acronym(type);
  }

  ByteReader r(w.view());
  auto back = decode_element(type, r);
  ASSERT_TRUE(back.ok()) << type_acronym(type) << ": " << back.error().str();
  EXPECT_TRUE(r.empty()) << type_acronym(type) << " left bytes";
  EXPECT_EQ(back.value(), value) << type_acronym(type);
}

TEST_P(ElementRoundTrip, TruncationFailsCleanly) {
  auto type = static_cast<TypeId>(GetParam());
  if (element_size(type) == 0) GTEST_SKIP() << "no payload";
  ElementValue value = sample_element(type);
  ByteWriter w;
  ASSERT_TRUE(encode_element(type, value, w).ok());
  auto full = w.take();
  for (std::size_t n = 0; n < full.size(); ++n) {
    ByteReader r(std::span<const std::uint8_t>(full.data(), n));
    EXPECT_FALSE(decode_element(type, r).ok())
        << type_acronym(type) << " with " << n << " bytes";
  }
}

TEST_P(ElementRoundTrip, WrongVariantRejected) {
  auto type = static_cast<TypeId>(GetParam());
  // ReadCommand has no payload, so feed something definitely mismatched.
  ElementValue wrong = type == TypeId::C_RD_NA_1 ? ElementValue{SinglePoint{}}
                                                 : ElementValue{ReadCommand{}};
  ByteWriter w;
  EXPECT_FALSE(encode_element(type, wrong, w).ok()) << type_acronym(type);
}

INSTANTIATE_TEST_SUITE_P(AllTable5Types, ElementRoundTrip,
                         ::testing::ValuesIn(all_supported_codes()),
                         [](const ::testing::TestParamInfo<std::uint8_t>& param) {
                           return type_acronym(static_cast<TypeId>(param.param));
                         });

TEST(NormalizedValue, RawConversion) {
  EXPECT_EQ(NormalizedValue::to_raw(0.0), 0);
  EXPECT_EQ(NormalizedValue::to_raw(-1.0), -32768);
  EXPECT_EQ(NormalizedValue::to_raw(0.5), 16384);
  EXPECT_EQ(NormalizedValue::to_raw(5.0), 32767);   // clamped
  EXPECT_EQ(NormalizedValue::to_raw(-5.0), -32768); // clamped
  NormalizedValue v;
  v.raw = 16384;
  EXPECT_DOUBLE_EQ(v.value(), 0.5);
}

TEST(NumericValue, ExtractsProcessValues) {
  double out = 0.0;
  EXPECT_TRUE(numeric_value(ShortFloat{59.5f, {}}, out));
  EXPECT_FLOAT_EQ(static_cast<float>(out), 59.5f);
  EXPECT_TRUE(numeric_value(DoublePoint{2, {}}, out));
  EXPECT_EQ(out, 2.0);
  EXPECT_TRUE(numeric_value(SinglePoint{true, {}}, out));
  EXPECT_EQ(out, 1.0);
  EXPECT_TRUE(numeric_value(SetpointFloat{12.5f, 0}, out));
  EXPECT_EQ(out, 12.5);
  EXPECT_FALSE(numeric_value(InterrogationCommand{20}, out));
  EXPECT_FALSE(numeric_value(ReadCommand{}, out));
}

TEST(Quality, BitRoundTrip) {
  for (int bits : {0x00, 0x01, 0x10, 0x20, 0x40, 0x80, 0xf1}) {
    Quality q = Quality::decode(static_cast<std::uint8_t>(bits));
    EXPECT_EQ(q.encode(), bits);
  }
  EXPECT_TRUE(Quality{}.good());
  EXPECT_EQ(Quality{}.str(), "good");
  EXPECT_EQ(Quality::decode(0x80).str(), "IV");
}

TEST(TimeTags, ExactlyTheTbTdTeTfTaTypes) {
  EXPECT_TRUE(has_time_tag(TypeId::M_ME_TF_1));
  EXPECT_TRUE(has_time_tag(TypeId::M_SP_TB_1));
  EXPECT_TRUE(has_time_tag(TypeId::C_TS_TA_1));
  EXPECT_TRUE(has_time_tag(TypeId::F_DR_TA_1));
  EXPECT_FALSE(has_time_tag(TypeId::M_ME_NC_1));
  EXPECT_FALSE(has_time_tag(TypeId::C_IC_NA_1));
  EXPECT_FALSE(has_time_tag(TypeId::C_CS_NA_1));  // CP56 is the element itself
}

}  // namespace
}  // namespace uncharted::iec104
