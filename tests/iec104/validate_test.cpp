#include "iec104/validate.hpp"

#include <gtest/gtest.h>

namespace uncharted::iec104 {
namespace {

Asdu make(TypeId type, Cause cause, ElementValue value, std::uint32_t ioa = 100) {
  Asdu asdu;
  asdu.type = type;
  asdu.cot.cause = cause;
  asdu.common_address = 5;
  InformationObject obj;
  obj.ioa = ioa;
  obj.value = std::move(value);
  if (has_time_tag(type)) obj.time = Cp56Time2a::from_timestamp(1560556800ULL * 1'000'000);
  asdu.objects.push_back(std::move(obj));
  return asdu;
}

TEST(TypeCategory, Buckets) {
  EXPECT_EQ(type_category(TypeId::M_ME_NC_1), TypeCategory::kMonitor);
  EXPECT_EQ(type_category(TypeId::M_SP_TB_1), TypeCategory::kMonitor);
  EXPECT_EQ(type_category(TypeId::M_EI_NA_1), TypeCategory::kMonitor);
  EXPECT_EQ(type_category(TypeId::C_SC_NA_1), TypeCategory::kControl);
  EXPECT_EQ(type_category(TypeId::C_SE_TC_1), TypeCategory::kControl);
  EXPECT_EQ(type_category(TypeId::C_IC_NA_1), TypeCategory::kSystem);
  EXPECT_EQ(type_category(TypeId::C_CS_NA_1), TypeCategory::kSystem);
  EXPECT_EQ(type_category(TypeId::P_ME_NC_1), TypeCategory::kParameter);
  EXPECT_EQ(type_category(TypeId::F_SG_NA_1), TypeCategory::kFile);
}

TEST(Validate, CleanMonitorTraffic) {
  auto asdu = make(TypeId::M_ME_NC_1, Cause::kSpontaneous, ShortFloat{60.0f, {}});
  EXPECT_TRUE(validate_asdu(asdu, Direction::kFromOutstation).empty());
  auto periodic = make(TypeId::M_ME_TF_1, Cause::kPeriodic, ShortFloat{1.0f, {}});
  EXPECT_TRUE(validate_asdu(periodic, Direction::kFromOutstation).empty());
  auto gi_resp =
      make(TypeId::M_ME_NC_1, Cause::kInterrogatedByStation, ShortFloat{1.0f, {}});
  EXPECT_TRUE(validate_asdu(gi_resp, Direction::kFromOutstation).empty());
}

TEST(Validate, MonitorTypeFromServerIsWrongDirection) {
  auto asdu = make(TypeId::M_ME_NC_1, Cause::kSpontaneous, ShortFloat{60.0f, {}});
  auto violations = validate_asdu(asdu, Direction::kFromController);
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations[0].kind, ViolationKind::kWrongDirection);
}

TEST(Validate, MonitorWithActivationCauseIsMismatch) {
  auto asdu = make(TypeId::M_ME_NC_1, Cause::kActivation, ShortFloat{60.0f, {}});
  auto violations = validate_asdu(asdu, Direction::kFromOutstation);
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations[0].kind, ViolationKind::kCauseMismatch);
}

TEST(Validate, CommandLifecycleDirections) {
  // Activation from the controller: clean.
  auto act = make(TypeId::C_SE_NC_1, Cause::kActivation, SetpointFloat{50.0f, 0});
  EXPECT_TRUE(validate_asdu(act, Direction::kFromController).empty());
  // Activation *from the outstation*: wrong direction.
  auto v1 = validate_asdu(act, Direction::kFromOutstation);
  ASSERT_FALSE(v1.empty());
  EXPECT_EQ(v1[0].kind, ViolationKind::kWrongDirection);
  // Confirmation from the outstation: clean.
  auto con = make(TypeId::C_SE_NC_1, Cause::kActivationCon, SetpointFloat{50.0f, 0});
  EXPECT_TRUE(validate_asdu(con, Direction::kFromOutstation).empty());
  // Confirmation from the controller: wrong direction.
  auto v2 = validate_asdu(con, Direction::kFromController);
  ASSERT_FALSE(v2.empty());
  EXPECT_EQ(v2[0].kind, ViolationKind::kWrongDirection);
  // Command with a periodic cause: mismatch.
  auto weird = make(TypeId::C_SC_NA_1, Cause::kPeriodic, SingleCommand{true, false, 0});
  auto v3 = validate_asdu(weird, Direction::kFromController);
  ASSERT_FALSE(v3.empty());
  EXPECT_EQ(v3[0].kind, ViolationKind::kCauseMismatch);
}

TEST(Validate, InterrogationQualifierRange) {
  auto good = make(TypeId::C_IC_NA_1, Cause::kActivation, InterrogationCommand{20});
  EXPECT_TRUE(validate_asdu(good, Direction::kFromController).empty());
  auto group = make(TypeId::C_IC_NA_1, Cause::kActivation, InterrogationCommand{36});
  EXPECT_TRUE(validate_asdu(group, Direction::kFromController).empty());
  auto bad = make(TypeId::C_IC_NA_1, Cause::kActivation, InterrogationCommand{42});
  auto violations = validate_asdu(bad, Direction::kFromController);
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations[0].kind, ViolationKind::kBadQualifier);
}

TEST(Validate, ErrorMirrorCausesAreLegalBothWays) {
  auto unknown = make(TypeId::C_SE_NC_1, Cause::kUnknownIoa, SetpointFloat{1.0f, 0});
  EXPECT_TRUE(validate_asdu(unknown, Direction::kFromOutstation).empty());
  EXPECT_TRUE(validate_asdu(unknown, Direction::kFromController).empty());
}

TEST(Validate, SequenceOverflowFlagged) {
  Asdu asdu;
  asdu.type = TypeId::M_ME_NC_1;
  asdu.cot.cause = Cause::kInterrogatedByStation;
  asdu.common_address = 1;
  asdu.sequence = true;
  for (int i = 0; i < 3; ++i) {
    asdu.objects.push_back({0xfffffe + static_cast<std::uint32_t>(i),
                            ShortFloat{1.0f, {}}, std::nullopt});
  }
  auto violations = validate_asdu(asdu, Direction::kFromOutstation);
  bool found = false;
  for (const auto& v : violations) {
    if (v.kind == ViolationKind::kSequenceOverflow) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Validate, FileTransferCauses) {
  auto seg = make(TypeId::F_SG_NA_1, Cause::kFile, Segment{1, 1, {1, 2, 3}});
  EXPECT_TRUE(validate_asdu(seg, Direction::kFromOutstation).empty());
  auto weird = make(TypeId::F_SG_NA_1, Cause::kSpontaneous, Segment{1, 1, {1}});
  // Spontaneous is a monitor cause; file types accept it per our lenient
  // rule set (vendors vary here), so no violation.
  EXPECT_TRUE(validate_asdu(weird, Direction::kFromOutstation).empty());
}

}  // namespace
}  // namespace uncharted::iec104
