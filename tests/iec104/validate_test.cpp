#include "iec104/validate.hpp"

#include <gtest/gtest.h>

namespace uncharted::iec104 {
namespace {

Asdu make(TypeId type, Cause cause, ElementValue value, std::uint32_t ioa = 100) {
  Asdu asdu;
  asdu.type = type;
  asdu.cot.cause = cause;
  asdu.common_address = 5;
  InformationObject obj;
  obj.ioa = ioa;
  obj.value = std::move(value);
  if (has_time_tag(type)) obj.time = Cp56Time2a::from_timestamp(1560556800ULL * 1'000'000);
  asdu.objects.push_back(std::move(obj));
  return asdu;
}

TEST(TypeCategory, Buckets) {
  EXPECT_EQ(type_category(TypeId::M_ME_NC_1), TypeCategory::kMonitor);
  EXPECT_EQ(type_category(TypeId::M_SP_TB_1), TypeCategory::kMonitor);
  EXPECT_EQ(type_category(TypeId::M_EI_NA_1), TypeCategory::kMonitor);
  EXPECT_EQ(type_category(TypeId::C_SC_NA_1), TypeCategory::kControl);
  EXPECT_EQ(type_category(TypeId::C_SE_TC_1), TypeCategory::kControl);
  EXPECT_EQ(type_category(TypeId::C_IC_NA_1), TypeCategory::kSystem);
  EXPECT_EQ(type_category(TypeId::C_CS_NA_1), TypeCategory::kSystem);
  EXPECT_EQ(type_category(TypeId::P_ME_NC_1), TypeCategory::kParameter);
  EXPECT_EQ(type_category(TypeId::F_SG_NA_1), TypeCategory::kFile);
}

TEST(Validate, CleanMonitorTraffic) {
  auto asdu = make(TypeId::M_ME_NC_1, Cause::kSpontaneous, ShortFloat{60.0f, {}});
  EXPECT_TRUE(validate_asdu(asdu, Direction::kFromOutstation).empty());
  auto periodic = make(TypeId::M_ME_TF_1, Cause::kPeriodic, ShortFloat{1.0f, {}});
  EXPECT_TRUE(validate_asdu(periodic, Direction::kFromOutstation).empty());
  auto gi_resp =
      make(TypeId::M_ME_NC_1, Cause::kInterrogatedByStation, ShortFloat{1.0f, {}});
  EXPECT_TRUE(validate_asdu(gi_resp, Direction::kFromOutstation).empty());
}

TEST(Validate, MonitorTypeFromServerIsWrongDirection) {
  auto asdu = make(TypeId::M_ME_NC_1, Cause::kSpontaneous, ShortFloat{60.0f, {}});
  auto violations = validate_asdu(asdu, Direction::kFromController);
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations[0].kind, ViolationKind::kWrongDirection);
}

TEST(Validate, MonitorWithActivationCauseIsMismatch) {
  auto asdu = make(TypeId::M_ME_NC_1, Cause::kActivation, ShortFloat{60.0f, {}});
  auto violations = validate_asdu(asdu, Direction::kFromOutstation);
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations[0].kind, ViolationKind::kCauseMismatch);
}

TEST(Validate, CommandLifecycleDirections) {
  // Activation from the controller: clean.
  auto act = make(TypeId::C_SE_NC_1, Cause::kActivation, SetpointFloat{50.0f, 0});
  EXPECT_TRUE(validate_asdu(act, Direction::kFromController).empty());
  // Activation *from the outstation*: wrong direction.
  auto v1 = validate_asdu(act, Direction::kFromOutstation);
  ASSERT_FALSE(v1.empty());
  EXPECT_EQ(v1[0].kind, ViolationKind::kWrongDirection);
  // Confirmation from the outstation: clean.
  auto con = make(TypeId::C_SE_NC_1, Cause::kActivationCon, SetpointFloat{50.0f, 0});
  EXPECT_TRUE(validate_asdu(con, Direction::kFromOutstation).empty());
  // Confirmation from the controller: wrong direction.
  auto v2 = validate_asdu(con, Direction::kFromController);
  ASSERT_FALSE(v2.empty());
  EXPECT_EQ(v2[0].kind, ViolationKind::kWrongDirection);
  // Command with a periodic cause: mismatch.
  auto weird = make(TypeId::C_SC_NA_1, Cause::kPeriodic, SingleCommand{true, false, 0});
  auto v3 = validate_asdu(weird, Direction::kFromController);
  ASSERT_FALSE(v3.empty());
  EXPECT_EQ(v3[0].kind, ViolationKind::kCauseMismatch);
}

TEST(Validate, InterrogationQualifierRange) {
  auto good = make(TypeId::C_IC_NA_1, Cause::kActivation, InterrogationCommand{20});
  EXPECT_TRUE(validate_asdu(good, Direction::kFromController).empty());
  auto group = make(TypeId::C_IC_NA_1, Cause::kActivation, InterrogationCommand{36});
  EXPECT_TRUE(validate_asdu(group, Direction::kFromController).empty());
  auto bad = make(TypeId::C_IC_NA_1, Cause::kActivation, InterrogationCommand{42});
  auto violations = validate_asdu(bad, Direction::kFromController);
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations[0].kind, ViolationKind::kBadQualifier);
}

TEST(Validate, ErrorMirrorCausesAreLegalBothWays) {
  auto unknown = make(TypeId::C_SE_NC_1, Cause::kUnknownIoa, SetpointFloat{1.0f, 0});
  EXPECT_TRUE(validate_asdu(unknown, Direction::kFromOutstation).empty());
  EXPECT_TRUE(validate_asdu(unknown, Direction::kFromController).empty());
}

TEST(Validate, SequenceOverflowFlagged) {
  Asdu asdu;
  asdu.type = TypeId::M_ME_NC_1;
  asdu.cot.cause = Cause::kInterrogatedByStation;
  asdu.common_address = 1;
  asdu.sequence = true;
  for (int i = 0; i < 3; ++i) {
    asdu.objects.push_back({0xfffffe + static_cast<std::uint32_t>(i),
                            ShortFloat{1.0f, {}}, std::nullopt});
  }
  auto violations = validate_asdu(asdu, Direction::kFromOutstation);
  bool found = false;
  for (const auto& v : violations) {
    if (v.kind == ViolationKind::kSequenceOverflow) found = true;
  }
  EXPECT_TRUE(found);
}

// Exhaustive error-path coverage: every ViolationKind is reachable, and the
// diagnostic detail carries the type acronym / offending value so findings
// are actionable without re-decoding the capture.

TEST(ValidateErrorPaths, WrongDirectionDetailNamesType) {
  auto asdu = make(TypeId::M_ME_NC_1, Cause::kSpontaneous, ShortFloat{1.0f, {}});
  auto violations = validate_asdu(asdu, Direction::kFromController);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind, ViolationKind::kWrongDirection);
  EXPECT_NE(violations[0].detail.find("M_ME_NC_1"), std::string::npos);
  EXPECT_NE(violations[0].detail.find("control station"), std::string::npos);
}

TEST(ValidateErrorPaths, CauseMismatchDetailNamesCause) {
  auto asdu = make(TypeId::M_SP_NA_1, Cause::kActivation, SinglePoint{true, {}});
  auto violations = validate_asdu(asdu, Direction::kFromOutstation);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind, ViolationKind::kCauseMismatch);
  EXPECT_NE(violations[0].detail.find("M_SP_NA_1"), std::string::npos);
}

TEST(ValidateErrorPaths, ControlConfirmationFromController) {
  for (auto cause : {Cause::kActivationCon, Cause::kActivationTerm,
                     Cause::kDeactivationCon}) {
    auto asdu = make(TypeId::C_SC_NA_1, cause, SingleCommand{true, false, 0});
    auto violations = validate_asdu(asdu, Direction::kFromController);
    ASSERT_EQ(violations.size(), 1u) << cause_name(cause);
    EXPECT_EQ(violations[0].kind, ViolationKind::kWrongDirection);
    EXPECT_NE(violations[0].detail.find("confirmation"), std::string::npos);
  }
}

TEST(ValidateErrorPaths, ControlActivationFromOutstation) {
  for (auto cause : {Cause::kActivation, Cause::kDeactivation}) {
    auto asdu = make(TypeId::C_SC_NA_1, cause, SingleCommand{true, false, 0});
    auto violations = validate_asdu(asdu, Direction::kFromOutstation);
    ASSERT_EQ(violations.size(), 1u) << cause_name(cause);
    EXPECT_EQ(violations[0].kind, ViolationKind::kWrongDirection);
    EXPECT_NE(violations[0].detail.find("activation"), std::string::npos);
  }
}

TEST(ValidateErrorPaths, ParameterTypesFollowCommandRules) {
  auto weird = make(TypeId::P_ME_NC_1, Cause::kPeriodic, ShortFloat{1.0f, {}});
  auto violations = validate_asdu(weird, Direction::kFromController);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind, ViolationKind::kCauseMismatch);
}

TEST(ValidateErrorPaths, SystemTypeBadCauseAndDirection) {
  // Interrogation with a file cause: mismatch.
  auto bad_cause = make(TypeId::C_IC_NA_1, Cause::kFile, InterrogationCommand{20});
  auto v1 = validate_asdu(bad_cause, Direction::kFromController);
  ASSERT_EQ(v1.size(), 1u);
  EXPECT_EQ(v1[0].kind, ViolationKind::kCauseMismatch);
  // Interrogation activation emitted by the outstation: wrong direction.
  auto act = make(TypeId::C_IC_NA_1, Cause::kActivation, InterrogationCommand{20});
  auto v2 = validate_asdu(act, Direction::kFromOutstation);
  ASSERT_EQ(v2.size(), 1u);
  EXPECT_EQ(v2[0].kind, ViolationKind::kWrongDirection);
}

TEST(ValidateErrorPaths, FileTypeCauseMismatch) {
  // Activation family and monitor causes stay legal for file transfer...
  auto con = make(TypeId::F_SG_NA_1, Cause::kActivationCon, Segment{1, 1, {1}});
  EXPECT_TRUE(validate_asdu(con, Direction::kFromOutstation).empty());
  auto periodic = make(TypeId::F_SG_NA_1, Cause::kPeriodic, Segment{1, 1, {1}});
  EXPECT_TRUE(validate_asdu(periodic, Direction::kFromOutstation).empty());
  // ...but a reserved cause code (14..19 are unassigned) is a mismatch.
  auto reserved = make(TypeId::F_SG_NA_1, static_cast<Cause>(15), Segment{1, 1, {1}});
  auto violations = validate_asdu(reserved, Direction::kFromOutstation);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind, ViolationKind::kCauseMismatch);
}

TEST(ValidateErrorPaths, BadQualifierDetailCarriesValue) {
  auto bad = make(TypeId::C_IC_NA_1, Cause::kActivation, InterrogationCommand{19});
  auto violations = validate_asdu(bad, Direction::kFromController);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind, ViolationKind::kBadQualifier);
  EXPECT_NE(violations[0].detail.find("19"), std::string::npos);
  // Qualifier 0 ("not used") stays legal.
  auto zero = make(TypeId::C_IC_NA_1, Cause::kActivation, InterrogationCommand{0});
  EXPECT_TRUE(validate_asdu(zero, Direction::kFromController).empty());
}

TEST(ValidateErrorPaths, SequenceOverflowDetailCarriesBase) {
  Asdu asdu;
  asdu.type = TypeId::M_SP_NA_1;
  asdu.cot.cause = Cause::kSpontaneous;
  asdu.common_address = 1;
  asdu.sequence = true;
  asdu.objects.push_back({0xffffff, SinglePoint{true, {}}, std::nullopt});
  asdu.objects.push_back({0, SinglePoint{false, {}}, std::nullopt});
  auto violations = validate_asdu(asdu, Direction::kFromOutstation);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind, ViolationKind::kSequenceOverflow);
  EXPECT_NE(violations[0].detail.find(std::to_string(0xffffff)), std::string::npos);
}

TEST(ValidateErrorPaths, MultipleViolationsAccumulate) {
  // Monitor type, activation cause, sent by the controller: both the
  // direction and the cause rules fire.
  auto asdu = make(TypeId::M_ME_NC_1, Cause::kActivation, ShortFloat{1.0f, {}});
  auto violations = validate_asdu(asdu, Direction::kFromController);
  ASSERT_EQ(violations.size(), 2u);
  EXPECT_EQ(violations[0].kind, ViolationKind::kWrongDirection);
  EXPECT_EQ(violations[1].kind, ViolationKind::kCauseMismatch);
}

TEST(ValidateErrorPaths, ViolationKindNamesAreStable) {
  EXPECT_EQ(violation_kind_name(ViolationKind::kWrongDirection), "wrong-direction");
  EXPECT_EQ(violation_kind_name(ViolationKind::kCauseMismatch), "cause-mismatch");
  EXPECT_EQ(violation_kind_name(ViolationKind::kBadQualifier), "bad-qualifier");
  EXPECT_EQ(violation_kind_name(ViolationKind::kSequenceOverflow), "sequence-overflow");
}

TEST(ValidateErrorPaths, TypeCategoryBoundaries) {
  // Category edges: 44 is the last monitor code boundary neighbour, 45
  // starts commands, 64 ends them, 70 is the end-of-init exception, 107
  // ends system, 113 ends parameter, 114+ is file transfer.
  EXPECT_EQ(type_category(static_cast<TypeId>(44)), TypeCategory::kMonitor);
  EXPECT_EQ(type_category(static_cast<TypeId>(45)), TypeCategory::kControl);
  EXPECT_EQ(type_category(static_cast<TypeId>(64)), TypeCategory::kControl);
  EXPECT_EQ(type_category(static_cast<TypeId>(70)), TypeCategory::kMonitor);
  EXPECT_EQ(type_category(static_cast<TypeId>(107)), TypeCategory::kSystem);
  EXPECT_EQ(type_category(static_cast<TypeId>(113)), TypeCategory::kParameter);
  EXPECT_EQ(type_category(static_cast<TypeId>(114)), TypeCategory::kFile);
}

TEST(Validate, FileTransferCauses) {
  auto seg = make(TypeId::F_SG_NA_1, Cause::kFile, Segment{1, 1, {1, 2, 3}});
  EXPECT_TRUE(validate_asdu(seg, Direction::kFromOutstation).empty());
  auto weird = make(TypeId::F_SG_NA_1, Cause::kSpontaneous, Segment{1, 1, {1}});
  // Spontaneous is a monitor cause; file types accept it per our lenient
  // rule set (vendors vary here), so no violation.
  EXPECT_TRUE(validate_asdu(weird, Direction::kFromOutstation).empty());
}

}  // namespace
}  // namespace uncharted::iec104
