#include "iec104/cp56time.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace uncharted::iec104 {
namespace {

TEST(Cp56Time2a, KnownDate) {
  // 2020-10-27 14:30:12.345 UTC.
  Cp56Time2a t;
  t.year = 20;
  t.month = 10;
  t.day_of_month = 27;
  t.hour = 14;
  t.minute = 30;
  t.milliseconds = 12345;
  Timestamp ts = t.to_timestamp();
  Cp56Time2a back = Cp56Time2a::from_timestamp(ts);
  EXPECT_EQ(back.year, 20);
  EXPECT_EQ(back.month, 10);
  EXPECT_EQ(back.day_of_month, 27);
  EXPECT_EQ(back.hour, 14);
  EXPECT_EQ(back.minute, 30);
  EXPECT_EQ(back.milliseconds, 12345);
  // 2020-10-27 was a Tuesday (ISO day 2).
  EXPECT_EQ(back.day_of_week, 2);
}

TEST(Cp56Time2a, EpochConversionMatchesKnownValue) {
  // 2019-06-15 00:00:00 UTC == 1560556800 s.
  Cp56Time2a t = Cp56Time2a::from_timestamp(1560556800ULL * 1'000'000);
  EXPECT_EQ(t.year, 19);
  EXPECT_EQ(t.month, 6);
  EXPECT_EQ(t.day_of_month, 15);
  EXPECT_EQ(t.hour, 0);
  EXPECT_EQ(t.minute, 0);
  EXPECT_EQ(t.milliseconds, 0);
}

TEST(Cp56Time2a, WireRoundTrip) {
  Cp56Time2a t;
  t.year = 21;
  t.month = 2;
  t.day_of_month = 28;
  t.day_of_week = 7;
  t.hour = 23;
  t.minute = 59;
  t.milliseconds = 59999;
  t.invalid = true;
  t.summer_time = true;
  ByteWriter w;
  t.encode(w);
  ASSERT_EQ(w.size(), Cp56Time2a::kSize);
  ByteReader r(w.view());
  auto back = Cp56Time2a::decode(r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), t);
}

TEST(Cp56Time2a, RejectsOutOfRangeFields) {
  ByteWriter w;
  w.u16le(60001);  // ms > 59999
  w.u8(0);
  w.u8(0);
  w.u8(1);
  w.u8(1);
  w.u8(20);
  ByteReader r(w.view());
  EXPECT_FALSE(Cp56Time2a::decode(r).ok());

  ByteWriter w2;
  w2.u16le(0);
  w2.u8(0);
  w2.u8(0);
  w2.u8(0);  // day 0 invalid
  w2.u8(1);
  w2.u8(20);
  ByteReader r2(w2.view());
  EXPECT_FALSE(Cp56Time2a::decode(r2).ok());
}

TEST(Cp56Time2a, TruncatedDecodeFails) {
  std::uint8_t short_buf[3] = {0, 0, 0};
  ByteReader r(std::span<const std::uint8_t>(short_buf, 3));
  EXPECT_FALSE(Cp56Time2a::decode(r).ok());
}

// Property: timestamp -> CP56 -> timestamp is the identity at millisecond
// resolution across the full window the two-digit year can represent
// (1970-2069 under the IEC 60870-5 pivot: 70..99 = 19xx, 0..69 = 20xx).
TEST(Cp56Time2aProperty, TimestampRoundTrip) {
  Rng rng(77);
  const Timestamp lo = 0;                           // 1970-01-01 (epoch)
  const Timestamp hi = 3155760000ULL * 1'000'000;   // 2070-01-01
  for (int i = 0; i < 3000; ++i) {
    Timestamp ts = lo + rng.next_u64() % (hi - lo);
    ts -= ts % 1000;  // CP56 carries milliseconds
    Cp56Time2a t = Cp56Time2a::from_timestamp(ts);
    EXPECT_EQ(t.to_timestamp(), ts) << t.str();

    // And the wire encoding round-trips too.
    ByteWriter w;
    t.encode(w);
    ByteReader r(w.view());
    auto back = Cp56Time2a::decode(r);
    ASSERT_TRUE(back.ok());
    // day_of_week is carried but to_timestamp ignores it.
    EXPECT_EQ(back->to_timestamp(), ts);
  }
}

// Regression: pre-2000 timestamps used to wrap (y - 2000) % 100 through a
// uint8_t cast, producing out-of-range year bytes (1970 -> 226). Under the
// IEC pivot the epoch encodes as year 70 and round-trips exactly.
TEST(Cp56Time2a, EpochBoundary) {
  Cp56Time2a t = Cp56Time2a::from_timestamp(0);
  EXPECT_EQ(t.year, 70);
  EXPECT_EQ(t.month, 1);
  EXPECT_EQ(t.day_of_month, 1);
  EXPECT_EQ(t.hour, 0);
  EXPECT_EQ(t.minute, 0);
  EXPECT_EQ(t.milliseconds, 0);
  EXPECT_EQ(t.day_of_week, 4);  // 1970-01-01 was a Thursday
  EXPECT_EQ(t.to_timestamp(), 0u);
  EXPECT_EQ(t.str(), "1970-01-01 00:00:00.000");

  // The wire encoding stays inside the 7-bit year field.
  ByteWriter w;
  t.encode(w);
  ByteReader r(w.view());
  auto back = Cp56Time2a::decode(r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->year, 70);
}

TEST(Cp56Time2a, CenturyPivotBoundaries) {
  // 1999-12-31 23:59:59.999 -> year 99 -> still 19xx.
  const Timestamp end_1999 = 946684799ULL * 1'000'000 + 999'000;
  Cp56Time2a t99 = Cp56Time2a::from_timestamp(end_1999);
  EXPECT_EQ(t99.year, 99);
  EXPECT_EQ(t99.milliseconds, 59999);
  EXPECT_EQ(t99.to_timestamp(), end_1999);

  // One millisecond later: 2000-01-01 00:00:00.000 -> year 0.
  const Timestamp start_2000 = 946684800ULL * 1'000'000;
  Cp56Time2a t00 = Cp56Time2a::from_timestamp(start_2000);
  EXPECT_EQ(t00.year, 0);
  EXPECT_EQ(t00.milliseconds, 0);
  EXPECT_EQ(t00.to_timestamp(), start_2000);

  // Last representable instant: 2069-12-31 23:59:59.999 (year 69).
  const Timestamp end_2069 = 3155759999ULL * 1'000'000 + 999'000;
  Cp56Time2a t69 = Cp56Time2a::from_timestamp(end_2069);
  EXPECT_EQ(t69.year, 69);
  EXPECT_EQ(t69.to_timestamp(), end_2069);
}

TEST(Cp56Time2a, StrFormatting) {
  Cp56Time2a t;
  t.year = 20;
  t.month = 10;
  t.day_of_month = 27;
  t.hour = 14;
  t.minute = 3;
  t.milliseconds = 22512;
  EXPECT_EQ(t.str(), "2020-10-27 14:03:22.512");
  t.invalid = true;
  EXPECT_EQ(t.str(), "2020-10-27 14:03:22.512 (IV)");
}

}  // namespace
}  // namespace uncharted::iec104
