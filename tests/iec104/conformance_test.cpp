// ConformanceMachine: the hostile/legacy/clean discrimination at the heart
// of hostile-peer hardening. Covers the STARTDT/STOPDT state machine, k/w
// window enforcement, 15-bit sequence arithmetic (wrap, retransmission,
// desync), mid-stream anchoring, the paper's §6.1 legacy whitelist, and
// the severity-weighted QuarantinePolicy that replaced the flat failure
// counter in degraded-mode ingestion.
#include "iec104/conformance.hpp"

#include <gtest/gtest.h>

#include "iec104/elements.hpp"

namespace uncharted::iec104 {
namespace {

constexpr Timestamp kStep = 100'000;  // 100 ms

Asdu measurement() {
  Asdu asdu;
  asdu.type = TypeId::M_ME_NC_1;
  asdu.cot.cause = Cause::kSpontaneous;
  asdu.common_address = 7;
  asdu.objects.push_back({1001, ShortFloat{42.0f, {}}, std::nullopt});
  return asdu;
}

Apdu i_frame(std::uint16_t ns, std::uint16_t nr = 0) {
  return Apdu::make_i(ns, nr, measurement());
}

/// Fresh connection brought to STARTDT-confirmed state; returns the next ts.
Timestamp activate(ConformanceMachine& m, Timestamp ts = 0) {
  m.on_connection_open(ts);
  m.on_apdu(ts += kStep, true, Apdu::make_u(UFunction::kStartDtAct));
  m.on_apdu(ts += kStep, false, Apdu::make_u(UFunction::kStartDtCon));
  return ts + kStep;
}

TEST(Conformance, CleanFreshSessionScoresClean) {
  ConformanceMachine m;
  Timestamp ts = activate(m);
  for (std::uint16_t ns = 0; ns < 10; ++ns) {
    m.on_apdu(ts += kStep, false, i_frame(ns));
    if (ns % 4 == 3) m.on_apdu(ts += kStep, true, Apdu::make_s(ns + 1));
  }
  m.on_apdu(ts += kStep, true, Apdu::make_s(10));
  m.on_apdu(ts += kStep, true, Apdu::make_u(UFunction::kStopDtAct));
  m.on_apdu(ts += kStep, false, Apdu::make_u(UFunction::kStopDtCon));
  EXPECT_EQ(m.verdict(), Verdict::kClean);
  EXPECT_TRUE(m.profile().violations.empty());
  EXPECT_EQ(m.profile().i_apdus, 10u);
}

TEST(Conformance, TestFrRoundTripObservedAsTimer) {
  ConformanceMachine m;
  Timestamp ts = activate(m);
  m.on_apdu(ts += kStep, true, Apdu::make_u(UFunction::kTestFrAct));
  m.on_apdu(ts += kStep, false, Apdu::make_u(UFunction::kTestFrCon));
  EXPECT_EQ(m.verdict(), Verdict::kClean);
  EXPECT_NEAR(m.profile().timers.max_testfr_rtt_s, 0.1, 1e-9);
  EXPECT_GE(m.profile().timers.max_startdt_rtt_s, 0.0);
}

TEST(Conformance, IBeforeStartDtOnFreshConnectionIsHostile) {
  ConformanceMachine m;
  m.on_connection_open(0);
  m.on_apdu(kStep, true, i_frame(0));
  EXPECT_TRUE(m.hostile());
  EXPECT_EQ(m.profile().count(ViolationCode::kIBeforeStartDt), 1u);
}

TEST(Conformance, IBeforeStartDtConfirmationIsHostileFromActivator) {
  // STARTDT act sent, con still pending: data from the activating side is
  // the Industroyer blind ordering; data from the outstation just means
  // the con was lost and transfer is running.
  ConformanceMachine attacker;
  attacker.on_connection_open(0);
  attacker.on_apdu(kStep, true, Apdu::make_u(UFunction::kStartDtAct));
  attacker.on_apdu(2 * kStep, true, i_frame(0));
  EXPECT_TRUE(attacker.hostile());

  ConformanceMachine lost_con;
  lost_con.on_connection_open(0);
  lost_con.on_apdu(kStep, true, Apdu::make_u(UFunction::kStartDtAct));
  lost_con.on_apdu(2 * kStep, false, i_frame(0));
  EXPECT_EQ(lost_con.verdict(), Verdict::kClean);
}

TEST(Conformance, MidStreamCaptureAnchorsSilently) {
  // No on_connection_open: the capture joined a running session. I-frames
  // at arbitrary sequence positions are continuity, not violations.
  ConformanceMachine m;
  Timestamp ts = 0;
  for (std::uint16_t ns = 4000; ns < 4010; ++ns) {
    m.on_apdu(ts += kStep, false, i_frame(ns, 123));
  }
  m.on_apdu(ts += kStep, true, Apdu::make_s(4010));
  EXPECT_EQ(m.verdict(), Verdict::kClean);
}

TEST(Conformance, WindowOverflowIsHostile) {
  ConformanceMachine m;
  Timestamp ts = activate(m);
  for (std::uint16_t ns = 0; ns <= kDefaultK; ++ns) {
    m.on_apdu(ts += kStep, false, i_frame(ns));
  }
  EXPECT_TRUE(m.hostile());
  EXPECT_EQ(m.profile().count(ViolationCode::kWindowOverflow), 1u);
}

TEST(Conformance, WindowRespectedWithAcksIsClean) {
  ConformanceMachine m;
  Timestamp ts = activate(m);
  for (std::uint16_t ns = 0; ns < 40; ++ns) {
    m.on_apdu(ts += kStep, false, i_frame(ns));
    if (ns % kDefaultW == kDefaultW - 1) {
      m.on_apdu(ts += kStep, true, Apdu::make_s(ns + 1));
    }
  }
  EXPECT_EQ(m.verdict(), Verdict::kClean);
}

TEST(Conformance, AckOfUnsentIsHostileOnFreshConnection) {
  ConformanceMachine m;
  Timestamp ts = activate(m);
  m.on_apdu(ts += kStep, false, i_frame(0));
  m.on_apdu(ts += kStep, true, Apdu::make_s(200));
  EXPECT_TRUE(m.hostile());
  EXPECT_EQ(m.profile().count(ViolationCode::kAckOfUnsent), 1u);
}

TEST(Conformance, MidStreamAckAheadIsCaptureLossNotAttack) {
  ConformanceMachine m;
  Timestamp ts = 0;
  m.on_apdu(ts += kStep, false, i_frame(100));
  m.on_apdu(ts += kStep, true, Apdu::make_s(105));  // frames 101-104 unseen
  EXPECT_EQ(m.verdict(), Verdict::kClean);
  EXPECT_EQ(m.profile().count(ViolationCode::kSequenceGap), 1u);
}

TEST(Conformance, SequenceWrapIsContinuity) {
  ConformanceMachine m;
  Timestamp ts = 0;
  m.on_apdu(ts += kStep, false, i_frame(32766));
  m.on_apdu(ts += kStep, true, Apdu::make_s(32767));
  m.on_apdu(ts += kStep, false, i_frame(32767));
  m.on_apdu(ts += kStep, false, i_frame(0));  // 15-bit wrap
  m.on_apdu(ts += kStep, false, i_frame(1));
  m.on_apdu(ts += kStep, true, Apdu::make_s(2));  // ack across the wrap
  EXPECT_EQ(m.verdict(), Verdict::kClean);
  EXPECT_TRUE(m.profile().violations.empty());
}

TEST(Conformance, AdjacentRetransmissionIsInfoDuplicate) {
  ConformanceMachine m;
  Timestamp ts = activate(m);
  m.on_apdu(ts += kStep, false, i_frame(0));
  m.on_apdu(ts += kStep, false, i_frame(1));
  m.on_apdu(ts += kStep, false, i_frame(1));  // retransmitted copy
  m.on_apdu(ts += kStep, false, i_frame(2));
  EXPECT_EQ(m.verdict(), Verdict::kClean);
  EXPECT_EQ(m.profile().count(ViolationCode::kSequenceDuplicate), 1u);
}

TEST(Conformance, LateRetransmissionIsInfoDuplicate) {
  // A retransmitted segment surfacing several frames late: the stream
  // resumes where it left off, so the regressed frame was a stale copy.
  ConformanceMachine m;
  Timestamp ts = activate(m);
  for (std::uint16_t ns = 0; ns < 6; ++ns) m.on_apdu(ts += kStep, false, i_frame(ns));
  m.on_apdu(ts += kStep, false, i_frame(2));  // late copy of frame 2
  m.on_apdu(ts += kStep, false, i_frame(6));  // stream resumes
  m.on_apdu(ts += kStep, true, Apdu::make_s(7));
  EXPECT_EQ(m.verdict(), Verdict::kClean);
  EXPECT_EQ(m.profile().count(ViolationCode::kSequenceDuplicate), 1u);
  EXPECT_EQ(m.profile().count(ViolationCode::kSequenceReset), 0u);
}

TEST(Conformance, RetransmissionBelowAckLevelIsInfoDuplicate) {
  ConformanceMachine m;
  Timestamp ts = activate(m);
  for (std::uint16_t ns = 0; ns < 6; ++ns) m.on_apdu(ts += kStep, false, i_frame(ns));
  m.on_apdu(ts += kStep, true, Apdu::make_s(6));  // all acked
  m.on_apdu(ts += kStep, false, i_frame(3));      // stale copy, already acked
  m.on_apdu(ts += kStep, false, i_frame(4));      // second stale copy
  m.on_apdu(ts += kStep, false, i_frame(6));
  EXPECT_EQ(m.verdict(), Verdict::kClean);
  EXPECT_EQ(m.profile().count(ViolationCode::kSequenceDuplicate), 2u);
}

TEST(Conformance, StaleAckCopyIsInfoDuplicate) {
  ConformanceMachine m;
  Timestamp ts = activate(m);
  for (std::uint16_t ns = 0; ns < 6; ++ns) m.on_apdu(ts += kStep, false, i_frame(ns));
  m.on_apdu(ts += kStep, true, Apdu::make_s(6));
  m.on_apdu(ts += kStep, true, Apdu::make_s(4));  // retransmitted older S
  EXPECT_EQ(m.verdict(), Verdict::kClean);
  EXPECT_EQ(m.profile().count(ViolationCode::kAckRegression), 0u);
}

TEST(Conformance, DesyncRewindIsWarnReset) {
  // The stream continues from the rewound value — not a retransmission.
  ConformanceMachine m;
  Timestamp ts = activate(m);
  for (std::uint16_t ns : {0, 1, 2}) m.on_apdu(ts += kStep, false, i_frame(ns));
  m.on_apdu(ts += kStep, false, i_frame(0));  // rewind...
  m.on_apdu(ts += kStep, false, i_frame(7));  // ...and diverge
  EXPECT_EQ(m.verdict(), Verdict::kSuspect);
  EXPECT_EQ(m.profile().count(ViolationCode::kSequenceReset), 1u);
}

TEST(Conformance, RepeatedDesyncTurnsHostile) {
  // Four double-weight resets reach the hostile score with no single
  // protocol-impossible frame.
  ConformanceMachine m;
  Timestamp ts = activate(m);
  for (std::uint16_t ns : {0, 1, 2, 0, 7, 1, 9, 2, 11, 3, 13}) {
    m.on_apdu(ts += kStep, true, i_frame(ns));
  }
  EXPECT_TRUE(m.hostile());
  EXPECT_EQ(m.profile().count(ViolationCode::kSequenceReset), 4u);
  EXPECT_EQ(m.profile().hostile_events, 0u);  // score-driven, not event-driven
}

TEST(Conformance, UnsolicitedConfirmsAreHostile) {
  ConformanceMachine m;
  m.on_connection_open(0);
  m.on_apdu(kStep, true, Apdu::make_u(UFunction::kStartDtCon));
  m.on_apdu(2 * kStep, true, Apdu::make_u(UFunction::kTestFrCon));
  m.on_apdu(3 * kStep, true, Apdu::make_u(UFunction::kStopDtCon));
  EXPECT_TRUE(m.hostile());
  EXPECT_EQ(m.profile().count(ViolationCode::kUnsolicitedConfirm), 3u);
}

TEST(Conformance, MidStreamToleratesOneUnmatchedTestFrCon) {
  // The act may predate the capture — once. A second unmatched con has no
  // such excuse.
  ConformanceMachine m;
  m.on_apdu(kStep, false, Apdu::make_u(UFunction::kTestFrCon));
  EXPECT_EQ(m.verdict(), Verdict::kClean);
  m.on_apdu(2 * kStep, false, Apdu::make_u(UFunction::kTestFrCon));
  EXPECT_TRUE(m.hostile());
}

TEST(Conformance, RetransmittedConfirmsAreNotHostile) {
  ConformanceMachine m;
  Timestamp ts = activate(m);
  m.on_apdu(ts += kStep, false, Apdu::make_u(UFunction::kStartDtCon));  // dup con
  m.on_apdu(ts += kStep, true, Apdu::make_u(UFunction::kTestFrAct));
  m.on_apdu(ts += kStep, false, Apdu::make_u(UFunction::kTestFrCon));
  m.on_apdu(ts += kStep, false, Apdu::make_u(UFunction::kTestFrCon));  // dup con
  EXPECT_EQ(m.verdict(), Verdict::kClean);
  EXPECT_EQ(m.profile().count(ViolationCode::kSequenceDuplicate), 2u);
}

TEST(Conformance, DuplicateStartDtIsWarn) {
  ConformanceMachine m;
  Timestamp ts = activate(m);
  m.on_apdu(ts += kStep, true, Apdu::make_u(UFunction::kStartDtAct));
  EXPECT_EQ(m.verdict(), Verdict::kSuspect);
  EXPECT_EQ(m.profile().count(ViolationCode::kDuplicateStartDt), 1u);
}

TEST(Conformance, DataAfterStopDtIsHostile) {
  ConformanceMachine m;
  Timestamp ts = activate(m);
  m.on_apdu(ts += kStep, false, i_frame(0));
  m.on_apdu(ts += kStep, true, Apdu::make_s(1));
  m.on_apdu(ts += kStep, true, Apdu::make_u(UFunction::kStopDtAct));
  m.on_apdu(ts += kStep, false, Apdu::make_u(UFunction::kStopDtCon));
  m.on_apdu(ts += kStep, false, i_frame(1));
  EXPECT_TRUE(m.hostile());
  EXPECT_EQ(m.profile().count(ViolationCode::kDataAfterStopDt), 1u);
}

TEST(Conformance, StopPendingAllowsPeerDrainOnly) {
  ConformanceMachine m;
  Timestamp ts = activate(m);
  m.on_apdu(ts += kStep, true, Apdu::make_u(UFunction::kStopDtAct));
  // The outstation may drain queued frames until it confirms the stop…
  m.on_apdu(ts += kStep, false, i_frame(0));
  EXPECT_EQ(m.verdict(), Verdict::kClean);
  // …but the station that requested the stop must not send data.
  m.on_apdu(ts += kStep, true, i_frame(0));
  EXPECT_TRUE(m.hostile());
  EXPECT_EQ(m.profile().count(ViolationCode::kDataAfterStopDt), 1u);
}

TEST(Conformance, LegacyProfilesAreWhitelisted) {
  // O53/O58/O28-style 1-octet COT decodes under legacy_cot: the paper's
  // measured deviation, scored kLegacy, verdict stays non-hostile.
  ConformanceMachine m;
  Timestamp ts = activate(m);
  m.on_apdu(ts += kStep, false, i_frame(0), CodecProfile::legacy_cot());
  m.on_apdu(ts += kStep, false, i_frame(1), CodecProfile::legacy_ioa());
  EXPECT_EQ(m.verdict(), Verdict::kLegacy);
  EXPECT_EQ(m.profile().legacy_events, 2u);

  ConformancePolicy strict;
  strict.whitelist_legacy_profiles = false;
  ConformanceMachine s(strict);
  ts = activate(s);
  s.on_apdu(ts += kStep, false, i_frame(0), CodecProfile::legacy_cot());
  EXPECT_EQ(s.verdict(), Verdict::kSuspect);
}

TEST(Conformance, TimerDeviationIsObservedNotScored) {
  // C2-O30's 430 s keep-alive loop: a fingerprint, never an indictment.
  ConformanceMachine m;
  Timestamp ts = activate(m);
  m.on_apdu(ts += kStep, false, i_frame(0));
  m.on_apdu(ts + from_seconds(430.0), true, Apdu::make_s(1));
  EXPECT_EQ(m.verdict(), Verdict::kClean);
  EXPECT_EQ(m.profile().count(ViolationCode::kTimerDeviation), 2u);  // idle + ack
  EXPECT_GE(m.profile().timers.max_idle_s, 430.0);
}

TEST(Conformance, GarbageFloodCrossesHostileScore) {
  ConformanceMachine brief;
  brief.on_parse_failures(0, FailureKind::kGarbage, 4);
  EXPECT_EQ(brief.verdict(), Verdict::kSuspect);  // 4 * 0.5 = 2.0

  ConformanceMachine flood;
  flood.on_parse_failures(0, FailureKind::kGarbage, 16);  // 16 * 0.5 = 8.0
  EXPECT_TRUE(flood.hostile());
}

TEST(Conformance, OversizedFramesAreHostile) {
  ConformanceMachine m;
  m.on_parse_failures(0, FailureKind::kUndecodable, 3, 2);
  EXPECT_TRUE(m.hostile());
  EXPECT_EQ(m.profile().count(ViolationCode::kOversizedApdu), 2u);
  // The non-oversized remainder stays in the warn-weighted flood bucket.
  EXPECT_EQ(m.profile().count(ViolationCode::kUndecodableTraffic), 1u);
}

TEST(Conformance, AckStarvationFlagsOnce) {
  ConformancePolicy policy;
  policy.window_slack = 1000;  // isolate the starvation rule from the window
  ConformanceMachine m(policy);
  Timestamp ts = 0;  // mid-stream capture
  int limit = policy.w * policy.ack_starvation_factor;
  for (int ns = 0; ns < limit + 8; ++ns) {
    m.on_apdu(ts += kStep, false, i_frame(static_cast<std::uint16_t>(ns)));
  }
  EXPECT_EQ(m.profile().count(ViolationCode::kAckStarvation), 1u);
  EXPECT_EQ(m.verdict(), Verdict::kSuspect);
}

TEST(Conformance, SummaryOrdersBySeverity) {
  ConformanceMachine m;
  m.on_connection_open(0);
  m.on_apdu(kStep, true, i_frame(0));  // hostile
  m.on_parse_failures(2 * kStep, FailureKind::kGarbage, 2);
  auto text = m.profile().summary();
  EXPECT_NE(text.find("i-before-startdt"), std::string::npos);
  EXPECT_LT(text.find("i-before-startdt"), text.find("garbage-traffic"));
}

TEST(QuarantinePolicy, DefaultsReproduceLegacyHeuristic) {
  // The old rule: quarantine when failures >= 8 and failures > apdus.
  QuarantinePolicy policy;
  EXPECT_TRUE(policy.should_quarantine(policy.score(8, 0, 0, 0), 8, 7));
  EXPECT_FALSE(policy.should_quarantine(policy.score(7, 0, 0, 0), 7, 6));
  EXPECT_FALSE(policy.should_quarantine(policy.score(8, 0, 0, 0), 8, 8));
  EXPECT_TRUE(policy.should_quarantine(policy.score(3, 3, 2, 0), 8, 2));
}

TEST(QuarantinePolicy, WeightsAndThresholdAreTunable) {
  QuarantinePolicy policy;
  policy.oversized_weight = 4.0;
  policy.score_threshold = 8.0;
  policy.require_failures_exceed_apdus = false;
  EXPECT_TRUE(policy.should_quarantine(policy.score(0, 2, 0, 2), 2, 100));

  policy.score_threshold = 0.0;  // disabled
  EXPECT_FALSE(policy.should_quarantine(1e9, 100, 0));
}

}  // namespace
}  // namespace uncharted::iec104
