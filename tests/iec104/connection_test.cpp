#include "iec104/connection.hpp"

#include <gtest/gtest.h>

namespace uncharted::iec104 {
namespace {

constexpr Timestamp kT0 = 1'000'000'000;  // arbitrary base

Asdu tiny_asdu() {
  Asdu asdu;
  asdu.type = TypeId::M_ME_NC_1;
  asdu.cot.cause = Cause::kSpontaneous;
  asdu.common_address = 1;
  asdu.objects.push_back({10, ShortFloat{1.0f, Quality{}}, std::nullopt});
  return asdu;
}

TEST(Connection, StartsStoppedUntilStartDt) {
  ConnectionEngine out(Role::kControlled);
  out.on_connected(kT0);
  EXPECT_FALSE(out.started());
  EXPECT_FALSE(out.send_asdu(kT0, tiny_asdu()).has_value());

  auto sig = out.on_apdu(kT0 + 1000, Apdu::make_u(UFunction::kStartDtAct));
  ASSERT_EQ(sig.to_send.size(), 1u);
  EXPECT_EQ(sig.to_send[0].token(), "U2");
  EXPECT_TRUE(out.started());
  EXPECT_TRUE(out.send_asdu(kT0 + 2000, tiny_asdu()).has_value());
}

TEST(Connection, SequenceNumbersIncrement) {
  ConnectionEngine out(Role::kControlled);
  out.on_connected(kT0);
  out.on_apdu(kT0, Apdu::make_u(UFunction::kStartDtAct));
  auto a1 = out.send_asdu(kT0 + 1, tiny_asdu());
  auto a2 = out.send_asdu(kT0 + 2, tiny_asdu());
  ASSERT_TRUE(a1 && a2);
  EXPECT_EQ(a1->send_seq, 0);
  EXPECT_EQ(a2->send_seq, 1);
  EXPECT_EQ(out.vs(), 2);
  EXPECT_EQ(out.unacked(), 2);
}

TEST(Connection, SFormatAcknowledgesWindow) {
  ConnectionEngine out(Role::kControlled);
  out.on_connected(kT0);
  out.on_apdu(kT0, Apdu::make_u(UFunction::kStartDtAct));
  for (int i = 0; i < 5; ++i) out.send_asdu(kT0 + 10 + i, tiny_asdu());
  EXPECT_EQ(out.unacked(), 5);
  out.on_apdu(kT0 + 100, Apdu::make_s(3));
  EXPECT_EQ(out.unacked(), 2);
  out.on_apdu(kT0 + 200, Apdu::make_s(5));
  EXPECT_EQ(out.unacked(), 0);
}

TEST(Connection, WindowKBlocksSending) {
  ConnectionEngine out(Role::kControlled, Timers{}, /*k=*/3, /*w=*/2);
  out.on_connected(kT0);
  out.on_apdu(kT0, Apdu::make_u(UFunction::kStartDtAct));
  EXPECT_TRUE(out.send_asdu(kT0 + 1, tiny_asdu()).has_value());
  EXPECT_TRUE(out.send_asdu(kT0 + 2, tiny_asdu()).has_value());
  EXPECT_TRUE(out.send_asdu(kT0 + 3, tiny_asdu()).has_value());
  // Window of 3 full: further sends are refused until an ack.
  EXPECT_FALSE(out.send_asdu(kT0 + 4, tiny_asdu()).has_value());
  out.on_apdu(kT0 + 5, Apdu::make_s(3));
  EXPECT_TRUE(out.send_asdu(kT0 + 6, tiny_asdu()).has_value());
}

TEST(Connection, ReceiverAcksEveryWIApdus) {
  ConnectionEngine server(Role::kControlling, Timers{}, kDefaultK, /*w=*/4);
  server.on_connected(kT0);
  server.on_apdu(kT0, Apdu::make_u(UFunction::kStartDtCon));
  int s_count = 0;
  for (int i = 0; i < 12; ++i) {
    auto sig = server.on_apdu(kT0 + 10 * (i + 1),
                              Apdu::make_i(static_cast<std::uint16_t>(i), 0, tiny_asdu()));
    for (const auto& apdu : sig.to_send) {
      if (apdu.format == ApduFormat::kS) {
        ++s_count;
        EXPECT_EQ(apdu.recv_seq, static_cast<std::uint16_t>(i + 1));
      }
    }
  }
  EXPECT_EQ(s_count, 3);  // every 4th
}

TEST(Connection, T2FlushesPendingAck) {
  Timers timers;
  timers.t2 = 10.0;
  ConnectionEngine server(Role::kControlling, timers, kDefaultK, /*w=*/8);
  server.on_connected(kT0);
  server.on_apdu(kT0 + 1, Apdu::make_i(0, 0, tiny_asdu()));
  EXPECT_EQ(server.unacked_received(), 1);

  // Before T2: nothing.
  auto quiet = server.on_tick(kT0 + from_seconds(5.0));
  EXPECT_TRUE(quiet.to_send.empty());

  auto sig = server.on_tick(kT0 + from_seconds(11.0));
  ASSERT_EQ(sig.to_send.size(), 1u);
  EXPECT_EQ(sig.to_send[0].format, ApduFormat::kS);
  EXPECT_EQ(server.unacked_received(), 0);
}

TEST(Connection, T3IdleTriggersTestFrame) {
  Timers timers;
  timers.t3 = 20.0;
  ConnectionEngine eng(Role::kControlling, timers);
  eng.on_connected(kT0);
  auto early = eng.on_tick(kT0 + from_seconds(19.0));
  EXPECT_TRUE(early.to_send.empty());
  auto sig = eng.on_tick(kT0 + from_seconds(21.0));
  ASSERT_EQ(sig.to_send.size(), 1u);
  EXPECT_EQ(sig.to_send[0].token(), "U16");
  // Only one test outstanding at a time.
  auto again = eng.on_tick(kT0 + from_seconds(22.0));
  EXPECT_TRUE(again.to_send.empty());
}

TEST(Connection, T1ExpiryOnUnansweredTestRequestsClose) {
  Timers timers;
  timers.t1 = 15.0;
  timers.t3 = 20.0;
  ConnectionEngine eng(Role::kControlling, timers);
  eng.on_connected(kT0);
  auto test = eng.on_tick(kT0 + from_seconds(21.0));
  ASSERT_FALSE(test.to_send.empty());
  // No TESTFR con arrives; T1 after the send must close.
  auto closed = eng.on_tick(kT0 + from_seconds(21.0 + 16.0));
  EXPECT_TRUE(closed.close_connection);
}

TEST(Connection, TestFrConCancelsT1) {
  Timers timers;
  timers.t1 = 15.0;
  timers.t3 = 20.0;
  ConnectionEngine eng(Role::kControlling, timers);
  eng.on_connected(kT0);
  eng.on_tick(kT0 + from_seconds(21.0));  // emits TESTFR act
  eng.on_apdu(kT0 + from_seconds(22.0), Apdu::make_u(UFunction::kTestFrCon));
  auto sig = eng.on_tick(kT0 + from_seconds(40.0));
  EXPECT_FALSE(sig.close_connection);
}

TEST(Connection, RespondsToTestAndStop) {
  ConnectionEngine eng(Role::kControlled);
  eng.on_connected(kT0);
  auto test = eng.on_apdu(kT0 + 1, Apdu::make_u(UFunction::kTestFrAct));
  ASSERT_EQ(test.to_send.size(), 1u);
  EXPECT_EQ(test.to_send[0].token(), "U32");

  eng.on_apdu(kT0 + 2, Apdu::make_u(UFunction::kStartDtAct));
  EXPECT_TRUE(eng.started());
  auto stop = eng.on_apdu(kT0 + 3, Apdu::make_u(UFunction::kStopDtAct));
  ASSERT_EQ(stop.to_send.size(), 1u);
  EXPECT_EQ(stop.to_send[0].token(), "U8");
  EXPECT_FALSE(eng.started());
}

TEST(Connection, ControllingStartStopHelpers) {
  ConnectionEngine ctl(Role::kControlling);
  ctl.on_connected(kT0);
  EXPECT_EQ(ctl.start_dt(kT0 + 1).token(), "U1");
  ctl.on_apdu(kT0 + 2, Apdu::make_u(UFunction::kStartDtCon));
  EXPECT_TRUE(ctl.started());
  EXPECT_EQ(ctl.stop_dt(kT0 + 3).token(), "U4");
  ctl.on_apdu(kT0 + 4, Apdu::make_u(UFunction::kStopDtCon));
  EXPECT_FALSE(ctl.started());
}

TEST(Connection, ResyncsOnOutOfSequencePeer) {
  ConnectionEngine eng(Role::kControlling);
  eng.on_connected(kT0);
  // A capture that starts mid-stream sees a peer N(S) of 500.
  eng.on_apdu(kT0 + 1, Apdu::make_i(500, 0, tiny_asdu()));
  EXPECT_EQ(eng.vr(), 501);
}

}  // namespace
}  // namespace uncharted::iec104
