#include "iec104/parser.hpp"

#include <gtest/gtest.h>

namespace uncharted::iec104 {
namespace {

Asdu float_asdu(std::uint16_t ca, std::uint32_t ioa, float value) {
  Asdu asdu;
  asdu.type = TypeId::M_ME_NC_1;
  asdu.cot.cause = Cause::kSpontaneous;
  asdu.common_address = ca;
  asdu.objects.push_back({ioa, ShortFloat{value, Quality{}}, std::nullopt});
  return asdu;
}

std::vector<std::uint8_t> encode_with(const Asdu& asdu, const CodecProfile& profile) {
  return Apdu::make_i(0, 0, asdu).encode(profile).take();
}

TEST(StreamParser, ParsesBackToBackApdus) {
  ApduStreamParser parser;
  auto a = Apdu::make_u(UFunction::kTestFrAct).encode().take();
  auto b = Apdu::make_s(5).encode().take();
  auto c = encode_with(float_asdu(1, 100, 2.5f), CodecProfile::standard());
  std::vector<std::uint8_t> stream = a;
  stream.insert(stream.end(), b.begin(), b.end());
  stream.insert(stream.end(), c.begin(), c.end());

  parser.feed(1000, stream);
  ASSERT_EQ(parser.apdus().size(), 3u);
  EXPECT_EQ(parser.apdus()[0].apdu.token(), "U16");
  EXPECT_EQ(parser.apdus()[1].apdu.token(), "S");
  EXPECT_EQ(parser.apdus()[2].apdu.token(), "I_13");
  EXPECT_TRUE(parser.apdus()[2].compliant);
  EXPECT_TRUE(parser.failures().empty());
  EXPECT_EQ(parser.buffered_bytes(), 0u);
}

TEST(StreamParser, ReassemblesAcrossFeedBoundaries) {
  ApduStreamParser parser;
  auto frame = encode_with(float_asdu(2, 200, 7.5f), CodecProfile::standard());
  // Feed one byte at a time — APDUs must still come out whole.
  for (std::size_t i = 0; i < frame.size(); ++i) {
    parser.feed(static_cast<Timestamp>(i),
                std::span<const std::uint8_t>(&frame[i], 1));
  }
  ASSERT_EQ(parser.apdus().size(), 1u);
  EXPECT_EQ(parser.apdus()[0].apdu.token(), "I_13");
}

TEST(StreamParser, ResynchronizesAfterGarbage) {
  ApduStreamParser parser;
  std::vector<std::uint8_t> stream = {0xde, 0xad, 0xbe, 0xef};  // no start byte
  auto good = Apdu::make_u(UFunction::kTestFrCon).encode().take();
  stream.insert(stream.end(), good.begin(), good.end());
  parser.feed(0, stream);
  ASSERT_EQ(parser.apdus().size(), 1u);
  EXPECT_EQ(parser.apdus()[0].apdu.token(), "U32");
  ASSERT_EQ(parser.failures().size(), 1u);
  EXPECT_EQ(parser.failures()[0].error, "bad-start-byte");
  EXPECT_EQ(parser.failures()[0].raw.size(), 4u);
  EXPECT_EQ(parser.failures()[0].kind, FailureKind::kGarbage);
  EXPECT_EQ(parser.resyncs(), 1u);
  EXPECT_EQ(parser.garbage_bytes(), 4u);
}

TEST(StreamParser, TaxonomySeparatesGarbageFromUndecodableFromTail) {
  ApduStreamParser parser;
  auto good = Apdu::make_u(UFunction::kTestFrAct).encode().take();

  std::vector<std::uint8_t> stream;
  // (1) garbage before the first frame — a desync the parser hunts past;
  stream.insert(stream.end(), {0x01, 0x02, 0x03});
  stream.insert(stream.end(), good.begin(), good.end());
  // (2) a well-framed APDU whose control field no profile explains;
  stream.insert(stream.end(), {0x68, 0x04, 0x03, 0x00, 0x00, 0x00});
  stream.insert(stream.end(), good.begin(), good.end());
  // (3) a frame cut off by the end of the stream.
  stream.insert(stream.end(), {0x68, 0x0e, 0x00, 0x00});
  parser.feed(7, stream);
  parser.finish(9);

  EXPECT_EQ(parser.apdus().size(), 2u);
  ASSERT_EQ(parser.failures().size(), 3u);
  EXPECT_EQ(parser.failures()[0].kind, FailureKind::kGarbage);
  EXPECT_EQ(parser.failures()[1].kind, FailureKind::kUndecodable);
  EXPECT_EQ(parser.failures()[2].kind, FailureKind::kTruncatedTail);
  EXPECT_EQ(parser.failures()[2].raw.size(), 4u);
  EXPECT_EQ(parser.resyncs(), 1u);
  EXPECT_EQ(parser.garbage_bytes(), 3u);
  EXPECT_EQ(parser.truncated_tail_bytes(), 4u);
  EXPECT_EQ(parser.buffered_bytes(), 0u);  // finish() drained the buffer
  // finish() is idempotent.
  parser.finish(10);
  EXPECT_EQ(parser.failures().size(), 3u);
}

TEST(StreamParser, ResyncBetweenValidApdusAfterInjectedGarbage) {
  ApduStreamParser parser;
  auto frame = encode_with(float_asdu(3, 300, 1.5f), CodecProfile::standard());
  std::vector<std::uint8_t> stream = frame;
  stream.insert(stream.end(), {0xde, 0xad});  // injected mid-stream garbage
  stream.insert(stream.end(), frame.begin(), frame.end());
  parser.feed(0, stream);
  ASSERT_EQ(parser.apdus().size(), 2u);
  EXPECT_EQ(parser.apdus()[1].apdu.token(), "I_13");
  EXPECT_EQ(parser.resyncs(), 1u);
  EXPECT_EQ(parser.garbage_bytes(), 2u);
}

TEST(StreamParser, DetectsLegacyCotProfile) {
  // The O53/O58/O28 case: 1-octet cause of transmission.
  ApduStreamParser parser;
  auto frame = encode_with(float_asdu(28, 3801, 131.2f), CodecProfile::legacy_cot());
  parser.feed(0, frame);
  ASSERT_EQ(parser.apdus().size(), 1u);
  const auto& parsed = parser.apdus()[0];
  EXPECT_FALSE(parsed.compliant);
  EXPECT_EQ(parsed.profile, CodecProfile::legacy_cot());
  EXPECT_EQ(parsed.apdu.asdu->common_address, 28);
  EXPECT_EQ(parsed.apdu.asdu->objects[0].ioa, 3801u);
  EXPECT_FLOAT_EQ(std::get<ShortFloat>(parsed.apdu.asdu->objects[0].value).value, 131.2f);
  EXPECT_EQ(parser.non_compliant_count(), 1u);
  ASSERT_TRUE(parser.locked_profile().has_value());
}

TEST(StreamParser, DetectsLegacyIoaProfileDespiteAmbiguity) {
  // The O37 case: 2-octet IOA. The same bytes also parse "exactly" under
  // the 1-octet-COT profile, but with an implausible CA and IOA; the
  // plausibility score must pick the right one.
  ApduStreamParser parser;
  auto frame = encode_with(float_asdu(37, 4701, 59.98f), CodecProfile::legacy_ioa());
  parser.feed(0, frame);
  ASSERT_EQ(parser.apdus().size(), 1u);
  const auto& parsed = parser.apdus()[0];
  EXPECT_FALSE(parsed.compliant);
  EXPECT_EQ(parsed.profile, CodecProfile::legacy_ioa());
  EXPECT_EQ(parsed.apdu.asdu->common_address, 37);
  EXPECT_EQ(parsed.apdu.asdu->objects[0].ioa, 4701u);
}

TEST(StreamParser, StandardPreferredWhenItParses) {
  ApduStreamParser parser;
  for (int i = 0; i < 20; ++i) {
    auto frame = encode_with(float_asdu(5, 1000 + static_cast<std::uint32_t>(i),
                                        60.0f + static_cast<float>(i)),
                             CodecProfile::standard());
    parser.feed(static_cast<Timestamp>(i), frame);
  }
  EXPECT_EQ(parser.non_compliant_count(), 0u);
  EXPECT_FALSE(parser.locked_profile().has_value());
  for (const auto& parsed : parser.apdus()) EXPECT_TRUE(parsed.compliant);
}

TEST(StreamParser, StrictModeFailsOnLegacyTraffic) {
  ApduStreamParser parser(ApduStreamParser::Mode::kStrict);
  auto frame = encode_with(float_asdu(37, 4701, 59.98f), CodecProfile::legacy_ioa());
  parser.feed(0, frame);
  // Depending on byte layout the strict parse either fails outright or is
  // rejected by exactness; either way nothing compliant comes out.
  EXPECT_TRUE(parser.apdus().empty());
  EXPECT_EQ(parser.failures().size(), 1u);
}

TEST(StreamParser, LockedProfileStaysSticky) {
  ApduStreamParser parser;
  for (int i = 0; i < 50; ++i) {
    auto frame = encode_with(float_asdu(53, 5300 + static_cast<std::uint32_t>(i),
                                        0.5f + static_cast<float>(i)),
                             CodecProfile::legacy_cot());
    parser.feed(static_cast<Timestamp>(i), frame);
  }
  EXPECT_EQ(parser.non_compliant_count(), 50u);
  EXPECT_EQ(*parser.locked_profile(), CodecProfile::legacy_cot());
  for (const auto& parsed : parser.apdus()) {
    EXPECT_EQ(parsed.apdu.asdu->common_address, 53);
  }
}

TEST(StreamParser, SAndUFramesAreAlwaysCompliant) {
  ApduStreamParser parser;
  parser.feed(0, Apdu::make_u(UFunction::kStartDtAct).encode().take());
  parser.feed(1, Apdu::make_s(3).encode().take());
  EXPECT_EQ(parser.non_compliant_count(), 0u);
  for (const auto& parsed : parser.apdus()) EXPECT_TRUE(parsed.compliant);
}

TEST(DetectProfiles, ReportsAllExactMatches) {
  auto standard = encode_with(float_asdu(1, 100, 50.0f), CodecProfile::standard());
  auto matches = detect_profiles(standard);
  ASSERT_FALSE(matches.empty());
  EXPECT_TRUE(matches.front().is_standard());

  auto legacy = encode_with(float_asdu(37, 4701, 50.0f), CodecProfile::legacy_ioa());
  auto legacy_matches = detect_profiles(legacy);
  bool found = false;
  for (const auto& m : legacy_matches) {
    if (m == CodecProfile::legacy_ioa()) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Plausibility, PenalizesGarbageDecodes) {
  Asdu plausible = float_asdu(37, 4701, 59.98f);
  Asdu garbage = float_asdu(9472, 1203456, 59.98f);
  garbage.cot.cause = static_cast<Cause>(0x3f);
  EXPECT_GT(asdu_plausibility(plausible, CodecProfile::standard()),
            asdu_plausibility(garbage, CodecProfile::standard()));
}

TEST(StreamParser, UndecodableFrameRecorded) {
  ApduStreamParser parser;
  // Valid framing (0x68 + length) but nonsense I-format body.
  std::vector<std::uint8_t> frame = {0x68, 0x08, 0x00, 0x00, 0x00, 0x00,
                                     0xff, 0xff, 0xff, 0xff};
  parser.feed(0, frame);
  EXPECT_TRUE(parser.apdus().empty());
  ASSERT_EQ(parser.failures().size(), 1u);
  EXPECT_EQ(parser.failures()[0].error, "undecodable-apdu");
  EXPECT_EQ(parser.failures()[0].raw.size(), frame.size());
}

}  // namespace
}  // namespace uncharted::iec104
