// Property tests for the stream parser:
//   1. chunking-invariance: any segmentation of an APDU stream yields the
//      same parse as feeding it whole;
//   2. round-trip: random APDU sequences (random formats, types, profiles)
//      survive encode -> stream-parse;
//   3. robustness: random garbage never crashes and never produces
//      phantom compliant I-APDUs.
#include <gtest/gtest.h>

#include "iec104/parser.hpp"
#include "util/rng.hpp"

namespace uncharted::iec104 {
namespace {

/// Random APDU generator over a plausibility-safe subset.
class RandomApduSource {
 public:
  explicit RandomApduSource(std::uint64_t seed) : rng_(seed) {}

  Apdu next(const CodecProfile& profile) {
    double pick = rng_.uniform();
    if (pick < 0.15) return Apdu::make_s(static_cast<std::uint16_t>(rng_.below(32768)));
    if (pick < 0.3) {
      static const UFunction kFns[] = {UFunction::kStartDtAct, UFunction::kStartDtCon,
                                       UFunction::kStopDtAct, UFunction::kStopDtCon,
                                       UFunction::kTestFrAct, UFunction::kTestFrCon};
      return Apdu::make_u(kFns[rng_.below(6)]);
    }
    Asdu asdu;
    asdu.common_address = static_cast<std::uint16_t>(1 + rng_.below(120));
    asdu.cot.cause = rng_.chance(0.5) ? Cause::kSpontaneous : Cause::kPeriodic;
    int objects = static_cast<int>(1 + rng_.below(4));
    double tpick = rng_.uniform();
    for (int i = 0; i < objects; ++i) {
      InformationObject obj;
      // Legacy-profile frames are length-ambiguous with each other, so
      // plausibility must break the tie; keep addresses in the realistic
      // range (devices retaining IEC 101 options have small IOA spaces).
      std::uint32_t ioa_limit = profile.is_standard() ? 1'000'000u : 65'000u;
      obj.ioa = static_cast<std::uint32_t>(1 + rng_.below(ioa_limit));
      if (tpick < 0.5) {
        asdu.type = TypeId::M_ME_NC_1;
        obj.value = ShortFloat{static_cast<float>(rng_.uniform(-500.0, 500.0)), {}};
      } else if (tpick < 0.75) {
        asdu.type = TypeId::M_ME_TF_1;
        obj.value = ShortFloat{static_cast<float>(rng_.uniform(0.0, 200.0)), {}};
        obj.time = Cp56Time2a::from_timestamp(1560556800ULL * 1'000'000 +
                                              rng_.below(86'400'000'000ULL));
      } else if (tpick < 0.9) {
        asdu.type = TypeId::M_DP_NA_1;
        obj.value = DoublePoint{static_cast<std::uint8_t>(rng_.below(3)), {}};
      } else {
        asdu.type = TypeId::M_ME_NB_1;
        obj.value = ScaledValue{static_cast<std::int16_t>(rng_.range(-3000, 3000)), {}};
      }
      asdu.objects.push_back(std::move(obj));
    }
    return Apdu::make_i(static_cast<std::uint16_t>(rng_.below(32768)),
                        static_cast<std::uint16_t>(rng_.below(32768)), std::move(asdu));
  }

  Rng& rng() { return rng_; }

 private:
  Rng rng_;
};

std::vector<std::string> parse_tokens(std::span<const std::uint8_t> stream,
                                      std::size_t max_chunk, Rng& rng) {
  ApduStreamParser parser;
  std::size_t pos = 0;
  while (pos < stream.size()) {
    std::size_t n = std::min<std::size_t>(1 + rng.below(max_chunk), stream.size() - pos);
    parser.feed(static_cast<Timestamp>(pos), stream.subspan(pos, n));
    pos += n;
  }
  std::vector<std::string> tokens;
  for (const auto& parsed : parser.apdus()) tokens.push_back(parsed.apdu.token());
  EXPECT_TRUE(parser.failures().empty());
  EXPECT_EQ(parser.buffered_bytes(), 0u);
  return tokens;
}

class ChunkingInvariance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChunkingInvariance, AnySegmentationYieldsSameTokens) {
  RandomApduSource source(GetParam());
  CodecProfile profile = GetParam() % 3 == 0   ? CodecProfile::legacy_cot()
                         : GetParam() % 3 == 1 ? CodecProfile::legacy_ioa()
                                               : CodecProfile::standard();
  std::vector<std::uint8_t> stream;
  std::vector<std::string> expected;
  for (int i = 0; i < 60; ++i) {
    Apdu apdu = source.next(profile);
    expected.push_back(apdu.token());
    auto bytes = apdu.encode(profile);
    ASSERT_TRUE(bytes.ok()) << bytes.error().str();
    stream.insert(stream.end(), bytes->begin(), bytes->end());
  }

  auto whole = parse_tokens(stream, stream.size(), source.rng());
  EXPECT_EQ(whole, expected);
  for (std::size_t max_chunk : {1u, 3u, 7u, 64u}) {
    auto chunked = parse_tokens(stream, max_chunk, source.rng());
    EXPECT_EQ(chunked, expected) << "max_chunk=" << max_chunk;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChunkingInvariance,
                         ::testing::Values(11, 12, 13, 14, 15, 16));

TEST(ParserRobustness, RandomGarbageNeverCrashes) {
  Rng rng(999);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<std::uint8_t> garbage(rng.below(300));
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.below(256));
    ApduStreamParser parser;
    parser.feed(0, garbage);
    // Whatever was "parsed" from noise must at least be internally
    // consistent: every parsed I-APDU carries an ASDU.
    for (const auto& parsed : parser.apdus()) {
      if (parsed.apdu.format == ApduFormat::kI) {
        EXPECT_TRUE(parsed.apdu.asdu.has_value());
      }
    }
  }
}

TEST(ParserRobustness, TruncatedTailStaysBuffered) {
  RandomApduSource source(77);
  auto apdu = source.next(CodecProfile::standard());
  auto bytes = apdu.encode().take();
  ApduStreamParser parser;
  parser.feed(0, std::span<const std::uint8_t>(bytes).subspan(0, bytes.size() - 1));
  EXPECT_TRUE(parser.apdus().empty());
  EXPECT_EQ(parser.buffered_bytes(), bytes.size() - 1);
  parser.feed(1, std::span<const std::uint8_t>(bytes).subspan(bytes.size() - 1));
  EXPECT_EQ(parser.apdus().size(), 1u);
  EXPECT_EQ(parser.buffered_bytes(), 0u);
}

// Round-trip across every profile: the parsed ASDU equals the encoded one.
class ProfileRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(ProfileRoundTrip, ParsedAsduMatches) {
  CodecProfile profile = candidate_profiles()[static_cast<std::size_t>(GetParam())];
  RandomApduSource source(42 + static_cast<std::uint64_t>(GetParam()));
  for (int i = 0; i < 100; ++i) {
    Apdu apdu = source.next(profile);
    if (apdu.format != ApduFormat::kI) continue;
    auto bytes = apdu.encode(profile);
    ASSERT_TRUE(bytes.ok());
    ApduStreamParser parser;
    parser.feed(0, bytes.value());
    ASSERT_EQ(parser.apdus().size(), 1u);
    const auto& parsed = parser.apdus()[0];
    ASSERT_TRUE(parsed.apdu.asdu.has_value());
    EXPECT_EQ(parsed.apdu.asdu->type, apdu.asdu->type);
    EXPECT_EQ(parsed.apdu.asdu->common_address, apdu.asdu->common_address);
    ASSERT_EQ(parsed.apdu.asdu->objects.size(), apdu.asdu->objects.size());
    for (std::size_t k = 0; k < apdu.asdu->objects.size(); ++k) {
      EXPECT_EQ(parsed.apdu.asdu->objects[k].ioa, apdu.asdu->objects[k].ioa);
      EXPECT_EQ(parsed.apdu.asdu->objects[k].value, apdu.asdu->objects[k].value);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllProfiles, ProfileRoundTrip, ::testing::Values(0, 1, 2, 3));

}  // namespace
}  // namespace uncharted::iec104
