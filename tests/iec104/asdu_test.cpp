#include "iec104/asdu.hpp"

#include <gtest/gtest.h>

namespace uncharted::iec104 {
namespace {

Asdu sample_float_asdu(int objects = 1) {
  Asdu asdu;
  asdu.type = TypeId::M_ME_NC_1;
  asdu.cot.cause = Cause::kSpontaneous;
  asdu.common_address = 37;
  for (int i = 0; i < objects; ++i) {
    InformationObject obj;
    obj.ioa = 4700 + static_cast<std::uint32_t>(i);
    obj.value = ShortFloat{130.5f + static_cast<float>(i), Quality{}};
    asdu.objects.push_back(obj);
  }
  return asdu;
}

TEST(Asdu, RoundTripStandardProfile) {
  Asdu asdu = sample_float_asdu(3);
  ByteWriter w;
  ASSERT_TRUE(asdu.encode(w).ok());
  // type + vsq + cot2 + ca2 + 3*(ioa3 + float4 + qds1) = 6 + 24.
  EXPECT_EQ(w.size(), 30u);

  ByteReader r(w.view());
  auto back = Asdu::decode(r);
  ASSERT_TRUE(back.ok()) << back.error().str();
  EXPECT_EQ(back->type, TypeId::M_ME_NC_1);
  EXPECT_EQ(back->cot.cause, Cause::kSpontaneous);
  EXPECT_EQ(back->common_address, 37);
  ASSERT_EQ(back->objects.size(), 3u);
  EXPECT_EQ(back->objects[1].ioa, 4701u);
  EXPECT_EQ(std::get<ShortFloat>(back->objects[1].value).value, 131.5f);
}

TEST(Asdu, RoundTripLegacyCotProfile) {
  Asdu asdu = sample_float_asdu();
  ByteWriter w;
  ASSERT_TRUE(asdu.encode(w, CodecProfile::legacy_cot()).ok());
  // One COT octet instead of two.
  EXPECT_EQ(w.size(), 13u);
  ByteReader r(w.view());
  auto back = Asdu::decode(r, CodecProfile::legacy_cot());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->cot.cause, Cause::kSpontaneous);
  EXPECT_EQ(back->objects[0].ioa, 4700u);
}

TEST(Asdu, RoundTripLegacyIoaProfile) {
  Asdu asdu = sample_float_asdu();
  ByteWriter w;
  ASSERT_TRUE(asdu.encode(w, CodecProfile::legacy_ioa()).ok());
  EXPECT_EQ(w.size(), 13u);  // 2-octet IOA saves one byte
  ByteReader r(w.view());
  auto back = Asdu::decode(r, CodecProfile::legacy_ioa());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->objects[0].ioa, 4700u);
}

TEST(Asdu, ProfileMismatchDetectedByExactness) {
  // Standard encoding decoded with the 1-octet-COT profile leaves the byte
  // count off by one -> trailing/truncation error, never silent success.
  Asdu asdu = sample_float_asdu();
  ByteWriter w;
  ASSERT_TRUE(asdu.encode(w).ok());
  ByteReader r(w.view());
  auto back = Asdu::decode(r, CodecProfile::legacy_cot());
  EXPECT_TRUE(!back.ok() || !r.empty());
}

TEST(Asdu, SequenceEncoding) {
  Asdu asdu;
  asdu.type = TypeId::M_ME_NC_1;
  asdu.sequence = true;
  asdu.cot.cause = Cause::kInterrogatedByStation;
  asdu.common_address = 5;
  for (int i = 0; i < 4; ++i) {
    InformationObject obj;
    obj.ioa = 2000 + static_cast<std::uint32_t>(i);  // consecutive by contract
    obj.value = ShortFloat{static_cast<float>(i), Quality{}};
    asdu.objects.push_back(obj);
  }
  ByteWriter w;
  ASSERT_TRUE(asdu.encode(w).ok());
  // SQ=1: single IOA + 4 elements: 6 + 3 + 4*5 = 29.
  EXPECT_EQ(w.size(), 29u);
  ByteReader r(w.view());
  auto back = Asdu::decode(r);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->sequence);
  ASSERT_EQ(back->objects.size(), 4u);
  EXPECT_EQ(back->objects[0].ioa, 2000u);
  EXPECT_EQ(back->objects[3].ioa, 2003u);
}

TEST(Asdu, TimeTaggedRoundTrip) {
  Asdu asdu;
  asdu.type = TypeId::M_ME_TF_1;
  asdu.cot.cause = Cause::kSpontaneous;
  asdu.common_address = 9;
  InformationObject obj;
  obj.ioa = 1234;
  obj.value = ShortFloat{0.25f, Quality{}};
  obj.time = Cp56Time2a::from_timestamp(1560556800ULL * 1'000'000);
  asdu.objects.push_back(obj);
  ByteWriter w;
  ASSERT_TRUE(asdu.encode(w).ok());
  ByteReader r(w.view());
  auto back = Asdu::decode(r);
  ASSERT_TRUE(back.ok());
  ASSERT_TRUE(back->objects[0].time.has_value());
  EXPECT_EQ(back->objects[0].time->to_timestamp(), 1560556800ULL * 1'000'000);
}

TEST(Asdu, MissingTimeTagIsEncodeError) {
  Asdu asdu;
  asdu.type = TypeId::M_ME_TF_1;
  asdu.common_address = 1;
  InformationObject obj;
  obj.ioa = 1;
  obj.value = ShortFloat{1.0f, Quality{}};
  asdu.objects.push_back(obj);  // no time tag
  ByteWriter w;
  auto st = asdu.encode(w);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, "missing-time-tag");
}

TEST(Asdu, RejectsUnknownTypeAndZeroObjects) {
  ByteWriter w;
  w.u8(2);  // M_SP_TA_1: IEC 101 only, not in the 104 subset
  w.u8(1);
  w.u8(3);
  w.u8(0);
  w.u16le(1);
  ByteReader r(w.view());
  auto res = Asdu::decode(r);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.error().code, "unknown-typeid");

  ByteWriter w2;
  w2.u8(13);
  w2.u8(0);  // zero objects
  w2.u8(3);
  w2.u8(0);
  w2.u16le(1);
  ByteReader r2(w2.view());
  auto res2 = Asdu::decode(r2);
  ASSERT_FALSE(res2.ok());
  EXPECT_EQ(res2.error().code, "zero-objects");

  Asdu empty;
  ByteWriter w3;
  EXPECT_FALSE(empty.encode(w3).ok());
}

TEST(Asdu, TrailingBytesRejected) {
  Asdu asdu = sample_float_asdu();
  ByteWriter w;
  ASSERT_TRUE(asdu.encode(w).ok());
  w.u8(0xff);  // junk
  ByteReader r(w.view());
  auto res = Asdu::decode(r);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.error().code, "trailing-bytes");
}

TEST(Asdu, CotFlagsRoundTrip) {
  Asdu asdu = sample_float_asdu();
  asdu.cot.negative = true;
  asdu.cot.test = true;
  asdu.cot.originator = 7;
  ByteWriter w;
  ASSERT_TRUE(asdu.encode(w).ok());
  ByteReader r(w.view());
  auto back = Asdu::decode(r);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->cot.negative);
  EXPECT_TRUE(back->cot.test);
  EXPECT_EQ(back->cot.originator, 7);
}

TEST(CodecProfile, Labels) {
  EXPECT_EQ(CodecProfile::standard().str(), "standard");
  EXPECT_EQ(CodecProfile::legacy_cot().str(), "cot=1,ioa=3,ca=2");
  EXPECT_TRUE(CodecProfile::standard().is_standard());
  EXPECT_FALSE(CodecProfile::legacy_both().is_standard());
}

}  // namespace
}  // namespace uncharted::iec104
