// Integration of two ConnectionEngines driving each other over a virtual
// wire: the full controlling/controlled lifecycle of §4 — STARTDT, data
// transfer with S-format acknowledgements, keep-alive tests, windowing —
// without any scripted responses.
#include <deque>

#include <gtest/gtest.h>

#include "iec104/connection.hpp"

namespace uncharted::iec104 {
namespace {

/// Two engines and a lossless in-order wire between them.
class Wire {
 public:
  Wire()
      : server_(Role::kControlling, Timers{}, kDefaultK, /*w=*/4),
        outstation_(Role::kControlled, Timers{}, kDefaultK, /*w=*/4) {
    server_.on_connected(now_);
    outstation_.on_connected(now_);
  }

  /// Delivers queued APDUs until both directions are idle.
  void settle() {
    bool progress = true;
    while (progress) {
      progress = false;
      while (!to_outstation_.empty()) {
        progress = true;
        Apdu apdu = to_outstation_.front();
        to_outstation_.pop_front();
        deliver(outstation_.on_apdu(now_, apdu), to_server_);
      }
      while (!to_server_.empty()) {
        progress = true;
        Apdu apdu = to_server_.front();
        to_server_.pop_front();
        deliver(server_.on_apdu(now_, apdu), to_outstation_);
      }
    }
  }

  void server_sends(const Apdu& apdu) { to_outstation_.push_back(apdu); }
  void outstation_sends(const Apdu& apdu) { to_server_.push_back(apdu); }

  void advance(double seconds) { now_ += from_seconds(seconds); }
  Timestamp now() const { return now_; }

  /// Runs both engines' timers and routes what they emit.
  void tick() {
    deliver(server_.on_tick(now_), to_outstation_);
    deliver(outstation_.on_tick(now_), to_server_);
  }

  ConnectionEngine server_;
  ConnectionEngine outstation_;
  std::vector<Apdu> outstation_inbox_;  ///< observed S frames etc.

 private:
  void deliver(const EngineSignals& signals, std::deque<Apdu>& queue) {
    EXPECT_FALSE(signals.close_connection) << "unexpected close";
    for (const auto& apdu : signals.to_send) queue.push_back(apdu);
  }

  Timestamp now_ = 1'000'000'000;
  std::deque<Apdu> to_outstation_;
  std::deque<Apdu> to_server_;
};

Asdu measurement(float value) {
  Asdu asdu;
  asdu.type = TypeId::M_ME_NC_1;
  asdu.cot.cause = Cause::kSpontaneous;
  asdu.common_address = 7;
  asdu.objects.push_back({1001, ShortFloat{value, {}}, std::nullopt});
  return asdu;
}

TEST(ConnectionPair, FullLifecycle) {
  Wire wire;

  // 1. Server starts data transfer; outstation confirms.
  wire.server_sends(wire.server_.start_dt(wire.now()));
  wire.settle();
  EXPECT_TRUE(wire.server_.started());
  EXPECT_TRUE(wire.outstation_.started());

  // 2. Outstation sends 9 measurements; the server acks per w=4.
  for (int i = 0; i < 9; ++i) {
    auto apdu = wire.outstation_.send_asdu(wire.now(), measurement(60.0f + i));
    ASSERT_TRUE(apdu.has_value()) << i;
    wire.outstation_sends(*apdu);
    wire.settle();
  }
  // Two S-acks (after 4 and 8) leave one unacknowledged I-APDU.
  EXPECT_EQ(wire.outstation_.unacked(), 1);
  EXPECT_EQ(wire.server_.vr(), 9);

  // 3. This is why the standard mandates T2 < T1: the server owes an ack
  // for the 9th I-APDU, and must flush it (T2, 10 s) before the
  // outstation's send timer (T1, 15 s) would force a close. Step through
  // T2 first...
  wire.advance(11.0);
  wire.tick();
  wire.settle();
  EXPECT_EQ(wire.outstation_.unacked(), 0);

  // ...then idle past T3: both sides emit TESTFR act, each answered.
  wire.advance(21.0);
  wire.tick();
  wire.settle();
  wire.advance(5.0);
  wire.tick();
  wire.settle();

  // 4. Server stops data transfer.
  wire.server_sends(wire.server_.stop_dt(wire.now()));
  wire.settle();
  EXPECT_FALSE(wire.outstation_.started());
  EXPECT_FALSE(wire.outstation_.send_asdu(wire.now(), measurement(0.0f)).has_value());
}

TEST(ConnectionPair, WindowStallsUntilAcked) {
  Wire wire;
  wire.server_sends(wire.server_.start_dt(wire.now()));
  wire.settle();

  // Send k APDUs without letting the wire deliver anything.
  std::vector<Apdu> held;
  for (int i = 0; i < kDefaultK; ++i) {
    auto apdu = wire.outstation_.send_asdu(wire.now(), measurement(1.0f));
    ASSERT_TRUE(apdu.has_value());
    held.push_back(*apdu);
  }
  EXPECT_FALSE(wire.outstation_.send_asdu(wire.now(), measurement(2.0f)).has_value());

  // Deliver them; acks flow back; the window reopens.
  for (const auto& apdu : held) wire.outstation_sends(apdu);
  wire.settle();
  EXPECT_EQ(wire.outstation_.unacked(), 0);
  EXPECT_TRUE(wire.outstation_.send_asdu(wire.now(), measurement(3.0f)).has_value());
}

TEST(ConnectionPair, T2FlushWhenTrafficStops) {
  Wire wire;
  wire.server_sends(wire.server_.start_dt(wire.now()));
  wire.settle();

  // 2 I-APDUs (< w): no immediate ack.
  for (int i = 0; i < 2; ++i) {
    auto apdu = wire.outstation_.send_asdu(wire.now(), measurement(1.0f));
    wire.outstation_sends(*apdu);
  }
  wire.settle();
  EXPECT_EQ(wire.outstation_.unacked(), 2);

  // After T2 the server's tick emits the owed S-format ack.
  wire.advance(11.0);
  wire.tick();
  wire.settle();
  EXPECT_EQ(wire.outstation_.unacked(), 0);
}

}  // namespace
}  // namespace uncharted::iec104
