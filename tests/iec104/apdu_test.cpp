#include "iec104/apdu.hpp"

#include <gtest/gtest.h>

namespace uncharted::iec104 {
namespace {

Asdu tiny_asdu() {
  Asdu asdu;
  asdu.type = TypeId::M_ME_NC_1;
  asdu.cot.cause = Cause::kSpontaneous;
  asdu.common_address = 12;
  asdu.objects.push_back({100, ShortFloat{1.5f, Quality{}}, std::nullopt});
  return asdu;
}

TEST(Apdu, UFormatWireFormat) {
  auto bytes = Apdu::make_u(UFunction::kTestFrAct).encode();
  ASSERT_TRUE(bytes.ok());
  ASSERT_EQ(bytes->size(), 6u);
  EXPECT_EQ((*bytes)[0], 0x68);
  EXPECT_EQ((*bytes)[1], 0x04);
  EXPECT_EQ((*bytes)[2], 0x43);  // TESTFR act | 0x03
  EXPECT_EQ((*bytes)[3], 0x00);

  auto start = Apdu::make_u(UFunction::kStartDtAct).encode();
  EXPECT_EQ((*start)[2], 0x07);
  auto startcon = Apdu::make_u(UFunction::kStartDtCon).encode();
  EXPECT_EQ((*startcon)[2], 0x0b);
  auto testcon = Apdu::make_u(UFunction::kTestFrCon).encode();
  EXPECT_EQ((*testcon)[2], 0x83);
}

TEST(Apdu, SFormatSequenceNumber) {
  auto bytes = Apdu::make_s(1234).encode();
  ASSERT_TRUE(bytes.ok());
  ASSERT_EQ(bytes->size(), 6u);
  EXPECT_EQ((*bytes)[2], 0x01);
  ByteReader r(*bytes);
  auto back = decode_apdu(r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->format, ApduFormat::kS);
  EXPECT_EQ(back->recv_seq, 1234);
}

TEST(Apdu, IFormatRoundTripWithSequenceNumbers) {
  Apdu apdu = Apdu::make_i(32767, 12345, tiny_asdu());
  auto bytes = apdu.encode();
  ASSERT_TRUE(bytes.ok());
  ByteReader r(*bytes);
  auto back = decode_apdu(r);
  ASSERT_TRUE(back.ok()) << back.error().str();
  EXPECT_EQ(back->format, ApduFormat::kI);
  EXPECT_EQ(back->send_seq, 32767);
  EXPECT_EQ(back->recv_seq, 12345);
  ASSERT_TRUE(back->asdu.has_value());
  EXPECT_EQ(back->asdu->common_address, 12);
  EXPECT_TRUE(r.empty());
}

TEST(Apdu, SequenceNumbersWrapModulo32768) {
  Apdu apdu = Apdu::make_i(32768, 32769, tiny_asdu());
  EXPECT_EQ(apdu.send_seq, 0);
  EXPECT_EQ(apdu.recv_seq, 1);
}

TEST(Apdu, Tokens) {
  EXPECT_EQ(Apdu::make_s(0).token(), "S");
  EXPECT_EQ(Apdu::make_u(UFunction::kStartDtAct).token(), "U1");
  EXPECT_EQ(Apdu::make_u(UFunction::kStartDtCon).token(), "U2");
  EXPECT_EQ(Apdu::make_u(UFunction::kStopDtAct).token(), "U4");
  EXPECT_EQ(Apdu::make_u(UFunction::kStopDtCon).token(), "U8");
  EXPECT_EQ(Apdu::make_u(UFunction::kTestFrAct).token(), "U16");
  EXPECT_EQ(Apdu::make_u(UFunction::kTestFrCon).token(), "U32");
  EXPECT_EQ(Apdu::make_i(0, 0, tiny_asdu()).token(), "I_13");

  Asdu gi;
  gi.type = TypeId::C_IC_NA_1;
  gi.common_address = 1;
  gi.objects.push_back({0, InterrogationCommand{20}, std::nullopt});
  EXPECT_EQ(Apdu::make_i(0, 0, gi).token(), "I_100");
}

TEST(Apdu, RejectsBadStartByte) {
  std::uint8_t bytes[] = {0x67, 0x04, 0x43, 0x00, 0x00, 0x00};
  ByteReader r(bytes);
  auto res = decode_apdu(r);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.error().code, "bad-start-byte");
}

TEST(Apdu, RejectsBadLengths) {
  std::uint8_t too_short[] = {0x68, 0x03, 0x43, 0x00, 0x00};
  ByteReader r1(too_short);
  EXPECT_FALSE(decode_apdu(r1).ok());

  // U frame claiming extra body bytes.
  std::uint8_t bad_u[] = {0x68, 0x06, 0x43, 0x00, 0x00, 0x00, 0xde, 0xad};
  ByteReader r2(bad_u);
  EXPECT_FALSE(decode_apdu(r2).ok());

  // Truncated body.
  std::uint8_t truncated[] = {0x68, 0x0a, 0x43, 0x00};
  ByteReader r3(truncated);
  EXPECT_FALSE(decode_apdu(r3).ok());
}

TEST(Apdu, RejectsUnknownUFunction) {
  std::uint8_t bytes[] = {0x68, 0x04, 0xc3, 0x00, 0x00, 0x00};  // two bits set
  ByteReader r(bytes);
  auto res = decode_apdu(r);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.error().code, "bad-u-function");
}

TEST(Apdu, IFormatWithoutAsduIsEncodeError) {
  Apdu apdu;
  apdu.format = ApduFormat::kI;
  EXPECT_FALSE(apdu.encode().ok());
}

TEST(Apdu, OversizedAsduRejected) {
  Asdu big;
  big.type = TypeId::M_ME_NC_1;
  big.common_address = 1;
  for (int i = 0; i < 40; ++i) {
    big.objects.push_back(
        {static_cast<std::uint32_t>(i), ShortFloat{0.0f, Quality{}}, std::nullopt});
  }
  // 40 * 8 + 6 = 326 > 249 available.
  auto res = Apdu::make_i(0, 0, big).encode();
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.error().code, "apdu-too-long");
}

TEST(Apdu, DecodeConsumesExactlyOneFrame) {
  auto one = Apdu::make_u(UFunction::kTestFrAct).encode().take();
  auto two = Apdu::make_s(9).encode().take();
  std::vector<std::uint8_t> both = one;
  both.insert(both.end(), two.begin(), two.end());
  ByteReader r(both);
  auto first = decode_apdu(r);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->format, ApduFormat::kU);
  auto second = decode_apdu(r);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->format, ApduFormat::kS);
  EXPECT_TRUE(r.empty());
}

}  // namespace
}  // namespace uncharted::iec104
