// Regression tests for ConnectionEngine behavior at the 15-bit sequence
// wrap (32767 -> 0) and for the T2 acknowledgement-delay edge cases. The
// Snapshot API lets every test start the engine a few frames below the
// wrap instead of sending 32,760 warm-up APDUs.
#include "iec104/connection.hpp"

#include <gtest/gtest.h>

#include "util/bytes.hpp"

namespace uncharted::iec104 {
namespace {

constexpr Timestamp kT0 = 1'000'000'000;

Asdu tiny_asdu() {
  Asdu asdu;
  asdu.type = TypeId::M_ME_NC_1;
  asdu.cot.cause = Cause::kSpontaneous;
  asdu.common_address = 1;
  asdu.objects.push_back({10, ShortFloat{1.0f, Quality{}}, std::nullopt});
  return asdu;
}

/// A started engine whose send state sits `below` frames under the wrap.
ConnectionEngine near_wrap_sender(std::uint16_t below, Timers timers = {}) {
  ConnectionEngine engine(Role::kControlled, timers, /*k=*/12, /*w=*/8);
  engine.on_connected(kT0);
  ConnectionEngine::Snapshot s;
  s.started = true;
  s.vs = static_cast<std::uint16_t>(32768 - below);
  s.peer_acked = s.vs;
  s.last_activity = kT0;
  engine.restore(s);
  return engine;
}

TEST(ConnectionWrap, SendSequenceWrapsAt32767) {
  auto engine = near_wrap_sender(2);
  auto a1 = engine.send_asdu(kT0 + 1, tiny_asdu());
  auto a2 = engine.send_asdu(kT0 + 2, tiny_asdu());
  auto a3 = engine.send_asdu(kT0 + 3, tiny_asdu());
  ASSERT_TRUE(a1 && a2 && a3);
  EXPECT_EQ(a1->send_seq, 32766);
  EXPECT_EQ(a2->send_seq, 32767);
  EXPECT_EQ(a3->send_seq, 0);  // wrapped, not 32768
  EXPECT_EQ(engine.vs(), 1);
  EXPECT_EQ(engine.unacked(), 3);
}

TEST(ConnectionWrap, AckAccountingCrossesTheWrap) {
  auto engine = near_wrap_sender(5);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(engine.send_asdu(kT0 + i, tiny_asdu()).has_value());
  }
  EXPECT_EQ(engine.vs(), 5);  // 32763..32767 then 0..4
  EXPECT_EQ(engine.unacked(), 10);

  // Ack below the wrap, then across it: both must drain the window.
  engine.on_apdu(kT0 + 100, Apdu::make_s(32766));
  EXPECT_EQ(engine.unacked(), 7);
  engine.on_apdu(kT0 + 200, Apdu::make_s(2));  // numerically < peer_acked
  EXPECT_EQ(engine.unacked(), 3);
  engine.on_apdu(kT0 + 300, Apdu::make_s(5));
  EXPECT_EQ(engine.unacked(), 0);
}

TEST(ConnectionWrap, StaleAndBogusAcksIgnoredAcrossTheWrap) {
  auto engine = near_wrap_sender(3);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(engine.send_asdu(kT0 + i, tiny_asdu()).has_value());
  }
  engine.on_apdu(kT0 + 10, Apdu::make_s(1));  // partial, across the wrap
  EXPECT_EQ(engine.unacked(), 2);

  // Stale: a pre-wrap N(R) re-arriving after the window moved past it.
  engine.on_apdu(kT0 + 20, Apdu::make_s(32766));
  EXPECT_EQ(engine.unacked(), 2);
  // Bogus: beyond everything we have sent (vs_ == 3).
  engine.on_apdu(kT0 + 30, Apdu::make_s(9));
  EXPECT_EQ(engine.unacked(), 2);
  // 16-bit garbage on the wire: masked to 15 bits, 32773 % 32768 == 5 > vs.
  engine.on_apdu(kT0 + 40, Apdu::make_s(32773));
  EXPECT_EQ(engine.unacked(), 2);
}

TEST(ConnectionWrap, WindowLimitKEnforcedAcrossTheWrap) {
  Timers timers;
  ConnectionEngine engine(Role::kControlled, timers, /*k=*/4, /*w=*/8);
  engine.on_connected(kT0);
  ConnectionEngine::Snapshot s;
  s.started = true;
  s.vs = 32767;
  s.peer_acked = 32767;
  s.last_activity = kT0;
  engine.restore(s);

  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(engine.send_asdu(kT0 + i, tiny_asdu()).has_value());
  }
  // Window full (k=4) even though vs_ (3) is numerically tiny again.
  EXPECT_FALSE(engine.send_asdu(kT0 + 10, tiny_asdu()).has_value());
  engine.on_apdu(kT0 + 20, Apdu::make_s(0));  // acks the pre-wrap frame
  EXPECT_EQ(engine.unacked(), 3);
  EXPECT_TRUE(engine.send_asdu(kT0 + 30, tiny_asdu()).has_value());
}

TEST(ConnectionWrap, ReceiveSequenceWrapsAndAcksWithWrappedVr) {
  ConnectionEngine engine(Role::kControlling, Timers{}, /*k=*/12, /*w=*/4);
  engine.on_connected(kT0);
  ConnectionEngine::Snapshot s;
  s.started = true;
  s.vr = 32766;
  s.ack_sent = 32766;
  s.last_activity = kT0;
  engine.restore(s);

  std::uint16_t seqs[] = {32766, 32767, 0};
  EngineSignals sig;
  for (std::uint16_t ns : seqs) {
    sig = engine.on_apdu(kT0 + ns % 100, Apdu::make_i(ns, 0, tiny_asdu()));
    EXPECT_TRUE(sig.to_send.empty());
  }
  EXPECT_EQ(engine.vr(), 1);
  EXPECT_EQ(engine.unacked_received(), 3);

  // The w-th frame crosses the boundary; the S ack carries the wrapped vr.
  sig = engine.on_apdu(kT0 + 500, Apdu::make_i(1, 0, tiny_asdu()));
  ASSERT_EQ(sig.to_send.size(), 1u);
  EXPECT_EQ(sig.to_send[0].format, ApduFormat::kS);
  EXPECT_EQ(sig.to_send[0].recv_seq, 2);
  EXPECT_EQ(engine.unacked_received(), 0);
}

TEST(ConnectionWrap, PartialAckAcrossWrapReArmsT1) {
  Timers timers;  // t1 = 15s
  auto engine = near_wrap_sender(2, timers);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(engine.send_asdu(kT0 + i, tiny_asdu()).has_value());
  }
  // Original T1 deadline: kT0 + 15s. A partial ack at +10s crossing the
  // wrap proves the peer is draining; the deadline must restart from the
  // ack, not stay anchored at the first send.
  Timestamp ack_at = kT0 + from_seconds(10.0);
  engine.on_apdu(ack_at, Apdu::make_s(1));
  EXPECT_EQ(engine.unacked(), 1);

  auto sig = engine.on_tick(kT0 + from_seconds(16.0));  // past original T1
  EXPECT_FALSE(sig.close_connection);
  sig = engine.on_tick(ack_at + from_seconds(15.0) + 1);  // past re-armed T1
  EXPECT_TRUE(sig.close_connection);
}

TEST(ConnectionWrap, FullAckAcrossWrapDisarmsT1) {
  auto engine = near_wrap_sender(1);
  ASSERT_TRUE(engine.send_asdu(kT0, tiny_asdu()).has_value());
  ASSERT_TRUE(engine.send_asdu(kT0 + 1, tiny_asdu()).has_value());
  engine.on_apdu(kT0 + from_seconds(1.0), Apdu::make_s(1));  // acks both
  EXPECT_EQ(engine.unacked(), 0);
  auto sig = engine.on_tick(kT0 + from_seconds(16.0));
  EXPECT_FALSE(sig.close_connection);
}

TEST(ConnectionWrap, SnapshotRoundTripsThroughBytes) {
  ConnectionEngine::Snapshot s;
  s.started = true;
  s.vs = 32767;
  s.vr = 12345;
  s.ack_sent = 12340;
  s.peer_acked = 32760;
  s.recv_since_ack = 5;
  s.last_activity = kT0;
  s.t1_deadline = kT0 + from_seconds(7.5);
  s.test_outstanding = true;
  s.t2_deadline = kT0 + from_seconds(2.5);

  ByteWriter w;
  s.save(w);
  ByteReader r(w.view());
  auto loaded = ConnectionEngine::Snapshot::load(r);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->started, s.started);
  EXPECT_EQ(loaded->vs, s.vs);
  EXPECT_EQ(loaded->vr, s.vr);
  EXPECT_EQ(loaded->ack_sent, s.ack_sent);
  EXPECT_EQ(loaded->peer_acked, s.peer_acked);
  EXPECT_EQ(loaded->recv_since_ack, s.recv_since_ack);
  EXPECT_EQ(loaded->last_activity, s.last_activity);
  EXPECT_EQ(loaded->t1_deadline, s.t1_deadline);
  EXPECT_EQ(loaded->test_outstanding, s.test_outstanding);
  EXPECT_EQ(loaded->t2_deadline, s.t2_deadline);

  // restore() masks out-of-range sequence fields instead of trusting them.
  loaded->vs = 40000;  // 40000 % 32768 == 7232
  ConnectionEngine engine(Role::kControlled);
  engine.on_connected(kT0);
  engine.restore(*loaded);
  EXPECT_EQ(engine.vs(), 7232);
}

// --- T2 acknowledgement-delay edges ---------------------------------------

/// A started controlling engine with small w for boundary tests.
ConnectionEngine started_receiver(int w, Timers timers = {}) {
  ConnectionEngine engine(Role::kControlling, timers, /*k=*/12, w);
  engine.on_connected(kT0);
  ConnectionEngine::Snapshot s;
  s.started = true;
  s.last_activity = kT0;
  engine.restore(s);
  return engine;
}

TEST(ConnectionT2, SFrameDueExactlyAtWindowBoundaryW) {
  auto engine = started_receiver(/*w=*/3);
  EXPECT_TRUE(engine.on_apdu(kT0 + 1, Apdu::make_i(0, 0, tiny_asdu())).to_send.empty());
  EXPECT_TRUE(engine.on_apdu(kT0 + 2, Apdu::make_i(1, 0, tiny_asdu())).to_send.empty());
  // Exactly w received: the S ack is immediate, not deferred to T2.
  auto sig = engine.on_apdu(kT0 + 3, Apdu::make_i(2, 0, tiny_asdu()));
  ASSERT_EQ(sig.to_send.size(), 1u);
  EXPECT_EQ(sig.to_send[0].format, ApduFormat::kS);
  EXPECT_EQ(sig.to_send[0].recv_seq, 3);
  EXPECT_EQ(engine.unacked_received(), 0);
  // The boundary ack also cleared T2: a later tick owes nothing.
  sig = engine.on_tick(kT0 + from_seconds(11.0));
  EXPECT_TRUE(sig.to_send.empty());
}

TEST(ConnectionT2, AckFiresExactlyAtT2Deadline) {
  Timers timers;  // t2 = 10s
  auto engine = started_receiver(/*w=*/8, timers);
  engine.on_apdu(kT0, Apdu::make_i(0, 0, tiny_asdu()));
  Timestamp deadline = kT0 + from_seconds(timers.t2);

  auto sig = engine.on_tick(deadline - 1);
  EXPECT_TRUE(sig.to_send.empty());
  sig = engine.on_tick(deadline);  // boundary inclusive: due exactly now
  ASSERT_EQ(sig.to_send.size(), 1u);
  EXPECT_EQ(sig.to_send[0].format, ApduFormat::kS);
  EXPECT_EQ(sig.to_send[0].recv_seq, 1);
  // Once paid, the debt is gone: no second S on the next tick.
  sig = engine.on_tick(deadline + 1);
  EXPECT_TRUE(sig.to_send.empty());
}

TEST(ConnectionT2, OwnIFrameCancelsPendingT2Ack) {
  Timers timers;
  auto engine = started_receiver(/*w=*/8, timers);
  engine.on_apdu(kT0, Apdu::make_i(0, 0, tiny_asdu()));
  // Our own I-frame piggybacks N(R); the standalone S is no longer owed.
  ASSERT_TRUE(engine.send_asdu(kT0 + 5, tiny_asdu()).has_value());
  auto sig = engine.on_tick(kT0 + from_seconds(timers.t2));
  EXPECT_TRUE(sig.to_send.empty());
}

TEST(ConnectionT2, PeerTestFrDoesNotCancelPendingAck) {
  Timers timers;
  auto engine = started_receiver(/*w=*/8, timers);
  engine.on_apdu(kT0, Apdu::make_i(0, 0, tiny_asdu()));
  // The peer's keep-alive races our pending acknowledgement: we confirm
  // the test immediately, but still owe the S at T2.
  auto sig = engine.on_apdu(kT0 + from_seconds(5.0), Apdu::make_u(UFunction::kTestFrAct));
  ASSERT_EQ(sig.to_send.size(), 1u);
  EXPECT_EQ(sig.to_send[0].u_function, UFunction::kTestFrCon);
  EXPECT_EQ(engine.unacked_received(), 1);

  sig = engine.on_tick(kT0 + from_seconds(timers.t2));
  ASSERT_EQ(sig.to_send.size(), 1u);
  EXPECT_EQ(sig.to_send[0].format, ApduFormat::kS);
}

TEST(ConnectionT2, TestFrConDoesNotDisarmT1WhileIFramesUnacked) {
  Timers timers;
  timers.t3 = 5.0;  // idle test fires before the 15s T1
  ConnectionEngine engine(Role::kControlled, timers);
  engine.on_connected(kT0);
  engine.on_apdu(kT0, Apdu::make_u(UFunction::kStartDtAct));
  ASSERT_TRUE(engine.send_asdu(kT0 + 1, tiny_asdu()).has_value());

  // Idle long enough for the T3 keep-alive while the I-frame is unacked.
  auto sig = engine.on_tick(kT0 + from_seconds(6.0));
  ASSERT_EQ(sig.to_send.size(), 1u);
  EXPECT_EQ(sig.to_send[0].u_function, UFunction::kTestFrAct);

  // The test confirmation answers the TESTFR — but the I-frame is still
  // outstanding, so T1 (armed at the send) must keep running.
  engine.on_apdu(kT0 + from_seconds(7.0), Apdu::make_u(UFunction::kTestFrCon));
  sig = engine.on_tick(kT0 + from_seconds(16.0));
  EXPECT_TRUE(sig.close_connection);
}

TEST(ConnectionT2, TestFrConDisarmsT1WhenNothingElseOutstanding) {
  Timers timers;
  timers.t3 = 5.0;
  ConnectionEngine engine(Role::kControlled, timers);
  engine.on_connected(kT0);
  engine.on_apdu(kT0, Apdu::make_u(UFunction::kStartDtAct));

  auto sig = engine.on_tick(kT0 + from_seconds(6.0));
  ASSERT_EQ(sig.to_send.size(), 1u);
  EXPECT_EQ(sig.to_send[0].u_function, UFunction::kTestFrAct);
  engine.on_apdu(kT0 + from_seconds(7.0), Apdu::make_u(UFunction::kTestFrCon));

  sig = engine.on_tick(kT0 + from_seconds(6.0) + from_seconds(16.0));
  EXPECT_FALSE(sig.close_connection);
}

}  // namespace
}  // namespace uncharted::iec104
