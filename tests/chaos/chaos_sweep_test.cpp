// The chaos sweep: the full measurement pipeline, run over the same
// synthetic capture at increasing fault rates, must never crash (this
// binary runs under ASan+UBSan in CI), must say it is degraded exactly
// when damage was injected, and must keep the headline numbers — station
// counts, flow-duration buckets, cluster count — within documented drift
// bounds while the damage is light. The bounds here are the ones quoted
// in DESIGN.md "Degraded-mode ingestion".
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <map>

#include "core/analyzer.hpp"
#include "faultinject/fault.hpp"
#include "sim/capture.hpp"

namespace uncharted {
namespace {

constexpr double kSweepRates[] = {0.0, 0.01, 0.05, 0.20};

const std::vector<net::CapturedPacket>& base_capture() {
  static const auto capture = [] {
    return sim::generate_capture(sim::CaptureConfig::y1(180.0));
  }();
  return capture.packets;
}

struct SweepPoint {
  faultinject::FaultLog log;
  core::AnalysisReport report;
};

/// One analysis per rate, shared by every test in this file.
const SweepPoint& sweep_point(double rate) {
  static std::map<double, SweepPoint> cache;
  auto it = cache.find(rate);
  if (it == cache.end()) {
    auto faulted = faultinject::apply_faults(base_capture(),
                                             faultinject::FaultConfig::uniform(rate));
    core::CaptureAnalyzer::Options options;
    options.mode = analysis::ParseMode::kReassembled;
    options.keep_series = false;
    SweepPoint point;
    point.log = faulted.log;
    point.report = core::CaptureAnalyzer::analyze(faulted.packets, options);
    it = cache.emplace(rate, std::move(point)).first;
  }
  return it->second;
}

TEST(ChaosSweep, CleanRunIsCleanAndPopulated) {
  const auto& clean = sweep_point(0.0);
  EXPECT_EQ(clean.log.total(), 0u);
  EXPECT_FALSE(clean.report.degradation.degraded());
  EXPECT_FALSE(clean.report.degradation.counters.any());
  // The capture actually exercises the pipeline: real APDUs, flows,
  // stations, and a full K=5 clustering to drift against.
  EXPECT_GT(clean.report.stats.apdus, 1000u);
  EXPECT_GT(clean.report.flows.summary.total, 10u);
  EXPECT_GT(clean.report.station_types.size(), 5u);
  EXPECT_EQ(clean.report.clustering.profiles.size(), 5u);
}

TEST(ChaosSweep, FaultedRunsReportDegradationExactlyWhenInjected) {
  for (double rate : kSweepRates) {
    const auto& point = sweep_point(rate);
    if (rate == 0.0) {
      EXPECT_FALSE(point.report.degradation.degraded()) << "rate " << rate;
    } else {
      EXPECT_GT(point.log.total(), 0u) << "rate " << rate;
      EXPECT_TRUE(point.report.degradation.degraded()) << "rate " << rate;
      EXPECT_GT(point.report.degradation.counters.total(), 0u) << "rate " << rate;
      EXPECT_FALSE(point.report.degradation.warnings.empty()) << "rate " << rate;
    }
  }
}

TEST(ChaosSweep, InjectedFaultVolumeIsMonotoneAcrossRates) {
  std::uint64_t previous = 0;
  for (double rate : kSweepRates) {
    const auto& point = sweep_point(rate);
    if (rate > 0.0) {
      EXPECT_GT(point.log.total(), previous) << "rate " << rate;
    }
    previous = point.log.total();
  }
}

TEST(ChaosSweep, SurvivedDamageCountersGrowWithRate) {
  // The pipeline's own view of the damage (not the injector's) must grow
  // between the light and heavy ends of the sweep.
  const auto& light = sweep_point(0.01);
  const auto& heavy = sweep_point(0.20);
  EXPECT_GT(heavy.report.degradation.counters.total(),
            light.report.degradation.counters.total());
}

TEST(ChaosSweep, HeadlineMetricsDriftBoundedAtOnePercent) {
  const auto& clean = sweep_point(0.0).report;
  const auto& faulted = sweep_point(0.01).report;

  // Topology: every station the clean run saw must still be seen, give or
  // take one quarantined/starved outstation.
  auto stations = [](const core::AnalysisReport& r) {
    return static_cast<double>(r.station_types.size());
  };
  EXPECT_LE(std::fabs(stations(clean) - stations(faulted)), 1.0)
      << "clean " << stations(clean) << " faulted " << stations(faulted);

  // Flow-duration buckets: connection counts shift by at most 10% — drops
  // can sever a long-lived flow into two shorter ones, never erase whole
  // endpoints at this rate.
  const auto& cf = clean.flows.summary;
  const auto& ff = faulted.flows.summary;
  auto within = [](std::uint64_t a, std::uint64_t b, double frac) {
    double hi = std::max<double>(static_cast<double>(a), 1.0);
    return std::fabs(static_cast<double>(a) - static_cast<double>(b)) / hi <= frac;
  };
  EXPECT_TRUE(within(cf.total, ff.total, 0.10))
      << "total " << cf.total << " vs " << ff.total;
  EXPECT_TRUE(within(cf.long_lived, ff.long_lived, 0.10))
      << "long " << cf.long_lived << " vs " << ff.long_lived;

  // Clustering: K=5 session clusters still resolve.
  EXPECT_EQ(faulted.clustering.profiles.size(), 5u);

  // APDU volume: at 1% injected faults the pipeline keeps >= 90% of the
  // clean APDU count (drops + quarantine take the rest).
  EXPECT_GE(static_cast<double>(faulted.stats.apdus),
            0.90 * static_cast<double>(clean.stats.apdus))
      << "apdus " << clean.stats.apdus << " vs " << faulted.stats.apdus;
}

TEST(ChaosSweep, HeavyDamageStillProducesAReport) {
  const auto& heavy = sweep_point(0.20);
  // No drift bounds at 20% — only survival and self-awareness.
  EXPECT_GT(heavy.report.stats.apdus, 0u);
  EXPECT_TRUE(heavy.report.degradation.degraded());
  const auto& d = heavy.report.degradation.counters;
  EXPECT_GT(d.reassembly_gaps, 0u);
  EXPECT_GT(d.parser_resyncs + d.undecodable_apdus + d.undecodable_frames, 0u);
  // The report renders without tripping anything.
  core::NameMap names;
  EXPECT_FALSE(core::render_report(heavy.report, names).empty());
}

TEST(ChaosSweep, PerPacketModeSurvivesHeavyDamage) {
  auto faulted = faultinject::apply_faults(base_capture(),
                                           faultinject::FaultConfig::uniform(0.20));
  core::CaptureAnalyzer::Options options;
  options.mode = analysis::ParseMode::kPerPacket;
  options.keep_series = false;
  auto report = core::CaptureAnalyzer::analyze(faulted.packets, options);
  EXPECT_TRUE(report.degradation.degraded());
  EXPECT_GT(report.stats.apdus, 0u);
}

}  // namespace
}  // namespace uncharted
