// Crash-recovery chaos sweep: the streaming analyzer is "killed" partway
// through a damaged capture (its first incarnation is abandoned without a
// shutdown checkpoint), restored from the last periodic snapshot, and run
// to completion — at every fault rate in the standard sweep. The resumed
// report must match the batch analyzer over the same damaged packets
// within the acceptance bounds: station count +/-1, flow totals within
// 10%, same cluster count. Because restore replays from an exact packet
// cursor, the results are in fact identical; the bounds are asserted as
// the contract, exactness as the implementation's stronger property.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <string>

#include "core/streaming.hpp"
#include "faultinject/fault.hpp"
#include "sim/capture.hpp"

namespace uncharted {
namespace {

constexpr double kSweepRates[] = {0.0, 0.01, 0.05, 0.20};

const std::vector<net::CapturedPacket>& base_capture() {
  static const auto capture = [] {
    return sim::generate_capture(sim::CaptureConfig::y1(120.0));
  }();
  return capture.packets;
}

core::CaptureAnalyzer::Options analyze_options() {
  core::CaptureAnalyzer::Options options;
  options.mode = analysis::ParseMode::kReassembled;
  options.keep_series = false;
  return options;
}

struct KillRestoreRun {
  core::AnalysisReport batch;
  core::AnalysisReport resumed;
  std::uint64_t resumed_from = 0;
};

const KillRestoreRun& run_at(double rate) {
  static std::map<double, KillRestoreRun> cache;
  auto it = cache.find(rate);
  if (it != cache.end()) return it->second;

  auto faulted =
      faultinject::apply_faults(base_capture(), faultinject::FaultConfig::uniform(rate));
  const auto& packets = faulted.packets;

  KillRestoreRun run;
  run.batch = core::CaptureAnalyzer::analyze(packets, analyze_options());

  // Per-process path: each TEST in this file runs as its own ctest process
  // and re-runs the kill/restore; under `ctest -j` a shared path would let
  // one process restore from another's shutdown checkpoint.
  auto ckpt = ::testing::TempDir() + "streaming_chaos_" + std::to_string(::getpid()) +
              "_" + std::to_string(rate) + ".ckpt";
  std::filesystem::remove(ckpt);
  std::filesystem::remove(ckpt + ".1");

  core::StreamingOptions options;
  options.analyze = analyze_options();
  options.checkpoint_path = ckpt;
  options.checkpoint_every_packets = 500;
  {
    // First incarnation dies at ~40% with no shutdown checkpoint; only the
    // periodic snapshots survive, like a kill -9.
    core::StreamingAnalyzer doomed(options);
    const std::size_t kill_at = packets.size() * 2 / 5;
    for (std::size_t i = 0; i < kill_at; ++i) doomed.add_packet(packets[i]);
  }

  core::StreamingAnalyzer survivor(options);
  EXPECT_TRUE(survivor.try_restore()) << "rate " << rate;
  run.resumed_from = survivor.packets_consumed();
  for (std::size_t i = static_cast<std::size_t>(run.resumed_from); i < packets.size();
       ++i) {
    survivor.add_packet(packets[i]);
  }
  run.resumed = survivor.finalize();
  it = cache.emplace(rate, std::move(run)).first;
  return it->second;
}

TEST(StreamingChaos, RestoreResumesFromAPeriodicSnapshot) {
  for (double rate : kSweepRates) {
    const auto& run = run_at(rate);
    EXPECT_GT(run.resumed_from, 0u) << "rate " << rate;
    EXPECT_EQ(run.resumed_from % 500, 0u) << "rate " << rate;
  }
}

TEST(StreamingChaos, StationCountWithinOneOfBatch) {
  for (double rate : kSweepRates) {
    const auto& run = run_at(rate);
    auto batch = static_cast<long>(run.batch.station_types.size());
    auto resumed = static_cast<long>(run.resumed.station_types.size());
    EXPECT_LE(std::abs(batch - resumed), 1) << "rate " << rate;
  }
}

TEST(StreamingChaos, FlowTotalsWithinTenPercentOfBatch) {
  for (double rate : kSweepRates) {
    const auto& run = run_at(rate);
    double batch = static_cast<double>(run.batch.flows.summary.total);
    double resumed = static_cast<double>(run.resumed.flows.summary.total);
    ASSERT_GT(batch, 0.0) << "rate " << rate;
    EXPECT_LE(std::abs(batch - resumed) / batch, 0.10) << "rate " << rate;
  }
}

TEST(StreamingChaos, ClusterCountMatchesBatch) {
  for (double rate : kSweepRates) {
    const auto& run = run_at(rate);
    EXPECT_EQ(run.resumed.clustering.profiles.size(),
              run.batch.clustering.profiles.size())
        << "rate " << rate;
  }
}

TEST(StreamingChaos, ResumeIsActuallyExact) {
  // The stronger property the crash-recovery design guarantees: the
  // resumed run is bit-for-bit the batch run on every headline counter.
  for (double rate : kSweepRates) {
    const auto& run = run_at(rate);
    EXPECT_EQ(run.resumed.stats.packets, run.batch.stats.packets) << "rate " << rate;
    EXPECT_EQ(run.resumed.stats.apdus, run.batch.stats.apdus) << "rate " << rate;
    EXPECT_EQ(run.resumed.stats.apdu_failures, run.batch.stats.apdu_failures)
        << "rate " << rate;
    EXPECT_EQ(run.resumed.flows.summary.total, run.batch.flows.summary.total)
        << "rate " << rate;
    EXPECT_EQ(run.resumed.bandwidth.total_bytes, run.batch.bandwidth.total_bytes)
        << "rate " << rate;
  }
}

TEST(StreamingChaos, DegradationFlagsSurviveTheRestore) {
  for (double rate : kSweepRates) {
    const auto& run = run_at(rate);
    EXPECT_EQ(run.resumed.degradation.degraded(), run.batch.degradation.degraded())
        << "rate " << rate;
    EXPECT_EQ(run.resumed.degradation.counters.total(),
              run.batch.degradation.counters.total())
        << "rate " << rate;
  }
}

}  // namespace
}  // namespace uncharted
