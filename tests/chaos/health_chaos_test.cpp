// Self-healing chaos: induce each stall class the health subsystem knows
// about — a wedged shard lane, a checkpoint writer that cannot fsync, a
// registered stream that goes silent and wedges the watermark merge, a
// frozen reactor tick — and assert the daemon recovers on its own ladder
// (restart lane from the last composed checkpoint, restart the checkpoint
// writer, condemn the laggard, observe) with a final report byte-identical
// to an unmolested run at every worker-thread count. The ladder's terminal
// rung (self-terminate for a supervisor restart) and the crash-loop
// circuit breaker are driven in-process via the checkpoint stall knob.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/export.hpp"
#include "core/liveingest.hpp"
#include "faultinject/sysfault.hpp"
#include "health/health.hpp"
#include "netd/client.hpp"
#include "netd/reactor.hpp"
#include "netd/wire.hpp"
#include "sim/capture.hpp"
#include "sim/fleet.hpp"
#include "util/bytes.hpp"

namespace uncharted::core {
namespace {

using netd::MonoClock;
using netd::MonoTime;

constexpr std::size_t kNoVictim = static_cast<std::size_t>(-1);

/// One shared small capture and its fleet partition, replayed identically
/// by the fault-free reference and every chaos run.
const sim::FleetScript& shared_script() {
  static const sim::FleetScript script = [] {
    sim::CaptureConfig cc = sim::CaptureConfig::y1(12.0);
    cc.include_physical_events = false;
    const sim::CaptureResult capture = sim::generate_capture(cc);
    sim::FleetScriptConfig fc;
    fc.clones = 1;
    return sim::build_fleet_script(capture.packets, fc);
  }();
  return script;
}

template <typename Pred>
bool drive(netd::Reactor& reactor, Pred&& done, double timeout_s) {
  const MonoTime deadline =
      MonoClock::now() + std::chrono::duration_cast<MonoClock::duration>(
                             std::chrono::duration<double>(timeout_s));
  while (!done()) {
    if (MonoClock::now() > deadline) return false;
    reactor.run_once(20);
  }
  return true;
}

/// Base options: fast watchdog cadence, but every deadline parked far past
/// the test's runtime. Each test shortens exactly the deadline it means to
/// trip, so a slow CI host can never cross-fire another watchdog.
LiveIngestOptions chaos_options(unsigned threads, std::uint64_t streams,
                                const std::string& checkpoint) {
  LiveIngestOptions opt;
  opt.streaming.analyze.threads = threads;
  opt.streaming.checkpoint_path = checkpoint;
  opt.checkpoint_every_s = 0.0;
  opt.server.expect_streams = streams;
  opt.server.tick_s = 0.02;
  opt.server.allow_forced_release = false;  // byte-identity is asserted
  opt.watchdog.poll_s = 0.02;
  opt.watchdog.reactor_deadline_s = 1000.0;
  opt.watchdog.merge_deadline_s = 1000.0;
  opt.watchdog.lane_deadline_s = 1000.0;
  opt.watchdog.checkpoint_deadline_s = 0.0;  // off while the cadence is off
  return opt;
}

/// Fault-free uninterrupted run: the reference report.
std::string reference_report(unsigned threads) {
  const sim::FleetScript& script = shared_script();
  netd::Reactor reactor;
  LiveIngestDaemon daemon(reactor,
                          chaos_options(threads, script.streams.size(), ""));
  EXPECT_TRUE(daemon.start(false).ok());
  netd::FleetConfig fc;
  fc.port = daemon.server().port();
  netd::FleetClient fleet(reactor, fc, script.streams);
  fleet.start();
  EXPECT_TRUE(drive(reactor, [&] {
    return fleet.all_done() && daemon.server().all_expected_finished();
  }, 120.0));
  EXPECT_TRUE(fleet.all_benign_ok());
  EXPECT_EQ(daemon.health().total_recoveries(), 0u)
      << "a healthy run tripped a watchdog: " << daemon.health_json();
  return report_to_json(daemon.finalize());
}

/// Serves the supervision JSON over the live query socket. fetch_health
/// blocks, so it runs on a helper thread while this thread keeps driving
/// the reactor.
std::string fetch_health_live(netd::Reactor& reactor, LiveIngestDaemon& daemon) {
  const std::uint16_t port = daemon.server().port();
  const std::uint64_t before = daemon.server().stats().queries_served;
  Result<std::string> got = Error{"health", "never ran"};
  std::thread asker([&got, port] {
    got = netd::fetch_health("127.0.0.1", port, 10.0);
  });
  EXPECT_TRUE(drive(reactor, [&] {
    return daemon.server().stats().queries_served > before;
  }, 20.0));
  asker.join();
  EXPECT_TRUE(got.ok()) << (got.ok() ? "" : got.error().str());
  return got.ok() ? *got : std::string();
}

class HealthChaos : public ::testing::TestWithParam<unsigned> {};

// Stall class 1: a shard lane stops ingesting while packets queue behind
// it. The ladder quarantine-restarts the whole engine from the last
// composed checkpoint on the same port; clients resume from the restored
// cursors (the kill/restore contract, executed in-process) and the final
// report is byte-identical.
TEST_P(HealthChaos, WedgedLaneRestartsFromCheckpointByteIdentical) {
  const unsigned threads = GetParam();
  const std::string reference = reference_report(threads);
  ASSERT_FALSE(reference.empty());
  const sim::FleetScript& script = shared_script();
  const std::string checkpoint = testing::TempDir() + "/health_chaos_lane_t" +
                                 std::to_string(threads) + ".ckpt";

  // The wedge: once armed, the first shard that sees traffic stops
  // ingesting (its packets park in the deferral queue) until cleared.
  bool wedged = false;
  std::size_t victim = kNoVictim;
  LiveIngestOptions opt =
      chaos_options(threads, script.streams.size(), checkpoint);
  opt.watchdog.lane_deadline_s = 0.4;
  opt.streaming.stall_hook = [&](std::size_t shard) {
    if (!wedged) return false;
    if (victim == kNoVictim) victim = shard;
    return shard == victim;
  };

  netd::Reactor reactor;
  LiveIngestDaemon daemon(reactor, opt);
  ASSERT_TRUE(daemon.start(false).ok());

  netd::FleetConfig fc;
  fc.port = daemon.server().port();
  fc.pace = 8.0;  // spread delivery so the wedge lands mid-stream
  fc.linger = true;
  fc.linger_recheck_s = 0.05;
  fc.retry_initial_s = 0.02;
  fc.retry_for_s = 300.0;
  netd::FleetClient fleet(reactor, fc, script.streams);
  fleet.start();

  // A quarter in, land the checkpoint that the recovery will restore from,
  // then wedge a lane.
  ASSERT_TRUE(drive(reactor, [&] {
    return daemon.frames_ingested() >= script.total_frames / 4;
  }, 120.0));
  ASSERT_TRUE(daemon.checkpoint_now().ok());
  wedged = true;

  ASSERT_TRUE(drive(reactor, [&] {
    return daemon.health().total_recoveries() >= 1;
  }, 30.0)) << "the lane watchdog never fired";
  wedged = false;

  ASSERT_NE(victim, kNoVictim);
  const std::string lane = "lane/" + std::to_string(victim);
  const auto& ledger = daemon.health().ledger();
  ASSERT_FALSE(ledger.empty());
  EXPECT_EQ(ledger[0].subsystem, lane);
  EXPECT_EQ(ledger[0].action, health::Action::kRestartLane);
  EXPECT_TRUE(ledger[0].ok) << ledger[0].detail;
  EXPECT_NE(ledger[0].detail.find("from checkpoint"), std::string::npos)
      << ledger[0].detail;
  EXPECT_GE(daemon.health().recoveries(lane), 1u);

  // The recovery is visible over the (rebuilt) query socket mid-run.
  const std::string health = fetch_health_live(reactor, daemon);
  EXPECT_NE(health.find("\"action\":\"restart-lane\""), std::string::npos);
  EXPECT_NE(health.find("\"" + lane + "\""), std::string::npos);

  ASSERT_TRUE(drive(reactor, [&] {
    return daemon.server().all_expected_finished() && fleet.all_done();
  }, 120.0)) << "drain never completed after the lane restart";
  EXPECT_TRUE(fleet.all_benign_ok());
  EXPECT_EQ(reference, report_to_json(daemon.finalize()))
      << "the lane restart changed the final report";
}

// Stall class 2: the checkpoint writer stops landing snapshots (every
// fsync fails). The watchdog restarts the writer; once the storm lifts the
// next write succeeds, the degradation flag clears, and the report is
// byte-identical — durability degraded, analysis never did.
TEST_P(HealthChaos, CheckpointFsyncStormRestartsWriterByteIdentical) {
  const unsigned threads = GetParam();
  const std::string reference = reference_report(threads);
  ASSERT_FALSE(reference.empty());
  const sim::FleetScript& script = shared_script();
  const std::string checkpoint = testing::TempDir() + "/health_chaos_ckpt_t" +
                                 std::to_string(threads) + ".ckpt";

  faultinject::SysFaultPlan plan;
  plan.fsync_fail_p = 1.0;  // a storm, not a roll of the dice
  faultinject::FaultySysOps sys(plan);

  LiveIngestOptions opt =
      chaos_options(threads, script.streams.size(), checkpoint);
  opt.sys = &sys;  // the storm hits only the checkpoint writer's syscalls
  opt.checkpoint_every_s = 0.05;
  opt.watchdog.checkpoint_deadline_s = 0.4;

  netd::Reactor reactor;
  LiveIngestDaemon daemon(reactor, opt);
  ASSERT_TRUE(daemon.start(false).ok());
  netd::FleetConfig fc;
  fc.port = daemon.server().port();
  netd::FleetClient fleet(reactor, fc, script.streams);
  fleet.start();

  ASSERT_TRUE(drive(reactor, [&] {
    return daemon.health().recoveries("checkpoint") >= 1;
  }, 30.0)) << "the checkpoint watchdog never fired";
  EXPECT_GE(daemon.checkpoint_failures(), 1u);
  EXPECT_FALSE(daemon.checkpoint_error().empty());

  bool saw_restart = false;
  for (const auto& e : daemon.health().ledger()) {
    if (e.action != health::Action::kRestartCheckpoint) continue;
    saw_restart = true;
    EXPECT_FALSE(e.ok) << "a retry under a total fsync storm cannot succeed";
  }
  EXPECT_TRUE(saw_restart);

  // Lift the storm: the rearmed periodic writer lands a snapshot, progress
  // resumes, and the subsystem walks back to healthy.
  sys.set_enabled(false);
  ASSERT_TRUE(drive(reactor, [&] {
    return daemon.checkpoint_error().empty() &&
           daemon.health().state("checkpoint") == health::State::kHealthy;
  }, 30.0)) << "the writer never recovered after the storm lifted";

  ASSERT_TRUE(drive(reactor, [&] {
    return daemon.server().all_expected_finished() && fleet.all_done();
  }, 120.0));
  EXPECT_TRUE(fleet.all_benign_ok());
  EXPECT_FALSE(daemon.terminate_requested());
  EXPECT_EQ(reference, report_to_json(daemon.finalize()))
      << "a checkpoint-writer stall leaked into the analysis";
}

// Stall class 3: a registered stream says hello and then goes silent. Its
// watermark bound gates every release, so the merge starves with frames
// queued; the ladder condemns the laggard (kWarn eviction, finished) and
// the drain completes. The silent stream contributed no frames, so the
// report still matches the reference byte for byte.
TEST_P(HealthChaos, SilentMergeLaggardIsCondemned) {
  const unsigned threads = GetParam();
  const std::string reference = reference_report(threads);
  ASSERT_FALSE(reference.empty());
  const sim::FleetScript& script = shared_script();

  LiveIngestOptions opt =
      chaos_options(threads, script.streams.size() + 1, "");
  opt.watchdog.merge_deadline_s = 0.4;

  netd::Reactor reactor;
  LiveIngestDaemon daemon(reactor, opt);
  ASSERT_TRUE(daemon.start(false).ok());

  // The laggard: a raw peer that completes the hello handshake for stream
  // 9000 and never sends a frame (or a fin).
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(daemon.server().port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0);
  ByteWriter hello;
  netd::wire::encode_hello(hello, {netd::wire::HelloKind::kData, 9000, 0});
  ASSERT_EQ(::send(fd, hello.view().data(), hello.size(), 0),
            static_cast<ssize_t>(hello.size()));

  netd::FleetConfig fc;
  fc.port = daemon.server().port();
  netd::FleetClient fleet(reactor, fc, script.streams);
  fleet.start();

  ASSERT_TRUE(drive(reactor, [&] {
    return daemon.server().all_expected_finished() && fleet.all_done();
  }, 120.0)) << "the merge never unwedged — was the laggard condemned?";
  ::close(fd);

  bool condemned = false;
  for (const auto& e : daemon.health().ledger()) {
    if (e.action != health::Action::kCondemnStream || !e.ok) continue;
    condemned = true;
    EXPECT_NE(e.detail.find("9000"), std::string::npos) << e.detail;
    EXPECT_EQ(e.subsystem, "merge");
  }
  EXPECT_TRUE(condemned) << daemon.health_json();
  EXPECT_TRUE(fleet.all_benign_ok());
  EXPECT_EQ(reference, report_to_json(daemon.finalize()))
      << "condemning an empty-handed laggard changed the report";
}

// Stall class 4: the reactor's housekeeping tick stops advancing. Nothing
// can be restarted from inside the loop, so the ladder's rung is observe:
// one ledger entry per deadline, a rearm, and no escalation. Runs on the
// injected virtual clock so the stall is exact, not slept-for.
TEST_P(HealthChaos, FrozenReactorTickIsObservedNotEscalated) {
  const unsigned threads = GetParam();
  const std::string reference = reference_report(threads);
  ASSERT_FALSE(reference.empty());
  const sim::FleetScript& script = shared_script();

  double vt = 0.0;
  LiveIngestOptions opt = chaos_options(threads, script.streams.size(), "");
  opt.server.tick_s = 10.0;  // the tick never fires inside this test
  opt.watchdog.reactor_deadline_s = 5.0;  // virtual seconds
  opt.watchdog.clock = [&vt] { return vt; };

  netd::Reactor reactor;
  LiveIngestDaemon daemon(reactor, opt);
  ASSERT_TRUE(daemon.start(false).ok());
  netd::FleetConfig fc;
  fc.port = daemon.server().port();
  netd::FleetClient fleet(reactor, fc, script.streams);
  fleet.start();

  // The whole ingest happens at virtual time zero: a frozen tick with no
  // virtual time elapsed is not yet a stall.
  ASSERT_TRUE(drive(reactor, [&] {
    return fleet.all_done() && daemon.server().all_expected_finished();
  }, 120.0));
  EXPECT_EQ(daemon.health().total_recoveries(), 0u);

  vt = 6.0;  // one deadline-and-change with zero tick progress
  ASSERT_TRUE(drive(reactor, [&] {
    return daemon.health().total_recoveries() >= 1;
  }, 10.0)) << "the reactor watchdog never fired";
  const auto& ledger = daemon.health().ledger();
  ASSERT_EQ(ledger.size(), 1u);
  EXPECT_EQ(ledger[0].subsystem, "reactor");
  EXPECT_EQ(ledger[0].action, health::Action::kObserve);
  EXPECT_TRUE(ledger[0].ok);
  EXPECT_NE(ledger[0].detail.find("observing"), std::string::npos);

  // Firing rearms for a full deadline: no re-fire two virtual seconds on.
  vt = 8.0;
  (void)drive(reactor, [] { return false; }, 0.3);
  EXPECT_EQ(daemon.health().total_recoveries(), 1u);
  EXPECT_FALSE(daemon.terminate_requested());
  EXPECT_TRUE(fleet.all_benign_ok());
  EXPECT_EQ(reference, report_to_json(daemon.finalize()));
}

INSTANTIATE_TEST_SUITE_P(Threads, HealthChaos, ::testing::Values(1u, 8u),
                         [](const ::testing::TestParamInfo<unsigned>& param) {
                           return "t" + std::to_string(param.param);
                         });

// The terminal rung: a checkpoint writer wedged beyond both restart rungs
// asks the driver to exit health::kRecoveryExitCode so a supervisor can
// restart the process into --restore. The watchdog stands down afterwards.
TEST(HealthRecovery, LadderExhaustionRequestsSelfTerminate) {
  netd::Reactor reactor;
  LiveIngestOptions opt =
      chaos_options(1, 0, testing::TempDir() + "/health_terminate.ckpt");
  opt.checkpoint_every_s = 0.05;
  opt.stall_checkpoint = true;  // every write fails, deterministically
  opt.watchdog.checkpoint_deadline_s = 0.15;

  LiveIngestDaemon daemon(reactor, opt);
  std::vector<health::Action> hooked;
  daemon.set_recovery_hook(
      [&](const health::StallEvent& ev, bool, const std::string&) {
        hooked.push_back(ev.action);
      });
  ASSERT_TRUE(daemon.start(false).ok());

  ASSERT_TRUE(drive(reactor, [&] { return daemon.terminate_requested(); }, 30.0))
      << "the ladder never reached self-terminate";
  EXPECT_NE(daemon.terminate_reason().find("checkpoint stalled"),
            std::string::npos)
      << daemon.terminate_reason();
  EXPECT_NE(daemon.terminate_reason().find("ladder exhausted"),
            std::string::npos);

  const auto& ledger = daemon.health().ledger();
  ASSERT_EQ(ledger.size(), 3u);
  EXPECT_EQ(ledger[0].action, health::Action::kRestartCheckpoint);
  EXPECT_FALSE(ledger[0].ok);
  EXPECT_EQ(ledger[1].action, health::Action::kRestartCheckpoint);
  EXPECT_FALSE(ledger[1].ok);
  EXPECT_EQ(ledger[2].action, health::Action::kSelfTerminate);
  EXPECT_TRUE(ledger[2].ok);
  EXPECT_EQ(hooked.size(), 3u);  // every recovery reached the driver hook
  EXPECT_NE(daemon.health_json().find("\"action\":\"self-terminate\""),
            std::string::npos);

  // Once termination is requested the poll timer stops rearming: no
  // further recoveries accrue while the driver unwinds.
  (void)drive(reactor, [] { return false; }, 0.2);
  EXPECT_EQ(daemon.health().total_recoveries(), 3u);
}

// The crash-loop circuit breaker: with only two attempts allowed in the
// window, a permanently wedged writer is marked failed after two restarts
// and the daemon neither flaps nor self-terminates — degraded but honest,
// and still serving.
TEST(HealthRecovery, BreakerHaltsACrashLoopingRecovery) {
  netd::Reactor reactor;
  LiveIngestOptions opt =
      chaos_options(1, 0, testing::TempDir() + "/health_breaker.ckpt");
  opt.checkpoint_every_s = 0.05;
  opt.stall_checkpoint = true;
  opt.watchdog.checkpoint_deadline_s = 0.15;
  opt.watchdog.breaker = {2, 60.0};

  LiveIngestDaemon daemon(reactor, opt);
  ASSERT_TRUE(daemon.start(false).ok());

  ASSERT_TRUE(drive(reactor, [&] {
    return daemon.health().recoveries("checkpoint") >= 2;
  }, 30.0));
  // Two more deadline periods pass: the breaker holds, nothing escalates.
  (void)drive(reactor, [] { return false; }, 0.6);
  EXPECT_FALSE(daemon.terminate_requested());
  EXPECT_EQ(daemon.health().recoveries("checkpoint"), 2u);
  EXPECT_TRUE(daemon.health().breaker_open("checkpoint"));
  EXPECT_EQ(daemon.health().state("checkpoint"), health::State::kFailed);
  EXPECT_NE(daemon.health_json().find("\"state\":\"failed\""),
            std::string::npos);
  EXPECT_NE(daemon.health_json().find("\"breaker_open\":true"),
            std::string::npos);
}

}  // namespace
}  // namespace uncharted::core
