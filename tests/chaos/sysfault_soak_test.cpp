// Compound syscall-chaos soak: the live-ingest daemon under simultaneous
// network faults (EINTR/EAGAIN storms, short reads/writes, connection
// resets, EMFILE, delayed readiness) AND storage faults (ENOSPC, EIO,
// failed fsync, torn rename) — plus a mid-soak SIGKILL and restore — must
// still produce a final report byte-identical to an uninterrupted
// fault-free run, drop zero benign streams, and keep buffered bytes
// bounded. Repeated across seeds and worker-thread counts; the fault
// ledger proves the chaos actually happened.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/export.hpp"
#include "core/liveingest.hpp"
#include "faultinject/sysfault.hpp"
#include "netd/client.hpp"
#include "netd/reactor.hpp"
#include "sim/capture.hpp"
#include "sim/fleet.hpp"

namespace uncharted::core {
namespace {

using netd::MonoClock;
using netd::MonoTime;

/// One shared small capture and its fleet partition, replayed identically
/// by the fault-free reference and every chaos run.
const sim::FleetScript& shared_script() {
  static const sim::FleetScript script = [] {
    sim::CaptureConfig cc = sim::CaptureConfig::y1(12.0);
    cc.include_physical_events = false;
    const sim::CaptureResult capture = sim::generate_capture(cc);
    sim::FleetScriptConfig fc;
    fc.clones = 1;
    return sim::build_fleet_script(capture.packets, fc);
  }();
  return script;
}

template <typename Pred>
bool drive(netd::Reactor& reactor, Pred&& done, double timeout_s) {
  const MonoTime deadline =
      MonoClock::now() + std::chrono::duration_cast<MonoClock::duration>(
                             std::chrono::duration<double>(timeout_s));
  while (!done()) {
    if (MonoClock::now() > deadline) return false;
    reactor.run_once(20);
  }
  return true;
}

LiveIngestOptions daemon_options(unsigned threads, std::uint64_t streams,
                                 const std::string& checkpoint,
                                 faultinject::SysOps* sys) {
  LiveIngestOptions opt;
  opt.streaming.analyze.threads = threads;
  opt.streaming.checkpoint_path = checkpoint;
  opt.checkpoint_every_s = 0.0;  // the soak drives checkpoints explicitly
  opt.server.expect_streams = streams;
  opt.server.tick_s = 0.02;
  opt.server.allow_forced_release = false;  // byte-identity is asserted
  opt.server.sys = sys;
  opt.sys = sys;
  return opt;
}

/// Fault-free uninterrupted run: the reference report.
std::string reference_report(unsigned threads) {
  const sim::FleetScript& script = shared_script();
  netd::Reactor reactor;
  LiveIngestDaemon daemon(
      reactor, daemon_options(threads, script.streams.size(), "", nullptr));
  EXPECT_TRUE(daemon.start(false).ok());
  netd::FleetConfig fc;
  fc.port = daemon.server().port();
  netd::FleetClient fleet(reactor, fc, script.streams);
  fleet.start();
  EXPECT_TRUE(drive(reactor, [&] {
    return fleet.all_done() && daemon.server().all_expected_finished();
  }, 120.0));
  EXPECT_TRUE(fleet.all_benign_ok());
  return report_to_json(daemon.finalize());
}

struct ChaosOutcome {
  std::string report;
  faultinject::SysFaultLog faults;
  std::size_t peak_queued_bytes = 0;
  std::uint64_t checkpoint_failures = 0;
};

/// The chaos run: compound faults on EVERY syscall surface (reactor,
/// server, fleet client, checkpoint writer), a kill a quarter of the way
/// in, restore from the last checkpoint that landed, then faults off for
/// the drain so the final comparison measures recovery, not luck.
ChaosOutcome chaos_run(unsigned threads, std::uint64_t seed,
                       const std::string& checkpoint) {
  const sim::FleetScript& script = shared_script();
  faultinject::FaultySysOps sys(faultinject::SysFaultPlan::compound(0.02, seed));

  netd::Reactor reactor(netd::Reactor::default_backend(), &sys);
  auto daemon = std::make_unique<LiveIngestDaemon>(
      reactor,
      daemon_options(threads, script.streams.size(), checkpoint, &sys));
  EXPECT_TRUE(daemon->start(false).ok());
  const std::uint16_t port = daemon->server().port();

  netd::FleetConfig fc;
  fc.port = port;
  fc.pace = 8.0;  // spread delivery so the kill lands mid-stream
  fc.linger = true;
  fc.linger_recheck_s = 0.05;
  fc.retry_initial_s = 0.02;
  fc.retry_for_s = 300.0;  // chaos slows everything; never give up benign
  fc.sys = &sys;
  netd::FleetClient fleet(reactor, fc, script.streams);
  fleet.start();

  ChaosOutcome out;

  // Ingest a quarter of the capture under fire, then checkpoint. Storage
  // faults fail individual writes (each failure leaves the previous
  // generation restorable); retry until one lands, as the daemon's
  // periodic timer would across intervals.
  const std::uint64_t kill_at = script.total_frames / 4;
  EXPECT_TRUE(drive(
      reactor, [&] { return daemon->frames_ingested() >= kill_at; }, 120.0))
      << "seed " << seed << ": ingest stalled under chaos";
  bool checkpointed = false;
  for (int attempt = 0; attempt < 500 && !checkpointed; ++attempt) {
    checkpointed = daemon->checkpoint_now().ok();
  }
  EXPECT_TRUE(checkpointed) << "seed " << seed
                            << ": no checkpoint landed in 500 attempts";
  out.checkpoint_failures = daemon->checkpoint_failures();

  // Keep ingesting past the checkpoint (cursor resume must re-send it),
  // then SIGKILL: destroy without finalize.
  const std::uint64_t past = daemon->frames_ingested() + 50;
  (void)drive(reactor, [&] { return daemon->frames_ingested() >= past; }, 5.0);
  out.peak_queued_bytes = daemon->server().stats().peak_queued_bytes;
  daemon.reset();

  // Restore on the same port, still under fire.
  LiveIngestOptions opt2 =
      daemon_options(threads, script.streams.size(), checkpoint, &sys);
  opt2.server.port = port;
  auto restored = std::make_unique<LiveIngestDaemon>(reactor, opt2);
  EXPECT_TRUE(restored->start(true).ok());
  EXPECT_TRUE(restored->restored())
      << "seed " << seed << ": checkpoint did not survive the storage chaos";

  // Let chaos keep running for half the remaining frames, then lift it and
  // drain clean: inject → stop → verify steady state.
  const std::uint64_t chaos_until =
      restored->frames_ingested() +
      (script.total_frames - restored->frames_ingested()) / 2;
  (void)drive(reactor,
              [&] { return restored->frames_ingested() >= chaos_until; }, 60.0);
  out.faults = sys.log();
  sys.set_enabled(false);

  EXPECT_TRUE(drive(reactor, [&] {
    return restored->server().all_expected_finished() && fleet.all_done();
  }, 120.0)) << "seed " << seed << ": drain never completed after chaos";
  EXPECT_TRUE(fleet.all_benign_ok())
      << "seed " << seed << ": a benign stream was dropped";
  out.peak_queued_bytes =
      std::max(out.peak_queued_bytes,
               restored->server().stats().peak_queued_bytes);
  out.report = report_to_json(restored->finalize());
  return out;
}

class SysFaultSoak : public ::testing::TestWithParam<unsigned> {};

TEST_P(SysFaultSoak, CompoundChaosPreservesEveryInvariant) {
  const unsigned threads = GetParam();
  const std::string reference = reference_report(threads);
  ASSERT_FALSE(reference.empty());

  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const std::string checkpoint =
        testing::TempDir() + "/sysfault_soak_t" + std::to_string(threads) +
        "_s" + std::to_string(seed) + ".ckpt";
    const ChaosOutcome out = chaos_run(threads, seed, checkpoint);

    // PR-7 acceptance invariant, now under syscall chaos: byte-identical.
    EXPECT_EQ(reference, out.report)
        << "seed " << seed << ", threads " << threads
        << ": chaos changed the final report";

    // The chaos must have actually happened, across several fault classes.
    EXPECT_GT(out.faults.total(), 0u) << "seed " << seed << " injected nothing";
    EXPECT_GE(out.faults.classes_fired(), 3)
        << "seed " << seed << " fired too few fault classes: "
        << out.faults.summary();

    // Bounded memory: buffered bytes never exceeded the admission budget.
    EXPECT_LE(out.peak_queued_bytes, LiveIngestOptions{}.server.max_buffered_bytes)
        << "seed " << seed << ": buffered bytes escaped the budget";
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, SysFaultSoak, ::testing::Values(1u, 8u),
                         [](const ::testing::TestParamInfo<unsigned>& param) {
                           return "t" + std::to_string(param.param);
                         });

}  // namespace
}  // namespace uncharted::core
