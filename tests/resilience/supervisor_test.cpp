// RedundancySupervisor: backoff/jitter, circuit breaker, T1 switchover,
// the reset-backup pattern, and an end-to-end soak against simulated
// outstations over a wire damaged by the faultinject layer.
#include "resilience/supervisor.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <deque>
#include <vector>

#include "faultinject/fault.hpp"
#include "iec104/apdu.hpp"
#include "net/frame.hpp"
#include "net/pcap.hpp"
#include "util/bytes.hpp"

namespace uncharted::resilience {
namespace {

constexpr Timestamp kT0 = 1'000'000'000;

using iec104::Apdu;
using iec104::ApduFormat;
using iec104::UFunction;

int count_kind(const std::vector<Action>& actions, Action::Kind kind,
               int endpoint = -1) {
  int n = 0;
  for (const auto& a : actions) {
    if (a.kind == kind && (endpoint < 0 || a.endpoint == endpoint)) ++n;
  }
  return n;
}

const Apdu* find_apdu(const std::vector<Action>& actions, int endpoint) {
  for (const auto& a : actions) {
    if (a.kind == Action::Kind::kSendApdu && a.endpoint == endpoint) return &a.apdu;
  }
  return nullptr;
}

SupervisorConfig no_jitter_config() {
  SupervisorConfig config;
  config.backoff_jitter = 0.0;
  return config;
}

TEST(Supervisor, OpensBothEndpointsOnFirstTick) {
  RedundancySupervisor sup;
  auto actions = sup.on_tick(kT0);
  EXPECT_EQ(count_kind(actions, Action::Kind::kOpenConnection), 2);
  EXPECT_EQ(sup.state(0), EndpointState::kConnecting);
  EXPECT_EQ(sup.state(1), EndpointState::kConnecting);
  EXPECT_EQ(sup.active_endpoint(), -1);
  EXPECT_EQ(sup.stats().reconnect_attempts, 2u);
}

TEST(Supervisor, FirstConnectionPromotedSecondStaysStandby) {
  RedundancySupervisor sup;
  sup.on_tick(kT0);

  auto actions = sup.on_connected(kT0 + 1, RedundancySupervisor::kPrimary);
  const Apdu* startdt = find_apdu(actions, 0);
  ASSERT_NE(startdt, nullptr);
  EXPECT_EQ(startdt->format, ApduFormat::kU);
  EXPECT_EQ(startdt->u_function, UFunction::kStartDtAct);
  EXPECT_EQ(sup.active_endpoint(), 0);

  // STARTDT confirmed: activation completes with a general interrogation
  // (the paper's post-switchover I100 burst).
  actions = sup.on_apdu(kT0 + 2, 0, Apdu::make_u(UFunction::kStartDtCon));
  const Apdu* gi = find_apdu(actions, 0);
  ASSERT_NE(gi, nullptr);
  EXPECT_EQ(gi->format, ApduFormat::kI);
  EXPECT_EQ(sup.state(0), EndpointState::kActive);
  EXPECT_EQ(sup.stats().interrogations_sent, 1u);

  // The backup connects later and stays cold.
  actions = sup.on_connected(kT0 + 3, RedundancySupervisor::kBackup);
  EXPECT_TRUE(actions.empty());
  EXPECT_EQ(sup.state(1), EndpointState::kStandby);
}

TEST(Supervisor, BackoffDoublesUpToCapWithoutJitter) {
  auto config = no_jitter_config();
  config.circuit_failure_threshold = 100;  // keep the breaker out of the way
  config.backoff_initial_s = 1.0;
  config.backoff_max_s = 4.0;
  RedundancySupervisor sup(config);
  sup.on_tick(kT0);

  Timestamp now = kT0 + 1;
  double expected[] = {1.0, 2.0, 4.0, 4.0};  // doubling, then capped
  for (double delay : expected) {
    sup.on_connect_failed(now, 0);
    EXPECT_EQ(sup.state(0), EndpointState::kBackoff);
    // One microsecond early: still waiting.
    auto early = sup.on_tick(now + from_seconds(delay) - 1);
    EXPECT_EQ(count_kind(early, Action::Kind::kOpenConnection, 0), 0);
    auto due = sup.on_tick(now + from_seconds(delay));
    EXPECT_EQ(count_kind(due, Action::Kind::kOpenConnection, 0), 1);
    now = now + from_seconds(delay) + 1;
  }
}

TEST(Supervisor, JitteredBackoffStaysWithinConfiguredBand) {
  SupervisorConfig config;
  config.backoff_initial_s = 8.0;
  config.backoff_jitter = 0.25;
  config.circuit_failure_threshold = 100;
  RedundancySupervisor sup(config);
  sup.on_tick(kT0);

  sup.on_connect_failed(kT0, 0);
  // Before base*(1-jitter) the retry can never be due; after
  // base*(1+jitter) it always is.
  auto early = sup.on_tick(kT0 + from_seconds(8.0 * 0.75) - 1);
  EXPECT_EQ(count_kind(early, Action::Kind::kOpenConnection, 0), 0);
  auto late = sup.on_tick(kT0 + from_seconds(8.0 * 1.25) + 1);
  EXPECT_EQ(count_kind(late, Action::Kind::kOpenConnection, 0), 1);
}

/// Drives a supervisor whose every connect attempt fails instantly, at a
/// 10 ms tick, and returns the timestamps of each kOpenConnection on the
/// primary: the reconnect schedule the jittered backoff produced.
std::vector<Timestamp> reconnect_schedule(const SupervisorConfig& config,
                                          double horizon_s) {
  RedundancySupervisor sup(config);
  std::vector<Timestamp> schedule;
  for (Timestamp now = kT0; now < kT0 + from_seconds(horizon_s);
       now += from_seconds(0.01)) {
    auto actions = sup.on_tick(now);
    for (const auto& a : actions) {
      if (a.kind != Action::Kind::kOpenConnection || a.endpoint != 0) continue;
      schedule.push_back(now);
      sup.on_connect_failed(now, 0);
    }
  }
  return schedule;
}

/// Same, but connect attempts are never answered at all: the supervisor's
/// own connect_timeout_s must fail them before backoff can be scheduled.
std::vector<Timestamp> timeout_schedule(const SupervisorConfig& config,
                                        double horizon_s) {
  RedundancySupervisor sup(config);
  std::vector<Timestamp> schedule;
  for (Timestamp now = kT0; now < kT0 + from_seconds(horizon_s);
       now += from_seconds(0.01)) {
    auto actions = sup.on_tick(now);
    for (const auto& a : actions) {
      if (a.kind == Action::Kind::kOpenConnection && a.endpoint == 0) {
        schedule.push_back(now);
      }
    }
  }
  return schedule;
}

TEST(Supervisor, SameSeedYieldsIdenticalReconnectSchedule) {
  SupervisorConfig config;
  config.backoff_initial_s = 0.5;
  config.backoff_max_s = 4.0;
  config.backoff_jitter = 0.25;
  config.circuit_failure_threshold = 1000;
  config.seed = 42;

  auto a = reconnect_schedule(config, 60.0);
  auto b = reconnect_schedule(config, 60.0);
  ASSERT_GT(a.size(), 5u) << "scenario produced too few retries to compare";
  EXPECT_EQ(a, b) << "same seed must reproduce the exact reconnect schedule";

  config.seed = 43;
  auto c = reconnect_schedule(config, 60.0);
  EXPECT_NE(a, c) << "different seeds should desynchronize the jitter";
}

TEST(Supervisor, ConnectTimeoutScheduleDeterministicUnderFixedSeed) {
  SupervisorConfig config;
  config.connect_timeout_s = 2.0;
  config.backoff_initial_s = 0.5;
  config.backoff_max_s = 2.0;
  config.backoff_jitter = 0.25;
  config.circuit_failure_threshold = 1000;
  config.seed = 7;

  auto a = timeout_schedule(config, 40.0);
  auto b = timeout_schedule(config, 40.0);
  // The transport never answers, so every retry after the first is the
  // product of connect_timeout_s + jittered backoff — and must replay
  // exactly under the same seed.
  ASSERT_GT(a.size(), 3u) << "connect timeout never fired";
  EXPECT_EQ(a, b);

  // Consecutive attempts are separated by at least the connect timeout
  // plus the jitter floor of the backoff delay.
  for (std::size_t i = 1; i < a.size(); ++i) {
    EXPECT_GE(a[i] - a[i - 1],
              from_seconds(config.connect_timeout_s +
                           config.backoff_initial_s * (1.0 - config.backoff_jitter)) -
                  from_seconds(0.02));
  }
}

TEST(Supervisor, CircuitBreakerOpensAndProbesHalfOpen) {
  auto config = no_jitter_config();
  config.circuit_failure_threshold = 3;
  config.circuit_open_s = 60.0;
  RedundancySupervisor sup(config);
  sup.on_tick(kT0);

  // Two failures back off; the third trips the breaker.
  Timestamp now = kT0;
  for (int i = 0; i < 3; ++i) {
    sup.on_connect_failed(now, 0);
    now += from_seconds(10.0);
    sup.on_tick(now);
  }
  EXPECT_EQ(sup.state(0), EndpointState::kCircuitOpen);
  EXPECT_EQ(sup.stats().circuit_opens, 1u);

  // Quarantined: ticks inside the cool-off do not retry.
  auto quiet = sup.on_tick(now + from_seconds(1.0));
  EXPECT_EQ(count_kind(quiet, Action::Kind::kOpenConnection, 0), 0);

  // Cool-off over: one half-open probe; its failure re-trips immediately.
  Timestamp trip_at = kT0 + from_seconds(20.0);  // time of the third failure
  auto probe = sup.on_tick(trip_at + from_seconds(60.0));
  EXPECT_EQ(count_kind(probe, Action::Kind::kOpenConnection, 0), 1);
  sup.on_connect_failed(trip_at + from_seconds(61.0), 0);
  EXPECT_EQ(sup.state(0), EndpointState::kCircuitOpen);
  EXPECT_EQ(sup.stats().circuit_opens, 2u);
}

TEST(Supervisor, YoungDeathsCountAsFlapsAndTripTheBreaker) {
  auto config = no_jitter_config();
  config.circuit_failure_threshold = 3;
  config.min_uptime_s = 5.0;
  config.backoff_initial_s = 1.0;
  RedundancySupervisor sup(config);

  Timestamp now = kT0;
  for (int i = 0; i < 3; ++i) {
    sup.on_tick(now);
    sup.on_connected(now + from_seconds(0.1), 0);
    // Dies after one second: a flap, not an honest disconnect.
    sup.on_disconnected(now + from_seconds(1.1), 0);
    now += from_seconds(30.0);
  }
  EXPECT_EQ(sup.state(0), EndpointState::kCircuitOpen);
  EXPECT_GE(sup.stats().failed_connects, 3u);
}

TEST(Supervisor, LongLivedDisconnectResetsTheFailureStreak) {
  auto config = no_jitter_config();
  config.circuit_failure_threshold = 3;
  config.min_uptime_s = 5.0;
  RedundancySupervisor sup(config);

  Timestamp now = kT0;
  // Twice: connect, live well past min_uptime, drop. Never escalates.
  for (int i = 0; i < 4; ++i) {
    sup.on_tick(now);
    sup.on_connected(now + from_seconds(0.1), 0);
    sup.on_disconnected(now + from_seconds(60.0), 0);
    EXPECT_EQ(sup.state(0), EndpointState::kBackoff);
    now += from_seconds(120.0);
  }
  EXPECT_EQ(sup.stats().circuit_opens, 0u);
}

TEST(Supervisor, T1ExpiryTriggersSwitchoverToStandby) {
  SupervisorConfig config = no_jitter_config();
  RedundancySupervisor sup(config);
  sup.on_tick(kT0);
  sup.on_connected(kT0 + 1, 0);
  sup.on_apdu(kT0 + 2, 0, Apdu::make_u(UFunction::kStartDtCon));
  sup.on_connected(kT0 + 3, 1);
  ASSERT_EQ(sup.active_endpoint(), 0);
  ASSERT_EQ(sup.state(1), EndpointState::kStandby);

  // The GI I-frame sent at activation is never acknowledged; T1 (15s)
  // expires and the supervisor must close the primary and promote the
  // backup.
  auto actions = sup.on_tick(kT0 + 2 + from_seconds(config.timers.t1) + 1);
  EXPECT_EQ(count_kind(actions, Action::Kind::kCloseConnection, 0), 1);
  const Apdu* startdt = find_apdu(actions, 1);
  ASSERT_NE(startdt, nullptr);
  EXPECT_EQ(startdt->u_function, UFunction::kStartDtAct);
  EXPECT_EQ(sup.active_endpoint(), 1);
  EXPECT_EQ(sup.stats().t1_closes, 1u);
  EXPECT_EQ(sup.stats().switchovers, 1u);

  // The new active completes activation with its own interrogation.
  actions = sup.on_apdu(kT0 + from_seconds(16.5), 1, Apdu::make_u(UFunction::kStartDtCon));
  ASSERT_NE(find_apdu(actions, 1), nullptr);
  EXPECT_EQ(sup.state(1), EndpointState::kActive);
  EXPECT_EQ(sup.stats().interrogations_sent, 2u);
}

TEST(Supervisor, StandbyDisconnectCountsAsBackupReset) {
  RedundancySupervisor sup(no_jitter_config());
  sup.on_tick(kT0);
  sup.on_connected(kT0 + 1, 0);
  sup.on_apdu(kT0 + 2, 0, Apdu::make_u(UFunction::kStartDtCon));
  sup.on_connected(kT0 + 3, 1);

  // The outstation routinely tears the cold connection down (paper Fig 9).
  sup.on_disconnected(kT0 + from_seconds(30.0), 1);
  EXPECT_EQ(sup.stats().backup_resets, 1u);
  EXPECT_EQ(sup.active_endpoint(), 0);  // traffic unaffected
  EXPECT_EQ(sup.stats().switchovers, 0u);
}

TEST(Supervisor, ConnectTimeoutFailsTheAttempt) {
  auto config = no_jitter_config();
  config.connect_timeout_s = 30.0;
  RedundancySupervisor sup(config);
  sup.on_tick(kT0);
  ASSERT_EQ(sup.state(0), EndpointState::kConnecting);

  sup.on_tick(kT0 + from_seconds(31.0));
  EXPECT_EQ(sup.state(0), EndpointState::kBackoff);
  EXPECT_GE(sup.stats().failed_connects, 2u);  // both endpoints timed out
}

// --- Hostile-peer quarantine ----------------------------------------------

/// Brings the primary to kActive: connect, STARTDT con.
void activate_primary(RedundancySupervisor& sup) {
  sup.on_tick(kT0);
  sup.on_connected(kT0 + 1, RedundancySupervisor::kPrimary);
  sup.on_apdu(kT0 + 2, 0, Apdu::make_u(UFunction::kStartDtCon));
  ASSERT_EQ(sup.state(0), EndpointState::kActive);
}

TEST(Supervisor, HostilePeerTripsTheCircuitBreaker) {
  RedundancySupervisor sup(no_jitter_config());
  activate_primary(sup);

  // The peer acknowledges 200 I-frames this fresh session never sent:
  // protocol-impossible, so the conformance machine turns hostile and the
  // supervisor must cut the connection and quarantine the endpoint.
  auto actions = sup.on_apdu(kT0 + 3, 0, Apdu::make_s(200));
  EXPECT_GE(count_kind(actions, Action::Kind::kCloseConnection, 0), 1);
  EXPECT_EQ(sup.state(0), EndpointState::kCircuitOpen);
  EXPECT_EQ(sup.stats().hostile_quarantines, 1u);
  EXPECT_EQ(sup.stats().circuit_opens, 1u);
  EXPECT_TRUE(sup.conformance(0).hostile());
  EXPECT_EQ(sup.active_endpoint(), -1);  // no standby to fail over to
}

TEST(Supervisor, HostileActiveFailsOverToStandby) {
  RedundancySupervisor sup(no_jitter_config());
  activate_primary(sup);
  sup.on_connected(kT0 + 3, RedundancySupervisor::kBackup);
  ASSERT_EQ(sup.state(1), EndpointState::kStandby);

  auto actions = sup.on_apdu(kT0 + 4, 0, Apdu::make_s(200));
  EXPECT_EQ(sup.state(0), EndpointState::kCircuitOpen);
  // The standby is promoted exactly as on a T1 switchover.
  const Apdu* startdt = find_apdu(actions, 1);
  ASSERT_NE(startdt, nullptr);
  EXPECT_EQ(startdt->u_function, UFunction::kStartDtAct);
  EXPECT_EQ(sup.active_endpoint(), 1);
  EXPECT_EQ(sup.stats().switchovers, 1u);
}

TEST(Supervisor, ConformingPeerIsNeverQuarantined) {
  RedundancySupervisor sup(no_jitter_config());
  activate_primary(sup);

  // A well-behaved outstation session: measurements acknowledging the GI
  // the supervisor sent at activation (its N(S)=0).
  Timestamp now = kT0 + 3;
  for (std::uint16_t ns = 0; ns < 6; ++ns) {
    iec104::Asdu asdu;
    asdu.type = iec104::TypeId::M_ME_NC_1;
    asdu.cot.cause = iec104::Cause::kSpontaneous;
    asdu.common_address = 1;
    asdu.objects.push_back({900, iec104::ShortFloat{1.0f, {}}, std::nullopt});
    sup.on_apdu(now += from_seconds(0.5), 0, Apdu::make_i(ns, 1, asdu));
  }
  EXPECT_EQ(sup.state(0), EndpointState::kActive);
  EXPECT_EQ(sup.stats().hostile_quarantines, 0u);
  EXPECT_FALSE(sup.conformance(0).hostile());
}

TEST(Supervisor, HostileQuarantineCanBeDisabled) {
  auto config = no_jitter_config();
  config.quarantine_hostile_peers = false;
  RedundancySupervisor sup(config);
  activate_primary(sup);

  auto actions = sup.on_apdu(kT0 + 3, 0, Apdu::make_s(200));
  EXPECT_EQ(count_kind(actions, Action::Kind::kCloseConnection, 0), 0);
  EXPECT_EQ(sup.state(0), EndpointState::kActive);
  EXPECT_EQ(sup.stats().hostile_quarantines, 0u);
  // The evidence is still collected for the operator, just not acted on.
  EXPECT_TRUE(sup.conformance(0).hostile());
}

TEST(Supervisor, ConformanceMachineResetsOnReconnect) {
  auto config = no_jitter_config();
  config.circuit_open_s = 10.0;
  RedundancySupervisor sup(config);
  activate_primary(sup);
  sup.on_apdu(kT0 + 3, 0, Apdu::make_s(200));
  ASSERT_EQ(sup.state(0), EndpointState::kCircuitOpen);

  // Cool-off over: the half-open probe reconnects and the new session
  // starts with a clean machine — past hostility is not held against it.
  auto probe = sup.on_tick(kT0 + 3 + from_seconds(10.0) + 1);
  ASSERT_EQ(count_kind(probe, Action::Kind::kOpenConnection, 0), 1);
  sup.on_connected(kT0 + 3 + from_seconds(11.0), 0);
  EXPECT_FALSE(sup.conformance(0).hostile());
  EXPECT_TRUE(sup.conformance(0).profile().violations.empty());
}

// --- End-to-end soak over a faultinject-damaged wire ----------------------

/// One simulated outstation endpoint: a controlled ConnectionEngine behind
/// a lossy unidirectional wire in each direction. Every APDU crossing the
/// wire is wrapped in a CapturedPacket and run through the faultinject
/// layer; drops and corruption come out of its deterministic RNG, and a
/// corrupted APDU that no longer decodes is counted as lost.
class LossyWire {
 public:
  LossyWire(double rate, std::uint64_t seed) : rate_(rate), seed_(seed) {}

  /// Returns the APDUs that survive the crossing (0, 1 or 2 copies).
  std::vector<Apdu> cross(Timestamp ts, const Apdu& apdu) {
    std::vector<Apdu> delivered;
    auto encoded = apdu.encode();
    if (!encoded.ok()) return delivered;

    // faultinject only touches packets that decode as real IEC 104/TCP
    // frames, so the APDU crosses the wire fully framed.
    net::TcpSegmentSpec spec;
    spec.src_mac = net::MacAddr::from_u64(0x020000000001);
    spec.dst_mac = net::MacAddr::from_u64(0x020000000002);
    spec.src_ip = net::Ipv4Addr{0x0a000001};
    spec.dst_ip = net::Ipv4Addr{0x0a000002};
    spec.src_port = 40000;
    spec.dst_port = 2404;
    spec.payload = *encoded;

    net::CapturedPacket pkt;
    pkt.ts = ts;
    pkt.data = net::build_tcp_frame(spec);
    pkt.original_length = static_cast<std::uint32_t>(pkt.data.size());

    faultinject::FaultConfig config;
    config.seed = seed_ + (counter_++);  // deterministic per crossing
    config.drop_p = rate_;
    config.duplicate_p = rate_ / 4;
    config.corrupt_p = rate_ / 2;
    auto result = faultinject::apply_faults({pkt}, config);

    for (const auto& out : result.packets) {
      auto frame = net::decode_frame(out.data);
      if (!frame.ok()) continue;  // headers corrupted: the wire ate it
      ByteReader r(frame->payload);
      auto decoded = iec104::decode_apdu(r);
      if (decoded.ok()) delivered.push_back(std::move(*decoded));
      // else: payload damaged beyond recognition — likewise lost
    }
    return delivered;
  }

 private:
  double rate_;
  std::uint64_t seed_;
  std::uint64_t counter_ = 0;
};

struct SoakOutcome {
  SupervisorStats stats;
  std::uint64_t apdus_delivered_to_supervisor = 0;
  bool ended_with_active = false;
};

/// Drives a supervisor against two outstation engines for `seconds` of
/// simulated time at a 250ms tick, with every APDU in both directions
/// crossing a faultinject wire.
SoakOutcome run_soak(double fault_rate, double seconds, std::uint64_t seed) {
  SupervisorConfig config;
  config.backoff_initial_s = 0.5;
  config.backoff_max_s = 8.0;
  config.seed = seed;
  RedundancySupervisor sup(config);

  std::array<iec104::ConnectionEngine, 2> outstations{
      iec104::ConnectionEngine(iec104::Role::kControlled),
      iec104::ConnectionEngine(iec104::Role::kControlled)};
  std::array<bool, 2> transport_up{false, false};
  LossyWire wire(fault_rate, seed * 77 + 1);

  SoakOutcome outcome;

  // Deliver supervisor-side actions, bouncing outstation replies back
  // through the wire until the exchange quiesces.
  std::deque<Action> queue;
  auto pump = [&](Timestamp now, std::vector<Action> actions) {
    for (auto& a : actions) queue.push_back(std::move(a));
    while (!queue.empty()) {
      Action a = std::move(queue.front());
      queue.pop_front();
      switch (a.kind) {
        case Action::Kind::kOpenConnection:
          // The transport always succeeds; resilience under loss is the
          // engine/supervisor layer's problem, which is what we exercise.
          transport_up[a.endpoint] = true;
          outstations[a.endpoint].on_connected(now);
          for (auto& r : sup.on_connected(now, a.endpoint)) queue.push_back(std::move(r));
          break;
        case Action::Kind::kCloseConnection:
          transport_up[a.endpoint] = false;
          break;
        case Action::Kind::kSendApdu:
          if (!transport_up[a.endpoint]) break;
          for (auto& crossed : wire.cross(now, a.apdu)) {
            auto replies = outstations[a.endpoint].on_apdu(now, crossed);
            for (auto& reply : replies.to_send) {
              for (auto& back : wire.cross(now, reply)) {
                ++outcome.apdus_delivered_to_supervisor;
                for (auto& next : sup.on_apdu(now, a.endpoint, back)) {
                  queue.push_back(std::move(next));
                }
              }
            }
          }
          break;
      }
    }
  };

  const Timestamp tick = from_seconds(0.25);
  for (Timestamp now = kT0; now < kT0 + from_seconds(seconds); now += tick) {
    pump(now, sup.on_tick(now));
    // Outstation side timers (their S-acks at T2 keep the supervisor's T1
    // honest when the wire lets them through).
    for (int ep = 0; ep < 2; ++ep) {
      if (!transport_up[ep]) continue;
      auto signals = outstations[ep].on_tick(now);
      std::vector<Action> forward;
      for (auto& apdu : signals.to_send) {
        for (auto& back : wire.cross(now, apdu)) {
          ++outcome.apdus_delivered_to_supervisor;
          for (auto& next : sup.on_apdu(now, ep, back)) forward.push_back(std::move(next));
        }
      }
      if (signals.close_connection) {
        transport_up[ep] = false;
        for (auto& next : sup.on_disconnected(now, ep)) forward.push_back(std::move(next));
      }
      pump(now, std::move(forward));
    }
  }

  outcome.stats = sup.stats();
  outcome.ended_with_active = sup.active_endpoint() >= 0;
  return outcome;
}

TEST(SupervisorSoak, CleanWireActivatesAndStaysUp) {
  auto outcome = run_soak(/*fault_rate=*/0.0, /*seconds=*/120.0, /*seed=*/1);
  EXPECT_TRUE(outcome.ended_with_active);
  EXPECT_EQ(outcome.stats.circuit_opens, 0u);
  EXPECT_EQ(outcome.stats.t1_closes, 0u);
  EXPECT_GE(outcome.stats.interrogations_sent, 1u);
  EXPECT_GT(outcome.apdus_delivered_to_supervisor, 0u);
}

TEST(SupervisorSoak, LossyWireForcesSwitchoversButNeverWedges) {
  // 20% loss: T1 expiries and switchovers are expected; a wedged
  // supervisor (no active endpoint, no pending retry) is not.
  auto outcome = run_soak(/*fault_rate=*/0.20, /*seconds=*/600.0, /*seed=*/2);
  EXPECT_GT(outcome.stats.t1_closes, 0u);
  EXPECT_GT(outcome.stats.reconnect_attempts, 2u);
  EXPECT_GE(outcome.stats.interrogations_sent, 1u);
  // Liveness: across a 10-minute soak the pair keeps being re-driven
  // toward active; the final instant may legitimately be mid-reconnect.
  EXPECT_GT(outcome.apdus_delivered_to_supervisor, 10u);
}

TEST(SupervisorSoak, SweepNeverCrashesAndStaysDeterministic) {
  for (double rate : {0.0, 0.01, 0.05, 0.20}) {
    auto a = run_soak(rate, 90.0, 42);
    auto b = run_soak(rate, 90.0, 42);
    EXPECT_EQ(a.stats.switchovers, b.stats.switchovers) << "rate " << rate;
    EXPECT_EQ(a.stats.reconnect_attempts, b.stats.reconnect_attempts)
        << "rate " << rate;
    EXPECT_EQ(a.apdus_delivered_to_supervisor, b.apdus_delivered_to_supervisor)
        << "rate " << rate;
  }
}

}  // namespace
}  // namespace uncharted::resilience
