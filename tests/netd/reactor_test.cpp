// Reactor: timers, fd readiness, deterministic dispatch order, and the
// signal-safe wakeup — exercised on both backends where they differ.
#include "netd/reactor.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <array>
#include <string>
#include <vector>

namespace uncharted::netd {
namespace {

struct Pipe {
  int fds[2] = {-1, -1};
  Pipe() {
    EXPECT_EQ(::pipe(fds), 0);
    EXPECT_TRUE(Reactor::make_nonblocking(fds[0]).ok());
    EXPECT_TRUE(Reactor::make_nonblocking(fds[1]).ok());
  }
  ~Pipe() {
    if (fds[0] >= 0) ::close(fds[0]);
    if (fds[1] >= 0) ::close(fds[1]);
  }
  void poke() const { ASSERT_EQ(::write(fds[1], "x", 1), 1); }
};

std::vector<Backend> backends_under_test() {
  std::vector<Backend> out = {Backend::kPoll};
  if (Reactor::default_backend() == Backend::kEpoll) {
    out.push_back(Backend::kEpoll);
  }
  return out;
}

TEST(Reactor, TimersFireInDeadlineOrderWithFifoTies) {
  Reactor reactor;
  std::string order;
  reactor.add_timer_after(0.02, [&] { order += 'c'; });
  reactor.add_timer_after(0.0, [&] { order += 'a'; });
  reactor.add_timer_after(0.0, [&] { order += 'b'; });  // same deadline: FIFO
  for (int i = 0; i < 50 && order.size() < 3; ++i) reactor.run_once(10);
  EXPECT_EQ(order, "abc");
}

TEST(Reactor, CancelledTimerNeverFires) {
  Reactor reactor;
  bool fired = false;
  auto id = reactor.add_timer_after(0.0, [&] { fired = true; });
  reactor.cancel_timer(id);
  for (int i = 0; i < 5; ++i) reactor.run_once(5);
  EXPECT_FALSE(fired);
}

TEST(Reactor, TimerCallbackMayArmAnotherTimer) {
  Reactor reactor;
  int fires = 0;
  std::function<void()> again = [&] {
    if (++fires < 3) reactor.add_timer_after(0.0, again);
  };
  reactor.add_timer_after(0.0, again);
  for (int i = 0; i < 50 && fires < 3; ++i) reactor.run_once(5);
  EXPECT_EQ(fires, 3);
}

TEST(Reactor, FdReadinessDispatchesOnBothBackends) {
  for (Backend backend : backends_under_test()) {
    Reactor reactor(backend);
    Pipe p;
    int events_seen = 0;
    ASSERT_TRUE(reactor.add_fd(p.fds[0], kEventRead, [&](std::uint32_t ev) {
                  EXPECT_TRUE(ev & kEventRead);
                  ++events_seen;
                  std::array<char, 8> buf;
                  while (::read(p.fds[0], buf.data(), buf.size()) > 0) {
                  }
                }).ok());
    EXPECT_EQ(reactor.fd_count(), 1u);
    p.poke();
    for (int i = 0; i < 50 && events_seen == 0; ++i) reactor.run_once(10);
    EXPECT_EQ(events_seen, 1) << "backend " << static_cast<int>(backend);
    reactor.remove_fd(p.fds[0]);
    EXPECT_EQ(reactor.fd_count(), 0u);
  }
}

TEST(Reactor, ReadyFdsDispatchInAscendingFdOrder) {
  for (Backend backend : backends_under_test()) {
    Reactor reactor(backend);
    Pipe a;
    Pipe b;  // opened second: higher fd numbers
    ASSERT_LT(a.fds[0], b.fds[0]);
    std::vector<int> order;
    for (Pipe* p : {&b, &a}) {  // registration order deliberately reversed
      int rfd = p->fds[0];
      ASSERT_TRUE(reactor.add_fd(rfd, kEventRead, [&order, rfd](std::uint32_t) {
                    order.push_back(rfd);
                  }).ok());
      p->poke();
    }
    for (int i = 0; i < 50 && order.size() < 2; ++i) reactor.run_once(10);
    ASSERT_EQ(order.size(), 2u);
    EXPECT_LT(order[0], order[1])
        << "dispatch must be ascending-fd on backend " << static_cast<int>(backend);
    reactor.remove_fd(a.fds[0]);
    reactor.remove_fd(b.fds[0]);
  }
}

TEST(Reactor, SetInterestMasksEvents) {
  Reactor reactor;
  Pipe p;
  int called = 0;
  ASSERT_TRUE(
      reactor.add_fd(p.fds[0], 0, [&](std::uint32_t) { ++called; }).ok());
  p.poke();
  for (int i = 0; i < 3; ++i) reactor.run_once(5);
  EXPECT_EQ(called, 0) << "no interest bits: no callbacks";
  ASSERT_TRUE(reactor.set_interest(p.fds[0], kEventRead).ok());
  for (int i = 0; i < 50 && called == 0; ++i) reactor.run_once(10);
  EXPECT_GE(called, 1);
  reactor.remove_fd(p.fds[0]);
}

TEST(Reactor, CallbackMayRemoveItsOwnFd) {
  Reactor reactor;
  Pipe p;
  int called = 0;
  ASSERT_TRUE(reactor.add_fd(p.fds[0], kEventRead, [&](std::uint32_t) {
                ++called;
                reactor.remove_fd(p.fds[0]);
              }).ok());
  p.poke();
  for (int i = 0; i < 10; ++i) reactor.run_once(5);
  EXPECT_EQ(called, 1);
  EXPECT_EQ(reactor.fd_count(), 0u);
}

TEST(Reactor, StopFromTimerEndsRun) {
  Reactor reactor;
  reactor.add_timer_after(0.0, [&] { reactor.stop(); });
  reactor.run();  // must return promptly
  EXPECT_TRUE(reactor.stopped());
}

TEST(Reactor, TimerScheduleParityAcrossBackends) {
  // The timer heap lives above the readiness backend, so an identical
  // schedule — distinct deadlines, a FIFO tie, a cancel, a re-arm from
  // inside a callback — must produce an identical fire order on epoll and
  // poll. The daemon's watchdog cadence depends on this parity.
  std::vector<std::string> orders;
  for (Backend backend : backends_under_test()) {
    Reactor reactor(backend);
    std::string order;
    reactor.add_timer_after(0.05, [&] { order += 'e'; });
    reactor.add_timer_after(0.01, [&] {
      order += 'b';
      // Re-arm from inside a callback: lands between the tie and the tail.
      reactor.add_timer_after(0.015, [&order] { order += 'd'; });
    });
    const auto dead = reactor.add_timer_after(0.02, [&] { order += 'X'; });
    reactor.add_timer_after(0.0, [&] { order += 'a'; });
    reactor.add_timer_after(0.01, [&] { order += 'c'; });  // tie with 'b': FIFO
    reactor.cancel_timer(dead);
    for (int i = 0; i < 400 && order.size() < 5; ++i) reactor.run_once(10);
    EXPECT_EQ(order, "abcde")
        << (backend == Backend::kEpoll ? "epoll" : "poll")
        << " backend broke the schedule";
    orders.push_back(order);
  }
  for (std::size_t i = 1; i < orders.size(); ++i) {
    EXPECT_EQ(orders[0], orders[i]) << "backends disagree on timer order";
  }
}

TEST(Reactor, NotifyFromSignalRunsWakeupCallback) {
  Reactor reactor;
  bool woke = false;
  reactor.set_wakeup_callback([&] {
    woke = true;
    reactor.stop();
  });
  reactor.notify_from_signal();
  for (int i = 0; i < 50 && !woke; ++i) reactor.run_once(10);
  EXPECT_TRUE(woke);
}

}  // namespace
}  // namespace uncharted::netd
