// Tapstream wire protocol: exact sizes, round trips, and rejection of
// every malformed header shape a hostile or corrupted peer can send.
#include "netd/wire.hpp"

#include <gtest/gtest.h>

namespace uncharted::netd::wire {
namespace {

TEST(Wire, HelloRoundTripsAndMatchesDeclaredSize) {
  Hello h;
  h.kind = HelloKind::kData;
  h.stream_id = 0x1122334455667788ULL;
  h.total_frames = 42;
  ByteWriter w;
  encode_hello(w, h);
  ASSERT_EQ(w.view().size(), kHelloSize);

  ByteReader r(w.view());
  auto back = decode_hello(r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->kind, HelloKind::kData);
  EXPECT_EQ(back->stream_id, h.stream_id);
  EXPECT_EQ(back->total_frames, 42u);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Wire, QueryHelloRoundTrips) {
  Hello h;
  h.kind = HelloKind::kQuery;
  ByteWriter w;
  encode_hello(w, h);
  ByteReader r(w.view());
  auto back = decode_hello(r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->kind, HelloKind::kQuery);
}

TEST(Wire, HelloWrongMagicRejected) {
  Hello h;
  ByteWriter w;
  encode_hello(w, h);
  auto bytes = std::vector<std::uint8_t>(w.view().begin(), w.view().end());
  bytes[0] ^= 0xFF;
  ByteReader r(bytes);
  EXPECT_FALSE(decode_hello(r).ok());
}

TEST(Wire, HelloWrongVersionRejected) {
  Hello h;
  ByteWriter w;
  encode_hello(w, h);
  auto bytes = std::vector<std::uint8_t>(w.view().begin(), w.view().end());
  bytes[4] = 0x7F;  // version little-endian low byte
  ByteReader r(bytes);
  EXPECT_FALSE(decode_hello(r).ok());
}

TEST(Wire, HelloUnknownKindRejected) {
  Hello h;
  ByteWriter w;
  encode_hello(w, h);
  auto bytes = std::vector<std::uint8_t>(w.view().begin(), w.view().end());
  bytes[6] = 9;  // kind byte
  ByteReader r(bytes);
  EXPECT_FALSE(decode_hello(r).ok());
}

TEST(Wire, HelloAckRoundTripsAllStatuses) {
  for (AckStatus status :
       {AckStatus::kAccepted, AckStatus::kBusy, AckStatus::kFinished}) {
    HelloAck ack;
    ack.status = status;
    ack.resume_cursor = 777;
    ByteWriter w;
    encode_hello_ack(w, ack);
    ASSERT_EQ(w.view().size(), kHelloAckSize);
    ByteReader r(w.view());
    auto back = decode_hello_ack(r);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back->status, status);
    EXPECT_EQ(back->resume_cursor, 777u);
  }
}

TEST(Wire, RecordHeaderRoundTrips) {
  RecordHeader rh;
  rh.ts = 123'456'789;
  rh.original_length = 1500;
  rh.cap_len = 98;
  ByteWriter w;
  encode_record_header(w, rh);
  ASSERT_EQ(w.view().size(), kRecordHeaderSize);
  ByteReader r(w.view());
  auto back = decode_record_header(r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->ts, rh.ts);
  EXPECT_EQ(back->original_length, 1500u);
  EXPECT_EQ(back->cap_len, 98u);
}

TEST(Wire, RecordHeaderOversizedCapLenRejected) {
  RecordHeader rh;
  rh.cap_len = kMaxFrameBytes + 1;
  ByteWriter w;
  encode_record_header(w, rh);
  ByteReader r(w.view());
  EXPECT_FALSE(decode_record_header(r).ok());
}

TEST(Wire, FinAndFinAckRoundTrip) {
  ByteWriter w;
  encode_fin(w, 1000);
  ASSERT_EQ(w.view().size(), kFinSize);
  ByteReader r(w.view());
  auto total = decode_fin(r);
  ASSERT_TRUE(total.ok());
  EXPECT_EQ(*total, 1000u);

  ByteWriter w2;
  encode_fin_ack(w2, 1000);
  ASSERT_EQ(w2.view().size(), kFinAckSize);
  ByteReader r2(w2.view());
  auto back = decode_fin_ack(r2);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, 1000u);
}

TEST(Wire, MarkersAreNotInterchangeable) {
  ByteWriter w;
  encode_fin(w, 5);
  ByteReader r(w.view());
  EXPECT_FALSE(decode_fin_ack(r).ok());  // kFin marker where kFinAck expected
}

TEST(Wire, QueryReplyHeaderShape) {
  ByteWriter w;
  encode_query_reply_header(w, AckStatus::kAccepted, 1234);
  EXPECT_EQ(w.view().size(), kQueryReplyHeaderSize);
}

}  // namespace
}  // namespace uncharted::netd::wire
