// LiveIngestDaemon end-to-end over loopback: the ISSUE's core acceptance
// property — SIGKILL mid-soak + --restore yields a byte-identical final
// report to an uninterrupted run over the same fleet script, at 1 worker
// thread and at 8 — plus restore-from-nothing and the forced-release
// degradation warning.
#include "core/liveingest.hpp"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "core/export.hpp"
#include "netd/client.hpp"
#include "sim/capture.hpp"
#include "sim/fleet.hpp"

namespace uncharted::core {
namespace {

using netd::MonoClock;
using netd::MonoTime;

/// One shared small Fig-6-style capture and its fleet partition: built
/// once, replayed identically by every run in this file.
const sim::FleetScript& shared_script() {
  static const sim::FleetScript script = [] {
    sim::CaptureConfig cc = sim::CaptureConfig::y1(12.0);
    cc.include_physical_events = false;
    const sim::CaptureResult capture = sim::generate_capture(cc);
    sim::FleetScriptConfig fc;
    fc.clones = 1;
    return sim::build_fleet_script(capture.packets, fc);
  }();
  return script;
}

template <typename Pred>
bool drive(netd::Reactor& reactor, Pred&& done, double timeout_s = 60.0) {
  const MonoTime deadline =
      MonoClock::now() +
        std::chrono::duration_cast<MonoClock::duration>(
            std::chrono::duration<double>(timeout_s));
  while (!done()) {
    if (MonoClock::now() > deadline) return false;
    reactor.run_once(20);
  }
  return true;
}

LiveIngestOptions daemon_options(unsigned threads, std::uint64_t streams,
                                 const std::string& checkpoint) {
  LiveIngestOptions opt;
  opt.streaming.analyze.threads = threads;
  opt.streaming.checkpoint_path = checkpoint;
  opt.checkpoint_every_s = 0.0;  // checkpoints only where the test says so
  opt.server.expect_streams = streams;
  opt.server.tick_s = 0.02;
  opt.server.allow_forced_release = false;  // byte-identity is asserted
  return opt;
}

/// Uninterrupted reference run at full speed.
std::string uninterrupted_report(unsigned threads) {
  const sim::FleetScript& script = shared_script();
  netd::Reactor reactor;
  LiveIngestDaemon daemon(reactor,
                          daemon_options(threads, script.streams.size(), ""));
  EXPECT_TRUE(daemon.start(false).ok());

  netd::FleetConfig fc;
  fc.port = daemon.server().port();
  netd::FleetClient fleet(reactor, fc, script.streams);
  fleet.start();
  EXPECT_TRUE(drive(reactor, [&] {
    return fleet.all_done() && daemon.server().all_expected_finished();
  }));
  EXPECT_TRUE(fleet.all_benign_ok());
  return report_to_json(daemon.finalize());
}

/// Paced run killed mid-stream (checkpoint, keep ingesting, then destroy
/// the daemon without finalize — the in-process stand-in for SIGKILL),
/// restored on the same port under the same still-running fleet.
std::string killed_and_restored_report(unsigned threads,
                                       const std::string& checkpoint) {
  const sim::FleetScript& script = shared_script();
  netd::Reactor reactor;
  auto daemon = std::make_unique<LiveIngestDaemon>(
      reactor, daemon_options(threads, script.streams.size(), checkpoint));
  EXPECT_TRUE(daemon->start(false).ok());
  const std::uint16_t port = daemon->server().port();

  netd::FleetConfig fc;
  fc.port = port;
  fc.pace = 8.0;  // spread delivery so the kill lands mid-stream
  fc.linger = true;
  fc.linger_recheck_s = 0.05;
  fc.retry_initial_s = 0.02;
  netd::FleetClient fleet(reactor, fc, script.streams);
  fleet.start();

  const std::uint64_t kill_at = script.total_frames / 4;
  EXPECT_TRUE(
      drive(reactor, [&] { return daemon->frames_ingested() >= kill_at; }));
  EXPECT_TRUE(daemon->checkpoint_now().ok());
  // Keep ingesting past the checkpoint: everything after it must be
  // re-sent by cursor resume, not lost.
  const std::uint64_t past = daemon->frames_ingested() + 50;
  (void)drive(reactor, [&] { return daemon->frames_ingested() >= past; }, 2.0);
  daemon.reset();  // SIGKILL: no finalize, no final checkpoint

  LiveIngestOptions opt2 =
      daemon_options(threads, script.streams.size(), checkpoint);
  opt2.server.port = port;  // the fleet keeps dialing the old port
  auto restored = std::make_unique<LiveIngestDaemon>(reactor, opt2);
  EXPECT_TRUE(restored->start(true).ok());
  EXPECT_TRUE(restored->restored());

  EXPECT_TRUE(drive(reactor, [&] {
    // all_done too: the last fin-ack may still be in flight when the
    // server counts its stream finished.
    return restored->server().all_expected_finished() && fleet.all_done();
  }));
  EXPECT_TRUE(fleet.all_benign_ok());
  return report_to_json(restored->finalize());
}

TEST(LiveIngest, KillRestoreReportByteIdenticalSingleThread) {
  const std::string checkpoint =
      testing::TempDir() + "/liveingest_t1.ckpt";
  const std::string a = uninterrupted_report(1);
  const std::string b = killed_and_restored_report(1, checkpoint);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b) << "restored daemon diverged from uninterrupted run";
}

TEST(LiveIngest, KillRestoreReportByteIdenticalEightThreads) {
  const std::string checkpoint =
      testing::TempDir() + "/liveingest_t8.ckpt";
  const std::string a = uninterrupted_report(8);
  const std::string b = killed_and_restored_report(8, checkpoint);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b) << "restored daemon diverged at --threads 8";
}

TEST(LiveIngest, RestoreWithoutCheckpointStartsFresh) {
  netd::Reactor reactor;
  LiveIngestDaemon daemon(
      reactor,
      daemon_options(1, 0, testing::TempDir() + "/liveingest_none.ckpt2"));
  ASSERT_TRUE(daemon.start(true).ok()) << "missing checkpoint is never fatal";
  EXPECT_FALSE(daemon.restored());
  EXPECT_EQ(daemon.frames_ingested(), 0u);
}

TEST(LiveIngest, ForcedReleaseDegradesReportWithWarning) {
  netd::Reactor reactor;
  LiveIngestOptions opt = daemon_options(1, 2, "");
  opt.server.allow_forced_release = true;
  opt.server.max_buffered_bytes = 4 * 1024;
  LiveIngestDaemon daemon(reactor, opt);
  ASSERT_TRUE(daemon.start(false).ok());

  auto dial = [&] {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(daemon.server().port());
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    return fd;
  };

  // Gating stream: says hello (opening the expect_streams=2 gate and
  // registering a low watermark bound), then sends nothing.
  int gate_fd = dial();
  {
    netd::wire::Hello hello;
    hello.kind = netd::wire::HelloKind::kData;
    hello.stream_id = 2;
    hello.total_frames = 5;
    ByteWriter w;
    netd::wire::encode_hello(w, hello);
    ASSERT_EQ(::send(gate_fd, w.view().data(), w.view().size(), 0),
              static_cast<ssize_t>(w.view().size()));
  }

  // Fat stream: hello + 40 records (~10 KiB, far over the 4 KiB budget,
  // all timestamped above the gating stream's bound) + fin, written in
  // ONE send so the server sees the finished stream in one read batch —
  // disconnected-but-unreleasable, the exact force_release scenario.
  int fat_fd = dial();
  {
    ByteWriter w;
    netd::wire::Hello hello;
    hello.kind = netd::wire::HelloKind::kData;
    hello.stream_id = 1;
    hello.total_frames = 40;
    netd::wire::encode_hello(w, hello);
    std::vector<std::uint8_t> payload(256, 0xAB);
    for (std::uint64_t i = 0; i < 40; ++i) {
      netd::wire::RecordHeader rec;
      rec.ts = 1'000'000 + i * 10;
      rec.original_length = static_cast<std::uint32_t>(payload.size());
      rec.cap_len = static_cast<std::uint32_t>(payload.size());
      netd::wire::encode_record_header(w, rec);
      w.bytes(payload);
    }
    netd::wire::encode_fin(w, 40);
    ASSERT_EQ(::send(fat_fd, w.view().data(), w.view().size(), 0),
              static_cast<ssize_t>(w.view().size()));
  }

  ASSERT_TRUE(drive(reactor, [&] {
    return daemon.server().stats().forced_releases > 0;
  }, 10.0)) << "budget exhaustion with no sheddable connection must force";
  ::close(gate_fd);
  ::close(fat_fd);

  AnalysisReport report = daemon.finalize();
  ASSERT_FALSE(report.degradation.warnings.empty());
  bool found = false;
  for (const std::string& warning : report.degradation.warnings) {
    found |= warning.find("degraded to sampling") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace uncharted::core
