// OS-fault resilience of the netd layer: accept() dying with EMFILE —
// injected AND real (soft RLIMIT_NOFILE) — must shed and recover at tick
// cadence without busy-looping, and checkpoint ENOSPC must surface as a
// degradation warning in the query-socket report while the previous
// snapshot stays restorable.
#include <fcntl.h>
#include <gtest/gtest.h>
#include <sys/resource.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/liveingest.hpp"
#include "faultinject/sysfault.hpp"
#include "netd/client.hpp"
#include "netd/reactor.hpp"
#include "netd/server.hpp"

// Genuine fd exhaustion starves the sanitizer runtimes themselves: with
// zero free descriptors, libubsan's vptr check cannot open /proc/self/mem
// to probe the object and reports a spurious "invalid vptr" on the first
// polymorphic call made inside the exhausted window. The injected-EMFILE
// test keeps this code path under sanitizer coverage; the real-RLIMIT
// test runs in the plain and release configurations.
#if defined(__SANITIZE_ADDRESS__)
#define UNCHARTED_SANITIZERS_ACTIVE 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(undefined_behavior_sanitizer)
#define UNCHARTED_SANITIZERS_ACTIVE 1
#endif
#endif
#ifndef UNCHARTED_SANITIZERS_ACTIVE
#define UNCHARTED_SANITIZERS_ACTIVE 0
#endif

namespace uncharted::netd {
namespace {

net::CapturedPacket make_frame(Timestamp ts, std::uint8_t tag) {
  net::CapturedPacket pkt;
  pkt.ts = ts;
  pkt.data.assign(64, tag);
  pkt.original_length = 64;
  return pkt;
}

ReplayStream make_stream(std::uint64_t id, Timestamp first_ts, int frames) {
  ReplayStream s;
  s.id = id;
  for (int i = 0; i < frames; ++i) {
    s.frames.push_back(make_frame(first_ts + static_cast<Timestamp>(i) * 10,
                                  static_cast<std::uint8_t>(id & 0xFF)));
  }
  return s;
}

template <typename Pred>
bool drive(Reactor& reactor, Pred&& done, double timeout_s = 30.0) {
  const MonoTime deadline =
      MonoClock::now() + std::chrono::duration_cast<MonoClock::duration>(
                             std::chrono::duration<double>(timeout_s));
  while (!done()) {
    if (MonoClock::now() > deadline) return false;
    reactor.run_once(20);
  }
  return true;
}

TEST(SysFaultNetd, InjectedEmfileStormShedsAndRecovers) {
  // Every accept attempt fails with EMFILE at first; the plan's seeded
  // stream lets later attempts through. The server must mute the listener
  // on each failure (no spin), re-arm on tick, and finish every stream.
  faultinject::SysFaultPlan plan;
  plan.seed = 11;
  plan.accept_emfile_p = 0.7;
  faultinject::FaultySysOps sys(plan);

  Reactor reactor;
  ServerConfig cfg;
  cfg.expect_streams = 3;
  cfg.tick_s = 0.02;
  cfg.sys = &sys;
  std::uint64_t released = 0;
  IngestServer server(reactor, cfg,
                      [&](std::uint64_t, const net::CapturedPacket&) {
                        ++released;
                      });
  ASSERT_TRUE(server.start().ok());

  FleetConfig fc;
  fc.port = server.port();
  fc.retry_for_s = 30.0;
  std::vector<ReplayStream> streams = {make_stream(1, 0, 30),
                                       make_stream(2, 3, 30),
                                       make_stream(3, 6, 30)};
  FleetClient fleet(reactor, fc, streams);
  fleet.start();

  ASSERT_TRUE(drive(reactor, [&] {
    return fleet.all_done() && server.all_expected_finished();
  })) << server.stats_line();
  EXPECT_TRUE(fleet.all_benign_ok());
  EXPECT_EQ(released, 90u);
  EXPECT_GE(server.stats().accept_fd_exhausted, 1u)
      << "the storm never actually hit accept";
}

/// Lowers the soft RLIMIT_NOFILE for the test body and restores it on
/// destruction, whatever the test's outcome.
struct ScopedNofileLimit {
  rlimit saved{};
  bool armed = false;
  explicit ScopedNofileLimit(rlim_t soft) {
    if (::getrlimit(RLIMIT_NOFILE, &saved) != 0) return;
    rlimit lowered = saved;
    lowered.rlim_cur = soft;
    armed = ::setrlimit(RLIMIT_NOFILE, &lowered) == 0;
  }
  void restore() {
    if (armed) ::setrlimit(RLIMIT_NOFILE, &saved);
    armed = false;
  }
  ~ScopedNofileLimit() { restore(); }
};

TEST(SysFaultNetd, RealFdExhaustionShedsThenRecoversWhenLimitLifts) {
  // Genuine kernel EMFILE, no injection: burn every descriptor below a
  // lowered soft limit except ONE, so the client's socket() succeeds and
  // the server's accept() cannot. The server must shed (mute + count),
  // keep the loop responsive, and complete once descriptors free up.
  if (UNCHARTED_SANITIZERS_ACTIVE) {
    GTEST_SKIP() << "fd exhaustion starves the sanitizer runtime (see top "
                    "of file); the injected-EMFILE test covers this path";
  }
  Reactor reactor;
  ServerConfig cfg;
  cfg.expect_streams = 1;
  cfg.tick_s = 0.02;
  std::uint64_t released = 0;
  IngestServer server(reactor, cfg,
                      [&](std::uint64_t, const net::CapturedPacket&) {
                        ++released;
                      });
  ASSERT_TRUE(server.start().ok());

  // Lower the soft limit to just above the current usage so only a
  // handful of descriptors need burning, however many gtest has open.
  std::size_t fds_in_use = 0;
  for ([[maybe_unused]] const auto& e :
       std::filesystem::directory_iterator("/proc/self/fd")) {
    ++fds_in_use;
  }
  ScopedNofileLimit limit(static_cast<rlim_t>(fds_in_use + 8));
  ASSERT_TRUE(limit.armed);

  // Burn descriptors until the kernel says EMFILE, then hand back one.
  std::vector<int> burned;
  while (true) {
    const int fd = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      ASSERT_EQ(EMFILE, errno) << "expected fd exhaustion, got another error";
      break;
    }
    burned.push_back(fd);
  }
  ASSERT_FALSE(burned.empty());
  ::close(burned.back());
  burned.pop_back();

  FleetConfig fc;
  fc.port = server.port();
  fc.retry_for_s = 30.0;
  fc.retry_initial_s = 0.02;
  std::vector<ReplayStream> streams = {make_stream(7, 0, 20)};
  FleetClient fleet(reactor, fc, streams);
  fleet.start();  // takes the last free descriptor; accept() now EMFILEs

  const bool exhausted =
      drive(reactor, [&] { return server.stats().accept_fd_exhausted >= 1; },
            10.0);

  // Lift the pressure and the stream must complete normally.
  for (int fd : burned) ::close(fd);
  burned.clear();
  limit.restore();

  ASSERT_TRUE(drive(reactor, [&] {
    return fleet.all_done() && server.all_expected_finished();
  })) << server.stats_line();
  EXPECT_TRUE(exhausted) << "accept never hit the descriptor wall: "
                         << server.stats_line();
  EXPECT_TRUE(fleet.all_benign_ok());
  EXPECT_EQ(released, 20u);
  EXPECT_GE(server.stats().accept_fd_exhausted, 1u);
}

TEST(SysFaultNetd, CheckpointEnospcDegradesQueryReportAndKeepsSnapshot) {
  // ENOSPC on every checkpoint write: the daemon keeps running, the query
  // socket's report JSON carries the degradation warning, the previous
  // snapshot stays restorable, and the first healthy write clears it all.
  const std::string checkpoint =
      testing::TempDir() + "/sysfault_enospc.ckpt";
  std::filesystem::remove(checkpoint);
  std::filesystem::remove(checkpoint + ".1");
  std::filesystem::remove(checkpoint + ".tmp");

  faultinject::SysFaultPlan plan;
  plan.write_enospc_p = 1.0;
  faultinject::FaultySysOps sys(plan);
  sys.set_enabled(false);  // healthy disk first

  Reactor reactor;
  core::LiveIngestOptions opt;
  opt.streaming.checkpoint_path = checkpoint;
  opt.checkpoint_every_s = 0.0;  // driven manually
  opt.server.expect_streams = 0;
  opt.server.tick_s = 0.02;
  opt.sys = &sys;
  core::LiveIngestDaemon daemon(reactor, opt);
  ASSERT_TRUE(daemon.start(false).ok());

  // Healthy write: one good generation on disk, report clean.
  ASSERT_TRUE(daemon.checkpoint_now().ok());
  EXPECT_EQ(daemon.report_json().find("checkpoint degraded"),
            std::string::npos);

  // The disk fills: writes fail, the daemon degrades instead of dying.
  sys.set_enabled(true);
  EXPECT_FALSE(daemon.checkpoint_now().ok());
  EXPECT_GE(daemon.checkpoint_failures(), 1u);
  EXPECT_NE(daemon.checkpoint_error().find("checkpoint-write"),
            std::string::npos);

  // The degradation warning is part of the query-socket payload.
  Result<std::string> got = Error{"query", "never ran"};
  std::thread asker([&] {
    got = fetch_report("127.0.0.1", daemon.server().port(), 5.0);
  });
  ASSERT_TRUE(
      drive(reactor, [&] { return daemon.server().stats().queries_served >= 1; }));
  asker.join();
  ASSERT_TRUE(got.ok());
  EXPECT_NE(got->find("checkpoint degraded"), std::string::npos)
      << "query report hides the stale-snapshot degradation";
  EXPECT_NE(got->find("last good snapshot retained"), std::string::npos);

  // The last good generation survived every failed write.
  EXPECT_TRUE(core::read_latest_checkpoint(checkpoint).ok());

  // Space comes back: the next write succeeds and the warning clears.
  sys.set_enabled(false);
  ASSERT_TRUE(daemon.checkpoint_now().ok());
  EXPECT_TRUE(daemon.checkpoint_error().empty());
  EXPECT_EQ(daemon.report_json().find("checkpoint degraded"),
            std::string::npos);
}

}  // namespace
}  // namespace uncharted::netd
