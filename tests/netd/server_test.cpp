// IngestServer + FleetClient over real loopback sockets, single-threaded
// on one shared reactor: deterministic watermark merge, admission control,
// the hostile-eviction ladder, overload shedding with lossless resume,
// cursor checkpointing, and the query path.
#include "netd/server.hpp"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "netd/client.hpp"
#include "netd/reactor.hpp"

namespace uncharted::netd {
namespace {

using ReleasedKey = std::tuple<Timestamp, std::uint64_t, std::uint64_t>;

net::CapturedPacket make_frame(Timestamp ts, std::uint8_t tag,
                               std::size_t len = 64) {
  net::CapturedPacket pkt;
  pkt.ts = ts;
  pkt.data.assign(len, tag);
  pkt.original_length = static_cast<std::uint32_t>(len);
  return pkt;
}

ReplayStream make_stream(std::uint64_t id, Timestamp first_ts, int frames,
                         Timestamp step = 10,
                         ReplayMode mode = ReplayMode::kBenign) {
  ReplayStream s;
  s.id = id;
  s.mode = mode;
  for (int i = 0; i < frames; ++i) {
    s.frames.push_back(make_frame(
        first_ts + static_cast<Timestamp>(i) * step,
        static_cast<std::uint8_t>(id & 0xFF)));
  }
  return s;
}

/// One server + one fleet on a shared reactor, with a sink recording the
/// release order. drive() pumps until the predicate holds or it times out.
struct Harness {
  Reactor reactor;
  ServerConfig config;
  std::vector<ReleasedKey> released;
  std::vector<std::size_t> released_sizes;
  std::unique_ptr<IngestServer> server;

  explicit Harness(ServerConfig cfg) : config(std::move(cfg)) {
    config.tick_s = 0.02;  // fast housekeeping so timeout tests stay quick
    server = std::make_unique<IngestServer>(
        reactor, config,
        [this](std::uint64_t stream_id, const net::CapturedPacket& pkt) {
          // seq within a stream is implied by arrival order; record enough
          // to assert global sortedness.
          released.push_back(
              ReleasedKey{pkt.ts, stream_id, released_sizes.size()});
          released_sizes.push_back(pkt.data.size());
        });
    EXPECT_TRUE(server->start().ok()) << "listener must open";
  }

  template <typename Pred>
  bool drive(Pred&& done, double timeout_s = 15.0) {
    const MonoTime deadline =
        MonoClock::now() +
        std::chrono::duration_cast<MonoClock::duration>(
            std::chrono::duration<double>(timeout_s));
    while (!done()) {
      if (MonoClock::now() > deadline) {
        ADD_FAILURE() << "drive timeout; server: " << server->stats_line();
        return false;
      }
      reactor.run_once(20);
    }
    return true;
  }

  FleetConfig fleet_config() const {
    FleetConfig fc;
    fc.port = server->port();
    fc.retry_for_s = 15.0;
    return fc;
  }
};

bool globally_sorted(const std::vector<ReleasedKey>& keys) {
  for (std::size_t i = 1; i < keys.size(); ++i) {
    if (std::get<0>(keys[i]) < std::get<0>(keys[i - 1])) return false;
  }
  return true;
}

TEST(IngestServer, MergesInterleavedStreamsInTimestampOrder) {
  ServerConfig cfg;
  cfg.expect_streams = 3;
  Harness h(cfg);

  // Interleaved timestamp ranges so socket arrival order cannot by luck
  // coincide with the sorted order.
  std::vector<ReplayStream> streams = {
      make_stream(1, 5, 40), make_stream(2, 0, 40), make_stream(3, 2, 40)};
  FleetClient fleet(h.reactor, h.fleet_config(), std::move(streams));
  fleet.start();

  ASSERT_TRUE(h.drive([&] {
    return fleet.all_done() && h.server->all_expected_finished();
  }));
  EXPECT_TRUE(fleet.all_benign_ok());
  ASSERT_EQ(h.released.size(), 120u);
  EXPECT_TRUE(globally_sorted(h.released));
  EXPECT_EQ(h.server->stats().frames_released, 120u);
  EXPECT_EQ(h.server->stats().streams_finished, 3u);
}

TEST(IngestServer, ExpectStreamsGateHoldsReleaseUntilAllRegister) {
  ServerConfig cfg;
  cfg.expect_streams = 2;
  Harness h(cfg);

  // First stream alone: everything it sends must stay queued.
  FleetClient first(h.reactor, h.fleet_config(),
                    {make_stream(1, 0, 10)});
  first.start();
  ASSERT_TRUE(h.drive([&] { return h.server->stats().frames_received >= 10; }));
  for (int i = 0; i < 10; ++i) h.reactor.run_once(5);
  EXPECT_EQ(h.released.size(), 0u) << "gate must hold with 1/2 streams";

  FleetClient second(h.reactor, h.fleet_config(),
                     {make_stream(2, 100, 10)});
  second.start();
  ASSERT_TRUE(h.drive([&] { return first.all_done() && second.all_done(); }));
  EXPECT_EQ(h.released.size(), 20u);
  EXPECT_TRUE(globally_sorted(h.released));
}

TEST(IngestServer, ConnectionCapBusyAcksExtrasAndClientsRetryLosslessly) {
  ServerConfig cfg;
  cfg.max_connections = 1;
  cfg.expect_streams = 4;
  Harness h(cfg);

  std::vector<ReplayStream> streams;
  for (std::uint64_t id = 1; id <= 4; ++id) {
    streams.push_back(make_stream(id, id * 1000, 25));
  }
  FleetConfig fc = h.fleet_config();
  fc.retry_initial_s = 0.01;  // keep the busy-retry storm fast
  FleetClient fleet(h.reactor, fc, std::move(streams));
  fleet.start();

  ASSERT_TRUE(h.drive([&] { return fleet.all_done(); }));
  EXPECT_TRUE(fleet.all_benign_ok());
  EXPECT_GT(h.server->stats().rejected_busy, 0u);
  // The busy ack is best-effort: if the rejected socket closes before the
  // client's hello hits the wire, the hello draws an RST that flushes the
  // ack out of the client's receive buffer. Either way the client backs
  // off and retries — what matters is that nothing is lost.
  EXPECT_GT(fleet.stats().busy_retries + fleet.stats().reconnects, 0u);
  EXPECT_EQ(h.released.size(), 100u) << "busy acks must lose nothing";
  EXPECT_TRUE(globally_sorted(h.released));
  EXPECT_LE(h.server->stats().peak_connections, 1u);
}

TEST(IngestServer, AcceptRateLimitDefersAcceptsWithoutLosingFlows) {
  ServerConfig cfg;
  cfg.accept_rate = 50.0;
  cfg.accept_burst = 1.0;
  cfg.expect_streams = 5;
  Harness h(cfg);

  std::vector<ReplayStream> streams;
  for (std::uint64_t id = 1; id <= 5; ++id) {
    streams.push_back(make_stream(id, id * 100, 8));
  }
  FleetClient fleet(h.reactor, h.fleet_config(), std::move(streams));
  fleet.start();

  ASSERT_TRUE(h.drive([&] { return fleet.all_done(); }));
  EXPECT_TRUE(fleet.all_benign_ok());
  EXPECT_GT(h.server->stats().rate_deferred_polls, 0u)
      << "5 simultaneous connects against burst=1 must hit the bucket";
  EXPECT_EQ(h.released.size(), 40u);
}

TEST(IngestServer, GarbageHelloEvictedAsHostile) {
  ServerConfig cfg;
  Harness h(cfg);

  ReplayStream garbage = make_stream(9, 0, 1, 10, ReplayMode::kGarbage);
  FleetClient fleet(h.reactor, h.fleet_config(), {garbage});
  fleet.start();

  ASSERT_TRUE(h.drive([&] { return fleet.all_done(); }));
  EXPECT_GE(h.server->stats().evicted_hostile, 1u);
  EXPECT_GE(fleet.stats().hostile_closed, 1u);
  ASSERT_FALSE(h.server->evictions().empty());
  EXPECT_EQ(h.server->evictions().front().severity, iec104::Severity::kHostile);
  EXPECT_EQ(h.released.size(), 0u);
}

TEST(IngestServer, SlowLorisDribbleEvictedWithoutStallingBenignStreams) {
  ServerConfig cfg;
  cfg.read_timeout_s = 0.1;
  cfg.expect_streams = 2;
  Harness h(cfg);

  // The loris completes its handshake (registering stream 7 and opening
  // the expect_streams=2 gate) then leaves a record partial forever. Its
  // eviction must erase the dead stream so the benign stream's frames
  // (timestamped entirely AFTER the loris bound) still release.
  std::vector<ReplayStream> streams = {
      make_stream(7, 0, 4, 10, ReplayMode::kSlowLoris),
      make_stream(1, 50'000, 30)};
  FleetClient fleet(h.reactor, h.fleet_config(), std::move(streams));
  fleet.start();

  ASSERT_TRUE(h.drive([&] {
    return h.server->stats().evicted_hostile >= 1 && fleet.all_done() &&
           h.released.size() >= 30;
  }));
  EXPECT_TRUE(fleet.all_benign_ok());
  EXPECT_EQ(h.released.size(), 30u)
      << "hostile stream must be erased, not left gating the watermark";
  EXPECT_TRUE(globally_sorted(h.released));
  bool hostile_seen = false;
  for (const EvictionRecord& ev : h.server->evictions()) {
    hostile_seen |= ev.severity == iec104::Severity::kHostile;
  }
  EXPECT_TRUE(hostile_seen);
}

TEST(IngestServer, IdleConnectionClosedAsInfoAndClientResumes) {
  ServerConfig cfg;
  cfg.idle_timeout_s = 0.05;
  cfg.read_timeout_s = 0.05;
  cfg.handshake_timeout_s = 0.05;
  Harness h(cfg);

  // No client at all: open a raw socket that says nothing. The handshake
  // timeout reaps it as kWarn.
  Reactor& r = h.reactor;
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(Reactor::make_nonblocking(fd).ok());
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(h.server->port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  (void)::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  ASSERT_TRUE(h.drive([&] { return h.server->stats().evicted_warn >= 1; }));
  ::close(fd);
  (void)r;
}

TEST(IngestServer, SheddingDropsFattestBufferAndResumeLosesNothing) {
  ServerConfig cfg;
  cfg.expect_streams = 2;
  // Budget far below what stream 2 wants to buffer ahead of stream 1's
  // watermark; per-conn pausing is set even lower so pauses kick first.
  cfg.max_buffered_bytes = 8 * 1024;
  cfg.per_conn_buffered_bytes = 2 * 1024;
  cfg.allow_forced_release = false;
  Harness h(cfg);

  // Stream 2's timestamps all sit after stream 1's, so nothing of stream 2
  // can release until stream 1 finishes: its buffer is pure backpressure.
  std::vector<ReplayStream> streams = {
      make_stream(1, 0, 200, 10),
      make_stream(2, 1'000'000, 200, 10)};
  FleetConfig fc = h.fleet_config();
  fc.retry_initial_s = 0.01;
  FleetClient fleet(h.reactor, fc, std::move(streams));
  fleet.start();

  ASSERT_TRUE(h.drive([&] { return fleet.all_done(); }));
  EXPECT_TRUE(fleet.all_benign_ok());
  EXPECT_EQ(h.released.size(), 400u) << "shedding must be lossless";
  EXPECT_TRUE(globally_sorted(h.released));
  EXPECT_GT(h.server->stats().paused_reads +
                h.server->stats().shed_connections,
            0u)
      << "the tiny budget must have engaged backpressure machinery";
  EXPECT_EQ(h.server->stats().forced_releases, 0u);
  EXPECT_LE(h.server->stats().peak_queued_bytes,
            cfg.max_buffered_bytes + wire::kMaxFrameBytes);
}

TEST(IngestServer, CursorsSurviveServerTeardownAndResumeSkipsReleasedFrames) {
  // Phase 1: deliver the first stream fully, second stream not at all.
  ServerConfig cfg;
  cfg.expect_streams = 2;
  Harness h(cfg);

  FleetConfig fc = h.fleet_config();
  fc.linger = true;
  fc.linger_recheck_s = 0.05;
  FleetClient fleet(h.reactor, fc,
                    {make_stream(1, 0, 30), make_stream(2, 10'000, 30)});
  fleet.start();
  ASSERT_TRUE(h.drive([&] { return h.server->stats().streams_finished >= 2; }));
  const std::size_t released_before = h.released.size();
  EXPECT_EQ(released_before, 60u);

  ByteWriter snapshot;
  h.server->save_cursors(snapshot);
  const std::uint16_t old_port = h.server->port();
  h.server->close_all();
  h.server.reset();

  // Phase 2: a fresh server restored from the cursors, same port. The
  // lingering fleet re-offers both streams; the restored cursors say
  // everything was already released, so nothing is re-sunk.
  ServerConfig cfg2;
  cfg2.expect_streams = 2;
  cfg2.bind_addr = "127.0.0.1";
  cfg2.port = old_port;
  cfg2.tick_s = 0.02;
  std::vector<ReleasedKey> released2;
  IngestServer server2(
      h.reactor, cfg2,
      [&](std::uint64_t stream_id, const net::CapturedPacket& pkt) {
        released2.push_back(ReleasedKey{pkt.ts, stream_id, released2.size()});
      });
  ByteReader r(snapshot.view());
  ASSERT_TRUE(server2.load_cursors(r).ok());
  ASSERT_TRUE(server2.start().ok());

  ASSERT_TRUE(h.drive([&] { return server2.all_expected_finished(); }));
  EXPECT_EQ(released2.size(), 0u)
      << "restored cursors mark all frames released; re-offers are skipped";
  EXPECT_EQ(server2.stats().streams_finished, 2u)
      << "restored fully-released streams count as finished";
}

TEST(IngestServer, LoadCursorsRejectsGarbage) {
  Reactor reactor;
  ServerConfig cfg;
  IngestServer server(reactor, cfg,
                      [](std::uint64_t, const net::CapturedPacket&) {});
  std::vector<std::uint8_t> junk = {0xDE, 0xAD, 0xBE, 0xEF};
  ByteReader r(junk);
  EXPECT_FALSE(server.load_cursors(r).ok());
}

TEST(IngestServer, QueryConnectionServesReportJson) {
  ServerConfig cfg;
  Harness h(cfg);
  h.server->set_query_handler([] { return std::string("{\"ok\": true}"); });

  // fetch_report blocks, so it runs on a helper thread while this thread
  // keeps driving the reactor.
  Result<std::string> got = Error{"query", "never ran"};
  std::thread asker([&] {
    got = fetch_report("127.0.0.1", h.server->port(), 5.0);
  });
  ASSERT_TRUE(h.drive([&] { return h.server->stats().queries_served >= 1; }));
  asker.join();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "{\"ok\": true}");
}

}  // namespace
}  // namespace uncharted::netd
