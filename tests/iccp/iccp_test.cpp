#include "iccp/iccp.hpp"

#include <gtest/gtest.h>

namespace uncharted::iccp {
namespace {

TEST(Tpkt, WrapUnwrapRoundTrip) {
  std::uint8_t payload[] = {1, 2, 3, 4, 5};
  auto wrapped = tpkt_wrap(payload);
  ASSERT_EQ(wrapped.size(), 9u);
  EXPECT_EQ(wrapped[0], 3);
  EXPECT_EQ(wrapped[2], 0);
  EXPECT_EQ(wrapped[3], 9);
  ByteReader r(wrapped);
  auto back = tpkt_unwrap(r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), 5u);
  EXPECT_EQ((*back)[0], 1);
  EXPECT_TRUE(r.empty());
}

TEST(Tpkt, BadVersionRejected) {
  std::uint8_t bytes[] = {4, 0, 0, 5, 0xaa};
  ByteReader r(bytes);
  auto back = tpkt_unwrap(r);
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.error().code, "bad-tpkt-version");
}

TEST(Cotp, DataTpduRoundTrip) {
  CotpTpdu dt;
  dt.type = CotpType::kData;
  dt.last_data_unit = true;
  dt.payload = {0xde, 0xad};
  auto bytes = dt.encode();
  ASSERT_EQ(bytes.size(), 5u);
  EXPECT_EQ(bytes[1], 0xf0);
  auto back = CotpTpdu::decode(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->type, CotpType::kData);
  EXPECT_TRUE(back->last_data_unit);
  EXPECT_EQ(back->payload, dt.payload);
}

TEST(Cotp, ConnectionHandshakeRoundTrip) {
  CotpTpdu cr;
  cr.type = CotpType::kConnectionRequest;
  cr.dst_ref = 0;
  cr.src_ref = 0x1234;
  auto bytes = cr.encode();
  auto back = CotpTpdu::decode(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->type, CotpType::kConnectionRequest);
  EXPECT_EQ(back->src_ref, 0x1234);

  CotpTpdu cc;
  cc.type = CotpType::kConnectionConfirm;
  cc.dst_ref = 0x1234;
  cc.src_ref = 0x5678;
  auto cc_back = CotpTpdu::decode(cc.encode());
  ASSERT_TRUE(cc_back.ok());
  EXPECT_EQ(cc_back->dst_ref, 0x1234);
}

TEST(Iccp, MessageRoundTrip) {
  Message m;
  m.type = MessageType::kInformationReport;
  m.invoke_id = 42;
  m.association_name = "TASE2-ASSOC-1";
  m.points.push_back({"TIE_LINE_1.MW", 131.5, 0});
  m.points.push_back({"AREA.FREQ", 60.002, 0x01});
  auto bytes = m.encode();
  auto back = Message::decode(bytes);
  ASSERT_TRUE(back.ok()) << back.error().str();
  EXPECT_EQ(back->type, MessageType::kInformationReport);
  EXPECT_EQ(back->invoke_id, 42u);
  EXPECT_EQ(back->association_name, "TASE2-ASSOC-1");
  ASSERT_EQ(back->points.size(), 2u);
  EXPECT_EQ(back->points[0].name, "TIE_LINE_1.MW");
  EXPECT_NEAR(back->points[1].value, 60.002, 1e-3);
  EXPECT_EQ(back->points[1].quality, 0x01);
}

TEST(Iccp, ReadRequestCarriesNames) {
  Message m;
  m.type = MessageType::kReadRequest;
  m.invoke_id = 7;
  m.names = {"BUS7.KV", "BUS9.KV"};
  auto back = Message::decode(m.encode());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->names, m.names);
  EXPECT_TRUE(back->points.empty());
}

TEST(Iccp, WireRoundTripThroughTpktCotp) {
  Message m;
  m.type = MessageType::kAssociationRequest;
  m.invoke_id = 1;
  m.association_name = "TASE2-ASSOC-9";
  auto wire = m.to_wire();
  ByteReader r(wire);
  auto back = from_wire(r);
  ASSERT_TRUE(back.ok()) << back.error().str();
  EXPECT_EQ(back->type, MessageType::kAssociationRequest);
  EXPECT_EQ(back->association_name, "TASE2-ASSOC-9");
  EXPECT_TRUE(r.empty());
}

TEST(Iccp, TwoMessagesInOneStream) {
  Message a;
  a.type = MessageType::kReadRequest;
  a.invoke_id = 1;
  a.names = {"X"};
  Message b;
  b.type = MessageType::kReadResponse;
  b.invoke_id = 1;
  b.points.push_back({"X", 5.0, 0});
  auto wa = a.to_wire();
  auto wb = b.to_wire();
  std::vector<std::uint8_t> stream = wa;
  stream.insert(stream.end(), wb.begin(), wb.end());
  ByteReader r(stream);
  EXPECT_EQ(from_wire(r)->type, MessageType::kReadRequest);
  EXPECT_EQ(from_wire(r)->type, MessageType::kReadResponse);
  EXPECT_TRUE(r.empty());
}

TEST(Iccp, MalformedMessageRejected) {
  std::uint8_t junk[] = {9, 0, 0, 0, 1, 0, 0};
  auto back = Message::decode(junk);
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.error().code, "bad-iccp-type");
  Message m;
  m.type = MessageType::kConclude;
  auto bytes = m.encode();
  bytes.push_back(0xff);
  EXPECT_EQ(Message::decode(bytes).error().code, "trailing-bytes");
}

}  // namespace
}  // namespace uncharted::iccp
