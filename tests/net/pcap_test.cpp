#include "net/pcap.hpp"

#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "util/bytes.hpp"

namespace uncharted::net {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::vector<std::uint8_t> sample_frame(std::uint8_t fill, std::size_t n) {
  return std::vector<std::uint8_t>(n, fill);
}

TEST(Pcap, WriteReadRoundTrip) {
  std::string path = temp_path("uncharted_pcap_rt.pcap");
  {
    auto w = PcapWriter::open(path);
    ASSERT_TRUE(w.ok()) << w.error().str();
    ASSERT_TRUE(w->write(make_timestamp(100, 250), sample_frame(0xaa, 60)).ok());
    ASSERT_TRUE(w->write(make_timestamp(101, 999999), sample_frame(0xbb, 1500)).ok());
    EXPECT_EQ(w->packets_written(), 2u);
    ASSERT_TRUE(w->close().ok());
  }
  auto packets = PcapReader::read_file(path);
  ASSERT_TRUE(packets.ok()) << packets.error().str();
  ASSERT_EQ(packets->size(), 2u);
  EXPECT_EQ((*packets)[0].ts, make_timestamp(100, 250));
  EXPECT_EQ((*packets)[0].data.size(), 60u);
  EXPECT_EQ((*packets)[0].data[0], 0xaa);
  EXPECT_EQ((*packets)[1].ts, make_timestamp(101, 999999));
  EXPECT_EQ((*packets)[1].original_length, 1500u);
  std::filesystem::remove(path);
}

TEST(Pcap, SnaplenTruncatesButKeepsOriginalLength) {
  std::string path = temp_path("uncharted_pcap_snap.pcap");
  {
    auto w = PcapWriter::open(path, 64);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(w->write(0, sample_frame(0xcc, 200)).ok());
    ASSERT_TRUE(w->close().ok());
  }
  auto packets = PcapReader::read_file(path);
  ASSERT_TRUE(packets.ok());
  ASSERT_EQ(packets->size(), 1u);
  EXPECT_EQ((*packets)[0].data.size(), 64u);
  EXPECT_EQ((*packets)[0].original_length, 200u);
  std::filesystem::remove(path);
}

TEST(Pcap, ReadsByteSwappedFiles) {
  // Construct a big-endian (swapped magic) pcap in memory.
  ByteWriter w;
  w.u32be(kPcapMagic);  // stored big-endian == swapped from our reader's view
  w.u16be(2);
  w.u16be(4);
  w.u32be(0);
  w.u32be(0);
  w.u32be(65535);
  w.u32be(kLinkTypeEthernet);
  w.u32be(1600000000);  // ts_sec
  w.u32be(123);         // ts_usec
  w.u32be(4);           // incl_len
  w.u32be(4);           // orig_len
  w.u32be(0xdeadbeef);  // payload
  auto packets = PcapReader::read_buffer(w.view());
  ASSERT_TRUE(packets.ok()) << packets.error().str();
  ASSERT_EQ(packets->size(), 1u);
  EXPECT_EQ((*packets)[0].ts, make_timestamp(1600000000, 123));
  EXPECT_EQ((*packets)[0].data.size(), 4u);
}

TEST(Pcap, RejectsBadMagicAndLinktype) {
  ByteWriter bad;
  bad.u32le(0x12345678);
  auto r1 = PcapReader::read_buffer(bad.view());
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.error().code, "bad-magic");

  ByteWriter wrong_link;
  wrong_link.u32le(kPcapMagic);
  wrong_link.u16le(2);
  wrong_link.u16le(4);
  wrong_link.u32le(0);
  wrong_link.u32le(0);
  wrong_link.u32le(65535);
  wrong_link.u32le(101);  // LINKTYPE_RAW, unsupported
  auto r2 = PcapReader::read_buffer(wrong_link.view());
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.error().code, "bad-linktype");
}

TEST(Pcap, TruncatedRecordIsAnError) {
  std::string path = temp_path("uncharted_pcap_trunc.pcap");
  {
    auto w = PcapWriter::open(path);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(w->write(0, sample_frame(0x11, 100)).ok());
    ASSERT_TRUE(w->close().ok());
  }
  // Chop the last 10 bytes.
  auto full = PcapReader::read_file(path);
  ASSERT_TRUE(full.ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  ASSERT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
  bytes.resize(bytes.size() - 10);
  auto result = PcapReader::read_buffer(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, "truncated");
  std::filesystem::remove(path);
}

TEST(Pcap, TolerantReadRecoversCompletePrefixOfTruncatedFile) {
  std::string path = temp_path("uncharted_pcap_tol.pcap");
  {
    auto w = PcapWriter::open(path);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(w->write(0, sample_frame(0x11, 100)).ok());
    ASSERT_TRUE(w->write(1, sample_frame(0x22, 80)).ok());
    ASSERT_TRUE(w->write(2, sample_frame(0x33, 60)).ok());
    ASSERT_TRUE(w->close().ok());
  }
  // Cut mid-way through the third record, as a crashed tap would.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  ASSERT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
  bytes.resize(bytes.size() - 30);

  auto tolerant = PcapReader::read_buffer_tolerant(bytes);
  ASSERT_TRUE(tolerant.ok()) << tolerant.error().str();
  EXPECT_TRUE(tolerant->truncated_tail);
  EXPECT_FALSE(tolerant->warning.empty());
  ASSERT_EQ(tolerant->packets.size(), 2u);
  EXPECT_EQ(tolerant->packets[1].data[0], 0x22);

  // The strict reader still refuses the same bytes...
  EXPECT_FALSE(PcapReader::read_buffer(bytes).ok());

  // ...and an intact file is tolerant-read with no warning.
  auto clean = PcapReader::read_file_tolerant(path);
  ASSERT_TRUE(clean.ok());
  EXPECT_FALSE(clean->truncated_tail);
  EXPECT_TRUE(clean->warning.empty());
  EXPECT_EQ(clean->packets.size(), 3u);
  std::filesystem::remove(path);
}

TEST(Pcap, HeaderDamageIsStillAnErrorForTolerantRead) {
  // Tolerance covers a cut-off tail, not an unreadable file: a capture
  // whose global header is damaged has no trustworthy prefix at all.
  std::vector<std::uint8_t> junk = {0x00, 0x01, 0x02, 0x03};
  EXPECT_FALSE(PcapReader::read_buffer_tolerant(junk).ok());
}

TEST(Pcap, EmptyCaptureIsValid) {
  std::string path = temp_path("uncharted_pcap_empty.pcap");
  {
    auto w = PcapWriter::open(path);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(w->close().ok());
  }
  auto packets = PcapReader::read_file(path);
  ASSERT_TRUE(packets.ok());
  EXPECT_TRUE(packets->empty());
  std::filesystem::remove(path);
}

TEST(Pcap, OpenFailsForBadPath) {
  EXPECT_FALSE(PcapWriter::open("/nonexistent-dir/x.pcap").ok());
  EXPECT_FALSE(PcapReader::read_file("/nonexistent-dir/x.pcap").ok());
}

}  // namespace
}  // namespace uncharted::net
