#include "net/reassembly.hpp"

#include <gtest/gtest.h>

namespace uncharted::net {
namespace {

TcpHeader seg(std::uint32_t seq, std::uint8_t flags = kTcpAck) {
  TcpHeader h;
  h.seq = seq;
  h.flags = flags;
  return h;
}

std::vector<std::uint8_t> bytes(std::initializer_list<std::uint8_t> list) {
  return {list};
}

TEST(StreamDirection, InOrderDelivery) {
  TcpStreamDirection dir;
  auto c1 = dir.on_segment(1, seg(100), bytes({1, 2, 3}));
  ASSERT_EQ(c1.size(), 1u);
  EXPECT_EQ(c1[0].data, bytes({1, 2, 3}));
  auto c2 = dir.on_segment(2, seg(103), bytes({4, 5}));
  ASSERT_EQ(c2.size(), 1u);
  EXPECT_EQ(c2[0].data, bytes({4, 5}));
  EXPECT_EQ(dir.delivered_bytes(), 5u);
  EXPECT_EQ(dir.retransmitted_segments(), 0u);
}

TEST(StreamDirection, SynConsumesOneSequenceNumber) {
  TcpStreamDirection dir;
  EXPECT_TRUE(dir.on_segment(0, seg(99, kTcpSyn), {}).empty());
  auto c = dir.on_segment(1, seg(100), bytes({7}));
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c[0].data, bytes({7}));
}

TEST(StreamDirection, ExactDuplicateIsRetransmission) {
  TcpStreamDirection dir;
  dir.on_segment(1, seg(100), bytes({1, 2, 3}));
  auto dup = dir.on_segment(2, seg(100), bytes({1, 2, 3}));
  EXPECT_TRUE(dup.empty());
  EXPECT_EQ(dir.retransmitted_segments(), 1u);
  EXPECT_EQ(dir.delivered_bytes(), 3u);
}

TEST(StreamDirection, PartialOverlapDeliversOnlyNewTail) {
  TcpStreamDirection dir;
  dir.on_segment(1, seg(100), bytes({1, 2, 3}));
  auto c = dir.on_segment(2, seg(101), bytes({2, 3, 4, 5}));
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c[0].data, bytes({4, 5}));
  EXPECT_EQ(dir.retransmitted_segments(), 1u);
}

TEST(StreamDirection, OutOfOrderBufferedThenDrained) {
  TcpStreamDirection dir;
  dir.on_segment(1, seg(100), bytes({1}));
  auto gap = dir.on_segment(2, seg(103), bytes({4, 5}));
  EXPECT_TRUE(gap.empty());
  EXPECT_EQ(dir.out_of_order_segments(), 1u);
  auto c = dir.on_segment(3, seg(101), bytes({2, 3}));
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c[0].data, bytes({2, 3, 4, 5}));
  EXPECT_EQ(dir.delivered_bytes(), 5u);
}

TEST(StreamDirection, SequenceWraparound) {
  TcpStreamDirection dir;
  std::uint32_t near_max = 0xfffffffe;
  auto c1 = dir.on_segment(1, seg(near_max), bytes({1, 2, 3, 4}));
  ASSERT_EQ(c1.size(), 1u);
  auto c2 = dir.on_segment(2, seg(near_max + 4), bytes({5, 6}));  // wraps to 2
  ASSERT_EQ(c2.size(), 1u);
  EXPECT_EQ(c2[0].data, bytes({5, 6}));
}

TEST(StreamDirection, StaleBufferedSegmentDropped) {
  TcpStreamDirection dir;
  dir.on_segment(1, seg(100), bytes({1}));
  dir.on_segment(2, seg(102), bytes({3}));      // buffered
  dir.on_segment(3, seg(102), bytes({3, 4}));   // longer duplicate, replaces
  auto c = dir.on_segment(4, seg(101), bytes({2}));
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c[0].data, bytes({2, 3, 4}));
}

TEST(Reassembler, RoutesPerDirection) {
  std::map<std::string, std::vector<std::uint8_t>> streams;
  TcpReassembler r([&](const FlowKey& key, const StreamChunk& chunk) {
    auto& s = streams[key.str()];
    s.insert(s.end(), chunk.data.begin(), chunk.data.end());
  });

  DecodedFrame fwd;
  fwd.ip.src = Ipv4Addr::parse("10.0.0.1").value();
  fwd.ip.dst = Ipv4Addr::parse("10.1.0.2").value();
  fwd.tcp = seg(100);
  fwd.tcp.src_port = 5000;
  fwd.tcp.dst_port = 2404;
  std::uint8_t d1[] = {1, 2};
  fwd.payload = d1;
  r.add(1, fwd);

  DecodedFrame rev;
  rev.ip.src = fwd.ip.dst;
  rev.ip.dst = fwd.ip.src;
  rev.tcp = seg(500);
  rev.tcp.src_port = 2404;
  rev.tcp.dst_port = 5000;
  std::uint8_t d2[] = {9};
  rev.payload = d2;
  r.add(2, rev);

  ASSERT_EQ(streams.size(), 2u);
  EXPECT_EQ(streams["10.0.0.1:5000 -> 10.1.0.2:2404"], bytes({1, 2}));
  EXPECT_EQ(streams["10.1.0.2:2404 -> 10.0.0.1:5000"], bytes({9}));
  EXPECT_EQ(r.retransmitted_segments(), 0u);

  r.add(3, fwd);  // duplicate
  EXPECT_EQ(r.retransmitted_segments(), 1u);
  FlowKey key{fwd.ip.src, 5000, fwd.ip.dst, 2404};
  EXPECT_EQ(r.retransmissions_for(key), 1u);
  EXPECT_EQ(r.retransmissions_for(key.reversed()), 0u);
}

}  // namespace
}  // namespace uncharted::net
