#include "net/reassembly.hpp"

#include <gtest/gtest.h>

namespace uncharted::net {
namespace {

TcpHeader seg(std::uint32_t seq, std::uint8_t flags = kTcpAck) {
  TcpHeader h;
  h.seq = seq;
  h.flags = flags;
  return h;
}

std::vector<std::uint8_t> bytes(std::initializer_list<std::uint8_t> list) {
  return {list};
}

TEST(StreamDirection, InOrderDelivery) {
  TcpStreamDirection dir;
  auto c1 = dir.on_segment(1, seg(100), bytes({1, 2, 3}));
  ASSERT_EQ(c1.size(), 1u);
  EXPECT_EQ(c1[0].data, bytes({1, 2, 3}));
  auto c2 = dir.on_segment(2, seg(103), bytes({4, 5}));
  ASSERT_EQ(c2.size(), 1u);
  EXPECT_EQ(c2[0].data, bytes({4, 5}));
  EXPECT_EQ(dir.delivered_bytes(), 5u);
  EXPECT_EQ(dir.retransmitted_segments(), 0u);
}

TEST(StreamDirection, SynConsumesOneSequenceNumber) {
  TcpStreamDirection dir;
  EXPECT_TRUE(dir.on_segment(0, seg(99, kTcpSyn), {}).empty());
  auto c = dir.on_segment(1, seg(100), bytes({7}));
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c[0].data, bytes({7}));
}

TEST(StreamDirection, ExactDuplicateIsRetransmission) {
  TcpStreamDirection dir;
  dir.on_segment(1, seg(100), bytes({1, 2, 3}));
  auto dup = dir.on_segment(2, seg(100), bytes({1, 2, 3}));
  EXPECT_TRUE(dup.empty());
  EXPECT_EQ(dir.retransmitted_segments(), 1u);
  EXPECT_EQ(dir.delivered_bytes(), 3u);
}

TEST(StreamDirection, PartialOverlapDeliversOnlyNewTail) {
  TcpStreamDirection dir;
  dir.on_segment(1, seg(100), bytes({1, 2, 3}));
  auto c = dir.on_segment(2, seg(101), bytes({2, 3, 4, 5}));
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c[0].data, bytes({4, 5}));
  // A partial overlap is its own stat; full duplicates stay retransmissions.
  EXPECT_EQ(dir.overlapping_segments(), 1u);
  EXPECT_EQ(dir.retransmitted_segments(), 0u);
  EXPECT_EQ(dir.delivered_bytes(), 5u);
}

TEST(StreamDirection, OverlapNeverDoubleDeliversAcrossPending) {
  TcpStreamDirection dir;
  dir.on_segment(1, seg(100), bytes({1, 2}));        // next_seq_ = 102
  dir.on_segment(2, seg(104), bytes({5, 6}));        // buffered past a hole
  // Fills the hole and overlaps the pending segment's head.
  auto c = dir.on_segment(3, seg(102), bytes({3, 4, 5}));
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c[0].data, bytes({3, 4, 5, 6}));
  EXPECT_EQ(dir.delivered_bytes(), 6u);
}

TEST(StreamDirection, OutOfOrderBufferedThenDrained) {
  TcpStreamDirection dir;
  dir.on_segment(1, seg(100), bytes({1}));
  auto gap = dir.on_segment(2, seg(103), bytes({4, 5}));
  EXPECT_TRUE(gap.empty());
  EXPECT_EQ(dir.out_of_order_segments(), 1u);
  auto c = dir.on_segment(3, seg(101), bytes({2, 3}));
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c[0].data, bytes({2, 3, 4, 5}));
  EXPECT_EQ(dir.delivered_bytes(), 5u);
}

TEST(StreamDirection, SequenceWraparound) {
  TcpStreamDirection dir;
  std::uint32_t near_max = 0xfffffffe;
  auto c1 = dir.on_segment(1, seg(near_max), bytes({1, 2, 3, 4}));
  ASSERT_EQ(c1.size(), 1u);
  auto c2 = dir.on_segment(2, seg(near_max + 4), bytes({5, 6}));  // wraps to 2
  ASSERT_EQ(c2.size(), 1u);
  EXPECT_EQ(c2[0].data, bytes({5, 6}));
}

TEST(StreamDirection, StaleBufferedSegmentDropped) {
  TcpStreamDirection dir;
  dir.on_segment(1, seg(100), bytes({1}));
  dir.on_segment(2, seg(102), bytes({3}));      // buffered
  dir.on_segment(3, seg(102), bytes({3, 4}));   // longer duplicate, replaces
  auto c = dir.on_segment(4, seg(101), bytes({2}));
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c[0].data, bytes({2, 3, 4}));
}

TEST(StreamDirection, PendingCapAbandonsHoleAndSkipsAhead) {
  ReassemblyLimits limits;
  limits.max_pending_segments = 2;
  TcpStreamDirection dir(limits);
  dir.on_segment(1, seg(100), bytes({1}));  // next_seq_ = 101
  // A hole at 101; three out-of-order segments exceed the 2-segment cap.
  EXPECT_TRUE(dir.on_segment(2, seg(105), bytes({5})).empty());
  EXPECT_TRUE(dir.on_segment(3, seg(106), bytes({6})).empty());
  auto c = dir.on_segment(4, seg(107), bytes({7}));
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c[0].data, bytes({5, 6, 7}));  // delivered past the abandoned hole
  EXPECT_EQ(dir.stats().gaps_skipped, 1u);
  EXPECT_EQ(dir.stats().lost_bytes, 4u);  // seq 101..104 never arrived
}

TEST(StreamDirection, PendingByteCapBoundsMemory) {
  ReassemblyLimits limits;
  limits.max_pending_bytes = 8;
  TcpStreamDirection dir(limits);
  dir.on_segment(1, seg(100), bytes({1}));
  EXPECT_TRUE(dir.on_segment(2, seg(110), bytes({1, 2, 3, 4, 5, 6})).empty());
  auto c = dir.on_segment(3, seg(116), bytes({7, 8, 9}));  // 9 pending bytes > 8
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c[0].data.size(), 9u);
  EXPECT_EQ(dir.stats().gaps_skipped, 1u);
  EXPECT_EQ(dir.stats().lost_bytes, 9u);  // hole 101..109
}

TEST(StreamDirection, WildSegmentBeyondWindowIsDiscarded) {
  // A corrupted sequence number lands a "segment" ~2^31 ahead of the
  // stream. It must be dropped — not buffered as a 2 GiB hole that later
  // inflates lost_bytes when the cap forces a skip-ahead.
  TcpStreamDirection dir;
  dir.on_segment(1, seg(100), bytes({1}));
  EXPECT_TRUE(dir.on_segment(2, seg(100 + (1u << 31)), bytes({9})).empty());
  EXPECT_EQ(dir.stats().wild_segments, 1u);
  EXPECT_EQ(dir.stats().out_of_order, 0u);
  // The stream continues unharmed and flush() finds nothing pending.
  auto c = dir.on_segment(3, seg(101), bytes({2}));
  ASSERT_EQ(c.size(), 1u);
  EXPECT_TRUE(dir.flush(4).empty());
  EXPECT_EQ(dir.stats().lost_bytes, 0u);
}

TEST(StreamDirection, FlushDeliversTailBehindUnfilledHole) {
  TcpStreamDirection dir;
  dir.on_segment(1, seg(100), bytes({1, 2}));
  EXPECT_TRUE(dir.on_segment(2, seg(105), bytes({6, 7})).empty());  // hole 102..104
  auto c = dir.flush(3);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c[0].data, bytes({6, 7}));
  EXPECT_EQ(dir.stats().gaps_skipped, 1u);
  EXPECT_EQ(dir.stats().lost_bytes, 3u);
  EXPECT_TRUE(dir.flush(4).empty());  // idempotent
}

TEST(StreamDirection, SequenceWrapWithPendingHole) {
  TcpStreamDirection dir;
  std::uint32_t near_max = 0xfffffffd;
  auto c1 = dir.on_segment(1, seg(near_max), bytes({1, 2}));  // next wraps to 0xffffffff
  ASSERT_EQ(c1.size(), 1u);
  // Out-of-order segment on the far side of the wrap (seq 1).
  EXPECT_TRUE(dir.on_segment(2, seg(1), bytes({4, 5})).empty());
  // The hole-filler spans the wrap: 0xffffffff..0.
  auto c2 = dir.on_segment(3, seg(near_max + 2), bytes({3, 3}));
  ASSERT_EQ(c2.size(), 1u);
  EXPECT_EQ(c2[0].data, bytes({3, 3, 4, 5}));
  EXPECT_EQ(dir.stats().lost_bytes, 0u);
}

TEST(StreamDirection, ResetDropsPendingAndReanchors) {
  TcpStreamDirection dir;
  dir.on_segment(1, seg(100), bytes({1}));
  EXPECT_TRUE(dir.on_segment(2, seg(105), bytes({9, 9})).empty());
  dir.on_reset(3);
  EXPECT_EQ(dir.stats().resets, 1u);
  EXPECT_EQ(dir.stats().aborted_with_pending, 1u);
  EXPECT_EQ(dir.stats().lost_bytes, 2u);  // the buffered bytes died with the RST
  // A reused tuple starts a fresh stream at an unrelated sequence number.
  auto c = dir.on_segment(4, seg(5000), bytes({42}));
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c[0].data, bytes({42}));
}

TEST(Reassembler, RstMidStreamResetsBothDirections) {
  std::vector<std::uint8_t> delivered;
  TcpReassembler r([&](const FlowKey&, Timestamp,
                       std::span<const std::uint8_t> data) {
    delivered.insert(delivered.end(), data.begin(), data.end());
  });

  DecodedFrame fwd;
  fwd.ip.src = Ipv4Addr::parse("10.0.0.1").value();
  fwd.ip.dst = Ipv4Addr::parse("10.1.0.2").value();
  fwd.tcp = seg(100);
  fwd.tcp.src_port = 5000;
  fwd.tcp.dst_port = 2404;
  std::uint8_t d1[] = {1, 2};
  fwd.payload = d1;
  r.add(1, fwd);

  DecodedFrame rst = fwd;
  rst.tcp = seg(102, kTcpRst | kTcpAck);
  rst.tcp.src_port = 5000;
  rst.tcp.dst_port = 2404;
  rst.payload = {};
  r.add(2, rst);
  EXPECT_EQ(r.totals().resets, 1u);

  // Data continuing after the reset re-anchors instead of being dropped.
  DecodedFrame cont = fwd;
  cont.tcp = seg(102);
  cont.tcp.src_port = 5000;
  cont.tcp.dst_port = 2404;
  std::uint8_t d2[] = {3};
  cont.payload = d2;
  r.add(3, cont);
  EXPECT_EQ(delivered, bytes({1, 2, 3}));
}

TEST(Reassembler, FlushDrainsEveryDirection) {
  std::size_t chunks = 0;
  TcpReassembler r([&](const FlowKey&, Timestamp, std::span<const std::uint8_t>) {
    ++chunks;
  });
  DecodedFrame f;
  f.ip.src = Ipv4Addr::parse("10.0.0.1").value();
  f.ip.dst = Ipv4Addr::parse("10.1.0.2").value();
  f.tcp = seg(200);
  f.tcp.src_port = 1;
  f.tcp.dst_port = 2404;
  std::uint8_t d[] = {1};
  f.payload = d;
  r.add(1, f);            // in order, delivered
  f.tcp.seq = 205;        // hole at 201..204
  r.add(2, f);
  EXPECT_EQ(chunks, 1u);
  r.flush(3);
  EXPECT_EQ(chunks, 2u);
  EXPECT_EQ(r.totals().gaps_skipped, 1u);
  EXPECT_EQ(r.totals().lost_bytes, 4u);
}

TEST(Reassembler, RoutesPerDirection) {
  std::map<std::string, std::vector<std::uint8_t>> streams;
  TcpReassembler r([&](const FlowKey& key, Timestamp,
                       std::span<const std::uint8_t> data) {
    auto& s = streams[key.str()];
    s.insert(s.end(), data.begin(), data.end());
  });

  DecodedFrame fwd;
  fwd.ip.src = Ipv4Addr::parse("10.0.0.1").value();
  fwd.ip.dst = Ipv4Addr::parse("10.1.0.2").value();
  fwd.tcp = seg(100);
  fwd.tcp.src_port = 5000;
  fwd.tcp.dst_port = 2404;
  std::uint8_t d1[] = {1, 2};
  fwd.payload = d1;
  r.add(1, fwd);

  DecodedFrame rev;
  rev.ip.src = fwd.ip.dst;
  rev.ip.dst = fwd.ip.src;
  rev.tcp = seg(500);
  rev.tcp.src_port = 2404;
  rev.tcp.dst_port = 5000;
  std::uint8_t d2[] = {9};
  rev.payload = d2;
  r.add(2, rev);

  ASSERT_EQ(streams.size(), 2u);
  EXPECT_EQ(streams["10.0.0.1:5000 -> 10.1.0.2:2404"], bytes({1, 2}));
  EXPECT_EQ(streams["10.1.0.2:2404 -> 10.0.0.1:5000"], bytes({9}));
  EXPECT_EQ(r.retransmitted_segments(), 0u);

  r.add(3, fwd);  // duplicate
  EXPECT_EQ(r.retransmitted_segments(), 1u);
  FlowKey key{fwd.ip.src, 5000, fwd.ip.dst, 2404};
  EXPECT_EQ(r.retransmissions_for(key), 1u);
  EXPECT_EQ(r.retransmissions_for(key.reversed()), 0u);
}

}  // namespace
}  // namespace uncharted::net
