#include "net/flow.hpp"

#include <gtest/gtest.h>

namespace uncharted::net {
namespace {

DecodedFrame make_frame(const char* src, std::uint16_t sport, const char* dst,
                        std::uint16_t dport, std::uint8_t flags,
                        std::span<const std::uint8_t> payload = {}) {
  DecodedFrame f;
  f.ip.src = Ipv4Addr::parse(src).value();
  f.ip.dst = Ipv4Addr::parse(dst).value();
  f.tcp.src_port = sport;
  f.tcp.dst_port = dport;
  f.tcp.flags = flags;
  f.payload = payload;
  return f;
}

TEST(FlowKey, CanonicalMergesDirections) {
  FlowKey a{Ipv4Addr::parse("10.0.0.1").value(), 5000,
            Ipv4Addr::parse("10.1.0.2").value(), 2404};
  EXPECT_EQ(a.canonical(), a.reversed().canonical());
  EXPECT_NE(a.str(), a.reversed().str());
}

TEST(FlowTable, ShortLivedNeedsSynAndFin) {
  FlowTable table;
  Timestamp t = 1'000'000;
  table.add(t, make_frame("10.0.0.1", 5000, "10.1.0.2", 2404, kTcpSyn));
  table.add(t + 1000, make_frame("10.1.0.2", 2404, "10.0.0.1", 5000, kTcpSyn | kTcpAck));
  table.add(t + 2000, make_frame("10.0.0.1", 5000, "10.1.0.2", 2404, kTcpAck));
  table.add(t + 500000, make_frame("10.0.0.1", 5000, "10.1.0.2", 2404, kTcpFin | kTcpAck));

  auto flows = table.flows();
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].lifetime(), FlowLifetime::kShortLived);
  EXPECT_NEAR(flows[0].duration_seconds(), 0.5, 0.002);
  EXPECT_TRUE(flows[0].saw_syn);
  EXPECT_TRUE(flows[0].saw_synack);
  EXPECT_FALSE(flows[0].syn_rejected_with_rst);
}

TEST(FlowTable, MidStreamFlowIsLongLived) {
  FlowTable table;
  std::uint8_t data[] = {1};
  table.add(0, make_frame("10.0.0.1", 5000, "10.1.0.2", 2404, kTcpAck | kTcpPsh, data));
  table.add(10, make_frame("10.1.0.2", 2404, "10.0.0.1", 5000, kTcpAck));
  auto flows = table.flows();
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].lifetime(), FlowLifetime::kLongLived);
  EXPECT_EQ(flows[0].bytes, 1u);
}

TEST(FlowTable, SynOnlyFlowIsLongLived) {
  // The silent-ignore pattern: SYNs never answered. No FIN/RST -> the
  // paper's definition classifies it long-lived.
  FlowTable table;
  table.add(0, make_frame("10.0.0.1", 5000, "10.1.0.2", 2404, kTcpSyn));
  table.add(1'000'000, make_frame("10.0.0.1", 5000, "10.1.0.2", 2404, kTcpSyn));
  auto flows = table.flows();
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].lifetime(), FlowLifetime::kLongLived);
  EXPECT_EQ(flows[0].packets_rev, 0u);
}

TEST(FlowTable, RstRefusedConnectionDetected) {
  FlowTable table;
  table.add(0, make_frame("10.0.0.1", 5000, "10.1.0.2", 2404, kTcpSyn));
  table.add(2000, make_frame("10.1.0.2", 2404, "10.0.0.1", 5000, kTcpRst | kTcpAck));
  auto flows = table.flows();
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].lifetime(), FlowLifetime::kShortLived);
  EXPECT_TRUE(flows[0].syn_rejected_with_rst);
  // Orientation: the SYN sender is the flow's source.
  EXPECT_EQ(flows[0].key.src_ip.str(), "10.0.0.1");
}

TEST(FlowTable, EstablishedThenRstIsNotRefused) {
  FlowTable table;
  table.add(0, make_frame("10.0.0.1", 5000, "10.1.0.2", 2404, kTcpSyn));
  table.add(1, make_frame("10.1.0.2", 2404, "10.0.0.1", 5000, kTcpSyn | kTcpAck));
  table.add(2, make_frame("10.0.0.1", 5000, "10.1.0.2", 2404, kTcpAck));
  table.add(3, make_frame("10.1.0.2", 2404, "10.0.0.1", 5000, kTcpRst));
  auto flows = table.flows();
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_FALSE(flows[0].syn_rejected_with_rst);
  EXPECT_TRUE(flows[0].saw_rst);
}

TEST(FlowTable, DistinctPortsAreDistinctFlows) {
  FlowTable table;
  for (std::uint16_t port = 5000; port < 5010; ++port) {
    table.add(port, make_frame("10.0.0.1", port, "10.1.0.2", 2404, kTcpSyn));
  }
  EXPECT_EQ(table.connection_count(), 10u);
}

TEST(FlowTable, OrientationFixedBySynAfterMidstreamStart) {
  FlowTable table;
  std::uint8_t data[] = {1, 2};
  // First observed packet flows server->client (e.g. capture started
  // mid-connection), then a reconnect SYN from the client reorients.
  table.add(0, make_frame("10.1.0.2", 2404, "10.0.0.1", 5000, kTcpAck | kTcpPsh, data));
  table.add(10, make_frame("10.0.0.1", 5000, "10.1.0.2", 2404, kTcpSyn));
  auto flows = table.flows();
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].key.src_ip.str(), "10.0.0.1");
  EXPECT_EQ(flows[0].packets_fwd, 1u);
  EXPECT_EQ(flows[0].packets_rev, 1u);
}

}  // namespace
}  // namespace uncharted::net
