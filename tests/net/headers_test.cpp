#include "net/headers.hpp"

#include <gtest/gtest.h>

namespace uncharted::net {
namespace {

TEST(Ipv4Addr, ParseAndFormat) {
  auto a = Ipv4Addr::parse("10.0.1.17");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->str(), "10.0.1.17");
  EXPECT_EQ(a->value, 0x0A000111u);
  EXPECT_FALSE(Ipv4Addr::parse("10.0.1").ok());
  EXPECT_FALSE(Ipv4Addr::parse("10.0.1.256").ok());
  EXPECT_FALSE(Ipv4Addr::parse("10.0.1.1x").ok());
  EXPECT_FALSE(Ipv4Addr::parse("not-an-ip").ok());
}

TEST(MacAddr, FromU64AndFormat) {
  auto m = MacAddr::from_u64(0x0200deadbeefULL);
  EXPECT_EQ(m.str(), "02:00:de:ad:be:ef");
}

TEST(EthernetHeader, RoundTrip) {
  EthernetHeader h;
  h.src = MacAddr::from_u64(1);
  h.dst = MacAddr::from_u64(2);
  h.ether_type = kEtherTypeIpv4;
  ByteWriter w;
  h.encode(w);
  ASSERT_EQ(w.size(), EthernetHeader::kSize);
  ByteReader r(w.view());
  auto back = EthernetHeader::decode(r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->src, h.src);
  EXPECT_EQ(back->dst, h.dst);
  EXPECT_EQ(back->ether_type, kEtherTypeIpv4);
}

TEST(InternetChecksum, KnownVector) {
  // RFC 1071 example: 00 01 f2 03 f4 f5 f6 f7 -> checksum 0x220d.
  std::uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(internet_checksum(data), 0x220d);
}

TEST(InternetChecksum, OddLength) {
  std::uint8_t data[] = {0x01, 0x02, 0x03};
  // Pads with zero: words 0102, 0300 -> sum 0402 -> ~ = 0xfbfd.
  EXPECT_EQ(internet_checksum(data), 0xfbfd);
}

Ipv4Header sample_ip() {
  Ipv4Header ip;
  ip.src = Ipv4Addr::from_octets(10, 0, 0, 1);
  ip.dst = Ipv4Addr::from_octets(10, 1, 2, 3);
  ip.total_length = Ipv4Header::kSize + TcpHeader::kSize;
  ip.identification = 777;
  return ip;
}

TEST(Ipv4Header, RoundTripWithValidChecksum) {
  Ipv4Header ip = sample_ip();
  ByteWriter w;
  ip.encode(w);
  ASSERT_EQ(w.size(), Ipv4Header::kSize);
  ByteReader r(w.view());
  auto back = Ipv4Header::decode(r);
  ASSERT_TRUE(back.ok()) << back.error().str();
  EXPECT_EQ(back->src, ip.src);
  EXPECT_EQ(back->dst, ip.dst);
  EXPECT_EQ(back->total_length, ip.total_length);
  EXPECT_EQ(back->identification, 777);
  EXPECT_EQ(back->protocol, kIpProtoTcp);
}

TEST(Ipv4Header, CorruptedChecksumRejected) {
  Ipv4Header ip = sample_ip();
  ByteWriter w;
  ip.encode(w);
  auto bytes = w.take();
  bytes[8] ^= 0xff;  // flip TTL without fixing the checksum
  ByteReader r(bytes);
  auto back = Ipv4Header::decode(r);
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.error().code, "bad-ip-checksum");
}

TEST(Ipv4Header, RejectsNonV4AndFragments) {
  Ipv4Header ip = sample_ip();
  ByteWriter w;
  ip.encode(w);
  auto bytes = w.take();
  bytes[0] = 0x65;  // version 6
  {
    ByteReader r(bytes);
    EXPECT_FALSE(Ipv4Header::decode(r).ok());
  }
  // Fragment: set MF flag; checksum must be refreshed for the test to reach
  // the fragment check, so rebuild manually.
  Ipv4Header frag = sample_ip();
  frag.flags = 0x01;  // MF
  ByteWriter w2;
  frag.encode(w2);
  ByteReader r2(w2.view());
  auto res = Ipv4Header::decode(r2);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.error().code, "fragmented");
}

TEST(TcpHeader, RoundTripAndFlags) {
  Ipv4Header ip = sample_ip();
  TcpHeader tcp;
  tcp.src_port = 49152;
  tcp.dst_port = 2404;
  tcp.seq = 0xdeadbeef;
  tcp.ack = 42;
  tcp.flags = kTcpSyn | kTcpAck;
  ByteWriter w;
  tcp.encode(w, ip, {});
  ASSERT_EQ(w.size(), TcpHeader::kSize);
  ByteReader r(w.view());
  auto back = TcpHeader::decode(r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->src_port, 49152);
  EXPECT_EQ(back->dst_port, 2404);
  EXPECT_EQ(back->seq, 0xdeadbeefu);
  EXPECT_TRUE(back->syn());
  EXPECT_TRUE(back->ack_set());
  EXPECT_FALSE(back->fin());
  EXPECT_FALSE(back->rst());
}

TEST(TcpHeader, ChecksumCoversPseudoHeaderAndPayload) {
  Ipv4Header ip = sample_ip();
  std::uint8_t payload[] = {0x68, 0x04, 0x43, 0x00, 0x00, 0x00};
  ip.total_length = static_cast<std::uint16_t>(Ipv4Header::kSize + TcpHeader::kSize +
                                               sizeof(payload));
  TcpHeader tcp;
  tcp.src_port = 1;
  tcp.dst_port = 2;
  ByteWriter w;
  tcp.encode(w, ip, payload);
  // Reconstruct the full segment and verify the checksum folds to zero.
  ByteWriter seg;
  seg.bytes(w.view());
  seg.bytes(payload);
  EXPECT_EQ(tcp_checksum(ip, seg.view()), 0);
}

TEST(TcpHeader, SkipsOptions) {
  // Hand-build a header with data offset 6 (one 4-byte option).
  ByteWriter w;
  w.u16be(10);
  w.u16be(20);
  w.u32be(100);
  w.u32be(200);
  w.u8(0x60);  // offset 6
  w.u8(kTcpAck);
  w.u16be(1024);
  w.u16be(0);
  w.u16be(0);
  w.u32be(0x01010101);  // option bytes
  ByteReader r(w.view());
  auto back = TcpHeader::decode(r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->src_port, 10);
  EXPECT_TRUE(r.empty());
}

TEST(TcpHeader, RejectsBadOffset) {
  ByteWriter w;
  w.u16be(1);
  w.u16be(2);
  w.u32be(0);
  w.u32be(0);
  w.u8(0x40);  // offset 4 < minimum 5
  w.u8(0);
  w.u16be(0);
  w.u16be(0);
  w.u16be(0);
  ByteReader r(w.view());
  EXPECT_FALSE(TcpHeader::decode(r).ok());
}

}  // namespace
}  // namespace uncharted::net
