#include "net/frame.hpp"

#include <gtest/gtest.h>

namespace uncharted::net {
namespace {

TcpSegmentSpec sample_spec(std::span<const std::uint8_t> payload) {
  TcpSegmentSpec spec;
  spec.src_mac = MacAddr::from_u64(0x020000000001);
  spec.dst_mac = MacAddr::from_u64(0x020000000002);
  spec.src_ip = Ipv4Addr::from_octets(10, 0, 0, 1);
  spec.dst_ip = Ipv4Addr::from_octets(10, 1, 0, 5);
  spec.src_port = 50000;
  spec.dst_port = 2404;
  spec.seq = 1000;
  spec.ack = 2000;
  spec.flags = kTcpPsh | kTcpAck;
  spec.payload = payload;
  return spec;
}

TEST(Frame, BuildDecodeRoundTrip) {
  std::uint8_t payload[] = {0x68, 0x04, 0x43, 0x00, 0x00, 0x00};
  auto frame = build_tcp_frame(sample_spec(payload));
  EXPECT_EQ(frame.size(),
            EthernetHeader::kSize + Ipv4Header::kSize + TcpHeader::kSize + sizeof(payload));

  auto decoded = decode_frame(frame);
  ASSERT_TRUE(decoded.ok()) << decoded.error().str();
  EXPECT_EQ(decoded->ip.src.str(), "10.0.0.1");
  EXPECT_EQ(decoded->ip.dst.str(), "10.1.0.5");
  EXPECT_EQ(decoded->tcp.src_port, 50000);
  EXPECT_EQ(decoded->tcp.dst_port, 2404);
  EXPECT_EQ(decoded->tcp.seq, 1000u);
  ASSERT_EQ(decoded->payload.size(), sizeof(payload));
  EXPECT_TRUE(std::equal(decoded->payload.begin(), decoded->payload.end(), payload));
}

TEST(Frame, EmptyPayload) {
  auto frame = build_tcp_frame(sample_spec({}));
  auto decoded = decode_frame(frame);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->payload.empty());
}

TEST(Frame, EthernetPaddingDoesNotLeakIntoPayload) {
  std::uint8_t payload[] = {1, 2, 3};
  auto frame = build_tcp_frame(sample_spec(payload));
  // Pad to the Ethernet minimum as a switch would.
  while (frame.size() < 60) frame.push_back(0x00);
  auto decoded = decode_frame(frame);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->payload.size(), 3u);
}

TEST(Frame, RejectsNonIpv4EtherType) {
  auto frame = build_tcp_frame(sample_spec({}));
  frame[12] = 0x86;  // 0x86dd = IPv6
  frame[13] = 0xdd;
  auto decoded = decode_frame(frame);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, "not-ipv4-ethertype");
}

TEST(Frame, RejectsTruncatedFrame) {
  auto frame = build_tcp_frame(sample_spec({}));
  frame.resize(frame.size() - 8);
  EXPECT_FALSE(decode_frame(frame).ok());
}

TEST(Frame, RejectsLyingIpLength) {
  std::uint8_t payload[] = {1, 2, 3, 4};
  auto frame = build_tcp_frame(sample_spec(payload));
  // Claim a total length beyond the actual frame; checksum must be patched
  // so the length check (not the checksum check) fires.
  std::size_t ip_off = EthernetHeader::kSize;
  frame[ip_off + 2] = 0x40;  // total_length = 0x40xx, way beyond
  // Zero out checksum field and recompute over the header.
  frame[ip_off + 10] = 0;
  frame[ip_off + 11] = 0;
  std::uint16_t sum = internet_checksum(
      std::span<const std::uint8_t>(frame.data() + ip_off, Ipv4Header::kSize));
  frame[ip_off + 10] = static_cast<std::uint8_t>(sum >> 8);
  frame[ip_off + 11] = static_cast<std::uint8_t>(sum & 0xff);
  auto decoded = decode_frame(frame);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, "bad-ip-length");
}

}  // namespace
}  // namespace uncharted::net
