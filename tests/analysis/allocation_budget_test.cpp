// Allocation-budget regression gate (DESIGN.md §15): the zero-copy ingest
// hot path — mmap'd frame views through decode, flow tracking, in-order
// reassembly and APDU parse into arena-backed records — must stay
// allocation-light. This binary replaces global operator new with a
// counting shim and pins an upper bound on heap allocations per 10k
// in-order packets. A copy sneaking back into the hot path (payload
// vectors, per-packet buffers, per-record heap nodes) shows up here as a
// per-packet allocation rate long before it shows up on a benchmark host.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "analysis/dataset.hpp"
#include "net/pcap.hpp"
#include "sim/capture.hpp"

namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
}  // namespace

// Counting shim. Only the allocation count is observed; behavior is
// malloc/free exactly like the defaults it replaces.
void* operator new(std::size_t n) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace uncharted::analysis {
namespace {

TEST(AllocationBudget, InOrderIngestStaysUnderBudget) {
  // A clean (in-order, fault-free) capture: the zero-copy fast paths
  // should handle every packet. Long enough that steady state dominates
  // the first-touch allocations (flow entries, parser map nodes, arena
  // chunks, vector growth).
  auto capture = sim::generate_capture(sim::CaptureConfig::y1(240.0));
  ASSERT_GE(capture.packets.size(), 20'000u);
  auto views = net::as_frame_views(capture.packets);

  CaptureDataset::Options options;
  options.mode = ParseMode::kReassembled;
  DatasetBuilder builder(options);

  // Warm-up: first half establishes flows, parsers, and container
  // capacities. Measured: second half, the steady-state hot path.
  std::size_t half = views.size() / 2;
  builder.add_packets(std::span<const net::FrameView>(views).subspan(0, half));

  std::uint64_t before = g_heap_allocs.load(std::memory_order_relaxed);
  builder.add_packets(std::span<const net::FrameView>(views).subspan(half));
  std::uint64_t spent = g_heap_allocs.load(std::memory_order_relaxed) - before;

  std::size_t measured_packets = views.size() - half;
  double per_10k = static_cast<double>(spent) * 10'000.0 /
                   static_cast<double>(measured_packets);

  std::cout << "[ MEASURED ] " << per_10k
            << " heap allocations per 10k in-order packets\n";

  // Budget: 2000 heap allocations per 10k in-order packets (0.2/packet).
  // The steady-state rate is far lower — the bound leaves headroom for
  // container regrowth landing inside the measured window — but a
  // per-packet copy (1.0+/packet) blows through it immediately.
  EXPECT_LT(per_10k, 2000.0)
      << "ingest hot path heap-allocation rate regressed: " << spent
      << " allocations over " << measured_packets << " in-order packets ("
      << per_10k << " per 10k)";

  // The records' parsed-ASDU storage must be arena-backed (not counted
  // per-record on the general heap).
  EXPECT_GT(builder.record_arena_bytes(), 0u);

  auto dataset = builder.finish();
  EXPECT_GT(dataset.stats().apdus, 0u);
}

TEST(AllocationBudget, ArenaBytesAccountedAndBounded) {
  // The arena's upstream heap footprint is what eviction governance
  // accounts; it must be visible, nonzero once records exist, and within
  // a small multiple of the live record payload (monotonic arenas waste
  // at most the unreached block tails).
  auto capture = sim::generate_capture(sim::CaptureConfig::y2(60.0));
  auto views = net::as_frame_views(capture.packets);

  CaptureDataset::Options options;
  options.mode = ParseMode::kReassembled;
  DatasetBuilder builder(options);
  builder.add_packets(views);

  std::size_t arena_bytes = builder.record_arena_bytes();
  EXPECT_GT(arena_bytes, 0u);
  // Sanity ceiling: parsed objects are a fraction of the raw capture.
  std::size_t wire_bytes = 0;
  for (const auto& v : views) wire_bytes += v.data.size();
  EXPECT_LT(arena_bytes, wire_bytes * 4);
}

}  // namespace
}  // namespace uncharted::analysis
