#include "analysis/bandwidth.hpp"

#include <gtest/gtest.h>

#include "sim/capture.hpp"
#include "tests/analysis/testlib.hpp"

namespace uncharted::analysis {
namespace {

TEST(Bandwidth, BucketsAndTotalsFromHandBuiltCapture) {
  testlib::CaptureBuilder cb;
  auto server = testlib::ip(10, 0, 0, 1);
  auto station = testlib::ip(10, 1, 0, 5);
  // Three APDUs: t=0s, t=5s, t=25s.
  cb.apdu(0, server, station, true, testlib::i_apdu(testlib::float_asdu(5, 1, 1.0f), 0, 0));
  cb.apdu(5'000'000, server, station, true,
          testlib::i_apdu(testlib::float_asdu(5, 1, 2.0f), 1, 0));
  cb.apdu(25'000'000, server, station, true,
          testlib::i_apdu(testlib::float_asdu(5, 1, 3.0f), 2, 0));

  auto report = analyze_bandwidth(cb.packets(), 10.0);
  ASSERT_TRUE(report.series.count(TapProtocol::kIec104));
  const auto& buckets = report.series.at(TapProtocol::kIec104);
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_EQ(buckets[0].packets, 2u);
  EXPECT_EQ(buckets[1].packets, 0u);
  EXPECT_EQ(buckets[2].packets, 1u);
  EXPECT_EQ(report.total_packets.at(TapProtocol::kIec104), 3u);
  EXPECT_GT(report.total_bytes.at(TapProtocol::kIec104), 3u * 60u);

  // Inter-arrival stats: gaps of 5 s and 20 s.
  EXPECT_EQ(report.iec104_interarrival_s.count(), 2u);
  EXPECT_NEAR(report.iec104_interarrival_s.mean(), 12.5, 1e-9);

  // Top talker is our single connection.
  ASSERT_FALSE(report.top_connections.empty());
  EXPECT_GT(report.top_connections[0].second, 0u);
}

TEST(Bandwidth, EmptyCapture) {
  auto report = analyze_bandwidth(std::vector<net::CapturedPacket>{});
  EXPECT_TRUE(report.series.empty());
  EXPECT_EQ(report.duration_seconds(), 0.0);
  EXPECT_EQ(report.mean_rate_bps(TapProtocol::kIec104), 0.0);
}

TEST(Bandwidth, ProtocolSplitOnSimCapture) {
  auto capture = sim::generate_capture(sim::CaptureConfig::y1(90.0));
  auto report = analyze_bandwidth(capture.packets, 10.0);
  EXPECT_GT(report.total_bytes.at(TapProtocol::kIec104), 0u);
  EXPECT_GT(report.total_bytes.at(TapProtocol::kC37118), 0u);
  EXPECT_GT(report.total_bytes.at(TapProtocol::kIccp), 0u);
  EXPECT_EQ(report.total_bytes.count(TapProtocol::kOther), 0u);
  // SCADA telemetry is low-bandwidth: well under 1 MB/s at this scale.
  EXPECT_LT(report.mean_rate_bps(TapProtocol::kIec104), 1e6);
  EXPECT_GT(report.mean_rate_bps(TapProtocol::kIec104), 1e3);
  // C37.118 rate is steady: no empty buckets after warm-up.
  const auto& pmu = report.series.at(TapProtocol::kC37118);
  for (std::size_t i = 1; i + 1 < pmu.size(); ++i) {
    EXPECT_GT(pmu[i].packets, 0u) << "bucket " << i;
  }
}

TEST(Bandwidth, TimestampJumpRecordsDiscontinuityInsteadOfFillingGap) {
  testlib::CaptureBuilder cb;
  auto server = testlib::ip(10, 0, 0, 1);
  auto station = testlib::ip(10, 1, 0, 5);
  cb.apdu(0, server, station, true, testlib::i_apdu(testlib::float_asdu(5, 1, 1.0f), 0, 0));
  // 49 years later — the epoch-vs-relative timebase confusion an attacker
  // (or a buggy tap) can feed a live monitor. Dense zero-fill would try to
  // materialize ~155 million buckets here.
  constexpr Timestamp kEpoch2019 = 1'560'556'800ULL * 1'000'000ULL;
  cb.apdu(kEpoch2019, server, station, true,
          testlib::i_apdu(testlib::float_asdu(5, 1, 2.0f), 1, 0));

  auto report = analyze_bandwidth(cb.packets(), 10.0);
  const auto& buckets = report.series.at(TapProtocol::kIec104);
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_EQ(buckets[0].t_seconds, 0.0);
  EXPECT_EQ(buckets[0].packets, 1u);
  // The far bucket still carries its true offset, so duration and mean
  // rate reflect the real (absurd) span.
  EXPECT_NEAR(buckets[1].t_seconds, 1'560'556'800.0, 10.0);
  EXPECT_EQ(buckets[1].packets, 1u);
  EXPECT_GT(report.duration_seconds(), 1e9);
}

TEST(Bandwidth, PacketBeforeCaptureStartCollapsesIntoBucketZero) {
  testlib::CaptureBuilder cb;
  auto server = testlib::ip(10, 0, 0, 1);
  auto station = testlib::ip(10, 1, 0, 5);
  cb.apdu(5'000'000, server, station, true,
          testlib::i_apdu(testlib::float_asdu(5, 1, 1.0f), 0, 0));
  // Stamped before the first-seen packet: unsigned subtraction must not
  // wrap into a ~580,000-year bucket offset.
  cb.apdu(1'000'000, server, station, true,
          testlib::i_apdu(testlib::float_asdu(5, 1, 2.0f), 1, 0));

  auto report = analyze_bandwidth(cb.packets(), 10.0);
  const auto& buckets = report.series.at(TapProtocol::kIec104);
  ASSERT_EQ(buckets.size(), 1u);
  EXPECT_EQ(buckets[0].packets, 2u);
  // The reordered inter-arrival sample is skipped, not recorded as huge.
  EXPECT_EQ(report.iec104_interarrival_s.count(), 0u);
}

TEST(Bandwidth, Names) {
  EXPECT_EQ(tap_protocol_name(TapProtocol::kIec104), "IEC 104");
  EXPECT_EQ(tap_protocol_name(TapProtocol::kIccp), "ICCP");
}

}  // namespace
}  // namespace uncharted::analysis
