#include "analysis/classify.hpp"

#include <gtest/gtest.h>

#include "tests/analysis/testlib.hpp"

namespace uncharted::analysis {
namespace {

using iec104::Apdu;
using iec104::UFunction;
using testlib::CaptureBuilder;
using testlib::float_asdu;
using testlib::i_apdu;
using testlib::ip;

const auto kC1 = testlib::ip(10, 0, 0, 1);
const auto kC2 = testlib::ip(10, 0, 0, 2);

void add_i_stream(CaptureBuilder& cb, net::Ipv4Addr server, net::Ipv4Addr station,
                  Timestamp base, int n) {
  for (int i = 0; i < n; ++i) {
    cb.apdu(base + static_cast<Timestamp>(i) * 1'000'000, server, station, true,
            i_apdu(float_asdu(1, 100, 1.0f + static_cast<float>(i)),
                   static_cast<std::uint16_t>(i), 0));
  }
}

void add_keepalives(CaptureBuilder& cb, net::Ipv4Addr server, net::Ipv4Addr station,
                    Timestamp base, int pairs, bool answered) {
  for (int i = 0; i < pairs; ++i) {
    Timestamp t = base + static_cast<Timestamp>(i) * 30'000'000;
    cb.apdu(t, server, station, false, Apdu::make_u(UFunction::kTestFrAct));
    if (answered) {
      cb.apdu(t + 20'000, server, station, true, Apdu::make_u(UFunction::kTestFrCon));
    }
  }
}

StationType classify_single(const CaptureBuilder& cb, net::Ipv4Addr station) {
  auto ds = CaptureDataset::build(cb.packets());
  for (const auto& sc : classify_stations(ds)) {
    if (sc.station == station) return sc.type;
  }
  ADD_FAILURE() << "station not classified";
  return StationType::kType1;
}

TEST(Classify, Type1PrimaryOnly) {
  CaptureBuilder cb;
  auto station = ip(10, 1, 0, 45);
  add_i_stream(cb, kC1, station, 0, 5);
  cb.apdu(10'000'000, kC1, station, false, Apdu::make_s(5));
  EXPECT_EQ(classify_single(cb, station), StationType::kType1);
}

TEST(Classify, Type2IdealWithHealthyBackup) {
  CaptureBuilder cb;
  auto station = ip(10, 1, 0, 1);
  add_i_stream(cb, kC1, station, 0, 5);
  add_keepalives(cb, kC2, station, 0, 3, /*answered=*/true);
  EXPECT_EQ(classify_single(cb, station), StationType::kType2);
}

TEST(Classify, Type3PureBackup) {
  CaptureBuilder cb;
  auto station = ip(10, 1, 0, 11);
  add_keepalives(cb, kC1, station, 0, 3, true);
  add_keepalives(cb, kC2, station, 0, 3, true);
  EXPECT_EQ(classify_single(cb, station), StationType::kType3);
}

TEST(Classify, Type4IToBothServers) {
  CaptureBuilder cb;
  auto station = ip(10, 1, 0, 26);
  add_i_stream(cb, kC1, station, 0, 5);
  add_i_stream(cb, kC2, station, 100'000'000, 5);
  EXPECT_EQ(classify_single(cb, station), StationType::kType4);
}

TEST(Classify, Type5InBandTest) {
  CaptureBuilder cb;
  auto station = ip(10, 1, 0, 44);
  add_i_stream(cb, kC1, station, 0, 3);
  // In the middle of I traffic: a test exchange on the SAME connection.
  cb.apdu(50'000'000, kC1, station, true, Apdu::make_u(UFunction::kTestFrAct));
  cb.apdu(50'020'000, kC1, station, false, Apdu::make_u(UFunction::kTestFrCon));
  add_i_stream(cb, kC1, station, 100'000'000, 2);
  EXPECT_EQ(classify_single(cb, station), StationType::kType5);
}

TEST(Classify, Type6ResetBackupWithData) {
  CaptureBuilder cb;
  auto station = ip(10, 1, 0, 5);
  add_i_stream(cb, kC2, station, 0, 5);
  add_keepalives(cb, kC1, station, 0, 4, /*answered=*/false);  // U16 only
  EXPECT_EQ(classify_single(cb, station), StationType::kType6);
}

TEST(Classify, Type7PureResetBackup) {
  CaptureBuilder cb;
  auto station = ip(10, 1, 0, 30);
  add_keepalives(cb, kC2, station, 0, 5, /*answered=*/false);
  EXPECT_EQ(classify_single(cb, station), StationType::kType7);
}

TEST(Classify, Type8Switchover) {
  CaptureBuilder cb;
  auto station = ip(10, 1, 0, 29);
  // Phase 1: healthy keep-alives on C2.
  add_keepalives(cb, kC2, station, 0, 3, true);
  // Phase 2: STARTDT + I100 + data on the same C2 connection (Fig 16).
  Timestamp t = 100'000'000;
  cb.apdu(t, kC2, station, false, Apdu::make_u(UFunction::kStartDtAct));
  cb.apdu(t + 10'000, kC2, station, true, Apdu::make_u(UFunction::kStartDtCon));
  iec104::Asdu gi;
  gi.type = iec104::TypeId::C_IC_NA_1;
  gi.cot.cause = iec104::Cause::kActivation;
  gi.common_address = 29;
  gi.objects.push_back({0, iec104::InterrogationCommand{20}, std::nullopt});
  cb.apdu(t + 20'000, kC2, station, false, i_apdu(gi));
  add_i_stream(cb, kC2, station, t + 1'000'000, 5);
  // The old primary C1 had I traffic earlier.
  add_i_stream(cb, kC1, station, 0, 5);
  EXPECT_EQ(classify_single(cb, station), StationType::kType8);
}

TEST(Classify, HistogramCountsTypes) {
  CaptureBuilder cb;
  add_i_stream(cb, kC1, ip(10, 1, 0, 45), 0, 3);           // type 1
  add_keepalives(cb, kC1, ip(10, 1, 0, 11), 0, 3, true);   // type 3
  add_keepalives(cb, kC2, ip(10, 1, 0, 12), 0, 3, true);   // type 3
  auto ds = CaptureDataset::build(cb.packets());
  auto hist = type_histogram(classify_stations(ds));
  EXPECT_EQ(hist[StationType::kType1], 1u);
  EXPECT_EQ(hist[StationType::kType3], 2u);
}

TEST(Classify, DescriptionsMatchTable6) {
  EXPECT_EQ(station_type_description(StationType::kType1),
            "No secondary connection and I-format only");
  EXPECT_EQ(station_type_description(StationType::kType4),
            "I-format only to both servers");
}

}  // namespace
}  // namespace uncharted::analysis
