#include "analysis/markov.hpp"

#include <gtest/gtest.h>

namespace uncharted::analysis {
namespace {

TEST(MarkovChain, CountsNodesAndEdges) {
  // The Fig 12 primary pattern: I36 ... I36 S I36 ...
  std::vector<std::string> tokens = {"I_36", "I_36", "S", "I_36", "I_36", "S", "I_36"};
  auto chain = MarkovChain::from_tokens(tokens);
  EXPECT_EQ(chain.node_count(), 2u);
  // Edges: I36->I36, I36->S, S->I36.
  EXPECT_EQ(chain.edge_count(), 3u);
  EXPECT_TRUE(chain.has_self_loop("I_36"));
  EXPECT_FALSE(chain.has_self_loop("S"));
}

TEST(MarkovChain, MleProbabilities) {
  std::vector<std::string> tokens = {"A", "B", "A", "B", "A", "A"};
  auto chain = MarkovChain::from_tokens(tokens);
  // From A: ->B twice, ->A once.
  EXPECT_NEAR(chain.probability("A", "B"), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(chain.probability("A", "A"), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(chain.probability("B", "A"), 1.0, 1e-12);
  EXPECT_EQ(chain.probability("B", "B"), 0.0);
  EXPECT_EQ(chain.probability("C", "A"), 0.0);
}

TEST(MarkovChain, OutgoingProbabilitiesSumToOne) {
  std::vector<std::string> tokens = {"U16", "U32", "U16", "U32", "U16", "U16", "U32"};
  auto chain = MarkovChain::from_tokens(tokens);
  for (const auto& [node, successors] : chain.counts()) {
    if (successors.empty()) continue;
    double sum = 0;
    for (const auto& [next, count] : successors) sum += chain.probability(node, next);
    EXPECT_NEAR(sum, 1.0, 1e-12) << node;
  }
}

TEST(MarkovChain, Point11ShapeForUnansweredKeepAlives) {
  // The paper's Fig 14: repeated U16 without U32 -> one node, one edge.
  std::vector<std::string> tokens(20, "U16");
  auto chain = MarkovChain::from_tokens(tokens);
  EXPECT_EQ(chain.node_count(), 1u);
  EXPECT_EQ(chain.edge_count(), 1u);
  EXPECT_EQ(chain.probability("U16", "U16"), 1.0);
}

TEST(MarkovChain, SingleTokenHasNodeButNoEdge) {
  auto chain = MarkovChain::from_tokens({"I_100"});
  EXPECT_EQ(chain.node_count(), 1u);
  EXPECT_EQ(chain.edge_count(), 0u);
}

TEST(MarkovChain, StrRendersEdges) {
  auto chain = MarkovChain::from_tokens({"A", "B"});
  EXPECT_NE(chain.str().find("A -> B : 1.000"), std::string::npos);
}

TEST(BigramModel, MleWithStartEnd) {
  BigramModel model;
  model.add_sequence({"U16", "U32"});
  model.add_sequence({"U16", "U32"});
  model.add_sequence({"U16", "U16"});
  EXPECT_NEAR(model.probability(BigramModel::kStart, "U16"), 1.0, 1e-12);
  EXPECT_NEAR(model.probability("U16", "U32"), 0.5, 1e-12);
  EXPECT_NEAR(model.probability("U16", "U16"), 0.25, 1e-12);
  EXPECT_NEAR(model.probability("U16", BigramModel::kEnd), 0.25, 1e-12);
  EXPECT_NEAR(model.probability("U32", BigramModel::kEnd), 1.0, 1e-12);
}

TEST(BigramModel, ScoresFamiliarSequencesHigher) {
  BigramModel model;
  for (int i = 0; i < 50; ++i) model.add_sequence({"I_36", "I_36", "S", "I_36"});
  double familiar = model.log2_score({"I_36", "S", "I_36"});
  double alien = model.log2_score({"U1", "U2", "I_100"});
  EXPECT_GT(familiar, alien);
}

TEST(BigramModel, DetectsUnseenTransitions) {
  BigramModel model;
  model.add_sequence({"I_36", "S"});
  EXPECT_FALSE(model.contains_unseen_transition({"I_36", "S"}));
  EXPECT_TRUE(model.contains_unseen_transition({"S", "I_36"}));
  EXPECT_TRUE(model.contains_unseen_transition({"I_100"}));
  EXPECT_FALSE(model.contains_unseen_transition({}));
}

TEST(ChainCluster, Names) {
  EXPECT_EQ(chain_cluster_name(ChainCluster::kPoint11), "point(1,1)");
  EXPECT_EQ(chain_cluster_name(ChainCluster::kSquare), "square");
  EXPECT_EQ(chain_cluster_name(ChainCluster::kEllipse), "ellipse");
}

}  // namespace
}  // namespace uncharted::analysis
