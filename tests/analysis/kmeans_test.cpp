#include "analysis/kmeans.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace uncharted::analysis {
namespace {

/// Three well-separated Gaussian blobs in 2-D.
Matrix three_blobs(std::size_t per_blob = 40, std::uint64_t seed = 5) {
  Rng rng(seed);
  Matrix points;
  const double centers[3][2] = {{0, 0}, {10, 0}, {5, 9}};
  for (const auto& c : centers) {
    for (std::size_t i = 0; i < per_blob; ++i) {
      points.push_back({c[0] + 0.5 * rng.normal(), c[1] + 0.5 * rng.normal()});
    }
  }
  return points;
}

TEST(KMeans, RecoversSeparableClusters) {
  Matrix points = three_blobs();
  auto result = kmeans(points, 3);
  EXPECT_EQ(result.k, 3);
  // Every blob must be pure: all 40 members share one label.
  for (int blob = 0; blob < 3; ++blob) {
    int label = result.assignment[static_cast<std::size_t>(blob) * 40];
    for (std::size_t i = 0; i < 40; ++i) {
      EXPECT_EQ(result.assignment[static_cast<std::size_t>(blob) * 40 + i], label);
    }
  }
  // SSE is tiny relative to the spread of the data.
  EXPECT_LT(result.sse, 120.0);
}

TEST(KMeans, SilhouetteHighForGoodClustering) {
  Matrix points = three_blobs();
  auto result = kmeans(points, 3);
  EXPECT_GT(silhouette_score(points, result.assignment, 3), 0.7);
  // Forcing everything into too few clusters scores lower.
  auto k2 = kmeans(points, 2);
  EXPECT_GT(silhouette_score(points, result.assignment, 3),
            silhouette_score(points, k2.assignment, 2));
}

TEST(KMeans, ExplainedVarianceNearOneForTightClusters) {
  Matrix points = three_blobs();
  auto result = kmeans(points, 3);
  double ev = explained_variance(points, result);
  EXPECT_GT(ev, 0.95);
  EXPECT_LE(ev, 1.0);
}

TEST(KMeans, ElbowFindsThree) {
  Matrix points = three_blobs();
  auto sweep = sweep_k(points, 1, 8);
  EXPECT_EQ(elbow_k(sweep), 3);
}

TEST(KMeans, KEqualsNDegenerate) {
  Matrix points = {{0, 0}, {1, 1}, {2, 2}};
  auto result = kmeans(points, 3);
  EXPECT_NEAR(result.sse, 0.0, 1e-12);
}

TEST(KMeans, InvalidArgumentsThrow) {
  Matrix points = {{0.0}, {1.0}};
  EXPECT_THROW(kmeans(points, 0), std::invalid_argument);
  EXPECT_THROW(kmeans(points, 3), std::invalid_argument);
  EXPECT_THROW(kmeans({}, 1), std::invalid_argument);
}

TEST(KMeans, IdenticalPointsHandled) {
  Matrix points(10, {5.0, 5.0});
  auto result = kmeans(points, 2);
  EXPECT_NEAR(result.sse, 0.0, 1e-12);
  EXPECT_EQ(silhouette_score(points, result.assignment, 2), 0.0);
}

TEST(KMeans, DeterministicForSeed) {
  Matrix points = three_blobs();
  KMeansOptions opts;
  opts.seed = 42;
  auto a = kmeans(points, 3, opts);
  auto b = kmeans(points, 3, opts);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.sse, b.sse);
}

TEST(Standardize, ZeroMeanUnitVariance) {
  Matrix points = {{10, 100}, {20, 200}, {30, 300}};
  Matrix z = standardize(points);
  for (std::size_t d = 0; d < 2; ++d) {
    double mean = 0, var = 0;
    for (const auto& p : z) mean += p[d];
    mean /= 3;
    for (const auto& p : z) var += (p[d] - mean) * (p[d] - mean);
    var /= 3;
    EXPECT_NEAR(mean, 0.0, 1e-12);
    EXPECT_NEAR(var, 1.0, 1e-9);
  }
}

TEST(Standardize, ConstantColumnPassesThrough) {
  Matrix points = {{1, 7}, {2, 7}, {3, 7}};
  Matrix z = standardize(points);
  EXPECT_EQ(z[0][1], 7.0);
  EXPECT_EQ(z[2][1], 7.0);
}

// Property sweep: silhouette peaks at the true k for synthetic blobs of
// varying separation.
class SilhouetteSweep : public ::testing::TestWithParam<int> {};

TEST_P(SilhouetteSweep, PeaksAtTrueK) {
  int true_k = GetParam();
  Rng rng(static_cast<std::uint64_t>(true_k) * 17);
  Matrix points;
  for (int c = 0; c < true_k; ++c) {
    double cx = 20.0 * c;
    for (int i = 0; i < 30; ++i) {
      points.push_back({cx + rng.normal(), rng.normal()});
    }
  }
  auto sweep = sweep_k(points, 2, true_k + 3);
  double best_sil = -2;
  int best_k = 0;
  for (const auto& e : sweep) {
    if (e.silhouette > best_sil) {
      best_sil = e.silhouette;
      best_k = e.k;
    }
  }
  EXPECT_EQ(best_k, true_k);
}

INSTANTIATE_TEST_SUITE_P(TrueKSweep, SilhouetteSweep, ::testing::Values(2, 3, 4, 5));

}  // namespace
}  // namespace uncharted::analysis
