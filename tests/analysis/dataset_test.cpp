#include "analysis/dataset.hpp"

#include <gtest/gtest.h>

#include "analysis/sessions.hpp"
#include "analysis/typeid_stats.hpp"
#include "tests/analysis/testlib.hpp"

namespace uncharted::analysis {
namespace {

using iec104::Apdu;
using iec104::UFunction;
using testlib::CaptureBuilder;
using testlib::float_asdu;
using testlib::i_apdu;
using testlib::ip;

TEST(Dataset, ExtractsApdusPerSessionAndConnection) {
  CaptureBuilder cb;
  auto server = ip(10, 0, 0, 1);
  auto station = ip(10, 1, 0, 5);
  cb.apdu(1'000'000, server, station, true, i_apdu(float_asdu(5, 100, 1.0f), 0, 0));
  cb.apdu(2'000'000, server, station, true, i_apdu(float_asdu(5, 100, 2.0f), 1, 0));
  cb.apdu(3'000'000, server, station, false, Apdu::make_s(2));

  auto ds = CaptureDataset::build(cb.packets());
  EXPECT_EQ(ds.stats().packets, 3u);
  EXPECT_EQ(ds.stats().apdus, 3u);
  EXPECT_EQ(ds.stats().apdu_failures, 0u);

  ASSERT_EQ(ds.sessions().size(), 2u);  // one per direction
  ASSERT_EQ(ds.connections().size(), 1u);
  const auto& conn = ds.connections().begin()->second;
  EXPECT_EQ(conn.size(), 3u);

  // Records are in time order.
  EXPECT_EQ(ds.records()[0].apdu.apdu.token(), "I_13");
  EXPECT_EQ(ds.records()[2].apdu.apdu.token(), "S");
}

TEST(Dataset, MultipleApdusInOneSegment) {
  CaptureBuilder cb;
  auto server = ip(10, 0, 0, 1);
  auto station = ip(10, 1, 0, 5);
  auto a = Apdu::make_u(UFunction::kTestFrAct).encode().take();
  auto b = Apdu::make_u(UFunction::kTestFrCon).encode().take();
  std::vector<std::uint8_t> payload = a;
  payload.insert(payload.end(), b.begin(), b.end());
  cb.segment(1000, server, station, false, payload);
  auto ds = CaptureDataset::build(cb.packets());
  EXPECT_EQ(ds.stats().apdus, 2u);
}

TEST(Dataset, ReassembledModeStitchesSplitApdus) {
  CaptureBuilder cb;
  auto server = ip(10, 0, 0, 1);
  auto station = ip(10, 1, 0, 5);
  auto frame = i_apdu(float_asdu(5, 100, 1.0f)).encode().take();
  std::span<const std::uint8_t> whole(frame);
  // Split mid-APDU across two segments.
  cb.segment(1000, server, station, true, whole.subspan(0, 4));
  cb.segment(2000, server, station, true, whole.subspan(4));

  CaptureDataset::Options opts;
  opts.mode = ParseMode::kReassembled;
  auto ds = CaptureDataset::build(cb.packets(), opts);
  EXPECT_EQ(ds.stats().apdus, 1u);
  EXPECT_EQ(ds.stats().apdu_failures, 0u);

  // Per-packet mode cannot parse the fragments.
  auto ds_pp = CaptureDataset::build(cb.packets());
  EXPECT_EQ(ds_pp.stats().apdus, 0u);
}

TEST(Dataset, PerPacketModeSeesRetransmittedApdusTwice) {
  // The §6.3.1 effect: a TCP retransmission duplicates tokens in per-packet
  // parsing but is deduplicated by reassembly.
  CaptureBuilder cb;
  auto server = ip(10, 0, 0, 1);
  auto station = ip(10, 1, 0, 5);
  cb.apdu(1000, server, station, false, Apdu::make_u(UFunction::kTestFrAct));
  // Identical duplicate (same seq): rebuild by re-adding the same packet.
  auto dup = cb.packets()[0];
  dup.ts += 50'000;
  auto packets = cb.packets();
  packets.push_back(dup);

  auto per_packet = CaptureDataset::build(packets);
  EXPECT_EQ(per_packet.stats().apdus, 2u);

  CaptureDataset::Options opts;
  opts.mode = ParseMode::kReassembled;
  auto reassembled = CaptureDataset::build(packets, opts);
  EXPECT_EQ(reassembled.stats().apdus, 1u);
  EXPECT_EQ(reassembled.stats().tcp_retransmissions, 1u);
}

TEST(Dataset, NonIec104PortIgnoredForParsing) {
  CaptureBuilder cb;
  auto server = ip(10, 0, 0, 1);
  auto station = ip(10, 1, 0, 5);
  cb.apdu(1000, server, station, true, i_apdu(float_asdu(5, 1, 1.0f)));
  auto ds_other_port = CaptureDataset::build(cb.packets(), [] {
    CaptureDataset::Options o;
    o.iec104_port = 9999;  // nothing matches
    return o;
  }());
  EXPECT_EQ(ds_other_port.stats().apdus, 0u);
  EXPECT_EQ(ds_other_port.stats().tcp_packets, 1u);  // still flow-tracked
}

TEST(Dataset, ComplianceTracksLegacySources) {
  CaptureBuilder cb;
  auto server = ip(10, 0, 0, 1);
  auto legacy_station = ip(10, 1, 0, 37);
  auto clean_station = ip(10, 1, 0, 5);
  for (int i = 0; i < 5; ++i) {
    cb.apdu(static_cast<Timestamp>(i) * 1000, server, legacy_station, true,
            i_apdu(float_asdu(37, 4700, 1.0f), static_cast<std::uint16_t>(i), 0),
            iec104::CodecProfile::legacy_ioa());
    cb.apdu(static_cast<Timestamp>(i) * 1000 + 10, server, clean_station, true,
            i_apdu(float_asdu(5, 100, 2.0f), static_cast<std::uint16_t>(i), 0));
  }
  auto ds = CaptureDataset::build(cb.packets());
  EXPECT_EQ(ds.stats().non_compliant_apdus, 5u);
  auto legacy = ds.compliance().at(legacy_station);
  EXPECT_EQ(legacy.non_compliant, 5u);
  EXPECT_EQ(legacy.i_apdus, 5u);
  auto clean = ds.compliance().at(clean_station);
  EXPECT_EQ(clean.non_compliant, 0u);
  EXPECT_EQ(clean.i_apdus, 5u);
}

TEST(Dataset, UndecodableFramesCounted) {
  CaptureBuilder cb;
  cb.apdu(1000, ip(10, 0, 0, 1), ip(10, 1, 0, 5), true, Apdu::make_s(0));
  auto packets = cb.packets();
  net::CapturedPacket junk;
  junk.ts = 2000;
  junk.data = {0x01, 0x02, 0x03};
  packets.push_back(junk);
  auto ds = CaptureDataset::build(packets);
  EXPECT_EQ(ds.stats().undecodable_frames, 1u);
  EXPECT_EQ(ds.stats().tcp_packets, 1u);
}

TEST(SessionFeatures, ComputedPerDirection) {
  CaptureBuilder cb;
  auto server = ip(10, 0, 0, 1);
  auto station = ip(10, 1, 0, 5);
  // Station sends 4 I APDUs 10 s apart, server sends 2 S acks.
  for (int i = 0; i < 4; ++i) {
    cb.apdu(static_cast<Timestamp>(i) * 10'000'000, server, station, true,
            i_apdu(float_asdu(5, 100, 1.0f), static_cast<std::uint16_t>(i), 0));
  }
  cb.apdu(15'000'000, server, station, false, Apdu::make_s(2));
  cb.apdu(35'000'000, server, station, false, Apdu::make_s(4));

  auto ds = CaptureDataset::build(cb.packets());
  auto features = extract_session_features(ds);
  ASSERT_EQ(features.size(), 2u);
  const SessionFeatures* from_station = nullptr;
  const SessionFeatures* from_server = nullptr;
  for (const auto& f : features) {
    if (f.values[kFeatDirection] == 0.0) from_station = &f;
    if (f.values[kFeatDirection] == 1.0) from_server = &f;
  }
  ASSERT_TRUE(from_station && from_server);
  EXPECT_EQ(from_station->values[kFeatPacketCount], 4.0);
  EXPECT_NEAR(from_station->values[kFeatMeanInterArrival], 10.0, 1e-9);
  EXPECT_EQ(from_station->values[kFeatPercentI], 1.0);
  EXPECT_EQ(from_station->values[kFeatDistinctIoas], 1.0);
  EXPECT_EQ(from_server->values[kFeatPercentS], 1.0);
  EXPECT_NEAR(from_server->values[kFeatMeanInterArrival], 20.0, 1e-9);
}

TEST(TypeIdStats, DistributionAndStations) {
  CaptureBuilder cb;
  auto server = ip(10, 0, 0, 1);
  auto s1 = ip(10, 1, 0, 5);
  auto s2 = ip(10, 1, 0, 6);
  for (int i = 0; i < 3; ++i) {
    cb.apdu(static_cast<Timestamp>(i), server, s1, true,
            i_apdu(float_asdu(5, 1, 1.0f), static_cast<std::uint16_t>(i), 0));
  }
  iec104::Asdu tf = float_asdu(6, 1, 2.0f, iec104::TypeId::M_ME_TF_1);
  tf.objects[0].time = iec104::Cp56Time2a::from_timestamp(1'000'000'000);
  cb.apdu(10, server, s2, true, i_apdu(tf));
  // A command toward s1 counts for the target station.
  iec104::Asdu sp;
  sp.type = iec104::TypeId::C_SE_NC_1;
  sp.cot.cause = iec104::Cause::kActivation;
  sp.common_address = 5;
  sp.objects.push_back({9001, iec104::SetpointFloat{10.0f, 0}, std::nullopt});
  cb.apdu(20, server, s1, false, i_apdu(sp));

  auto ds = CaptureDataset::build(cb.packets());
  auto dist = typeid_distribution(ds);
  EXPECT_EQ(dist.total, 5u);
  EXPECT_EQ(dist.counts.at(13), 3u);
  EXPECT_EQ(dist.counts.at(36), 1u);
  EXPECT_EQ(dist.counts.at(50), 1u);
  EXPECT_NEAR(dist.percentage(13), 0.6, 1e-12);

  auto stations = typeid_station_counts(ds);
  EXPECT_EQ(stations.station_count(13), 1u);
  EXPECT_EQ(stations.station_count(36), 1u);
  EXPECT_EQ(stations.station_count(50), 1u);
  EXPECT_EQ(stations.station_count(100), 0u);
}

}  // namespace
}  // namespace uncharted::analysis
