#include "analysis/background.hpp"

#include "analysis/dataset.hpp"

#include <gtest/gtest.h>

#include "sim/capture.hpp"

namespace uncharted::analysis {
namespace {

const sim::CaptureResult& capture() {
  static const sim::CaptureResult c =
      sim::generate_capture(sim::CaptureConfig::y1(120.0));
  return c;
}

TEST(Background, FindsThePmuStreams) {
  auto bg = analyze_background(capture().packets);
  ASSERT_EQ(bg.pmu_streams.size(), 3u);
  for (const auto& s : bg.pmu_streams) {
    EXPECT_EQ(s.sink.str(), "10.0.0.3");  // the data concentrator (C3)
    EXPECT_GT(s.data_frames, 1000u);      // ~10 fps over 120 s
    EXPECT_NEAR(s.measured_rate_fps, 10.0, 0.5);
    EXPECT_EQ(s.configured_rate, 10);
    EXPECT_EQ(s.channels, (std::vector<std::string>{"VA", "VB", "VC", "I1"}));
    EXPECT_FALSE(s.station_name.empty());
    EXPECT_EQ(s.bad_frames, 0u);
    // Frequency deviation is small (grid near nominal) but not exactly 0.
    EXPECT_LT(std::abs(s.mean_freq_deviation_mhz), 100.0);
  }
}

TEST(Background, FindsTheIccpLinks) {
  auto bg = analyze_background(capture().packets);
  ASSERT_EQ(bg.iccp_links.size(), 2u);
  std::uint64_t total_reports = 0;
  for (const auto& l : bg.iccp_links) {
    total_reports += l.reports;
    EXPECT_GT(l.points, l.reports);  // multiple points per report
    ASSERT_EQ(l.associations.size(), 1u);
    EXPECT_EQ(l.associations[0].rfind("TASE2-ASSOC-", 0), 0u);
    EXPECT_TRUE(l.point_names.count("AREA.FREQ"));
  }
  // 4 s + 6 s cadences over 120 s.
  EXPECT_NEAR(static_cast<double>(total_reports), 120.0 / 4 + 120.0 / 6, 8.0);
}

TEST(Background, PacketCountsMatchDatasetClassification) {
  auto bg = analyze_background(capture().packets);
  auto ds = CaptureDataset::build(capture().packets);
  EXPECT_EQ(bg.c37118_packets, ds.stats().c37118_packets);
  EXPECT_EQ(bg.iccp_packets, ds.stats().iccp_packets);
  EXPECT_GT(bg.c37118_packets, 0u);
  EXPECT_GT(bg.iccp_packets, 0u);
}

TEST(Background, DisabledFlagRemovesIt) {
  sim::CaptureConfig cfg = sim::CaptureConfig::y1(60.0);
  cfg.include_background_protocols = false;
  auto quiet = sim::generate_capture(cfg);
  auto bg = analyze_background(quiet.packets);
  EXPECT_TRUE(bg.pmu_streams.empty());
  EXPECT_TRUE(bg.iccp_links.empty());
  EXPECT_EQ(bg.c37118_packets, 0u);
}

TEST(Background, EmptyCapture) {
  auto bg = analyze_background({});
  EXPECT_TRUE(bg.pmu_streams.empty());
  EXPECT_TRUE(bg.iccp_links.empty());
}

}  // namespace
}  // namespace uncharted::analysis
