#include "analysis/physical.hpp"

#include <gtest/gtest.h>

#include "tests/analysis/testlib.hpp"

namespace uncharted::analysis {
namespace {

using testlib::CaptureBuilder;
using testlib::float_asdu;
using testlib::i_apdu;
using testlib::ip;

TimeSeries series_from(std::initializer_list<std::pair<double, double>> pts,
                       std::uint8_t type = 13) {
  TimeSeries s;
  s.type_id = type;
  for (const auto& [t, v] : pts) {
    s.points.push_back(SeriesPoint{from_seconds(t), v});
  }
  return s;
}

TEST(Physical, ExtractsSeriesFromMonitorTraffic) {
  CaptureBuilder cb;
  auto server = ip(10, 0, 0, 1);
  auto station = ip(10, 1, 0, 5);
  for (int i = 0; i < 5; ++i) {
    cb.apdu(static_cast<Timestamp>(i) * 2'000'000, server, station, true,
            i_apdu(float_asdu(5, 1001, 130.0f + static_cast<float>(i)),
                   static_cast<std::uint16_t>(i), 0));
  }
  // Command traffic must not create series.
  iec104::Asdu sp;
  sp.type = iec104::TypeId::C_SE_NC_1;
  sp.cot.cause = iec104::Cause::kActivation;
  sp.common_address = 5;
  sp.objects.push_back({9001, iec104::SetpointFloat{42.0f, 0}, std::nullopt});
  cb.apdu(11'000'000, server, station, false, i_apdu(sp));

  auto ds = CaptureDataset::build(cb.packets());
  auto series = extract_time_series(ds);
  ASSERT_EQ(series.size(), 1u);
  const auto& ts = series.begin()->second;
  EXPECT_EQ(ts.type_id, 13);
  ASSERT_EQ(ts.points.size(), 5u);
  EXPECT_EQ(ts.points.front().value, 130.0);
  EXPECT_EQ(ts.points.back().value, 134.0);
  EXPECT_EQ(ts.min_value(), 130.0);
  EXPECT_EQ(ts.max_value(), 134.0);

  auto setpoints = extract_setpoint_series(ds);
  ASSERT_EQ(setpoints.size(), 1u);
  EXPECT_EQ(setpoints.begin()->first, station);
  EXPECT_EQ(setpoints.begin()->second.points[0].value, 42.0);
}

TEST(Physical, TimeTagPreferredOverCaptureTime) {
  CaptureBuilder cb;
  auto server = ip(10, 0, 0, 1);
  auto station = ip(10, 1, 0, 5);
  iec104::Asdu tf = float_asdu(5, 1001, 1.0f, iec104::TypeId::M_ME_TF_1);
  Timestamp tagged = 1560556800ULL * 1'000'000;
  tf.objects[0].time = iec104::Cp56Time2a::from_timestamp(tagged);
  cb.apdu(999, server, station, true, i_apdu(tf));
  auto ds = CaptureDataset::build(cb.packets());
  auto series = extract_time_series(ds);
  ASSERT_EQ(series.size(), 1u);
  EXPECT_EQ(series.begin()->second.points[0].ts, tagged);
}

TEST(Physical, NormalizedVarianceRankingFlagsTheMover) {
  std::map<SeriesKey, TimeSeries> series;
  SeriesKey stable{ip(10, 1, 0, 5), 1};
  SeriesKey mover{ip(10, 1, 0, 6), 2};
  series[stable] = series_from({{0, 100}, {1, 100.1}, {2, 99.9}, {3, 100},
                                {4, 100.05}, {5, 99.95}, {6, 100}, {7, 100}});
  series[mover] = series_from({{0, 0}, {1, 0}, {2, 0}, {3, 60}, {4, 120},
                               {5, 120}, {6, 121}, {7, 119}});
  auto ranking = rank_by_normalized_variance(series, 8);
  ASSERT_EQ(ranking.size(), 2u);
  EXPECT_EQ(ranking[0].key, mover);
  EXPECT_GT(ranking[0].normalized_variance, 10 * ranking[1].normalized_variance);
}

TEST(Physical, RankingSkipsShortSeries) {
  std::map<SeriesKey, TimeSeries> series;
  series[SeriesKey{ip(10, 1, 0, 5), 1}] = series_from({{0, 1}, {1, 2}});
  EXPECT_TRUE(rank_by_normalized_variance(series, 8).empty());
}

TEST(Physical, GeneratorActivationSignatureDetected) {
  // The Fig 20 trajectory.
  TimeSeries voltage = series_from({{0, 0},    {10, 0},   {20, 40},  {30, 80},
                                    {40, 120}, {50, 130}, {60, 130}, {70, 130},
                                    {80, 130}, {90, 130}});
  TimeSeries status = series_from({{0, 0}, {75, 2}}, 31);
  TimeSeries power = series_from({{0, 0}, {40, 0}, {60, 0}, {78, 5}, {85, 25}});
  auto result = detect_generator_activation(voltage, status, power, 130.0);
  EXPECT_TRUE(result.complete);
  EXPECT_LT(result.voltage_ramp_at, result.synchronized_at);
  EXPECT_LT(result.synchronized_at, result.breaker_closed_at);
  EXPECT_LE(result.breaker_closed_at, result.power_ramp_at);
  // Trajectory walks the full legal order.
  ASSERT_EQ(result.trajectory.size(), 5u);
  EXPECT_EQ(result.trajectory.front(), SignatureState::kIdle);
  EXPECT_EQ(result.trajectory.back(), SignatureState::kPowerRamp);
}

TEST(Physical, ActivationIncompleteWithoutBreakerClose) {
  TimeSeries voltage = series_from({{0, 0}, {20, 60}, {40, 130}, {60, 130}, {80, 130}});
  TimeSeries status = series_from({{0, 0}}, 31);  // never closes
  TimeSeries power = series_from({{0, 0}, {80, 0}});
  auto result = detect_generator_activation(voltage, status, power, 130.0);
  EXPECT_FALSE(result.complete);
  EXPECT_EQ(result.trajectory.back(), SignatureState::kSynchronized);
}

TEST(Physical, ActivationRejectsPowerBeforeBreaker) {
  // Power appearing while the breaker reads open is NOT the legal
  // signature: the machine must stall before kPowerRamp.
  TimeSeries voltage = series_from({{0, 0}, {20, 130}, {40, 130}, {60, 130}});
  TimeSeries status = series_from({{0, 0}}, 31);
  TimeSeries power = series_from({{0, 0}, {30, 50}});
  auto result = detect_generator_activation(voltage, status, power, 130.0);
  EXPECT_FALSE(result.complete);
}

TEST(Physical, SetpointResponseCorrelation) {
  // Power follows setpoints with ~10 s lag.
  TimeSeries setpoints = series_from({{0, 100}, {30, 120}, {60, 90}, {90, 140},
                                      {120, 80}, {150, 130}},
                                     50);
  TimeSeries power;
  power.type_id = 13;
  for (const auto& sp : setpoints.points) {
    power.points.push_back(SeriesPoint{sp.ts + from_seconds(10.0), sp.value + 0.5});
  }
  double r = setpoint_response_correlation(setpoints, power, 10.0);
  EXPECT_GT(r, 0.95);

  // Uncorrelated response.
  TimeSeries flat = series_from({{10, 100}, {40, 100}, {70, 100}, {100, 100},
                                 {130, 100}, {160, 100}});
  EXPECT_LT(setpoint_response_correlation(setpoints, flat, 10.0), 0.5);
}

TEST(Physical, LargestStepFindsTheJump) {
  TimeSeries v = series_from({{0, 0.2}, {10, 0.3}, {20, 120.0}, {30, 120.4}});
  auto step = largest_step(v);
  ASSERT_TRUE(step.has_value());
  EXPECT_NEAR(step->delta, 119.7, 1e-9);
  EXPECT_EQ(step->at, from_seconds(20.0));
  EXPECT_FALSE(largest_step(series_from({{0, 1}})).has_value());
}

}  // namespace
}  // namespace uncharted::analysis
