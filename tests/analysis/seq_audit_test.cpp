#include "analysis/seq_audit.hpp"

#include <gtest/gtest.h>

#include "sim/capture.hpp"
#include "tests/analysis/testlib.hpp"

namespace uncharted::analysis {
namespace {

using testlib::CaptureBuilder;
using testlib::float_asdu;
using testlib::i_apdu;
using testlib::ip;

const auto kServer = testlib::ip(10, 0, 0, 1);
const auto kStation = testlib::ip(10, 1, 0, 5);

SeqAuditReport audit(const CaptureBuilder& cb) {
  auto ds = CaptureDataset::build(cb.packets());
  return audit_sequences(ds);
}

TEST(SeqAudit, CleanSequenceHasNoFindings) {
  CaptureBuilder cb;
  for (std::uint16_t i = 0; i < 10; ++i) {
    cb.apdu(i * 1000, kServer, kStation, true, i_apdu(float_asdu(5, 1, 1.0f), i, 0));
  }
  auto report = audit(cb);
  ASSERT_EQ(report.entries.size(), 1u);
  EXPECT_EQ(report.entries[0].i_apdus, 10u);
  EXPECT_EQ(report.total_gaps, 0u);
  EXPECT_EQ(report.total_duplicates, 0u);
  EXPECT_EQ(report.entries[0].resets, 0u);
}

TEST(SeqAudit, MidStreamAnchoring) {
  // A capture starting at N(S)=500 is not a gap.
  CaptureBuilder cb;
  for (std::uint16_t i = 500; i < 505; ++i) {
    cb.apdu(i * 1000, kServer, kStation, true, i_apdu(float_asdu(5, 1, 1.0f), i, 0));
  }
  auto report = audit(cb);
  EXPECT_EQ(report.total_gaps, 0u);
}

TEST(SeqAudit, GapDetected) {
  CaptureBuilder cb;
  cb.apdu(0, kServer, kStation, true, i_apdu(float_asdu(5, 1, 1.0f), 0, 0));
  cb.apdu(1000, kServer, kStation, true, i_apdu(float_asdu(5, 1, 1.0f), 1, 0));
  cb.apdu(2000, kServer, kStation, true, i_apdu(float_asdu(5, 1, 1.0f), 5, 0));  // 2-4 lost
  auto report = audit(cb);
  EXPECT_EQ(report.total_gaps, 1u);
  // After resync, the stream continues cleanly.
  CaptureBuilder cb2;
  cb2.apdu(0, kServer, kStation, true, i_apdu(float_asdu(5, 1, 1.0f), 5, 0));
  cb2.apdu(1000, kServer, kStation, true, i_apdu(float_asdu(5, 1, 1.0f), 6, 0));
  EXPECT_EQ(audit(cb2).total_gaps, 0u);
}

TEST(SeqAudit, DuplicateDetected) {
  CaptureBuilder cb;
  cb.apdu(0, kServer, kStation, true, i_apdu(float_asdu(5, 1, 1.0f), 0, 0));
  cb.apdu(1000, kServer, kStation, true, i_apdu(float_asdu(5, 1, 1.0f), 0, 0));  // repeat
  auto report = audit(cb);
  EXPECT_EQ(report.total_duplicates, 1u);
}

TEST(SeqAudit, ResetDetected) {
  CaptureBuilder cb;
  for (std::uint16_t i = 100; i < 103; ++i) {
    cb.apdu(i * 1000, kServer, kStation, true, i_apdu(float_asdu(5, 1, 1.0f), i, 0));
  }
  cb.apdu(200'000, kServer, kStation, true, i_apdu(float_asdu(5, 1, 1.0f), 0, 0));
  auto report = audit(cb);
  ASSERT_EQ(report.entries.size(), 1u);
  EXPECT_EQ(report.entries[0].resets, 1u);
}

TEST(SeqAudit, WrapAroundIsClean) {
  CaptureBuilder cb;
  cb.apdu(0, kServer, kStation, true, i_apdu(float_asdu(5, 1, 1.0f), 32766, 0));
  cb.apdu(1000, kServer, kStation, true, i_apdu(float_asdu(5, 1, 1.0f), 32767, 0));
  cb.apdu(2000, kServer, kStation, true, i_apdu(float_asdu(5, 1, 1.0f), 0, 0));  // wrap
  auto report = audit(cb);
  EXPECT_EQ(report.total_gaps, 0u);
  EXPECT_EQ(report.entries[0].resets, 0u);
}

TEST(SeqAudit, DuplicateAtWrapIsDuplicateNotReset) {
  // A retransmission straddling the 32767->0 wrap must read as a
  // duplicate (delta -1 in 15-bit arithmetic), never as a reset to the
  // top of the sequence space.
  CaptureBuilder cb;
  cb.apdu(0, kServer, kStation, true, i_apdu(float_asdu(5, 1, 1.0f), 32766, 0));
  cb.apdu(1000, kServer, kStation, true, i_apdu(float_asdu(5, 1, 1.0f), 32767, 0));
  cb.apdu(2000, kServer, kStation, true, i_apdu(float_asdu(5, 1, 1.0f), 32767, 0));
  cb.apdu(3000, kServer, kStation, true, i_apdu(float_asdu(5, 1, 1.0f), 0, 0));
  cb.apdu(4000, kServer, kStation, true, i_apdu(float_asdu(5, 1, 1.0f), 0, 0));
  auto report = audit(cb);
  EXPECT_EQ(report.total_duplicates, 2u);
  EXPECT_EQ(report.total_gaps, 0u);
  ASSERT_EQ(report.entries.size(), 1u);
  EXPECT_EQ(report.entries[0].resets, 0u);
}

TEST(SeqAudit, AckAcrossWrapIsClean) {
  CaptureBuilder cb;
  cb.apdu(0, kServer, kStation, true, i_apdu(float_asdu(5, 1, 1.0f), 32767, 0));
  // N(R)=0 acknowledges the wrapped frame: exactly the station's V(S).
  cb.apdu(1000, kServer, kStation, false, iec104::Apdu::make_s(0));
  EXPECT_EQ(audit(cb).total_ack_violations, 0u);

  // One past the wrapped V(S) is still a violation — the 15-bit compare
  // must not mistake 1 vs 0 for a 32767-frame regression.
  CaptureBuilder cb2;
  cb2.apdu(0, kServer, kStation, true, i_apdu(float_asdu(5, 1, 1.0f), 32767, 0));
  cb2.apdu(1000, kServer, kStation, false, iec104::Apdu::make_s(1));
  EXPECT_EQ(audit(cb2).total_ack_violations, 1u);
}

TEST(SeqAudit, AckViolationDetected) {
  CaptureBuilder cb;
  // Station sent N(S)=0 only; server acks N(R)=5 — beyond the window.
  cb.apdu(0, kServer, kStation, true, i_apdu(float_asdu(5, 1, 1.0f), 0, 0));
  cb.apdu(1000, kServer, kStation, false, iec104::Apdu::make_s(5));
  auto report = audit(cb);
  EXPECT_EQ(report.total_ack_violations, 1u);

  // Acking exactly what was sent is clean.
  CaptureBuilder cb2;
  cb2.apdu(0, kServer, kStation, true, i_apdu(float_asdu(5, 1, 1.0f), 0, 0));
  cb2.apdu(1000, kServer, kStation, false, iec104::Apdu::make_s(1));
  EXPECT_EQ(audit(cb2).total_ack_violations, 0u);
}

TEST(SeqAudit, ReassembledSimCaptureIsClean) {
  // Over reassembled streams (retransmissions deduplicated, per-flow
  // ordering restored) the simulator's sequences audit perfectly clean.
  auto capture = sim::generate_capture(sim::CaptureConfig::y1(120.0));
  CaptureDataset::Options opts;
  opts.mode = ParseMode::kReassembled;
  auto ds = CaptureDataset::build(capture.packets, opts);
  auto report = audit_sequences(ds);
  EXPECT_GT(report.entries.size(), 20u);
  EXPECT_EQ(report.total_gaps, 0u);
  EXPECT_EQ(report.total_duplicates, 0u);
  EXPECT_EQ(report.total_ack_violations, 0u);
}

TEST(SeqAudit, PerPacketModeSurfacesTcpRetransmissions) {
  // In per-packet mode a retransmitted segment re-delivers its APDU out of
  // order, which the audit flags — the same artifact the paper chased in
  // §6.3.1 before attributing it to the TCP layer.
  auto capture = sim::generate_capture(sim::CaptureConfig::y1(120.0));
  auto ds = CaptureDataset::build(capture.packets);
  auto report = audit_sequences(ds);
  EXPECT_GT(report.total_duplicates + report.total_gaps, 0u);
}

}  // namespace
}  // namespace uncharted::analysis
