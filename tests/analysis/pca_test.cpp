#include "analysis/pca.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace uncharted::analysis {
namespace {

TEST(Pca, RecoversDominantAxis) {
  // Points along y = 2x with small noise: first component ~ (1,2)/sqrt(5).
  Rng rng(13);
  Matrix points;
  for (int i = 0; i < 200; ++i) {
    double t = rng.normal();
    points.push_back({t + 0.01 * rng.normal(), 2 * t + 0.01 * rng.normal()});
  }
  auto result = pca(points, 2);
  ASSERT_EQ(result.components.size(), 2u);
  double cx = result.components[0][0];
  double cy = result.components[0][1];
  EXPECT_NEAR(std::fabs(cy / cx), 2.0, 0.05);
  EXPECT_GT(result.explained_by(1), 0.99);
}

TEST(Pca, EigenvaluesDescending) {
  Rng rng(17);
  Matrix points;
  for (int i = 0; i < 100; ++i) {
    points.push_back({3 * rng.normal(), rng.normal(), 0.1 * rng.normal()});
  }
  auto result = pca(points, 3);
  ASSERT_EQ(result.eigenvalues.size(), 3u);
  EXPECT_GE(result.eigenvalues[0], result.eigenvalues[1]);
  EXPECT_GE(result.eigenvalues[1], result.eigenvalues[2]);
  EXPECT_NEAR(result.eigenvalues[0], 9.0, 2.5);
  EXPECT_NEAR(result.eigenvalues[1], 1.0, 0.4);
}

TEST(Pca, ProjectionPreservesPairwiseDistancesInFullRank) {
  Rng rng(19);
  Matrix points;
  for (int i = 0; i < 50; ++i) points.push_back({rng.normal(), rng.normal()});
  auto result = pca(points, 2);
  // Full-dimensional PCA is a rigid rotation: distances preserved.
  for (std::size_t i = 0; i < 10; ++i) {
    for (std::size_t j = i + 1; j < 10; ++j) {
      double orig = std::hypot(points[i][0] - points[j][0], points[i][1] - points[j][1]);
      double proj = std::hypot(result.projected[i][0] - result.projected[j][0],
                               result.projected[i][1] - result.projected[j][1]);
      EXPECT_NEAR(orig, proj, 1e-9);
    }
  }
}

TEST(Pca, ComponentsAreOrthonormal) {
  Rng rng(23);
  Matrix points;
  for (int i = 0; i < 80; ++i) {
    points.push_back({rng.normal(), 2 * rng.normal(), rng.normal() + 0.3});
  }
  auto result = pca(points, 3);
  for (std::size_t a = 0; a < 3; ++a) {
    for (std::size_t b = 0; b < 3; ++b) {
      double dot = 0;
      for (std::size_t d = 0; d < 3; ++d) {
        dot += result.components[a][d] * result.components[b][d];
      }
      EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 1e-8);
    }
  }
}

TEST(Pca, MeanCenteredProjection) {
  Matrix points = {{10, 10}, {12, 10}, {10, 12}, {12, 12}};
  auto result = pca(points, 2);
  double sum0 = 0, sum1 = 0;
  for (const auto& p : result.projected) {
    sum0 += p[0];
    sum1 += p[1];
  }
  EXPECT_NEAR(sum0, 0.0, 1e-9);
  EXPECT_NEAR(sum1, 0.0, 1e-9);
}

TEST(Pca, DimsClampedToData) {
  Matrix points = {{1, 2}, {3, 4}, {5, 7}};
  auto result = pca(points, 10);
  EXPECT_EQ(result.projected[0].size(), 2u);
}

TEST(Pca, ThrowsOnTooFewRows) {
  EXPECT_THROW(pca({{1.0, 2.0}}, 2), std::invalid_argument);
  EXPECT_THROW(pca({}, 2), std::invalid_argument);
}

}  // namespace
}  // namespace uncharted::analysis
