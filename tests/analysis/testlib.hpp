// Shared helpers for analysis-layer tests: hand-build captures packet by
// packet with correct TCP framing, without the full simulator.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "iec104/apdu.hpp"
#include "net/frame.hpp"
#include "net/pcap.hpp"

namespace uncharted::testlib {

/// Builds a packet list for CaptureDataset::build. Sequence numbers per
/// directed flow are tracked so reassembly-mode parsing also works.
class CaptureBuilder {
 public:
  /// Appends one APDU-bearing TCP segment. `from_station` selects the
  /// direction; the station always owns port 2404.
  void apdu(Timestamp ts, net::Ipv4Addr server, net::Ipv4Addr station,
            bool from_station, const iec104::Apdu& apdu,
            const iec104::CodecProfile& profile = iec104::CodecProfile::standard(),
            std::uint16_t server_port = 49152) {
    auto bytes = apdu.encode(profile);
    segment(ts, server, station, from_station, bytes.value(), server_port);
  }

  /// Appends a raw payload segment.
  void segment(Timestamp ts, net::Ipv4Addr server, net::Ipv4Addr station,
               bool from_station, std::span<const std::uint8_t> payload,
               std::uint16_t server_port = 49152,
               std::uint8_t flags = net::kTcpPsh | net::kTcpAck) {
    net::TcpSegmentSpec spec;
    net::Ipv4Addr src = from_station ? station : server;
    net::Ipv4Addr dst = from_station ? server : station;
    spec.src_mac = net::MacAddr::from_u64(0x020000000000ULL | src.value);
    spec.dst_mac = net::MacAddr::from_u64(0x020000000000ULL | dst.value);
    spec.src_ip = src;
    spec.dst_ip = dst;
    spec.src_port = from_station ? iec104::kIec104Port : server_port;
    spec.dst_port = from_station ? server_port : iec104::kIec104Port;
    net::FlowKey key{spec.src_ip, spec.src_port, spec.dst_ip, spec.dst_port};
    std::uint32_t& seq = seqs_[key];
    spec.seq = seq;
    seq += static_cast<std::uint32_t>(payload.size());
    spec.flags = flags;
    spec.payload = payload;

    net::CapturedPacket pkt;
    pkt.ts = ts;
    pkt.data = net::build_tcp_frame(spec);
    pkt.original_length = static_cast<std::uint32_t>(pkt.data.size());
    packets_.push_back(std::move(pkt));
  }

  const std::vector<net::CapturedPacket>& packets() const { return packets_; }

 private:
  std::map<net::FlowKey, std::uint32_t> seqs_;
  std::vector<net::CapturedPacket> packets_;
};

inline net::Ipv4Addr ip(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d) {
  return net::Ipv4Addr::from_octets(a, b, c, d);
}

inline iec104::Asdu float_asdu(std::uint16_t ca, std::uint32_t ioa, float value,
                               iec104::TypeId type = iec104::TypeId::M_ME_NC_1,
                               iec104::Cause cause = iec104::Cause::kSpontaneous) {
  iec104::Asdu asdu;
  asdu.type = type;
  asdu.cot.cause = cause;
  asdu.common_address = ca;
  asdu.objects.push_back({ioa, iec104::ShortFloat{value, {}}, std::nullopt});
  return asdu;
}

inline iec104::Apdu i_apdu(const iec104::Asdu& asdu, std::uint16_t ns = 0,
                           std::uint16_t nr = 0) {
  return iec104::Apdu::make_i(ns, nr, asdu);
}

}  // namespace uncharted::testlib
