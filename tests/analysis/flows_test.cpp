#include "analysis/flows.hpp"

#include <gtest/gtest.h>

namespace uncharted::analysis {
namespace {

net::DecodedFrame frame(const char* src, std::uint16_t sport, const char* dst,
                        std::uint16_t dport, std::uint8_t flags) {
  net::DecodedFrame f;
  f.ip.src = net::Ipv4Addr::parse(src).value();
  f.ip.dst = net::Ipv4Addr::parse(dst).value();
  f.tcp.src_port = sport;
  f.tcp.dst_port = dport;
  f.tcp.flags = flags;
  return f;
}

TEST(FlowAnalysis, Table3Buckets) {
  net::FlowTable table;
  Timestamp t = 0;

  // 3 sub-second refused flows.
  for (std::uint16_t p = 5000; p < 5003; ++p) {
    table.add(t, frame("10.0.0.2", p, "10.1.0.7", 2404, net::kTcpSyn));
    table.add(t + 5'000,
              frame("10.1.0.7", 2404, "10.0.0.2", p, net::kTcpRst | net::kTcpAck));
    t += 1'000'000;
  }
  // 1 short-lived flow lasting 3 s (handshake + FIN).
  table.add(t, frame("10.0.0.2", 6000, "10.1.0.8", 2404, net::kTcpSyn));
  table.add(t + 1'000,
            frame("10.1.0.8", 2404, "10.0.0.2", 6000, net::kTcpSyn | net::kTcpAck));
  table.add(t + 3'000'000,
            frame("10.0.0.2", 6000, "10.1.0.8", 2404, net::kTcpFin | net::kTcpAck));
  // 2 long-lived (mid-stream) flows.
  table.add(t, frame("10.0.0.1", 7000, "10.1.0.9", 2404, net::kTcpAck));
  table.add(t, frame("10.0.0.1", 7001, "10.1.0.10", 2404, net::kTcpAck));

  auto out = analyze_flows(table);
  EXPECT_EQ(out.summary.total, 6u);
  EXPECT_EQ(out.summary.short_lived, 4u);
  EXPECT_EQ(out.summary.long_lived, 2u);
  EXPECT_EQ(out.summary.short_under_1s, 3u);
  EXPECT_EQ(out.summary.short_over_1s, 1u);
  EXPECT_NEAR(out.summary.short_fraction(), 4.0 / 6.0, 1e-12);
  EXPECT_NEAR(out.summary.under_1s_fraction_of_short(), 0.75, 1e-12);
  EXPECT_EQ(out.short_lived_durations.total(), 4u);
}

TEST(FlowAnalysis, RejectBehavioursAttributed) {
  net::FlowTable table;
  auto add_refused = [&](const char* station, std::uint16_t port, Timestamp t) {
    table.add(t, frame("10.0.0.2", port, station, 2404, net::kTcpSyn));
    table.add(t + 100, frame(station, 2404, "10.0.0.2", port,
                             net::kTcpRst | net::kTcpAck));
  };
  // O7 refuses 3 times, O9 once.
  add_refused("10.1.0.7", 5000, 0);
  add_refused("10.1.0.7", 5001, 10'000'000);
  add_refused("10.1.0.7", 5002, 20'000'000);
  add_refused("10.1.0.9", 5003, 30'000'000);
  // Silent ignore toward O2.
  table.add(40'000'000, frame("10.0.0.2", 5004, "10.1.0.2", 2404, net::kTcpSyn));
  // Accept-then-reset at O30.
  table.add(50'000'000, frame("10.0.0.2", 5005, "10.1.0.30", 2404, net::kTcpSyn));
  table.add(50'001'000, frame("10.1.0.30", 2404, "10.0.0.2", 5005,
                              net::kTcpSyn | net::kTcpAck));
  table.add(80'000'000, frame("10.1.0.30", 2404, "10.0.0.2", 5005, net::kTcpRst));

  auto out = analyze_flows(table);
  ASSERT_GE(out.reject_behaviours.size(), 3u);
  // Sorted by total misbehaviour: O7 first.
  EXPECT_EQ(out.reject_behaviours[0].responder.str(), "10.1.0.7");
  EXPECT_EQ(out.reject_behaviours[0].rst_refused, 3u);

  for (const auto& r : out.reject_behaviours) {
    if (r.responder.str() == "10.1.0.2") {
      EXPECT_EQ(r.syn_ignored, 1u);
    }
    if (r.responder.str() == "10.1.0.30") {
      EXPECT_EQ(r.reset_midway, 1u);
    }
  }
}

TEST(FlowAnalysis, WellBehavedFlowsProduceNoRejects) {
  net::FlowTable table;
  table.add(0, frame("10.0.0.1", 5000, "10.1.0.5", 2404, net::kTcpSyn));
  table.add(1, frame("10.1.0.5", 2404, "10.0.0.1", 5000, net::kTcpSyn | net::kTcpAck));
  table.add(2, frame("10.0.0.1", 5000, "10.1.0.5", 2404, net::kTcpAck));
  auto out = analyze_flows(table);
  EXPECT_TRUE(out.reject_behaviours.empty());
}

TEST(FlowAnalysis, EmptyTable) {
  net::FlowTable table;
  auto out = analyze_flows(table);
  EXPECT_EQ(out.summary.total, 0u);
  EXPECT_EQ(out.summary.short_fraction(), 0.0);
  EXPECT_EQ(out.summary.under_1s_fraction_of_short(), 0.0);
}

}  // namespace
}  // namespace uncharted::analysis
