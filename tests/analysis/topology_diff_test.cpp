#include "analysis/topology_diff.hpp"

#include <gtest/gtest.h>

#include "tests/analysis/testlib.hpp"

namespace uncharted::analysis {
namespace {

using testlib::CaptureBuilder;
using testlib::float_asdu;
using testlib::i_apdu;
using testlib::ip;

void add_station_with_ioas(CaptureBuilder& cb, net::Ipv4Addr station, std::uint16_t ca,
                           int ioas, Timestamp base = 0) {
  auto server = ip(10, 0, 0, 1);
  for (int i = 0; i < ioas; ++i) {
    cb.apdu(base + static_cast<Timestamp>(i) * 1000, server, station, true,
            i_apdu(float_asdu(ca, 1000 + static_cast<std::uint32_t>(i), 1.0f),
                   static_cast<std::uint16_t>(i), 0));
  }
}

TEST(TopologyDiff, DetectsAddRemoveAndIoaDrift) {
  CaptureBuilder y1, y2;
  add_station_with_ioas(y1, ip(10, 1, 0, 2), 2, 4);    // removed in Y2
  add_station_with_ioas(y1, ip(10, 1, 0, 5), 5, 6);    // unchanged
  add_station_with_ioas(y1, ip(10, 1, 0, 6), 6, 3);    // grows
  add_station_with_ioas(y1, ip(10, 1, 0, 7), 7, 8);    // shrinks

  add_station_with_ioas(y2, ip(10, 1, 0, 5), 5, 6);
  add_station_with_ioas(y2, ip(10, 1, 0, 6), 6, 7);
  add_station_with_ioas(y2, ip(10, 1, 0, 7), 7, 5);
  add_station_with_ioas(y2, ip(10, 1, 0, 50), 50, 9);  // new substation

  auto before = CaptureDataset::build(y1.packets());
  auto after = CaptureDataset::build(y2.packets());
  auto diff = diff_topology(before, after);

  EXPECT_EQ(diff.entries.size(), 5u);
  EXPECT_EQ(diff.added, 1u);
  EXPECT_EQ(diff.removed, 1u);
  EXPECT_EQ(diff.more_ioas, 1u);
  EXPECT_EQ(diff.fewer_ioas, 1u);
  EXPECT_EQ(diff.unchanged, 1u);
  EXPECT_NEAR(diff.unchanged_fraction(), 0.2, 1e-12);

  for (const auto& e : diff.entries) {
    if (e.station == ip(10, 1, 0, 50)) {
      EXPECT_EQ(e.change, StationChange::kAdded);
      EXPECT_EQ(e.ioas_before, 0u);
      EXPECT_EQ(e.ioas_after, 9u);
    }
    if (e.station == ip(10, 1, 0, 7)) {
      EXPECT_EQ(e.change, StationChange::kFewerIoas);
      EXPECT_EQ(e.ioas_before, 8u);
      EXPECT_EQ(e.ioas_after, 5u);
    }
  }
}

TEST(TopologyDiff, InventoryCountsDistinctIoasOnly) {
  CaptureBuilder cb;
  auto station = ip(10, 1, 0, 5);
  // Same IOA reported 10 times = 1 distinct IOA.
  for (int i = 0; i < 10; ++i) {
    cb.apdu(static_cast<Timestamp>(i), ip(10, 0, 0, 1), station, true,
            i_apdu(float_asdu(5, 777, 1.0f), static_cast<std::uint16_t>(i), 0));
  }
  auto ds = CaptureDataset::build(cb.packets());
  auto inv = station_inventory(ds);
  ASSERT_EQ(inv.size(), 1u);
  EXPECT_EQ(inv.at(station).ioas.size(), 1u);
  EXPECT_EQ(inv.at(station).apdus, 10u);
}

TEST(TopologyDiff, CommandIoasDoNotInflateInventory) {
  CaptureBuilder cb;
  auto station = ip(10, 1, 0, 5);
  iec104::Asdu sp;
  sp.type = iec104::TypeId::C_SE_NC_1;
  sp.cot.cause = iec104::Cause::kActivation;
  sp.common_address = 5;
  sp.objects.push_back({9001, iec104::SetpointFloat{10.0f, 0}, std::nullopt});
  cb.apdu(0, ip(10, 0, 0, 1), station, false, i_apdu(sp));
  auto ds = CaptureDataset::build(cb.packets());
  auto inv = station_inventory(ds);
  EXPECT_TRUE(inv.at(station).ioas.empty());
}

TEST(TopologyDiff, ChangeNames) {
  EXPECT_EQ(station_change_name(StationChange::kAdded), "added");
  EXPECT_EQ(station_change_name(StationChange::kUnchanged), "unchanged");
}

}  // namespace
}  // namespace uncharted::analysis
