#include "exec/pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace uncharted::exec {
namespace {

TEST(Pool, DefaultThreadsIsAtLeastOne) {
  EXPECT_GE(Pool::default_threads(), 1u);
}

TEST(Pool, RunsSubmittedTasks) {
  Pool pool(4);
  std::atomic<int> count{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 100; ++i) {
    group.run([&] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  group.wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(Pool, TaskGroupWithNullPoolRunsInline) {
  TaskGroup group(nullptr);
  int count = 0;
  group.run([&] { ++count; });
  group.run([&] { ++count; });
  group.wait();
  EXPECT_EQ(count, 2);
}

TEST(Pool, TaskGroupPropagatesFirstException) {
  Pool pool(2);
  TaskGroup group(&pool);
  for (int i = 0; i < 8; ++i) {
    group.run([i] {
      if (i == 3) throw std::runtime_error("task failed");
    });
  }
  EXPECT_THROW(group.wait(), std::runtime_error);
}

TEST(Pool, NestedFanOutDoesNotDeadlock) {
  // Inner groups wait inside worker tasks; wait() must help execute queued
  // work instead of blocking a worker on work only that worker could run.
  Pool pool(2);
  std::atomic<int> leaf{0};
  TaskGroup outer(&pool);
  for (int i = 0; i < 8; ++i) {
    outer.run([&] {
      TaskGroup inner(&pool);
      for (int j = 0; j < 8; ++j) {
        inner.run([&] { leaf.fetch_add(1, std::memory_order_relaxed); });
      }
      inner.wait();
    });
  }
  outer.wait();
  EXPECT_EQ(leaf.load(), 64);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  Pool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(&pool, hits.size(), 16, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ParallelFor, NullPoolRunsInline) {
  std::vector<int> out(257, 0);
  parallel_for(nullptr, out.size(), 64,
               [&](std::size_t begin, std::size_t end) {
                 for (std::size_t i = begin; i < end; ++i) out[i] = 1;
               });
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0),
            static_cast<int>(out.size()));
}

TEST(ParallelFor, EmptyRangeIsANoOp) {
  Pool pool(2);
  bool called = false;
  parallel_for(&pool, 0, 16, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, ChunkBoundariesDependOnlyOnSizeAndGrain) {
  // The determinism contract: the same (n, grain) must produce the same
  // chunk decomposition whether or not a pool is attached.
  std::vector<std::pair<std::size_t, std::size_t>> inline_chunks;
  parallel_for(nullptr, 100, 7, [&](std::size_t b, std::size_t e) {
    inline_chunks.emplace_back(b, e);
  });
  Pool pool(4);
  std::mutex m;
  std::vector<std::pair<std::size_t, std::size_t>> pooled_chunks;
  parallel_for(&pool, 100, 7, [&](std::size_t b, std::size_t e) {
    std::lock_guard<std::mutex> lock(m);
    pooled_chunks.emplace_back(b, e);
  });
  std::sort(pooled_chunks.begin(), pooled_chunks.end());
  std::sort(inline_chunks.begin(), inline_chunks.end());
  EXPECT_EQ(pooled_chunks, inline_chunks);
}

TEST(Pool, ManyWaitersOnOnePool) {
  // Sequential groups reusing one pool must each see all their tasks done.
  Pool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> count{0};
    TaskGroup group(&pool);
    for (int i = 0; i < 50; ++i) {
      group.run([&] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    group.wait();
    ASSERT_EQ(count.load(), 50) << "round " << round;
  }
}

}  // namespace
}  // namespace uncharted::exec
