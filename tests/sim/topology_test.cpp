#include "sim/topology.hpp"

#include <set>

#include <gtest/gtest.h>

namespace uncharted::sim {
namespace {

class PaperTopology : public ::testing::Test {
 protected:
  Topology topo = Topology::paper_topology();
};

TEST_F(PaperTopology, FleetSizesMatchFig6) {
  EXPECT_EQ(topo.servers.size(), 4u);
  EXPECT_EQ(topo.substations.size(), 27u);
  EXPECT_EQ(topo.outstations.size(), 58u);
  EXPECT_EQ(topo.outstations_in_year(false).size(), 49u);  // Y1
  EXPECT_EQ(topo.outstations_in_year(true).size(), 51u);   // Y2
}

TEST_F(PaperTopology, Table2AddsAndRemoves) {
  // Added in Y2.
  for (int id : {50, 51, 52, 53, 54, 55, 56, 57, 58}) {
    const auto* o = topo.find_outstation(id);
    ASSERT_NE(o, nullptr) << id;
    EXPECT_FALSE(o->in_y1) << id;
    EXPECT_TRUE(o->in_y2) << id;
  }
  // Removed in Y2.
  for (int id : {2, 15, 20, 22, 28, 33, 38}) {
    const auto* o = topo.find_outstation(id);
    ASSERT_NE(o, nullptr) << id;
    EXPECT_TRUE(o->in_y1) << id;
    EXPECT_FALSE(o->in_y2) << id;
  }
}

TEST_F(PaperTopology, LegacyEncodingFlagsPerSection61) {
  EXPECT_TRUE(topo.find_outstation(37)->legacy_ioa);
  EXPECT_FALSE(topo.find_outstation(37)->legacy_cot);
  for (int id : {28, 53, 58}) {
    EXPECT_TRUE(topo.find_outstation(id)->legacy_cot) << id;
    EXPECT_FALSE(topo.find_outstation(id)->legacy_ioa) << id;
  }
  // Everyone else speaks the standard.
  int legacy = 0;
  for (const auto& o : topo.outstations) {
    if (o.legacy_cot || o.legacy_ioa) ++legacy;
  }
  EXPECT_EQ(legacy, 4);
}

TEST_F(PaperTopology, O30TimerMisconfiguration) {
  const auto* o30 = topo.find_outstation(30);
  ASSERT_TRUE(o30->secondary_t3_s.has_value());
  EXPECT_DOUBLE_EQ(*o30->secondary_t3_s, 430.0);
  // No one else has the override.
  for (const auto& o : topo.outstations) {
    if (o.id != 30) {
      EXPECT_FALSE(o.secondary_t3_s.has_value()) << o.id;
    }
  }
}

TEST_F(PaperTopology, S10HasFourteenRtus) {
  int count = 0;
  for (const auto& o : topo.outstations) {
    if (o.substation == 10) ++count;
  }
  EXPECT_EQ(count, 14);
}

TEST_F(PaperTopology, FourteenOutstationsUnchangedAcrossYears) {
  int unchanged = 0;
  for (const auto& o : topo.outstations) {
    if (o.in_y1 && o.in_y2 && o.ioa_count_y1 == o.ioa_count_y2) ++unchanged;
  }
  EXPECT_EQ(unchanged, 14);  // the paper's "14 outstations out of 58 (25%)"
}

TEST_F(PaperTopology, ResetBackupRoster) {
  // The (1,1) Markov point names ten connections; these outstations carry
  // misbehaving backup channels.
  std::set<int> misbehaving;
  for (const auto& o : topo.outstations) {
    if (o.reject_mode == BackupRejectMode::kRstReject ||
        o.reject_mode == BackupRejectMode::kAcceptThenReset) {
      misbehaving.insert(o.id);
    }
  }
  EXPECT_EQ(misbehaving, (std::set<int>{5, 6, 7, 8, 9, 15, 24, 28, 30, 35}));
}

TEST_F(PaperTopology, SilentIgnoreOnlyOnY1Departures) {
  for (const auto& o : topo.outstations) {
    if (o.reject_mode == BackupRejectMode::kSilentIgnore) {
      EXPECT_TRUE(o.in_y1 && !o.in_y2) << o.id;
    }
  }
}

TEST_F(PaperTopology, ServerAssignments) {
  const auto* o5 = topo.find_outstation(5);
  EXPECT_EQ(topo.primary_server(*o5).name, "C1");
  EXPECT_EQ(topo.backup_server(*o5).name, "C2");
  const auto* o10 = topo.find_outstation(10);
  EXPECT_EQ(topo.primary_server(*o10).name, "C3");
  EXPECT_EQ(topo.backup_server(*o10).name, "C4");
}

TEST_F(PaperTopology, UniqueIpsAndIds) {
  std::set<std::uint32_t> ips;
  std::set<int> ids;
  for (const auto& o : topo.outstations) {
    EXPECT_TRUE(ips.insert(o.ip.value).second) << o.name();
    EXPECT_TRUE(ids.insert(o.id).second) << o.name();
  }
  for (const auto& s : topo.servers) {
    EXPECT_TRUE(ips.insert(s.ip.value).second) << s.name;
  }
  EXPECT_EQ(ids.size(), 58u);
}

TEST_F(PaperTopology, AuxiliarySubstationsHaveNoGenerator) {
  EXPECT_FALSE(topo.substations[1].has_generator);  // S2
  int aux = 0;
  for (const auto& s : topo.substations) {
    if (!s.has_generator) ++aux;
  }
  EXPECT_EQ(aux, 3);  // "a few" auxiliary substations
}

TEST_F(PaperTopology, BackupRtuShareMatchesFig17) {
  // Pure backup RTUs (types 3 and 7) should be roughly a third of the
  // fleet, with type 7 about a quarter of the backups.
  int type3 = 0, type7 = 0;
  for (const auto& o : topo.outstations) {
    if (o.type == OutstationType::kType3_BackupOnly) ++type3;
    if (o.type == OutstationType::kType7_ResetBackup) ++type7;
  }
  double backup_share = static_cast<double>(type3 + type7) / 58.0;
  EXPECT_NEAR(backup_share, 0.45, 0.12);
  double type7_share = static_cast<double>(type7) / (type3 + type7);
  EXPECT_NEAR(type7_share, 0.25, 0.08);
}

}  // namespace
}  // namespace uncharted::sim
