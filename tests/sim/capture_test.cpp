#include "sim/capture.hpp"

#include <filesystem>
#include <set>

#include <gtest/gtest.h>

#include "analysis/dataset.hpp"
#include "net/frame.hpp"

namespace uncharted::sim {
namespace {

// One shared short capture keeps the suite fast.
const CaptureResult& y1_capture() {
  static const CaptureResult capture = [] {
    CaptureConfig config = CaptureConfig::y1(240.0);
    return generate_capture(config);
  }();
  return capture;
}

TEST(Capture, ProducesDecodableTimeOrderedFrames) {
  const auto& cap = y1_capture();
  ASSERT_GT(cap.packets.size(), 1000u);
  Timestamp prev = 0;
  for (const auto& pkt : cap.packets) {
    EXPECT_GE(pkt.ts, prev);
    prev = pkt.ts;
    auto frame = net::decode_frame(pkt.data);
    ASSERT_TRUE(frame.ok()) << frame.error().str();
  }
  // Capture window respected.
  EXPECT_GE(cap.packets.front().ts, cap.truth.start_ts);
  EXPECT_LT(cap.packets.back().ts, cap.truth.start_ts + from_seconds(240.0));
}

TEST(Capture, DeterministicForSameSeed) {
  CaptureConfig config = CaptureConfig::y1(60.0);
  auto a = generate_capture(config);
  auto b = generate_capture(config);
  ASSERT_EQ(a.packets.size(), b.packets.size());
  for (std::size_t i = 0; i < a.packets.size(); ++i) {
    ASSERT_EQ(a.packets[i].ts, b.packets[i].ts) << i;
    ASSERT_EQ(a.packets[i].data, b.packets[i].data) << i;
  }
}

TEST(Capture, DifferentSeedsDiffer) {
  CaptureConfig a = CaptureConfig::y1(60.0);
  CaptureConfig b = a;
  b.seed = 999;
  EXPECT_NE(generate_capture(a).packets.size(), generate_capture(b).packets.size());
}

TEST(Capture, GroundTruthListsY1Fleet) {
  const auto& truth = y1_capture().truth;
  EXPECT_FALSE(truth.year2);
  EXPECT_EQ(truth.outstation_ids.size(), 49u);
  EXPECT_FALSE(truth.signals.empty());
  EXPECT_GT(truth.load_loss_at_s, 0.0);
  EXPECT_GT(truth.generator_online_at_s, truth.load_loss_at_s);
  EXPECT_EQ(truth.generator_online_outstation, 31);
}

TEST(Capture, ContainsNonCompliantLegacyTraffic) {
  const auto& cap = y1_capture();
  auto ds = analysis::CaptureDataset::build(cap.packets);
  EXPECT_GT(ds.stats().non_compliant_apdus, 0u);
  // O37 (2-octet IOA) and O28 (1-octet COT) are the Y1 legacy devices.
  const auto* o37 = cap.topology.find_outstation(37);
  const auto* o28 = cap.topology.find_outstation(28);
  auto it37 = ds.compliance().find(o37->ip);
  ASSERT_NE(it37, ds.compliance().end());
  EXPECT_EQ(it37->second.non_compliant, it37->second.i_apdus);  // 100% invalid
  EXPECT_EQ(it37->second.profile, iec104::CodecProfile::legacy_ioa());
  auto it28 = ds.compliance().find(o28->ip);
  ASSERT_NE(it28, ds.compliance().end());
  EXPECT_EQ(it28->second.profile, iec104::CodecProfile::legacy_cot());
}

TEST(Capture, ParseCleanlyEndToEnd) {
  auto ds = analysis::CaptureDataset::build(y1_capture().packets);
  EXPECT_EQ(ds.stats().apdu_failures, 0u);
  EXPECT_GT(ds.stats().apdus, 1000u);
  EXPECT_EQ(ds.stats().undecodable_frames, 0u);
}

TEST(Capture, Y2FleetDiffers) {
  CaptureConfig config = CaptureConfig::y2(120.0);
  auto cap = generate_capture(config);
  EXPECT_EQ(cap.truth.outstation_ids.size(), 51u);
  std::set<int> ids(cap.truth.outstation_ids.begin(), cap.truth.outstation_ids.end());
  EXPECT_FALSE(ids.count(2));
  EXPECT_FALSE(ids.count(28));
  EXPECT_TRUE(ids.count(53));
  EXPECT_TRUE(ids.count(58));
}

TEST(Capture, PcapRoundTripPreservesEverything) {
  const auto& cap = y1_capture();
  std::string path =
      (std::filesystem::temp_directory_path() / "uncharted_capture_rt.pcap").string();
  ASSERT_TRUE(write_capture_pcap(cap, path).ok());
  auto packets = net::PcapReader::read_file(path);
  ASSERT_TRUE(packets.ok());
  ASSERT_EQ(packets->size(), cap.packets.size());
  for (std::size_t i = 0; i < packets->size(); i += 97) {
    EXPECT_EQ((*packets)[i].ts, cap.packets[i].ts);
    EXPECT_EQ((*packets)[i].data, cap.packets[i].data);
  }
  std::filesystem::remove(path);
}

TEST(Capture, ContainsRefusedAndKeepAliveTraffic) {
  auto ds = analysis::CaptureDataset::build(y1_capture().packets);
  const auto& flows = ds.flow_table().flows();
  std::size_t refused = 0;
  for (const auto& f : flows) {
    if (f.syn_rejected_with_rst) ++refused;
  }
  EXPECT_GT(refused, 100u);  // the Table 3 churn

  // And U16 keep-alives flow on secondary connections.
  std::size_t u16 = 0;
  for (const auto& rec : ds.records()) {
    if (rec.apdu.apdu.token() == "U16") ++u16;
  }
  EXPECT_GT(u16, 50u);
}

TEST(Capture, ShorterDurationIsProportionallySmaller) {
  auto small = generate_capture(CaptureConfig::y1(60.0));
  EXPECT_LT(small.packets.size(), y1_capture().packets.size());
}

}  // namespace
}  // namespace uncharted::sim
