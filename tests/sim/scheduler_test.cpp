#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

namespace uncharted::sim {
namespace {

TEST(Scheduler, RunsInTimeOrder) {
  EventScheduler sched;
  std::vector<int> order;
  sched.schedule_at(30, [&](Timestamp) { order.push_back(3); });
  sched.schedule_at(10, [&](Timestamp) { order.push_back(1); });
  sched.schedule_at(20, [&](Timestamp) { order.push_back(2); });
  sched.run_until(100);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Scheduler, TiesBreakByInsertionOrder) {
  EventScheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sched.schedule_at(50, [&order, i](Timestamp) { order.push_back(i); });
  }
  sched.run_until(100);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, HorizonIsInclusive) {
  EventScheduler sched;
  int fired = 0;
  sched.schedule_at(100, [&](Timestamp) { ++fired; });
  sched.schedule_at(101, [&](Timestamp) { ++fired; });
  sched.run_until(100);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(sched.empty());
  EXPECT_EQ(sched.next_time(), 101u);
}

TEST(Scheduler, CallbacksCanScheduleMore) {
  EventScheduler sched;
  int chain = 0;
  std::function<void(Timestamp)> self = [&](Timestamp ts) {
    if (++chain < 10) sched.schedule_at(ts + 5, self);
  };
  sched.schedule_at(0, self);
  sched.run_until(1000);
  EXPECT_EQ(chain, 10);
  EXPECT_TRUE(sched.empty());
}

TEST(Scheduler, ScheduleAfterAddsDelay) {
  EventScheduler sched;
  Timestamp fired_at = 0;
  sched.schedule_after(1000, 500, [&](Timestamp ts) { fired_at = ts; });
  sched.run_until(2000);
  EXPECT_EQ(fired_at, 1500u);
}

}  // namespace
}  // namespace uncharted::sim
