#include "sim/tcp.hpp"

#include <gtest/gtest.h>

#include "net/flow.hpp"
#include "net/reassembly.hpp"

namespace uncharted::sim {
namespace {

struct Harness {
  std::vector<std::pair<Timestamp, std::vector<std::uint8_t>>> frames;
  Rng rng{123};

  SimTcpConnection connect() {
    Endpoint client = Endpoint::make(net::Ipv4Addr::from_octets(10, 0, 0, 1), 50000);
    Endpoint server = Endpoint::make(net::Ipv4Addr::from_octets(10, 1, 0, 5), 2404);
    return SimTcpConnection(
        client, server,
        [this](Timestamp ts, std::vector<std::uint8_t> f) {
          frames.emplace_back(ts, std::move(f));
        },
        &rng);
  }

  net::FlowTable flow_table() const {
    net::FlowTable table;
    for (const auto& [ts, data] : frames) {
      auto decoded = net::decode_frame(data);
      EXPECT_TRUE(decoded.ok()) << decoded.error().str();
      if (decoded) table.add(ts, decoded.value());
    }
    return table;
  }
};

TEST(SimTcp, HandshakeProducesValidShortFlowSkeleton) {
  Harness h;
  auto conn = h.connect();
  Timestamp t = conn.open(1'000'000);
  EXPECT_GT(t, 1'000'000u);
  conn.close_fin(t + 1000, true);
  ASSERT_EQ(h.frames.size(), 6u);  // SYN, SYNACK, ACK, FIN, FIN, ACK

  auto flows = h.flow_table().flows();
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].lifetime(), net::FlowLifetime::kShortLived);
  EXPECT_TRUE(flows[0].saw_syn);
  EXPECT_TRUE(flows[0].saw_synack);
  EXPECT_TRUE(flows[0].saw_fin);
}

TEST(SimTcp, RefusedOpenIsSubSecondRstFlow) {
  Harness h;
  auto conn = h.connect();
  conn.open_refused(0);
  ASSERT_EQ(h.frames.size(), 2u);
  auto flows = h.flow_table().flows();
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_TRUE(flows[0].syn_rejected_with_rst);
  EXPECT_LT(flows[0].duration_seconds(), 1.0);
}

TEST(SimTcp, IgnoredOpenRetransmitsSameSeq) {
  Harness h;
  auto conn = h.connect();
  conn.open_ignored(0, 2);
  ASSERT_EQ(h.frames.size(), 3u);
  std::uint32_t seq0 = net::decode_frame(h.frames[0].second)->tcp.seq;
  for (const auto& [ts, data] : h.frames) {
    auto f = net::decode_frame(data);
    EXPECT_TRUE(f->tcp.syn());
    EXPECT_EQ(f->tcp.seq, seq0);
  }
  auto flows = h.flow_table().flows();
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].lifetime(), net::FlowLifetime::kLongLived);
}

TEST(SimTcp, PayloadBytesSurviveReassembly) {
  Harness h;
  auto conn = h.connect();
  Timestamp t = conn.open(0);
  std::vector<std::uint8_t> a = {0x68, 0x04, 0x43, 0x00, 0x00, 0x00};
  std::vector<std::uint8_t> b = {0x68, 0x04, 0x83, 0x00, 0x00, 0x00};
  t = conn.send(t + 1000, true, a);
  t = conn.send(t + 1000, false, b);
  t = conn.send(t + 1000, true, a);

  std::map<std::string, std::vector<std::uint8_t>> streams;
  net::TcpReassembler reasm([&](const net::FlowKey& key, Timestamp,
                                std::span<const std::uint8_t> data) {
    auto& s = streams[key.str()];
    s.insert(s.end(), data.begin(), data.end());
  });
  for (const auto& [ts, data] : h.frames) {
    auto f = net::decode_frame(data);
    reasm.add(ts, f.value());
  }
  ASSERT_EQ(streams.size(), 2u);
  std::vector<std::uint8_t> fwd_expect = a;
  fwd_expect.insert(fwd_expect.end(), a.begin(), a.end());
  EXPECT_EQ(streams["10.0.0.1:50000 -> 10.1.0.5:2404"], fwd_expect);
  EXPECT_EQ(streams["10.1.0.5:2404 -> 10.0.0.1:50000"], b);
  EXPECT_EQ(reasm.retransmitted_segments(), 0u);
}

TEST(SimTcp, RetransmissionInjectionVisibleToReassembler) {
  Harness h;
  auto conn = h.connect();
  conn.set_retransmit_probability(1.0);  // every data segment duplicated
  Timestamp t = conn.open(0);
  std::vector<std::uint8_t> payload = {1, 2, 3};
  conn.send(t + 1000, true, payload);

  net::TcpReassembler reasm(
      [](const net::FlowKey&, Timestamp, std::span<const std::uint8_t>) {});
  // Frames may be out of time order (dup is timestamped later); sort first.
  std::sort(h.frames.begin(), h.frames.end(),
            [](const auto& x, const auto& y) { return x.first < y.first; });
  for (const auto& [ts, data] : h.frames) {
    reasm.add(ts, net::decode_frame(data).value());
  }
  EXPECT_EQ(reasm.retransmitted_segments(), 1u);
}

TEST(SimTcp, ChecksumsAreValidOnEveryFrame) {
  Harness h;
  auto conn = h.connect();
  Timestamp t = conn.open(0);
  std::vector<std::uint8_t> payload(100, 0xab);
  conn.send(t + 5, true, payload);
  conn.close_rst(t + 10, false);
  for (const auto& [ts, data] : h.frames) {
    auto f = net::decode_frame(data);
    ASSERT_TRUE(f.ok()) << f.error().str();  // decode verifies IP checksum
    // Verify the TCP checksum folds to zero over the segment.
    std::size_t ip_off = net::EthernetHeader::kSize;
    std::size_t tcp_off = ip_off + net::Ipv4Header::kSize;
    std::span<const std::uint8_t> segment(data.data() + tcp_off, data.size() - tcp_off);
    EXPECT_EQ(net::tcp_checksum(f->ip, segment), 0);
  }
}

}  // namespace
}  // namespace uncharted::sim
