#include "sim/signals.hpp"

#include <set>

#include <gtest/gtest.h>

namespace uncharted::sim {
namespace {

class Signals : public ::testing::Test {
 protected:
  Topology topo = Topology::paper_topology();

  const OutstationSpec& station(int id) { return *topo.find_outstation(id); }
};

TEST_F(Signals, CloudSizeMatchesConfiguredIoaCount) {
  // Fig 6's clouds: the signal map must produce exactly the configured
  // number of IOAs for every reporting outstation, in both years.
  for (const auto& os : topo.outstations) {
    for (bool year2 : {false, true}) {
      if (!(year2 ? os.in_y2 : os.in_y1)) continue;
      auto signals = build_signals(os, year2);
      if (os.type == OutstationType::kType3_BackupOnly ||
          os.type == OutstationType::kType7_ResetBackup) {
        EXPECT_TRUE(signals.empty()) << os.name();
      } else {
        EXPECT_EQ(static_cast<int>(signals.size()), os.ioa_count(year2))
            << os.name() << " y2=" << year2;
      }
    }
  }
}

TEST_F(Signals, IoasAreUniquePerStation) {
  for (const auto& os : topo.outstations) {
    auto signals = build_signals(os, false);
    std::set<std::uint32_t> ioas;
    for (const auto& s : signals) {
      EXPECT_TRUE(ioas.insert(s.ioa).second) << os.name() << " ioa " << s.ioa;
    }
  }
}

TEST_F(Signals, DeterministicPerStationAndYear) {
  auto a = build_signals(station(10), false);
  auto b = build_signals(station(10), false);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ioa, b[i].ioa);
    EXPECT_EQ(a[i].type_id, b[i].type_id);
    EXPECT_EQ(a[i].period_s, b[i].period_s);
  }
}

TEST_F(Signals, Type5StationIsFullySpontaneous) {
  auto signals = build_signals(station(44), false);
  ASSERT_FALSE(signals.empty());
  // Thresholds are 60x the fleet defaults (symbol-dependent scale); even
  // the smallest (frequency) sits far above its noise floor.
  for (const auto& s : signals) {
    EXPECT_EQ(s.period_s, 0.0) << "ioa " << s.ioa;
    EXPECT_GT(s.threshold, 0.03) << "stale-data thresholds must be large";
  }
}

TEST_F(Signals, I36StationsCarryTimeTaggedFloats) {
  auto signals = build_signals(station(1), false);
  int i36 = 0, i13 = 0;
  for (const auto& s : signals) {
    if (s.type_id == 36) {
      ++i36;
      EXPECT_EQ(s.period_s, 0.0);  // spontaneous
    }
    if (s.type_id == 13) ++i13;
  }
  EXPECT_GT(i36, 0);
  EXPECT_GT(i36, i13 / 2);  // I36-heavy station
}

TEST_F(Signals, TableEightSingletons) {
  // O37 is the only I9 station, O34 the only I5, O43 the only I7.
  for (const auto& os : topo.outstations) {
    auto signals = build_signals(os, false);
    for (const auto& s : signals) {
      if (s.type_id == 9) {
        EXPECT_EQ(os.id, 37);
      }
      if (s.type_id == 5) {
        EXPECT_EQ(os.id, 34);
      }
      if (s.type_id == 7) {
        EXPECT_EQ(os.id, 43);
      }
    }
  }
}

TEST_F(Signals, StationSetSizesMatchTable8) {
  int i36 = 0, i13 = 0, i3 = 0, i31 = 0, i1 = 0, sync = 0, eoi = 0;
  for (int id = 1; id <= 58; ++id) {
    if (station_reports_i36(id)) ++i36;
    if (station_reports_i13(id)) ++i13;
    if (station_reports_i3(id)) ++i3;
    if (station_reports_i31(id)) ++i31;
    if (station_reports_i1(id)) ++i1;
    if (station_gets_clock_sync(id)) ++sync;
    if (station_sends_end_of_init(id)) ++eoi;
  }
  EXPECT_EQ(i36, 13);  // Table 8: I36 from 13 stations
  EXPECT_EQ(i13, 20);  // I13 from 20
  EXPECT_EQ(i3, 6);
  EXPECT_EQ(i31, 4);
  EXPECT_EQ(i1, 3);
  EXPECT_EQ(sync, 3);  // I103 targets
  EXPECT_EQ(eoi, 2);   // I70 senders
}

TEST_F(Signals, StatusSignalsPresentWhereExpected) {
  auto signals = build_signals(station(31), false);
  bool has_i31 = false, has_i30 = false;
  for (const auto& s : signals) {
    if (s.type_id == 31) has_i31 = true;
    if (s.type_id == 30) has_i30 = true;
  }
  EXPECT_TRUE(has_i31);  // breaker status with time tag
  EXPECT_TRUE(has_i30);  // the singleton time-tagged single point
}

}  // namespace
}  // namespace uncharted::sim
