#include "iec101/ft12.hpp"

#include <gtest/gtest.h>

#include "iec104/parser.hpp"

namespace uncharted::iec101 {
namespace {

iec104::Asdu serial_asdu() {
  iec104::Asdu asdu;
  asdu.type = iec104::TypeId::M_ME_NC_1;
  asdu.cot.cause = iec104::Cause::kSpontaneous;
  asdu.common_address = 37;  // 1-octet CA on serial
  asdu.objects.push_back({4701, iec104::ShortFloat{59.98f, {}}, std::nullopt});
  return asdu;
}

TEST(LinkControl, PrimaryBitsRoundTrip) {
  LinkControl c;
  c.prm = true;
  c.fcb = true;
  c.fcv = true;
  c.function = static_cast<std::uint8_t>(PrimaryFunction::kUserDataConfirmed);
  EXPECT_EQ(c.encode(), 0x73);
  EXPECT_EQ(LinkControl::decode(0x73), c);
}

TEST(LinkControl, SecondaryBitsRoundTrip) {
  LinkControl c;
  c.prm = false;
  c.acd = true;
  c.dfc = false;
  c.function = static_cast<std::uint8_t>(SecondaryFunction::kUserData);
  std::uint8_t wire = c.encode();
  EXPECT_EQ(wire, 0x28);
  EXPECT_EQ(LinkControl::decode(wire), c);
}

TEST(Ft12, SingleCharFrame) {
  auto bytes = Ft12Frame::single_char().encode();
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 0xe5);
  ByteReader r(bytes);
  auto back = decode_ft12(r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->kind, Ft12Frame::Kind::kSingleChar);
}

TEST(Ft12, FixedFrameRoundTrip) {
  LinkControl c;
  c.prm = true;
  c.function = static_cast<std::uint8_t>(PrimaryFunction::kRequestStatus);
  auto bytes = Ft12Frame::fixed(c, 12).encode();
  ASSERT_EQ(bytes.size(), 5u);
  EXPECT_EQ(bytes[0], 0x10);
  EXPECT_EQ(bytes[4], 0x16);
  ByteReader r(bytes);
  auto back = decode_ft12(r);
  ASSERT_TRUE(back.ok()) << back.error().str();
  EXPECT_EQ(back->kind, Ft12Frame::Kind::kFixed);
  EXPECT_EQ(back->control, c);
  EXPECT_EQ(back->address, 12);
}

TEST(Ft12, VariableFrameRoundTrip) {
  auto framed = frame_asdu(serial_asdu(), 37, /*fcb=*/true);
  ASSERT_TRUE(framed.ok()) << framed.error().str();
  auto bytes = framed->encode();
  EXPECT_EQ(bytes[0], 0x68);
  EXPECT_EQ(bytes[3], 0x68);
  EXPECT_EQ(bytes[1], bytes[2]);  // repeated length
  EXPECT_EQ(bytes.back(), 0x16);

  ByteReader r(bytes);
  auto back = decode_ft12(r);
  ASSERT_TRUE(back.ok()) << back.error().str();
  EXPECT_TRUE(r.empty());
  auto asdu = unframe_asdu(back.value());
  ASSERT_TRUE(asdu.ok()) << asdu.error().str();
  EXPECT_EQ(asdu->common_address, 37);
  EXPECT_EQ(asdu->objects[0].ioa, 4701u);
  EXPECT_FLOAT_EQ(std::get<iec104::ShortFloat>(asdu->objects[0].value).value, 59.98f);
}

TEST(Ft12, ChecksumCorruptionDetected) {
  auto framed = frame_asdu(serial_asdu(), 37, false);
  auto bytes = framed->encode();
  bytes[6] ^= 0x01;  // flip a body byte
  ByteReader r(bytes);
  auto back = decode_ft12(r);
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.error().code, "bad-checksum");
}

TEST(Ft12, FramingErrorsDetected) {
  auto framed = frame_asdu(serial_asdu(), 1, false);
  auto good = framed->encode();

  auto bad_len = good;
  bad_len[2] = static_cast<std::uint8_t>(bad_len[2] + 1);
  ByteReader r1(bad_len);
  EXPECT_EQ(decode_ft12(r1).error().code, "length-mismatch");

  auto bad_stop = good;
  bad_stop.back() = 0x17;
  ByteReader r2(bad_stop);
  EXPECT_EQ(decode_ft12(r2).error().code, "bad-stop-octet");

  std::uint8_t junk[] = {0x42};
  ByteReader r3(junk);
  EXPECT_EQ(decode_ft12(r3).error().code, "bad-start-octet");
}

TEST(Ft12, BackToBackFramesParseSequentially) {
  auto f1 = frame_asdu(serial_asdu(), 1, false)->encode();
  auto ack = Ft12Frame::single_char().encode();
  std::vector<std::uint8_t> stream = f1;
  stream.insert(stream.end(), ack.begin(), ack.end());
  ByteReader r(stream);
  EXPECT_EQ(decode_ft12(r)->kind, Ft12Frame::Kind::kVariable);
  EXPECT_EQ(decode_ft12(r)->kind, Ft12Frame::Kind::kSingleChar);
  EXPECT_TRUE(r.empty());
}

TEST(Ft12, SerialProfileWidths) {
  // 1-octet COT, 1-octet CA, 2-octet IOA: the serial ASDU for one float
  // object is 4 (type+vsq+cot+ca) + 2 (IOA) + 5 (element) = 11 bytes, two
  // shorter than the 13-byte IEC 104 standard layout.
  ByteWriter w;
  ASSERT_TRUE(serial_asdu().encode(w, serial_profile()).ok());
  EXPECT_EQ(w.size(), 11u);
}

}  // namespace
}  // namespace uncharted::iec101
