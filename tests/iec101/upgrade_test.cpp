// The §6.1 story end-to-end: a serial IEC 101 RTU is migrated to TCP/IP.
// A correct migration produces standard IEC 104; a migration that keeps the
// serial field widths produces byte patterns that only the tolerant parser
// explains — exactly the O37 / O53-O58-O28 finding.
#include "iec101/upgrade.hpp"

#include <gtest/gtest.h>

#include "iec104/parser.hpp"

namespace uncharted::iec101 {
namespace {

Ft12Frame serial_measurement(std::uint16_t ca, std::uint32_t ioa, float value) {
  iec104::Asdu asdu;
  asdu.type = iec104::TypeId::M_ME_NC_1;
  asdu.cot.cause = iec104::Cause::kSpontaneous;
  asdu.common_address = ca;
  asdu.objects.push_back({ioa, iec104::ShortFloat{value, {}}, std::nullopt});
  return frame_asdu(asdu, static_cast<std::uint8_t>(ca), false).take();
}

TEST(Upgrade, CorrectMigrationIsStandardCompliant) {
  UpgradeAdapter adapter(UpgradeConfig{});  // nothing retained
  auto apdu_bytes = adapter.reframe(serial_measurement(5, 1001, 60.0f), 0, 0);
  ASSERT_TRUE(apdu_bytes.ok()) << apdu_bytes.error().str();

  iec104::ApduStreamParser parser;
  parser.feed(0, apdu_bytes.value());
  ASSERT_EQ(parser.apdus().size(), 1u);
  EXPECT_TRUE(parser.apdus()[0].compliant);
  EXPECT_EQ(parser.apdus()[0].apdu.asdu->objects[0].ioa, 1001u);
}

TEST(Upgrade, RetainedCotReproducesTheO53Case) {
  UpgradeConfig cfg;
  cfg.keep_serial_cot = true;
  UpgradeAdapter adapter(cfg);
  auto apdu_bytes = adapter.reframe(serial_measurement(53, 5301, 131.4f), 0, 0);
  ASSERT_TRUE(apdu_bytes.ok());

  // A strict parser rejects it...
  iec104::ApduStreamParser strict(iec104::ApduStreamParser::Mode::kStrict);
  strict.feed(0, apdu_bytes.value());
  EXPECT_TRUE(strict.apdus().empty());

  // ...the tolerant parser decodes it with the legacy-COT profile and the
  // original values intact.
  iec104::ApduStreamParser tolerant;
  tolerant.feed(0, apdu_bytes.value());
  ASSERT_EQ(tolerant.apdus().size(), 1u);
  const auto& parsed = tolerant.apdus()[0];
  EXPECT_FALSE(parsed.compliant);
  EXPECT_EQ(parsed.profile, iec104::CodecProfile::legacy_cot());
  EXPECT_EQ(parsed.apdu.asdu->common_address, 53);
  EXPECT_EQ(parsed.apdu.asdu->objects[0].ioa, 5301u);
  EXPECT_FLOAT_EQ(std::get<iec104::ShortFloat>(parsed.apdu.asdu->objects[0].value).value,
                  131.4f);
}

TEST(Upgrade, RetainedIoaReproducesTheO37Case) {
  UpgradeConfig cfg;
  cfg.keep_serial_ioa = true;
  UpgradeAdapter adapter(cfg);
  auto apdu_bytes = adapter.reframe(serial_measurement(37, 4701, 59.98f), 3, 1);
  ASSERT_TRUE(apdu_bytes.ok());

  iec104::ApduStreamParser tolerant;
  tolerant.feed(0, apdu_bytes.value());
  ASSERT_EQ(tolerant.apdus().size(), 1u);
  const auto& parsed = tolerant.apdus()[0];
  EXPECT_FALSE(parsed.compliant);
  EXPECT_EQ(parsed.profile, iec104::CodecProfile::legacy_ioa());
  EXPECT_EQ(parsed.apdu.send_seq, 3);
  EXPECT_EQ(parsed.apdu.asdu->objects[0].ioa, 4701u);
}

TEST(Upgrade, SerialIoaWidthLimitsAddresses) {
  // A 2-octet IOA cannot address above 65535 — the migration keeps working
  // only because the site's points fit the old space.
  UpgradeConfig cfg;
  cfg.keep_serial_ioa = true;
  UpgradeAdapter adapter(cfg);
  auto frame = serial_measurement(1, 70000, 1.0f);  // IOA beyond 16 bits
  // The serial framing itself already truncates (2-octet wire field);
  // decoding it back yields the truncated address.
  auto asdu = unframe_asdu(frame);
  ASSERT_TRUE(asdu.ok());
  EXPECT_EQ(asdu->objects[0].ioa, 70000u & 0xffff);
}

TEST(Upgrade, EffectiveProfiles) {
  EXPECT_TRUE(UpgradeConfig{}.effective_profile().is_standard());
  UpgradeConfig both;
  both.keep_serial_cot = true;
  both.keep_serial_ioa = true;
  EXPECT_EQ(both.effective_profile(), iec104::CodecProfile::legacy_both());
}

TEST(Upgrade, FixedFrameHasNoUserData) {
  UpgradeAdapter adapter(UpgradeConfig{});
  LinkControl c;
  auto result = adapter.reframe(Ft12Frame::fixed(c, 1), 0, 0);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, "no-user-data");
}

}  // namespace
}  // namespace uncharted::iec101
