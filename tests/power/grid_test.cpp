#include "power/grid.hpp"

#include <gtest/gtest.h>

namespace uncharted::power {
namespace {

GridModel balanced_grid(double noise = 0.0) {
  GridModel grid(GridConfig{60.0, 5.0, 1.5, 7});
  GeneratorConfig gc;
  gc.name = "G";
  gc.capacity_mw = 200.0;
  gc.ramp_mw_per_s = 2.0;
  grid.add_generator(Generator(gc, true, 100.0));
  grid.add_load(Load(LoadConfig{"L", 100.0, noise}));
  return grid;
}

TEST(Grid, BalancedSystemHoldsNominalFrequency) {
  GridModel grid = balanced_grid();
  for (int i = 0; i < 300; ++i) grid.step(1.0);
  EXPECT_NEAR(grid.frequency_hz(), 60.0, 0.05);
}

TEST(Grid, LoadLossRaisesFrequency) {
  // The paper's "unmet load" event (Fig 18): losing load with generation
  // unchanged pushes frequency up.
  GridModel grid = balanced_grid();
  for (int i = 0; i < 10; ++i) grid.step(1.0);
  double f_before = grid.frequency_hz();
  grid.load(0).disconnect();
  for (int i = 0; i < 20; ++i) grid.step(1.0);
  EXPECT_GT(grid.frequency_hz(), f_before + 0.1);
}

TEST(Grid, GenerationLossLowersFrequency) {
  GridModel grid = balanced_grid();
  grid.generator(0).trip();
  for (int i = 0; i < 20; ++i) grid.step(1.0);
  EXPECT_LT(grid.frequency_hz(), 59.9);
}

TEST(Grid, DampingLimitsRunaway) {
  GridModel grid = balanced_grid();
  grid.load(0).disconnect();
  for (int i = 0; i < 2000; ++i) grid.step(1.0);
  // Clamped to the plausibility band rather than diverging.
  EXPECT_LE(grid.frequency_hz(), 72.0 + 1e-9);
}

TEST(Grid, ScheduledEventsFireInOrder) {
  GridModel grid = balanced_grid();
  std::vector<int> fired;
  grid.schedule(5.0, "b", [&] { fired.push_back(2); });
  grid.schedule(2.0, "a", [&] { fired.push_back(1); });
  grid.schedule(100.0, "never", [&] { fired.push_back(3); });
  for (int i = 0; i < 10; ++i) grid.step(1.0);
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0], 1);
  EXPECT_EQ(fired[1], 2);
}

TEST(Grid, TotalsTrackComponents) {
  GridModel grid = balanced_grid();
  grid.step(1.0);
  EXPECT_NEAR(grid.total_generation_mw(), 100.0, 1.0);
  EXPECT_NEAR(grid.total_load_mw(), 100.0, 1.0);
  EXPECT_NEAR(grid.time_seconds(), 1.0, 1e-9);
}

TEST(Load, NoiseAndDisconnect) {
  Rng rng(3);
  Load noisy(LoadConfig{"L", 100.0, 0.01});
  double sum = 0.0;
  for (int i = 0; i < 1000; ++i) sum += noisy.demand_mw(rng);
  EXPECT_NEAR(sum / 1000.0, 100.0, 1.0);
  noisy.disconnect();
  EXPECT_EQ(noisy.demand_mw(rng), 0.0);
  noisy.reconnect();
  EXPECT_GT(noisy.demand_mw(rng), 0.0);
}

}  // namespace
}  // namespace uncharted::power
