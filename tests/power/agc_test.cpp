#include "power/agc.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "power/measurement.hpp"

namespace uncharted::power {
namespace {

struct Rig {
  GridModel grid;
  AgcController agc;

  explicit Rig(AgcConfig cfg = {})
      : grid(GridConfig{60.0, 5.0, 1.5, 11}),
        agc((cfg.cycle_seconds = 4.0, cfg), make_participants(grid)) {}

  static std::vector<std::size_t> make_participants(GridModel& grid) {
    GeneratorConfig g1;
    g1.name = "G1";
    g1.capacity_mw = 300.0;
    g1.ramp_mw_per_s = 5.0;
    g1.participation_factor = 2.0;
    GeneratorConfig g2 = g1;
    g2.name = "G2";
    g2.participation_factor = 1.0;
    grid.add_generator(Generator(g1, true, 150.0));
    grid.add_generator(Generator(g2, true, 150.0));
    grid.add_load(Load(LoadConfig{"L", 300.0, 0.0}));
    return {0, 1};
  }

  void run(double seconds) {
    for (int i = 0; i < static_cast<int>(seconds); ++i) {
      grid.step(1.0);
      agc.step(grid);
    }
  }
};

TEST(Agc, RestoresFrequencyAfterLoadLoss) {
  Rig rig;
  rig.run(20);
  rig.grid.load(0).disconnect();
  rig.grid.add_load(Load(LoadConfig{"L2", 270.0, 0.0}));  // net 30 MW load loss
  rig.run(30);
  double disturbed = rig.grid.frequency_hz();
  EXPECT_GT(disturbed, 60.0);
  rig.run(400);
  EXPECT_NEAR(rig.grid.frequency_hz(), 60.0, 0.05);
  // Generation was ramped down to match the smaller load.
  EXPECT_LT(rig.grid.total_generation_mw(), 295.0);
}

TEST(Agc, DeadbandSuppressesCommands) {
  AgcConfig cfg;
  cfg.deadband_hz = 100.0;  // wider than the clamped frequency band: never act
  Rig rig(cfg);
  rig.grid.load(0).disconnect();
  int commands = 0;
  for (int i = 0; i < 100; ++i) {
    rig.grid.step(1.0);
    commands += static_cast<int>(rig.agc.step(rig.grid).size());
  }
  EXPECT_EQ(commands, 0);
  EXPECT_EQ(rig.agc.area_control_error_mw(), 0.0);
}

TEST(Agc, RespectsCyclePeriod) {
  Rig rig;
  rig.grid.load(0).disconnect();  // force activity
  int passes_with_commands = 0;
  for (int i = 0; i < 8; ++i) {
    rig.grid.step(1.0);
    if (!rig.agc.step(rig.grid).empty()) ++passes_with_commands;
  }
  // 8 seconds at a 4-second cycle: at most 2 command passes.
  EXPECT_LE(passes_with_commands, 2);
}

TEST(Agc, ParticipationFactorSplitsCorrection) {
  Rig rig;
  rig.grid.load(0).disconnect();
  rig.grid.add_load(Load(LoadConfig{"L2", 240.0, 0.0}));  // 60 MW loss
  // Capture the first real command batch.
  std::vector<AgcCommand> batch;
  for (int i = 0; i < 60 && batch.empty(); ++i) {
    rig.grid.step(1.0);
    batch = rig.agc.step(rig.grid);
  }
  ASSERT_EQ(batch.size(), 2u);
  double delta0 = std::fabs(batch[0].setpoint_mw - 150.0);
  double delta1 = std::fabs(batch[1].setpoint_mw - 150.0);
  ASSERT_GT(delta1, 0.0);
  EXPECT_NEAR(delta0 / delta1, 2.0, 0.2);  // 2:1 participation
}

TEST(Agc, MinCommandDeltaSuppressesNoise) {
  AgcConfig cfg;
  cfg.min_command_delta_mw = 1e9;
  Rig rig(cfg);
  rig.grid.load(0).disconnect();
  int commands = 0;
  for (int i = 0; i < 60; ++i) {
    rig.grid.step(1.0);
    commands += static_cast<int>(rig.agc.step(rig.grid).size());
  }
  EXPECT_EQ(commands, 0);
}

TEST(Agc, SkipsOfflineGenerators) {
  Rig rig;
  rig.grid.generator(1).trip();
  rig.grid.load(0).disconnect();
  rig.grid.add_load(Load(LoadConfig{"L2", 100.0, 0.0}));
  std::vector<AgcCommand> batch;
  for (int i = 0; i < 60 && batch.empty(); ++i) {
    rig.grid.step(1.0);
    batch = rig.agc.step(rig.grid);
  }
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].generator_index, 0u);
}

TEST(SpontaneousReporter, ThresholdGating) {
  SpontaneousReporter rep(1.0);
  EXPECT_TRUE(rep.should_report(10.0));   // first sample always reports
  EXPECT_FALSE(rep.should_report(10.5));  // within threshold
  EXPECT_FALSE(rep.should_report(9.2));
  EXPECT_TRUE(rep.should_report(11.5));   // crossed vs last *reported* (10.0)
  EXPECT_FALSE(rep.should_report(11.0));  // within threshold of 11.5
}

TEST(PhysicalSymbols, NamesMatchTable8Legend) {
  EXPECT_EQ(physical_symbol_name(PhysicalSymbol::kCurrent), "I");
  EXPECT_EQ(physical_symbol_name(PhysicalSymbol::kActivePower), "P");
  EXPECT_EQ(physical_symbol_name(PhysicalSymbol::kReactivePower), "Q");
  EXPECT_EQ(physical_symbol_name(PhysicalSymbol::kVoltage), "U");
  EXPECT_EQ(physical_symbol_name(PhysicalSymbol::kFrequency), "Freq");
  EXPECT_EQ(physical_symbol_name(PhysicalSymbol::kSetpoint), "AGC-SP");
}

}  // namespace
}  // namespace uncharted::power
