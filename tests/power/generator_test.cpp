#include "power/generator.hpp"

#include <gtest/gtest.h>

namespace uncharted::power {
namespace {

GeneratorConfig config() {
  GeneratorConfig c;
  c.name = "G1";
  c.capacity_mw = 100.0;
  c.ramp_mw_per_s = 2.0;
  c.nominal_voltage_kv = 130.0;
  c.voltage_ramp_kv_per_s = 10.0;
  c.sync_duration_s = 5.0;
  return c;
}

TEST(Generator, OnlineStartHasNominalState) {
  Generator g(config(), /*start_online=*/true, 60.0);
  EXPECT_EQ(g.phase(), GeneratorPhase::kOnline);
  EXPECT_EQ(g.breaker(), BreakerStatus::kClosed);
  EXPECT_DOUBLE_EQ(g.output_mw(), 60.0);
  EXPECT_DOUBLE_EQ(g.terminal_voltage_kv(), 130.0);
  EXPECT_GT(g.current_ka(), 0.0);
}

TEST(Generator, SetpointTrackingRespectsRampLimit) {
  Generator g(config(), true, 50.0);
  g.set_setpoint(80.0);
  g.step(1.0);
  EXPECT_DOUBLE_EQ(g.output_mw(), 52.0);  // 2 MW/s
  for (int i = 0; i < 100; ++i) g.step(1.0);
  EXPECT_NEAR(g.output_mw(), 80.0, 1e-9);
}

TEST(Generator, SetpointClampedToCapacity) {
  Generator g(config(), true, 50.0);
  g.set_setpoint(500.0);
  EXPECT_DOUBLE_EQ(g.setpoint(), 100.0);
  g.set_setpoint(-10.0);
  EXPECT_DOUBLE_EQ(g.setpoint(), 0.0);
}

TEST(Generator, SynchronizationSequenceMatchesFig20) {
  // The Fig 20/21 signature: V ramps 0 -> nominal while P stays 0, the unit
  // synchronizes, the breaker closes (status 0 -> 2), then P ramps.
  Generator g(config(), /*start_online=*/false);
  EXPECT_EQ(g.phase(), GeneratorPhase::kOffline);
  EXPECT_EQ(static_cast<int>(g.breaker()), 0);  // paper reports status 0
  EXPECT_DOUBLE_EQ(g.terminal_voltage_kv(), 0.0);

  g.begin_startup();
  EXPECT_EQ(g.phase(), GeneratorPhase::kRampingUp);

  // Voltage ramp: 130 kV at 10 kV/s = 13 s.
  for (int i = 0; i < 12; ++i) {
    g.step(1.0);
    EXPECT_DOUBLE_EQ(g.output_mw(), 0.0);
    EXPECT_EQ(static_cast<int>(g.breaker()), 0);
  }
  g.step(1.0);
  EXPECT_EQ(g.phase(), GeneratorPhase::kSynchronizing);
  EXPECT_DOUBLE_EQ(g.terminal_voltage_kv(), 130.0);

  // Synchronizing plateau: V nominal, P still 0, breaker still open.
  for (int i = 0; i < 4; ++i) {
    g.step(1.0);
    EXPECT_DOUBLE_EQ(g.output_mw(), 0.0);
  }
  g.step(1.0);
  EXPECT_EQ(g.phase(), GeneratorPhase::kOnline);
  EXPECT_EQ(g.breaker(), BreakerStatus::kClosed);

  // Power ramps only after the breaker closes.
  g.set_setpoint(40.0);
  g.step(1.0);
  EXPECT_GT(g.output_mw(), 0.0);
}

TEST(Generator, BeginStartupIdempotentWhenOnline) {
  Generator g(config(), true, 10.0);
  g.begin_startup();
  EXPECT_EQ(g.phase(), GeneratorPhase::kOnline);
}

TEST(Generator, TripDropsEverything) {
  Generator g(config(), true, 70.0);
  g.trip();
  EXPECT_EQ(g.phase(), GeneratorPhase::kOffline);
  EXPECT_DOUBLE_EQ(g.output_mw(), 0.0);
  EXPECT_EQ(g.current_ka(), 0.0);
  for (int i = 0; i < 10; ++i) g.step(1.0);
  EXPECT_DOUBLE_EQ(g.terminal_voltage_kv(), 0.0);
}

TEST(Generator, ReactivePowerSettlesSigned) {
  Generator g(config(), true, 10.0);
  // At low loading the vars target is negative (absorbing).
  for (int i = 0; i < 200; ++i) g.step(1.0);
  EXPECT_LT(g.reactive_mvar(), 0.0);
  g.set_setpoint(100.0);
  for (int i = 0; i < 300; ++i) g.step(1.0);
  EXPECT_GT(g.reactive_mvar(), 0.0);
}

TEST(Generator, CurrentFollowsApparentPower) {
  Generator g(config(), true, 90.0);
  for (int i = 0; i < 100; ++i) g.step(1.0);
  // I = S / (sqrt(3) V): with P=90, |Q|<=25, V=130 -> ~0.40-0.42 kA.
  EXPECT_NEAR(g.current_ka(), 0.41, 0.03);
}

}  // namespace
}  // namespace uncharted::power
