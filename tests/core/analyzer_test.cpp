#include "core/analyzer.hpp"

#include <gtest/gtest.h>

#include "sim/capture.hpp"

namespace uncharted::core {
namespace {

struct Shared {
  sim::CaptureResult capture;
  AnalysisReport report;
  NameMap names;
};

const Shared& shared() {
  static const Shared s = [] {
    Shared out;
    out.capture = sim::generate_capture(sim::CaptureConfig::y1(1000.0));
    out.report = CaptureAnalyzer::analyze(out.capture.packets);
    out.names = name_map(out.capture.topology);
    return out;
  }();
  return s;
}

TEST(Analyzer, StatsPlausible) {
  const auto& r = shared().report;
  EXPECT_GT(r.stats.packets, 10'000u);
  EXPECT_EQ(r.stats.packets, r.stats.tcp_packets);
  EXPECT_GT(r.stats.apdus, 5'000u);
  EXPECT_EQ(r.stats.apdu_failures, 0u);
  EXPECT_GT(r.stats.non_compliant_apdus, 0u);
}

TEST(Analyzer, ComplianceFindsExactlyTheY1LegacyDevices) {
  const auto& s = shared();
  std::vector<std::string> legacy;
  for (const auto& [ip, entry] : s.report.compliance) {
    if (entry.non_compliant > 0) {
      legacy.push_back(name_of(s.names, ip));
      // The paper: 100% invalid packets from these devices.
      EXPECT_EQ(entry.non_compliant, entry.i_apdus);
    }
  }
  std::sort(legacy.begin(), legacy.end());
  EXPECT_EQ(legacy, (std::vector<std::string>{"O28", "O37"}));
}

TEST(Analyzer, ClusteringProducesKClustersWithSemantics) {
  const auto& r = shared().report;
  EXPECT_EQ(r.clustering.chosen_k, 5);
  EXPECT_EQ(r.clustering.profiles.size(), 5u);
  // The semantics the paper names must all appear.
  bool has_u = false, has_s = false, has_i = false, has_outlier = false;
  for (const auto& p : r.clustering.profiles) {
    if (p.interpretation.find("keep-alive") != std::string::npos) has_u = true;
    if (p.interpretation.find("acknowledgements") != std::string::npos) has_s = true;
    if (p.interpretation.find("telemetry") != std::string::npos) has_i = true;
    if (p.interpretation.find("outlier") != std::string::npos) has_outlier = true;
  }
  EXPECT_TRUE(has_u);
  EXPECT_TRUE(has_s);
  EXPECT_TRUE(has_i);
  EXPECT_TRUE(has_outlier);
  // PCA projection covers every session in 2-D.
  EXPECT_EQ(r.clustering.projection.projected.size(), r.clustering.sessions.size());
  EXPECT_EQ(r.clustering.projection.projected.at(0).size(), 2u);
}

TEST(Analyzer, OutlierClusterContainsO30) {
  const auto& s = shared();
  const auto* o30 = s.capture.topology.find_outstation(30);
  bool found = false;
  for (const auto* session : s.report.clustering.outlier_sessions) {
    if (session->src == o30->ip || session->dst == o30->ip) found = true;
  }
  EXPECT_TRUE(found) << "C2-O30 (T3=430s) must land in the outlier cluster";
}

TEST(Analyzer, MarkovChainsShowTheThreeFig13Clusters) {
  const auto& r = shared().report;
  std::size_t p11 = 0, ellipse = 0, square = 0;
  for (const auto& c : r.chains) {
    switch (c.cluster) {
      case analysis::ChainCluster::kPoint11: ++p11; break;
      case analysis::ChainCluster::kEllipse: ++ellipse; break;
      case analysis::ChainCluster::kSquare: ++square; break;
    }
  }
  // The paper lists 10 connections at (1,1) in Y1.
  EXPECT_EQ(p11, 10u);
  EXPECT_GT(ellipse, 2u);
  EXPECT_GT(square, 30u);
  // Every ellipse chain contains I100 by construction of the classifier.
  for (const auto& c : r.chains) {
    if (c.cluster == analysis::ChainCluster::kEllipse) {
      EXPECT_TRUE(c.has_i100);
    }
  }
}

TEST(Analyzer, TypeIdDistributionShapedLikeTable7) {
  const auto& r = shared().report;
  double i36 = r.typeids.percentage(36);
  double i13 = r.typeids.percentage(13);
  EXPECT_GT(i36, 0.5);          // paper: 65.1%
  EXPECT_GT(i13, 0.2);          // paper: 31.7%
  EXPECT_GT(i36 + i13, 0.9);    // paper: ~97%
  EXPECT_GT(r.typeids.percentage(9), r.typeids.percentage(100));
}

TEST(Analyzer, VarianceRankingNonEmptyAndSorted) {
  const auto& r = shared().report;
  ASSERT_GT(r.variance_ranking.size(), 10u);
  for (std::size_t i = 1; i < r.variance_ranking.size(); ++i) {
    EXPECT_GE(r.variance_ranking[i - 1].normalized_variance,
              r.variance_ranking[i].normalized_variance);
  }
}

TEST(Analyzer, RenderReportMentionsKeySections) {
  const auto& s = shared();
  std::string text = render_report(s.report, s.names);
  EXPECT_NE(text.find("TCP flows (Table 3)"), std::string::npos);
  EXPECT_NE(text.find("IEC 104 compliance"), std::string::npos);
  EXPECT_NE(text.find("O37"), std::string::npos);
  EXPECT_NE(text.find("Markov chain clusters"), std::string::npos);
  EXPECT_NE(text.find("ASDU typeIDs"), std::string::npos);
}

TEST(Analyzer, BandwidthAndAuditSectionsPopulated) {
  const auto& r = shared().report;
  EXPECT_GT(r.bandwidth.total_bytes.at(analysis::TapProtocol::kIec104), 0u);
  EXPECT_GT(r.bandwidth.total_bytes.at(analysis::TapProtocol::kC37118), 0u);
  EXPECT_GT(r.bandwidth.iec104_interarrival_s.count(), 1000u);
  EXPECT_FALSE(r.bandwidth.top_connections.empty());
  // Per-packet audit: gaps/duplicates only from TCP retransmissions.
  EXPECT_EQ(r.sequence_audit.total_gaps + r.sequence_audit.total_duplicates == 0, false);
  EXPECT_FALSE(r.sequence_audit.entries.empty());
  // The rendered report carries the new sections.
  std::string text = render_report(r, shared().names);
  EXPECT_NE(text.find("== Bandwidth =="), std::string::npos);
  EXPECT_NE(text.find("== Sequence audit =="), std::string::npos);
}

TEST(Analyzer, KeepSeriesFalseDropsSeries) {
  CaptureAnalyzer::Options opts;
  opts.keep_series = false;
  auto capture = sim::generate_capture(sim::CaptureConfig::y1(60.0));
  auto report = CaptureAnalyzer::analyze(capture.packets, opts);
  EXPECT_TRUE(report.series.empty());
  EXPECT_FALSE(report.variance_ranking.empty());
}

TEST(Analyzer, FileRoundTrip) {
  auto capture = sim::generate_capture(sim::CaptureConfig::y1(60.0));
  std::string path = "/tmp/uncharted_analyzer_rt.pcap";
  ASSERT_TRUE(sim::write_capture_pcap(capture, path).ok());
  auto report = CaptureAnalyzer::analyze_file(path);
  ASSERT_TRUE(report.ok());
  auto direct = CaptureAnalyzer::analyze(capture.packets);
  EXPECT_EQ(report->stats.apdus, direct.stats.apdus);
  EXPECT_FALSE(CaptureAnalyzer::analyze_file("/nonexistent.pcap").ok());
}

}  // namespace
}  // namespace uncharted::core
