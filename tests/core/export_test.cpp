#include "core/export.hpp"

#include <filesystem>

#include <gtest/gtest.h>

namespace uncharted::core {
namespace {

TEST(Export, MarkovToDot) {
  auto chain = analysis::MarkovChain::from_tokens({"I_36", "I_36", "S", "I_36"});
  std::string dot = markov_to_dot(chain, "C1-O4 primary");
  EXPECT_NE(dot.find("digraph markov {"), std::string::npos);
  EXPECT_NE(dot.find("label=\"C1-O4 primary\""), std::string::npos);
  EXPECT_NE(dot.find("\"I_36\" -> \"I_36\" [label=\"0.50\"]"), std::string::npos);
  EXPECT_NE(dot.find("\"I_36\" -> \"S\" [label=\"0.50\"]"), std::string::npos);
  EXPECT_NE(dot.find("\"S\" -> \"I_36\" [label=\"1.00\"]"), std::string::npos);
  EXPECT_EQ(dot.back(), '\n');
}

TEST(Export, DotEscapesQuotes) {
  auto chain = analysis::MarkovChain::from_tokens({"a\"b", "c"});
  std::string dot = markov_to_dot(chain);
  EXPECT_NE(dot.find("\"a\\\"b\""), std::string::npos);
}

TEST(Export, SeriesToCsv) {
  analysis::TimeSeries ts;
  ts.points.push_back({from_seconds(1.5), 130.25});
  ts.points.push_back({from_seconds(2.0), 130.5});
  std::string csv = series_to_csv(ts, 0);
  EXPECT_EQ(csv, "t_seconds,value\n1.500000,130.250000\n2.000000,130.500000\n");
}

TEST(Export, HistogramToCsv) {
  LogHistogram h(-1, 1, 1);
  h.add(0.5);
  std::string csv = histogram_to_csv(h);
  EXPECT_NE(csv.find("bin_low,bin_high,count"), std::string::npos);
  EXPECT_NE(csv.find(",1"), std::string::npos);
}

TEST(Export, WriteTextFileRoundTrip) {
  auto path = (std::filesystem::temp_directory_path() / "uncharted_export.txt").string();
  ASSERT_TRUE(write_text_file(path, "hello\nworld\n").ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buf[64] = {};
  auto n = std::fread(buf, 1, sizeof(buf), f);
  std::fclose(f);
  EXPECT_EQ(std::string(buf, n), "hello\nworld\n");
  std::filesystem::remove(path);
  EXPECT_FALSE(write_text_file("/nonexistent-dir/x.txt", "x").ok());
}

}  // namespace
}  // namespace uncharted::core
