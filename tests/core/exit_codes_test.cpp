// The CLI exit-code contract (README "Exit codes"): every tool reports
// 0 = clean, 1 = usage/unreadable input, 2 = degraded, 3 = hostile
// (hostile wins over degraded). These tests shell out to the real
// binaries, because the contract is what scripts/soak.sh and operators'
// cron jobs consume.
#include <gtest/gtest.h>
#include <sys/wait.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>

namespace {

#ifndef UNCHARTED_BIN_IEC104DUMP
#error "UNCHARTED_BIN_IEC104DUMP must point at the iec104dump binary"
#endif

int run(const std::string& cmd) {
  const int rc = std::system((cmd + " >/dev/null 2>&1").c_str());
  if (rc == -1 || !WIFEXITED(rc)) return -1;
  return WEXITSTATUS(rc);
}

std::string quoted(const char* path) { return "'" + std::string(path) + "'"; }

/// Lazily generated fixture pcaps, shared by every test in the process.
struct Pcaps {
  std::string clean;
  std::string truncated;
  std::string hostile;
};

const Pcaps& pcaps() {
  static const Pcaps p = [] {
    const std::string dir = testing::TempDir();
    Pcaps out;
    out.clean = dir + "/exitcodes_clean.pcap";
    out.truncated = dir + "/exitcodes_truncated.pcap";
    out.hostile = dir + "/exitcodes_hostile.pcap";
    EXPECT_EQ(run(quoted(UNCHARTED_BIN_CAPTURE_GENERATOR) +
                  " --year 1 --duration 10 --seed 7 --no-events --out " +
                  out.clean),
              0);
    EXPECT_EQ(run(quoted(UNCHARTED_BIN_CAPTURE_GENERATOR) +
                  " --year 1 --duration 10 --seed 7 --no-events --hostile "
                  "--out " +
                  out.hostile),
              0);
    // Chop the clean pcap mid-record: a truncated tail is the mildest
    // degradation the pipeline reports.
    std::ifstream in(out.clean, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    EXPECT_GT(bytes.size(), 64u);
    std::ofstream cut(out.truncated, std::ios::binary);
    cut.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 11));
    return out;
  }();
  return p;
}

TEST(ExitCodes, CleanCaptureExitsZero) {
  EXPECT_EQ(run(quoted(UNCHARTED_BIN_IEC104DUMP) + " " + pcaps().clean +
                " --conformance --limit 1"),
            0);
}

TEST(ExitCodes, UnreadableInputExitsOne) {
  EXPECT_EQ(run(quoted(UNCHARTED_BIN_IEC104DUMP) + " /no/such/capture.pcap"),
            1);
}

TEST(ExitCodes, UsageErrorsExitOne) {
  EXPECT_EQ(run(quoted(UNCHARTED_BIN_CAPTURE_GENERATOR) + " --no-such-flag"),
            1);
  EXPECT_EQ(run(quoted(UNCHARTED_BIN_IEC104D) + " --no-such-flag"), 1);
  EXPECT_EQ(run(quoted(UNCHARTED_BIN_LONGRUN_MONITOR) + " --no-such-flag"), 1);
}

TEST(ExitCodes, TruncatedCaptureExitsTwoDegraded) {
  EXPECT_EQ(run(quoted(UNCHARTED_BIN_IEC104DUMP) + " " + pcaps().truncated +
                " --limit 1"),
            2);
}

TEST(ExitCodes, HostileCaptureExitsThreeAndWinsOverDegraded) {
  EXPECT_EQ(run(quoted(UNCHARTED_BIN_IEC104DUMP) + " " + pcaps().hostile +
                " --conformance --limit 1"),
            3);
}

TEST(ExitCodes, LongrunMonitorHonorsTheSameLadder) {
  EXPECT_EQ(run(quoted(UNCHARTED_BIN_LONGRUN_MONITOR) + " --pcap " +
                pcaps().clean + " --quiet"),
            0);
  EXPECT_EQ(run(quoted(UNCHARTED_BIN_LONGRUN_MONITOR) + " --pcap " +
                pcaps().truncated + " --quiet"),
            2);
  EXPECT_EQ(run(quoted(UNCHARTED_BIN_LONGRUN_MONITOR) + " --pcap " +
                pcaps().hostile + " --quiet"),
            3);
}

TEST(ExitCodes, IdleDaemonDrainsCleanWithExitZero) {
  EXPECT_EQ(run(quoted(UNCHARTED_BIN_IEC104D) +
                " --port 0 --run-for 0.2 --quiet"),
            0);
}

TEST(ExitCodes, DaemonSelfTerminatesWithExitFourWhenTheLadderExhausts) {
  // A checkpoint writer wedged past both restart rungs: the recovery
  // ladder's terminal rung asks for exit 4 so a supervisor restarts the
  // daemon into --restore. Distinct from 0/1/2/3 and from 42.
  const std::string ckpt = testing::TempDir() + "/exitcodes_selfterm.ckpt";
  EXPECT_EQ(run(quoted(UNCHARTED_BIN_IEC104D) + " --port 0 --checkpoint " +
                ckpt +
                " --interval 0.05 --stall-checkpoint --watchdog-poll 0.02"
                " --watchdog-checkpoint 0.15 --run-for 10 --quiet"),
            4);
}

TEST(ExitCodes, FleetHonorsTheSameLadder) {
  // Usage error and a failed query/health fetch are 1, like every tool.
  EXPECT_EQ(run(quoted(UNCHARTED_BIN_IEC104_FLEET) + " --no-such-flag"), 1);
  EXPECT_EQ(run(quoted(UNCHARTED_BIN_IEC104_FLEET) +
                " --connect 127.0.0.1:1 --health"),
            1);
}

TEST(ExitCodes, FleetExitsZeroBenignAndThreeWhenHostileModesAreScripted) {
  // One background daemon serves every fleet run; it announces its
  // ephemeral port on stdout ("listening on HOST:PORT"), the same line
  // scripts/soak.sh parses.
  const std::string out = testing::TempDir() + "/exitcodes_fleet_daemon.out";
  const std::string pid_file = testing::TempDir() + "/exitcodes_fleet_daemon.pid";
  ASSERT_EQ(std::system((quoted(UNCHARTED_BIN_IEC104D) +
                         " --port 0 --run-for 60 --quiet > " + out +
                         " 2>/dev/null & echo $! > " + pid_file)
                            .c_str()),
            0);
  std::string port;
  for (int i = 0; i < 200 && port.empty(); ++i) {
    std::ifstream in(out);
    std::string line;
    if (std::getline(in, line) && line.rfind("listening on ", 0) == 0) {
      port = line.substr(line.rfind(':') + 1);
    }
    if (port.empty()) std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  ASSERT_FALSE(port.empty()) << "daemon never announced its port";

  const std::string connect = " --connect 127.0.0.1:" + port;
  EXPECT_EQ(run(quoted(UNCHARTED_BIN_IEC104_FLEET) + connect +
                " --year 1 --duration 2 --clones 2 --quiet"),
            0);
  EXPECT_EQ(run(quoted(UNCHARTED_BIN_IEC104_FLEET) + connect +
                " --year 1 --duration 2 --garbage 1 --quiet"),
            3);
  // A --health fetch against a live daemon succeeds (contrast with the
  // unreachable-port 1 above).
  EXPECT_EQ(run(quoted(UNCHARTED_BIN_IEC104_FLEET) + connect + " --health"), 0);
  run("kill $(cat " + pid_file + ")");
}

}  // namespace
