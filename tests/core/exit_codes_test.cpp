// The CLI exit-code contract (README "Exit codes"): every tool reports
// 0 = clean, 1 = usage/unreadable input, 2 = degraded, 3 = hostile
// (hostile wins over degraded). These tests shell out to the real
// binaries, because the contract is what scripts/soak.sh and operators'
// cron jobs consume.
#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

namespace {

#ifndef UNCHARTED_BIN_IEC104DUMP
#error "UNCHARTED_BIN_IEC104DUMP must point at the iec104dump binary"
#endif

int run(const std::string& cmd) {
  const int rc = std::system((cmd + " >/dev/null 2>&1").c_str());
  if (rc == -1 || !WIFEXITED(rc)) return -1;
  return WEXITSTATUS(rc);
}

std::string quoted(const char* path) { return "'" + std::string(path) + "'"; }

/// Lazily generated fixture pcaps, shared by every test in the process.
struct Pcaps {
  std::string clean;
  std::string truncated;
  std::string hostile;
};

const Pcaps& pcaps() {
  static const Pcaps p = [] {
    const std::string dir = testing::TempDir();
    Pcaps out;
    out.clean = dir + "/exitcodes_clean.pcap";
    out.truncated = dir + "/exitcodes_truncated.pcap";
    out.hostile = dir + "/exitcodes_hostile.pcap";
    EXPECT_EQ(run(quoted(UNCHARTED_BIN_CAPTURE_GENERATOR) +
                  " --year 1 --duration 10 --seed 7 --no-events --out " +
                  out.clean),
              0);
    EXPECT_EQ(run(quoted(UNCHARTED_BIN_CAPTURE_GENERATOR) +
                  " --year 1 --duration 10 --seed 7 --no-events --hostile "
                  "--out " +
                  out.hostile),
              0);
    // Chop the clean pcap mid-record: a truncated tail is the mildest
    // degradation the pipeline reports.
    std::ifstream in(out.clean, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    EXPECT_GT(bytes.size(), 64u);
    std::ofstream cut(out.truncated, std::ios::binary);
    cut.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 11));
    return out;
  }();
  return p;
}

TEST(ExitCodes, CleanCaptureExitsZero) {
  EXPECT_EQ(run(quoted(UNCHARTED_BIN_IEC104DUMP) + " " + pcaps().clean +
                " --conformance --limit 1"),
            0);
}

TEST(ExitCodes, UnreadableInputExitsOne) {
  EXPECT_EQ(run(quoted(UNCHARTED_BIN_IEC104DUMP) + " /no/such/capture.pcap"),
            1);
}

TEST(ExitCodes, UsageErrorsExitOne) {
  EXPECT_EQ(run(quoted(UNCHARTED_BIN_CAPTURE_GENERATOR) + " --no-such-flag"),
            1);
  EXPECT_EQ(run(quoted(UNCHARTED_BIN_IEC104D) + " --no-such-flag"), 1);
  EXPECT_EQ(run(quoted(UNCHARTED_BIN_LONGRUN_MONITOR) + " --no-such-flag"), 1);
}

TEST(ExitCodes, TruncatedCaptureExitsTwoDegraded) {
  EXPECT_EQ(run(quoted(UNCHARTED_BIN_IEC104DUMP) + " " + pcaps().truncated +
                " --limit 1"),
            2);
}

TEST(ExitCodes, HostileCaptureExitsThreeAndWinsOverDegraded) {
  EXPECT_EQ(run(quoted(UNCHARTED_BIN_IEC104DUMP) + " " + pcaps().hostile +
                " --conformance --limit 1"),
            3);
}

TEST(ExitCodes, LongrunMonitorHonorsTheSameLadder) {
  EXPECT_EQ(run(quoted(UNCHARTED_BIN_LONGRUN_MONITOR) + " --pcap " +
                pcaps().clean + " --quiet"),
            0);
  EXPECT_EQ(run(quoted(UNCHARTED_BIN_LONGRUN_MONITOR) + " --pcap " +
                pcaps().truncated + " --quiet"),
            2);
  EXPECT_EQ(run(quoted(UNCHARTED_BIN_LONGRUN_MONITOR) + " --pcap " +
                pcaps().hostile + " --quiet"),
            3);
}

TEST(ExitCodes, IdleDaemonDrainsCleanWithExitZero) {
  EXPECT_EQ(run(quoted(UNCHARTED_BIN_IEC104D) +
                " --port 0 --run-for 0.2 --quiet"),
            0);
}

}  // namespace
