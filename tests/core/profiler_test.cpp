#include "core/profiler.hpp"

#include <gtest/gtest.h>

#include "sim/capture.hpp"
#include "tests/analysis/testlib.hpp"

namespace uncharted::core {
namespace {

using testlib::CaptureBuilder;
using testlib::float_asdu;
using testlib::i_apdu;
using testlib::ip;

struct Shared {
  sim::CaptureResult capture;
  analysis::CaptureDataset dataset;
  NetworkProfiler profiler;

  Shared()
      : capture(sim::generate_capture(sim::CaptureConfig::y1(240.0))),
        dataset(analysis::CaptureDataset::build(capture.packets)) {
    profiler.learn(dataset);
  }
};

const Shared& shared() {
  static const Shared s;
  return s;
}

TEST(Profiler, LearnsTheFleet) {
  EXPECT_GT(shared().profiler.known_stations(), 30u);
  EXPECT_GT(shared().profiler.sequence_model().vocabulary_size(), 5u);
}

TEST(Profiler, BenignRerunIsQuiet) {
  // Same traffic it learned from: value/typeID/IOA whitelists must hold.
  auto anomalies = shared().profiler.detect(shared().dataset);
  for (const auto& a : anomalies) {
    EXPECT_NE(a.kind, AnomalyKind::kUnknownStation) << a.description;
    EXPECT_NE(a.kind, AnomalyKind::kUnknownTypeId) << a.description;
    EXPECT_NE(a.kind, AnomalyKind::kUnknownIoa) << a.description;
    EXPECT_NE(a.kind, AnomalyKind::kValueOutOfRange) << a.description;
  }
}

TEST(Profiler, DetectsRogueStation) {
  CaptureBuilder cb;
  cb.apdu(1000, ip(10, 0, 0, 1), ip(192, 168, 66, 66), true,
          i_apdu(float_asdu(666, 1, 1.0f)));
  auto rogue = analysis::CaptureDataset::build(cb.packets());
  auto anomalies = shared().profiler.detect(rogue);
  ASSERT_FALSE(anomalies.empty());
  EXPECT_EQ(anomalies[0].kind, AnomalyKind::kUnknownStation);
}

TEST(Profiler, DetectsIndustroyerStyleInterrogation) {
  // Industroyer's recon phase: interrogation commands from a host that
  // never interrogated during learning (paper §6.3.1 discussion).
  const auto& topo = shared().capture.topology;
  const auto* o5 = topo.find_outstation(5);

  CaptureBuilder cb;
  iec104::Asdu gi;
  gi.type = iec104::TypeId::C_IC_NA_1;
  gi.cot.cause = iec104::Cause::kActivation;
  gi.common_address = 5;
  gi.objects.push_back({0, iec104::InterrogationCommand{20}, std::nullopt});
  // Attacker machine at a known-server-like address issues the GI.
  cb.apdu(1000, ip(10, 0, 0, 99), o5->ip, false, i_apdu(gi));
  auto attack = analysis::CaptureDataset::build(cb.packets());
  auto anomalies = shared().profiler.detect(attack);
  bool flagged = false;
  for (const auto& a : anomalies) {
    if (a.kind == AnomalyKind::kUnexpectedInterrogation ||
        a.kind == AnomalyKind::kUnknownStation) {
      flagged = true;
    }
  }
  EXPECT_TRUE(flagged);
}

TEST(Profiler, DetectsNewTypeIdFromKnownStation) {
  const auto& topo = shared().capture.topology;
  const auto* o5 = topo.find_outstation(5);
  CaptureBuilder cb;
  // O5 never sent integrated totals (I15) during learning.
  iec104::Asdu it;
  it.type = iec104::TypeId::M_IT_NA_1;
  it.cot.cause = iec104::Cause::kSpontaneous;
  it.common_address = 5;
  it.objects.push_back({1001, iec104::IntegratedTotals{5, 0}, std::nullopt});
  cb.apdu(1000, ip(10, 0, 0, 2), o5->ip, true, i_apdu(it));
  auto anomalies =
      shared().profiler.detect(analysis::CaptureDataset::build(cb.packets()));
  bool flagged = false;
  for (const auto& a : anomalies) {
    if (a.kind == AnomalyKind::kUnknownTypeId) flagged = true;
  }
  EXPECT_TRUE(flagged);
}

TEST(Profiler, DetectsUnknownIoa) {
  const auto& sh = shared();
  const auto* o1 = sh.capture.topology.find_outstation(1);
  CaptureBuilder cb;
  cb.apdu(1000, ip(10, 0, 0, 1), o1->ip, true,
          i_apdu(float_asdu(1, 999'999, 1.0f)));
  auto anomalies = sh.profiler.detect(analysis::CaptureDataset::build(cb.packets()));
  bool flagged = false;
  for (const auto& a : anomalies) {
    if (a.kind == AnomalyKind::kUnknownIoa) flagged = true;
  }
  EXPECT_TRUE(flagged);
}

TEST(Profiler, DetectsOutOfRangeValue) {
  const auto& sh = shared();
  // Find a learned float series and report a wild value on its IOA.
  const auto* o1 = sh.capture.topology.find_outstation(1);
  std::uint32_t ioa = 0;
  for (const auto& sig : sh.capture.truth.signals) {
    if (sig.outstation_id == 1 && (sig.type_id == 13 || sig.type_id == 36)) {
      ioa = sig.ioa;
      break;
    }
  }
  ASSERT_NE(ioa, 0u);
  CaptureBuilder cb;
  cb.apdu(1000, ip(10, 0, 0, 1), o1->ip, true, i_apdu(float_asdu(1, ioa, 1e7f)));
  auto anomalies = sh.profiler.detect(analysis::CaptureDataset::build(cb.packets()));
  bool flagged = false;
  for (const auto& a : anomalies) {
    if (a.kind == AnomalyKind::kValueOutOfRange) flagged = true;
  }
  EXPECT_TRUE(flagged);
}

TEST(Profiler, DetectsSpecViolations) {
  const auto& sh = shared();
  const auto* o1 = sh.capture.topology.find_outstation(1);
  CaptureBuilder cb;
  // A measured value "sent" by the control server: wrong direction.
  cb.apdu(1000, ip(10, 0, 0, 1), o1->ip, false, i_apdu(float_asdu(1, 1101, 60.0f)));
  // A command with a periodic cause: cause mismatch.
  iec104::Asdu weird;
  weird.type = iec104::TypeId::C_SE_NC_1;
  weird.cot.cause = iec104::Cause::kPeriodic;
  weird.common_address = 1;
  weird.objects.push_back({9001, iec104::SetpointFloat{1.0f, 0}, std::nullopt});
  cb.apdu(2000, ip(10, 0, 0, 1), o1->ip, false, i_apdu(weird));
  auto anomalies = sh.profiler.detect(analysis::CaptureDataset::build(cb.packets()));
  int spec = 0;
  for (const auto& a : anomalies) {
    if (a.kind == AnomalyKind::kSpecViolation) ++spec;
  }
  EXPECT_GE(spec, 2);
}

TEST(Profiler, BenignTrafficHasNoSpecViolations) {
  auto anomalies = shared().profiler.detect(shared().dataset);
  for (const auto& a : anomalies) {
    EXPECT_NE(a.kind, AnomalyKind::kSpecViolation) << a.description;
  }
}

TEST(Profiler, AnomalyKindNames) {
  EXPECT_EQ(anomaly_kind_name(AnomalyKind::kUnknownStation), "unknown-station");
  EXPECT_EQ(anomaly_kind_name(AnomalyKind::kUnseenTransition), "unseen-transition");
}

}  // namespace
}  // namespace uncharted::core
