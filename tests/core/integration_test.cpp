// End-to-end integration: both capture years through the full pipeline,
// cross-checked against the paper's headline findings and the simulator's
// ground truth.
#include <gtest/gtest.h>

#include "analysis/topology_diff.hpp"
#include "core/analyzer.hpp"
#include "core/profiler.hpp"
#include "sim/capture.hpp"

namespace uncharted::core {
namespace {

struct TwoYears {
  sim::CaptureResult y1 = sim::generate_capture(sim::CaptureConfig::y1(400.0));
  sim::CaptureResult y2 = sim::generate_capture(sim::CaptureConfig::y2(150.0));
  analysis::CaptureDataset ds1 = analysis::CaptureDataset::build(y1.packets);
  analysis::CaptureDataset ds2 = analysis::CaptureDataset::build(y2.packets);
  NameMap names = name_map(y1.topology);
};

const TwoYears& data() {
  static const TwoYears d;
  return d;
}

TEST(Integration, YearDiffRecoversTable2Changes) {
  const auto& d = data();
  auto diff = analysis::diff_topology(d.ds1, d.ds2);

  std::map<std::string, analysis::StationChange> by_name;
  for (const auto& e : diff.entries) by_name[name_of(d.names, e.station)] = e.change;

  // Table 2 added outstations appear, removed ones disappear.
  for (const char* name : {"O50", "O53", "O54"}) {
    ASSERT_TRUE(by_name.count(name)) << name;
    EXPECT_EQ(by_name[name], analysis::StationChange::kAdded) << name;
  }
  for (const char* name : {"O2", "O28"}) {
    ASSERT_TRUE(by_name.count(name)) << name;
    EXPECT_EQ(by_name[name], analysis::StationChange::kRemoved) << name;
  }
}

TEST(Integration, Y2ComplianceFindsO53AndO58) {
  const auto& d = data();
  std::vector<std::string> legacy;
  for (const auto& [ip, entry] : d.ds2.compliance()) {
    if (entry.non_compliant > 0) legacy.push_back(name_of(d.names, ip));
  }
  std::sort(legacy.begin(), legacy.end());
  EXPECT_EQ(legacy, (std::vector<std::string>{"O37", "O53", "O58"}));
}

TEST(Integration, FlowShapeMatchesTable3) {
  const auto& d = data();
  auto f1 = analysis::analyze_flows(d.ds1.flow_table());
  auto f2 = analysis::analyze_flows(d.ds2.flow_table());

  // Y1: short-lived dominate (~74%), nearly all sub-second (~99.8%), with a
  // large long-lived share (~26%) inflated by ignored SYNs.
  EXPECT_GT(f1.summary.short_fraction(), 0.6);
  EXPECT_LT(f1.summary.short_fraction(), 0.9);
  EXPECT_GT(f1.summary.under_1s_fraction_of_short(), 0.95);
  EXPECT_GT(f1.summary.long_fraction(), 0.15);

  // Y2: short-lived share even higher (~94%), long-lived collapses (~6%),
  // and clearly more of the short flows exceed 1 s than in Y1.
  EXPECT_GT(f2.summary.short_fraction(), f1.summary.short_fraction());
  EXPECT_LT(f2.summary.long_fraction(), f1.summary.long_fraction());
  EXPECT_LT(f2.summary.under_1s_fraction_of_short(),
            f1.summary.under_1s_fraction_of_short());
}

TEST(Integration, WhitelistLearnedOnY1FlagsOnlyStructuralNoveltyInY2) {
  const auto& d = data();
  NetworkProfiler profiler;
  profiler.learn(d.ds1);
  auto anomalies = profiler.detect(d.ds2, d.names);

  // Every unknown-station finding must be a genuinely new Y2 outstation.
  std::set<std::string> added = {"O50", "O51", "O52", "O53",
                                 "O54", "O55", "O56", "O57", "O58"};
  for (const auto& a : anomalies) {
    if (a.kind == AnomalyKind::kUnknownStation) {
      EXPECT_TRUE(added.count(a.description)) << a.description;
    }
  }
}

TEST(Integration, PhysicalEventsRecoverable) {
  const auto& d = data();
  auto series = analysis::extract_time_series(d.ds1);

  // The generator-online event (O31): find its voltage series and check the
  // 0 -> nominal jump the paper shows in Fig 18/20.
  const auto* o31 = d.y1.topology.find_outstation(31);
  bool found_jump = false;
  for (const auto& [key, ts] : series) {
    if (key.station == o31->ip && ts.points.size() > 4) {
      if (ts.max_value() - ts.min_value() > 100.0) found_jump = true;
    }
  }
  EXPECT_TRUE(found_jump) << "generator synchronization voltage rise not visible";
}

TEST(Integration, AgcSetpointsFlowToGenerators) {
  const auto& d = data();
  auto setpoints = analysis::extract_setpoint_series(d.ds1);
  EXPECT_GE(setpoints.size(), 2u);  // several AGC-participating stations
  std::size_t total_cmds = 0;
  for (const auto& [ip, ts] : setpoints) total_cmds += ts.points.size();
  EXPECT_GT(total_cmds, 5u);
}

TEST(Integration, ReassembledAndPerPacketAgreeOnApduCountModuloRetransmissions) {
  const auto& d = data();
  analysis::CaptureDataset::Options opts;
  opts.mode = analysis::ParseMode::kReassembled;
  auto reassembled = analysis::CaptureDataset::build(d.y1.packets, opts);
  // Per-packet counts = reassembled counts + duplicated APDUs from TCP
  // retransmissions (the paper's §6.3.1 effect).
  EXPECT_GE(d.ds1.stats().apdus, reassembled.stats().apdus);
  EXPECT_GT(reassembled.stats().tcp_retransmissions, 0u);
  EXPECT_LE(d.ds1.stats().apdus - reassembled.stats().apdus,
            2 * reassembled.stats().tcp_retransmissions + 8);
}

TEST(Integration, StationTypeHistogramShape) {
  const auto& d = data();
  auto types = analysis::classify_stations(d.ds1);
  auto hist = analysis::type_histogram(types);
  // Type 3 (pure backups) is the most common class, as in Fig 17.
  std::size_t max_count = 0;
  analysis::StationType max_type = analysis::StationType::kType1;
  for (const auto& [t, c] : hist) {
    if (c > max_count) {
      max_count = c;
      max_type = t;
    }
  }
  EXPECT_EQ(max_type, analysis::StationType::kType3);
  // Types 5 (stale spontaneous) and 4 (both servers) are singletons.
  EXPECT_EQ(hist[analysis::StationType::kType5], 1u);
}

}  // namespace
}  // namespace uncharted::core
