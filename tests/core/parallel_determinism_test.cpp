// Determinism regression for the parallel flow-sharded pipeline: the
// rendered report and the exported JSON must be byte-identical at every
// thread count — on clean captures, on fault-injected ones, and across a
// kill/restore cycle mid-stream. This is the contract that makes --threads
// a pure performance knob.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "core/export.hpp"
#include "core/streaming.hpp"
#include "faultinject/fault.hpp"
#include "sim/capture.hpp"

namespace uncharted {
namespace {

constexpr unsigned kThreadCounts[] = {1, 2, 8};

const std::vector<net::CapturedPacket>& y1_packets() {
  static const auto capture =
      sim::generate_capture(sim::CaptureConfig::y1(120.0));
  return capture.packets;
}

const std::vector<net::CapturedPacket>& y2_packets() {
  static const auto capture =
      sim::generate_capture(sim::CaptureConfig::y2(90.0));
  return capture.packets;
}

core::CaptureAnalyzer::Options options_with(unsigned threads) {
  core::CaptureAnalyzer::Options options;
  options.mode = analysis::ParseMode::kReassembled;
  options.keep_series = false;
  options.threads = threads;
  return options;
}

void expect_identical_across_threads(
    const std::vector<net::CapturedPacket>& packets, const char* label) {
  auto baseline = core::CaptureAnalyzer::analyze(packets, options_with(1));
  std::string base_text = core::render_report(baseline, {});
  std::string base_json = core::report_to_json(baseline);
  for (unsigned threads : kThreadCounts) {
    if (threads == 1) continue;
    auto report = core::CaptureAnalyzer::analyze(packets, options_with(threads));
    EXPECT_EQ(core::render_report(report, {}), base_text)
        << label << " render differs at " << threads << " threads";
    EXPECT_EQ(core::report_to_json(report), base_json)
        << label << " JSON differs at " << threads << " threads";
  }
}

TEST(ParallelDeterminism, Y1ReportsByteIdenticalAtEveryThreadCount) {
  expect_identical_across_threads(y1_packets(), "y1");
}

TEST(ParallelDeterminism, Y2ReportsByteIdenticalAtEveryThreadCount) {
  expect_identical_across_threads(y2_packets(), "y2");
}

TEST(ParallelDeterminism, FaultInjectedCaptureStaysByteIdentical) {
  // 5% uniform damage: truncated frames, drops, duplicates, reordering.
  // Degraded-mode accounting (resyncs, quarantine, truncated tails) must
  // land identically no matter which shard saw the damage.
  auto faulted = faultinject::apply_faults(
      y1_packets(), faultinject::FaultConfig::uniform(0.05));
  expect_identical_across_threads(faulted.packets, "y1@5%");
}

TEST(ParallelDeterminism, KillRestoreMidStreamMatchesSequentialBatch) {
  const auto& packets = y1_packets();
  auto batch = core::CaptureAnalyzer::analyze(packets, options_with(1));
  std::string batch_text = core::render_report(batch, {});

  auto ckpt = ::testing::TempDir() + "parallel_determinism.ckpt";
  std::filesystem::remove(ckpt);
  std::filesystem::remove(ckpt + ".1");

  core::StreamingOptions options;
  options.analyze = options_with(8);
  options.checkpoint_path = ckpt;
  options.checkpoint_every_packets = 500;
  {
    // First incarnation dies at ~40% with no shutdown checkpoint — only
    // the periodic sharded snapshots survive.
    core::StreamingAnalyzer doomed(options);
    const std::size_t kill_at = packets.size() * 2 / 5;
    for (std::size_t i = 0; i < kill_at; ++i) doomed.add_packet(packets[i]);
  }
  core::StreamingAnalyzer survivor(options);
  ASSERT_TRUE(survivor.try_restore());
  ASSERT_GT(survivor.packets_consumed(), 0u);
  for (std::size_t i = static_cast<std::size_t>(survivor.packets_consumed());
       i < packets.size(); ++i) {
    survivor.add_packet(packets[i]);
  }
  auto resumed = survivor.finalize();
  EXPECT_EQ(core::render_report(resumed, {}), batch_text);

  std::filesystem::remove(ckpt);
  std::filesystem::remove(ckpt + ".1");
}

TEST(ParallelDeterminism, EngineMismatchedCheckpointIsRefused) {
  const auto& packets = y1_packets();
  auto ckpt = ::testing::TempDir() + "parallel_engine_mismatch.ckpt";
  std::filesystem::remove(ckpt);
  std::filesystem::remove(ckpt + ".1");

  core::StreamingOptions sequential;
  sequential.analyze = options_with(1);
  sequential.checkpoint_path = ckpt;
  {
    core::StreamingAnalyzer writer(sequential);
    for (std::size_t i = 0; i < 1000 && i < packets.size(); ++i) {
      writer.add_packet(packets[i]);
    }
    ASSERT_TRUE(writer.checkpoint_now().ok());
  }

  // A sharded analyzer cannot resume a single-builder checkpoint: it must
  // start fresh (returning false), never mis-restore.
  core::StreamingOptions parallel = sequential;
  parallel.analyze = options_with(8);
  core::StreamingAnalyzer reader(parallel);
  EXPECT_FALSE(reader.try_restore());
  EXPECT_EQ(reader.packets_consumed(), 0u);

  std::filesystem::remove(ckpt);
  std::filesystem::remove(ckpt + ".1");
}

TEST(ParallelDeterminism, ProfileFooterIsOptInOnly) {
  auto report = core::CaptureAnalyzer::analyze(y2_packets(), options_with(2));
  ASSERT_FALSE(report.timings.empty());
  std::string plain = core::render_report(report, {});
  EXPECT_EQ(plain.find("Stage timings"), std::string::npos);
  core::RenderOptions render_options;
  render_options.profile = true;
  std::string profiled = core::render_report(report, {}, render_options);
  EXPECT_NE(profiled.find("Stage timings"), std::string::npos);
  // The JSON surface never carries timings.
  EXPECT_EQ(core::report_to_json(report).find("timing"), std::string::npos);
}

}  // namespace
}  // namespace uncharted
