#include "core/names.hpp"

#include <gtest/gtest.h>

#include "tests/analysis/testlib.hpp"

namespace uncharted::core {
namespace {

TEST(Names, TopologyMapCoversWholeFleet) {
  auto topo = sim::Topology::paper_topology();
  auto names = name_map(topo);
  EXPECT_EQ(names.size(), 4u + 58u);
  EXPECT_EQ(names.at(topo.servers[0].ip), "C1");
  EXPECT_EQ(names.at(topo.servers[3].ip), "C4");
  EXPECT_EQ(names.at(topo.find_outstation(37)->ip), "O37");
}

TEST(Names, LookupFallsBackToDottedQuad) {
  NameMap names;
  auto ip = net::Ipv4Addr::from_octets(192, 168, 1, 1);
  EXPECT_EQ(name_of(names, ip), "192.168.1.1");
  names[ip] = "attacker";
  EXPECT_EQ(name_of(names, ip), "attacker");
}

TEST(Names, InferFromTrafficUsesPortRoles) {
  testlib::CaptureBuilder cb;
  auto server = testlib::ip(10, 0, 0, 9);
  auto station = testlib::ip(10, 1, 7, 7);
  cb.apdu(0, server, station, true,
          testlib::i_apdu(testlib::float_asdu(7, 1, 1.0f)));
  cb.apdu(10, server, station, false, iec104::Apdu::make_s(1));
  auto ds = analysis::CaptureDataset::build(cb.packets());
  auto names = infer_names(ds);
  EXPECT_EQ(names.at(station), "station-10.1.7.7");
  EXPECT_EQ(names.at(server), "server-10.0.0.9");
}

TEST(Names, InferIgnoresNonIecEndpoints) {
  auto names = infer_names(analysis::CaptureDataset::build({}));
  EXPECT_TRUE(names.empty());
}

}  // namespace
}  // namespace uncharted::core
