// The checkpoint container: atomic replace, generation rotation, and
// rejection of every torn-write artifact a crash can leave behind.
#include "core/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "faultinject/sysfault.hpp"

namespace uncharted::core {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "checkpoint_test_" + name;
}

std::vector<std::uint8_t> payload_of(std::initializer_list<int> bytes) {
  std::vector<std::uint8_t> out;
  for (int b : bytes) out.push_back(static_cast<std::uint8_t>(b));
  return out;
}

void write_raw(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
}

std::vector<std::uint8_t> read_raw(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(f), std::istreambuf_iterator<char>()};
}

TEST(Checkpoint, RoundTripsPayload) {
  auto path = temp_path("roundtrip.ckpt");
  std::filesystem::remove(path);
  auto payload = payload_of({1, 2, 3, 4, 5, 0xff, 0});
  ASSERT_TRUE(write_checkpoint_file(path, payload).ok());
  auto back = read_checkpoint_file(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, payload);
}

TEST(Checkpoint, EmptyPayloadIsValid) {
  auto path = temp_path("empty.ckpt");
  std::filesystem::remove(path);
  ASSERT_TRUE(write_checkpoint_file(path, {}).ok());
  auto back = read_checkpoint_file(path);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->empty());
}

TEST(Checkpoint, SecondWriteRotatesPreviousGeneration) {
  auto path = temp_path("rotate.ckpt");
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".1");
  auto first = payload_of({10, 11, 12});
  auto second = payload_of({20, 21});
  ASSERT_TRUE(write_checkpoint_file(path, first).ok());
  ASSERT_TRUE(write_checkpoint_file(path, second).ok());

  auto primary = read_checkpoint_file(path);
  auto rotated = read_checkpoint_file(path + ".1");
  ASSERT_TRUE(primary.ok());
  ASSERT_TRUE(rotated.ok());
  EXPECT_EQ(*primary, second);
  EXPECT_EQ(*rotated, first);
}

TEST(Checkpoint, MissingFileIsCleanError) {
  auto missing = temp_path("nonexistent.ckpt");
  std::filesystem::remove(missing);
  auto r = read_checkpoint_file(missing);
  EXPECT_FALSE(r.ok());
}

TEST(Checkpoint, TruncatedFileRejected) {
  auto path = temp_path("truncated.ckpt");
  std::filesystem::remove(path);
  ASSERT_TRUE(write_checkpoint_file(path, payload_of({1, 2, 3, 4, 5, 6})).ok());
  auto bytes = read_raw(path);
  ASSERT_GT(bytes.size(), 4u);
  // Cut mid-payload: the crash-during-write shape rename protects against,
  // simulated directly.
  bytes.resize(bytes.size() - 3);
  write_raw(path, bytes);
  auto r = read_checkpoint_file(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "checkpoint-truncated");
}

TEST(Checkpoint, CorruptedPayloadFailsCrc) {
  auto path = temp_path("crc.ckpt");
  std::filesystem::remove(path);
  ASSERT_TRUE(write_checkpoint_file(path, payload_of({1, 2, 3, 4, 5, 6})).ok());
  auto bytes = read_raw(path);
  bytes.back() ^= 0x40;  // flip a payload bit; header stays plausible
  write_raw(path, bytes);
  auto r = read_checkpoint_file(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "checkpoint-crc");
}

TEST(Checkpoint, WrongMagicRejected) {
  auto path = temp_path("magic.ckpt");
  write_raw(path, payload_of({'P', 'K', 0x03, 0x04, 0, 0, 0, 0, 0, 0, 0, 0,
                              0, 0, 0, 0, 0, 0, 0, 0}));
  auto r = read_checkpoint_file(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "checkpoint-magic");
}

TEST(Checkpoint, LatestFallsBackToRotationWhenPrimaryCorrupt) {
  auto path = temp_path("fallback.ckpt");
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".1");
  auto older = payload_of({7, 7, 7});
  ASSERT_TRUE(write_checkpoint_file(path, older).ok());
  ASSERT_TRUE(write_checkpoint_file(path, payload_of({8, 8, 8})).ok());

  auto bytes = read_raw(path);
  bytes.resize(6);  // destroy the primary generation
  write_raw(path, bytes);

  auto r = read_latest_checkpoint(path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, older);
}

TEST(Checkpoint, LatestFailsWhenBothGenerationsUnusable) {
  auto path = temp_path("allbad.ckpt");
  write_raw(path, payload_of({0xde, 0xad}));
  write_raw(path + ".1", payload_of({0xbe, 0xef}));
  auto r = read_latest_checkpoint(path);
  EXPECT_FALSE(r.ok());
}

// --- Torn-write hardening: every on-disk state a killed writer can leave ---

TEST(Checkpoint, TornPrimaryNeverRotatedOverValidFallback) {
  // A writer torn mid-overwrite leaves a corrupt primary next to a valid
  // `.1`. The next successful write must NOT rotate the corrupt primary
  // over the last good generation.
  auto path = temp_path("torn_rotate.ckpt");
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".1");
  auto gen1 = payload_of({1, 1, 1});
  auto gen3 = payload_of({3, 3, 3});
  ASSERT_TRUE(write_checkpoint_file(path, gen1).ok());
  ASSERT_TRUE(write_checkpoint_file(path, payload_of({2, 2, 2})).ok());
  // .1 now holds gen1. Tear the primary (gen2).
  auto bytes = read_raw(path);
  bytes.resize(7);
  write_raw(path, bytes);

  ASSERT_TRUE(write_checkpoint_file(path, gen3).ok());
  auto primary = read_checkpoint_file(path);
  auto fallback = read_checkpoint_file(path + ".1");
  ASSERT_TRUE(primary.ok());
  ASSERT_TRUE(fallback.ok());
  EXPECT_EQ(*primary, gen3);
  EXPECT_EQ(*fallback, gen1) << "torn primary was rotated over the good .1";
}

TEST(Checkpoint, ValidTornPrimaryStillRotatesNormally) {
  // When the primary is intact, rotation must keep working even though the
  // writer now validates before rotating.
  auto path = temp_path("still_rotates.ckpt");
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".1");
  auto gen1 = payload_of({1});
  auto gen2 = payload_of({2});
  ASSERT_TRUE(write_checkpoint_file(path, gen1).ok());
  ASSERT_TRUE(write_checkpoint_file(path, gen2).ok());
  auto rotated = read_checkpoint_file(path + ".1");
  ASSERT_TRUE(rotated.ok());
  EXPECT_EQ(*rotated, gen1);
}

TEST(Checkpoint, KilledBeforeRenameLeavesStaleTmpRestoreNeedsNoCleanup) {
  // Writer killed after writing `.tmp` but before the rename: a truncated
  // `.tmp` sits next to a valid `.1` and no primary. Restore must fall
  // back to `.1` with the stale `.tmp` still on disk, and the next write
  // must simply replace the stale `.tmp`.
  auto path = temp_path("stale_tmp.ckpt");
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".1");
  std::filesystem::remove(path + ".tmp");
  auto gen1 = payload_of({9, 9, 9});
  ASSERT_TRUE(write_checkpoint_file(path, gen1).ok());
  std::filesystem::rename(path, path + ".1");  // primary became the fallback
  write_raw(path + ".tmp", payload_of({0x55, 0x4e}));  // torn mid-header

  auto r = read_latest_checkpoint(path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, gen1);

  auto gen2 = payload_of({10, 10});
  ASSERT_TRUE(write_checkpoint_file(path, gen2).ok());
  auto primary = read_checkpoint_file(path);
  ASSERT_TRUE(primary.ok());
  EXPECT_EQ(*primary, gen2);
}

TEST(Checkpoint, WriterKilledMidRotationSequenceIsRecoverable) {
  // Walk the writer's own sequence (write .tmp, rotate primary to .1,
  // rename .tmp to primary) and verify read_latest_checkpoint() recovers
  // a full generation at every intermediate state a SIGKILL can expose.
  auto path = temp_path("kill_states.ckpt");
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".1");
  std::filesystem::remove(path + ".tmp");
  auto gen1 = payload_of({1, 2, 3});
  ASSERT_TRUE(write_checkpoint_file(path, gen1).ok());

  // State 1: killed mid-.tmp write (torn tmp, intact primary).
  write_raw(path + ".tmp", payload_of({0x55}));
  auto r1 = read_latest_checkpoint(path);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(*r1, gen1);

  // State 2: killed after rotating primary to .1, before the final rename
  // (valid complete .tmp, valid .1, no primary). The previous generation
  // is the newest *visible* one and must win.
  std::filesystem::remove(path + ".tmp");
  auto gen2 = payload_of({4, 5, 6});
  ASSERT_TRUE(write_checkpoint_file(path, gen2).ok());  // .1 = gen1
  std::filesystem::rename(path, path + ".0-being-renamed");
  auto r2 = read_latest_checkpoint(path);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(*r2, gen1);
  std::filesystem::rename(path + ".0-being-renamed", path);

  // State 3: back to normal, the full sequence completes.
  auto r3 = read_latest_checkpoint(path);
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(*r3, gen2);
}

// --- Storage-fault durability: the writer's syscall contract ------------

/// Wraps the real kernel, records the write path's op sequence, and fails
/// scripted calls — the deterministic half of the chaos tests (FaultySysOps
/// is the probabilistic half).
class RecordingSysOps final : public faultinject::SysOps {
 public:
  std::vector<std::string> events;
  bool fail_writes_enospc = false;
  bool fail_fsync_eio = false;
  std::string fail_rename_to;  // fail renames whose target is this path

  ssize_t read(int fd, void* buf, std::size_t n) override {
    return real().read(fd, buf, n);
  }
  ssize_t write(int fd, const void* buf, std::size_t n) override {
    if (fail_writes_enospc) {
      events.push_back("write-enospc:" + name_of(fd));
      errno = ENOSPC;
      return -1;
    }
    events.push_back("write:" + name_of(fd));
    return real().write(fd, buf, n);
  }
  ssize_t recv(int fd, void* buf, std::size_t n, int flags) override {
    return real().recv(fd, buf, n, flags);
  }
  ssize_t send(int fd, const void* buf, std::size_t n, int flags) override {
    return real().send(fd, buf, n, flags);
  }
  int accept(int fd, sockaddr* addr, socklen_t* len) override {
    return real().accept(fd, addr, len);
  }
  int poll_wait(pollfd* fds, nfds_t nfds, int timeout_ms) override {
    return real().poll_wait(fds, nfds, timeout_ms);
  }
#if UNCHARTED_SYSFAULT_HAVE_EPOLL
  int epoll_wait(int epfd, epoll_event* evs, int max, int timeout_ms) override {
    return real().epoll_wait(epfd, evs, max, timeout_ms);
  }
#endif
  int open(const char* path, int flags, unsigned mode) override {
    const int fd = real().open(path, flags, mode);
    if (fd >= 0) names_[fd] = std::filesystem::path(path).filename().string();
    events.push_back("open:" + std::string(path));
    return fd;
  }
  int close(int fd) override {
    events.push_back("close:" + name_of(fd));
    names_.erase(fd);
    return real().close(fd);
  }
  int fsync(int fd) override {
    if (fail_fsync_eio) {
      events.push_back("fsync-eio:" + name_of(fd));
      errno = EIO;
      return -1;
    }
    events.push_back("fsync:" + name_of(fd));
    return real().fsync(fd);
  }
  int rename(const char* from, const char* to) override {
    if (!fail_rename_to.empty() && fail_rename_to == to) {
      events.push_back("rename-eio");
      errno = EIO;
      return -1;
    }
    events.push_back("rename:" + std::filesystem::path(from).filename().string() +
                     "->" + std::filesystem::path(to).filename().string());
    return real().rename(from, to);
  }

 private:
  static faultinject::SysOps& real() { return faultinject::real_sys_ops(); }
  std::string name_of(int fd) const {
    auto it = names_.find(fd);
    return it != names_.end() ? it->second : "fd" + std::to_string(fd);
  }
  std::map<int, std::string> names_;
};

std::size_t index_of_prefix(const std::vector<std::string>& events,
                            const std::string& prefix) {
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].rfind(prefix, 0) == 0) return i;
  }
  return events.size();
}

TEST(CheckpointDurability, TmpIsFsyncedBeforeRenameAndDirAfter) {
  auto path = temp_path("order.ckpt");
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".1");
  RecordingSysOps sys;
  ASSERT_TRUE(write_checkpoint_file(path, payload_of({1, 2, 3}), &sys).ok());

  const std::string tmp_name =
      std::filesystem::path(path + ".tmp").filename().string();
  const std::size_t tmp_fsync = index_of_prefix(sys.events, "fsync:" + tmp_name);
  const std::size_t rename_in = index_of_prefix(sys.events, "rename:");
  ASSERT_LT(tmp_fsync, sys.events.size()) << "tmp file was never fsynced";
  ASSERT_LT(rename_in, sys.events.size());
  EXPECT_LT(tmp_fsync, rename_in)
      << "rename happened before the tmp fsync — a crash could expose a "
         "torn file under the durable name";

  // The parent directory is fsynced after the rename (making it durable).
  bool dir_fsync_after_rename = false;
  for (std::size_t i = rename_in + 1; i < sys.events.size(); ++i) {
    if (sys.events[i].rfind("fsync:", 0) == 0) dir_fsync_after_rename = true;
  }
  EXPECT_TRUE(dir_fsync_after_rename);
}

TEST(CheckpointDurability, FailedFsyncKeepsPreviousGenerationAndRemovesTmp) {
  auto path = temp_path("fsyncfail.ckpt");
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".1");
  auto gen1 = payload_of({1, 1});
  ASSERT_TRUE(write_checkpoint_file(path, gen1).ok());

  RecordingSysOps sys;
  sys.fail_fsync_eio = true;
  auto st = write_checkpoint_file(path, payload_of({2, 2}), &sys);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, "checkpoint-fsync");

  auto back = read_latest_checkpoint(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, gen1) << "failed fsync corrupted the visible generation";
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"))
      << "un-durable tmp left behind where a restart could trust it";
}

TEST(CheckpointDurability, EnospcMidWriteLeavesPreviousRestorable) {
  auto path = temp_path("enospc.ckpt");
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".1");
  auto gen1 = payload_of({7, 8, 9});
  ASSERT_TRUE(write_checkpoint_file(path, gen1).ok());

  RecordingSysOps sys;
  sys.fail_writes_enospc = true;
  auto st = write_checkpoint_file(path, payload_of({10}), &sys);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, "checkpoint-write");

  auto back = read_latest_checkpoint(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, gen1);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

  // The disk comes back: the next write recovers without cleanup.
  auto gen2 = payload_of({11, 12});
  ASSERT_TRUE(write_checkpoint_file(path, gen2).ok());
  auto now = read_latest_checkpoint(path);
  ASSERT_TRUE(now.ok());
  EXPECT_EQ(*now, gen2);
}

TEST(CheckpointDurability, TornRenameKeepsLastGoodGenerationVisible) {
  auto path = temp_path("tornrename.ckpt");
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".1");
  std::filesystem::remove(path + ".tmp");
  auto gen1 = payload_of({1, 2});
  ASSERT_TRUE(write_checkpoint_file(path, gen1).ok());

  RecordingSysOps sys;
  sys.fail_rename_to = path;  // the final rename into the durable name
  auto st = write_checkpoint_file(path, payload_of({3, 4}), &sys);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, "checkpoint-rename");

  // Rotation already moved gen1 to `.1`; the torn rename must leave it
  // restorable (tmp may remain — it is not a durable name).
  auto back = read_latest_checkpoint(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, gen1);

  // Healthy disk again: the writer replaces the stale tmp and completes.
  auto gen2 = payload_of({5, 6});
  ASSERT_TRUE(write_checkpoint_file(path, gen2).ok());
  auto now = read_latest_checkpoint(path);
  ASSERT_TRUE(now.ok());
  EXPECT_EQ(*now, gen2);
}

TEST(CheckpointDurability, FaultySysOpsStormEventuallySucceedsAndNeverTears) {
  // Probabilistic sweep: under a heavy seeded storage-fault plan, every
  // write either fails cleanly (previous generation restorable) or
  // succeeds; after enough retries one write lands. No intermediate state
  // may ever make read_latest_checkpoint fail once a first write existed.
  auto path = temp_path("storm.ckpt");
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".1");
  std::filesystem::remove(path + ".tmp");
  ASSERT_TRUE(write_checkpoint_file(path, payload_of({0})).ok());

  faultinject::FaultySysOps sys(faultinject::SysFaultPlan::storage(0.4, 99));
  int successes = 0;
  for (int i = 1; i <= 60; ++i) {
    auto payload = payload_of({i});
    auto st = write_checkpoint_file(path, payload, &sys);
    auto visible = read_latest_checkpoint(path);
    ASSERT_TRUE(visible.ok())
        << "iteration " << i << ": no restorable generation after "
        << (st.ok() ? "success" : st.error().str());
    if (st.ok()) {
      ++successes;
      EXPECT_EQ(*visible, payload);
    }
  }
  EXPECT_GT(successes, 0) << "storage plan at 0.4 starved every write";
  EXPECT_GT(sys.log().total(), 0u);
}

}  // namespace
}  // namespace uncharted::core
