// The checkpoint container: atomic replace, generation rotation, and
// rejection of every torn-write artifact a crash can leave behind.
#include "core/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace uncharted::core {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "checkpoint_test_" + name;
}

std::vector<std::uint8_t> payload_of(std::initializer_list<int> bytes) {
  std::vector<std::uint8_t> out;
  for (int b : bytes) out.push_back(static_cast<std::uint8_t>(b));
  return out;
}

void write_raw(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
}

std::vector<std::uint8_t> read_raw(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(f), std::istreambuf_iterator<char>()};
}

TEST(Checkpoint, RoundTripsPayload) {
  auto path = temp_path("roundtrip.ckpt");
  std::filesystem::remove(path);
  auto payload = payload_of({1, 2, 3, 4, 5, 0xff, 0});
  ASSERT_TRUE(write_checkpoint_file(path, payload).ok());
  auto back = read_checkpoint_file(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, payload);
}

TEST(Checkpoint, EmptyPayloadIsValid) {
  auto path = temp_path("empty.ckpt");
  std::filesystem::remove(path);
  ASSERT_TRUE(write_checkpoint_file(path, {}).ok());
  auto back = read_checkpoint_file(path);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->empty());
}

TEST(Checkpoint, SecondWriteRotatesPreviousGeneration) {
  auto path = temp_path("rotate.ckpt");
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".1");
  auto first = payload_of({10, 11, 12});
  auto second = payload_of({20, 21});
  ASSERT_TRUE(write_checkpoint_file(path, first).ok());
  ASSERT_TRUE(write_checkpoint_file(path, second).ok());

  auto primary = read_checkpoint_file(path);
  auto rotated = read_checkpoint_file(path + ".1");
  ASSERT_TRUE(primary.ok());
  ASSERT_TRUE(rotated.ok());
  EXPECT_EQ(*primary, second);
  EXPECT_EQ(*rotated, first);
}

TEST(Checkpoint, MissingFileIsCleanError) {
  auto missing = temp_path("nonexistent.ckpt");
  std::filesystem::remove(missing);
  auto r = read_checkpoint_file(missing);
  EXPECT_FALSE(r.ok());
}

TEST(Checkpoint, TruncatedFileRejected) {
  auto path = temp_path("truncated.ckpt");
  std::filesystem::remove(path);
  ASSERT_TRUE(write_checkpoint_file(path, payload_of({1, 2, 3, 4, 5, 6})).ok());
  auto bytes = read_raw(path);
  ASSERT_GT(bytes.size(), 4u);
  // Cut mid-payload: the crash-during-write shape rename protects against,
  // simulated directly.
  bytes.resize(bytes.size() - 3);
  write_raw(path, bytes);
  auto r = read_checkpoint_file(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "checkpoint-truncated");
}

TEST(Checkpoint, CorruptedPayloadFailsCrc) {
  auto path = temp_path("crc.ckpt");
  std::filesystem::remove(path);
  ASSERT_TRUE(write_checkpoint_file(path, payload_of({1, 2, 3, 4, 5, 6})).ok());
  auto bytes = read_raw(path);
  bytes.back() ^= 0x40;  // flip a payload bit; header stays plausible
  write_raw(path, bytes);
  auto r = read_checkpoint_file(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "checkpoint-crc");
}

TEST(Checkpoint, WrongMagicRejected) {
  auto path = temp_path("magic.ckpt");
  write_raw(path, payload_of({'P', 'K', 0x03, 0x04, 0, 0, 0, 0, 0, 0, 0, 0,
                              0, 0, 0, 0, 0, 0, 0, 0}));
  auto r = read_checkpoint_file(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "checkpoint-magic");
}

TEST(Checkpoint, LatestFallsBackToRotationWhenPrimaryCorrupt) {
  auto path = temp_path("fallback.ckpt");
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".1");
  auto older = payload_of({7, 7, 7});
  ASSERT_TRUE(write_checkpoint_file(path, older).ok());
  ASSERT_TRUE(write_checkpoint_file(path, payload_of({8, 8, 8})).ok());

  auto bytes = read_raw(path);
  bytes.resize(6);  // destroy the primary generation
  write_raw(path, bytes);

  auto r = read_latest_checkpoint(path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, older);
}

TEST(Checkpoint, LatestFailsWhenBothGenerationsUnusable) {
  auto path = temp_path("allbad.ckpt");
  write_raw(path, payload_of({0xde, 0xad}));
  write_raw(path + ".1", payload_of({0xbe, 0xef}));
  auto r = read_latest_checkpoint(path);
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace uncharted::core
