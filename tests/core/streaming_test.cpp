// StreamingAnalyzer: batch equivalence, crash/restore via checkpoint,
// resource governance, and the degradation reporting around both.
#include "core/streaming.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/names.hpp"
#include "sim/capture.hpp"

namespace uncharted::core {
namespace {

const sim::CaptureResult& capture() {
  static const auto c = [] {
    return sim::generate_capture(sim::CaptureConfig::y1(90.0));
  }();
  return c;
}

CaptureAnalyzer::Options batch_options() {
  CaptureAnalyzer::Options options;
  options.keep_series = false;
  return options;
}

const AnalysisReport& batch_report() {
  static const auto report =
      CaptureAnalyzer::analyze(capture().packets, batch_options());
  return report;
}

std::string temp_path(const std::string& name) {
  auto path = ::testing::TempDir() + "streaming_test_" + name;
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".1");
  return path;
}

void expect_headlines_match(const AnalysisReport& got, const AnalysisReport& want) {
  EXPECT_EQ(got.stats.packets, want.stats.packets);
  EXPECT_EQ(got.stats.tcp_packets, want.stats.tcp_packets);
  EXPECT_EQ(got.stats.apdus, want.stats.apdus);
  EXPECT_EQ(got.stats.apdu_failures, want.stats.apdu_failures);
  EXPECT_EQ(got.flows.summary.total, want.flows.summary.total);
  EXPECT_EQ(got.station_types.size(), want.station_types.size());
  EXPECT_EQ(got.clustering.profiles.size(), want.clustering.profiles.size());
  EXPECT_EQ(got.bandwidth.total_bytes, want.bandwidth.total_bytes);
}

TEST(Streaming, MatchesBatchAnalyzerExactly) {
  StreamingOptions options;
  options.analyze = batch_options();
  options.batch_packets = 256;  // force many slices
  StreamingAnalyzer analyzer(options);
  analyzer.add_packets(capture().packets);
  auto report = analyzer.finalize();

  EXPECT_FALSE(report.degradation.degraded());
  expect_headlines_match(report, batch_report());
}

TEST(Streaming, CheckpointRestoreResumesMidStream) {
  auto path = temp_path("resume.ckpt");
  StreamingOptions options;
  options.analyze = batch_options();
  options.checkpoint_path = path;

  const auto& packets = capture().packets;
  const std::size_t cut = packets.size() / 2;
  {
    // First incarnation: half the capture, one explicit checkpoint, then
    // gone without finalize — the crash case.
    StreamingAnalyzer first(options);
    first.add_packets({packets.data(), cut});
    ASSERT_TRUE(first.checkpoint_now().ok());
  }

  StreamingAnalyzer second(options);
  ASSERT_TRUE(second.try_restore());
  ASSERT_EQ(second.packets_consumed(), cut);
  second.add_packets({packets.data() + cut, packets.size() - cut});
  auto report = second.finalize();
  expect_headlines_match(report, batch_report());
}

TEST(Streaming, PeriodicCheckpointsAreWritten) {
  auto path = temp_path("periodic.ckpt");
  StreamingOptions options;
  options.analyze = batch_options();
  options.checkpoint_path = path;
  options.checkpoint_every_packets = 200;

  StreamingAnalyzer analyzer(options);
  const auto& packets = capture().packets;
  for (std::size_t i = 0; i < 500 && i < packets.size(); ++i) {
    analyzer.add_packet(packets[i]);
  }
  EXPECT_TRUE(std::filesystem::exists(path));

  // A fresh analyzer restores from the periodic snapshot alone.
  StreamingAnalyzer resumed(options);
  ASSERT_TRUE(resumed.try_restore());
  EXPECT_GT(resumed.packets_consumed(), 0u);
  EXPECT_LE(resumed.packets_consumed(), 500u);
  EXPECT_EQ(resumed.packets_consumed() % 200, 0u);
}

TEST(Streaming, CorruptPrimaryFallsBackToRotatedGeneration) {
  auto path = temp_path("fallback.ckpt");
  StreamingOptions options;
  options.analyze = batch_options();
  options.checkpoint_path = path;

  const auto& packets = capture().packets;
  {
    StreamingAnalyzer a(options);
    a.add_packets({packets.data(), std::size_t{300}});
    ASSERT_TRUE(a.checkpoint_now().ok());  // generation 1: 300 packets
    a.add_packets({packets.data() + 300, std::size_t{200}});
    ASSERT_TRUE(a.checkpoint_now().ok());  // generation 0: 500 packets
  }
  // Tear the primary the way a mid-write crash would.
  std::filesystem::resize_file(path, 32);

  StreamingAnalyzer resumed(options);
  ASSERT_TRUE(resumed.try_restore());
  EXPECT_EQ(resumed.packets_consumed(), 300u);
}

TEST(Streaming, GarbageCheckpointsStartFreshNotCrash) {
  auto path = temp_path("garbage.ckpt");
  StreamingOptions options;
  options.analyze = batch_options();
  options.checkpoint_path = path;
  for (const auto& victim : {path, path + ".1"}) {
    std::ofstream f(victim, std::ios::binary);
    f << "not a checkpoint at all";
  }
  StreamingAnalyzer analyzer(options);
  EXPECT_FALSE(analyzer.try_restore());
  EXPECT_EQ(analyzer.packets_consumed(), 0u);

  analyzer.add_packets(capture().packets);
  auto report = analyzer.finalize();
  expect_headlines_match(report, batch_report());
}

TEST(Streaming, RestoreWithoutCheckpointPathIsFresh) {
  StreamingAnalyzer analyzer(StreamingOptions{});
  EXPECT_FALSE(analyzer.try_restore());
  auto status = analyzer.checkpoint_now();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, "checkpoint-unconfigured");
}

TEST(Streaming, ResourceBudgetsSurfaceAsDegradation) {
  StreamingOptions options;
  options.analyze = batch_options();
  options.budgets.max_flow_entries = 8;
  options.budgets.max_records = 512;
  options.budgets.max_parsers = 4;

  StreamingAnalyzer analyzer(options);
  analyzer.add_packets(capture().packets);
  EXPECT_TRUE(analyzer.pressure().any());
  auto report = analyzer.finalize();

  const auto& rp = report.degradation.resources;
  EXPECT_TRUE(report.degradation.degraded());
  EXPECT_GT(rp.flow_evictions + rp.records_evicted + rp.parsers_evicted, 0u);
  EXPECT_LE(rp.peak_flow_entries, 8u);
  EXPECT_LE(rp.peak_records, 512u);
  bool mentioned = false;
  for (const auto& w : report.degradation.warnings) {
    if (w.find("resource budgets") != std::string::npos) mentioned = true;
  }
  EXPECT_TRUE(mentioned);

  NameMap names;
  auto rendered = render_report(report, names);
  EXPECT_NE(rendered.find("resource pressure:"), std::string::npos);
}

TEST(Streaming, UnlimitedBudgetsReportNoPressure) {
  StreamingOptions options;
  options.analyze = batch_options();
  StreamingAnalyzer analyzer(options);
  analyzer.add_packets(capture().packets);
  EXPECT_FALSE(analyzer.pressure().any());
  auto report = analyzer.finalize();
  EXPECT_FALSE(report.degradation.resources.any());
}

TEST(Streaming, RepeatedWarningsRenderOnceWithCount) {
  // Dedup rendering: a long soak repeating the same condition every batch
  // must not scroll the report; distinct lines keep first-seen order.
  AnalysisReport report = batch_report();
  report.degradation.pcap_truncated = true;  // force the degraded section
  report.degradation.warnings = {"flow table under pressure",
                                 "flow table under pressure",
                                 "checkpoint write failed: disk full",
                                 "flow table under pressure"};
  NameMap names;
  auto rendered = render_report(report, names);

  auto first = rendered.find("warning: flow table under pressure (x3)");
  EXPECT_NE(first, std::string::npos);
  EXPECT_EQ(rendered.find("warning: flow table under pressure",
                          first + 1),
            std::string::npos);
  // The singleton warning renders without a count suffix.
  EXPECT_NE(rendered.find("warning: checkpoint write failed: disk full\n"),
            std::string::npos);
}

TEST(Streaming, AnalyzeFileStreamingMatchesAnalyzeFile) {
  auto pcap = ::testing::TempDir() + "streaming_test_roundtrip.pcap";
  ASSERT_TRUE(sim::write_capture_pcap(capture(), pcap).ok());

  StreamingOptions options;
  options.analyze = batch_options();
  options.checkpoint_path = temp_path("file.ckpt");
  options.checkpoint_every_packets = 1000;
  auto streamed = analyze_file_streaming(pcap, options);
  ASSERT_TRUE(streamed.ok());
  auto batch = CaptureAnalyzer::analyze_file(pcap, batch_options());
  ASSERT_TRUE(batch.ok());
  expect_headlines_match(*streamed, *batch);

  // Second run: the shutdown checkpoint from the first run covers the
  // whole file, so the resume cursor skips everything and the report is
  // still identical.
  auto resumed = analyze_file_streaming(pcap, options);
  ASSERT_TRUE(resumed.ok());
  expect_headlines_match(*resumed, *batch);
}

}  // namespace
}  // namespace uncharted::core
