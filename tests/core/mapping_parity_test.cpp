// mmap-vs-read parity (DESIGN.md §15): PcapMapping serves a capture either
// as an mmap'd span or — when the kernel refuses to map — as an owned
// buffer filled by the chunked-read fallback. Everything downstream runs
// on FrameViews either way, so the two paths must produce byte-identical
// reports on clean captures, fault-injected captures, and truncated
// files, at every thread count. FaultyFileOps::set_fail_mmap forces the
// fallback deterministically.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/analyzer.hpp"
#include "faultinject/fault.hpp"
#include "faultinject/filefault.hpp"
#include "net/mapping.hpp"
#include "sim/capture.hpp"

namespace uncharted::core {
namespace {

std::string temp_pcap(const std::string& tag) {
  return "/tmp/uncharted_parity_" + tag + ".pcap";
}

void write_packets(const std::vector<net::CapturedPacket>& packets,
                   const std::string& path) {
  auto writer = net::PcapWriter::open(path);
  ASSERT_TRUE(writer.ok()) << writer.error().str();
  for (const auto& pkt : packets) {
    ASSERT_TRUE(writer->write(pkt.ts, pkt.data).ok());
  }
  ASSERT_TRUE(writer->close().ok());
}

/// Renders the full report (the deterministic surface; timings excluded)
/// so the comparison covers every section, not a sampled stat.
std::string rendered(const AnalysisReport& report, const NameMap& names) {
  return render_report(report, names);
}

/// Analyzes `path` through the real kernel (mmap) and through a FileOps
/// whose map_ro always fails (read fallback), and requires the rendered
/// reports to match byte for byte.
void expect_parity(const std::string& path, const NameMap& names,
                   unsigned threads) {
  CaptureAnalyzer::Options options;
  options.threads = threads;

  auto via_mmap = CaptureAnalyzer::analyze_file(path, options, nullptr);
  ASSERT_TRUE(via_mmap.ok()) << via_mmap.error().str();

  faultinject::FaultyFileOps no_mmap;
  no_mmap.set_fail_mmap(true);
  auto via_read = CaptureAnalyzer::analyze_file(path, options, &no_mmap);
  ASSERT_TRUE(via_read.ok()) << via_read.error().str();
  EXPECT_GT(no_mmap.mmap_failures(), 0u) << "fallback path was not exercised";

  EXPECT_EQ(rendered(*via_mmap, names), rendered(*via_read, names))
      << "mmap and read-fallback reports diverged (threads=" << threads << ")";
  EXPECT_EQ(via_mmap->stats.packets, via_read->stats.packets);
  EXPECT_EQ(via_mmap->stats.apdus, via_read->stats.apdus);
  EXPECT_EQ(via_mmap->degradation.pcap_truncated,
            via_read->degradation.pcap_truncated);
  EXPECT_EQ(via_mmap->degradation.warnings, via_read->degradation.warnings);
}

TEST(MappingParity, CleanY1ByteIdenticalAcrossPathsAndThreads) {
  auto capture = sim::generate_capture(sim::CaptureConfig::y1(120.0));
  std::string path = temp_pcap("y1");
  write_packets(capture.packets, path);
  NameMap names = name_map(capture.topology);
  expect_parity(path, names, 1);
  expect_parity(path, names, 8);
  std::remove(path.c_str());
}

TEST(MappingParity, CleanY2ByteIdenticalAcrossPathsAndThreads) {
  auto capture = sim::generate_capture(sim::CaptureConfig::y2(120.0));
  std::string path = temp_pcap("y2");
  write_packets(capture.packets, path);
  NameMap names = name_map(capture.topology);
  expect_parity(path, names, 1);
  expect_parity(path, names, 8);
  std::remove(path.c_str());
}

TEST(MappingParity, FaultInjectedCaptureStaysIdentical) {
  // Damaged inputs are where the two byte sources could plausibly drift
  // (short frames, garbage mid-file): corrupt 2% of packets every way the
  // fault injector knows, then require parity on the damaged file too.
  auto capture = sim::generate_capture(sim::CaptureConfig::y1(120.0));
  auto faulted =
      faultinject::apply_faults(capture.packets, faultinject::FaultConfig::uniform(0.02));
  ASSERT_GT(faulted.log.total(), 0u);
  std::string path = temp_pcap("faulted");
  write_packets(faulted.packets, path);
  NameMap names = name_map(capture.topology);
  expect_parity(path, names, 1);
  expect_parity(path, names, 8);
  std::remove(path.c_str());
}

TEST(MappingParity, TruncatedTailReportedOnBothPaths) {
  // A capture cut mid-record (crashed tcpdump): the cursor must surface
  // the truncation warning — identically — whether the bytes came from a
  // mapping or the read fallback.
  auto capture = sim::generate_capture(sim::CaptureConfig::y1(60.0));
  std::string path = temp_pcap("truncated");
  write_packets(capture.packets, path);

  std::ifstream in(path, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(bytes.size(), 100u);
  bytes.resize(bytes.size() - 7);  // mid-record: not a header boundary
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();

  NameMap names = name_map(capture.topology);
  CaptureAnalyzer::Options options;
  auto report = CaptureAnalyzer::analyze_file(path, options, nullptr);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->degradation.pcap_truncated);
  ASSERT_FALSE(report->degradation.warnings.empty());
  EXPECT_NE(report->degradation.warnings.front().find("cut short"),
            std::string::npos);

  expect_parity(path, names, 1);
  expect_parity(path, names, 8);
  std::remove(path.c_str());
}

TEST(MappingParity, MappingActuallyMapsOnRealKernel) {
  // Guard against the fallback silently becoming the only path: on a real
  // file the mapping must be a true mmap.
  auto capture = sim::generate_capture(sim::CaptureConfig::y1(30.0));
  std::string path = temp_pcap("mapped");
  write_packets(capture.packets, path);
  auto mapping = net::PcapMapping::open(path, nullptr);
  ASSERT_TRUE(mapping.ok());
  EXPECT_TRUE(mapping->mapped());
  EXPECT_GT(mapping->bytes().size(), 24u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace uncharted::core
