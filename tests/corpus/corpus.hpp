// Shared seed corpus for the robustness sweep and the libFuzzer harnesses.
//
// One place defines the interesting inputs — valid messages for every
// decoder, the paper's §6.1 non-conforming IEC 104 variants (O37's 2-octet
// IOA, O53/O58/O28's 1-octet COT), and structurally broken frames
// (truncated, oversized length, corrupted checksum). The GTest sweep
// mutates these seeds in-process; the libFuzzer harnesses start their
// exploration from the same bytes via write_seed_files().
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace uncharted::corpus {

/// Which decoder family a seed primarily targets. Every harness must
/// survive every seed regardless (decoders reject foreign bytes, they
/// never crash on them), so cross-feeding categories is fair game.
enum class Category {
  kIec104,   ///< APDU/ASDU frames (standard + legacy profiles)
  kFt12,     ///< IEC 101 serial link frames
  kIccp,     ///< TPKT/COTP/ICCP wire messages
  kC37118,   ///< synchrophasor frames
  kFrame,    ///< Ethernet/IPv4/TCP frames and pcap buffers
  kConformance,  ///< op scripts for the IEC 104 conformance state machine
  kTapstream,    ///< live-ingest tapstream wire messages (hello..fin-ack)
};

std::string category_name(Category c);

struct Seed {
  std::string name;  ///< stable identifier, becomes the exported filename
  Category category;
  std::vector<std::uint8_t> bytes;
};

/// All seeds, built once on first use (encoders run, so this cannot be a
/// static initializer).
const std::vector<Seed>& seeds();

/// The subset for one decoder family.
std::vector<const Seed*> seeds_for(Category c);

/// Writes each seed as <dir>/<category>/<name>.bin for use as a libFuzzer
/// starting corpus. Creates directories as needed; returns false on any
/// filesystem error.
bool write_seed_files(const std::string& dir);

}  // namespace uncharted::corpus
