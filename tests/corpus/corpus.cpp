#include "corpus/corpus.hpp"

#include <array>
#include <filesystem>
#include <fstream>
#include <initializer_list>

#include "iccp/iccp.hpp"
#include "iec101/ft12.hpp"
#include "iec104/apdu.hpp"
#include "net/frame.hpp"
#include "net/pcap.hpp"
#include "netd/wire.hpp"
#include "synchro/c37118.hpp"
#include "util/bytes.hpp"

namespace uncharted::corpus {

namespace {

std::vector<std::uint8_t> encode_apdu(const iec104::Apdu& apdu,
                                      const iec104::CodecProfile& profile) {
  auto encoded = apdu.encode(profile);
  return encoded.ok() ? std::move(encoded).take() : std::vector<std::uint8_t>{};
}

iec104::Asdu measurement_asdu() {
  iec104::Asdu asdu;
  asdu.type = iec104::TypeId::M_ME_NC_1;
  asdu.cot.cause = iec104::Cause::kSpontaneous;
  asdu.common_address = 7;
  asdu.objects.push_back({1001, iec104::ShortFloat{230.5f, {}}, std::nullopt});
  return asdu;
}

void add_iec104(std::vector<Seed>& out) {
  using iec104::Apdu;
  using iec104::CodecProfile;

  auto meas = measurement_asdu();
  out.push_back({"apdu_i_std_float", Category::kIec104,
                 encode_apdu(Apdu::make_i(4, 2, meas), CodecProfile::standard())});

  // The paper's non-conforming layouts: O37 kept a 2-octet IOA after the
  // TCP/IP upgrade; O53/O58/O28 kept a 1-octet COT.
  out.push_back({"apdu_i_o37_2octet_ioa", Category::kIec104,
                 encode_apdu(Apdu::make_i(4, 2, meas), CodecProfile::legacy_ioa())});
  out.push_back({"apdu_i_o53_1octet_cot", Category::kIec104,
                 encode_apdu(Apdu::make_i(4, 2, meas), CodecProfile::legacy_cot())});
  out.push_back({"apdu_i_legacy_both", Category::kIec104,
                 encode_apdu(Apdu::make_i(4, 2, meas), CodecProfile::legacy_both())});

  // Sequence-addressed single points (SQ bit exercise).
  iec104::Asdu seq;
  seq.type = iec104::TypeId::M_SP_NA_1;
  seq.sequence = true;
  seq.cot.cause = iec104::Cause::kInterrogatedByStation;
  seq.common_address = 7;
  for (int i = 0; i < 4; ++i) {
    seq.objects.push_back({static_cast<std::uint32_t>(2000 + i),
                           iec104::SinglePoint{(i % 2) != 0, {}}, std::nullopt});
  }
  out.push_back({"apdu_i_sq_single_points", Category::kIec104,
                 encode_apdu(Apdu::make_i(9, 9, seq), CodecProfile::standard())});

  // Time-tagged measurement (CP56Time2a on the wire).
  iec104::Asdu timed;
  timed.type = iec104::TypeId::M_ME_TF_1;
  timed.cot.cause = iec104::Cause::kSpontaneous;
  timed.common_address = 7;
  iec104::InformationObject obj;
  obj.ioa = 3001;
  obj.value = iec104::ShortFloat{59.98f, {}};
  obj.time = iec104::Cp56Time2a::from_timestamp(1560556800ULL * 1'000'000);
  timed.objects.push_back(obj);
  out.push_back({"apdu_i_time_tagged", Category::kIec104,
                 encode_apdu(Apdu::make_i(5, 3, timed), CodecProfile::standard())});

  // Interrogation command (system direction).
  iec104::Asdu gi;
  gi.type = iec104::TypeId::C_IC_NA_1;
  gi.cot.cause = iec104::Cause::kActivation;
  gi.common_address = 7;
  gi.objects.push_back({0, iec104::InterrogationCommand{20}, std::nullopt});
  out.push_back({"apdu_i_interrogation", Category::kIec104,
                 encode_apdu(Apdu::make_i(0, 0, gi), CodecProfile::standard())});

  // S- and U-format control frames.
  out.push_back({"apdu_s_ack", Category::kIec104,
                 encode_apdu(Apdu::make_s(12), CodecProfile::standard())});
  out.push_back({"apdu_u_startdt", Category::kIec104,
                 encode_apdu(Apdu::make_u(iec104::UFunction::kStartDtAct),
                             CodecProfile::standard())});
  out.push_back({"apdu_u_testfr", Category::kIec104,
                 encode_apdu(Apdu::make_u(iec104::UFunction::kTestFrAct),
                             CodecProfile::standard())});

  // Structurally broken frames the stream parser must frame around.
  auto valid = encode_apdu(Apdu::make_i(4, 2, meas), CodecProfile::standard());
  auto truncated = valid;
  if (truncated.size() > 3) truncated.resize(truncated.size() / 2);
  out.push_back({"apdu_truncated", Category::kIec104, std::move(truncated)});

  // Length octet claims more bytes than follow.
  auto oversized = valid;
  if (oversized.size() > 1) oversized[1] = 0xfd;
  out.push_back({"apdu_oversized_length", Category::kIec104, std::move(oversized)});

  out.push_back({"apdu_bad_start_byte", Category::kIec104,
                 {0x69, 0x04, 0x43, 0x00, 0x00, 0x00}});
}

// Byte streams shaped like what the fault injector leaves behind after
// loss, corruption and desync — deterministic snapshots of the damage the
// chaos sweep produces, so fuzzers start from realistic degraded inputs
// and the parser's resync taxonomy is pinned at the corpus level.
void add_fault_streams(std::vector<Seed>& out) {
  using iec104::Apdu;
  using iec104::CodecProfile;

  auto meas = measurement_asdu();
  auto i_frame = encode_apdu(Apdu::make_i(4, 2, meas), CodecProfile::standard());
  auto u_frame = encode_apdu(Apdu::make_u(iec104::UFunction::kTestFrAct),
                             CodecProfile::standard());
  auto s_frame = encode_apdu(Apdu::make_s(12), CodecProfile::standard());
  auto concat = [](std::initializer_list<std::vector<std::uint8_t>> parts) {
    std::vector<std::uint8_t> joined;
    for (const auto& p : parts) joined.insert(joined.end(), p.begin(), p.end());
    return joined;
  };

  // Garble damage: line noise between two intact APDUs (one resync).
  out.push_back({"fault_garbage_between_apdus", Category::kIec104,
                 concat({i_frame, {0xde, 0xad, 0xbe, 0xef}, i_frame})});

  // Truncation: the capture (or a skipped gap) cuts an APDU in half.
  auto half = i_frame;
  half.resize(half.size() / 2);
  out.push_back({"fault_truncated_mid_apdu", Category::kIec104,
                 concat({u_frame, half})});

  // Desync: the head of an APDU is missing, so framing lands mid-body and
  // must hunt for the next genuine 0x68.
  std::vector<std::uint8_t> tail(i_frame.begin() + 3, i_frame.end());
  out.push_back({"fault_desync_head_cut", Category::kIec104,
                 concat({tail, i_frame})});

  // A flipped length octet swallows the start of the next frame.
  auto bad_len = i_frame;
  if (bad_len.size() > 1) bad_len[1] = static_cast<std::uint8_t>(bad_len[1] + 7);
  out.push_back({"fault_corrupt_length_octet", Category::kIec104,
                 concat({bad_len, s_frame, u_frame})});

  // A bit flip inside the control field: well-framed but undecodable.
  auto bad_cf = i_frame;
  if (bad_cf.size() > 2) bad_cf[2] = 0x03;  // U-format with function bits 0
  out.push_back({"fault_bitflip_control_field", Category::kIec104,
                 concat({bad_cf, i_frame})});

  // Pure noise — nothing to resynchronize onto.
  out.push_back({"fault_all_garbage", Category::kIec104,
                 {0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa}});

  // A run of fake start bytes: every resync lands on another 0x68.
  out.push_back({"fault_start_byte_flood", Category::kIec104,
                 concat({{0x68, 0x68, 0x68, 0x68, 0x68, 0x68}, u_frame})});

  // Length below the 4-byte control-field minimum.
  out.push_back({"fault_undersized_length", Category::kIec104,
                 concat({{0x68, 0x02, 0x43, 0x00}, s_frame})});

  // The byte-level shape of a TCP retransmission that slipped through:
  // the same I-frame twice, back to back.
  out.push_back({"fault_duplicated_apdu", Category::kIec104,
                 concat({i_frame, i_frame})});

  // Control traffic interleaved with short noise bursts — the steady
  // state of a link at a few percent corruption.
  out.push_back({"fault_noisy_control_channel", Category::kIec104,
                 concat({u_frame, {0x00, 0x13}, s_frame, {0xfe}, u_frame})});
}

void add_ft12(std::vector<Seed>& out) {
  using iec101::Ft12Frame;
  using iec101::LinkControl;

  out.push_back({"ft12_single_char_ack", Category::kFt12,
                 Ft12Frame::single_char().encode()});

  LinkControl reset;
  reset.prm = true;
  reset.function = static_cast<std::uint8_t>(iec101::PrimaryFunction::kResetRemoteLink);
  out.push_back({"ft12_fixed_reset_link", Category::kFt12,
                 Ft12Frame::fixed(reset, 21).encode()});

  // Variable frame carrying a serial-profile ASDU — byte-identical to what
  // an un-reconfigured upgrade ships over TCP (paper §6.1).
  auto framed = iec101::frame_asdu(measurement_asdu(), 21, true);
  if (framed.ok()) {
    out.push_back({"ft12_variable_user_data", Category::kFt12, framed->encode()});
    auto bad_checksum = framed->encode();
    if (bad_checksum.size() > 2) bad_checksum[bad_checksum.size() - 2] ^= 0xff;
    out.push_back({"ft12_bad_checksum", Category::kFt12, std::move(bad_checksum)});
  }
}

void add_iccp(std::vector<Seed>& out) {
  iccp::Message assoc;
  assoc.type = iccp::MessageType::kAssociationRequest;
  assoc.invoke_id = 1;
  assoc.association_name = "CENTER_A-CENTER_B";
  out.push_back({"iccp_association_request", Category::kIccp, assoc.to_wire()});

  iccp::Message report;
  report.type = iccp::MessageType::kInformationReport;
  report.invoke_id = 42;
  report.points.push_back({"KV.BUS7_VOLTAGE", 347.2, 0});
  report.points.push_back({"MW.TIE_LINE_4", -121.5, 0});
  out.push_back({"iccp_information_report", Category::kIccp, report.to_wire()});

  iccp::Message read;
  read.type = iccp::MessageType::kReadRequest;
  read.invoke_id = 7;
  read.names = {"KV.BUS7_VOLTAGE"};
  out.push_back({"iccp_read_request", Category::kIccp, read.to_wire()});

  // TPKT header whose length field exceeds the available bytes.
  auto truncated = report.to_wire();
  if (truncated.size() > 6) truncated.resize(6);
  out.push_back({"iccp_truncated_tpkt", Category::kIccp, std::move(truncated)});
}

synchro::ConfigFrame pmu_config() {
  synchro::ConfigFrame cfg;
  cfg.header.idcode = 7734;
  synchro::PmuConfig pmu;
  pmu.station_name = "STATION_A";
  pmu.idcode = 7734;
  pmu.phasors_float = true;
  pmu.freq_float = true;
  pmu.phasor_names = {"VA", "VB"};
  pmu.phasor_units = {915527, 915527};
  cfg.pmus.push_back(pmu);
  return cfg;
}

void add_c37118(std::vector<Seed>& out) {
  auto cfg = pmu_config();
  out.push_back({"c37118_config2", Category::kC37118, synchro::encode_config(cfg)});

  synchro::DataFrame data;
  data.header.idcode = 7734;
  synchro::PmuData pmu;
  pmu.phasors = {{230.0, 12.0}, {-115.0, 199.2}};
  pmu.freq_deviation_mhz = 12.0;
  data.pmus.push_back(pmu);
  out.push_back({"c37118_data", Category::kC37118, synchro::encode_data(cfg, data)});

  synchro::CommandFrame cmd;
  cmd.header.idcode = 7734;
  cmd.command = synchro::Command::kTurnOnTransmission;
  out.push_back({"c37118_command", Category::kC37118, synchro::encode_command(cmd)});

  auto bad_crc = synchro::encode_config(cfg);
  if (!bad_crc.empty()) bad_crc.back() ^= 0xff;
  out.push_back({"c37118_bad_crc", Category::kC37118, std::move(bad_crc)});
}

void add_frames(std::vector<Seed>& out) {
  std::uint8_t payload[] = {0x68, 0x04, 0x43, 0x00, 0x00, 0x00};
  net::TcpSegmentSpec spec;
  spec.src_ip = net::Ipv4Addr::from_octets(10, 0, 0, 1);
  spec.dst_ip = net::Ipv4Addr::from_octets(10, 1, 0, 1);
  spec.src_port = 40000;
  spec.dst_port = 2404;
  spec.flags = 0x18;  // PSH|ACK
  spec.payload = payload;
  auto frame = net::build_tcp_frame(spec);
  out.push_back({"eth_tcp_iec104_segment", Category::kFrame, frame});

  auto short_ip = frame;
  if (short_ip.size() > 30) short_ip.resize(30);
  out.push_back({"eth_truncated_ip_header", Category::kFrame, std::move(short_ip)});

  auto bad_checksum = frame;
  if (bad_checksum.size() > 40) bad_checksum[40] ^= 0xff;
  out.push_back({"eth_corrupted_byte", Category::kFrame, std::move(bad_checksum)});

  // Minimal valid pcap: global header plus one 6-byte record.
  ByteWriter w;
  w.u32le(net::kPcapMagic);
  w.u16le(2);
  w.u16le(4);
  w.u32le(0);
  w.u32le(0);
  w.u32le(65535);
  w.u32le(1);
  w.u32le(0);
  w.u32le(0);
  w.u32le(6);
  w.u32le(6);
  for (int i = 0; i < 6; ++i) w.u8(0xaa);
  out.push_back({"pcap_one_record", Category::kFrame, w.take()});
}

// Op scripts for fuzz_conformance: byte 0 is flags (bit 0 = fresh
// connection, bit 1 = legacy whitelist off), then 5-byte records
// [op, a, b, c, d] where op & 7 selects the event (0/1 = I-frame with
// N(S) = a|b<<8 and N(R) = c|d<<8, 2 = S-frame, 3 = U-frame a%6,
// 4/5 = legacy-profile I-frame, 6 = parse failures), op & 8 sets the
// controller direction and op>>4 scales the time step. The seeds spell
// out the interesting attack shapes so mutation starts at the cliffs.
void add_conformance(std::vector<Seed>& out) {
  constexpr std::uint8_t kIOut = 0x00, kICtl = 0x08;
  constexpr std::uint8_t kSCtl = 0x0a;
  constexpr std::uint8_t kUOut = 0x03, kUCtl = 0x0b;
  constexpr std::uint8_t kFail = 0x06, kLegacyOut = 0x04;
  // U-function indices for op 3: a = 0 STARTDT act, 1 STARTDT con,
  // 2 STOPDT act, 3 STOPDT con, 4 TESTFR act, 5 TESTFR con.
  using Rec = std::array<std::uint8_t, 5>;
  auto script = [&out](const char* name, std::uint8_t flags,
                       std::initializer_list<Rec> records) {
    std::vector<std::uint8_t> bytes{flags};
    for (const auto& r : records) bytes.insert(bytes.end(), r.begin(), r.end());
    out.push_back({name, Category::kConformance, std::move(bytes)});
  };

  script("script_clean_session", 1,
         {Rec{kUCtl, 0}, Rec{kUOut, 1}, Rec{kIOut, 0}, Rec{kIOut, 1},
          Rec{kSCtl, 0, 0, 2, 0}});
  script("script_i_before_startdt", 1, {Rec{kICtl, 0}});
  script("script_desync_rewind", 1,
         {Rec{kUCtl, 0}, Rec{kUOut, 1}, Rec{kICtl, 0}, Rec{kICtl, 1},
          Rec{kICtl, 2}, Rec{kICtl, 0}, Rec{kICtl, 7}});
  script("script_ack_of_unsent", 1,
         {Rec{kUCtl, 0}, Rec{kUOut, 1}, Rec{kIOut, 0},
          Rec{kSCtl, 0, 0, 200, 0}});
  script("script_wrap_midstream", 0,
         {Rec{kIOut, 0xfe, 0x7f}, Rec{kIOut, 0xff, 0x7f}, Rec{kIOut, 0, 0},
          Rec{kIOut, 1, 0}, Rec{kSCtl, 0, 0, 2, 0}});
  script("script_confirm_storm", 1,
         {Rec{kUCtl, 1}, Rec{kUCtl, 5}, Rec{kUCtl, 5}, Rec{kUCtl, 3}});
  script("script_failure_flood", 0,
         {Rec{kFail, 0, 16, 0}, Rec{kFail, 1, 8, 4}, Rec{kFail, 2, 31, 7}});
  script("script_legacy_whitelist", 1,
         {Rec{kUCtl, 0}, Rec{kUOut, 1}, Rec{kLegacyOut, 0}, Rec{kLegacyOut + 1, 1}});
  script("script_stopdt_violation", 1,
         {Rec{kUCtl, 0}, Rec{kUOut, 1}, Rec{kICtl, 0}, Rec{kUCtl, 2},
          Rec{kUOut, 3}, Rec{kICtl, 1}});
  // One raw APDU so the stream half of the harness starts from real
  // framing too (the script half reads it as harmless ops).
  out.push_back({"stream_raw_i_frame", Category::kConformance,
                 encode_apdu(iec104::Apdu::make_i(4, 2, measurement_asdu()),
                             iec104::CodecProfile::standard())});
}

// Tapstream wire messages for fuzz_tapstream: every message kind of the
// live-ingest protocol (data/query/health hellos, the ack, a record with
// payload and its fin, the fin-ack), plus structurally broken variants so
// mutation starts at the framing cliffs.
void add_tapstream(std::vector<Seed>& out) {
  using netd::wire::Hello;
  using netd::wire::HelloKind;
  auto hello_bytes = [](HelloKind kind, std::uint64_t id, std::uint64_t total) {
    ByteWriter w;
    netd::wire::encode_hello(w, Hello{kind, id, total});
    return w.take();
  };
  out.push_back({"tap_hello_data", Category::kTapstream,
                 hello_bytes(HelloKind::kData, 42, 1000)});
  out.push_back({"tap_hello_query", Category::kTapstream,
                 hello_bytes(HelloKind::kQuery, 0, 0)});
  out.push_back({"tap_hello_health", Category::kTapstream,
                 hello_bytes(HelloKind::kHealth, 0, 0)});

  ByteWriter ack;
  netd::wire::encode_hello_ack(
      ack, {netd::wire::AckStatus::kAccepted, 512});
  out.push_back({"tap_hello_ack_resume", Category::kTapstream, ack.take()});

  // A record (header + payload) followed by the stream's fin, as a client
  // would send them back to back on the wire.
  ByteWriter rec;
  netd::wire::encode_record_header(rec, {123456789, 64, 8});
  for (int i = 0; i < 8; ++i) rec.u8(static_cast<std::uint8_t>(0x68 + i));
  netd::wire::encode_fin(rec, 1);
  out.push_back({"tap_record_then_fin", Category::kTapstream, rec.take()});

  ByteWriter fin_ack;
  netd::wire::encode_fin_ack(fin_ack, 1000);
  out.push_back({"tap_fin_ack", Category::kTapstream, fin_ack.take()});

  auto bad_magic = hello_bytes(HelloKind::kData, 7, 9);
  bad_magic[0] ^= 0xff;
  out.push_back({"tap_hello_bad_magic", Category::kTapstream,
                 std::move(bad_magic)});

  auto truncated = hello_bytes(HelloKind::kData, 7, 9);
  truncated.resize(truncated.size() / 2);
  out.push_back({"tap_hello_truncated", Category::kTapstream,
                 std::move(truncated)});
}

}  // namespace

std::string category_name(Category c) {
  switch (c) {
    case Category::kIec104: return "iec104";
    case Category::kFt12: return "ft12";
    case Category::kIccp: return "iccp";
    case Category::kC37118: return "c37118";
    case Category::kFrame: return "frame";
    case Category::kConformance: return "conformance";
    case Category::kTapstream: return "tapstream";
  }
  return "unknown";
}

const std::vector<Seed>& seeds() {
  static const std::vector<Seed> all = [] {
    std::vector<Seed> out;
    add_iec104(out);
    add_fault_streams(out);
    add_ft12(out);
    add_iccp(out);
    add_c37118(out);
    add_frames(out);
    add_conformance(out);
    add_tapstream(out);
    return out;
  }();
  return all;
}

std::vector<const Seed*> seeds_for(Category c) {
  std::vector<const Seed*> out;
  for (const auto& seed : seeds()) {
    if (seed.category == c) out.push_back(&seed);
  }
  return out;
}

bool write_seed_files(const std::string& dir) {
  std::error_code ec;
  for (const auto& seed : seeds()) {
    auto subdir = std::filesystem::path(dir) / category_name(seed.category);
    std::filesystem::create_directories(subdir, ec);
    if (ec) return false;
    std::ofstream file(subdir / (seed.name + ".bin"), std::ios::binary);
    file.write(reinterpret_cast<const char*>(seed.bytes.data()),
               static_cast<std::streamsize>(seed.bytes.size()));
    if (!file) return false;
  }
  return true;
}

}  // namespace uncharted::corpus
