#include "synchro/c37118.hpp"

#include <gtest/gtest.h>

namespace uncharted::synchro {
namespace {

ConfigFrame sample_config(bool floats = false) {
  ConfigFrame cfg;
  cfg.header.idcode = 101;
  cfg.header.soc = 1560556800;
  cfg.time_base = 1'000'000;
  cfg.data_rate = 30;
  PmuConfig pmu;
  pmu.station_name = "PMU_EAST";
  pmu.idcode = 101;
  pmu.phasors_float = floats;
  pmu.freq_float = floats;
  pmu.analogs_float = floats;
  pmu.phasor_names = {"VA", "VB", "I1"};
  pmu.phasor_units = {915527, 915527, 45776};
  pmu.analog_names = {"MW"};
  pmu.nominal_freq_code = 0;
  cfg.pmus.push_back(pmu);
  return cfg;
}

DataFrame sample_data() {
  DataFrame frame;
  frame.header.idcode = 101;
  frame.header.soc = 1560556801;
  frame.header.fracsec = 500'000;
  PmuData data;
  data.stat = 0;
  data.phasors = {{76200.0, 0.0}, {-38100.0, -65900.0}, {405.0, -30.0}};
  data.freq_deviation_mhz = -12.0;
  data.rocof = 0.05;
  data.analogs = {142.0};
  frame.pmus.push_back(data);
  return frame;
}

TEST(CrcCcitt, KnownVectors) {
  // CRC-CCITT (false) of "123456789" is 0x29B1.
  const char* msg = "123456789";
  EXPECT_EQ(crc_ccitt(std::span<const std::uint8_t>(
                reinterpret_cast<const std::uint8_t*>(msg), 9)),
            0x29b1);
  EXPECT_EQ(crc_ccitt({}), 0xffff);
}

TEST(C37118, ConfigFrameRoundTrip) {
  auto cfg = sample_config();
  auto bytes = encode_config(cfg);
  auto header = peek_header(bytes);
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header->type, FrameType::kConfig2);
  EXPECT_EQ(header->frame_size, bytes.size());
  EXPECT_EQ(header->idcode, 101);

  auto frame = decode_frame(bytes);
  ASSERT_TRUE(frame.ok()) << frame.error().str();
  const auto& back = std::get<ConfigFrame>(frame.value());
  EXPECT_EQ(back.time_base, 1'000'000u);
  EXPECT_EQ(back.data_rate, 30);
  ASSERT_EQ(back.pmus.size(), 1u);
  EXPECT_EQ(back.pmus[0].station_name, "PMU_EAST");
  EXPECT_EQ(back.pmus[0].phasor_names,
            (std::vector<std::string>{"VA", "VB", "I1"}));
  EXPECT_EQ(back.pmus[0].phasor_units[2], 45776u);
  EXPECT_EQ(back.pmus[0].nominal_freq_code, 0);
}

TEST(C37118, IntegerDataFrameRoundTrip) {
  auto cfg = sample_config(false);
  auto data = sample_data();
  auto bytes = encode_data(cfg, data);
  auto frame = decode_frame(bytes, &cfg);
  ASSERT_TRUE(frame.ok()) << frame.error().str();
  const auto& back = std::get<DataFrame>(frame.value());
  ASSERT_EQ(back.pmus.size(), 1u);
  const auto& pmu = back.pmus[0];
  ASSERT_EQ(pmu.phasors.size(), 3u);
  // Integer format quantizes by PHUNIT * 1e-5 V per count (~9.16 V).
  EXPECT_NEAR(pmu.phasors[0].real(), 76200.0, 10.0);
  EXPECT_NEAR(pmu.phasors[1].imag(), -65900.0, 10.0);
  EXPECT_NEAR(pmu.phasors[2].real(), 405.0, 0.5);
  EXPECT_EQ(pmu.freq_deviation_mhz, -12.0);
  EXPECT_NEAR(pmu.rocof, 0.05, 1e-9);
  ASSERT_EQ(pmu.analogs.size(), 1u);
  EXPECT_EQ(pmu.analogs[0], 142.0);
}

TEST(C37118, FloatDataFrameRoundTripExact) {
  auto cfg = sample_config(true);
  auto data = sample_data();
  auto bytes = encode_data(cfg, data);
  auto frame = decode_frame(bytes, &cfg);
  ASSERT_TRUE(frame.ok()) << frame.error().str();
  const auto& pmu = std::get<DataFrame>(frame.value()).pmus[0];
  EXPECT_FLOAT_EQ(static_cast<float>(pmu.phasors[0].real()), 76200.0f);
  EXPECT_FLOAT_EQ(static_cast<float>(pmu.phasors[1].imag()), -65900.0f);
  EXPECT_FLOAT_EQ(static_cast<float>(pmu.freq_deviation_mhz), -12.0f);
  EXPECT_FLOAT_EQ(static_cast<float>(pmu.analogs[0]), 142.0f);
}

TEST(C37118, DataFrameNeedsConfig) {
  auto cfg = sample_config();
  auto bytes = encode_data(cfg, sample_data());
  auto frame = decode_frame(bytes, nullptr);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.error().code, "missing-config");
}

TEST(C37118, CommandAndHeaderFrames) {
  CommandFrame cmd;
  cmd.header.idcode = 101;
  cmd.command = Command::kTurnOnTransmission;
  auto bytes = encode_command(cmd);
  auto frame = decode_frame(bytes);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(std::get<CommandFrame>(frame.value()).command,
            Command::kTurnOnTransmission);

  HeaderFrame hf;
  hf.header.idcode = 101;
  hf.info = "PMU east bus, firmware 2.1";
  auto hbytes = encode_header(hf);
  auto hframe = decode_frame(hbytes);
  ASSERT_TRUE(hframe.ok());
  EXPECT_EQ(std::get<HeaderFrame>(hframe.value()).info, hf.info);
}

TEST(C37118, CrcCorruptionRejected) {
  auto bytes = encode_command(CommandFrame{});
  bytes[6] ^= 0xff;
  auto frame = decode_frame(bytes);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.error().code, "bad-crc");
}

TEST(C37118, SizeMismatchRejected) {
  auto bytes = encode_command(CommandFrame{});
  bytes.push_back(0x00);
  auto frame = decode_frame(bytes);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.error().code, "size-mismatch");
}

TEST(C37118, SplitStreamFindsWholeFrames) {
  auto cfg = sample_config();
  auto a = encode_config(cfg);
  auto b = encode_data(cfg, sample_data());
  auto c = encode_command(CommandFrame{});
  std::vector<std::uint8_t> stream;
  for (const auto& f : {a, b, c}) stream.insert(stream.end(), f.begin(), f.end());
  // Append half of another frame.
  stream.insert(stream.end(), b.begin(), b.begin() + 10);

  auto split = split_stream(stream);
  ASSERT_EQ(split.frames.size(), 3u);
  EXPECT_EQ(split.frames[0], a);
  EXPECT_EQ(split.frames[1], b);
  EXPECT_EQ(split.frames[2], c);
  EXPECT_EQ(split.consumed, a.size() + b.size() + c.size());
}

TEST(C37118, BadSyncRejected) {
  std::uint8_t junk[20] = {0x00};
  auto header = peek_header(junk);
  ASSERT_FALSE(header.ok());
  EXPECT_EQ(header.error().code, "bad-sync");
}

}  // namespace
}  // namespace uncharted::synchro
