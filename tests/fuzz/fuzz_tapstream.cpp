// libFuzzer harness for the tapstream wire protocol: every decoder of the
// live-ingest framing layer (hello, hello-ack, record header, fin,
// fin-ack) against arbitrary bytes, plus a stream walk that consumes the
// input the way the server's framing loop does — hello first, then
// records and fins until the bytes stop decoding. Decoders must reject
// garbage with an error, never crash, and never read past the buffer.
#include <cstdint>
#include <span>

#include "netd/wire.hpp"
#include "util/bytes.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  using namespace uncharted;
  using namespace uncharted::netd;
  std::span<const std::uint8_t> input(data, size);

  {
    ByteReader r(input);
    (void)wire::decode_hello(r);
  }
  {
    ByteReader r(input);
    (void)wire::decode_hello_ack(r);
  }
  {
    ByteReader r(input);
    (void)wire::decode_record_header(r);
  }
  {
    ByteReader r(input);
    (void)wire::decode_fin(r);
  }
  {
    ByteReader r(input);
    (void)wire::decode_fin_ack(r);
  }

  // The server's shape: a hello, then a marker-framed message stream.
  ByteReader r(input);
  auto hello = wire::decode_hello(r);
  if (!hello.ok()) return 0;
  while (r.can_read(1)) {
    const std::size_t before = r.position();
    if (auto rec = wire::decode_record_header(r); rec.ok()) {
      if (!r.skip(rec->cap_len).ok()) break;
      continue;
    }
    r.seek(before);
    if (auto fin = wire::decode_fin(r); fin.ok()) continue;
    r.seek(before);
    if (auto fin_ack = wire::decode_fin_ack(r); fin_ack.ok()) continue;
    break;  // not a decodable message: the server would hang up here
  }
  return 0;
}
