// Standalone driver for the fuzz harnesses when libFuzzer is unavailable
// (non-clang toolchains). Links against the same LLVMFuzzerTestOneInput
// entry point a clang -fsanitize=fuzzer build would use, and replays:
//
//   1. every embedded corpus seed (tests/corpus), once, verbatim;
//   2. any files or directories passed on the command line;
//   3. --iterations N (default 10000) deterministic mutation rounds over
//      the seed pool — bit flips, truncations, extensions — seeded by
//      --seed S so failures reproduce exactly.
//
// A libFuzzer-style run `harness corpus_dir -runs=N` therefore has a
// gcc-compatible twin: `harness corpus_dir --iterations N`. Exit code 0
// means every input was decoded (or rejected) without crashing; sanitizer
// reports abort the process, which is the failure signal CI consumes.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "corpus/corpus.hpp"
#include "util/rng.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size);

namespace {

using Input = std::vector<std::uint8_t>;

void run_one(const Input& bytes) {
  LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
}

bool load_file(const std::filesystem::path& path, std::vector<Input>& pool) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return false;
  Input bytes((std::istreambuf_iterator<char>(file)), std::istreambuf_iterator<char>());
  pool.push_back(std::move(bytes));
  return true;
}

std::uint64_t parse_count(const char* text, const char* flag) {
  char* end = nullptr;
  const std::uint64_t value = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') {
    std::fprintf(stderr, "%s: not a number: %s\n", flag, text);
    std::exit(2);
  }
  return value;
}

Input mutate(uncharted::Rng& rng, Input bytes) {
  if (bytes.empty()) {
    bytes.resize(1 + rng.below(64));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.below(256));
    return bytes;
  }
  auto flips = 1 + rng.below(4);
  for (std::uint64_t i = 0; i < flips; ++i) {
    auto pos = rng.below(bytes.size());
    bytes[pos] ^= static_cast<std::uint8_t>(1 + rng.below(255));
  }
  if (rng.chance(0.25) && bytes.size() > 2) {
    bytes.resize(bytes.size() - 1 - rng.below(bytes.size() / 2));
  } else if (rng.chance(0.15)) {
    auto extra = 1 + rng.below(16);
    for (std::uint64_t i = 0; i < extra; ++i) {
      bytes.push_back(static_cast<std::uint8_t>(rng.below(256)));
    }
  }
  return bytes;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t iterations = 10'000;
  std::uint64_t seed = 0x5eed;
  std::vector<Input> pool;

  for (const auto& corpus_seed : uncharted::corpus::seeds()) {
    pool.push_back(corpus_seed.bytes);
  }

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--iterations" && i + 1 < argc) {
      iterations = parse_count(argv[++i], "--iterations");
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = parse_count(argv[++i], "--seed");
    } else if (arg.rfind("-runs=", 0) == 0) {  // libFuzzer spelling
      iterations = parse_count(arg.c_str() + 6, "-runs");
    } else if (std::filesystem::is_directory(arg)) {
      for (const auto& entry : std::filesystem::recursive_directory_iterator(arg)) {
        if (entry.is_regular_file()) load_file(entry.path(), pool);
      }
    } else if (std::filesystem::is_regular_file(arg)) {
      load_file(arg, pool);
    } else {
      std::fprintf(stderr, "unknown argument or missing path: %s\n", arg.c_str());
      return 2;
    }
  }

  for (const auto& input : pool) run_one(input);

  uncharted::Rng rng(seed);
  for (std::uint64_t i = 0; i < iterations; ++i) {
    if (pool.empty() || rng.chance(0.1)) {
      Input random(rng.below(300));
      for (auto& b : random) b = static_cast<std::uint8_t>(rng.below(256));
      run_one(random);
    } else {
      run_one(mutate(rng, pool[rng.below(pool.size())]));
    }
  }

  std::printf("fuzz driver: %zu seed inputs + %llu mutation iterations, no crash\n",
              pool.size(), static_cast<unsigned long long>(iterations));
  return 0;
}
