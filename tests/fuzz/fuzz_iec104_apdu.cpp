// libFuzzer harness for the IEC 104 APDU/ASDU parser — the paper's core
// tool. Exercises single-frame decode under all four codec profiles
// (standard, O37 2-octet IOA, O53 1-octet COT, both), profile detection,
// semantic validation of whatever decodes, and the tolerant stream parser
// fed the same bytes split across two feed() calls.
#include <cstdint>
#include <span>

#include "iec104/apdu.hpp"
#include "iec104/parser.hpp"
#include "iec104/validate.hpp"
#include "util/bytes.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  using namespace uncharted;
  std::span<const std::uint8_t> input(data, size);

  for (const auto& profile : iec104::candidate_profiles()) {
    ByteReader r(input);
    auto apdu = iec104::decode_apdu(r, profile);
    if (apdu.ok() && apdu->asdu.has_value()) {
      // Anything that decodes must survive semantic validation and
      // re-encoding (the round trip may legitimately fail for oversized
      // object lists, but must not crash).
      (void)iec104::validate_asdu(*apdu->asdu, iec104::Direction::kFromOutstation);
      (void)iec104::validate_asdu(*apdu->asdu, iec104::Direction::kFromController);
      (void)apdu->encode(profile);
    }
  }

  (void)iec104::detect_profiles(input);

  // Stream parser: same bytes, arbitrary split point derived from input.
  iec104::ApduStreamParser parser;
  std::size_t split = size == 0 ? 0 : data[0] % (size + 1);
  parser.feed(0, input.subspan(0, split));
  parser.feed(1, input.subspan(split));
  return 0;
}
