// libFuzzer harness for the ISO transport stack under ICCP: TPKT
// unwrapping, COTP TPDU decoding and the TLV message layer, both
// separately and through the combined from_wire() path.
#include <cstdint>
#include <span>

#include "iccp/iccp.hpp"
#include "iccp/tpkt.hpp"
#include "util/bytes.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  using namespace uncharted;
  std::span<const std::uint8_t> input(data, size);

  {
    ByteReader r(input);
    auto tpkt = iccp::tpkt_unwrap(r);
    if (tpkt.ok()) {
      auto tpdu = iccp::CotpTpdu::decode(*tpkt);
      if (tpdu.ok()) (void)tpdu->encode();
    }
  }

  (void)iccp::Message::decode(input);

  ByteReader r(input);
  auto message = iccp::from_wire(r);
  if (message.ok()) {
    // A decoded message must re-serialize without crashing.
    (void)message->encode();
    (void)message->to_wire();
  }
  return 0;
}
