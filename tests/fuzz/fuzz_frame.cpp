// libFuzzer harness for the capture ingest path: Ethernet/IPv4/TCP frame
// decoding, pcap buffer parsing, and TCP stream reassembly of whatever
// frames survive decoding.
#include <cstdint>
#include <span>

#include "net/frame.hpp"
#include "net/pcap.hpp"
#include "net/reassembly.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  using namespace uncharted;
  std::span<const std::uint8_t> input(data, size);

  const auto no_sink = [](const net::FlowKey&, Timestamp,
                          std::span<const std::uint8_t>) {};

  auto frame = net::decode_frame(input);
  if (frame.ok()) {
    net::TcpReassembler reassembler(no_sink);
    reassembler.add(0, *frame);
  }

  auto packets = net::PcapReader::read_buffer(input);
  if (packets.ok()) {
    net::TcpReassembler reassembler(no_sink);
    Timestamp ts = 0;
    for (const auto& packet : *packets) {
      auto decoded = net::decode_frame(packet.data);
      if (decoded.ok()) reassembler.add(ts++, *decoded);
    }
  }
  return 0;
}
