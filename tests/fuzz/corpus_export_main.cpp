// Writes the embedded seed corpus (tests/corpus) out as one file per seed,
// grouped by category — the starting corpus for libFuzzer runs.
#include <cstdio>

#include "corpus/corpus.hpp"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <output-dir>\n", argv[0]);
    return 2;
  }
  if (!uncharted::corpus::write_seed_files(argv[1])) {
    std::fprintf(stderr, "failed to write corpus under %s\n", argv[1]);
    return 1;
  }
  std::printf("wrote %zu corpus seeds under %s\n",
              uncharted::corpus::seeds().size(), argv[1]);
  return 0;
}
