// libFuzzer harness for the IEEE C37.118 synchrophasor codec: header
// peeking, full frame decode with and without a stream configuration
// (data frames need one), and TCP stream splitting.
#include <cstdint>
#include <span>

#include "synchro/c37118.hpp"

namespace {

const uncharted::synchro::ConfigFrame& stream_config() {
  static const uncharted::synchro::ConfigFrame cfg = [] {
    uncharted::synchro::ConfigFrame c;
    c.header.idcode = 7734;
    uncharted::synchro::PmuConfig pmu;
    pmu.station_name = "STATION_A";
    pmu.idcode = 7734;
    pmu.phasors_float = true;
    pmu.freq_float = true;
    pmu.phasor_names = {"VA", "VB"};
    pmu.phasor_units = {915527, 915527};
    c.pmus.push_back(pmu);
    return c;
  }();
  return cfg;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  using namespace uncharted;
  std::span<const std::uint8_t> input(data, size);

  (void)synchro::peek_header(input);
  (void)synchro::decode_frame(input, nullptr);
  (void)synchro::decode_frame(input, &stream_config());

  auto split = synchro::split_stream(input);
  for (const auto& frame : split.frames) {
    (void)synchro::decode_frame(frame, &stream_config());
  }
  return 0;
}
