// libFuzzer harness for the IEC 104 conformance state machine — the
// hostile-peer judge must itself be unkillable. The input drives the
// machine two ways:
//
//   1. As an op script: byte 0 configures the machine (fresh vs mid-stream
//    anchor, legacy whitelist on/off), then 5-byte records inject I/S/U
//    frames with fuzz-chosen sequence numbers, directions and time steps,
//    plus parse-failure batches — reaching states (interleaved rewinds,
//    wrap-edge acks, confirm storms) no capture generator would produce.
//   2. As a byte stream through the tolerant ApduStreamParser, replaying
//    whatever parses into a second machine the way the dataset audit does.
//
// Invariants checked on both machines: accessors never crash, the verdict
// is consistent with the profile's evidence, and violation counts are
// coherent. Everything else is the sanitizers' job.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <span>

#include "iec104/conformance.hpp"
#include "iec104/elements.hpp"
#include "iec104/parser.hpp"

namespace {

using namespace uncharted;

// The standalone driver has no input-minimizing crash report like
// libFuzzer's, so on an invariant failure print the reason and the raw
// input before aborting — enough to turn any crash into a regression seed.
std::span<const std::uint8_t> g_input;

[[noreturn]] void die(const char* reason, const iec104::ConformanceMachine& m) {
  std::fprintf(stderr, "fuzz_conformance invariant failed: %s\n", reason);
  std::fprintf(stderr, "  profile: %s\n", m.profile().summary().c_str());
  std::fprintf(stderr, "  input (%zu bytes):", g_input.size());
  for (auto b : g_input) std::fprintf(stderr, " %02x", b);
  std::fprintf(stderr, "\n");
  std::abort();
}

iec104::Asdu small_asdu(std::uint8_t selector) {
  iec104::Asdu asdu;
  asdu.type = (selector & 1) ? iec104::TypeId::M_ME_NC_1 : iec104::TypeId::M_SP_NA_1;
  asdu.cot.cause = (selector & 2) ? iec104::Cause::kSpontaneous
                                  : iec104::Cause::kActivation;
  asdu.common_address = selector;
  if (asdu.type == iec104::TypeId::M_ME_NC_1) {
    asdu.objects.push_back({selector + 1u, iec104::ShortFloat{1.0f, {}}, std::nullopt});
  } else {
    asdu.objects.push_back({selector + 1u, iec104::SinglePoint{true, {}}, std::nullopt});
  }
  return asdu;
}

void check_invariants(const iec104::ConformanceMachine& m) {
  const auto& profile = m.profile();
  if (profile.warn_score < 0.0) die("negative warn_score", m);
  std::uint64_t hostile = 0;
  std::uint64_t legacy = 0;
  for (const auto& v : profile.violations) {
    if (v.count == 0) die("violation with zero count", m);
    if (static_cast<std::int64_t>(v.last_ts - v.first_ts) < 0) {
      die("violation last_ts before first_ts", m);
    }
    if (v.severity == iec104::Severity::kHostile) hostile += v.count;
    if (v.severity == iec104::Severity::kLegacy) legacy += v.count;
    if (profile.count(v.code) != v.count) die("count() disagrees with record", m);
  }
  if (profile.hostile_events != hostile) die("hostile_events != sum of records", m);
  if (profile.legacy_events != legacy) die("legacy_events != sum of records", m);
  bool should_be_hostile = profile.hostile_events > 0 ||
                           profile.warn_score >= m.policy().hostile_score;
  if (m.hostile() != should_be_hostile) die("hostile() inconsistent with evidence", m);
  if (m.hostile() != (m.verdict() == iec104::Verdict::kHostile)) {
    die("hostile() disagrees with verdict()", m);
  }
  if (profile.summary().empty()) die("empty summary", m);
}

/// Part 1: the input as an op script against one machine.
void run_script(std::span<const std::uint8_t> input) {
  if (input.empty()) return;
  iec104::ConformancePolicy policy;
  policy.whitelist_legacy_profiles = (input[0] & 2) == 0;
  iec104::ConformanceMachine machine(policy);
  Timestamp ts = 1;
  if (input[0] & 1) machine.on_connection_open(ts);

  std::size_t i = 1;
  while (i + 5 <= input.size()) {
    std::uint8_t op = input[i];
    std::uint8_t a = input[i + 1], b = input[i + 2];
    std::uint8_t c = input[i + 3], d = input[i + 4];
    i += 5;
    ts += 1 + static_cast<Timestamp>(op >> 4) * 997'000;  // 0..~15s steps
    bool from_controller = (op & 0x08) != 0;
    std::uint16_t ns = static_cast<std::uint16_t>(a | (b << 8));
    std::uint16_t nr = static_cast<std::uint16_t>(c | (d << 8));
    switch (op & 0x07) {
      case 0:
      case 1:
        machine.on_apdu(ts, from_controller, iec104::Apdu::make_i(ns, nr, small_asdu(a)));
        break;
      case 2:
        machine.on_apdu(ts, from_controller, iec104::Apdu::make_s(nr));
        break;
      case 3: {
        static const iec104::UFunction kFunctions[] = {
            iec104::UFunction::kStartDtAct, iec104::UFunction::kStartDtCon,
            iec104::UFunction::kStopDtAct,  iec104::UFunction::kStopDtCon,
            iec104::UFunction::kTestFrAct,  iec104::UFunction::kTestFrCon};
        machine.on_apdu(ts, from_controller, iec104::Apdu::make_u(kFunctions[a % 6]));
        break;
      }
      case 4:
        machine.on_apdu(ts, from_controller,
                        iec104::Apdu::make_i(ns, nr, small_asdu(a)),
                        iec104::CodecProfile::legacy_cot());
        break;
      case 5:
        machine.on_apdu(ts, from_controller,
                        iec104::Apdu::make_i(ns, nr, small_asdu(a)),
                        iec104::CodecProfile::legacy_ioa());
        break;
      case 6: {
        static const iec104::FailureKind kKinds[] = {
            iec104::FailureKind::kGarbage, iec104::FailureKind::kUndecodable,
            iec104::FailureKind::kTruncatedTail};
        machine.on_parse_failures(ts, kKinds[a % 3], b % 32, c % 8);
        break;
      }
      default:
        // Reserved opcode: time passes, nothing else.
        break;
    }
  }
  check_invariants(machine);
}

/// Part 2: the input as raw stream bytes, the dataset-audit path.
void run_stream(std::span<const std::uint8_t> input) {
  iec104::ApduStreamParser parser;
  std::size_t split = input.empty() ? 0 : input[0] % (input.size() + 1);
  parser.feed(1, input.subspan(0, split));
  parser.feed(2, input.subspan(split));
  parser.finish(3);

  iec104::ConformanceMachine machine;
  bool from_controller = !input.empty() && (input[0] & 4);
  for (const auto& parsed : parser.apdus()) {
    machine.on_apdu(parsed.ts, from_controller, parsed.apdu, parsed.profile);
    from_controller = !from_controller;  // ping-pong the directions
  }
  for (const auto& failure : parser.failures()) {
    bool oversized = failure.raw.size() >= 2 &&
                     failure.raw[1] > iec104::kMaxApduLength;
    machine.on_parse_failures(failure.ts, failure.kind, 1, oversized ? 1 : 0);
  }
  check_invariants(machine);
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  std::span<const std::uint8_t> input(data, size);
  g_input = input;
  run_script(input);
  run_stream(input);
  return 0;
}
