// libFuzzer harness for the IEC 101 FT 1.2 serial link-layer decoder.
// Decoded frames are pushed through the ASDU unframing path and
// re-encoded; re-encoding a successfully decoded frame must reproduce a
// decodable byte stream.
#include <cstdint>
#include <span>

#include "iec101/ft12.hpp"
#include "util/bytes.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  using namespace uncharted;
  std::span<const std::uint8_t> input(data, size);

  ByteReader r(input);
  while (!r.empty()) {
    auto before = r.position();
    auto frame = iec101::decode_ft12(r);
    if (!frame.ok()) break;
    (void)iec101::unframe_asdu(*frame);
    auto reencoded = frame->encode();
    ByteReader again(reencoded);
    auto roundtrip = iec101::decode_ft12(again);
    if (!roundtrip.ok()) __builtin_trap();  // encode/decode must agree
    if (r.position() == before) break;      // no progress; avoid spinning
  }
  return 0;
}
