// End-to-end scans: the golden-bad fixture repo must produce exactly the
// expected findings (rule id + file + line), the suppression fixture must
// scan clean with counted waivers, and the live source tree must be clean —
// that last test is the build-time guarantee the analyzer exists for.
#include "tools/lint/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <tuple>

namespace uncharted::lint {
namespace {

#ifndef UNCHARTED_LINT_FIXTURES
#error "UNCHARTED_LINT_FIXTURES must point at tests/lint/fixtures"
#endif
#ifndef UNCHARTED_SOURCE_DIR
#error "UNCHARTED_SOURCE_DIR must point at the repository root"
#endif

using Key = std::tuple<std::string, int, std::string>;  // file, line, rule

std::set<Key> keys(const Report& report) {
  std::set<Key> out;
  for (const Finding& f : report.violations) {
    out.insert(Key{f.file, f.line, f.rule});
  }
  return out;
}

TEST(LintEngine, GoldenBadRepoFlagsEveryRule) {
  Options options;
  options.root = std::string(UNCHARTED_LINT_FIXTURES) + "/badrepo";
  const Report report = run_scan(options);

  const std::set<Key> expected = {
      {"bench/bench_rng.cpp", 5, "determinism-unseeded-rng"},
      {"src/analysis/rng.cpp", 9, "determinism-unseeded-rng"},
      {"src/analysis/rng.cpp", 10, "determinism-unseeded-rng"},
      {"src/analysis/rng.cpp", 11, "determinism-unseeded-rng"},
      {"src/analysis/rng.cpp", 13, "determinism-unseeded-rng"},
      {"src/analysis/rawsock.cpp", 5, "netd-raw-socket"},
      {"src/analysis/rawsock.cpp", 6, "netd-raw-socket"},
      {"src/analysis/rawsock.cpp", 7, "netd-raw-socket"},
      {"src/analysis/rawsock.cpp", 8, "netd-raw-socket"},
      {"src/analysis/unordered.cpp", 11, "determinism-unordered-container"},
      {"src/analysis/unordered.cpp", 12, "determinism-unordered-container"},
      {"src/analysis/unordered.cpp", 13, "determinism-pointer-key"},
      {"src/analysis/unordered.cpp", 14, "determinism-pointer-key"},
      {"src/core/badallow.cpp", 7, "determinism-unordered-container"},
      {"src/core/badallow.cpp", 7, "lint-allow-missing-justification"},
      {"src/core/badallow.cpp", 8, "determinism-unordered-container"},
      {"src/core/badallow.cpp", 8, "lint-allow-unknown-rule"},
      {"src/core/badallow.cpp", 9, "lint-allow-unused"},
      {"src/iec104/rawbytes.cpp", 8, "decoder-byte-index"},
      {"src/iec104/rawbytes.cpp", 11, "decoder-memcpy"},
      {"src/iec104/rawseq.cpp", 7, "seq15-raw-arith"},
      {"src/iec104/rawseq.cpp", 8, "seq15-raw-arith"},
      {"src/iec104/rawseq.cpp", 9, "seq15-raw-arith"},
      {"src/iec104/rawseq.cpp", 10, "seq15-raw-arith"},
      {"src/util/uplayer.hpp", 5, "layering-cycle"},
      {"src/util/uplayer.hpp", 5, "layering-order"},
  };
  EXPECT_EQ(keys(report), expected);
  // tests/ zone exemption: the rand() in tests/rng_ok_in_tests.cpp did not
  // appear above, but the file was scanned.
  EXPECT_GE(report.files_scanned, 9);
}

TEST(LintEngine, SuppressionsHonoredAndCounted) {
  Options options;
  options.root = std::string(UNCHARTED_LINT_FIXTURES) + "/allowrepo";
  const Report report = run_scan(options);
  EXPECT_TRUE(report.clean()) << render_text(report);
  ASSERT_EQ(report.suppressions.size(), 4u);
  EXPECT_EQ(report.suppressions[0].rule, "determinism-unordered-container");
  EXPECT_EQ(report.suppressions[0].line, 9);
  EXPECT_FALSE(report.suppressions[0].justification.empty());
  EXPECT_EQ(report.suppressions[1].rule, "determinism-unseeded-rng");
  EXPECT_EQ(report.suppressions[1].line, 11);
  EXPECT_EQ(report.suppressions[2].rule, "netd-raw-socket");
  EXPECT_EQ(report.suppressions[2].line, 14);
  EXPECT_EQ(report.suppressions[3].rule, "zerocopy-vector-payload");
  EXPECT_EQ(report.suppressions[3].file, "src/net/waived_net.cpp");
}

TEST(LintEngine, ExplicitPathScansFixturesVerbatim) {
  // The default walk excludes tests/lint/fixtures; an explicit path does
  // not, which is how these golden files stay scannable at all.
  Options options;
  options.root = std::string(UNCHARTED_LINT_FIXTURES) + "/badrepo";
  options.paths = {"src/iec104/rawseq.cpp"};
  const Report report = run_scan(options);
  EXPECT_EQ(report.files_scanned, 1);
  EXPECT_EQ(report.violations.size(), 4u);
  for (const Finding& f : report.violations) {
    EXPECT_EQ(f.rule, "seq15-raw-arith");
  }
}

TEST(LintEngine, LiveTreeScansClean) {
  Options options;
  options.root = UNCHARTED_SOURCE_DIR;
  const Report report = run_scan(options);
  EXPECT_TRUE(report.clean()) << render_text(report);
  // The walk really covered the tree (src + bench + examples + tests +
  // tools), not an empty directory.
  EXPECT_GE(report.files_scanned, 150);
}

TEST(LintEngine, JsonRenderIsStableAndEscaped) {
  Options options;
  options.root = std::string(UNCHARTED_LINT_FIXTURES) + "/badrepo";
  options.paths = {"src/iec104/rawbytes.cpp"};
  const Report report = run_scan(options);
  const std::string json = render_json(report);
  EXPECT_NE(json.find("\"tool\": \"unchartedlint\""), std::string::npos);
  EXPECT_NE(json.find("\"rule\": \"decoder-byte-index\""), std::string::npos);
  EXPECT_NE(json.find("\"file\": \"src/iec104/rawbytes.cpp\""),
            std::string::npos);
  EXPECT_NE(json.find("\"counts\": {\"violations\": 2"), std::string::npos);
  // No unescaped control characters may survive rendering.
  for (char c : json) {
    EXPECT_TRUE(c == '\n' || static_cast<unsigned char>(c) >= 0x20);
  }
}

TEST(LintEngine, MissingRootIsAnError) {
  Options options;
  options.root = std::string(UNCHARTED_LINT_FIXTURES) + "/no-such-dir";
  EXPECT_THROW(run_scan(options), std::runtime_error);
}

}  // namespace
}  // namespace uncharted::lint
