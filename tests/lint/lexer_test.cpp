// Tokenizer tests: the rules are only as good as the lexical view they run
// on, so pin down exactly the behaviors they rely on — comment capture,
// literal-content dropping, multi-char operators, include extraction, and
// line numbering.
#include "tools/lint/token.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace uncharted::lint {
namespace {

std::vector<Token> code_tokens(const std::string& src) {
  std::vector<Token> out;
  for (const Token& t : lex(src)) {
    if (t.kind != Tok::kComment && t.kind != Tok::kInclude) out.push_back(t);
  }
  return out;
}

bool has_ident(const std::vector<Token>& tokens, const std::string& name) {
  return std::any_of(tokens.begin(), tokens.end(), [&](const Token& t) {
    return t.kind == Tok::kIdent && t.text == name;
  });
}

TEST(LintLexer, IdentifiersNumbersAndLines) {
  const auto tokens = lex("int a = 1;\nlong b = 0x7fff;\n");
  ASSERT_GE(tokens.size(), 8u);
  EXPECT_EQ(tokens[0].kind, Tok::kIdent);
  EXPECT_EQ(tokens[0].text, "int");
  EXPECT_EQ(tokens[0].line, 1);
  const Token& hex = tokens[8];
  EXPECT_EQ(hex.kind, Tok::kNumber);
  EXPECT_EQ(hex.text, "0x7fff");
  EXPECT_EQ(hex.line, 2);
}

TEST(LintLexer, StringAndCharContentsAreDropped) {
  // Literal contents must never leak identifiers into the rules: the lint
  // tool's own source mentions banned names inside strings.
  const auto tokens = code_tokens(
      "const char* s = \"std::unordered_map rand() % 32768\";\n"
      "char c = 'x';\n");
  EXPECT_FALSE(has_ident(tokens, "unordered_map"));
  EXPECT_FALSE(has_ident(tokens, "rand"));
  const auto strings = std::count_if(
      tokens.begin(), tokens.end(),
      [](const Token& t) { return t.kind == Tok::kString; });
  EXPECT_EQ(strings, 1);
}

TEST(LintLexer, RawStringsAreDropped) {
  const auto tokens = code_tokens(
      "auto j = R\"json({\"key\": \"unordered_map\"})json\";\n"
      "int after = 1;\n");
  EXPECT_FALSE(has_ident(tokens, "unordered_map"));
  ASSERT_TRUE(has_ident(tokens, "after"));
  for (const Token& t : tokens) {
    if (t.kind == Tok::kIdent && t.text == "after") {
      EXPECT_EQ(t.line, 2);
    }
  }
}

TEST(LintLexer, CommentsAreCapturedWithLines) {
  const auto tokens = lex(
      "int a; // UNCHARTED-LINT-ALLOW(rule): why\n"
      "/* block\nspanning */ int b;\n");
  std::vector<const Token*> comments;
  for (const Token& t : tokens) {
    if (t.kind == Tok::kComment) comments.push_back(&t);
  }
  ASSERT_EQ(comments.size(), 2u);
  EXPECT_NE(comments[0]->text.find("UNCHARTED-LINT-ALLOW"), std::string::npos);
  EXPECT_EQ(comments[0]->line, 1);
  EXPECT_EQ(comments[1]->line, 2);
  // The declaration after the block comment is on line 3.
  bool saw_b = false;
  for (const Token& t : tokens) {
    if (t.kind == Tok::kIdent && t.text == "b") {
      saw_b = true;
      EXPECT_EQ(t.line, 3);
    }
  }
  EXPECT_TRUE(saw_b);
}

TEST(LintLexer, MultiCharOperatorsAreSingleTokens) {
  // `->` and `++` must not decay into `-`/`+` or the subscript rule would
  // misread `arr[p->idx]` as offset arithmetic.
  const auto tokens = code_tokens("a[p->idx]; b[i++]; c << 2; d %= 3;");
  for (const Token& t : tokens) {
    if (t.kind != Tok::kPunct) continue;
    EXPECT_NE(t.text, "-");
    EXPECT_NE(t.text, "+");
  }
  bool saw_arrow = false, saw_incr = false, saw_modassign = false;
  for (const Token& t : tokens) {
    saw_arrow |= t.kind == Tok::kPunct && t.text == "->";
    saw_incr |= t.kind == Tok::kPunct && t.text == "++";
    saw_modassign |= t.kind == Tok::kPunct && t.text == "%=";
  }
  EXPECT_TRUE(saw_arrow);
  EXPECT_TRUE(saw_incr);
  EXPECT_TRUE(saw_modassign);
}

TEST(LintLexer, IncludeDirectivesBecomeIncludeTokens) {
  const auto tokens = lex(
      "#include \"util/bytes.hpp\"\n"
      "#include <vector>\n"
      "#define FOO 1\n"
      "int x;\n");
  std::vector<const Token*> includes;
  for (const Token& t : tokens) {
    if (t.kind == Tok::kInclude) includes.push_back(&t);
  }
  ASSERT_EQ(includes.size(), 2u);
  EXPECT_EQ(includes[0]->text, "util/bytes.hpp");
  EXPECT_FALSE(includes[0]->angled);
  EXPECT_EQ(includes[1]->text, "vector");
  EXPECT_TRUE(includes[1]->angled);
  // The #define body must not contribute code tokens.
  EXPECT_FALSE(has_ident(code_tokens("#define EVIL rand()\n"), "rand"));
}

TEST(LintLexer, DigitSeparatorsAndSuffixes) {
  const auto tokens = code_tokens("auto a = 32'768u; auto b = 0x7fffULL;");
  int numbers = 0;
  for (const Token& t : tokens) {
    if (t.kind == Tok::kNumber) {
      ++numbers;
      EXPECT_TRUE(t.text == "32'768u" || t.text == "0x7fffULL") << t.text;
    }
  }
  EXPECT_EQ(numbers, 2);
}

TEST(LintLexer, UnterminatedConstructsDoNotLoop) {
  // Scanner must degrade gracefully on any input, like the decoders.
  EXPECT_NO_FATAL_FAILURE(lex("/* never closed"));
  EXPECT_NO_FATAL_FAILURE(lex("\"never closed"));
  EXPECT_NO_FATAL_FAILURE(lex("R\"raw(never closed"));
  EXPECT_NO_FATAL_FAILURE(lex("#include \"unclosed"));
}

}  // namespace
}  // namespace uncharted::lint
