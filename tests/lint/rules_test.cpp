// Token-rule unit tests: each rule's positive and negative space on small
// snippets, independent of the filesystem walker (engine_test covers that).
#include "tools/lint/rules.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "tools/lint/token.hpp"

namespace uncharted::lint {
namespace {

std::vector<Finding> scan(const std::string& rel_path, const std::string& src) {
  FileContext ctx;
  ctx.rel_path = rel_path;
  const std::size_t slash = rel_path.find('/');
  const std::string head = rel_path.substr(0, slash);
  if (head == "src") {
    ctx.zone = Zone::kSrc;
    const std::size_t second = rel_path.find('/', 4);
    if (second != std::string::npos) {
      ctx.module = rel_path.substr(4, second - 4);
    }
  } else if (head == "bench") {
    ctx.zone = Zone::kBench;
  } else if (head == "examples") {
    ctx.zone = Zone::kExamples;
  } else if (head == "tests") {
    ctx.zone = Zone::kTests;
  } else if (head == "tools") {
    ctx.zone = Zone::kTools;
  }
  std::vector<Finding> out;
  run_token_rules(ctx, lex(src), out);
  return out;
}

bool has_rule(const std::vector<Finding>& findings, const std::string& rule) {
  for (const Finding& f : findings) {
    if (f.rule == rule) return true;
  }
  return false;
}

TEST(LintRules, UnorderedContainersFlaggedInSrcOnly) {
  const std::string snippet = "std::unordered_map<int, int> m;";
  EXPECT_TRUE(has_rule(scan("src/analysis/x.cpp", snippet),
                       "determinism-unordered-container"));
  EXPECT_TRUE(has_rule(scan("src/net/x.cpp", snippet),
                       "determinism-unordered-container"));
  EXPECT_TRUE(scan("tests/analysis/x.cpp", snippet).empty());
  EXPECT_TRUE(scan("tools/lint/x.cpp", snippet).empty());
}

TEST(LintRules, PointerKeyedOrderingFlagged) {
  EXPECT_TRUE(has_rule(scan("src/core/x.cpp", "std::map<const Foo*, int> m;"),
                       "determinism-pointer-key"));
  EXPECT_TRUE(has_rule(scan("src/core/x.cpp", "std::set<Foo*> s;"),
                       "determinism-pointer-key"));
  // Pointer as the mapped type is fine; so is a value-keyed map.
  EXPECT_TRUE(scan("src/core/x.cpp", "std::map<int, Foo*> m;").empty());
  EXPECT_TRUE(
      scan("src/core/x.cpp", "std::map<std::string, int> m;").empty());
  // Comparisons spelled `set < value` must not confuse the scanner.
  EXPECT_TRUE(scan("src/core/x.cpp", "bool y = set < 3;").empty());
}

TEST(LintRules, UnseededRngFlaggedOutsideTests) {
  EXPECT_TRUE(has_rule(scan("src/sim/x.cpp", "int a = rand();"),
                       "determinism-unseeded-rng"));
  EXPECT_TRUE(has_rule(scan("bench/x.cpp", "std::random_device rd;"),
                       "determinism-unseeded-rng"));
  EXPECT_TRUE(has_rule(scan("examples/x.cpp", "srand(time(nullptr));"),
                       "determinism-unseeded-rng"));
  EXPECT_TRUE(has_rule(scan("src/sim/x.cpp", "auto t = time(NULL);"),
                       "determinism-unseeded-rng"));
  EXPECT_TRUE(scan("tests/sim/x.cpp", "int a = rand();").empty());
  // `time` with a real argument is the library call, not a seed source.
  EXPECT_TRUE(scan("src/sim/x.cpp", "auto t = time(&now);").empty());
  // A member named rand is not the C library function unless called.
  EXPECT_TRUE(scan("src/sim/x.cpp", "int rand = 3; use(rand);").empty());
}

TEST(LintRules, Seq15RawArithmetic) {
  EXPECT_TRUE(has_rule(scan("src/iec104/conn.cpp", "v = (v + 1) % 32768;"),
                       "seq15-raw-arith"));
  EXPECT_TRUE(has_rule(scan("src/analysis/x.cpp", "v = v & 0x7FFF;"),
                       "seq15-raw-arith"));
  EXPECT_TRUE(has_rule(scan("examples/x.cpp", "v %= 32768;"),
                       "seq15-raw-arith"));
  EXPECT_TRUE(has_rule(scan("tests/iec104/x.cpp", "v = v % 0x8000;"),
                       "seq15-raw-arith"));
  EXPECT_TRUE(has_rule(scan("src/iec104/conn.cpp", "v = v % kSeqModulo;"),
                       "seq15-raw-arith"));
  // The consolidation home is exempt; unrelated moduli/masks are clean.
  EXPECT_TRUE(scan("src/iec104/seq15.hpp", "v = v % 32768;").empty());
  EXPECT_TRUE(scan("src/iec104/conn.cpp", "v = v % 100;").empty());
  EXPECT_TRUE(scan("src/iec104/conn.cpp", "v = v & 0xff;").empty());
  // 32768/32767 as plain values (clamps, limits) are not wrap arithmetic.
  EXPECT_TRUE(
      scan("src/iec104/conn.cpp", "x = std::clamp(v, -32768.0, 32767.0);")
          .empty());
}

TEST(LintRules, DecoderByteSafety) {
  EXPECT_TRUE(has_rule(scan("src/iec104/p.cpp", "auto v = buf[pos + 1];"),
                       "decoder-byte-index"));
  EXPECT_TRUE(has_rule(scan("src/iec101/p.cpp", "auto v = buf[n - 2];"),
                       "decoder-byte-index"));
  EXPECT_TRUE(has_rule(scan("src/iccp/p.cpp", "memcpy(dst, src, n);"),
                       "decoder-memcpy"));
  EXPECT_TRUE(has_rule(scan("src/synchro/p.cpp", "std::memmove(d, s, n);"),
                       "decoder-memcpy"));
  // Single-index access, `->`/`++` inside subscripts, and non-decoder
  // modules are all clean.
  EXPECT_TRUE(scan("src/iec104/p.cpp", "auto v = buf[pos];").empty());
  EXPECT_TRUE(scan("src/iec104/p.cpp", "auto v = buf[p->idx];").empty());
  EXPECT_TRUE(scan("src/iec104/p.cpp", "auto v = buf[i++];").empty());
  EXPECT_TRUE(scan("src/analysis/p.cpp", "auto v = buf[pos + 1];").empty());
  EXPECT_TRUE(scan("src/util/bytes.cpp", "memcpy(dst, src, n);").empty());
  // Lambda introducers are not subscripts.
  EXPECT_TRUE(
      scan("src/iec104/p.cpp", "auto f = [a, b]() { return a; };").empty());
}

TEST(LintRules, RawSocketFlaggedOutsideNetd) {
  EXPECT_TRUE(has_rule(scan("src/analysis/x.cpp", "int fd = accept(s, a, l);"),
                       "netd-raw-socket"));
  EXPECT_TRUE(has_rule(scan("src/core/x.cpp", "auto n = ::read(fd, b, 16);"),
                       "netd-raw-socket"));
  // Too-generic names stay legal when not `::`-qualified; member and
  // namespace-qualified calls are someone else's API.
  EXPECT_TRUE(scan("src/core/x.cpp", "auto n = read(fd, b, 16);").empty());
  EXPECT_TRUE(scan("src/core/x.cpp", "auto n = sock.send(b);").empty());
  EXPECT_TRUE(scan("src/core/x.cpp", "auto n = wire::recv(b);").empty());
}

TEST(LintRules, NetdDataPlaneMustUseTheSysOpsShim) {
  // Inside src/netd the rule enforces the SysOps shim on the data plane.
  EXPECT_TRUE(has_rule(scan("src/netd/x.cpp", "int fd = accept(s, a, l);"),
                       "netd-raw-socket"));
  EXPECT_TRUE(has_rule(scan("src/netd/x.cpp", "auto n = ::recv(fd, b, 16, 0);"),
                       "netd-raw-socket"));
  EXPECT_TRUE(has_rule(scan("src/netd/x.cpp", "auto n = ::write(fd, b, 1);"),
                       "netd-raw-socket"));
  EXPECT_TRUE(has_rule(scan("src/netd/x.cpp", "epoll_wait(ep, evs, 64, 0);"),
                       "netd-raw-socket"));
  // Setup-plane calls stay legal in netd (once per connection, not per
  // byte), as do shim-routed calls.
  EXPECT_TRUE(scan("src/netd/x.cpp", "int s = ::socket(AF_INET, t, 0);").empty());
  EXPECT_TRUE(scan("src/netd/x.cpp", "::listen(s, 64);").empty());
  EXPECT_TRUE(scan("src/netd/x.cpp", "::connect(s, a, l);").empty());
  EXPECT_TRUE(scan("src/netd/x.cpp", "sys_.recv(fd, b, 16, 0);").empty());
  EXPECT_TRUE(
      scan("src/netd/x.cpp", "faultinject::retry_recv(sys_, fd, b, 16);")
          .empty());
}

TEST(LintRules, StorageSyscallsMustUseTheSysOpsShim) {
  // ::rename/::fsync are the checkpoint writer's fault surface — shim-only
  // everywhere, netd or not.
  EXPECT_TRUE(has_rule(scan("src/core/x.cpp", "::rename(from, to);"),
                       "netd-raw-socket"));
  EXPECT_TRUE(has_rule(scan("src/netd/x.cpp", "::fsync(fd);"),
                       "netd-raw-socket"));
  EXPECT_TRUE(has_rule(scan("examples/x.cpp", "::fdatasync(fd);"),
                       "netd-raw-socket"));
  // Qualified/member forms are other APIs (std::filesystem::rename, the
  // shim's own methods); bare `rename(` is too generic to flag.
  EXPECT_TRUE(
      scan("src/core/x.cpp", "std::filesystem::rename(a, b);").empty());
  EXPECT_TRUE(scan("src/core/x.cpp", "sys.rename(a, b);").empty());
  EXPECT_TRUE(scan("src/core/x.cpp", "rename(a, b);").empty());
}

TEST(LintRules, SysfaultShimIsExemptFromRawSyscallRules) {
  const std::string raw =
      "ssize_t n = ::read(fd, b, 16);"
      "int r = ::rename(f, t);"
      "int afd = accept(s, a, l);";
  EXPECT_TRUE(scan("src/faultinject/sysfault.cpp", raw).empty());
  EXPECT_TRUE(scan("src/faultinject/sysfault.hpp", raw).empty());
  // The exemption is exactly those two files, not the whole module.
  EXPECT_TRUE(has_rule(scan("src/faultinject/fault.cpp", raw),
                       "netd-raw-socket"));
}

TEST(LintRules, VectorPayloadParamsFlaggedInSrcNetOnly) {
  const std::string by_cref =
      "void deliver(Timestamp ts, const std::vector<std::uint8_t>& payload);";
  const std::string by_value =
      "Status feed(std::vector<std::uint8_t> payload);";
  const std::string unnamed =
      "using Sink = std::function<void(const std::vector<std::uint8_t>&)>;";
  EXPECT_TRUE(
      has_rule(scan("src/net/x.hpp", by_cref), "zerocopy-vector-payload"));
  EXPECT_TRUE(
      has_rule(scan("src/net/x.cpp", by_value), "zerocopy-vector-payload"));
  EXPECT_TRUE(
      has_rule(scan("src/net/x.hpp", unnamed), "zerocopy-vector-payload"));
  // Only src/net carries the span-only contract.
  EXPECT_FALSE(
      has_rule(scan("src/iec104/x.hpp", by_cref), "zerocopy-vector-payload"));
  EXPECT_FALSE(
      has_rule(scan("tests/net/x.cpp", by_cref), "zerocopy-vector-payload"));
  // Owning storage stays legal: members, locals, return types, and
  // constructing a vector at a call site are not payload parameters.
  EXPECT_TRUE(scan("src/net/x.hpp",
                   "struct CapturedPacket { std::vector<std::uint8_t> data; };")
                  .empty());
  EXPECT_TRUE(
      scan("src/net/x.cpp", "std::vector<std::uint8_t> owned = read_all();")
          .empty());
  EXPECT_TRUE(scan("src/net/x.hpp",
                   "std::vector<std::uint8_t> take() { return buf_; }")
                  .empty());
  EXPECT_TRUE(
      scan("src/net/x.cpp", "sink(std::vector<std::uint8_t>(first, last));")
          .empty());
  // The element type matters: a vector of frames is not a payload buffer.
  EXPECT_TRUE(
      scan("src/net/x.hpp", "void add(const std::vector<FrameView>& v);")
          .empty());
  EXPECT_TRUE(has_rule(scan("src/net/x.hpp", by_cref + by_value),
                       "zerocopy-vector-payload"));
}

TEST(LintRules, CatalogKnowsEveryEmittedRule) {
  EXPECT_TRUE(is_known_rule("determinism-unordered-container"));
  EXPECT_TRUE(is_known_rule("determinism-pointer-key"));
  EXPECT_TRUE(is_known_rule("determinism-unseeded-rng"));
  EXPECT_TRUE(is_known_rule("seq15-raw-arith"));
  EXPECT_TRUE(is_known_rule("decoder-byte-index"));
  EXPECT_TRUE(is_known_rule("decoder-memcpy"));
  EXPECT_TRUE(is_known_rule("zerocopy-vector-payload"));
  EXPECT_TRUE(is_known_rule("layering-order"));
  EXPECT_TRUE(is_known_rule("layering-cycle"));
  EXPECT_FALSE(is_known_rule("no-such-rule"));
}

}  // namespace
}  // namespace uncharted::lint
