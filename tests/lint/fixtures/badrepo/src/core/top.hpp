// Golden-bad fixture: this direction (core -> util) is legal; the cycle is
// closed by uplayer.hpp's edge back up. Never compiled.
#pragma once

#include "util/uplayer.hpp"
