// Golden-bad fixture: suppression misuse. Never compiled.
#include <unordered_map>

namespace fixture {

void bad_allow() {
  std::unordered_map<int, int> a;  // UNCHARTED-LINT-ALLOW(determinism-unordered-container)
  std::unordered_map<int, int> b;  // UNCHARTED-LINT-ALLOW(no-such-rule): the id does not exist
  // UNCHARTED-LINT-ALLOW(determinism-pointer-key): nothing below to waive
  int c = 0;
  (void)a;
  (void)b;
  (void)c;
}

}  // namespace fixture
