// Golden-bad fixture: decoder byte-safety rules. Never compiled.
#include <cstdint>
#include <cstring>

namespace fixture {

std::uint16_t peek(const std::uint8_t* buf, unsigned long pos) {
  std::uint8_t hi = buf[pos + 1];       // line 8: decoder-byte-index
  std::uint8_t lo = buf[pos];           // clean: single index, no arithmetic
  std::uint8_t scratch[4];
  std::memcpy(scratch, buf, 4);         // line 11: decoder-memcpy
  return static_cast<std::uint16_t>((hi << 8) | (lo & scratch[0]));
}

}  // namespace fixture
