// Golden-bad fixture: seq15-raw-arith. Never compiled.
#include <cstdint>

namespace fixture {

std::uint16_t bump(std::uint16_t ns) {
  std::uint16_t next = static_cast<std::uint16_t>((ns + 1) % 32768);  // line 7
  std::uint16_t mask = static_cast<std::uint16_t>(ns & 0x7FFF);      // line 8
  next %= 32768;                                                     // line 9
  std::uint16_t hex = static_cast<std::uint16_t>(ns % 0x8000);       // line 10
  std::uint16_t pct = static_cast<std::uint16_t>(ns % 100);  // clean: not 2^15
  return static_cast<std::uint16_t>(next ^ mask ^ hex ^ pct);
}

}  // namespace fixture
