// Golden-bad fixture: netd-raw-socket. Never compiled.
namespace fixture {

int ingest(int listen_fd, void* buf, unsigned long len) {
  int fd = accept(listen_fd, nullptr, nullptr);       // line 5: bare accept
  long n = ::recv(fd, buf, len, 0);                   // line 6: global recv
  n += ::read(fd, buf, len);                          // line 7: global read
  int ep = epoll_create1(0);                          // line 8: bare epoll
  // Not flagged: member calls, qualified calls, and generic names bare.
  struct Sock { long read(void*, unsigned long) { return 0; } } s;
  n += s.read(buf, len);
  long read = 0;  // a plain identifier named `read`
  (void)read;
  (void)ep;
  return static_cast<int>(n);
}

}  // namespace fixture
