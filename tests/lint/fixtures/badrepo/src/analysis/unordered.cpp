// Golden-bad fixture: determinism container rules. Never compiled; scanned
// by test_lint, which asserts the exact rule ids and lines below.
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace fixture {

void containers() {
  std::unordered_map<int, int> counts;   // line 11: determinism-unordered-container
  std::unordered_set<long> seen;         // line 12: determinism-unordered-container
  std::map<const char*, int> by_name;    // line 13: determinism-pointer-key
  std::set<int*> live;                   // line 14: determinism-pointer-key
  std::map<int, const char*> names;      // clean: pointer is the mapped type
  (void)counts;
  (void)seen;
  (void)by_name;
  (void)live;
  (void)names;
}

}  // namespace fixture
