// Golden-bad fixture: determinism-unseeded-rng. Never compiled.
#include <cstdlib>
#include <ctime>
#include <random>

namespace fixture {

int jitter() {
  std::random_device rd;                              // line 9
  std::mt19937 gen(rd());                             // line 10
  std::srand(static_cast<unsigned>(time(nullptr)));   // line 11
  (void)gen;
  return rand() % 3;                                  // line 13
}

}  // namespace fixture
