// Golden-bad fixture: util (rank 0) reaching up into core (rank 5); the
// edge also closes an include cycle with core/top.hpp. Never compiled.
#pragma once

#include "core/top.hpp"
