// Golden-bad fixture: the RNG rule also covers bench/. Never compiled.
#include <cstdlib>

int main() {
  return rand();  // line 5: determinism-unseeded-rng
}
