// Negative fixture: tests/ is exempt from the RNG rule, so this file must
// produce zero findings. Never compiled.
#include <cstdlib>

int main() {
  return rand();  // clean: tests zone
}
