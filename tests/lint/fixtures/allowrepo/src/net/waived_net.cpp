// Fixture: a waived zerocopy-vector-payload finding — src/net signatures
// are span-only, and this is the one sanctioned escape hatch. Never
// compiled.
#include <cstdint>
#include <vector>

namespace fixture {

// UNCHARTED-LINT-ALLOW(zerocopy-vector-payload): fixture exercising the owning-payload waiver
void legacy_sink(const std::vector<std::uint8_t>& payload);

}  // namespace fixture
