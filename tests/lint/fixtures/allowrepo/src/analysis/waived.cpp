// Fixture: valid suppressions — this mini-repo scans clean with exactly
// three counted waivers (same-line form and line-above form). Never compiled.
#include <random>
#include <unordered_map>

namespace fixture {

void waived() {
  std::unordered_map<int, int> scratch;  // UNCHARTED-LINT-ALLOW(determinism-unordered-container): drained into a sorted vector before any report sees it
  // UNCHARTED-LINT-ALLOW(determinism-unseeded-rng): exercises the line-above suppression form
  std::random_device rd;
  (void)scratch;
  (void)rd;
  int fd = accept(0, nullptr, nullptr);  // UNCHARTED-LINT-ALLOW(netd-raw-socket): fixture exercising the socket-call waiver
  (void)fd;
}

}  // namespace fixture
