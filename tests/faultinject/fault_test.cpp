#include "faultinject/fault.hpp"

#include <gtest/gtest.h>

#include "net/frame.hpp"
#include "sim/capture.hpp"

namespace uncharted::faultinject {
namespace {

const std::vector<net::CapturedPacket>& sample_capture() {
  static const auto capture = [] {
    return sim::generate_capture(sim::CaptureConfig::y1(20.0));
  }();
  return capture.packets;
}

bool identical(const std::vector<net::CapturedPacket>& a,
               const std::vector<net::CapturedPacket>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].ts != b[i].ts || a[i].data != b[i].data) return false;
  }
  return true;
}

TEST(FaultInject, ZeroRateIsPassThrough) {
  auto result = apply_faults(sample_capture(), FaultConfig::uniform(0.0));
  EXPECT_TRUE(identical(result.packets, sample_capture()));
  EXPECT_EQ(result.log.total(), 0u);
  EXPECT_GT(result.log.eligible_packets, 0u);
}

TEST(FaultInject, SameSeedSameDamage) {
  auto config = FaultConfig::uniform(0.05);
  auto a = apply_faults(sample_capture(), config);
  auto b = apply_faults(sample_capture(), config);
  EXPECT_TRUE(identical(a.packets, b.packets));
  EXPECT_EQ(a.log.total(), b.log.total());
  EXPECT_EQ(a.log.bytes_removed, b.log.bytes_removed);
  EXPECT_EQ(a.log.bytes_corrupted, b.log.bytes_corrupted);
}

TEST(FaultInject, DifferentSeedDifferentDamage) {
  auto a = apply_faults(sample_capture(), FaultConfig::uniform(0.05, 1));
  auto b = apply_faults(sample_capture(), FaultConfig::uniform(0.05, 2));
  EXPECT_FALSE(identical(a.packets, b.packets));
}

TEST(FaultInject, DropOnlyShrinksCaptureByDropCount) {
  FaultConfig config;
  config.drop_p = 0.10;
  auto result = apply_faults(sample_capture(), config);
  EXPECT_GT(result.log.dropped, 0u);
  EXPECT_EQ(result.packets.size(), sample_capture().size() - result.log.dropped);
  EXPECT_EQ(result.log.total(), result.log.dropped);
}

TEST(FaultInject, DuplicateOnlyGrowsCaptureByDuplicateCount) {
  FaultConfig config;
  config.duplicate_p = 0.10;
  auto result = apply_faults(sample_capture(), config);
  EXPECT_GT(result.log.duplicated, 0u);
  EXPECT_EQ(result.packets.size(), sample_capture().size() + result.log.duplicated);
}

TEST(FaultInject, InjectedRstsAreDecodableResets) {
  FaultConfig config;
  config.rst_p = 0.05;
  auto result = apply_faults(sample_capture(), config);
  ASSERT_GT(result.log.rsts_injected, 0u);
  EXPECT_EQ(result.packets.size(),
            sample_capture().size() + result.log.rsts_injected);
  std::uint64_t resets_seen = 0;
  for (const auto& pkt : result.packets) {
    auto frame = net::decode_frame(pkt.data);
    ASSERT_TRUE(frame.ok());
    if (frame->tcp.rst()) ++resets_seen;
  }
  EXPECT_GE(resets_seen, result.log.rsts_injected);
}

TEST(FaultInject, GarbledFramesStillDecode) {
  // Garble rebuilds checksums: every output frame must still pass
  // decode_frame, with the damage waiting in the payload for the parser.
  FaultConfig config;
  config.garble_p = 0.10;
  auto result = apply_faults(sample_capture(), config);
  ASSERT_GT(result.log.garbled, 0u);
  EXPECT_GT(result.log.bytes_corrupted, 0u);
  for (const auto& pkt : result.packets) {
    EXPECT_TRUE(net::decode_frame(pkt.data).ok());
  }
}

TEST(FaultInject, TruncationRemovesBytes) {
  FaultConfig config;
  config.truncate_p = 0.10;
  auto result = apply_faults(sample_capture(), config);
  ASSERT_GT(result.log.truncated, 0u);
  EXPECT_GT(result.log.bytes_removed, 0u);
  std::size_t in_bytes = 0, out_bytes = 0;
  for (const auto& pkt : sample_capture()) in_bytes += pkt.data.size();
  for (const auto& pkt : result.packets) out_bytes += pkt.data.size();
  EXPECT_EQ(out_bytes, in_bytes - result.log.bytes_removed);
}

TEST(FaultInject, DesyncCutsLeadingPayloadKeepingSeq) {
  FaultConfig config;
  config.desync_p = 0.10;
  auto result = apply_faults(sample_capture(), config);
  ASSERT_GT(result.log.desynced, 0u);
  EXPECT_GT(result.log.bytes_removed, 0u);
  // Same packet count: desync shortens payloads, never drops packets.
  EXPECT_EQ(result.packets.size(), sample_capture().size());
}

TEST(FaultInject, Iec104OnlyLeavesBackgroundTrafficAlone) {
  FaultConfig config = FaultConfig::uniform(0.20);
  auto result = apply_faults(sample_capture(), config);
  // Every original non-2404 packet must come through byte-identical and in
  // order. (The output can contain EXTRA "background" lookalikes: a bit
  // flip in a 2404 packet's port field with a stale checksum — that is the
  // fault model working, not a scoping leak.)
  std::vector<const net::CapturedPacket*> in_bg;
  auto is_background = [&](const net::CapturedPacket& pkt) {
    auto frame = net::decode_frame(pkt.data);
    return frame.ok() && frame->tcp.src_port != config.iec104_port &&
           frame->tcp.dst_port != config.iec104_port;
  };
  for (const auto& pkt : sample_capture()) {
    if (is_background(pkt)) in_bg.push_back(&pkt);
  }
  ASSERT_GT(in_bg.size(), 0u) << "sim capture should carry background traffic";
  std::size_t matched = 0;
  for (const auto& pkt : result.packets) {
    if (matched < in_bg.size() && pkt.data == in_bg[matched]->data) ++matched;
  }
  EXPECT_EQ(matched, in_bg.size())
      << "background packets were damaged, dropped or reordered";
}

TEST(FaultInject, ReorderSwapsNeighborsWithoutLoss) {
  FaultConfig config;
  config.reorder_p = 0.10;
  auto result = apply_faults(sample_capture(), config);
  ASSERT_GT(result.log.reordered, 0u);
  EXPECT_EQ(result.packets.size(), sample_capture().size());
  // Reordering permutes, never rewrites: total byte volume is unchanged.
  std::size_t in_bytes = 0, out_bytes = 0;
  for (const auto& pkt : sample_capture()) in_bytes += pkt.data.size();
  for (const auto& pkt : result.packets) out_bytes += pkt.data.size();
  EXPECT_EQ(out_bytes, in_bytes);
}

}  // namespace
}  // namespace uncharted::faultinject
