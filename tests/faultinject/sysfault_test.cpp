// Unit tests for the syscall fault-injection layer: determinism, fault
// classes, burst schedules, storage-fd classification, the ledger, and
// the retry helpers' errno handling.
#include "faultinject/sysfault.hpp"

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace uncharted::faultinject {
namespace {

/// Two ends of a pipe, closed on destruction. A pipe is the simplest fd
/// pair that exercises read/write without network setup.
struct Pipe {
  int rd = -1;
  int wr = -1;
  Pipe() {
    int fds[2] = {-1, -1};
    EXPECT_EQ(0, ::pipe(fds));
    rd = fds[0];
    wr = fds[1];
  }
  ~Pipe() {
    if (rd >= 0) ::close(rd);
    if (wr >= 0) ::close(wr);
  }
};

/// A connected AF_UNIX socket pair (for recv/send fault classes).
struct SocketPair {
  int a = -1;
  int b = -1;
  SocketPair() {
    int fds[2] = {-1, -1};
    EXPECT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, fds));
    a = fds[0];
    b = fds[1];
  }
  ~SocketPair() {
    if (a >= 0) ::close(a);
    if (b >= 0) ::close(b);
  }
};

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() /
          (std::string("sysfault_test_") + name + "_" +
           std::to_string(::getpid())))
      .string();
}

TEST(SysFault, RealSysOpsIsAPassthrough) {
  SysOps& sys = real_sys_ops();
  Pipe p;
  const char msg[] = "hello";
  ASSERT_EQ(static_cast<ssize_t>(sizeof msg), sys.write(p.wr, msg, sizeof msg));
  char buf[16] = {};
  ASSERT_EQ(static_cast<ssize_t>(sizeof msg), sys.read(p.rd, buf, sizeof buf));
  EXPECT_STREQ("hello", buf);
}

TEST(SysFault, SameSeedSameFaultSequence) {
  // Record (result, errno) for a fixed op sequence under two instances of
  // the same plan: they must agree byte for byte.
  auto run = [](std::uint64_t seed) {
    SysFaultPlan plan = SysFaultPlan::network(0.3, seed);
    FaultySysOps sys(plan);
    Pipe p;
    // Nonblocking on both ends: the pipe state is a pure function of the
    // fault decisions, and a faulted write can never strand a read.
    ::fcntl(p.rd, F_SETFL, O_NONBLOCK);
    ::fcntl(p.wr, F_SETFL, O_NONBLOCK);
    std::vector<std::pair<ssize_t, int>> trace;
    const char msg[] = "0123456789abcdef0123456789abcdef";
    char buf[sizeof msg] = {};
    for (int i = 0; i < 200; ++i) {
      errno = 0;
      const ssize_t w = sys.write(p.wr, msg, sizeof msg);
      trace.emplace_back(w, errno);
      errno = 0;
      const ssize_t r = sys.read(p.rd, buf, sizeof buf);
      trace.emplace_back(r, errno);
      // Drain leftovers so the pipe never fills: the fault decisions, not
      // pipe backpressure, drive the trace.
      RealSysOps real;
      char drain[64];
      while (real.read(p.rd, drain, sizeof drain) > 0) {
      }
    }
    return trace;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(SysFault, RateOneAlwaysFires) {
  SysFaultPlan plan;
  plan.eintr_p = 1.0;
  FaultySysOps sys(plan);
  Pipe p;
  char c = 'x';
  for (int i = 0; i < 10; ++i) {
    errno = 0;
    EXPECT_EQ(-1, sys.write(p.wr, &c, 1));
    EXPECT_EQ(EINTR, errno);
  }
  EXPECT_EQ(10u, sys.log().eintr);
  EXPECT_EQ(10u, sys.log().ops);
}

TEST(SysFault, RateZeroNeverFires) {
  FaultySysOps sys(SysFaultPlan{});  // all rates zero
  Pipe p;
  const char msg[] = "payload";
  for (int i = 0; i < 50; ++i) {
    ASSERT_EQ(static_cast<ssize_t>(sizeof msg),
              sys.write(p.wr, msg, sizeof msg));
    char buf[sizeof msg];
    ASSERT_EQ(static_cast<ssize_t>(sizeof msg),
              sys.read(p.rd, buf, sizeof buf));
  }
  EXPECT_EQ(0u, sys.log().total());
  EXPECT_EQ("clean", sys.log().summary());
}

TEST(SysFault, ShortWritesDeliverBetweenOneAndSixteenBytes) {
  SysFaultPlan plan;
  plan.short_write_p = 1.0;
  FaultySysOps sys(plan);
  Pipe p;
  std::array<char, 128> msg{};
  for (int i = 0; i < 20; ++i) {
    const ssize_t w = sys.write(p.wr, msg.data(), msg.size());
    ASSERT_GE(w, 1);
    ASSERT_LE(w, 16);
    char drain[128];
    ASSERT_EQ(w, sys.read(p.rd, drain, static_cast<std::size_t>(w)));
  }
  EXPECT_EQ(20u, sys.log().short_writes);
}

TEST(SysFault, ConnResetFiresOnSocketsOnly) {
  SysFaultPlan plan;
  plan.conn_reset_p = 1.0;
  FaultySysOps sys(plan);
  SocketPair sp;
  const char msg[] = "iec104";
  errno = 0;
  EXPECT_EQ(-1, sys.send(sp.a, msg, sizeof msg, 0));
  EXPECT_EQ(ECONNRESET, errno);
  char buf[16];
  errno = 0;
  EXPECT_EQ(-1, sys.recv(sp.b, buf, sizeof buf, 0));
  EXPECT_EQ(ECONNRESET, errno);
  EXPECT_EQ(2u, sys.log().conn_resets);
  // conn_reset_p does not apply to plain read/write (pipes).
  Pipe p;
  EXPECT_EQ(1, sys.write(p.wr, "x", 1));
}

TEST(SysFault, AcceptEmfileSurfacesThroughRetryAccept) {
  SysFaultPlan plan;
  plan.accept_emfile_p = 1.0;
  FaultySysOps sys(plan);
  const AcceptResult ar = retry_accept(sys, /*fd=*/-1, nullptr, nullptr);
  EXPECT_EQ(IoStatus::kError, ar.status);
  EXPECT_TRUE(fd_exhausted(ar.err));
  EXPECT_EQ(EMFILE, ar.err);
  EXPECT_GE(sys.log().accept_emfile, 1u);
}

TEST(SysFault, FdExhaustedClassifiesTheDescriptorErrnoFamily) {
  EXPECT_TRUE(fd_exhausted(EMFILE));
  EXPECT_TRUE(fd_exhausted(ENFILE));
  EXPECT_TRUE(fd_exhausted(ENOBUFS));
  EXPECT_TRUE(fd_exhausted(ENOMEM));
  EXPECT_FALSE(fd_exhausted(ECONNRESET));
  EXPECT_FALSE(fd_exhausted(EAGAIN));
}

TEST(SysFault, StorageFaultsOnlyHitFdsOpenedThroughSysOps) {
  SysFaultPlan plan;
  plan.write_enospc_p = 1.0;  // storage-only class
  FaultySysOps sys(plan);

  // A pipe fd (not opened via SysOps::open) never sees ENOSPC.
  Pipe p;
  EXPECT_EQ(1, sys.write(p.wr, "x", 1));

  const std::string path = temp_path("storage");
  const int fd = sys.open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  ASSERT_GE(fd, 0);
  errno = 0;
  EXPECT_EQ(-1, sys.write(fd, "x", 1));
  EXPECT_EQ(ENOSPC, errno);
  EXPECT_EQ(1u, sys.log().write_enospc);

  // close() unregisters the fd: if the number is recycled for a socket it
  // must not inherit the storage fault classes.
  ASSERT_EQ(0, sys.close(fd));
  Pipe p2;
  EXPECT_EQ(1, sys.write(p2.wr, "y", 1));
  std::filesystem::remove(path);
}

TEST(SysFault, FsyncAndRenameFaults) {
  SysFaultPlan plan;
  plan.fsync_fail_p = 1.0;
  plan.rename_fail_p = 1.0;
  FaultySysOps sys(plan);

  const std::string path = temp_path("fsync");
  const int fd = sys.open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  ASSERT_GE(fd, 0);
  errno = 0;
  EXPECT_EQ(-1, sys.fsync(fd));
  EXPECT_EQ(EIO, errno);
  (void)sys.close(fd);

  // A torn rename leaves BOTH names untouched.
  const std::string to = path + ".renamed";
  errno = 0;
  EXPECT_EQ(-1, sys.rename(path.c_str(), to.c_str()));
  EXPECT_EQ(EIO, errno);
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(to));
  EXPECT_EQ(1u, sys.log().fsync_failures);
  EXPECT_EQ(1u, sys.log().rename_failures);
  std::filesystem::remove(path);
}

TEST(SysFault, OpenFailureLeavesNoFileBehind) {
  SysFaultPlan plan;
  plan.open_fail_p = 1.0;
  FaultySysOps sys(plan);
  const std::string path = temp_path("openfail");
  errno = 0;
  EXPECT_EQ(-1, sys.open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644));
  EXPECT_EQ(ENOSPC, errno);
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_EQ(1u, sys.log().open_failures);
}

TEST(SysFault, BurstScheduleBoostsRatesPeriodically) {
  // Base rate low enough that faults essentially never fire outside a
  // burst; boost high enough that they always fire inside one. The op
  // stream then shows faults exactly at the scheduled windows.
  SysFaultPlan plan;
  plan.seed = 42;
  plan.eintr_p = 1e-9;
  plan.burst_period = 10;
  plan.burst_len = 3;
  plan.burst_boost = 1e9;  // capped at probability 1.0
  FaultySysOps sys(plan);
  Pipe p;
  char c = 'x';
  std::vector<bool> faulted;
  for (int i = 0; i < 30; ++i) {
    errno = 0;
    const ssize_t w = sys.write(p.wr, &c, 1);
    faulted.push_back(w < 0 && errno == EINTR);
    if (w == 1) {
      char drain;
      (void)sys.read(p.rd, &drain, 1);  // also a faultable op
    }
  }
  // Ops 0,1,2 of every period of 10 faultable ops are boosted, so the
  // burst-op count is exactly 3 per complete period plus the start of any
  // partial one — and with boost saturating at 1.0, every boosted op
  // fired EINTR while (at p = 1e-9) no unboosted op did.
  const std::uint64_t n = sys.log().ops;
  EXPECT_GT(n, 10u);
  EXPECT_EQ(n / 10 * 3 + std::min<std::uint64_t>(3, n % 10),
            sys.log().burst_ops);
  EXPECT_EQ(sys.log().eintr, sys.log().burst_ops);
}

TEST(SysFault, DisabledMeansPassthroughAndNoLedgerGrowth) {
  SysFaultPlan plan;
  plan.eintr_p = 1.0;
  FaultySysOps sys(plan);
  sys.set_enabled(false);
  Pipe p;
  for (int i = 0; i < 20; ++i) {
    ASSERT_EQ(1, sys.write(p.wr, "x", 1));
    char c;
    ASSERT_EQ(1, sys.read(p.rd, &c, 1));
  }
  EXPECT_EQ(0u, sys.log().ops);
  EXPECT_EQ(0u, sys.log().total());
  sys.set_enabled(true);
  errno = 0;
  EXPECT_EQ(-1, sys.write(p.wr, "x", 1));
  EXPECT_EQ(EINTR, errno);
}

TEST(SysFault, RetryHelpersAbsorbBoundedEintrStorms) {
  SysFaultPlan plan;
  plan.eintr_p = 1.0;
  FaultySysOps sys(plan);
  Pipe p;
  char c = 'x';
  // An unbounded storm degrades to kWouldBlock instead of spinning.
  const IoResult w = retry_write(sys, p.wr, &c, 1);
  EXPECT_EQ(IoStatus::kWouldBlock, w.status);
  EXPECT_GE(sys.log().eintr, 64u);

  // A finite storm is absorbed: disable after priming the RNG state is
  // not possible mid-call, so emulate with a half-rate plan instead.
  SysFaultPlan half;
  half.seed = 3;
  half.eintr_p = 0.5;
  FaultySysOps hsys(half);
  int ok = 0;
  for (int i = 0; i < 50; ++i) {
    const IoResult r = retry_write(hsys, p.wr, &c, 1);
    if (r.status == IoStatus::kOk) {
      ++ok;
      char drain;
      (void)retry_read(hsys, p.rd, &drain, 1);
    }
  }
  EXPECT_GT(ok, 0);
  EXPECT_GT(hsys.log().eintr, 0u);
}

TEST(SysFault, RetryReadReportsEofAndWouldBlock) {
  SysOps& sys = real_sys_ops();
  Pipe p;
  ::close(p.wr);
  p.wr = -1;
  char c;
  EXPECT_EQ(IoStatus::kEof, retry_read(sys, p.rd, &c, 1).status);

  Pipe np;
  ::fcntl(np.rd, F_SETFL, O_NONBLOCK);
  EXPECT_EQ(IoStatus::kWouldBlock, retry_read(sys, np.rd, &c, 1).status);
}

TEST(SysFault, RetrySendSurfacesHardErrors) {
  SysOps& sys = real_sys_ops();
  SocketPair sp;
  ::close(sp.b);
  sp.b = -1;
  const char msg[] = "x";
  // First send may succeed (peer closed but buffer open); the second hits
  // EPIPE. MSG_NOSIGNAL keeps the test alive.
  IoResult r = retry_send(sys, sp.a, msg, 1, MSG_NOSIGNAL);
  if (r.status == IoStatus::kOk) r = retry_send(sys, sp.a, msg, 1, MSG_NOSIGNAL);
  EXPECT_EQ(IoStatus::kError, r.status);
  EXPECT_EQ(EPIPE, r.err);
}

TEST(SysFault, DelayedReadinessReportsNothingReady) {
  SysFaultPlan plan;
  plan.delayed_ready_p = 1.0;
  FaultySysOps sys(plan);
  Pipe p;
  ASSERT_EQ(1, real_sys_ops().write(p.wr, "x", 1));
  pollfd pfd{p.rd, POLLIN, 0};
  // Data is waiting, but the injected delay hides it this round.
  EXPECT_EQ(0, sys.poll_wait(&pfd, 1, 0));
  EXPECT_EQ(0, pfd.revents);
  EXPECT_GE(sys.log().delayed_ready, 1u);
  // A level-triggered re-poll with faults off sees it immediately.
  sys.set_enabled(false);
  EXPECT_EQ(1, sys.poll_wait(&pfd, 1, 0));
  EXPECT_NE(0, pfd.revents & POLLIN);
}

TEST(SysFault, SummaryListsNonzeroCountersOnly) {
  SysFaultLog log;
  EXPECT_EQ("clean", log.summary());
  EXPECT_EQ(0, log.classes_fired());
  log.eintr = 3;
  log.rename_failures = 1;
  EXPECT_EQ("eintr=3 rename_failures=1", log.summary());
  EXPECT_EQ(2, log.classes_fired());
}

TEST(SysFault, FactoryPlansCoverTheirPlane) {
  const SysFaultPlan net = SysFaultPlan::network(0.1);
  EXPECT_GT(net.eintr_p, 0.0);
  EXPECT_GT(net.conn_reset_p, 0.0);
  EXPECT_EQ(0.0, net.write_enospc_p);

  const SysFaultPlan sto = SysFaultPlan::storage(0.1);
  EXPECT_EQ(0.0, sto.eintr_p);
  EXPECT_GT(sto.write_enospc_p, 0.0);
  EXPECT_GT(sto.fsync_fail_p, 0.0);

  const SysFaultPlan both = SysFaultPlan::compound(0.1);
  EXPECT_GT(both.eintr_p, 0.0);
  EXPECT_GT(both.write_enospc_p, 0.0);
  EXPECT_GT(both.burst_period, 0u);
}

}  // namespace
}  // namespace uncharted::faultinject
