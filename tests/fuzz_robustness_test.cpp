// Fuzz-style robustness sweep: every decoder in the repository is fed
// random bytes and mutations of the shared seed corpus (tests/corpus — the
// same seeds the libFuzzer harnesses in tests/fuzz start from). Decoders
// must return errors, not crash, hang, or read out of bounds; the
// debug-asan-ubsan preset runs this suite with the full sanitizer wall.
#include <gtest/gtest.h>

#include "corpus/corpus.hpp"
#include "iccp/iccp.hpp"
#include "iec101/ft12.hpp"
#include "iec104/parser.hpp"
#include "net/frame.hpp"
#include "net/pcap.hpp"
#include "net/reassembly.hpp"
#include "netd/wire.hpp"
#include "synchro/c37118.hpp"
#include "util/rng.hpp"

namespace uncharted {
namespace {

std::vector<std::uint8_t> random_bytes(Rng& rng, std::size_t max_len) {
  std::vector<std::uint8_t> out(rng.below(max_len + 1));
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.below(256));
  return out;
}

/// Flips a few random bits/bytes of a valid message.
std::vector<std::uint8_t> mutate(Rng& rng, std::vector<std::uint8_t> bytes) {
  if (bytes.empty()) return bytes;
  int flips = static_cast<int>(1 + rng.below(4));
  for (int i = 0; i < flips; ++i) {
    auto pos = rng.below(bytes.size());
    bytes[pos] ^= static_cast<std::uint8_t>(1 + rng.below(255));
  }
  if (rng.chance(0.3) && bytes.size() > 2) {
    bytes.resize(bytes.size() - 1 - rng.below(bytes.size() / 2));
  }
  return bytes;
}

/// Mutations of every corpus seed in one category, `rounds` per seed.
void sweep_category(Rng& rng, corpus::Category category, int rounds,
                    const std::function<void(std::span<const std::uint8_t>)>& decode) {
  auto seeds = corpus::seeds_for(category);
  ASSERT_FALSE(seeds.empty()) << "no corpus seeds for " << corpus::category_name(category);
  for (const auto* seed : seeds) {
    decode(seed->bytes);  // the seed itself must already be handled cleanly
    for (int i = 0; i < rounds; ++i) {
      auto mutated = mutate(rng, seed->bytes);
      decode(mutated);
    }
  }
}

TEST(Fuzz, EthernetFrameDecoder) {
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    auto bytes = random_bytes(rng, 120);
    (void)net::decode_frame(bytes);  // must not crash
  }
}

TEST(Fuzz, MutatedFrameCorpus) {
  Rng rng(2);
  sweep_category(rng, corpus::Category::kFrame, 200, [](auto bytes) {
    (void)net::decode_frame(bytes);
    (void)net::PcapReader::read_buffer(bytes);
  });
}

TEST(Fuzz, PcapReader) {
  Rng rng(3);
  for (int i = 0; i < 300; ++i) {
    (void)net::PcapReader::read_buffer(random_bytes(rng, 200));
  }
}

TEST(Fuzz, Iec104Decoders) {
  Rng rng(4);
  for (int i = 0; i < 500; ++i) {
    auto bytes = random_bytes(rng, 260);
    ByteReader r(bytes);
    (void)iec104::decode_apdu(r);
    (void)iec104::detect_profiles(bytes);
  }
  sweep_category(rng, corpus::Category::kIec104, 150, [](auto bytes) {
    for (const auto& profile : iec104::candidate_profiles()) {
      ByteReader r(bytes);
      (void)iec104::decode_apdu(r, profile);
    }
    (void)iec104::detect_profiles(bytes);
  });
}

TEST(Fuzz, Ft12Decoder) {
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    auto bytes = random_bytes(rng, 100);
    ByteReader r(bytes);
    (void)iec101::decode_ft12(r);
  }
  sweep_category(rng, corpus::Category::kFt12, 200, [](auto bytes) {
    ByteReader r(bytes);
    auto frame = iec101::decode_ft12(r);
    if (frame.ok()) (void)iec101::unframe_asdu(*frame);
  });
}

TEST(Fuzz, TapstreamWireDecoders) {
  Rng rng(11);
  const auto decode_all = [](std::span<const std::uint8_t> bytes) {
    {
      ByteReader r(bytes);
      (void)netd::wire::decode_hello(r);
    }
    {
      ByteReader r(bytes);
      (void)netd::wire::decode_hello_ack(r);
    }
    {
      ByteReader r(bytes);
      auto rec = netd::wire::decode_record_header(r);
      if (rec.ok()) (void)r.skip(rec->cap_len);
    }
    {
      ByteReader r(bytes);
      (void)netd::wire::decode_fin(r);
    }
    {
      ByteReader r(bytes);
      (void)netd::wire::decode_fin_ack(r);
    }
  };
  for (int i = 0; i < 500; ++i) decode_all(random_bytes(rng, 64));
  sweep_category(rng, corpus::Category::kTapstream, 200, decode_all);
}

TEST(Fuzz, C37118Decoder) {
  Rng rng(6);
  synchro::ConfigFrame cfg;
  synchro::PmuConfig pmu;
  pmu.phasor_names = {"VA"};
  pmu.phasor_units = {915527};
  cfg.pmus.push_back(pmu);
  for (int i = 0; i < 500; ++i) {
    (void)synchro::decode_frame(random_bytes(rng, 100), &cfg);
    (void)synchro::split_stream(random_bytes(rng, 200));
  }
  sweep_category(rng, corpus::Category::kC37118, 150, [&cfg](auto bytes) {
    (void)synchro::decode_frame(bytes, &cfg);
    (void)synchro::decode_frame(bytes, nullptr);
    (void)synchro::split_stream(bytes);
  });
}

TEST(Fuzz, IccpDecoder) {
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    auto garbage = random_bytes(rng, 120);
    ByteReader r1(garbage);
    (void)iccp::from_wire(r1);
  }
  sweep_category(rng, corpus::Category::kIccp, 200, [](auto bytes) {
    ByteReader r(bytes);
    (void)iccp::from_wire(r);
    (void)iccp::Message::decode(bytes);
  });
}

TEST(Fuzz, StreamParserOnMutatedTraffic) {
  Rng rng(8);
  // A valid stream with a mutation in the middle must resynchronize and
  // keep parsing later APDUs where possible — and never crash.
  iec104::Asdu asdu;
  asdu.type = iec104::TypeId::M_ME_NC_1;
  asdu.common_address = 7;
  asdu.objects.push_back({100, iec104::ShortFloat{1.0f, {}}, std::nullopt});
  auto one = iec104::Apdu::make_i(0, 0, asdu).encode().take();
  for (int i = 0; i < 200; ++i) {
    std::vector<std::uint8_t> stream;
    for (int k = 0; k < 5; ++k) stream.insert(stream.end(), one.begin(), one.end());
    auto mutated = mutate(rng, stream);
    iec104::ApduStreamParser parser;
    parser.feed(0, mutated);
    EXPECT_LE(parser.apdus().size(), 5u * 4u);  // sanity bound
  }
}

TEST(Fuzz, StreamParserOnMutatedCorpusConcatenations) {
  Rng rng(9);
  auto seeds = corpus::seeds_for(corpus::Category::kIec104);
  for (int i = 0; i < 150; ++i) {
    std::vector<std::uint8_t> stream;
    for (int k = 0; k < 4; ++k) {
      const auto& seed = seeds[rng.below(seeds.size())]->bytes;
      stream.insert(stream.end(), seed.begin(), seed.end());
    }
    iec104::ApduStreamParser parser;
    parser.feed(0, mutate(rng, stream));
  }
}

// Every corpus seed tagged as a valid wire message must actually decode —
// guards the corpus itself against rotting as encoders evolve.
TEST(Corpus, ValidSeedsDecode) {
  for (const auto* seed : corpus::seeds_for(corpus::Category::kIec104)) {
    if (seed->name.rfind("apdu_i_", 0) == 0 || seed->name.rfind("apdu_s_", 0) == 0 ||
        seed->name.rfind("apdu_u_", 0) == 0) {
      EXPECT_FALSE(iec104::detect_profiles(seed->bytes).empty())
          << seed->name << " should decode under at least one profile";
    }
  }
  for (const auto* seed : corpus::seeds_for(corpus::Category::kFt12)) {
    if (seed->name.rfind("ft12_bad", 0) == 0) continue;
    ByteReader r(seed->bytes);
    EXPECT_TRUE(iec101::decode_ft12(r).ok()) << seed->name;
  }
}

}  // namespace
}  // namespace uncharted
