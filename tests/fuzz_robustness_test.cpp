// Fuzz-style robustness sweep: every decoder in the repository is fed
// random bytes and mutated valid inputs. Decoders must return errors, not
// crash, hang, or read out of bounds (run under ASan for full effect).
#include <gtest/gtest.h>

#include "iccp/iccp.hpp"
#include "iec101/ft12.hpp"
#include "iec104/parser.hpp"
#include "net/frame.hpp"
#include "net/pcap.hpp"
#include "synchro/c37118.hpp"
#include "util/rng.hpp"

namespace uncharted {
namespace {

std::vector<std::uint8_t> random_bytes(Rng& rng, std::size_t max_len) {
  std::vector<std::uint8_t> out(rng.below(max_len + 1));
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.below(256));
  return out;
}

/// Flips a few random bits/bytes of a valid message.
std::vector<std::uint8_t> mutate(Rng& rng, std::vector<std::uint8_t> bytes) {
  if (bytes.empty()) return bytes;
  int flips = static_cast<int>(1 + rng.below(4));
  for (int i = 0; i < flips; ++i) {
    auto pos = rng.below(bytes.size());
    bytes[pos] ^= static_cast<std::uint8_t>(1 + rng.below(255));
  }
  if (rng.chance(0.3) && bytes.size() > 2) {
    bytes.resize(bytes.size() - 1 - rng.below(bytes.size() / 2));
  }
  return bytes;
}

TEST(Fuzz, EthernetFrameDecoder) {
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    auto bytes = random_bytes(rng, 120);
    (void)net::decode_frame(bytes);  // must not crash
  }
}

TEST(Fuzz, MutatedTcpFrames) {
  Rng rng(2);
  std::uint8_t payload[] = {0x68, 0x04, 0x43, 0x00, 0x00, 0x00};
  net::TcpSegmentSpec spec;
  spec.src_ip = net::Ipv4Addr::from_octets(10, 0, 0, 1);
  spec.dst_ip = net::Ipv4Addr::from_octets(10, 1, 0, 1);
  spec.src_port = 40000;
  spec.dst_port = 2404;
  spec.payload = payload;
  auto valid = net::build_tcp_frame(spec);
  for (int i = 0; i < 500; ++i) {
    (void)net::decode_frame(mutate(rng, valid));
  }
}

TEST(Fuzz, PcapReader) {
  Rng rng(3);
  for (int i = 0; i < 300; ++i) {
    (void)net::PcapReader::read_buffer(random_bytes(rng, 200));
  }
  // Mutated valid pcap bytes.
  ByteWriter w;
  w.u32le(net::kPcapMagic);
  w.u16le(2);
  w.u16le(4);
  w.u32le(0);
  w.u32le(0);
  w.u32le(65535);
  w.u32le(1);
  w.u32le(0);
  w.u32le(0);
  w.u32le(6);
  w.u32le(6);
  for (int i = 0; i < 6; ++i) w.u8(0xaa);
  auto valid = w.take();
  for (int i = 0; i < 300; ++i) {
    (void)net::PcapReader::read_buffer(mutate(rng, valid));
  }
}

TEST(Fuzz, Iec104Decoders) {
  Rng rng(4);
  for (int i = 0; i < 500; ++i) {
    auto bytes = random_bytes(rng, 260);
    ByteReader r(bytes);
    (void)iec104::decode_apdu(r);
    (void)iec104::detect_profiles(bytes);
  }
}

TEST(Fuzz, Ft12Decoder) {
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    auto bytes = random_bytes(rng, 100);
    ByteReader r(bytes);
    (void)iec101::decode_ft12(r);
  }
}

TEST(Fuzz, C37118Decoder) {
  Rng rng(6);
  synchro::ConfigFrame cfg;
  synchro::PmuConfig pmu;
  pmu.phasor_names = {"VA"};
  pmu.phasor_units = {915527};
  cfg.pmus.push_back(pmu);
  auto valid = synchro::encode_config(cfg);
  for (int i = 0; i < 500; ++i) {
    (void)synchro::decode_frame(random_bytes(rng, 100), &cfg);
    (void)synchro::decode_frame(mutate(rng, valid), &cfg);
    (void)synchro::split_stream(random_bytes(rng, 200));
  }
}

TEST(Fuzz, IccpDecoder) {
  Rng rng(7);
  iccp::Message m;
  m.type = iccp::MessageType::kInformationReport;
  m.points.push_back({"X", 1.0, 0});
  auto valid = m.to_wire();
  for (int i = 0; i < 500; ++i) {
    auto garbage = random_bytes(rng, 120);
    ByteReader r1(garbage);
    (void)iccp::from_wire(r1);
    auto mutated = mutate(rng, valid);
    ByteReader r2(mutated);
    (void)iccp::from_wire(r2);
  }
}

TEST(Fuzz, StreamParserOnMutatedTraffic) {
  Rng rng(8);
  // A valid stream with a mutation in the middle must resynchronize and
  // keep parsing later APDUs where possible — and never crash.
  iec104::Asdu asdu;
  asdu.type = iec104::TypeId::M_ME_NC_1;
  asdu.common_address = 7;
  asdu.objects.push_back({100, iec104::ShortFloat{1.0f, {}}, std::nullopt});
  auto one = iec104::Apdu::make_i(0, 0, asdu).encode().take();
  for (int i = 0; i < 200; ++i) {
    std::vector<std::uint8_t> stream;
    for (int k = 0; k < 5; ++k) stream.insert(stream.end(), one.begin(), one.end());
    auto mutated = mutate(rng, stream);
    iec104::ApduStreamParser parser;
    parser.feed(0, mutated);
    EXPECT_LE(parser.apdus().size(), 5u * 4u);  // sanity bound
  }
}

}  // namespace
}  // namespace uncharted
