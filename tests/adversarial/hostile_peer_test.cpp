// Adversarial suite: plays every sim::HostilePeer scenario through the
// full capture pipeline and asserts the three hardening properties —
// nothing crashes, every attack is flagged hostile, and hostility is
// never misattributed to legitimate peers or benign fleets.
#include "sim/hostile.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <vector>

#include "analysis/conformance_audit.hpp"
#include "core/streaming.hpp"
#include "sim/capture.hpp"

namespace uncharted::sim {
namespace {

const net::Ipv4Addr kAttackerIp = net::Ipv4Addr::from_octets(10, 9, 9, 9);
const net::Ipv4Addr kVictimIp = net::Ipv4Addr::from_octets(10, 0, 2, 50);

/// Collects synthesized frames as captured packets, time-sorted.
struct PacketSink {
  std::vector<net::CapturedPacket> packets;

  FrameSink sink() {
    return [this](Timestamp ts, std::vector<std::uint8_t> frame) {
      net::CapturedPacket pkt;
      pkt.ts = ts;
      pkt.original_length = static_cast<std::uint32_t>(frame.size());
      pkt.data = std::move(frame);
      packets.push_back(std::move(pkt));
    };
  }

  std::vector<net::CapturedPacket> sorted() {
    std::stable_sort(packets.begin(), packets.end(),
                     [](const net::CapturedPacket& a, const net::CapturedPacket& b) {
                       return a.ts < b.ts;
                     });
    return packets;
  }
};

analysis::ConformanceReport audit(const std::vector<net::CapturedPacket>& packets) {
  auto dataset = analysis::CaptureDataset::build(packets);
  return analysis::audit_conformance(dataset);
}

/// Zero hostile-severity evidence anywhere in the report.
void expect_no_hostility(const analysis::ConformanceReport& report) {
  EXPECT_EQ(report.hostile_connections, 0u);
  EXPECT_EQ(report.hostile_events, 0u);
  for (const auto& entry : report.entries) {
    EXPECT_NE(entry.verdict, iec104::Verdict::kHostile) << entry.pair.str();
    for (const auto& v : entry.profile.violations) {
      EXPECT_NE(v.severity, iec104::Severity::kHostile)
          << entry.pair.str() << ": " << iec104::violation_code_name(v.code)
          << " x" << v.count << " (" << v.detail << ")";
    }
  }
}

TEST(HostilePeer, EveryScenarioIsFlaggedHostile) {
  for (auto scenario : all_hostile_scenarios()) {
    SCOPED_TRACE(hostile_scenario_name(scenario));
    PacketSink sink;
    Rng rng(7);
    HostilePeer peer(kAttackerIp, Endpoint::make(kVictimIp, iec104::kIec104Port),
                     sink.sink(), &rng);
    peer.run(scenario, from_seconds(1.0));

    auto report = audit(sink.sorted());
    ASSERT_FALSE(report.entries.empty());
    // The capture holds nothing but this attack: every endpoint pair in it
    // must come back hostile, whichever (spoofed) source it used.
    for (const auto& entry : report.entries) {
      EXPECT_EQ(entry.verdict, iec104::Verdict::kHostile)
          << entry.pair.str() << ": " << entry.profile.summary();
    }
    EXPECT_TRUE(report.any_hostile());
  }
}

TEST(HostilePeer, HostilityIsNotMisattributedToLegitimatePeers) {
  // The victim serves one fully conforming SCADA peer while a spoofed
  // command sweep hammers it: the sweep's flows are hostile, the
  // legitimate pair must stay clean.
  PacketSink sink;
  Rng rng(11);
  auto scada_ip = net::Ipv4Addr::from_octets(10, 0, 1, 1);
  Endpoint scada = Endpoint::make(scada_ip, 40100);
  Endpoint victim = Endpoint::make(kVictimIp, iec104::kIec104Port);
  SimTcpConnection legit(scada, victim, sink.sink(), &rng);

  Timestamp ts = legit.open(from_seconds(0.5));
  auto send = [&](bool from_scada, const iec104::Apdu& apdu) {
    ts = legit.send(ts + 50'000, from_scada, apdu.encode().value());
  };
  send(true, iec104::Apdu::make_u(iec104::UFunction::kStartDtAct));
  send(false, iec104::Apdu::make_u(iec104::UFunction::kStartDtCon));
  for (std::uint16_t ns = 0; ns < 6; ++ns) {
    iec104::Asdu asdu;
    asdu.type = iec104::TypeId::M_ME_NC_1;
    asdu.cot.cause = iec104::Cause::kSpontaneous;
    asdu.common_address = 3;
    asdu.objects.push_back({2001, iec104::ShortFloat{50.0f, {}}, std::nullopt});
    send(false, iec104::Apdu::make_i(ns, 0, asdu));
    if (ns % 2 == 1) send(true, iec104::Apdu::make_s(ns + 1));
  }
  HostilePeer peer(kAttackerIp, victim, sink.sink(), &rng);
  ts = peer.run(HostileScenario::kSpoofedCommandSweep, ts + 100'000);
  send(true, iec104::Apdu::make_s(6));
  legit.close_fin(ts + from_seconds(1.0), true);

  auto report = audit(sink.sorted());
  auto legit_pair = analysis::EndpointPair::of(scada_ip, kVictimIp);
  std::size_t hostile = 0;
  bool legit_seen = false;
  for (const auto& entry : report.entries) {
    if (entry.pair == legit_pair) {
      legit_seen = true;
      EXPECT_EQ(entry.verdict, iec104::Verdict::kClean)
          << entry.profile.summary();
    } else {
      EXPECT_EQ(entry.verdict, iec104::Verdict::kHostile)
          << entry.pair.str() << ": " << entry.profile.summary();
      ++hostile;
    }
  }
  EXPECT_TRUE(legit_seen);
  EXPECT_EQ(hostile, 3u);  // one per spoofed source address
}

TEST(HostilePeer, BenignYear1FleetProducesZeroHostileEvidence) {
  // The false-positive floor: a full simulated Y1 fleet — keep-alive
  // loops, TCP retransmissions, mid-stream pre-capture flows and all —
  // must not put a single hostile-severity violation on any pair.
  auto capture = generate_capture(CaptureConfig::y1(120.0));
  expect_no_hostility(audit(capture.packets));
}

TEST(HostilePeer, BenignYear2FleetProducesZeroHostileEvidence) {
  auto capture = generate_capture(CaptureConfig::y2(120.0));
  expect_no_hostility(audit(capture.packets));
}

TEST(HostilePeer, ConformanceReportSurvivesCheckpointRestore) {
  // A mixed benign+attack capture analyzed straight through must equal
  // the same capture analyzed across a crash/restore boundary.
  auto benign = generate_capture(CaptureConfig::y1(60.0));
  PacketSink sink;
  Rng rng(13);
  HostilePeer peer(kAttackerIp, Endpoint::make(kVictimIp, iec104::kIec104Port),
                   sink.sink(), &rng);
  peer.run_all(benign.truth.start_ts + from_seconds(5.0));
  auto packets = benign.packets;
  for (auto& pkt : sink.packets) packets.push_back(std::move(pkt));
  std::stable_sort(packets.begin(), packets.end(),
                   [](const net::CapturedPacket& a, const net::CapturedPacket& b) {
                     return a.ts < b.ts;
                   });

  core::StreamingOptions options;
  options.analyze.keep_series = false;
  options.checkpoint_path = ::testing::TempDir() + "hostile_peer_test.ckpt";
  std::filesystem::remove(options.checkpoint_path);
  std::filesystem::remove(options.checkpoint_path + ".1");

  const std::size_t cut = packets.size() / 2;
  {
    core::StreamingAnalyzer first(options);
    first.add_packets({packets.data(), cut});
    ASSERT_TRUE(first.checkpoint_now().ok());
  }
  core::StreamingAnalyzer second(options);
  ASSERT_TRUE(second.try_restore());
  second.add_packets({packets.data() + cut, packets.size() - cut});
  auto restored = second.finalize();

  core::StreamingAnalyzer straight(options);
  straight.add_packets(packets);
  auto batch = straight.finalize();

  const auto& got = restored.conformance;
  const auto& want = batch.conformance;
  EXPECT_TRUE(want.any_hostile());
  EXPECT_EQ(got.hostile_connections, want.hostile_connections);
  EXPECT_EQ(got.suspect_connections, want.suspect_connections);
  EXPECT_EQ(got.legacy_connections, want.legacy_connections);
  EXPECT_EQ(got.clean_connections, want.clean_connections);
  EXPECT_EQ(got.hostile_events, want.hostile_events);
  ASSERT_EQ(got.entries.size(), want.entries.size());
  for (std::size_t i = 0; i < got.entries.size(); ++i) {
    EXPECT_EQ(got.entries[i].pair, want.entries[i].pair);
    EXPECT_EQ(got.entries[i].verdict, want.entries[i].verdict)
        << got.entries[i].pair.str();
    EXPECT_EQ(got.entries[i].profile.hostile_events,
              want.entries[i].profile.hostile_events);
    EXPECT_EQ(got.entries[i].flows, want.entries[i].flows);
  }
}

TEST(HostilePeer, FullSweepDegradesGracefullyInEveryParseMode) {
  // No crash, no exception, a renderable report — under the tolerant and
  // strict parsers, per-packet and reassembled, with a benign fleet mixed
  // in. This is the test the sanitizer presets run in CI's chaos job.
  auto benign = generate_capture(CaptureConfig::y1(30.0));
  PacketSink sink;
  Rng rng(17);
  HostilePeer peer(kAttackerIp, Endpoint::make(kVictimIp, iec104::kIec104Port),
                   sink.sink(), &rng);
  peer.run_all(benign.truth.start_ts + from_seconds(2.0));
  auto packets = benign.packets;
  for (auto& pkt : sink.packets) packets.push_back(std::move(pkt));
  std::stable_sort(packets.begin(), packets.end(),
                   [](const net::CapturedPacket& a, const net::CapturedPacket& b) {
                     return a.ts < b.ts;
                   });

  for (auto mode : {analysis::ParseMode::kPerPacket, analysis::ParseMode::kReassembled}) {
    for (auto parser : {iec104::ApduStreamParser::Mode::kTolerant,
                        iec104::ApduStreamParser::Mode::kStrict}) {
      analysis::CaptureDataset::Options options;
      options.mode = mode;
      options.parser_mode = parser;
      auto dataset = analysis::CaptureDataset::build(packets, options);
      auto report = analysis::audit_conformance(dataset);
      EXPECT_TRUE(report.any_hostile());
      for (const auto& entry : report.entries) {
        EXPECT_FALSE(entry.profile.summary().empty());
      }
    }
  }
}

}  // namespace
}  // namespace uncharted::sim
