#include "util/strings.hpp"

#include <gtest/gtest.h>

namespace uncharted {
namespace {

TEST(FormatDouble, Precision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(-0.5, 0), "-0");
  EXPECT_EQ(format_double(2.0, 3), "2.000");
}

TEST(FormatPercent, Table7Style) {
  EXPECT_EQ(format_percent(0.651322), "65.1322%");
  EXPECT_EQ(format_percent(0.5, 1), "50.0%");
}

TEST(FormatDuration, PicksUnits) {
  EXPECT_EQ(format_duration(0.0000005), "0.5 us");
  EXPECT_EQ(format_duration(0.0124), "12.4 ms");
  EXPECT_EQ(format_duration(4.3), "4.3 s");
  EXPECT_EQ(format_duration(430.0), "7.2 min");
  EXPECT_EQ(format_duration(7300.0), "2.0 h");
}

TEST(FormatCount, ThousandsSeparators) {
  EXPECT_EQ(format_count(0), "0");
  EXPECT_EQ(format_count(999), "999");
  EXPECT_EQ(format_count(31614), "31,614");
  EXPECT_EQ(format_count(1234567), "1,234,567");
}

TEST(Split, KeepsEmptyFields) {
  auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(split("", ',').size(), 1u);
}

TEST(Join, RoundTripsSplit) {
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(join(parts, "-"), "x-y-z");
  EXPECT_EQ(split(join(parts, ","), ','), parts);
  EXPECT_EQ(join({}, ","), "");
}

}  // namespace
}  // namespace uncharted
