#include "util/expected.hpp"

#include <memory>
#include <string>

#include <gtest/gtest.h>

namespace uncharted {
namespace {

Result<int> parse_positive(int v) {
  if (v <= 0) return Err("not-positive", std::to_string(v));
  return v;
}

TEST(Result, ValueAndErrorPaths) {
  auto ok = parse_positive(5);
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(static_cast<bool>(ok));
  EXPECT_EQ(ok.value(), 5);
  EXPECT_EQ(*ok, 5);

  auto bad = parse_positive(-1);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, "not-positive");
  EXPECT_EQ(bad.error().detail, "-1");
}

TEST(Result, ErrorStrFormatting) {
  EXPECT_EQ(Err("truncated", "need 4 bytes").str(), "truncated: need 4 bytes");
  EXPECT_EQ(Err("closed").str(), "closed");
}

TEST(Result, TakeMovesOutValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  auto owned = std::move(r).take();
  ASSERT_TRUE(owned);
  EXPECT_EQ(*owned, 7);
}

TEST(Result, ArrowOperator) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r->size(), 5u);
  r->append("!");
  EXPECT_EQ(*r, "hello!");
}

TEST(Result, ErrorPropagationPattern) {
  // The codebase's idiom: return inner.error() to convert Result<A> to
  // Result<B> on failure.
  auto chain = [](int v) -> Result<std::string> {
    auto inner = parse_positive(v);
    if (!inner) return inner.error();
    return std::to_string(inner.value());
  };
  EXPECT_EQ(chain(3).value(), "3");
  EXPECT_EQ(chain(0).error().code, "not-positive");
}

TEST(Status, OkAndError) {
  Status ok = Status::Ok();
  EXPECT_TRUE(ok.ok());
  EXPECT_TRUE(static_cast<bool>(ok));

  Status bad = Err("write-failed", "/tmp/x");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, "write-failed");

  Status default_constructed;
  EXPECT_TRUE(default_constructed.ok());
}

TEST(Result, ImplicitConversionFromValueAndError) {
  // Both directions of the implicit constructor are used pervasively.
  auto make = [](bool good) -> Result<double> {
    if (good) return 1.5;
    return Err("nope");
  };
  EXPECT_TRUE(make(true).ok());
  EXPECT_FALSE(make(false).ok());
}

}  // namespace
}  // namespace uncharted
