#include "util/rng.hpp"

#include <gtest/gtest.h>

namespace uncharted {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    double v = rng.uniform(5.0, 6.0);
    EXPECT_GE(v, 5.0);
    EXPECT_LT(v, 6.0);
  }
}

TEST(Rng, BelowAndRange) {
  Rng rng(8);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(10), 10u);
    auto r = rng.range(-3, 3);
    EXPECT_GE(r, -3);
    EXPECT_LE(r, 3);
  }
}

TEST(Rng, NormalMomentsRoughlyCorrect) {
  Rng rng(9);
  double sum = 0.0, sum2 = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  double mean = sum / n;
  double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, ExponentialMeanRoughlyCorrect) {
  Rng rng(10);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.15);
}

TEST(Rng, ChanceProbability) {
  Rng rng(11);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (rng.chance(0.25)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

}  // namespace
}  // namespace uncharted
