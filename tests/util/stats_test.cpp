#include "util/stats.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace uncharted {
namespace {

TEST(RunningStats, MatchesNaiveComputation) {
  Rng rng(99);
  std::vector<double> values;
  RunningStats stats;
  for (int i = 0; i < 500; ++i) {
    double v = rng.normal(10.0, 3.0);
    values.push_back(v);
    stats.add(v);
  }
  EXPECT_NEAR(stats.mean(), mean_of(values), 1e-9);
  EXPECT_NEAR(stats.variance(), variance_of(values), 1e-7);
  EXPECT_EQ(stats.count(), values.size());
}

TEST(RunningStats, EmptyAndSingle) {
  RunningStats s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  s.add(5.0);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(Percentile, InterpolatesLinearly) {
  std::vector<double> v = {1, 2, 3, 4, 5};
  EXPECT_EQ(percentile(v, 0), 1.0);
  EXPECT_EQ(percentile(v, 100), 5.0);
  EXPECT_EQ(percentile(v, 50), 3.0);
  EXPECT_NEAR(percentile(v, 25), 2.0, 1e-12);
  EXPECT_NEAR(percentile(v, 90), 4.6, 1e-12);
  EXPECT_EQ(percentile({}, 50), 0.0);
}

TEST(NormalizedVariance, ScaleInvariantForNonzeroMean) {
  std::vector<double> base = {10, 11, 9, 10.5, 9.5};
  std::vector<double> scaled;
  for (double v : base) scaled.push_back(v * 1000.0);
  EXPECT_NEAR(normalized_variance(base), normalized_variance(scaled), 1e-9);
}

TEST(NormalizedVariance, ZeroMeanFallsBackToPlainVariance) {
  std::vector<double> v = {-1, 1, -1, 1};
  EXPECT_NEAR(normalized_variance(v), variance_of(v), 1e-12);
}

TEST(NormalizedVariance, ConstantSeriesIsZero) {
  std::vector<double> v(20, 42.0);
  EXPECT_EQ(normalized_variance(v), 0.0);
}

TEST(LogHistogram, BinsByDecade) {
  LogHistogram h(-3, 3, 1);  // 1 ms .. 1000 s, one bin per decade
  h.add(0.005);   // 10^-3..10^-2
  h.add(0.5);     // 10^-1..10^0
  h.add(50.0);    // 10^1..10^2
  h.add(0.0);     // underflow (non-positive)
  h.add(5000.0);  // overflow
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count_at(0), 1u);
  EXPECT_EQ(h.count_at(2), 1u);
  EXPECT_EQ(h.count_at(4), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_NEAR(h.edge(0), 1e-3, 1e-12);
  EXPECT_NEAR(h.edge(3), 1.0, 1e-12);
}

TEST(LogHistogram, SubDecadeBins) {
  LogHistogram h(0, 1, 4);  // 1..10 in 4 bins
  h.add(1.0);
  h.add(9.9);
  EXPECT_EQ(h.count_at(0), 1u);
  EXPECT_EQ(h.count_at(3), 1u);
}

}  // namespace
}  // namespace uncharted
