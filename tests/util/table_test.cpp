#include "util/table.hpp"

#include <gtest/gtest.h>

namespace uncharted {
namespace {

TEST(TextTable, RendersAlignedColumns) {
  TextTable t("Demo");
  t.header({"name", "count"});
  t.row({"short", "1"});
  t.row({"a-much-longer-name", "12345"});
  std::string out = t.render();
  EXPECT_NE(out.find("Demo"), std::string::npos);
  EXPECT_NE(out.find("| name "), std::string::npos);
  EXPECT_NE(out.find("| a-much-longer-name |"), std::string::npos);
  // All lines in the box have equal width.
  std::size_t first_nl = out.find('\n');
  std::size_t second_nl = out.find('\n', first_nl + 1);
  std::size_t rule_len = second_nl - first_nl - 1;
  for (std::size_t pos = first_nl + 1; pos < out.size();) {
    std::size_t next = out.find('\n', pos);
    if (next == std::string::npos) break;
    EXPECT_EQ(next - pos, rule_len);
    pos = next + 1;
  }
}

TEST(TextTable, HandlesRaggedRows) {
  TextTable t;
  t.header({"a", "b", "c"});
  t.row({"only-one"});
  std::string out = t.render();
  EXPECT_NE(out.find("only-one"), std::string::npos);
}

TEST(TextTable, NoHeaderNoTitle) {
  TextTable t;
  t.row({"x", "y"});
  std::string out = t.render();
  EXPECT_NE(out.find("| x | y |"), std::string::npos);
}

}  // namespace
}  // namespace uncharted
