#include "util/bytes.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace uncharted {
namespace {

TEST(ByteWriter, LittleEndianLayout) {
  ByteWriter w;
  w.u16le(0x1234);
  w.u32le(0xdeadbeef);
  ASSERT_EQ(w.size(), 6u);
  auto v = w.view();
  EXPECT_EQ(v[0], 0x34);
  EXPECT_EQ(v[1], 0x12);
  EXPECT_EQ(v[2], 0xef);
  EXPECT_EQ(v[3], 0xbe);
  EXPECT_EQ(v[4], 0xad);
  EXPECT_EQ(v[5], 0xde);
}

TEST(ByteWriter, BigEndianLayout) {
  ByteWriter w;
  w.u16be(0x1234);
  w.u32be(0x01020304);
  auto v = w.view();
  EXPECT_EQ(v[0], 0x12);
  EXPECT_EQ(v[1], 0x34);
  EXPECT_EQ(v[2], 0x01);
  EXPECT_EQ(v[5], 0x04);
}

TEST(ByteWriter, PatchOverwritesInPlace) {
  ByteWriter w;
  w.u32be(0);
  w.patch_u16be(1, 0xabcd);
  auto v = w.view();
  EXPECT_EQ(v[0], 0x00);
  EXPECT_EQ(v[1], 0xab);
  EXPECT_EQ(v[2], 0xcd);
  EXPECT_EQ(v[3], 0x00);
}

TEST(ByteReader, ReadsInOrder) {
  ByteWriter w;
  w.u8(7);
  w.u16le(300);
  w.u32be(123456);
  ByteReader r(w.view());
  EXPECT_EQ(r.u8().value(), 7);
  EXPECT_EQ(r.u16le().value(), 300);
  EXPECT_EQ(r.u32be().value(), 123456u);
  EXPECT_TRUE(r.empty());
}

TEST(ByteReader, TruncationPoisonsSubsequentReads) {
  std::uint8_t data[3] = {1, 2, 3};
  ByteReader r(std::span<const std::uint8_t>(data, 3));
  EXPECT_TRUE(r.u16le().ok());
  auto fail = r.u16le();
  ASSERT_FALSE(fail.ok());
  EXPECT_EQ(fail.error().code, "truncated");
  EXPECT_TRUE(r.failed());
  // Poisoned: even a 1-byte read now fails, so decode chains can't
  // "succeed" past an earlier failure.
  EXPECT_FALSE(r.u8().ok());
  // seek() clears the failure state.
  r.seek(2);
  EXPECT_EQ(r.u8().value(), 3);
}

TEST(ByteReader, SkipAndSeek) {
  std::uint8_t data[5] = {1, 2, 3, 4, 5};
  ByteReader r(std::span<const std::uint8_t>(data, 5));
  ASSERT_TRUE(r.skip(2).ok());
  EXPECT_EQ(r.u8().value(), 3);
  r.seek(0);
  EXPECT_EQ(r.u8().value(), 1);
  EXPECT_FALSE(r.skip(10).ok());
}

TEST(ByteReader, BytesReturnsSubspanWithoutCopy) {
  std::uint8_t data[4] = {9, 8, 7, 6};
  ByteReader r(std::span<const std::uint8_t>(data, 4));
  auto span = r.bytes(3);
  ASSERT_TRUE(span.ok());
  EXPECT_EQ(span->data(), data);
  EXPECT_EQ(span->size(), 3u);
  EXPECT_EQ(r.remaining(), 1u);
}

TEST(Bytes, FloatRoundTripExactBits) {
  for (float f : {0.0f, 1.0f, -123.456f, 3.4e38f, 1.17e-38f}) {
    ByteWriter w;
    w.f32le(f);
    ByteReader r(w.view());
    EXPECT_EQ(r.f32le().value(), f);
  }
}

// Property: every integer width round-trips through write+read for random
// values in both endiannesses.
TEST(BytesProperty, RandomRoundTrips) {
  Rng rng(1234);
  for (int i = 0; i < 2000; ++i) {
    std::uint64_t v = rng.next_u64();
    ByteWriter w;
    w.u8(static_cast<std::uint8_t>(v));
    w.u16le(static_cast<std::uint16_t>(v));
    w.u16be(static_cast<std::uint16_t>(v));
    w.u32le(static_cast<std::uint32_t>(v));
    w.u32be(static_cast<std::uint32_t>(v));
    w.u64le(v);
    ByteReader r(w.view());
    EXPECT_EQ(r.u8().value(), static_cast<std::uint8_t>(v));
    EXPECT_EQ(r.u16le().value(), static_cast<std::uint16_t>(v));
    EXPECT_EQ(r.u16be().value(), static_cast<std::uint16_t>(v));
    EXPECT_EQ(r.u32le().value(), static_cast<std::uint32_t>(v));
    EXPECT_EQ(r.u32be().value(), static_cast<std::uint32_t>(v));
    EXPECT_EQ(r.u64le().value(), v);
    EXPECT_TRUE(r.empty());
  }
}

TEST(HexDump, Formats) {
  std::uint8_t data[3] = {0x68, 0x0e, 0xff};
  EXPECT_EQ(hex_dump(std::span<const std::uint8_t>(data, 3)), "68 0e ff");
  EXPECT_EQ(hex_dump({}), "");
}

// Regression: multi-byte reads assemble in unsigned arithmetic. All-0xff
// inputs exercise every high bit — a signed `byte << 8`/`<< 24` promotion
// bug would surface here as a wrong value or (under UBSan) a shift report.
TEST(ByteReader, HighBitBoundaryValues) {
  std::vector<std::uint8_t> ones(8, 0xff);
  {
    ByteReader r(ones);
    EXPECT_EQ(r.u16le().value(), 0xffff);
    EXPECT_EQ(r.u16be().value(), 0xffff);
    EXPECT_EQ(r.u32le().value(), 0xffffffffu);
  }
  {
    ByteReader r(ones);
    EXPECT_EQ(r.u32be().value(), 0xffffffffu);
  }
  {
    ByteReader r(ones);
    EXPECT_EQ(r.u64le().value(), 0xffffffffffffffffULL);
  }
  // Sign-bit-only patterns: the top byte alone must land in the top lane.
  std::uint8_t top_le[] = {0x00, 0x80};
  ByteReader r1(std::span<const std::uint8_t>(top_le, 2));
  EXPECT_EQ(r1.u16le().value(), 0x8000);
  std::uint8_t top_be[] = {0x80, 0x00, 0x00, 0x00};
  ByteReader r2(std::span<const std::uint8_t>(top_be, 4));
  EXPECT_EQ(r2.u32be().value(), 0x80000000u);
}

TEST(ByteReader, SeekClearsPoisonAtBoundaries) {
  std::uint8_t data[2] = {0x12, 0x34};
  ByteReader r(std::span<const std::uint8_t>(data, 2));
  EXPECT_FALSE(r.u32le().ok());  // poisons
  EXPECT_TRUE(r.failed());
  r.seek(0);
  EXPECT_FALSE(r.failed());
  EXPECT_EQ(r.u16le().value(), 0x3412);
  // Seeking past the end clamps to the end rather than overflowing.
  r.seek(99);
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_TRUE(r.empty());
}

}  // namespace
}  // namespace uncharted
