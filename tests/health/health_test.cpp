// Registry semantics on a virtual clock: heartbeats, demand parking,
// deadline firing, ladder escalation, rung reset on progress, the
// crash-loop breaker, and the JSON rendering the query socket serves.
#include "health/health.hpp"

#include <gtest/gtest.h>

namespace uncharted::health {
namespace {

struct Fixture {
  double t = 0.0;
  Registry reg{[this] { return t; }};
};

TEST(HealthRegistry, IdleSubsystemNeverStalls) {
  Fixture f;
  f.reg.add("merge", {1.0, {Action::kCondemnStream}});
  f.reg.publish("merge", 0);
  f.reg.set_demand("merge", 0);
  f.t = 100.0;
  EXPECT_TRUE(f.reg.evaluate().empty());
  EXPECT_EQ(f.reg.state("merge"), State::kHealthy);
}

TEST(HealthRegistry, StallFiresOnlyPastDeadlineWithDemand) {
  Fixture f;
  f.reg.add("merge", {1.0, {Action::kCondemnStream}});
  f.reg.set_demand("merge", 512);
  f.t = 0.9;
  EXPECT_TRUE(f.reg.evaluate().empty());
  f.t = 1.1;
  auto events = f.reg.evaluate();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].subsystem, "merge");
  EXPECT_EQ(events[0].action, Action::kCondemnStream);
  EXPECT_GT(events[0].stalled_for_s, 1.0);
  EXPECT_EQ(f.reg.state("merge"), State::kStalled);
}

TEST(HealthRegistry, FiringRearmsForAFullDeadline) {
  Fixture f;
  f.reg.add("merge", {1.0, {Action::kCondemnStream}});
  f.reg.set_demand("merge", 1);
  f.t = 1.5;
  ASSERT_EQ(f.reg.evaluate().size(), 1u);
  // Immediately after firing, the deadline is rearmed: no double fire.
  EXPECT_TRUE(f.reg.evaluate().empty());
  f.t = 2.4;
  EXPECT_TRUE(f.reg.evaluate().empty());
  f.t = 2.6;
  EXPECT_EQ(f.reg.evaluate().size(), 1u);
}

TEST(HealthRegistry, ProgressResetsStateAndLadderRung) {
  Fixture f;
  f.reg.add("lane/3", {1.0, {Action::kRestartLane, Action::kSelfTerminate}});
  f.reg.set_demand("lane/3", 10);
  f.t = 1.5;
  auto first = f.reg.evaluate();
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].action, Action::kRestartLane);
  f.reg.record_recovery("lane/3", first[0].action, true, "restarted");
  EXPECT_EQ(f.reg.state("lane/3"), State::kRecovering);
  // Progress resumes: healthy again, and the ladder starts over.
  f.reg.publish("lane/3", 42);
  EXPECT_EQ(f.reg.state("lane/3"), State::kHealthy);
  f.t = 3.5;
  auto second = f.reg.evaluate();
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].action, Action::kRestartLane);  // rung reset, not terminate
}

TEST(HealthRegistry, LadderEscalatesWhileStallPersists) {
  Fixture f;
  f.reg.add("checkpoint", {1.0,
                           {Action::kRestartCheckpoint, Action::kRestartCheckpoint,
                            Action::kSelfTerminate}});
  f.reg.set_demand("checkpoint", 1);
  std::vector<Action> fired;
  for (int round = 0; round < 3; ++round) {
    f.t += 1.5;
    auto events = f.reg.evaluate();
    ASSERT_EQ(events.size(), 1u) << "round " << round;
    fired.push_back(events[0].action);
    f.reg.record_recovery("checkpoint", events[0].action, false, "still wedged");
  }
  ASSERT_EQ(fired.size(), 3u);
  EXPECT_EQ(fired[0], Action::kRestartCheckpoint);
  EXPECT_EQ(fired[1], Action::kRestartCheckpoint);
  EXPECT_EQ(fired[2], Action::kSelfTerminate);
}

TEST(HealthRegistry, LadderClampsAtLastRung) {
  Fixture f;
  f.reg.configure_breaker({0, 0.0});  // breaker off: isolate the clamp
  f.reg.add("merge", {1.0, {Action::kCondemnStream}});
  f.reg.set_demand("merge", 1);
  for (int round = 0; round < 4; ++round) {
    f.t += 1.5;
    auto events = f.reg.evaluate();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].action, Action::kCondemnStream);
    f.reg.record_recovery("merge", events[0].action, false, "no laggard");
  }
}

TEST(HealthRegistry, CounterRebaseCountsAsProgress) {
  // A recovery that rebuilds the engine resets its counters to zero; the
  // registry must treat the decrease as progress, not a deeper stall.
  Fixture f;
  f.reg.add("lane/0", {1.0, {Action::kRestartLane}});
  f.reg.publish("lane/0", 1000);
  f.reg.set_demand("lane/0", 5);
  f.t = 0.9;
  f.reg.publish("lane/0", 3);  // engine restarted, fresh counter
  f.t = 1.5;
  EXPECT_TRUE(f.reg.evaluate().empty());
  EXPECT_EQ(f.reg.state("lane/0"), State::kHealthy);
}

TEST(HealthRegistry, BreakerOpensAndHaltsRecovery) {
  Fixture f;
  f.reg.configure_breaker({2, 60.0});
  f.reg.add("lane/1", {1.0, {Action::kRestartLane}});
  f.reg.set_demand("lane/1", 1);
  // Two failed recoveries open the breaker...
  for (int round = 0; round < 2; ++round) {
    f.t += 1.5;
    auto events = f.reg.evaluate();
    ASSERT_EQ(events.size(), 1u);
    f.reg.record_recovery("lane/1", events[0].action, false, "wedged");
  }
  EXPECT_TRUE(f.reg.breaker_open("lane/1"));
  EXPECT_EQ(f.reg.state("lane/1"), State::kFailed);
  // ...after which evaluate() emits nothing: no flapping, state stays
  // failed and honest.
  f.t += 10.0;
  EXPECT_TRUE(f.reg.evaluate().empty());
  EXPECT_EQ(f.reg.state("lane/1"), State::kFailed);
  EXPECT_EQ(f.reg.recoveries("lane/1"), 2u);
}

TEST(HealthRegistry, BreakerWindowSlidesAttemptsOut) {
  Fixture f;
  f.reg.configure_breaker({2, 10.0});
  f.reg.add("s", {1.0, {Action::kObserve}});
  f.reg.set_demand("s", 1);
  f.t = 2.0;
  ASSERT_EQ(f.reg.evaluate().size(), 1u);
  f.reg.record_recovery("s", Action::kObserve, true, "one");
  EXPECT_FALSE(f.reg.breaker_open("s"));
  // 20 virtual seconds later the first attempt left the window: a second
  // attempt does not open the breaker.
  f.t = 22.0;
  ASSERT_EQ(f.reg.evaluate().size(), 1u);
  f.reg.record_recovery("s", Action::kObserve, true, "two");
  EXPECT_FALSE(f.reg.breaker_open("s"));
}

TEST(HealthRegistry, LedgerRecordsEveryAttemptInOrder) {
  Fixture f;
  f.reg.add("a", {1.0, {Action::kObserve}});
  f.reg.set_demand("a", 1);
  f.t = 1.5;
  (void)f.reg.evaluate();
  f.reg.record_recovery("a", Action::kObserve, true, "first");
  f.t = 3.5;
  (void)f.reg.evaluate();
  f.reg.record_recovery("a", Action::kObserve, false, "second");
  const auto& ledger = f.reg.ledger();
  ASSERT_EQ(ledger.size(), 2u);
  EXPECT_EQ(ledger[0].detail, "first");
  EXPECT_TRUE(ledger[0].ok);
  EXPECT_EQ(ledger[1].detail, "second");
  EXPECT_FALSE(ledger[1].ok);
  EXPECT_LT(ledger[0].t_s, ledger[1].t_s);
  EXPECT_EQ(f.reg.total_recoveries(), 2u);
}

TEST(HealthRegistry, JsonIsDeterministicAndComplete) {
  Fixture f;
  f.reg.add("merge", {1.0, {Action::kCondemnStream}});
  f.reg.add("query", {0.0, {}});
  f.reg.publish("merge", 7);
  f.reg.set_demand("merge", 3);
  f.t = 2.0;
  (void)f.reg.evaluate();
  f.reg.record_recovery("merge", Action::kCondemnStream, true,
                        "condemned stream 9");
  const std::string a = f.reg.to_json();
  const std::string b = f.reg.to_json();
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"merge\""), std::string::npos);
  EXPECT_NE(a.find("\"query\""), std::string::npos);
  EXPECT_NE(a.find("\"state\":\"recovering\""), std::string::npos);
  EXPECT_NE(a.find("\"action\":\"condemn-stream\""), std::string::npos);
  EXPECT_NE(a.find("\"recoveries_total\":1"), std::string::npos);
  EXPECT_NE(a.find("condemned stream 9"), std::string::npos);
}

TEST(HealthRegistry, ZeroDeadlineIsHeartbeatOnly) {
  Fixture f;
  f.reg.add("query", {0.0, {}});
  f.reg.set_demand("query", 100);
  f.t = 1000.0;
  EXPECT_TRUE(f.reg.evaluate().empty());
  EXPECT_EQ(f.reg.state("query"), State::kHealthy);
}

}  // namespace
}  // namespace uncharted::health
