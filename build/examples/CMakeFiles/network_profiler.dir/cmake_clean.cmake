file(REMOVE_RECURSE
  "CMakeFiles/network_profiler.dir/network_profiler.cpp.o"
  "CMakeFiles/network_profiler.dir/network_profiler.cpp.o.d"
  "network_profiler"
  "network_profiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
