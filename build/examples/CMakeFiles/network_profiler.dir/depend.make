# Empty dependencies file for network_profiler.
# This may be replaced when dependencies are built.
