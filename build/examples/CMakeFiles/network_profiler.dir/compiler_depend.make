# Empty compiler generated dependencies file for network_profiler.
# This may be replaced when dependencies are built.
