file(REMOVE_RECURSE
  "CMakeFiles/iec104dump.dir/iec104dump.cpp.o"
  "CMakeFiles/iec104dump.dir/iec104dump.cpp.o.d"
  "iec104dump"
  "iec104dump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iec104dump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
