# Empty dependencies file for iec104dump.
# This may be replaced when dependencies are built.
