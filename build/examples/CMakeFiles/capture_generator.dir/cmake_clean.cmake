file(REMOVE_RECURSE
  "CMakeFiles/capture_generator.dir/capture_generator.cpp.o"
  "CMakeFiles/capture_generator.dir/capture_generator.cpp.o.d"
  "capture_generator"
  "capture_generator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capture_generator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
