# Empty compiler generated dependencies file for capture_generator.
# This may be replaced when dependencies are built.
