# Empty compiler generated dependencies file for uncharted_util.
# This may be replaced when dependencies are built.
