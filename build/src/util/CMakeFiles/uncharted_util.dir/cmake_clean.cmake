file(REMOVE_RECURSE
  "CMakeFiles/uncharted_util.dir/bytes.cpp.o"
  "CMakeFiles/uncharted_util.dir/bytes.cpp.o.d"
  "CMakeFiles/uncharted_util.dir/log.cpp.o"
  "CMakeFiles/uncharted_util.dir/log.cpp.o.d"
  "CMakeFiles/uncharted_util.dir/stats.cpp.o"
  "CMakeFiles/uncharted_util.dir/stats.cpp.o.d"
  "CMakeFiles/uncharted_util.dir/strings.cpp.o"
  "CMakeFiles/uncharted_util.dir/strings.cpp.o.d"
  "CMakeFiles/uncharted_util.dir/table.cpp.o"
  "CMakeFiles/uncharted_util.dir/table.cpp.o.d"
  "libuncharted_util.a"
  "libuncharted_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uncharted_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
