file(REMOVE_RECURSE
  "libuncharted_util.a"
)
