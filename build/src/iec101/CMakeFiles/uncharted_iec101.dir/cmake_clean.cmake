file(REMOVE_RECURSE
  "CMakeFiles/uncharted_iec101.dir/ft12.cpp.o"
  "CMakeFiles/uncharted_iec101.dir/ft12.cpp.o.d"
  "CMakeFiles/uncharted_iec101.dir/upgrade.cpp.o"
  "CMakeFiles/uncharted_iec101.dir/upgrade.cpp.o.d"
  "libuncharted_iec101.a"
  "libuncharted_iec101.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uncharted_iec101.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
