
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/iec101/ft12.cpp" "src/iec101/CMakeFiles/uncharted_iec101.dir/ft12.cpp.o" "gcc" "src/iec101/CMakeFiles/uncharted_iec101.dir/ft12.cpp.o.d"
  "/root/repo/src/iec101/upgrade.cpp" "src/iec101/CMakeFiles/uncharted_iec101.dir/upgrade.cpp.o" "gcc" "src/iec101/CMakeFiles/uncharted_iec101.dir/upgrade.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/iec104/CMakeFiles/uncharted_iec104.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/uncharted_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
