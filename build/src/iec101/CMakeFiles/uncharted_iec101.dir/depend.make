# Empty dependencies file for uncharted_iec101.
# This may be replaced when dependencies are built.
