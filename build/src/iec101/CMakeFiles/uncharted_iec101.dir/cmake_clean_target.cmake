file(REMOVE_RECURSE
  "libuncharted_iec101.a"
)
