file(REMOVE_RECURSE
  "libuncharted_core.a"
)
