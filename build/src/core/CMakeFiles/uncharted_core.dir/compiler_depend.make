# Empty compiler generated dependencies file for uncharted_core.
# This may be replaced when dependencies are built.
