file(REMOVE_RECURSE
  "CMakeFiles/uncharted_core.dir/analyzer.cpp.o"
  "CMakeFiles/uncharted_core.dir/analyzer.cpp.o.d"
  "CMakeFiles/uncharted_core.dir/export.cpp.o"
  "CMakeFiles/uncharted_core.dir/export.cpp.o.d"
  "CMakeFiles/uncharted_core.dir/names.cpp.o"
  "CMakeFiles/uncharted_core.dir/names.cpp.o.d"
  "CMakeFiles/uncharted_core.dir/profiler.cpp.o"
  "CMakeFiles/uncharted_core.dir/profiler.cpp.o.d"
  "libuncharted_core.a"
  "libuncharted_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uncharted_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
