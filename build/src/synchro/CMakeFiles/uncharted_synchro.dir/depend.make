# Empty dependencies file for uncharted_synchro.
# This may be replaced when dependencies are built.
