file(REMOVE_RECURSE
  "libuncharted_synchro.a"
)
