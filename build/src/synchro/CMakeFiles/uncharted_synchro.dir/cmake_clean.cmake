file(REMOVE_RECURSE
  "CMakeFiles/uncharted_synchro.dir/c37118.cpp.o"
  "CMakeFiles/uncharted_synchro.dir/c37118.cpp.o.d"
  "libuncharted_synchro.a"
  "libuncharted_synchro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uncharted_synchro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
