file(REMOVE_RECURSE
  "libuncharted_iec104.a"
)
