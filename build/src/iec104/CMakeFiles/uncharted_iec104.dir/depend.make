# Empty dependencies file for uncharted_iec104.
# This may be replaced when dependencies are built.
