
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/iec104/apdu.cpp" "src/iec104/CMakeFiles/uncharted_iec104.dir/apdu.cpp.o" "gcc" "src/iec104/CMakeFiles/uncharted_iec104.dir/apdu.cpp.o.d"
  "/root/repo/src/iec104/asdu.cpp" "src/iec104/CMakeFiles/uncharted_iec104.dir/asdu.cpp.o" "gcc" "src/iec104/CMakeFiles/uncharted_iec104.dir/asdu.cpp.o.d"
  "/root/repo/src/iec104/connection.cpp" "src/iec104/CMakeFiles/uncharted_iec104.dir/connection.cpp.o" "gcc" "src/iec104/CMakeFiles/uncharted_iec104.dir/connection.cpp.o.d"
  "/root/repo/src/iec104/constants.cpp" "src/iec104/CMakeFiles/uncharted_iec104.dir/constants.cpp.o" "gcc" "src/iec104/CMakeFiles/uncharted_iec104.dir/constants.cpp.o.d"
  "/root/repo/src/iec104/cp56time.cpp" "src/iec104/CMakeFiles/uncharted_iec104.dir/cp56time.cpp.o" "gcc" "src/iec104/CMakeFiles/uncharted_iec104.dir/cp56time.cpp.o.d"
  "/root/repo/src/iec104/elements.cpp" "src/iec104/CMakeFiles/uncharted_iec104.dir/elements.cpp.o" "gcc" "src/iec104/CMakeFiles/uncharted_iec104.dir/elements.cpp.o.d"
  "/root/repo/src/iec104/parser.cpp" "src/iec104/CMakeFiles/uncharted_iec104.dir/parser.cpp.o" "gcc" "src/iec104/CMakeFiles/uncharted_iec104.dir/parser.cpp.o.d"
  "/root/repo/src/iec104/validate.cpp" "src/iec104/CMakeFiles/uncharted_iec104.dir/validate.cpp.o" "gcc" "src/iec104/CMakeFiles/uncharted_iec104.dir/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/uncharted_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
