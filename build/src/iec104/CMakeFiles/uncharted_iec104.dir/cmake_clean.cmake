file(REMOVE_RECURSE
  "CMakeFiles/uncharted_iec104.dir/apdu.cpp.o"
  "CMakeFiles/uncharted_iec104.dir/apdu.cpp.o.d"
  "CMakeFiles/uncharted_iec104.dir/asdu.cpp.o"
  "CMakeFiles/uncharted_iec104.dir/asdu.cpp.o.d"
  "CMakeFiles/uncharted_iec104.dir/connection.cpp.o"
  "CMakeFiles/uncharted_iec104.dir/connection.cpp.o.d"
  "CMakeFiles/uncharted_iec104.dir/constants.cpp.o"
  "CMakeFiles/uncharted_iec104.dir/constants.cpp.o.d"
  "CMakeFiles/uncharted_iec104.dir/cp56time.cpp.o"
  "CMakeFiles/uncharted_iec104.dir/cp56time.cpp.o.d"
  "CMakeFiles/uncharted_iec104.dir/elements.cpp.o"
  "CMakeFiles/uncharted_iec104.dir/elements.cpp.o.d"
  "CMakeFiles/uncharted_iec104.dir/parser.cpp.o"
  "CMakeFiles/uncharted_iec104.dir/parser.cpp.o.d"
  "CMakeFiles/uncharted_iec104.dir/validate.cpp.o"
  "CMakeFiles/uncharted_iec104.dir/validate.cpp.o.d"
  "libuncharted_iec104.a"
  "libuncharted_iec104.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uncharted_iec104.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
