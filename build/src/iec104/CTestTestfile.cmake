# CMake generated Testfile for 
# Source directory: /root/repo/src/iec104
# Build directory: /root/repo/build/src/iec104
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
