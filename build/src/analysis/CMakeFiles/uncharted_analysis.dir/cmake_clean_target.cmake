file(REMOVE_RECURSE
  "libuncharted_analysis.a"
)
