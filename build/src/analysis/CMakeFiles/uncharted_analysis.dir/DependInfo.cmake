
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/background.cpp" "src/analysis/CMakeFiles/uncharted_analysis.dir/background.cpp.o" "gcc" "src/analysis/CMakeFiles/uncharted_analysis.dir/background.cpp.o.d"
  "/root/repo/src/analysis/bandwidth.cpp" "src/analysis/CMakeFiles/uncharted_analysis.dir/bandwidth.cpp.o" "gcc" "src/analysis/CMakeFiles/uncharted_analysis.dir/bandwidth.cpp.o.d"
  "/root/repo/src/analysis/classify.cpp" "src/analysis/CMakeFiles/uncharted_analysis.dir/classify.cpp.o" "gcc" "src/analysis/CMakeFiles/uncharted_analysis.dir/classify.cpp.o.d"
  "/root/repo/src/analysis/dataset.cpp" "src/analysis/CMakeFiles/uncharted_analysis.dir/dataset.cpp.o" "gcc" "src/analysis/CMakeFiles/uncharted_analysis.dir/dataset.cpp.o.d"
  "/root/repo/src/analysis/flows.cpp" "src/analysis/CMakeFiles/uncharted_analysis.dir/flows.cpp.o" "gcc" "src/analysis/CMakeFiles/uncharted_analysis.dir/flows.cpp.o.d"
  "/root/repo/src/analysis/kmeans.cpp" "src/analysis/CMakeFiles/uncharted_analysis.dir/kmeans.cpp.o" "gcc" "src/analysis/CMakeFiles/uncharted_analysis.dir/kmeans.cpp.o.d"
  "/root/repo/src/analysis/markov.cpp" "src/analysis/CMakeFiles/uncharted_analysis.dir/markov.cpp.o" "gcc" "src/analysis/CMakeFiles/uncharted_analysis.dir/markov.cpp.o.d"
  "/root/repo/src/analysis/pca.cpp" "src/analysis/CMakeFiles/uncharted_analysis.dir/pca.cpp.o" "gcc" "src/analysis/CMakeFiles/uncharted_analysis.dir/pca.cpp.o.d"
  "/root/repo/src/analysis/physical.cpp" "src/analysis/CMakeFiles/uncharted_analysis.dir/physical.cpp.o" "gcc" "src/analysis/CMakeFiles/uncharted_analysis.dir/physical.cpp.o.d"
  "/root/repo/src/analysis/seq_audit.cpp" "src/analysis/CMakeFiles/uncharted_analysis.dir/seq_audit.cpp.o" "gcc" "src/analysis/CMakeFiles/uncharted_analysis.dir/seq_audit.cpp.o.d"
  "/root/repo/src/analysis/sessions.cpp" "src/analysis/CMakeFiles/uncharted_analysis.dir/sessions.cpp.o" "gcc" "src/analysis/CMakeFiles/uncharted_analysis.dir/sessions.cpp.o.d"
  "/root/repo/src/analysis/topology_diff.cpp" "src/analysis/CMakeFiles/uncharted_analysis.dir/topology_diff.cpp.o" "gcc" "src/analysis/CMakeFiles/uncharted_analysis.dir/topology_diff.cpp.o.d"
  "/root/repo/src/analysis/typeid_stats.cpp" "src/analysis/CMakeFiles/uncharted_analysis.dir/typeid_stats.cpp.o" "gcc" "src/analysis/CMakeFiles/uncharted_analysis.dir/typeid_stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/uncharted_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/uncharted_net.dir/DependInfo.cmake"
  "/root/repo/build/src/iec104/CMakeFiles/uncharted_iec104.dir/DependInfo.cmake"
  "/root/repo/build/src/synchro/CMakeFiles/uncharted_synchro.dir/DependInfo.cmake"
  "/root/repo/build/src/iccp/CMakeFiles/uncharted_iccp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
