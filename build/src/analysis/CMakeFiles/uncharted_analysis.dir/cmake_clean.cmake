file(REMOVE_RECURSE
  "CMakeFiles/uncharted_analysis.dir/background.cpp.o"
  "CMakeFiles/uncharted_analysis.dir/background.cpp.o.d"
  "CMakeFiles/uncharted_analysis.dir/bandwidth.cpp.o"
  "CMakeFiles/uncharted_analysis.dir/bandwidth.cpp.o.d"
  "CMakeFiles/uncharted_analysis.dir/classify.cpp.o"
  "CMakeFiles/uncharted_analysis.dir/classify.cpp.o.d"
  "CMakeFiles/uncharted_analysis.dir/dataset.cpp.o"
  "CMakeFiles/uncharted_analysis.dir/dataset.cpp.o.d"
  "CMakeFiles/uncharted_analysis.dir/flows.cpp.o"
  "CMakeFiles/uncharted_analysis.dir/flows.cpp.o.d"
  "CMakeFiles/uncharted_analysis.dir/kmeans.cpp.o"
  "CMakeFiles/uncharted_analysis.dir/kmeans.cpp.o.d"
  "CMakeFiles/uncharted_analysis.dir/markov.cpp.o"
  "CMakeFiles/uncharted_analysis.dir/markov.cpp.o.d"
  "CMakeFiles/uncharted_analysis.dir/pca.cpp.o"
  "CMakeFiles/uncharted_analysis.dir/pca.cpp.o.d"
  "CMakeFiles/uncharted_analysis.dir/physical.cpp.o"
  "CMakeFiles/uncharted_analysis.dir/physical.cpp.o.d"
  "CMakeFiles/uncharted_analysis.dir/seq_audit.cpp.o"
  "CMakeFiles/uncharted_analysis.dir/seq_audit.cpp.o.d"
  "CMakeFiles/uncharted_analysis.dir/sessions.cpp.o"
  "CMakeFiles/uncharted_analysis.dir/sessions.cpp.o.d"
  "CMakeFiles/uncharted_analysis.dir/topology_diff.cpp.o"
  "CMakeFiles/uncharted_analysis.dir/topology_diff.cpp.o.d"
  "CMakeFiles/uncharted_analysis.dir/typeid_stats.cpp.o"
  "CMakeFiles/uncharted_analysis.dir/typeid_stats.cpp.o.d"
  "libuncharted_analysis.a"
  "libuncharted_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uncharted_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
