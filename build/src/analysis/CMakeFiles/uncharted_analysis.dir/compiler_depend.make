# Empty compiler generated dependencies file for uncharted_analysis.
# This may be replaced when dependencies are built.
