# CMake generated Testfile for 
# Source directory: /root/repo/src/iccp
# Build directory: /root/repo/build/src/iccp
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
