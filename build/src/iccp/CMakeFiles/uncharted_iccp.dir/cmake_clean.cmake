file(REMOVE_RECURSE
  "CMakeFiles/uncharted_iccp.dir/iccp.cpp.o"
  "CMakeFiles/uncharted_iccp.dir/iccp.cpp.o.d"
  "CMakeFiles/uncharted_iccp.dir/tpkt.cpp.o"
  "CMakeFiles/uncharted_iccp.dir/tpkt.cpp.o.d"
  "libuncharted_iccp.a"
  "libuncharted_iccp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uncharted_iccp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
