file(REMOVE_RECURSE
  "libuncharted_iccp.a"
)
