
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/iccp/iccp.cpp" "src/iccp/CMakeFiles/uncharted_iccp.dir/iccp.cpp.o" "gcc" "src/iccp/CMakeFiles/uncharted_iccp.dir/iccp.cpp.o.d"
  "/root/repo/src/iccp/tpkt.cpp" "src/iccp/CMakeFiles/uncharted_iccp.dir/tpkt.cpp.o" "gcc" "src/iccp/CMakeFiles/uncharted_iccp.dir/tpkt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/uncharted_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
