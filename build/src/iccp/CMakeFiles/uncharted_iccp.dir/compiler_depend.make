# Empty compiler generated dependencies file for uncharted_iccp.
# This may be replaced when dependencies are built.
