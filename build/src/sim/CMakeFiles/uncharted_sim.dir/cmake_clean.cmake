file(REMOVE_RECURSE
  "CMakeFiles/uncharted_sim.dir/capture.cpp.o"
  "CMakeFiles/uncharted_sim.dir/capture.cpp.o.d"
  "CMakeFiles/uncharted_sim.dir/signals.cpp.o"
  "CMakeFiles/uncharted_sim.dir/signals.cpp.o.d"
  "CMakeFiles/uncharted_sim.dir/tcp.cpp.o"
  "CMakeFiles/uncharted_sim.dir/tcp.cpp.o.d"
  "CMakeFiles/uncharted_sim.dir/topology.cpp.o"
  "CMakeFiles/uncharted_sim.dir/topology.cpp.o.d"
  "libuncharted_sim.a"
  "libuncharted_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uncharted_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
