file(REMOVE_RECURSE
  "libuncharted_sim.a"
)
