# Empty dependencies file for uncharted_sim.
# This may be replaced when dependencies are built.
