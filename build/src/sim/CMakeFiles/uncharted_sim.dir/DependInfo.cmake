
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/capture.cpp" "src/sim/CMakeFiles/uncharted_sim.dir/capture.cpp.o" "gcc" "src/sim/CMakeFiles/uncharted_sim.dir/capture.cpp.o.d"
  "/root/repo/src/sim/signals.cpp" "src/sim/CMakeFiles/uncharted_sim.dir/signals.cpp.o" "gcc" "src/sim/CMakeFiles/uncharted_sim.dir/signals.cpp.o.d"
  "/root/repo/src/sim/tcp.cpp" "src/sim/CMakeFiles/uncharted_sim.dir/tcp.cpp.o" "gcc" "src/sim/CMakeFiles/uncharted_sim.dir/tcp.cpp.o.d"
  "/root/repo/src/sim/topology.cpp" "src/sim/CMakeFiles/uncharted_sim.dir/topology.cpp.o" "gcc" "src/sim/CMakeFiles/uncharted_sim.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/uncharted_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/uncharted_net.dir/DependInfo.cmake"
  "/root/repo/build/src/iec104/CMakeFiles/uncharted_iec104.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/uncharted_power.dir/DependInfo.cmake"
  "/root/repo/build/src/synchro/CMakeFiles/uncharted_synchro.dir/DependInfo.cmake"
  "/root/repo/build/src/iccp/CMakeFiles/uncharted_iccp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
