file(REMOVE_RECURSE
  "libuncharted_net.a"
)
