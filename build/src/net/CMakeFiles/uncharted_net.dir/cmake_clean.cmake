file(REMOVE_RECURSE
  "CMakeFiles/uncharted_net.dir/flow.cpp.o"
  "CMakeFiles/uncharted_net.dir/flow.cpp.o.d"
  "CMakeFiles/uncharted_net.dir/frame.cpp.o"
  "CMakeFiles/uncharted_net.dir/frame.cpp.o.d"
  "CMakeFiles/uncharted_net.dir/headers.cpp.o"
  "CMakeFiles/uncharted_net.dir/headers.cpp.o.d"
  "CMakeFiles/uncharted_net.dir/pcap.cpp.o"
  "CMakeFiles/uncharted_net.dir/pcap.cpp.o.d"
  "CMakeFiles/uncharted_net.dir/reassembly.cpp.o"
  "CMakeFiles/uncharted_net.dir/reassembly.cpp.o.d"
  "libuncharted_net.a"
  "libuncharted_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uncharted_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
