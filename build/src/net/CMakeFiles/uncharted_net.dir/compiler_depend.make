# Empty compiler generated dependencies file for uncharted_net.
# This may be replaced when dependencies are built.
