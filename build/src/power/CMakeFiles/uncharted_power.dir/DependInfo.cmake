
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/agc.cpp" "src/power/CMakeFiles/uncharted_power.dir/agc.cpp.o" "gcc" "src/power/CMakeFiles/uncharted_power.dir/agc.cpp.o.d"
  "/root/repo/src/power/generator.cpp" "src/power/CMakeFiles/uncharted_power.dir/generator.cpp.o" "gcc" "src/power/CMakeFiles/uncharted_power.dir/generator.cpp.o.d"
  "/root/repo/src/power/grid.cpp" "src/power/CMakeFiles/uncharted_power.dir/grid.cpp.o" "gcc" "src/power/CMakeFiles/uncharted_power.dir/grid.cpp.o.d"
  "/root/repo/src/power/measurement.cpp" "src/power/CMakeFiles/uncharted_power.dir/measurement.cpp.o" "gcc" "src/power/CMakeFiles/uncharted_power.dir/measurement.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/uncharted_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
