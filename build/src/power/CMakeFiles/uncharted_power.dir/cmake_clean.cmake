file(REMOVE_RECURSE
  "CMakeFiles/uncharted_power.dir/agc.cpp.o"
  "CMakeFiles/uncharted_power.dir/agc.cpp.o.d"
  "CMakeFiles/uncharted_power.dir/generator.cpp.o"
  "CMakeFiles/uncharted_power.dir/generator.cpp.o.d"
  "CMakeFiles/uncharted_power.dir/grid.cpp.o"
  "CMakeFiles/uncharted_power.dir/grid.cpp.o.d"
  "CMakeFiles/uncharted_power.dir/measurement.cpp.o"
  "CMakeFiles/uncharted_power.dir/measurement.cpp.o.d"
  "libuncharted_power.a"
  "libuncharted_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uncharted_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
