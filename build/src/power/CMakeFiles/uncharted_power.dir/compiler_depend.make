# Empty compiler generated dependencies file for uncharted_power.
# This may be replaced when dependencies are built.
