file(REMOVE_RECURSE
  "libuncharted_power.a"
)
