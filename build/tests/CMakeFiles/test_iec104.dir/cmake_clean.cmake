file(REMOVE_RECURSE
  "CMakeFiles/test_iec104.dir/iec104/apdu_test.cpp.o"
  "CMakeFiles/test_iec104.dir/iec104/apdu_test.cpp.o.d"
  "CMakeFiles/test_iec104.dir/iec104/asdu_test.cpp.o"
  "CMakeFiles/test_iec104.dir/iec104/asdu_test.cpp.o.d"
  "CMakeFiles/test_iec104.dir/iec104/connection_pair_test.cpp.o"
  "CMakeFiles/test_iec104.dir/iec104/connection_pair_test.cpp.o.d"
  "CMakeFiles/test_iec104.dir/iec104/connection_test.cpp.o"
  "CMakeFiles/test_iec104.dir/iec104/connection_test.cpp.o.d"
  "CMakeFiles/test_iec104.dir/iec104/cp56_test.cpp.o"
  "CMakeFiles/test_iec104.dir/iec104/cp56_test.cpp.o.d"
  "CMakeFiles/test_iec104.dir/iec104/elements_test.cpp.o"
  "CMakeFiles/test_iec104.dir/iec104/elements_test.cpp.o.d"
  "CMakeFiles/test_iec104.dir/iec104/parser_property_test.cpp.o"
  "CMakeFiles/test_iec104.dir/iec104/parser_property_test.cpp.o.d"
  "CMakeFiles/test_iec104.dir/iec104/parser_test.cpp.o"
  "CMakeFiles/test_iec104.dir/iec104/parser_test.cpp.o.d"
  "CMakeFiles/test_iec104.dir/iec104/validate_test.cpp.o"
  "CMakeFiles/test_iec104.dir/iec104/validate_test.cpp.o.d"
  "test_iec104"
  "test_iec104.pdb"
  "test_iec104[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_iec104.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
