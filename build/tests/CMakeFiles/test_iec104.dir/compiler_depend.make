# Empty compiler generated dependencies file for test_iec104.
# This may be replaced when dependencies are built.
