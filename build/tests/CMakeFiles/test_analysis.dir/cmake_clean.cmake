file(REMOVE_RECURSE
  "CMakeFiles/test_analysis.dir/analysis/background_test.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/background_test.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/bandwidth_test.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/bandwidth_test.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/classify_test.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/classify_test.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/dataset_test.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/dataset_test.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/flows_test.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/flows_test.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/kmeans_test.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/kmeans_test.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/markov_test.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/markov_test.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/pca_test.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/pca_test.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/physical_test.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/physical_test.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/seq_audit_test.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/seq_audit_test.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/topology_diff_test.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/topology_diff_test.cpp.o.d"
  "test_analysis"
  "test_analysis.pdb"
  "test_analysis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
