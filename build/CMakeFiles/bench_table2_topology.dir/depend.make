# Empty dependencies file for bench_table2_topology.
# This may be replaced when dependencies are built.
