file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_types.dir/bench/bench_fig17_types.cpp.o"
  "CMakeFiles/bench_fig17_types.dir/bench/bench_fig17_types.cpp.o.d"
  "bench/bench_fig17_types"
  "bench/bench_fig17_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
