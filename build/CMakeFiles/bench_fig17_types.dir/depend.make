# Empty dependencies file for bench_fig17_types.
# This may be replaced when dependencies are built.
