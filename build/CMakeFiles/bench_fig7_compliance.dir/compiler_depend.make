# Empty compiler generated dependencies file for bench_fig7_compliance.
# This may be replaced when dependencies are built.
