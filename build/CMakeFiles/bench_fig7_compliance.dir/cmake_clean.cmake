file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_compliance.dir/bench/bench_fig7_compliance.cpp.o"
  "CMakeFiles/bench_fig7_compliance.dir/bench/bench_fig7_compliance.cpp.o.d"
  "bench/bench_fig7_compliance"
  "bench/bench_fig7_compliance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_compliance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
