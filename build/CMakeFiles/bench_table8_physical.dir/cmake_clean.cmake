file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_physical.dir/bench/bench_table8_physical.cpp.o"
  "CMakeFiles/bench_table8_physical.dir/bench/bench_table8_physical.cpp.o.d"
  "bench/bench_table8_physical"
  "bench/bench_table8_physical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_physical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
