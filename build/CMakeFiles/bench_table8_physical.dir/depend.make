# Empty dependencies file for bench_table8_physical.
# This may be replaced when dependencies are built.
