file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_markov.dir/bench/bench_fig13_markov.cpp.o"
  "CMakeFiles/bench_fig13_markov.dir/bench/bench_fig13_markov.cpp.o.d"
  "bench/bench_fig13_markov"
  "bench/bench_fig13_markov.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_markov.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
