file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_flows.dir/bench/bench_table3_flows.cpp.o"
  "CMakeFiles/bench_table3_flows.dir/bench/bench_table3_flows.cpp.o.d"
  "bench/bench_table3_flows"
  "bench/bench_table3_flows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_flows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
