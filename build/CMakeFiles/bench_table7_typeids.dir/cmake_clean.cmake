file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_typeids.dir/bench/bench_table7_typeids.cpp.o"
  "CMakeFiles/bench_table7_typeids.dir/bench/bench_table7_typeids.cpp.o.d"
  "bench/bench_table7_typeids"
  "bench/bench_table7_typeids.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_typeids.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
