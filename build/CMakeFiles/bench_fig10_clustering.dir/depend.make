# Empty dependencies file for bench_fig10_clustering.
# This may be replaced when dependencies are built.
