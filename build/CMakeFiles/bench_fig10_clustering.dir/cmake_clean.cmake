file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_clustering.dir/bench/bench_fig10_clustering.cpp.o"
  "CMakeFiles/bench_fig10_clustering.dir/bench/bench_fig10_clustering.cpp.o.d"
  "bench/bench_fig10_clustering"
  "bench/bench_fig10_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
