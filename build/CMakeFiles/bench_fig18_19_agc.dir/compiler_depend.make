# Empty compiler generated dependencies file for bench_fig18_19_agc.
# This may be replaced when dependencies are built.
