file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_19_agc.dir/bench/bench_fig18_19_agc.cpp.o"
  "CMakeFiles/bench_fig18_19_agc.dir/bench/bench_fig18_19_agc.cpp.o.d"
  "bench/bench_fig18_19_agc"
  "bench/bench_fig18_19_agc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_19_agc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
