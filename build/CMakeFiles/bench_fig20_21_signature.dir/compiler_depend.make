# Empty compiler generated dependencies file for bench_fig20_21_signature.
# This may be replaced when dependencies are built.
