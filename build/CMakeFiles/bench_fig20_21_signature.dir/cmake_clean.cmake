file(REMOVE_RECURSE
  "CMakeFiles/bench_fig20_21_signature.dir/bench/bench_fig20_21_signature.cpp.o"
  "CMakeFiles/bench_fig20_21_signature.dir/bench/bench_fig20_21_signature.cpp.o.d"
  "bench/bench_fig20_21_signature"
  "bench/bench_fig20_21_signature.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig20_21_signature.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
