file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_background.dir/bench/bench_fig5_background.cpp.o"
  "CMakeFiles/bench_fig5_background.dir/bench/bench_fig5_background.cpp.o.d"
  "bench/bench_fig5_background"
  "bench/bench_fig5_background.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_background.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
