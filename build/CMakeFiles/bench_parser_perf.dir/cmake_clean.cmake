file(REMOVE_RECURSE
  "CMakeFiles/bench_parser_perf.dir/bench/bench_parser_perf.cpp.o"
  "CMakeFiles/bench_parser_perf.dir/bench/bench_parser_perf.cpp.o.d"
  "bench/bench_parser_perf"
  "bench/bench_parser_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parser_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
