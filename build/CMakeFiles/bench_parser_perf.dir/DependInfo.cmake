
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_parser_perf.cpp" "CMakeFiles/bench_parser_perf.dir/bench/bench_parser_perf.cpp.o" "gcc" "CMakeFiles/bench_parser_perf.dir/bench/bench_parser_perf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/uncharted_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/uncharted_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/uncharted_power.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/uncharted_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/uncharted_net.dir/DependInfo.cmake"
  "/root/repo/build/src/iec104/CMakeFiles/uncharted_iec104.dir/DependInfo.cmake"
  "/root/repo/build/src/synchro/CMakeFiles/uncharted_synchro.dir/DependInfo.cmake"
  "/root/repo/build/src/iccp/CMakeFiles/uncharted_iccp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/uncharted_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
