#include "token.hpp"

#include <cctype>
#include <cstddef>

namespace uncharted::lint {
namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Multi-character operators, longest first so maximal munch works with a
/// simple prefix test. Keeping `->`, `++`, `--`, `<<`, `>>` etc. as single
/// tokens matters: the subscript-arithmetic rule must not mistake the `-`
/// of `->` or the `+` of `++` for offset arithmetic.
constexpr const char* kOperators[] = {
    "<<=", ">>=", "...", "->*", "<=>",
    "::", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=",
    "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", ".*",
};

class Lexer {
 public:
  explicit Lexer(const std::string& src) : src_(src) {}

  std::vector<Token> run() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        at_line_start_ = true;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
        ++pos_;
        continue;
      }
      if (c == '\\' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '\n') {
        ++line_;
        pos_ += 2;  // line continuation: same logical line, do not reset
        continue;
      }
      if (c == '/' && peek(1) == '/') {
        line_comment();
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        block_comment();
        continue;
      }
      if (at_line_start_ && c == '#') {
        directive();
        continue;
      }
      at_line_start_ = false;
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
        number();
        continue;
      }
      if (ident_start(c)) {
        identifier();
        continue;
      }
      if (c == '"') {
        string_literal();
        continue;
      }
      if (c == '\'') {
        char_literal();
        continue;
      }
      punct();
    }
    return out_;
  }

 private:
  char peek(std::size_t ahead) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  void emit(Tok kind, std::string text, int line) {
    out_.push_back(Token{kind, std::move(text), line, false});
  }

  void line_comment() {
    const int line = line_;
    std::size_t end = pos_;
    while (end < src_.size() && src_[end] != '\n') ++end;
    emit(Tok::kComment, src_.substr(pos_, end - pos_), line);
    pos_ = end;
  }

  void block_comment() {
    const int line = line_;
    std::size_t end = pos_ + 2;
    while (end + 1 < src_.size() && !(src_[end] == '*' && src_[end + 1] == '/')) {
      if (src_[end] == '\n') ++line_;
      ++end;
    }
    end = end + 1 < src_.size() ? end + 2 : src_.size();
    emit(Tok::kComment, src_.substr(pos_, end - pos_), line);
    pos_ = end;
  }

  /// Preprocessor directive. #include paths become kInclude tokens; every
  /// other directive is skipped through its continuation lines.
  void directive() {
    const int line = line_;
    std::size_t p = pos_ + 1;
    while (p < src_.size() && (src_[p] == ' ' || src_[p] == '\t')) ++p;
    std::size_t word_end = p;
    while (word_end < src_.size() && ident_char(src_[word_end])) ++word_end;
    const std::string word = src_.substr(p, word_end - p);
    if (word == "include") {
      p = word_end;
      while (p < src_.size() && (src_[p] == ' ' || src_[p] == '\t')) ++p;
      if (p < src_.size() && (src_[p] == '"' || src_[p] == '<')) {
        const char close = src_[p] == '"' ? '"' : '>';
        std::size_t path_end = p + 1;
        while (path_end < src_.size() && src_[path_end] != close &&
               src_[path_end] != '\n') {
          ++path_end;
        }
        Token t;
        t.kind = Tok::kInclude;
        t.text = src_.substr(p + 1, path_end - p - 1);
        t.line = line;
        t.angled = close == '>';
        out_.push_back(std::move(t));
      }
    }
    // Skip to the end of the directive, honoring backslash continuations.
    while (pos_ < src_.size() && src_[pos_] != '\n') {
      if (src_[pos_] == '\\' && peek(1) == '\n') {
        ++line_;
        pos_ += 2;
        continue;
      }
      if (src_[pos_] == '/' && peek(1) == '/') {
        line_comment();
        continue;
      }
      if (src_[pos_] == '/' && peek(1) == '*') {
        block_comment();
        continue;
      }
      ++pos_;
    }
  }

  /// pp-number: digits, idents, quotes-as-digit-separators, and exponent
  /// signs. Over-accepts relative to the grammar, which is fine — rules
  /// re-parse the integer value and ignore anything non-integral.
  void number() {
    const int line = line_;
    std::size_t end = pos_;
    while (end < src_.size()) {
      const char c = src_[end];
      if (ident_char(c) || c == '.') {
        ++end;
        continue;
      }
      if (c == '\'' && end > pos_ && ident_char(src_[end - 1]) &&
          end + 1 < src_.size() && ident_char(src_[end + 1])) {
        ++end;  // digit separator
        continue;
      }
      if ((c == '+' || c == '-') && end > pos_ &&
          (src_[end - 1] == 'e' || src_[end - 1] == 'E' ||
           src_[end - 1] == 'p' || src_[end - 1] == 'P')) {
        ++end;  // exponent sign
        continue;
      }
      break;
    }
    emit(Tok::kNumber, src_.substr(pos_, end - pos_), line);
    pos_ = end;
  }

  void identifier() {
    const int line = line_;
    std::size_t end = pos_;
    while (end < src_.size() && ident_char(src_[end])) ++end;
    const std::string word = src_.substr(pos_, end - pos_);
    // Raw-string prefix? R"delim( ... )delim"
    if (end < src_.size() && src_[end] == '"' &&
        (word == "R" || word == "LR" || word == "uR" || word == "UR" ||
         word == "u8R")) {
      pos_ = end;
      raw_string(line);
      return;
    }
    // Ordinary encoding prefix on a string/char literal.
    if (end < src_.size() && (src_[end] == '"' || src_[end] == '\'') &&
        (word == "L" || word == "u" || word == "U" || word == "u8")) {
      pos_ = end;
      if (src_[end] == '"') {
        string_literal();
      } else {
        char_literal();
      }
      return;
    }
    emit(Tok::kIdent, word, line);
    pos_ = end;
  }

  void raw_string(int line) {
    // pos_ is at the opening quote. Find the delimiter up to '('.
    std::size_t p = pos_ + 1;
    std::string delim;
    while (p < src_.size() && src_[p] != '(' && src_[p] != '\n') {
      delim.push_back(src_[p]);
      ++p;
    }
    const std::string closer = ")" + delim + "\"";
    std::size_t end = src_.find(closer, p);
    end = end == std::string::npos ? src_.size() : end + closer.size();
    for (std::size_t i = pos_; i < end; ++i) {
      if (src_[i] == '\n') ++line_;
    }
    emit(Tok::kString, "", line);
    pos_ = end;
  }

  void string_literal() {
    const int line = line_;
    std::size_t end = pos_ + 1;
    while (end < src_.size() && src_[end] != '"') {
      if (src_[end] == '\\' && end + 1 < src_.size()) ++end;
      if (src_[end] == '\n') ++line_;
      ++end;
    }
    emit(Tok::kString, "", line);
    pos_ = end < src_.size() ? end + 1 : end;
  }

  void char_literal() {
    const int line = line_;
    std::size_t end = pos_ + 1;
    while (end < src_.size() && src_[end] != '\'') {
      if (src_[end] == '\\' && end + 1 < src_.size()) ++end;
      if (src_[end] == '\n') break;  // stray quote, not a literal
      ++end;
    }
    emit(Tok::kChar, "", line);
    pos_ = end < src_.size() ? end + 1 : end;
  }

  void punct() {
    const int line = line_;
    for (const char* op : kOperators) {
      const std::size_t n = std::string::traits_type::length(op);
      if (src_.compare(pos_, n, op) == 0) {
        emit(Tok::kPunct, op, line);
        pos_ += n;
        return;
      }
    }
    emit(Tok::kPunct, std::string(1, src_[pos_]), line);
    ++pos_;
  }

  const std::string& src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  bool at_line_start_ = true;
  std::vector<Token> out_;
};

}  // namespace

std::vector<Token> lex(const std::string& source) { return Lexer(source).run(); }

}  // namespace uncharted::lint
