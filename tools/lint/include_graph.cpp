#include "include_graph.hpp"

#include <algorithm>
#include <set>

namespace uncharted::lint {
namespace {

std::string first_segment(const std::string& path) {
  const std::size_t slash = path.find('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

}  // namespace

std::optional<int> module_rank(const std::string& module) {
  static const std::map<std::string, int> kRanks = {
      {"util", 0},   {"exec", 0},    {"health", 1},     {"net", 1},
      {"faultinject", 2},
      {"iec104", 2}, {"iccp", 2},    {"synchro", 2},    {"power", 2},
      {"iec101", 3}, {"netd", 3},    {"analysis", 4}, {"resilience", 4}, {"sim", 4},
      {"core", 5},
  };
  const auto it = kRanks.find(module);
  if (it == kRanks.end()) return std::nullopt;
  return it->second;
}

void IncludeGraph::add_file(const FileContext& ctx,
                            const std::vector<Token>& tokens) {
  if (ctx.zone != Zone::kSrc || ctx.module.empty()) return;
  // Node key: path relative to src/ (project includes are spelled that way).
  const std::string key = ctx.rel_path.substr(std::string("src/").size());
  auto& edges = adj_[key];  // registers the node even with no includes
  for (const Token& t : tokens) {
    if (t.kind != Tok::kInclude || t.angled) continue;
    if (!module_rank(first_segment(t.text)).has_value()) continue;
    edges.push_back(Edge{t.text, t.line, ctx.rel_path, ctx.module});
  }
}

void IncludeGraph::check(std::vector<Finding>& out) const {
  // Rank violations: includes must point strictly down the module order.
  for (const auto& [file, edges] : adj_) {
    for (const Edge& e : edges) {
      const std::string target = first_segment(e.to);
      if (target == e.module) continue;
      const auto from_rank = module_rank(e.module);
      const auto to_rank = module_rank(target);
      if (!from_rank || !to_rank) continue;
      if (*to_rank >= *from_rank) {
        out.push_back(Finding{
            "layering-order", e.file, e.line,
            "module '" + e.module + "' (rank " + std::to_string(*from_rank) +
                ") may not include \"" + e.to + "\" (module '" + target +
                "', rank " + std::to_string(*to_rank) +
                "): includes must point strictly down the layer order"});
      }
    }
  }

  // Cycle detection: iterative DFS with a gray stack; each back edge is
  // reported once, at the include that closes the cycle.
  enum class Color { kWhite, kGray, kBlack };
  std::map<std::string, Color> color;
  for (const auto& [file, edges] : adj_) color[file] = Color::kWhite;

  struct Frame {
    std::string node;
    std::size_t next_edge = 0;
  };
  for (const auto& [start, start_edges] : adj_) {
    if (color[start] != Color::kWhite) continue;
    std::vector<Frame> stack;
    stack.push_back(Frame{start, 0});
    color[start] = Color::kGray;
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const auto it = adj_.find(frame.node);
      const std::vector<Edge>& edges = it->second;
      if (frame.next_edge >= edges.size()) {
        color[frame.node] = Color::kBlack;
        stack.pop_back();
        continue;
      }
      const Edge& e = edges[frame.next_edge++];
      const auto target_it = adj_.find(e.to);
      if (target_it == adj_.end()) continue;  // header outside the scan set
      const Color target_color = color[e.to];
      if (target_color == Color::kWhite) {
        color[e.to] = Color::kGray;
        stack.push_back(Frame{e.to, 0});
      } else if (target_color == Color::kGray) {
        // Reconstruct the cycle from the gray stack for the message.
        std::string cycle = e.to;
        std::size_t from = 0;
        for (std::size_t i = 0; i < stack.size(); ++i) {
          if (stack[i].node == e.to) from = i;
        }
        for (std::size_t i = from; i < stack.size(); ++i) {
          if (stack[i].node != e.to) cycle += " -> " + stack[i].node;
        }
        cycle += " -> " + e.to;
        out.push_back(Finding{"layering-cycle", e.file, e.line,
                              "include cycle: " + cycle});
      }
    }
  }
}

}  // namespace uncharted::lint
