// Include-DAG enforcement for unchartedlint.
//
// src/ modules are ranked; a module may only include headers from itself or
// from strictly lower-ranked modules, and the file-level include graph must
// be acyclic. The ranks codify the dependency structure the tree already
// has (see DESIGN.md §11):
//
//   rank 0  util, exec          leaf infrastructure, no project deps
//   rank 1  net                 frames/flows/pcap over util
//   rank 2  faultinject, iec104, iccp, synchro, power
//   rank 3  iec101              the 101->104 upgrade path sits on iec104
//   rank 4  analysis, resilience, sim
//   rank 5  core                batch/streaming orchestration on top
//
// Only quoted project includes whose first path segment is a ranked module
// participate; system includes and unknown prefixes are ignored.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "rules.hpp"
#include "token.hpp"

namespace uncharted::lint {

/// Rank of a src/ module, or nullopt if the name is not a ranked module.
std::optional<int> module_rank(const std::string& module);

class IncludeGraph {
 public:
  /// Records the quoted project includes of a src/ file. Files outside
  /// src/ (tests, bench, examples, tools) are consumers of everything and
  /// are not constrained.
  void add_file(const FileContext& ctx, const std::vector<Token>& tokens);

  /// Emits layering-order findings for rank violations and layering-cycle
  /// findings for include cycles.
  void check(std::vector<Finding>& out) const;

 private:
  struct Edge {
    std::string to;       ///< src-relative include path, e.g. "util/bytes.hpp"
    int line = 0;
    std::string file;     ///< root-relative path of the including file
    std::string module;   ///< module of the including file
  };

  /// Keyed by src-relative path of the including file; edge order is the
  /// include order within the file, key order is lexicographic — both
  /// deterministic so findings are stable across runs.
  std::map<std::string, std::vector<Edge>> adj_;
};

}  // namespace uncharted::lint
