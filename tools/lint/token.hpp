// Token model for the unchartedlint scanner.
//
// The lexer produces a flat token stream per translation unit: code tokens
// (identifiers, numbers, literals, punctuation), comment tokens (kept so
// suppression annotations can be matched to the lines they cover), and
// include tokens (the include graph is built from these). This is a
// deliberately lightweight lexical view — no preprocessing, no parsing —
// which is exactly enough for the project-invariant rules in rules.hpp.
#pragma once

#include <string>
#include <vector>

namespace uncharted::lint {

enum class Tok {
  kIdent,    ///< identifier or keyword
  kNumber,   ///< integer or floating literal (value undecoded; see rules.cpp)
  kString,   ///< string literal, including raw strings (contents dropped)
  kChar,     ///< character literal
  kPunct,    ///< operator/punctuator; multi-char operators are one token
  kComment,  ///< // or /* */ comment, text preserved for ALLOW parsing
  kInclude,  ///< #include directive; text is the include path
};

struct Token {
  Tok kind = Tok::kPunct;
  std::string text;
  int line = 1;        ///< 1-based line of the token's first character
  bool angled = false; ///< kInclude only: <system> vs "quoted"
};

/// Lexes a C++ source buffer into tokens. Never fails: unterminated
/// literals/comments are closed at end of input (the scanner must degrade
/// gracefully on any input, like the decoders it polices).
std::vector<Token> lex(const std::string& source);

}  // namespace uncharted::lint
