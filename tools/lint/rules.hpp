// Project-invariant rules for unchartedlint.
//
// Each rule guards an invariant the reproduction's correctness story depends
// on (see DESIGN.md §11 for the catalog and the policy for adding rules):
//
//   determinism-unordered-container  no std::unordered_{map,set,...} in src/
//                                    — hash iteration order would leak into
//                                    reports and checkpoints
//   determinism-pointer-key          no pointer-keyed std::map/std::set in
//                                    src/ — address order varies run to run
//   determinism-unseeded-rng         no rand()/std::random_device/
//                                    time(nullptr)/std:: engines in src/,
//                                    bench/, examples/ — all randomness goes
//                                    through the seeded util/rng.hpp wrapper
//   seq15-raw-arith                  no raw `% 32768` / `& 0x7fff` 15-bit
//                                    wrap arithmetic outside iec104/seq15.hpp
//   decoder-byte-index               no `buf[i + k]` offset subscripts on
//                                    wire buffers inside decoder modules —
//                                    bounded access goes through util/bytes
//   decoder-memcpy                   no memcpy inside decoder modules
//   netd-raw-socket                  no raw blocking socket calls
//                                    (::accept/::recv/epoll_* ...) outside
//                                    src/netd — live I/O goes through the
//                                    non-blocking reactor so nothing can
//                                    stall the analysis path
//   zerocopy-vector-payload          no std::vector<std::uint8_t> payload
//                                    parameters in src/net — decode paths
//                                    are span-only so the mmap'd hot path
//                                    never copies to call them
//   layering-order                   module includes must follow the ranked
//                                    DAG in include_graph.cpp
//   layering-cycle                   the file-level include graph must be
//                                    acyclic
//
// Every rule is suppressible in place with an UNCHARTED-LINT-ALLOW comment
// naming the rule id in parentheses followed by a colon and a mandatory
// justification, placed on the violating line or the line directly above.
// (The literal form is spelled out in DESIGN.md §11 — writing it here
// would register this comment as a suppression.) Unknown rule ids are
// rejected, and a suppression that matches nothing is itself a violation
// (lint-allow-unused) so stale waivers cannot accumulate.
#pragma once

#include <string>
#include <vector>

#include "token.hpp"

namespace uncharted::lint {

/// Which top-level tree a file belongs to; selects the applicable rules.
enum class Zone { kSrc, kBench, kExamples, kTests, kTools, kOther };

struct FileContext {
  std::string rel_path;  ///< '/'-separated path relative to the scan root
  Zone zone = Zone::kOther;
  std::string module;    ///< first component under src/ ("iec104", ...), else ""
};

struct Finding {
  std::string rule;
  std::string file;  ///< rel_path of the offending file
  int line = 0;
  std::string message;
};

struct RuleInfo {
  const char* id;
  const char* summary;
};

/// All suppressible rule ids (token rules + include-graph rules).
const std::vector<RuleInfo>& rule_catalog();

/// True if `id` names a rule in the catalog.
bool is_known_rule(const std::string& id);

/// Runs every token-level rule applicable to `ctx` over `tokens`,
/// appending findings. Comment tokens are ignored here (suppressions are
/// handled by the engine); include tokens feed the include graph, not
/// these rules.
void run_token_rules(const FileContext& ctx, const std::vector<Token>& tokens,
                     std::vector<Finding>& out);

}  // namespace uncharted::lint
