#include "rules.hpp"

#include <algorithm>
#include <array>
#include <optional>

namespace uncharted::lint {
namespace {

const std::array<const char*, 4> kDecoderModules = {"iec104", "iec101", "iccp",
                                                    "synchro"};

/// The one file allowed to spell 15-bit wrap arithmetic.
constexpr const char* kSeq15Home = "src/iec104/seq15.hpp";

bool is_decoder_module(const FileContext& ctx) {
  return ctx.zone == Zone::kSrc &&
         std::find(kDecoderModules.begin(), kDecoderModules.end(),
                   ctx.module) != kDecoderModules.end();
}

/// Decodes an integer literal's value; nullopt for floats and malformed
/// text. Handles hex/octal/binary prefixes, digit separators, and suffixes.
std::optional<unsigned long long> integer_value(const std::string& text) {
  std::string digits;
  digits.reserve(text.size());
  for (char c : text) {
    if (c != '\'') digits.push_back(c);
  }
  int base = 10;
  std::size_t pos = 0;
  if (digits.size() > 1 && digits[0] == '0') {
    if (digits[1] == 'x' || digits[1] == 'X') {
      base = 16;
      pos = 2;
    } else if (digits[1] == 'b' || digits[1] == 'B') {
      base = 2;
      pos = 2;
    } else {
      base = 8;
      pos = 1;
    }
  }
  unsigned long long value = 0;
  std::size_t consumed = 0;
  for (; pos < digits.size(); ++pos) {
    const char c = digits[pos];
    int d = -1;
    if (c >= '0' && c <= '9') {
      d = c - '0';
    } else if (base == 16 && c >= 'a' && c <= 'f') {
      d = c - 'a' + 10;
    } else if (base == 16 && c >= 'A' && c <= 'F') {
      d = c - 'A' + 10;
    }
    if (d < 0 || d >= base) break;
    value = value * static_cast<unsigned long long>(base) +
            static_cast<unsigned long long>(d);
    ++consumed;
  }
  // Whatever remains must be an integer suffix; '.', 'e', 'p' mean float.
  for (; pos < digits.size(); ++pos) {
    const char c = digits[pos];
    if (c == 'u' || c == 'U' || c == 'l' || c == 'L' || c == 'z' || c == 'Z') {
      continue;
    }
    return std::nullopt;
  }
  if (consumed == 0) return std::nullopt;
  return value;
}

bool is_punct(const Token& t, const char* text) {
  return t.kind == Tok::kPunct && t.text == text;
}

void add(std::vector<Finding>& out, const FileContext& ctx, const char* rule,
         int line, std::string message) {
  out.push_back(Finding{rule, ctx.rel_path, line, std::move(message)});
}

// ---------------------------------------------------------------------------
// determinism-unordered-container / determinism-pointer-key
// ---------------------------------------------------------------------------

void rule_unordered_container(const FileContext& ctx,
                              const std::vector<Token>& code,
                              std::vector<Finding>& out) {
  static const std::array<const char*, 4> kBanned = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  for (const Token& t : code) {
    if (t.kind != Tok::kIdent) continue;
    if (std::find(kBanned.begin(), kBanned.end(), t.text) == kBanned.end()) {
      continue;
    }
    add(out, ctx, "determinism-unordered-container", t.line,
        "std::" + t.text +
            " in a pipeline translation unit: hash iteration order feeds "
            "reports/checkpoints; use std::map/std::set or sort before "
            "emitting");
  }
}

void rule_pointer_key(const FileContext& ctx, const std::vector<Token>& code,
                      std::vector<Finding>& out) {
  static const std::array<const char*, 4> kOrdered = {"map", "set", "multimap",
                                                      "multiset"};
  for (std::size_t i = 0; i + 1 < code.size(); ++i) {
    const Token& t = code[i];
    if (t.kind != Tok::kIdent ||
        std::find(kOrdered.begin(), kOrdered.end(), t.text) == kOrdered.end() ||
        !is_punct(code[i + 1], "<")) {
      continue;
    }
    // Scan the key type: tokens until a depth-1 ',' or the closing '>'.
    int depth = 1;
    const Token* last = nullptr;
    for (std::size_t j = i + 2; j < code.size() && j < i + 256; ++j) {
      const Token& u = code[j];
      if (u.kind == Tok::kPunct) {
        if (u.text == "<" || u.text == "(" || u.text == "[" || u.text == "{") {
          ++depth;
        } else if (u.text == ">" || u.text == ")" || u.text == "]" ||
                   u.text == "}") {
          --depth;
        } else if (u.text == ">>") {
          depth -= 2;
        } else if (u.text == "," && depth == 1) {
          break;  // key type ends here
        } else if (u.text == ";") {
          break;  // not a template argument list after all
        }
        if (depth <= 0) break;
      }
      last = &u;
    }
    if (last != nullptr && is_punct(*last, "*")) {
      add(out, ctx, "determinism-pointer-key", t.line,
          "pointer-keyed std::" + t.text +
              ": address order varies across runs; key on a stable id "
              "instead");
    }
  }
}

// ---------------------------------------------------------------------------
// determinism-unseeded-rng
// ---------------------------------------------------------------------------

void rule_unseeded_rng(const FileContext& ctx, const std::vector<Token>& code,
                       std::vector<Finding>& out) {
  static const std::array<const char*, 10> kEngines = {
      "random_device", "random_shuffle", "mt19937",
      "mt19937_64",    "minstd_rand",    "minstd_rand0",
      "default_random_engine", "ranlux24", "ranlux48", "knuth_b"};
  for (std::size_t i = 0; i < code.size(); ++i) {
    const Token& t = code[i];
    if (t.kind != Tok::kIdent) continue;
    if (std::find(kEngines.begin(), kEngines.end(), t.text) != kEngines.end()) {
      add(out, ctx, "determinism-unseeded-rng", t.line,
          "std::" + t.text +
              ": all randomness goes through the seeded util/rng.hpp "
              "wrapper so captures replay from a single seed");
      continue;
    }
    const bool call = i + 1 < code.size() && is_punct(code[i + 1], "(");
    if ((t.text == "rand" || t.text == "srand") && call) {
      add(out, ctx, "determinism-unseeded-rng", t.line,
          t.text + "(): C library RNG is unseeded process-global state; use "
                   "the seeded util/rng.hpp wrapper");
      continue;
    }
    if (t.text == "time" && call && i + 3 < code.size() &&
        is_punct(code[i + 3], ")")) {
      const Token& arg = code[i + 2];
      const bool null_arg =
          (arg.kind == Tok::kIdent &&
           (arg.text == "nullptr" || arg.text == "NULL")) ||
          (arg.kind == Tok::kNumber && integer_value(arg.text) == 0ULL);
      if (null_arg) {
        add(out, ctx, "determinism-unseeded-rng", t.line,
            "time(nullptr): wall-clock seeding makes runs unreproducible; "
            "thread an explicit seed or timestamp through instead");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// seq15-raw-arith
// ---------------------------------------------------------------------------

void rule_seq15(const FileContext& ctx, const std::vector<Token>& code,
                std::vector<Finding>& out) {
  if (ctx.rel_path == kSeq15Home) return;
  for (std::size_t i = 0; i + 1 < code.size(); ++i) {
    const Token& op = code[i];
    if (op.kind != Tok::kPunct) continue;
    const Token& rhs = code[i + 1];
    const bool modulo = op.text == "%" || op.text == "%=";
    const bool mask = op.text == "&" || op.text == "&=";
    if (!modulo && !mask) continue;
    bool hit = false;
    if (rhs.kind == Tok::kNumber) {
      const auto v = integer_value(rhs.text);
      hit = v.has_value() && ((modulo && *v == 32768ULL) ||
                              (mask && *v == 32767ULL));
    } else if (rhs.kind == Tok::kIdent && modulo &&
               rhs.text == "kSeqModulo") {
      hit = true;
    }
    if (hit) {
      add(out, ctx, "seq15-raw-arith", op.line,
          "raw 15-bit wrap arithmetic (`" + op.text + " " + rhs.text +
              "`): use seq15()/seq15_next()/seq15_delta() from "
              "iec104/seq15.hpp so every wrap comparison shares one "
              "implementation");
    }
  }
}

// ---------------------------------------------------------------------------
// decoder-byte-index / decoder-memcpy
// ---------------------------------------------------------------------------

void rule_decoder_bytes(const FileContext& ctx, const std::vector<Token>& code,
                        std::vector<Finding>& out) {
  for (std::size_t i = 0; i < code.size(); ++i) {
    const Token& t = code[i];
    if (t.kind == Tok::kIdent && (t.text == "memcpy" || t.text == "memmove")) {
      add(out, ctx, "decoder-memcpy", t.line,
          t.text + " in a decoder module: wire bytes are read through the "
                   "bounds-checked util/bytes accessors, never block-copied");
      continue;
    }
    if (!is_punct(t, "[") || i == 0) continue;
    // Subscript (not a lambda introducer or attribute): '[' directly after
    // a postfix expression.
    const Token& prev = code[i - 1];
    const bool subscript =
        prev.kind == Tok::kIdent ||
        (prev.kind == Tok::kPunct && (prev.text == ")" || prev.text == "]"));
    if (!subscript) continue;
    int depth = 1;
    for (std::size_t j = i + 1; j < code.size() && depth > 0; ++j) {
      const Token& u = code[j];
      if (u.kind != Tok::kPunct) continue;
      if (u.text == "[" || u.text == "(") {
        ++depth;
      } else if (u.text == "]" || u.text == ")") {
        --depth;
      } else if (u.text == "+" || u.text == "-") {
        add(out, ctx, "decoder-byte-index", t.line,
            "offset subscript on a wire buffer: slice a span first or use "
            "the bounds-checked util/bytes readers (a bad offset must be a "
            "decode error, not UB)");
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// netd-raw-socket
// ---------------------------------------------------------------------------

bool is_sysfault_shim(const FileContext& ctx) {
  // The SysOps shim itself (RealSysOps is the one legitimate home of every
  // raw data-plane and storage syscall in the tree).
  return ctx.rel_path == "src/faultinject/sysfault.cpp" ||
         ctx.rel_path == "src/faultinject/sysfault.hpp";
}

void rule_raw_socket(const FileContext& ctx, const std::vector<Token>& code,
                     std::vector<Finding>& out) {
  // Outside src/netd — names that are unambiguously socket/reactor
  // plumbing: flagged as a bare or global-scope call.
  static const std::array<const char*, 11> kAlways = {
      "socket", "accept", "accept4",       "listen",
      "recv",   "recvfrom", "recvmsg",     "epoll_create",
      "epoll_create1", "epoll_ctl", "epoll_wait"};
  // Outside src/netd — names too generic to flag bare (read/write/bind/
  // connect are everywhere): flagged only as explicit `::name(`.
  static const std::array<const char*, 9> kGlobalOnly = {
      "read", "write", "send", "sendto", "sendmsg",
      "connect", "bind", "poll", "select"};
  // Inside src/netd — data-plane calls that must go through the
  // faultinject::SysOps shim so chaos tests can reach them. Setup-plane
  // calls (socket/listen/bind/connect/epoll_ctl/setsockopt/close) stay
  // legal: they run once per connection, not per byte, and faulting them
  // adds nothing the data plane doesn't already cover.
  static const std::array<const char*, 10> kNetdShimAlways = {
      "accept", "accept4", "recv",       "recvfrom",   "recvmsg",
      "send",   "sendto",  "sendmsg",    "epoll_wait", "epoll_pwait"};
  static const std::array<const char*, 4> kNetdShimGlobalOnly = {
      "read", "write", "poll", "select"};
  // Everywhere (including netd) — storage-durability syscalls: the
  // checkpoint writer's fault surface. `std::filesystem::rename` is a
  // qualified call and stays legal; raw `::rename`/`::fsync` bypass the
  // shim.
  static const std::array<const char*, 3> kStorageGlobalOnly = {
      "rename", "fsync", "fdatasync"};

  if (is_sysfault_shim(ctx)) return;
  const bool in_netd = ctx.module == "netd";

  auto in = [](const auto& arr, const std::string& name) {
    return std::find(arr.begin(), arr.end(), name) != arr.end();
  };
  for (std::size_t i = 0; i + 1 < code.size(); ++i) {
    const Token& t = code[i];
    if (t.kind != Tok::kIdent || !is_punct(code[i + 1], "(")) continue;
    const bool storage = in(kStorageGlobalOnly, t.text);
    const bool always =
        !storage && (in_netd ? in(kNetdShimAlways, t.text)
                             : in(kAlways, t.text));
    const bool global_only =
        storage || (in_netd ? in(kNetdShimGlobalOnly, t.text)
                            : in(kGlobalOnly, t.text));
    if (!always && !global_only) continue;
    bool global_scope = false;  // written `::name(`
    if (i > 0) {
      const Token& prev = code[i - 1];
      if (prev.kind == Tok::kPunct && (prev.text == "." || prev.text == "->")) {
        continue;  // member call
      }
      if (prev.kind == Tok::kPunct && prev.text == "::") {
        // Qualified: `foo::name(` is some other API; `::name(` is libc.
        if (i > 1 && code[i - 2].kind == Tok::kIdent) continue;
        global_scope = true;
      }
    }
    if (!always && !global_scope) continue;
    std::string why;
    if (storage) {
      why = "(): raw storage syscalls bypass the faultinject::SysOps shim; "
            "route durability through SysOps (see core/checkpoint.cpp) so "
            "the chaos tests can serve this path ENOSPC/EIO/torn renames";
    } else if (in_netd) {
      why = "(): raw data-plane syscalls inside src/netd bypass the "
            "faultinject::SysOps shim and its retry helpers; call through "
            "sys_/retry_read/retry_recv/retry_send/retry_accept instead";
    } else {
      why = "(): blocking socket calls outside src/netd stall the analysis "
            "path and bypass admission control/backpressure; go through the "
            "netd reactor, IngestServer, or FleetClient";
    }
    add(out, ctx, "netd-raw-socket", t.line,
        (global_scope ? "::" + t.text : t.text) + why);
  }
}

// ---------------------------------------------------------------------------
// zerocopy-vector-payload
// ---------------------------------------------------------------------------

/// src/net is the zero-copy substrate: decode-path functions take payload
/// bytes as std::span views so the mmap'd hot path never materializes a
/// vector to call them. A `std::vector<std::uint8_t>` parameter reintroduces
/// an owning-buffer contract (and usually a copy at every call site). The
/// detector keys on parameter position — a vector-of-bytes type directly
/// after '(' or ',' followed by a parameter name or the end of the list —
/// so owning members, locals, and return types stay legal.
void rule_vector_payload(const FileContext& ctx, const std::vector<Token>& code,
                         std::vector<Finding>& out) {
  auto ident = [&](std::size_t j, const char* text) {
    return j < code.size() && code[j].kind == Tok::kIdent && code[j].text == text;
  };
  for (std::size_t i = 0; i + 1 < code.size(); ++i) {
    if (!is_punct(code[i], "(") && !is_punct(code[i], ",")) continue;
    std::size_t j = i + 1;
    if (ident(j, "const")) ++j;
    if (ident(j, "std") && j + 1 < code.size() && is_punct(code[j + 1], "::")) {
      j += 2;
    }
    if (!ident(j, "vector") || j + 1 >= code.size() ||
        !is_punct(code[j + 1], "<")) {
      continue;
    }
    const int line = code[j].line;
    // Walk the template argument list; the element type must be a byte.
    bool byte_element = false;
    int depth = 1;
    std::size_t k = j + 2;
    for (; k < code.size() && depth > 0; ++k) {
      const Token& u = code[k];
      if (u.kind == Tok::kIdent &&
          (u.text == "uint8_t" || u.text == "byte" || u.text == "char")) {
        byte_element = true;
      } else if (u.kind == Tok::kPunct) {
        if (u.text == "<") ++depth;
        else if (u.text == ">") --depth;
        else if (u.text == ">>") depth -= 2;
        else if (u.text == ";") break;
      }
    }
    if (!byte_element || depth > 0) continue;
    if (k < code.size() && (is_punct(code[k], "&") || is_punct(code[k], "&&"))) {
      ++k;
    }
    // Parameter, not a call or brace-init: next is the parameter name, a
    // ',' starting the next parameter, or the ')' closing an unnamed one.
    if (k >= code.size()) continue;
    const Token& next = code[k];
    const bool parameter = next.kind == Tok::kIdent || is_punct(next, ",") ||
                           is_punct(next, ")") || is_punct(next, "=");
    if (!parameter) continue;
    add(out, ctx, "zerocopy-vector-payload", line,
        "std::vector<std::uint8_t> payload parameter in src/net: the "
        "zero-copy ingest contract is span-in (std::span<const "
        "std::uint8_t>); an owning-vector signature forces every mmap'd "
        "caller to copy");
  }
}

}  // namespace

const std::vector<RuleInfo>& rule_catalog() {
  static const std::vector<RuleInfo> kCatalog = {
      {"determinism-unordered-container",
       "no std::unordered_* containers in src/ (iteration order feeds "
       "reports/checkpoints)"},
      {"determinism-pointer-key",
       "no pointer-keyed std::map/std::set in src/ (address order varies "
       "across runs)"},
      {"determinism-unseeded-rng",
       "no rand()/std::random_device/time(nullptr)/std:: engines outside "
       "tests/ (use seeded util/rng.hpp)"},
      {"seq15-raw-arith",
       "no raw `% 32768` / `& 0x7fff` outside iec104/seq15.hpp"},
      {"decoder-byte-index",
       "no offset subscripts on wire buffers in decoder modules (use "
       "util/bytes)"},
      {"decoder-memcpy",
       "no memcpy/memmove in decoder modules (use util/bytes)"},
      {"netd-raw-socket",
       "no raw blocking socket calls (::accept/::recv/epoll_* ...) outside "
       "src/netd (use the reactor/IngestServer/FleetClient); inside netd "
       "and for ::rename/::fsync anywhere, go through faultinject::SysOps "
       "(only sysfault.cpp/RealSysOps touches the kernel directly)"},
      {"zerocopy-vector-payload",
       "no std::vector<std::uint8_t> payload parameters in src/net (decode "
       "paths are span-only; owning buffers stay behind the seam)"},
      {"layering-order",
       "module includes must follow the ranked DAG (util -> net -> decoders "
       "-> analysis -> core)"},
      {"layering-cycle", "the file-level include graph must be acyclic"},
  };
  return kCatalog;
}

bool is_known_rule(const std::string& id) {
  const auto& catalog = rule_catalog();
  return std::any_of(catalog.begin(), catalog.end(),
                     [&](const RuleInfo& r) { return id == r.id; });
}

void run_token_rules(const FileContext& ctx, const std::vector<Token>& tokens,
                     std::vector<Finding>& out) {
  std::vector<Token> code;
  code.reserve(tokens.size());
  for (const Token& t : tokens) {
    if (t.kind != Tok::kComment && t.kind != Tok::kInclude) code.push_back(t);
  }
  if (ctx.zone == Zone::kSrc) {
    rule_unordered_container(ctx, code, out);
    rule_pointer_key(ctx, code, out);
  }
  if (ctx.zone == Zone::kSrc || ctx.zone == Zone::kBench ||
      ctx.zone == Zone::kExamples) {
    rule_unseeded_rng(ctx, code, out);
  }
  rule_seq15(ctx, code, out);
  if (is_decoder_module(ctx)) {
    rule_decoder_bytes(ctx, code, out);
  }
  if (ctx.zone == Zone::kSrc && ctx.module == "net") {
    rule_vector_payload(ctx, code, out);
  }
  if (ctx.zone == Zone::kSrc || ctx.zone == Zone::kBench ||
      ctx.zone == Zone::kExamples) {
    // Inside src/netd the rule switches to its shim-enforcement form
    // (data-plane syscalls must go through faultinject::SysOps).
    rule_raw_socket(ctx, code, out);
  }
}

}  // namespace uncharted::lint
