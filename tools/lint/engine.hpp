// Scan orchestration for unchartedlint: walks the tree, lexes each file,
// runs the token rules and the include graph, applies in-place
// suppressions, and produces a deterministic report (sorted by file, line,
// rule — the linter holds itself to the determinism bar it enforces).
#pragma once

#include <string>
#include <vector>

#include "rules.hpp"

namespace uncharted::lint {

struct Options {
  /// Repository root. Default scan roots (src, bench, examples, tests,
  /// tools) are resolved against it; tests/lint/fixtures is excluded from
  /// the default walk because it is deliberately full of violations.
  std::string root = ".";
  /// Explicit files/directories (relative to root) to scan instead of the
  /// default roots. Explicit paths are scanned verbatim — no exclusions.
  std::vector<std::string> paths;
};

/// A suppression that matched a finding.
struct SuppressionUse {
  std::string rule;
  std::string file;
  int line = 0;
  std::string justification;
};

struct Report {
  std::vector<Finding> violations;
  std::vector<SuppressionUse> suppressions;
  int files_scanned = 0;

  bool clean() const { return violations.empty(); }
};

/// Runs the full scan. Throws std::runtime_error on I/O failure (missing
/// root or unreadable explicit path).
Report run_scan(const Options& options);

/// Renders the report as human-readable text (one `file:line: [rule]
/// message` per finding plus a summary line).
std::string render_text(const Report& report);

/// Renders the report as machine-readable JSON (stable field order, findings
/// sorted; uploaded as a CI artifact).
std::string render_json(const Report& report);

}  // namespace uncharted::lint
