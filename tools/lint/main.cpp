// unchartedlint CLI.
//
//   unchartedlint [--root DIR] [--json] [--out FILE] [--quiet] [paths...]
//   unchartedlint --list-rules
//
// With no paths, scans src/, bench/, examples/, tests/ and tools/ under the
// root (tests/lint/fixtures excluded — those are the golden-bad snippets).
// Explicit paths (files or directories, relative to the root) are scanned
// verbatim.
//
// Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "engine.hpp"
#include "rules.hpp"

namespace {

int usage(std::ostream& out, int code) {
  out << "usage: unchartedlint [--root DIR] [--json] [--out FILE] [--quiet]"
         " [paths...]\n"
         "       unchartedlint --list-rules\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace uncharted::lint;
  Options options;
  bool json = false;
  bool quiet = false;
  std::string out_file;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (i + 1 >= argc) return usage(std::cerr, 2);
      options.root = argv[++i];
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--out") {
      if (i + 1 >= argc) return usage(std::cerr, 2);
      out_file = argv[++i];
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--list-rules") {
      for (const RuleInfo& r : rule_catalog()) {
        std::cout << r.id << "\n    " << r.summary << "\n";
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      return usage(std::cout, 0);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unchartedlint: unknown option: " << arg << "\n";
      return usage(std::cerr, 2);
    } else {
      options.paths.push_back(arg);
    }
  }

  try {
    const Report report = run_scan(options);
    const std::string rendered =
        json ? render_json(report) : render_text(report);
    if (!out_file.empty()) {
      std::ofstream out(out_file);
      if (!out) {
        std::cerr << "unchartedlint: cannot write " << out_file << "\n";
        return 2;
      }
      out << rendered;
      if (!quiet) std::cout << render_text(report);
    } else if (!quiet || !report.clean()) {
      std::cout << rendered;
    }
    return report.clean() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
}
