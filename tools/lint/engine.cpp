#include "engine.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <tuple>

#include "include_graph.hpp"
#include "token.hpp"

namespace fs = std::filesystem;

namespace uncharted::lint {
namespace {

constexpr const char* kAllowMarker = "UNCHARTED-LINT-ALLOW(";

/// Default scan roots under the repository root.
constexpr std::array<const char*, 5> kDefaultRoots = {"src", "bench",
                                                      "examples", "tests",
                                                      "tools"};

/// Excluded from the default walk: golden-bad lint fixtures.
constexpr const char* kFixtureExclude = "tests/lint/fixtures";

bool has_source_extension(const fs::path& p) {
  static const std::array<const char*, 7> kExts = {
      ".cpp", ".cc", ".cxx", ".hpp", ".h", ".hxx", ".ipp"};
  const std::string ext = p.extension().string();
  return std::find(kExts.begin(), kExts.end(), ext) != kExts.end();
}

Zone zone_of(const std::string& rel_path) {
  const std::size_t slash = rel_path.find('/');
  const std::string head = rel_path.substr(0, slash);
  if (head == "src") return Zone::kSrc;
  if (head == "bench") return Zone::kBench;
  if (head == "examples") return Zone::kExamples;
  if (head == "tests") return Zone::kTests;
  if (head == "tools") return Zone::kTools;
  return Zone::kOther;
}

std::string module_of(const std::string& rel_path) {
  if (rel_path.rfind("src/", 0) != 0) return "";
  const std::size_t start = 4;
  const std::size_t slash = rel_path.find('/', start);
  if (slash == std::string::npos) return "";  // file directly under src/
  return rel_path.substr(start, slash - start);
}

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in) throw std::runtime_error("unchartedlint: cannot read " + p.string());
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

struct Suppression {
  std::vector<std::string> rules;
  int line = 0;
  std::string justification;
  bool used = false;
};

/// Parses UNCHARTED-LINT-ALLOW annotations out of a file's comment tokens.
/// Syntax errors become (unsuppressible) findings immediately.
std::vector<Suppression> parse_suppressions(const FileContext& ctx,
                                            const std::vector<Token>& tokens,
                                            std::vector<Finding>& out) {
  std::vector<Suppression> result;
  for (const Token& t : tokens) {
    if (t.kind != Tok::kComment) continue;
    std::size_t at = t.text.find(kAllowMarker);
    while (at != std::string::npos) {
      const std::size_t open = at + std::string(kAllowMarker).size();
      const std::size_t close = t.text.find(')', open);
      if (close == std::string::npos) {
        out.push_back(Finding{"lint-allow-malformed", ctx.rel_path, t.line,
                              "unterminated UNCHARTED-LINT-ALLOW(...)"});
        break;
      }
      Suppression s;
      s.line = t.line;
      std::string rule_list = t.text.substr(open, close - open);
      std::size_t pos = 0;
      while (pos <= rule_list.size()) {
        const std::size_t comma = rule_list.find(',', pos);
        const std::string id = trim(rule_list.substr(
            pos, comma == std::string::npos ? std::string::npos : comma - pos));
        if (!id.empty()) s.rules.push_back(id);
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
      if (s.rules.empty()) {
        out.push_back(Finding{"lint-allow-malformed", ctx.rel_path, t.line,
                              "UNCHARTED-LINT-ALLOW with an empty rule list"});
      }
      // Unknown ids are reported and dropped so the same mistake does not
      // additionally surface as lint-allow-unused.
      std::vector<std::string> known;
      for (const std::string& id : s.rules) {
        if (is_known_rule(id)) {
          known.push_back(id);
        } else {
          out.push_back(Finding{
              "lint-allow-unknown-rule", ctx.rel_path, t.line,
              "UNCHARTED-LINT-ALLOW names unknown rule '" + id +
                  "' (see `unchartedlint --list-rules`)"});
        }
      }
      s.rules = std::move(known);
      // Mandatory justification: a ':' after the ')' and non-empty text.
      std::size_t rest_begin = close + 1;
      std::string justification;
      if (rest_begin < t.text.size() && t.text[rest_begin] == ':') {
        std::string rest = t.text.substr(rest_begin + 1);
        const std::size_t block_end = rest.rfind("*/");
        if (block_end != std::string::npos) rest = rest.substr(0, block_end);
        justification = trim(rest);
      }
      if (justification.empty()) {
        out.push_back(Finding{
            "lint-allow-missing-justification", ctx.rel_path, t.line,
            "UNCHARTED-LINT-ALLOW requires a justification: "
            "`// UNCHARTED-LINT-ALLOW(rule): why this is safe`"});
      } else if (!s.rules.empty()) {
        s.justification = justification;
        result.push_back(std::move(s));
      }
      at = t.text.find(kAllowMarker, close);
    }
  }
  return result;
}

void sort_and_dedupe(std::vector<Finding>& findings) {
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  findings.erase(std::unique(findings.begin(), findings.end(),
                             [](const Finding& a, const Finding& b) {
                               return a.file == b.file && a.line == b.line &&
                                      a.rule == b.rule;
                             }),
                 findings.end());
}

void json_escape(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      case '\r': out << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

Report run_scan(const Options& options) {
  const fs::path root(options.root);
  if (!fs::exists(root)) {
    throw std::runtime_error("unchartedlint: root does not exist: " +
                             root.string());
  }

  // Collect the file set, sorted for deterministic output.
  std::vector<std::string> files;
  auto collect = [&](const fs::path& base, bool apply_excludes) {
    if (fs::is_regular_file(base)) {
      files.push_back(fs::relative(base, root).generic_string());
      return;
    }
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file() || !has_source_extension(entry.path())) {
        continue;
      }
      const std::string rel = fs::relative(entry.path(), root).generic_string();
      if (apply_excludes && rel.rfind(kFixtureExclude, 0) == 0) continue;
      files.push_back(rel);
    }
  };
  if (options.paths.empty()) {
    for (const char* sub : kDefaultRoots) {
      const fs::path base = root / sub;
      if (fs::exists(base)) collect(base, /*apply_excludes=*/true);
    }
  } else {
    for (const std::string& p : options.paths) {
      const fs::path base = root / p;
      if (!fs::exists(base)) {
        throw std::runtime_error("unchartedlint: no such path: " +
                                 base.string());
      }
      collect(base, /*apply_excludes=*/false);
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  Report report;
  IncludeGraph graph;
  std::vector<Finding> findings;
  std::map<std::string, std::vector<Suppression>> suppressions_by_file;

  for (const std::string& rel : files) {
    FileContext ctx;
    ctx.rel_path = rel;
    ctx.zone = zone_of(rel);
    ctx.module = module_of(rel);
    const std::vector<Token> tokens = lex(read_file(root / rel));
    ++report.files_scanned;
    suppressions_by_file[rel] = parse_suppressions(ctx, tokens, findings);
    run_token_rules(ctx, tokens, findings);
    graph.add_file(ctx, tokens);
  }
  graph.check(findings);

  // Apply suppressions: an ALLOW covers matching findings on its own line
  // or the line directly below. Meta findings (lint-allow-*) are never
  // suppressible.
  std::vector<Finding> kept;
  for (Finding& f : findings) {
    bool suppressed = false;
    if (f.rule.rfind("lint-allow-", 0) != 0) {
      for (Suppression& s : suppressions_by_file[f.file]) {
        if (s.line != f.line && s.line != f.line - 1) continue;
        if (std::find(s.rules.begin(), s.rules.end(), f.rule) ==
            s.rules.end()) {
          continue;
        }
        s.used = true;
        suppressed = true;
        report.suppressions.push_back(
            SuppressionUse{f.rule, f.file, f.line, s.justification});
        break;
      }
    }
    if (!suppressed) kept.push_back(std::move(f));
  }

  // A suppression that matched nothing is stale and must be removed.
  for (auto& [file, suppressions] : suppressions_by_file) {
    for (const Suppression& s : suppressions) {
      if (s.used) continue;
      std::string rules;
      for (const std::string& id : s.rules) {
        rules += (rules.empty() ? "" : ", ") + id;
      }
      kept.push_back(Finding{"lint-allow-unused", file, s.line,
                             "UNCHARTED-LINT-ALLOW(" + rules +
                                 ") matches no finding; remove the stale "
                                 "suppression"});
    }
  }

  sort_and_dedupe(kept);
  report.violations = std::move(kept);
  std::sort(report.suppressions.begin(), report.suppressions.end(),
            [](const SuppressionUse& a, const SuppressionUse& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  return report;
}

std::string render_text(const Report& report) {
  std::ostringstream out;
  for (const Finding& f : report.violations) {
    out << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message
        << "\n";
  }
  for (const SuppressionUse& s : report.suppressions) {
    out << "note: " << s.file << ":" << s.line << ": suppressed [" << s.rule
        << "]: " << s.justification << "\n";
  }
  out << "unchartedlint: " << report.violations.size() << " violation(s), "
      << report.suppressions.size() << " suppression(s), "
      << report.files_scanned << " file(s) scanned\n";
  return out.str();
}

std::string render_json(const Report& report) {
  std::ostringstream out;
  out << "{\n  \"tool\": \"unchartedlint\",\n";
  out << "  \"files_scanned\": " << report.files_scanned << ",\n";
  out << "  \"violations\": [";
  for (std::size_t i = 0; i < report.violations.size(); ++i) {
    const Finding& f = report.violations[i];
    out << (i == 0 ? "\n" : ",\n") << "    {\"rule\": ";
    json_escape(out, f.rule);
    out << ", \"file\": ";
    json_escape(out, f.file);
    out << ", \"line\": " << f.line << ", \"message\": ";
    json_escape(out, f.message);
    out << "}";
  }
  out << (report.violations.empty() ? "]" : "\n  ]") << ",\n";
  out << "  \"suppressions\": [";
  for (std::size_t i = 0; i < report.suppressions.size(); ++i) {
    const SuppressionUse& s = report.suppressions[i];
    out << (i == 0 ? "\n" : ",\n") << "    {\"rule\": ";
    json_escape(out, s.rule);
    out << ", \"file\": ";
    json_escape(out, s.file);
    out << ", \"line\": " << s.line << ", \"justification\": ";
    json_escape(out, s.justification);
    out << "}";
  }
  out << (report.suppressions.empty() ? "]" : "\n  ]") << ",\n";
  out << "  \"counts\": {\"violations\": " << report.violations.size()
      << ", \"suppressions\": " << report.suppressions.size() << "}\n}\n";
  return out.str();
}

}  // namespace uncharted::lint
