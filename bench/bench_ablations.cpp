// Ablation studies for the design choices DESIGN.md calls out:
//   A1. flow-lifetime definition: SYN+FIN/RST matching (the paper's) vs a
//       naive duration threshold;
//   A2. per-packet vs reassembled APDU parsing (the §6.3.1 retransmission
//       effect on Markov tokens);
//   A3. strict vs tolerant parsing coverage.
#include "analysis/flows.hpp"
#include "analysis/markov.hpp"
#include "bench/common.hpp"

using namespace uncharted;

int main() {
  bench::print_header("Ablations", "DESIGN.md section 5");

  auto y1 = bench::y1_capture();
  auto ds = analysis::CaptureDataset::build(y1.packets);

  // --- A1: flow lifetime definition --------------------------------------
  std::printf("A1: flow lifetime definition\n");
  const auto flows = ds.flow_table().flows();
  std::size_t paper_short = 0, naive_short = 0, disagree = 0;
  for (const auto& f : flows) {
    bool paper = f.lifetime() == net::FlowLifetime::kShortLived;
    bool naive = f.duration_seconds() < 60.0;  // "short = brief" strawman
    if (paper) ++paper_short;
    if (naive) ++naive_short;
    if (paper != naive) ++disagree;
  }
  std::printf("  flows: %zu\n", flows.size());
  std::printf("  short-lived (paper: SYN+FIN/RST in capture): %zu\n", paper_short);
  std::printf("  short-lived (naive: duration < 60 s):        %zu\n", naive_short);
  std::printf("  disagreements: %zu  -- the naive rule classifies every silently\n"
              "  ignored SYN (no reply, ~3 s on the wire) as short-lived, hiding the\n"
              "  paper's long-lived inflation signal entirely\n\n",
              disagree);

  // --- A2: per-packet vs reassembled parsing ------------------------------
  std::printf("A2: per-packet vs reassembled APDU extraction\n");
  analysis::CaptureDataset::Options reasm_opts;
  reasm_opts.mode = analysis::ParseMode::kReassembled;
  auto ds_reasm = analysis::CaptureDataset::build(y1.packets, reasm_opts);
  std::printf("  per-packet APDUs:  %s\n", format_count(ds.stats().apdus).c_str());
  std::printf("  reassembled APDUs: %s (TCP retransmissions deduplicated: %s)\n",
              format_count(ds_reasm.stats().apdus).c_str(),
              format_count(ds_reasm.stats().tcp_retransmissions).c_str());

  // Count connections whose chain contains a suspicious self-loop on U16 or
  // U32 under each mode: the paper initially read these as anomalies.
  auto count_selfloops = [](const analysis::CaptureDataset& d) {
    std::size_t n = 0;
    for (const auto& c : analysis::build_connection_chains(d)) {
      // The genuine reset-backup connections are U16-only chains; exclude
      // them to isolate the retransmission artifact on healthy links.
      if (c.nodes == 1) continue;
      if (c.chain.has_self_loop("U16") || c.chain.has_self_loop("U32")) ++n;
    }
    return n;
  };
  std::size_t loops_pp = count_selfloops(ds);
  std::size_t loops_re = count_selfloops(ds_reasm);
  std::printf("  healthy connections with repeated-U tokens: per-packet %zu, "
              "reassembled %zu\n",
              loops_pp, loops_re);
  std::printf("  -- repeated U16/U32 on healthy links are TCP retransmissions, not\n"
              "  endpoint behaviour (the paper's §6.3.1 conclusion)\n\n");

  // --- A3: strict vs tolerant parsing -------------------------------------
  std::printf("A3: strict vs tolerant parsing coverage\n");
  analysis::CaptureDataset::Options strict_opts;
  strict_opts.parser_mode = iec104::ApduStreamParser::Mode::kStrict;
  auto ds_strict = analysis::CaptureDataset::build(y1.packets, strict_opts);
  std::printf("  strict:   %s APDUs, %s failures\n",
              format_count(ds_strict.stats().apdus).c_str(),
              format_count(ds_strict.stats().apdu_failures).c_str());
  std::printf("  tolerant: %s APDUs, %s failures (%s legacy recovered)\n",
              format_count(ds.stats().apdus).c_str(),
              format_count(ds.stats().apdu_failures).c_str(),
              format_count(ds.stats().non_compliant_apdus).c_str());
  double lost = 1.0 - static_cast<double>(ds_strict.stats().apdus) /
                          static_cast<double>(ds.stats().apdus);
  std::printf("  a strict-only pipeline silently drops %s of the fleet's I-traffic\n",
              format_percent(lost, 1).c_str());
  return 0;
}
