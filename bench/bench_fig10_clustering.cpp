// E5/E13 — Fig 10 + Fig 11: session clustering, model selection, outliers —
// plus the feature-selection ablation (10 candidate features vs the paper's
// silhouette-selected 5).
#include "bench/common.hpp"

using namespace uncharted;

int main() {
  bench::print_header("E5/E13: Session clustering", "Fig 10, Fig 11, Hypothesis 4");

  auto y1 = bench::y1_capture();
  core::NameMap names = core::name_map(y1.topology);
  auto ds = analysis::CaptureDataset::build(y1.packets);

  // Feature ranking (the paper's silhouette-based selection).
  auto sessions = analysis::extract_session_features(ds);
  std::printf("sessions (directed endpoint pairs with APDUs): %zu\n\n", sessions.size());
  auto ranks = analysis::rank_features_by_silhouette(sessions);
  TextTable rank_table("Per-feature silhouette ranking (k=5)");
  rank_table.header({"feature", "silhouette"});
  for (const auto& r : ranks) {
    rank_table.row({analysis::feature_name(r.feature), format_double(r.silhouette, 3)});
  }
  std::printf("%s\n", rank_table.render().c_str());

  auto clustering = analysis::cluster_sessions(ds, 5);

  TextTable sweep("Model selection sweep (elbow / explained variance / silhouette)");
  sweep.header({"k", "SSE", "explained", "silhouette"});
  for (const auto& e : clustering.k_sweep) {
    sweep.row({std::to_string(e.k), format_double(e.sse, 1),
               format_percent(e.explained, 1), format_double(e.silhouette, 3)});
  }
  std::printf("%s", sweep.render().c_str());
  std::printf("elbow suggests k = %d (paper: 5)\n\n", analysis::elbow_k(clustering.k_sweep));

  TextTable clusters("Fig 11: cluster profiles (K-means++, k=5)");
  clusters.header({"cluster", "sessions", "share", "mean dt", "%I", "%S", "%U",
                   "interpretation"});
  for (const auto& p : clustering.profiles) {
    clusters.row({std::to_string(p.cluster), std::to_string(p.size),
                  format_percent(static_cast<double>(p.size) /
                                     static_cast<double>(clustering.sessions.size()), 1),
                  format_duration(p.mean_inter_arrival), format_percent(p.pct_i, 0),
                  format_percent(p.pct_s, 0), format_percent(p.pct_u, 0),
                  p.interpretation});
  }
  std::printf("%s\n", clusters.render().c_str());

  std::printf("Fig 10: first PCA-projected points per cluster (pc1, pc2)\n");
  for (int c = 0; c < clustering.chosen_k; ++c) {
    int shown = 0;
    std::printf("  cluster %d:", c);
    for (std::size_t i = 0; i < clustering.sessions.size() && shown < 4; ++i) {
      if (clustering.clustering.assignment[i] != c) continue;
      std::printf(" (%.2f, %.2f)", clustering.projection.projected[i][0],
                  clustering.projection.projected[i][1]);
      ++shown;
    }
    std::printf("\n");
  }
  std::printf("PCA variance explained by 2 components: %s\n\n",
              format_percent(clustering.projection.explained_by(2), 1).c_str());

  std::printf("Outlier cluster sessions (paper: C2->O30 and C4<->O22):\n");
  for (const auto* s : clustering.outlier_sessions) {
    std::printf("  %s -> %s  (dt=%s, n=%d)\n", core::name_of(names, s->src).c_str(),
                core::name_of(names, s->dst).c_str(),
                format_duration(s->values[analysis::kFeatMeanInterArrival]).c_str(),
                static_cast<int>(s->values[analysis::kFeatPacketCount]));
  }

  // Ablation: clustering on all 10 features vs the selected 5.
  analysis::Matrix all10, sel5;
  for (const auto& s : sessions) {
    all10.push_back(s.values);
    std::vector<double> row;
    for (auto f : analysis::paper_feature_selection()) row.push_back(s.values[f]);
    sel5.push_back(std::move(row));
  }
  auto z10 = analysis::standardize(all10);
  auto z5 = analysis::standardize(sel5);
  auto k10 = analysis::kmeans(z10, 5);
  auto k5 = analysis::kmeans(z5, 5);
  std::printf("\nAblation: feature selection effect on clustering quality\n");
  std::printf("  all 10 features: silhouette = %.3f\n",
              analysis::silhouette_score(z10, k10.assignment, 5));
  std::printf("  selected 5     : silhouette = %.3f (paper picked these by "
              "per-feature silhouette)\n",
              analysis::silhouette_score(z5, k5.assignment, 5));
  return 0;
}
