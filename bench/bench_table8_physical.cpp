// E10 — Table 8: typeID -> transmitting-station counts and physical
// symbols, cross-checked against the simulator's ground-truth signal map.
#include <set>

#include "analysis/typeid_stats.hpp"
#include "bench/common.hpp"

using namespace uncharted;

int main() {
  bench::print_header("E10: TypeIDs and physical measurements", "Table 8, Hypothesis 5");

  auto y1 = bench::y1_capture();
  auto y2 = bench::y2_capture();
  auto ds1 = analysis::CaptureDataset::build(y1.packets);
  auto ds2 = analysis::CaptureDataset::build(y2.packets);

  analysis::TypeIdStations combined;
  for (const auto* ds : {&ds1, &ds2}) {
    auto s = analysis::typeid_station_counts(*ds);
    for (const auto& [t, ips] : s.stations) {
      combined.stations[t].insert(ips.begin(), ips.end());
    }
  }

  // Ground truth: which physical symbols each typeID carries.
  std::map<std::uint8_t, std::set<std::string>> symbols;
  for (const auto* truth : {&y1.truth, &y2.truth}) {
    for (const auto& sig : truth->signals) {
      symbols[sig.type_id].insert(power::physical_symbol_name(sig.symbol));
    }
  }
  symbols[50].insert("AGC-SP");
  symbols[100].insert("Inter(global)");

  const std::map<int, std::pair<int, std::string>> kPaper = {
      {13, {20, "I,P,Q,U,Freq"}}, {36, {13, "I,P,Q,U,Freq"}}, {100, {9, "Inter(global)"}},
      {3, {6, "P,Q,U,Status"}},   {31, {4, "Status(0,2)"}},   {50, {4, "AGC-SP"}},
      {1, {3, "Status(0)"}},      {103, {3, "-"}},            {70, {2, "-"}},
      {5, {1, "-"}},              {9, {1, "-"}},              {7, {1, "-"}},
      {30, {1, "-"}}};

  TextTable table("Table 8: typeID -> transmitting stations and physical symbols");
  table.header({"typeID", "stations (measured)", "stations (paper)",
                "symbols (ground truth)", "symbols (paper)"});
  for (const auto& [type, ips] : combined.stations) {
    std::string sym;
    if (auto it = symbols.find(type); it != symbols.end()) {
      for (const auto& s : it->second) sym += (sym.empty() ? "" : ",") + s;
    } else {
      sym = "-";
    }
    auto paper = kPaper.find(type);
    table.row({"I" + std::to_string(type), std::to_string(ips.size()),
               paper != kPaper.end() ? std::to_string(paper->second.first) : "-", sym,
               paper != kPaper.end() ? paper->second.second : "-"});
  }
  std::printf("%s\n", table.render().c_str());

  // The DPI payoff: numeric series per physical symbol.
  auto series = analysis::extract_time_series(ds1);
  std::map<std::uint8_t, std::size_t> series_by_type;
  for (const auto& [key, ts] : series) ++series_by_type[ts.type_id];
  std::printf("extracted %zu numeric time series from Y1 traffic:\n", series.size());
  for (const auto& [type, count] : series_by_type) {
    std::printf("  I%-4d %zu series\n", type, count);
  }
  return 0;
}
