// E14 — parser and pipeline throughput (google-benchmark).
//
// The paper's pipeline had to chew through ~11 hours of captures; this
// bench verifies the C++ implementation handles capture-scale inputs at
// interactive speed: APDU encode/decode, tolerant stream parsing, TCP
// reassembly, and the full analyzer.
#include <benchmark/benchmark.h>

#include "analysis/dataset.hpp"
#include "core/analyzer.hpp"
#include "iec104/parser.hpp"
#include "sim/capture.hpp"

using namespace uncharted;

namespace {

iec104::Asdu sample_asdu(int objects) {
  iec104::Asdu asdu;
  asdu.type = iec104::TypeId::M_ME_TF_1;
  asdu.cot.cause = iec104::Cause::kSpontaneous;
  asdu.common_address = 17;
  for (int i = 0; i < objects; ++i) {
    iec104::InformationObject obj;
    obj.ioa = 2000 + static_cast<std::uint32_t>(i);
    obj.value = iec104::ShortFloat{60.0f + static_cast<float>(i), {}};
    obj.time = iec104::Cp56Time2a::from_timestamp(1560556800ULL * 1'000'000);
    asdu.objects.push_back(std::move(obj));
  }
  return asdu;
}

void BM_ApduEncode(benchmark::State& state) {
  auto asdu = sample_asdu(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto bytes = iec104::Apdu::make_i(1, 2, asdu).encode();
    benchmark::DoNotOptimize(bytes);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ApduEncode)->Arg(1)->Arg(8)->Arg(16);

void BM_ApduDecode(benchmark::State& state) {
  auto bytes = iec104::Apdu::make_i(1, 2, sample_asdu(static_cast<int>(state.range(0))))
                   .encode()
                   .take();
  for (auto _ : state) {
    ByteReader r(bytes);
    auto apdu = iec104::decode_apdu(r);
    benchmark::DoNotOptimize(apdu);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * bytes.size()));
}
BENCHMARK(BM_ApduDecode)->Arg(1)->Arg(8)->Arg(16);

void BM_TolerantStreamParse(benchmark::State& state) {
  // A stream mixing standard and legacy-profile APDUs.
  std::vector<std::uint8_t> stream;
  for (int i = 0; i < 100; ++i) {
    auto profile = i % 4 == 0 ? iec104::CodecProfile::legacy_cot()
                              : iec104::CodecProfile::standard();
    auto bytes = iec104::Apdu::make_i(static_cast<std::uint16_t>(i), 0, sample_asdu(1))
                     .encode(profile)
                     .take();
    stream.insert(stream.end(), bytes.begin(), bytes.end());
  }
  for (auto _ : state) {
    iec104::ApduStreamParser parser;
    parser.feed(0, stream);
    benchmark::DoNotOptimize(parser.apdus().size());
  }
  state.SetItemsProcessed(state.iterations() * 100);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * stream.size()));
}
BENCHMARK(BM_TolerantStreamParse);

void BM_StrictStreamParse(benchmark::State& state) {
  std::vector<std::uint8_t> stream;
  for (int i = 0; i < 100; ++i) {
    auto bytes =
        iec104::Apdu::make_i(static_cast<std::uint16_t>(i), 0, sample_asdu(1)).encode().take();
    stream.insert(stream.end(), bytes.begin(), bytes.end());
  }
  for (auto _ : state) {
    iec104::ApduStreamParser parser(iec104::ApduStreamParser::Mode::kStrict);
    parser.feed(0, stream);
    benchmark::DoNotOptimize(parser.apdus().size());
  }
  state.SetItemsProcessed(state.iterations() * 100);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * stream.size()));
}
BENCHMARK(BM_StrictStreamParse);

const sim::CaptureResult& capture_120s() {
  static const sim::CaptureResult capture =
      sim::generate_capture(sim::CaptureConfig::y1(120.0));
  return capture;
}

void BM_CaptureGeneration(benchmark::State& state) {
  for (auto _ : state) {
    auto capture = sim::generate_capture(
        sim::CaptureConfig::y1(static_cast<double>(state.range(0))));
    benchmark::DoNotOptimize(capture.packets.size());
  }
}
BENCHMARK(BM_CaptureGeneration)->Arg(30)->Arg(120)->Unit(benchmark::kMillisecond);

void BM_DatasetBuildPerPacket(benchmark::State& state) {
  const auto& capture = capture_120s();
  for (auto _ : state) {
    auto ds = analysis::CaptureDataset::build(capture.packets);
    benchmark::DoNotOptimize(ds.stats().apdus);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(capture.packets.size()));
}
BENCHMARK(BM_DatasetBuildPerPacket)->Unit(benchmark::kMillisecond);

void BM_DatasetBuildReassembled(benchmark::State& state) {
  const auto& capture = capture_120s();
  analysis::CaptureDataset::Options opts;
  opts.mode = analysis::ParseMode::kReassembled;
  for (auto _ : state) {
    auto ds = analysis::CaptureDataset::build(capture.packets, opts);
    benchmark::DoNotOptimize(ds.stats().apdus);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(capture.packets.size()));
}
BENCHMARK(BM_DatasetBuildReassembled)->Unit(benchmark::kMillisecond);

void BM_FullAnalyzer(benchmark::State& state) {
  const auto& capture = capture_120s();
  for (auto _ : state) {
    auto report = core::CaptureAnalyzer::analyze(capture.packets);
    benchmark::DoNotOptimize(report.stats.apdus);
  }
}
BENCHMARK(BM_FullAnalyzer)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
