// E11 — Figs 18-19: the unmet-load event and the AGC response, recovered
// purely from the network tap via deep packet inspection.
#include "analysis/physical.hpp"
#include "bench/common.hpp"

using namespace uncharted;

int main() {
  bench::print_header("E11: Unmet load and AGC response", "Fig 18, Fig 19");

  auto y1 = bench::y1_capture();
  core::NameMap names = core::name_map(y1.topology);
  auto ds = analysis::CaptureDataset::build(y1.packets);
  auto series = analysis::extract_time_series(ds);
  auto setpoints = analysis::extract_setpoint_series(ds);

  std::printf("ground truth: load lost at t=%.0fs, restored at t=%.0fs\n\n",
              y1.truth.load_loss_at_s, y1.truth.load_restore_at_s);

  // Normalized-variance screen (the paper's method for finding the event).
  auto ranking = analysis::rank_by_normalized_variance(series);
  std::printf("top movers by normalized variance (the paper's event screen):\n");
  for (std::size_t i = 0; i < std::min<std::size_t>(8, ranking.size()); ++i) {
    const auto& r = ranking[i];
    std::printf("  %-18s ioa=%-6u I%-3d nvar=%.4f (%zu samples)\n",
                core::name_of(names, r.key.station).c_str(), r.key.ioa, r.type_id,
                r.normalized_variance, r.samples);
  }

  // Fig 19: AGC setpoint series vs generator active-power response.
  std::printf("\nFig 19: AGC set points and generator response\n");
  Timestamp t0 = y1.truth.start_ts;
  for (const auto& [station_ip, sp] : setpoints) {
    if (sp.points.size() < 3) continue;
    std::printf("  %s AGC-SP series (%zu commands):", core::name_of(names, station_ip).c_str(),
                sp.points.size());
    for (std::size_t i = 0; i < std::min<std::size_t>(6, sp.points.size()); ++i) {
      std::printf(" %.0fs:%.1fMW", to_seconds(static_cast<DurationUs>(sp.points[i].ts - t0)),
                  sp.points[i].value);
    }
    std::printf("\n");

    // Correlate with the station's best-matching P series.
    double best_corr = 0.0;
    for (const auto& [key, ts] : series) {
      if (key.station != station_ip || ts.points.size() < 5) continue;
      double corr = analysis::setpoint_response_correlation(sp, ts, 10.0);
      if (corr > best_corr) best_corr = corr;
    }
    std::printf("    best setpoint->telemetry correlation (10 s lag): %.3f\n", best_corr);
  }

  // Frequency trace around the event: generators react to the load loss.
  std::printf("\nFig 18 (shape): a frequency series around the load-loss event\n");
  for (const auto& [key, ts] : series) {
    // Frequency series hover near 60.
    if (ts.points.size() < 20) continue;
    if (ts.min_value() < 59.0 || ts.max_value() > 61.5) continue;
    if (ts.max_value() - ts.min_value() < 0.02) continue;
    double before = 0, during = 0;
    int nb = 0, nd = 0;
    for (const auto& p : ts.points) {
      double rel = to_seconds(static_cast<DurationUs>(p.ts - t0));
      if (rel < y1.truth.load_loss_at_s) {
        before += p.value;
        ++nb;
      } else if (rel < y1.truth.load_restore_at_s) {
        during += p.value;
        ++nd;
      }
    }
    if (nb < 3 || nd < 3) continue;
    std::printf("  %s ioa=%u: mean f before=%.4f Hz, during unmet load=%.4f Hz (%+.4f)\n",
                core::name_of(names, key.station).c_str(), key.ioa, before / nb,
                during / nd, during / nd - before / nb);
    break;
  }
  std::printf("\n(paper: lost load raises frequency; AGC asks generators to reduce "
              "output until the load reconnects)\n");
  return 0;
}
