// E2 — §6.1 + Fig 7: IEC 104 compliance and the tolerant parser.
//
// Runs both capture years through the strict parser (what Wireshark/stock
// SCAPY would do: the legacy devices are 100% malformed) and the tolerant
// parser (the paper's contribution: the same traffic decodes under an
// IEC 101 legacy profile), then prints the per-device findings — including
// the Fig 7 byte-level comparison of a correct vs malformed packet.
#include "bench/common.hpp"
#include "iec104/parser.hpp"

using namespace uncharted;

namespace {

void report_year(const char* label, const sim::CaptureResult& capture,
                 const core::NameMap& names) {
  analysis::CaptureDataset::Options strict;
  strict.parser_mode = iec104::ApduStreamParser::Mode::kStrict;
  auto ds_strict = analysis::CaptureDataset::build(capture.packets, strict);
  auto ds_tolerant = analysis::CaptureDataset::build(capture.packets);

  std::printf("\n--- %s ---\n", label);
  TextTable table("Per-device compliance (tolerant parser)");
  table.header({"device", "I-APDUs", "non-standard", "detected profile"});
  for (const auto& [ip, entry] : ds_tolerant.compliance()) {
    if (entry.non_compliant == 0) continue;
    table.row({core::name_of(names, ip), format_count(entry.i_apdus),
               format_percent(static_cast<double>(entry.non_compliant) /
                              static_cast<double>(entry.i_apdus), 0),
               entry.profile.str()});
  }
  std::printf("%s", table.render().c_str());
  std::printf("strict parser:   %s APDUs decoded, %s failures\n",
              format_count(ds_strict.stats().apdus).c_str(),
              format_count(ds_strict.stats().apdu_failures).c_str());
  std::printf("tolerant parser: %s APDUs decoded, %s failures (%s recovered as legacy)\n",
              format_count(ds_tolerant.stats().apdus).c_str(),
              format_count(ds_tolerant.stats().apdu_failures).c_str(),
              format_count(ds_tolerant.stats().non_compliant_apdus).c_str());
}

}  // namespace

int main() {
  bench::print_header("E2: IEC 104 compliance / tolerant parsing",
                      "Section 6.1, Fig 7, Hypothesis 2");

  auto y1 = bench::y1_capture();
  auto y2 = bench::y2_capture();
  core::NameMap names = core::name_map(y1.topology);

  report_year("Year 1", y1, names);
  report_year("Year 2", y2, names);

  // Fig 7: byte-level view of a correct packet vs the two malformed kinds.
  std::printf("\nFig 7: wire comparison of one M_ME_NC_1 ASDU (ioa=4701, ca=37)\n");
  iec104::Asdu asdu;
  asdu.type = iec104::TypeId::M_ME_NC_1;
  asdu.cot.cause = iec104::Cause::kSpontaneous;
  asdu.common_address = 37;
  asdu.objects.push_back({4701, iec104::ShortFloat{59.98f, {}}, std::nullopt});
  for (auto [name, profile] :
       {std::pair{"(b) correct IEC 104", iec104::CodecProfile::standard()},
        std::pair{"(a) 1-octet COT (O53/O58/O28)", iec104::CodecProfile::legacy_cot()},
        std::pair{"(c) 2-octet IOA (O37)", iec104::CodecProfile::legacy_ioa()}}) {
    auto bytes = iec104::Apdu::make_i(0, 0, asdu).encode(profile);
    std::printf("  %-32s %s\n", name, hex_dump(bytes.value()).c_str());
    auto matches = iec104::detect_profiles(bytes.value());
    std::printf("  %-32s profiles matching exactly: %zu\n", "", matches.size());
  }

  auto cmp = bench::comparison_table("\nPaper vs measured");
  bench::compare_row(cmp, "devices 100% invalid under strict parsing (Y1)", "O37, O28",
                     "see table above");
  bench::compare_row(cmp, "devices 100% invalid under strict parsing (Y2)",
                     "O37, O53, O58", "see table above");
  bench::compare_row(cmp, "root cause", "IEC 101 legacy field widths",
                     "1-octet COT / 2-octet IOA profiles");
  std::printf("%s\n", cmp.render().c_str());
  return 0;
}
