// E3/E4 — Table 3 + Fig 8 + Fig 9: TCP flow lifetimes and the
// reset-backup behaviour.
#include "analysis/flows.hpp"
#include "bench/common.hpp"

using namespace uncharted;

namespace {

analysis::FlowAnalysis analyze_year(const sim::CaptureResult& capture) {
  auto ds = analysis::CaptureDataset::build(capture.packets);
  return analysis::analyze_flows(ds.flow_table());
}

void print_fig8(const analysis::FlowAnalysis& fa, const char* label) {
  std::printf("\nFig 8 (%s): short-lived flow duration histogram (log10 bins)\n", label);
  const auto& h = fa.short_lived_durations;
  std::uint64_t max_count = 1;
  for (std::size_t b = 0; b < h.bin_count(); ++b) max_count = std::max(max_count, h.count_at(b));
  for (std::size_t b = 0; b < h.bin_count(); ++b) {
    if (h.count_at(b) == 0) continue;
    int bar = static_cast<int>(50.0 * static_cast<double>(h.count_at(b)) /
                               static_cast<double>(max_count));
    std::printf("  %10s .. %-10s %6s %s\n", format_duration(h.edge(b)).c_str(),
                format_duration(h.edge(b + 1)).c_str(),
                format_count(h.count_at(b)).c_str(), std::string(static_cast<std::size_t>(bar), '#').c_str());
  }
}

}  // namespace

int main() {
  bench::print_header("E3/E4: TCP flow lifetimes and reset-backup behaviour",
                      "Table 3, Fig 8, Fig 9, Hypothesis 3");

  auto y1 = bench::y1_capture();
  auto y2 = bench::y2_capture();
  core::NameMap names = core::name_map(y1.topology);
  auto f1 = analyze_year(y1);
  auto f2 = analyze_year(y2);

  auto row = [](const analysis::FlowSummary& s) {
    return std::tuple{s.short_under_1s, s.short_over_1s, s.short_lived, s.long_lived,
                      s.total};
  };
  (void)row;

  TextTable table("Table 3: flow lifetime buckets");
  table.header({"metric", "paper Y1", "measured Y1", "paper Y2", "measured Y2"});
  auto pct = [](std::uint64_t part, std::uint64_t whole) {
    return whole ? format_percent(static_cast<double>(part) / static_cast<double>(whole), 1)
                 : "0%";
  };
  table.row({"<1s short-lived flows", "31,614 (99.8%)",
             format_count(f1.summary.short_under_1s) + " (" +
                 pct(f1.summary.short_under_1s, f1.summary.short_lived) + ")",
             "7,937 (93.5%)",
             format_count(f2.summary.short_under_1s) + " (" +
                 pct(f2.summary.short_under_1s, f2.summary.short_lived) + ")"});
  table.row({">=1s short-lived flows", "63 (0.2%)",
             format_count(f1.summary.short_over_1s) + " (" +
                 pct(f1.summary.short_over_1s, f1.summary.short_lived) + ")",
             "549 (6.5%)",
             format_count(f2.summary.short_over_1s) + " (" +
                 pct(f2.summary.short_over_1s, f2.summary.short_lived) + ")"});
  table.row({"short-lived flows", "31,677 (74.4%)",
             format_count(f1.summary.short_lived) + " (" +
                 format_percent(f1.summary.short_fraction(), 1) + ")",
             "8,486 (93.8%)",
             format_count(f2.summary.short_lived) + " (" +
                 format_percent(f2.summary.short_fraction(), 1) + ")"});
  table.row({"long-lived flows", "10,898 (25.6%)",
             format_count(f1.summary.long_lived) + " (" +
                 format_percent(f1.summary.long_fraction(), 1) + ")",
             "560 (6.2%)",
             format_count(f2.summary.long_lived) + " (" +
                 format_percent(f2.summary.long_fraction(), 1) + ")"});
  std::printf("%s", table.render().c_str());
  std::printf("(absolute counts scale with capture duration: bench runs %.0fx shorter "
              "captures than the paper's 8h/3h)\n",
              24.0 / bench::bench_scale());

  print_fig8(f1, "Y1");

  std::printf("\nFig 9: outstations mishandling backup connection attempts (Y1)\n");
  TextTable rejects("");
  rejects.header({"outstation", "SYN->RST refused", "SYN ignored", "established->RST"});
  for (const auto& r : f1.reject_behaviours) {
    rejects.row({core::name_of(names, r.responder), format_count(r.rst_refused),
                 format_count(r.syn_ignored), format_count(r.reset_midway)});
  }
  std::printf("%s\n", rejects.render().c_str());
  return 0;
}
