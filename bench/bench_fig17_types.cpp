// E8 — Table 6 + Fig 17: outstation interaction-type classification.
#include "analysis/classify.hpp"
#include "bench/common.hpp"

using namespace uncharted;

int main() {
  bench::print_header("E8: Outstation classification", "Table 6, Fig 17");

  // The paper classifies each outstation across ALL captures: type 4 (the
  // station that talked to a different server in each year) is invisible in
  // any single capture, so we classify over Y1 and Y2 combined.
  auto y1 = bench::y1_capture();
  auto y2 = bench::y2_capture();
  core::NameMap names = core::name_map(y1.topology);
  auto packets = y1.packets;
  packets.insert(packets.end(), y2.packets.begin(), y2.packets.end());
  auto ds = analysis::CaptureDataset::build(packets);
  auto stations = analysis::classify_stations(ds);
  auto hist = analysis::type_histogram(stations);

  TextTable table("Fig 17: outstation types (Y1+Y2)");
  table.header({"type", "description", "count", "share"});
  std::size_t total = stations.size();
  for (const auto& [type, count] : hist) {
    table.row({std::to_string(static_cast<int>(type)),
               analysis::station_type_description(type), std::to_string(count),
               format_percent(static_cast<double>(count) / static_cast<double>(total), 1)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("classified %zu outstations\n\n", total);

  std::printf("Per-station assignments:\n");
  std::map<int, std::vector<std::string>> by_type;
  for (const auto& s : stations) {
    by_type[static_cast<int>(s.type)].push_back(core::name_of(names, s.station));
  }
  for (auto& [type, members] : by_type) {
    std::sort(members.begin(), members.end());
    std::printf("  type %d: %s\n", type, join(members, ", ").c_str());
  }

  auto cmp = bench::comparison_table("\nPaper vs measured");
  auto share = [&](analysis::StationType t) {
    auto it = hist.find(t);
    std::size_t c = it == hist.end() ? 0 : it->second;
    return format_percent(static_cast<double>(c) / static_cast<double>(total), 1);
  };
  bench::compare_row(cmp, "most common type", "type 3 (34.3%)",
                     "type 3 (" + share(analysis::StationType::kType3) + ")");
  bench::compare_row(cmp, "type 5 (stale spontaneous)", "1 outstation",
                     std::to_string(hist[analysis::StationType::kType5]));
  bench::compare_row(cmp, "type 4 (I to both servers)", "1 outstation",
                     std::to_string(hist[analysis::StationType::kType4]));
  bench::compare_row(cmp, "type 7 share of backups", "~1/4",
                     format_percent(static_cast<double>(hist[analysis::StationType::kType7]) /
                                    static_cast<double>(hist[analysis::StationType::kType3] +
                                                        hist[analysis::StationType::kType7]),
                                    0));
  std::printf("%s\n", cmp.render().c_str());

  // Ground truth confusion: simulator type vs inferred type.
  std::printf("Ground-truth check (simulated type -> inferred type):\n");
  int agree = 0, totaled = 0;
  for (const auto& s : stations) {
    for (const auto& os : y1.topology.outstations) {
      if (os.ip == s.station) {
        ++totaled;
        if (static_cast<int>(os.type) == static_cast<int>(s.type)) {
          ++agree;
        } else {
          std::printf("  %s: simulated type %d, inferred type %d\n", os.name().c_str(),
                      static_cast<int>(os.type), static_cast<int>(s.type));
        }
      }
    }
  }
  std::printf("agreement: %d/%d\n", agree, totaled);
  return 0;
}
