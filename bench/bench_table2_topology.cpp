// E1 — Table 2 + Fig 6: year-over-year topology change.
//
// Generates the Y1 and Y2 captures, infers the outstation inventory from
// traffic alone (as the paper did before interviewing the operator), and
// prints the Table 2 adds/removes plus the stability headline ("14
// outstations / 26% of substations unchanged").
#include "analysis/topology_diff.hpp"
#include "bench/common.hpp"

using namespace uncharted;

int main() {
  bench::print_header("E1: Topology change Y1 -> Y2", "Table 2, Fig 6, Hypothesis 1");

  auto y1 = bench::y1_capture();
  auto y2 = bench::y2_capture();
  core::NameMap names = core::name_map(y1.topology);

  auto ds1 = analysis::CaptureDataset::build(y1.packets);
  auto ds2 = analysis::CaptureDataset::build(y2.packets);
  auto diff = analysis::diff_topology(ds1, ds2);

  TextTable table("Inferred outstation changes (Table 2)");
  table.header({"outstation", "change", "IOAs Y1", "IOAs Y2"});
  for (const auto& e : diff.entries) {
    if (e.change == analysis::StationChange::kUnchanged) continue;
    table.row({core::name_of(names, e.station), station_change_name(e.change),
               std::to_string(e.ioas_before), std::to_string(e.ioas_after)});
  }
  std::printf("%s\n", table.render().c_str());

  std::size_t both_years = 0, unchanged = 0;
  for (const auto& e : diff.entries) {
    if (e.change != analysis::StationChange::kAdded &&
        e.change != analysis::StationChange::kRemoved) {
      ++both_years;
    }
    if (e.change == analysis::StationChange::kUnchanged) ++unchanged;
  }

  std::size_t y1_count = analysis::station_inventory(ds1).size();
  std::size_t y2_count = analysis::station_inventory(ds2).size();
  auto cmp = bench::comparison_table("Paper vs measured");
  bench::compare_row(cmp, "outstations observed Y1", "49", std::to_string(y1_count));
  bench::compare_row(cmp, "outstations observed Y2", "51", std::to_string(y2_count));
  bench::compare_row(cmp, "outstations added", "9", std::to_string(diff.added));
  bench::compare_row(cmp, "outstations removed", "7", std::to_string(diff.removed));
  bench::compare_row(cmp, "unchanged outstations", "14 (25%)",
                     std::to_string(unchanged) + " (" +
                         format_percent(static_cast<double>(unchanged) /
                                            static_cast<double>(58),
                                        0) +
                         " of 58; " + std::to_string(diff.unchanged_reporting) +
                         " of them report telemetry)");
  std::printf("%s\n", cmp.render().c_str());
  std::printf("note: keep-alive-only backup RTUs expose no IOAs in either year, so\n"
              "traffic-only inference counts them as unchanged; the paper's count came\n"
              "from operator-confirmed IOA totals (our ground truth below).\n");

  // Ground truth check: the inferred diff against what the operator told us.
  int truth_unchanged = 0;
  for (const auto& os : y1.topology.outstations) {
    if (os.in_y1 && os.in_y2 && os.ioa_count_y1 == os.ioa_count_y2) ++truth_unchanged;
  }
  std::printf("ground truth: %d outstations unchanged (inferred %zu)\n", truth_unchanged,
              unchanged);
  return 0;
}
