// Shared scaffolding for the reproduction benches: capture generation at
// the default evaluation scale, naming, and paper-vs-measured rendering.
//
// The paper's captures total ~8 h (Y1) and ~3 h (Y2); the benches default
// to 1200 s / 450 s — the same 8:3 ratio at 1/24 scale — so every run
// finishes in seconds while preserving all rate-derived shapes. Override
// with UNCHARTED_BENCH_SCALE=<factor> (e.g. 24 regenerates the full size).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/analyzer.hpp"
#include "core/names.hpp"
#include "sim/capture.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace uncharted::bench {

inline double bench_scale() {
  const char* env = std::getenv("UNCHARTED_BENCH_SCALE");
  if (!env) return 1.0;
  // strtod with endptr, not atof: atof returns 0.0 for garbage, which the
  // old `v > 0` guard silently mapped back to 1.0 — a typo'd override ran
  // the bench at default scale while claiming the requested one.
  char* end = nullptr;
  double v = std::strtod(env, &end);
  if (end == env || *end != '\0' || !(v > 0)) {
    std::fprintf(stderr,
                 "warning: ignoring UNCHARTED_BENCH_SCALE=\"%s\" (not a "
                 "positive number); using scale 1\n",
                 env);
    return 1.0;
  }
  return v;
}

inline sim::CaptureResult y1_capture() {
  return sim::generate_capture(sim::CaptureConfig::y1(1200.0 * bench_scale()));
}

inline sim::CaptureResult y2_capture() {
  return sim::generate_capture(sim::CaptureConfig::y2(450.0 * bench_scale()));
}

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

/// One "paper vs measured" comparison row.
inline void compare_row(TextTable& table, const std::string& metric,
                        const std::string& paper, const std::string& measured) {
  table.row({metric, paper, measured});
}

inline TextTable comparison_table(const std::string& title) {
  TextTable t(title);
  t.header({"metric", "paper", "measured"});
  return t;
}

}  // namespace uncharted::bench
