// E12 — Figs 20-21: the generator-synchronization signature, detected from
// the tap with the Fig 21 state machine.
#include "analysis/physical.hpp"
#include "bench/common.hpp"

using namespace uncharted;

int main() {
  bench::print_header("E12: Generator synchronization signature", "Fig 20, Fig 21");

  auto y1 = bench::y1_capture();
  core::NameMap names = core::name_map(y1.topology);
  auto ds = analysis::CaptureDataset::build(y1.packets);
  auto series = analysis::extract_time_series(ds);

  const auto* o31 = y1.topology.find_outstation(31);
  std::printf("ground truth: O31's generator begins startup at t=%.0fs\n\n",
              y1.truth.generator_online_at_s);

  // Gather O31's voltage / status / power series.
  const analysis::TimeSeries* voltage = nullptr;
  const analysis::TimeSeries* status = nullptr;
  const analysis::TimeSeries* power = nullptr;
  std::map<std::uint32_t, power::PhysicalSymbol> sig_map;
  for (const auto& sig : y1.truth.signals) {
    if (sig.outstation_id == 31) sig_map[sig.ioa] = sig.symbol;
  }
  for (const auto& [key, ts] : series) {
    if (key.station != o31->ip) continue;
    auto it = sig_map.find(key.ioa);
    if (it == sig_map.end()) continue;
    switch (it->second) {
      case power::PhysicalSymbol::kVoltage:
        if (!voltage || ts.points.size() > voltage->points.size()) voltage = &ts;
        break;
      case power::PhysicalSymbol::kStatus:
        if (!status || ts.points.size() > status->points.size()) status = &ts;
        break;
      case power::PhysicalSymbol::kActivePower:
        if (!power || ts.points.size() > power->points.size()) power = &ts;
        break;
      default:
        break;
    }
  }
  if (!voltage || !status || !power) {
    std::printf("missing series: voltage=%p status=%p power=%p\n",
                static_cast<const void*>(voltage), static_cast<const void*>(status),
                static_cast<const void*>(power));
    return 1;
  }

  Timestamp t0 = y1.truth.start_ts;
  auto rel = [&](Timestamp ts) {
    return to_seconds(static_cast<DurationUs>(ts - t0));
  };

  // Fig 20: print the three aligned series (decimated).
  std::printf("Fig 20 series for O31 (time, value) — decimated:\n");
  auto dump = [&](const char* label, const analysis::TimeSeries& ts) {
    std::printf("  %-8s", label);
    std::size_t step = std::max<std::size_t>(1, ts.points.size() / 10);
    for (std::size_t i = 0; i < ts.points.size(); i += step) {
      std::printf(" %.0fs:%.1f", rel(ts.points[i].ts), ts.points[i].value);
    }
    std::printf("\n");
  };
  dump("U [kV]", *voltage);
  dump("status", *status);
  dump("P [MW]", *power);

  // Fig 21: run the signature state machine.
  auto activation = analysis::detect_generator_activation(*voltage, *status, *power);
  std::printf("\nFig 21 state machine trajectory:\n  ");
  for (std::size_t i = 0; i < activation.trajectory.size(); ++i) {
    std::printf("%s%s", i ? " -> " : "",
                analysis::signature_state_name(activation.trajectory[i]).c_str());
  }
  std::printf("\n");
  if (activation.complete) {
    std::printf("legal activation detected:\n");
    std::printf("  voltage ramp at   t=%.0fs\n", rel(activation.voltage_ramp_at));
    std::printf("  synchronized at   t=%.0fs\n", rel(activation.synchronized_at));
    std::printf("  breaker closed at t=%.0fs (status 0 -> 2)\n",
                rel(activation.breaker_closed_at));
    std::printf("  power ramp at     t=%.0fs\n", rel(activation.power_ramp_at));
  } else {
    std::printf("no complete activation signature found\n");
  }

  auto cmp = bench::comparison_table("\nPaper vs measured");
  bench::compare_row(cmp, "voltage jump", "0 -> ~120-130 kV",
                     format_double(voltage->min_value(), 1) + " -> " +
                         format_double(voltage->max_value(), 1) + " kV");
  bench::compare_row(cmp, "breaker status transition", "0 -> 2",
                     format_double(status->min_value(), 0) + " -> " +
                         format_double(status->max_value(), 0));
  bench::compare_row(cmp, "P before breaker close", "unchanged (0)",
                     activation.complete ? "0 until breaker-closed" : "n/a");
  bench::compare_row(cmp, "sequence order", "V ramp -> sync -> close -> P ramp",
                     activation.complete ? "same (state machine completed)" : "incomplete");
  std::printf("%s\n", cmp.render().c_str());
  return activation.complete ? 0 : 1;
}
