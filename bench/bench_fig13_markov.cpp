// E6/E7 — Figs 12-16: message-sequence Markov chains.
//
// Prints the canonical example chains (Fig 12 primary/secondary, Fig 14 the
// abnormal (1,1) pattern, Fig 15/16 switchover with I100), the full
// (nodes, edges) scatter of Fig 13 with its three clusters, and the
// membership of the (1,1) point against the paper's named connection list.
#include <algorithm>

#include "analysis/markov.hpp"
#include "bench/common.hpp"

using namespace uncharted;

int main() {
  bench::print_header("E6/E7: Markov chains of APDU sequences",
                      "Figs 12-16, Tables 4-5, Hypothesis 4");

  auto y1 = bench::y1_capture();
  core::NameMap names = core::name_map(y1.topology);
  auto ds = analysis::CaptureDataset::build(y1.packets);
  auto chains = analysis::build_connection_chains(ds);

  auto name_pair = [&](const analysis::EndpointPair& p) {
    return core::name_of(names, p.a) + "-" + core::name_of(names, p.b);
  };

  // Fig 13 scatter.
  std::printf("Fig 13: chain sizes (nodes, edges) per connection\n");
  std::map<std::pair<std::size_t, std::size_t>, std::size_t> scatter;
  std::size_t p11 = 0, square = 0, ellipse = 0;
  for (const auto& c : chains) {
    ++scatter[{c.nodes, c.edges}];
    switch (c.cluster) {
      case analysis::ChainCluster::kPoint11: ++p11; break;
      case analysis::ChainCluster::kSquare: ++square; break;
      case analysis::ChainCluster::kEllipse: ++ellipse; break;
    }
  }
  for (const auto& [size, count] : scatter) {
    std::printf("  (%zu nodes, %zu edges): %zu connections\n", size.first, size.second,
                count);
  }
  std::printf("clusters: point(1,1)=%zu  square=%zu  ellipse(I100)=%zu\n\n", p11, square,
              ellipse);

  std::printf("Connections at the (1,1) point (paper: C2-O28, C2-O24, C1-O7, C1-O9,\n"
              "C1-O6, C1-O8, C1-O35, C2-O30, C1-O15, C1-O5):\n");
  for (const auto& c : chains) {
    if (c.cluster == analysis::ChainCluster::kPoint11) {
      std::printf("  %s  (%zu repeated %s)\n", name_pair(c.pair).c_str(),
                  c.tokens.size(), c.tokens.front().c_str());
    }
  }

  std::printf("\nConnections in the ellipse (contain I100):\n");
  for (const auto& c : chains) {
    if (c.cluster == analysis::ChainCluster::kEllipse) {
      std::printf("  %s  (%zu nodes, %zu edges)\n", name_pair(c.pair).c_str(), c.nodes,
                  c.edges);
    }
  }

  // Fig 12-left: a healthy primary chain (largest I-dominated square chain).
  const analysis::ConnectionChain* primary = nullptr;
  const analysis::ConnectionChain* secondary = nullptr;
  const analysis::ConnectionChain* switchover = nullptr;
  for (const auto& c : chains) {
    if (c.cluster == analysis::ChainCluster::kSquare && c.chain.has_node("S") &&
        c.chain.has_node("I_36") && !primary) {
      primary = &c;
    }
    if (c.cluster == analysis::ChainCluster::kSquare && c.nodes == 2 &&
        c.chain.has_node("U16") && c.chain.has_node("U32") && !secondary) {
      secondary = &c;
    }
    if (c.cluster == analysis::ChainCluster::kEllipse && c.chain.has_node("U16") &&
        !switchover) {
      switchover = &c;
    }
  }
  if (primary) {
    std::printf("\nFig 12 (left) — primary connection %s:\n%s",
                name_pair(primary->pair).c_str(), primary->chain.str().c_str());
  }
  if (secondary) {
    std::printf("\nFig 12 (right) — ideal secondary connection %s:\n%s",
                name_pair(secondary->pair).c_str(), secondary->chain.str().c_str());
  }
  if (switchover) {
    std::printf("\nFig 16 — switchover connection %s (U keep-alive, then U1/U2, I100,"
                " data):\n%s",
                name_pair(switchover->pair).c_str(), switchover->chain.str().c_str());
  }

  // Bigram language model over the fleet (Eq. 1-2), most probable bigrams.
  analysis::BigramModel lm;
  for (const auto& c : chains) lm.add_sequence(c.tokens);
  std::printf("\nBigram LM (MLE) — common transitions:\n");
  for (auto [a, b] : {std::pair{"I_36", "I_36"}, std::pair{"I_36", "S"},
                      std::pair{"S", "I_36"}, std::pair{"U16", "U32"},
                      std::pair{"U1", "U2"}, std::pair{"U2", "I_100"}}) {
    std::printf("  P(%s | %s) = %.3f\n", b, a, lm.probability(a, b));
  }
  return 0;
}
