// E15 (extension) — Fig 5: the other protocols on the tap.
//
// The paper notes the capture "included other industrial protocols over
// TCP/IP such as ICCP ... and C37.118" and leaves their analysis to future
// studies. This bench performs the first pass: protocol mix, synchrophasor
// stream inventory, and ICCP data-set activity.
#include "analysis/background.hpp"
#include "bench/common.hpp"

using namespace uncharted;

int main() {
  bench::print_header("E15 (extension): background protocols on the tap",
                      "Fig 5 (ICCP and C37.118, 'future studies')");

  auto y1 = bench::y1_capture();
  auto ds = analysis::CaptureDataset::build(y1.packets);
  auto background = analysis::analyze_background(y1.packets);

  TextTable mix("Protocol mix (by TCP packets)");
  mix.header({"protocol", "port", "packets", "share"});
  auto total = static_cast<double>(ds.stats().tcp_packets);
  std::uint64_t iec104 = ds.stats().tcp_packets - ds.stats().c37118_packets -
                         ds.stats().iccp_packets - ds.stats().other_tcp_packets;
  mix.row({"IEC 104", "2404", format_count(iec104),
           format_percent(static_cast<double>(iec104) / total, 1)});
  mix.row({"C37.118", "4712", format_count(ds.stats().c37118_packets),
           format_percent(static_cast<double>(ds.stats().c37118_packets) / total, 1)});
  mix.row({"ICCP (ISO-TSAP)", "102", format_count(ds.stats().iccp_packets),
           format_percent(static_cast<double>(ds.stats().iccp_packets) / total, 1)});
  mix.row({"other", "-", format_count(ds.stats().other_tcp_packets),
           format_percent(static_cast<double>(ds.stats().other_tcp_packets) / total, 1)});
  std::printf("%s\n", mix.render().c_str());

  TextTable pmus("C37.118 synchrophasor streams");
  pmus.header({"stream", "station", "idcode", "channels", "cfg rate", "measured rate",
               "data frames", "mean df [mHz]"});
  for (const auto& s : background.pmu_streams) {
    pmus.row({s.source.str() + " -> " + s.sink.str(), s.station_name,
              std::to_string(s.idcode), join(s.channels, "/"),
              std::to_string(s.configured_rate) + " fps",
              format_double(s.measured_rate_fps, 1) + " fps",
              format_count(s.data_frames), format_double(s.mean_freq_deviation_mhz, 1)});
  }
  std::printf("%s\n", pmus.render().c_str());

  TextTable links("ICCP control-center links");
  links.header({"link", "associations", "reports", "reads", "points"});
  for (const auto& l : background.iccp_links) {
    links.row({l.a.str() + " <-> " + l.b.str(), join(l.associations, ","),
               format_count(l.reports), format_count(l.reads), format_count(l.points)});
  }
  std::printf("%s\n", links.render().c_str());

  if (!background.iccp_links.empty()) {
    std::printf("most transferred ICCP points:\n");
    const auto& names = background.iccp_links[0].point_names;
    int shown = 0;
    for (const auto& [name, count] : names) {
      std::printf("  %-24s %s\n", name.c_str(), format_count(count).c_str());
      if (++shown >= 4) break;
    }
  }

  std::printf("\n(the PMU streams' frequency deviation tracks the same grid the\n"
              " IEC 104 telemetry reports — cross-protocol consistency a future\n"
              " SOC could exploit)\n");
  return 0;
}
