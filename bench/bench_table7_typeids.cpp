// E9 — Table 7: ASDU typeID distribution across both capture years.
#include "analysis/typeid_stats.hpp"
#include "bench/common.hpp"
#include "iec104/constants.hpp"

using namespace uncharted;

int main() {
  bench::print_header("E9: ASDU typeID distribution", "Table 7");

  auto y1 = bench::y1_capture();
  auto y2 = bench::y2_capture();
  auto ds1 = analysis::CaptureDataset::build(y1.packets);
  auto ds2 = analysis::CaptureDataset::build(y2.packets);

  // The paper reports the distribution over all datasets combined.
  analysis::TypeIdDistribution combined;
  for (const auto* ds : {&ds1, &ds2}) {
    auto d = analysis::typeid_distribution(*ds);
    for (const auto& [t, c] : d.counts) combined.counts[t] += c;
    combined.total += d.total;
  }

  // Paper Table 7 values for comparison.
  const std::map<int, double> kPaper = {
      {36, 65.1322}, {13, 31.6959}, {9, 2.6960},  {50, 0.2330}, {3, 0.1427},
      {5, 0.0893},   {100, 0.0080}, {103, 0.0011}, {30, 0.0005}, {70, 0.0005},
      {31, 0.0005},  {1, 0.0004},   {7, 0.00004}};

  TextTable table("Table 7: observed ASDU typeID distribution (Y1+Y2)");
  table.header({"typeID", "acronym", "count", "measured", "paper"});
  for (const auto& [type, count] : combined.sorted()) {
    auto paper_it = kPaper.find(type);
    table.row({"I" + std::to_string(type),
               iec104::type_acronym(static_cast<iec104::TypeId>(type)),
               format_count(count), format_percent(combined.percentage(type)),
               paper_it != kPaper.end() ? format_double(paper_it->second, 4) + "%"
                                        : "-"});
  }
  std::printf("%s", table.render().c_str());
  std::printf("total I-format ASDUs: %s\n", format_count(combined.total).c_str());
  std::printf("observed distinct typeIDs: %zu (paper: 13 of the 54 supported)\n\n",
              combined.counts.size());

  double top2 = combined.percentage(36) + combined.percentage(13);
  std::printf("I36+I13 share: %s (paper: ~97%%)\n", format_percent(top2, 1).c_str());
  return 0;
}
