// bench_throughput: machine-readable packets/sec and APDUs/sec for the
// parallel flow-sharded pipeline at 1, 2, 4 and hardware_concurrency
// threads, over the Y1 and Y2 synthetic captures.
//
//   ./bench_throughput [--out BENCH_throughput.json] [--reps N]
//
// Three stages are timed per (capture, thread-count) pair:
//   ingest      — dataset construction (sequential build at 1 thread, the
//                 flow-sharded builder above that; the 1-thread number is
//                 exactly the pre-parallelism code path),
//   analyze     — every §6 computation over the built dataset,
//   end_to_end  — CaptureAnalyzer::analyze, both of the above.
// Each stage runs --reps times (default 3) and reports the fastest wall
// time: the pipeline is deterministic, so the minimum is the measurement
// and the rest is scheduler noise.
//
// Output schema (one JSON object):
//   { "scale": S, "hardware_threads": H,
//     "results": [ {"capture": "y1", "stage": "ingest", "threads": T,
//                   "wall_ms": W, "packets_per_s": P, "apdus_per_s": A}, … ],
//     "speedup": [ {"capture": "y1", "stage": "end_to_end",
//                   "threads": T, "vs_1_thread": X}, … ] }
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/sharded.hpp"
#include "bench/common.hpp"
#include "core/analyzer.hpp"
#include "core/export.hpp"
#include "exec/pool.hpp"

using namespace uncharted;

namespace {

using Clock = std::chrono::steady_clock;

double time_ms(const std::function<void()>& fn) {
  auto start = Clock::now();
  fn();
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

double best_of(int reps, const std::function<void()>& fn) {
  double best = time_ms(fn);
  for (int i = 1; i < reps; ++i) best = std::min(best, time_ms(fn));
  return best;
}

std::string json_num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

struct Entry {
  std::string capture;
  std::string stage;
  unsigned threads;
  double wall_ms;
  std::uint64_t packets;
  std::uint64_t apdus;
};

double per_second(std::uint64_t count, double wall_ms) {
  return wall_ms > 0 ? static_cast<double>(count) / (wall_ms / 1000.0) : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_throughput.json";
  int reps = 3;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--reps" && i + 1 < argc) {
      reps = std::max(1, std::atoi(argv[++i]));
    } else {
      std::fprintf(stderr, "usage: %s [--out FILE] [--reps N]\n", argv[0]);
      return 2;
    }
  }

  unsigned hw = exec::Pool::default_threads();
  std::vector<unsigned> thread_counts = {1, 2, 4};
  if (std::find(thread_counts.begin(), thread_counts.end(), hw) ==
      thread_counts.end()) {
    thread_counts.push_back(hw);
  }

  bench::print_header("Pipeline throughput",
                      "parallel flow-sharded ingest + §6 analytics");
  std::printf("hardware threads: %u, reps: %d, scale: %s\n\n", hw, reps,
              json_num(bench::bench_scale()).c_str());

  std::vector<Entry> entries;
  struct CaptureCase {
    const char* name;
    sim::CaptureResult cap;
  };
  std::vector<CaptureCase> cases;
  cases.push_back({"y1", bench::y1_capture()});
  cases.push_back({"y2", bench::y2_capture()});

  for (auto& c : cases) {
    const auto& packets = c.cap.packets;
    analysis::CaptureDataset::Options ds_opts;
    // APDU count for the throughput denominator (thread-invariant).
    std::uint64_t apdus =
        analysis::CaptureDataset::build(packets, ds_opts).stats().apdus;
    std::printf("%s: %zu packets, %llu apdus\n", c.name, packets.size(),
                static_cast<unsigned long long>(apdus));

    for (unsigned t : thread_counts) {
      core::CaptureAnalyzer::Options opts;
      opts.threads = t;

      double ingest_ms = best_of(reps, [&] {
        if (t <= 1) {
          auto ds = analysis::CaptureDataset::build(packets, ds_opts);
          (void)ds;
        } else {
          exec::Pool pool(t);
          auto ds = analysis::build_dataset_sharded(packets, ds_opts, &pool);
          (void)ds;
        }
      });
      entries.push_back(
          {c.name, "ingest", t, ingest_ms, packets.size(), apdus});

      auto dataset = t <= 1 ? analysis::CaptureDataset::build(packets, ds_opts)
                            : [&] {
                                exec::Pool pool(t);
                                return analysis::build_dataset_sharded(
                                    packets, ds_opts, &pool);
                              }();
      double analyze_ms = best_of(reps, [&] {
        auto report = core::analyze_dataset(
            dataset, analysis::analyze_bandwidth(packets), opts);
        (void)report;
      });
      entries.push_back(
          {c.name, "analyze", t, analyze_ms, packets.size(), apdus});

      double e2e_ms = best_of(reps, [&] {
        auto report = core::CaptureAnalyzer::analyze(packets, opts);
        (void)report;
      });
      entries.push_back(
          {c.name, "end_to_end", t, e2e_ms, packets.size(), apdus});

      std::printf(
          "  %u thread(s): ingest %8.1f ms (%s pkt/s)  analyze %8.1f ms  "
          "end-to-end %8.1f ms\n",
          t, ingest_ms, json_num(per_second(packets.size(), ingest_ms)).c_str(),
          analyze_ms, e2e_ms);
    }
  }

  // Speedups vs the 1-thread run of the same capture and stage.
  std::string json = "{";
  json += "\"scale\":" + json_num(bench::bench_scale());
  json += ",\"hardware_threads\":" + std::to_string(hw);
  json += ",\"results\":[";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const auto& e = entries[i];
    if (i) json += ",";
    json += "{\"capture\":\"" + e.capture + "\"";
    json += ",\"stage\":\"" + e.stage + "\"";
    json += ",\"threads\":" + std::to_string(e.threads);
    json += ",\"wall_ms\":" + json_num(e.wall_ms);
    json += ",\"packets_per_s\":" + json_num(per_second(e.packets, e.wall_ms));
    json += ",\"apdus_per_s\":" + json_num(per_second(e.apdus, e.wall_ms)) + "}";
  }
  json += "],\"speedup\":[";
  bool first = true;
  for (const auto& e : entries) {
    if (e.threads == 1) continue;
    auto base = std::find_if(entries.begin(), entries.end(), [&](const Entry& b) {
      return b.capture == e.capture && b.stage == e.stage && b.threads == 1;
    });
    if (base == entries.end() || e.wall_ms <= 0) continue;
    double speedup = base->wall_ms / e.wall_ms;
    if (!first) json += ",";
    first = false;
    json += "{\"capture\":\"" + e.capture + "\"";
    json += ",\"stage\":\"" + e.stage + "\"";
    json += ",\"threads\":" + std::to_string(e.threads);
    json += ",\"vs_1_thread\":" + json_num(speedup) + "}";
    std::printf("%s %-10s @%u threads: %.2fx vs 1 thread\n", e.capture.c_str(),
                e.stage.c_str(), e.threads, speedup);
  }
  json += "]}";

  if (auto st = core::write_text_file(out_path, json + "\n"); !st) {
    std::fprintf(stderr, "cannot write %s: %s\n", out_path.c_str(),
                 st.error().str().c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
