// iec104_fleet: drives a fleet of tapstream clients against iec104d.
//
//   ./iec104_fleet --connect 127.0.0.1:2404 --year 1 --duration 600
//                  --clones 10 --garbage 2 --slow-loris 2 --pace 50
//
// Builds a deterministic fleet script (sim::build_fleet_script) from a
// synthesized capture or a pcap, then replays every stream concurrently
// with pacing, churn, seeded reconnect backoff, and hostile abuse modes.
// With --query it instead fetches the daemon's current report JSON and
// prints it; --health fetches the daemon's supervision (health) JSON.
//
// Exit codes follow the uniform CLI ladder: 0 all benign streams
// delivered and acknowledged with no hostile modes scripted, 1 usage or
// input error (or a failed --query/--health), 2 some benign stream failed
// permanently, 3 hostile modes were scripted (wins over 2 — the run
// deliberately impersonated attackers).
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>

#include "net/pcap.hpp"
#include "netd/client.hpp"
#include "sim/capture.hpp"
#include "sim/fleet.hpp"

using namespace uncharted;

namespace {

netd::Reactor* g_reactor = nullptr;

void on_signal(int) {
  if (g_reactor != nullptr) g_reactor->notify_from_signal();
}

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --connect HOST:PORT [--query | --health]\n"
      "          [--pcap FILE | --year 1|2 [--duration SECONDS] [--seed N]]\n"
      "          [--clones N] [--hostile-content N] [--garbage N]\n"
      "          [--slow-loris N] [--pace FACTOR] [--churn P]\n"
      "          [--fleet-seed N] [--linger] [--retry-for SECONDS] [--quiet]\n",
      argv0);
}

bool split_host_port(const std::string& s, std::string* host, std::uint16_t* port) {
  auto colon = s.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= s.size()) return false;
  const int p = std::atoi(s.c_str() + colon + 1);
  if (p <= 0 || p > 65535) return false;
  *host = s.substr(0, colon);
  *port = static_cast<std::uint16_t>(p);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  netd::FleetConfig fleet;
  sim::FleetScriptConfig script_config;
  sim::CaptureConfig capture_config = sim::CaptureConfig::y1(600.0);
  std::string connect_arg;
  std::string pcap_path;
  bool query = false;
  bool health = false;
  bool quiet = false;
  bool seed_set = false;
  int year = 1;
  double duration = 600.0;
  std::uint64_t capture_seed = 0;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--connect") {
      connect_arg = next();
    } else if (arg == "--query") {
      query = true;
    } else if (arg == "--health") {
      health = true;
    } else if (arg == "--pcap") {
      pcap_path = next();
    } else if (arg == "--year") {
      year = std::atoi(next());
    } else if (arg == "--duration") {
      duration = std::atof(next());
    } else if (arg == "--seed") {
      capture_seed = static_cast<std::uint64_t>(std::atoll(next()));
      seed_set = true;
    } else if (arg == "--clones") {
      script_config.clones = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--hostile-content") {
      script_config.hostile_content = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--garbage") {
      script_config.garbage = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--slow-loris") {
      script_config.slow_loris = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--pace") {
      fleet.pace = std::atof(next());
    } else if (arg == "--churn") {
      fleet.churn = std::atof(next());
    } else if (arg == "--fleet-seed") {
      fleet.seed = static_cast<std::uint64_t>(std::atoll(next()));
      script_config.seed = fleet.seed;
    } else if (arg == "--linger") {
      fleet.linger = true;
    } else if (arg == "--retry-for") {
      fleet.retry_for_s = std::atof(next());
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      usage(argv[0]);
      return 1;
    }
  }

  if (connect_arg.empty() ||
      !split_host_port(connect_arg, &fleet.host, &fleet.port)) {
    usage(argv[0]);
    return 1;
  }

  if (query || health) {
    auto json = health ? netd::fetch_health(fleet.host, fleet.port, 10.0)
                       : netd::fetch_report(fleet.host, fleet.port, 10.0);
    if (!json) {
      std::fprintf(stderr, "%s failed: %s\n", health ? "health query" : "query",
                   json.error().str().c_str());
      return 1;
    }
    std::printf("%s\n", json->c_str());
    return 0;
  }

  std::vector<net::CapturedPacket> packets;
  if (!pcap_path.empty()) {
    auto read = net::PcapReader::read_file_tolerant(pcap_path);
    if (!read) {
      std::fprintf(stderr, "cannot read %s: %s\n", pcap_path.c_str(),
                   read.error().str().c_str());
      return 1;
    }
    packets = std::move(read->packets);
  } else {
    capture_config =
        year == 2 ? sim::CaptureConfig::y2(duration) : sim::CaptureConfig::y1(duration);
    if (seed_set) capture_config.seed = capture_seed;
    packets = sim::generate_capture(capture_config).packets;
  }

  auto script = sim::build_fleet_script(packets, script_config);
  if (!quiet) {
    std::fprintf(stderr,
                 "fleet: %zu streams (%zu benign, %zu hostile), %llu frames\n",
                 script.streams.size(), script.benign_streams,
                 script.hostile_streams,
                 static_cast<unsigned long long>(script.total_frames));
  }

  netd::Reactor reactor;
  g_reactor = &reactor;
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGPIPE, SIG_IGN);
  reactor.set_wakeup_callback([&reactor] { reactor.stop(); });

  netd::FleetClient client(reactor, fleet, std::move(script.streams));
  client.start();
  // Declared at function scope: the timer callback re-registers `watch` by
  // reference, so it must outlive reactor.run().
  std::function<void()> watch;
  if (!fleet.linger) {
    // Lingering fleets run until a signal; plain fleets stop once every
    // stream reaches a terminal phase.
    watch = [&] {
      if (client.all_done()) {
        reactor.stop();
        return;
      }
      reactor.add_timer_after(0.02, watch);
    };
    reactor.add_timer_after(0.02, watch);
  }
  reactor.run();

  const auto& stats = client.stats();
  if (!quiet) {
    std::fprintf(stderr,
                 "done: sent=%llu finished=%llu reconnects=%llu "
                 "busy_retries=%llu failed=%llu\n",
                 static_cast<unsigned long long>(stats.frames_sent),
                 static_cast<unsigned long long>(stats.finished_streams),
                 static_cast<unsigned long long>(stats.reconnects),
                 static_cast<unsigned long long>(stats.busy_retries),
                 static_cast<unsigned long long>(stats.failed_streams));
  }
  // The uniform exit ladder: hostile (3) wins over degraded (2).
  if (script.hostile_streams > 0) return 3;
  return client.all_benign_ok() ? 0 : 2;
}
