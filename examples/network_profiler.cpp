// network_profiler: the full measurement pipeline over a pcap file —
// what you would run against a real tap. Prints the §6 report plus
// per-connection Markov chains and the outstation classification.
//
//   ./network_profiler [capture.pcap] [--export DIR]
//
// Without a pcap, self-demos on a synthetic Y1 capture. With --export,
// writes redrawable artifacts into DIR: the Fig 10 cluster scatter CSV,
// the Fig 8 histogram CSV, and a Graphviz .dot per interesting Markov
// chain (render with `dot -Tpng`).
#include <cstdio>
#include <string>

#include "analysis/classify.hpp"
#include "analysis/markov.hpp"
#include "core/analyzer.hpp"
#include "core/export.hpp"
#include "sim/capture.hpp"

using namespace uncharted;

int main(int argc, char** argv) {
  std::vector<net::CapturedPacket> packets;
  core::NameMap names;
  std::string pcap_path;
  std::string export_dir;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--export" && i + 1 < argc) {
      export_dir = argv[++i];
    } else {
      pcap_path = arg;
    }
  }

  if (!pcap_path.empty()) {
    auto loaded = net::PcapReader::read_file(pcap_path);
    if (!loaded) {
      std::fprintf(stderr, "cannot read %s: %s\n", pcap_path.c_str(),
                   loaded.error().str().c_str());
      return 1;
    }
    packets = std::move(loaded).take();
    std::printf("loaded %zu packets from %s\n", packets.size(), pcap_path.c_str());
  } else {
    std::printf("no pcap given; generating a synthetic Year-1 capture...\n");
    auto capture = sim::generate_capture(sim::CaptureConfig::y1(600.0));
    packets = std::move(capture.packets);
    names = core::name_map(capture.topology);
  }

  auto report = core::CaptureAnalyzer::analyze(packets);
  auto ds = analysis::CaptureDataset::build(packets);
  if (names.empty()) names = core::infer_names(ds);

  std::printf("\n%s", core::render_report(report, names).c_str());

  // Outstation classification detail (Table 6 / Fig 17).
  std::printf("\n== Outstation classification detail ==\n");
  for (const auto& sc : report.station_types) {
    std::printf("%-12s type %d  (%s)\n", core::name_of(names, sc.station).c_str(),
                static_cast<int>(sc.type),
                analysis::station_type_description(sc.type).c_str());
    for (const auto& conn : sc.connections) {
      std::printf("    <-> %-10s I(out/in)=%llu/%llu U16=%llu U32=%llu%s\n",
                  core::name_of(names, conn.server).c_str(),
                  static_cast<unsigned long long>(conn.i_from_station),
                  static_cast<unsigned long long>(conn.i_from_server),
                  static_cast<unsigned long long>(conn.u16),
                  static_cast<unsigned long long>(conn.u32),
                  conn.has_i100 ? "  [I100]" : "");
    }
  }

  // One interesting Markov chain, rendered.
  std::printf("\n== Largest Markov chain ==\n");
  const analysis::ConnectionChain* biggest = nullptr;
  for (const auto& c : report.chains) {
    if (!biggest || c.edges > biggest->edges) biggest = &c;
  }
  if (biggest) {
    std::printf("%s <-> %s (%zu nodes, %zu edges, cluster %s)\n%s",
                core::name_of(names, biggest->pair.a).c_str(),
                core::name_of(names, biggest->pair.b).c_str(), biggest->nodes,
                biggest->edges, analysis::chain_cluster_name(biggest->cluster).c_str(),
                biggest->chain.str().c_str());
  }

  if (!export_dir.empty()) {
    std::printf("\nexporting artifacts to %s/ ...\n", export_dir.c_str());
    auto check = [](Status st, const char* what) {
      if (!st.ok()) std::fprintf(stderr, "  %s failed: %s\n", what, st.error().str().c_str());
    };
    check(core::write_text_file(export_dir + "/fig10_clusters.csv",
                                core::clusters_to_csv(report.clustering)),
          "cluster CSV");
    check(core::write_text_file(export_dir + "/fig8_durations.csv",
                                core::histogram_to_csv(report.flows.short_lived_durations)),
          "histogram CSV");
    int exported = 0;
    for (const auto& c : report.chains) {
      if (c.cluster == analysis::ChainCluster::kSquare && c.edges < 4) continue;
      std::string name = core::name_of(names, c.pair.a) + "-" +
                         core::name_of(names, c.pair.b);
      check(core::write_text_file(export_dir + "/chain_" + name + ".dot",
                                  core::markov_to_dot(c.chain, name)),
            "chain DOT");
      if (++exported >= 12) break;
    }
    std::printf("  wrote fig10_clusters.csv, fig8_durations.csv and %d chain .dot files\n",
                exported);
  }
  return 0;
}
