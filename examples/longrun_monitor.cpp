// longrun_monitor: streaming analysis with checkpoint/restore.
//
//   ./longrun_monitor --pcap y1.pcap --checkpoint mon.ckpt --interval 500
//
// Consumes a capture the way a permanent monitor would: in bounded
// batches, under resource budgets, writing a crash-safe checkpoint every
// N packets. Re-running after a crash (or `--kill-after N`, which
// simulates one by exiting mid-stream) resumes from the last good
// checkpoint instead of starting over — the soak harness in
// scripts/soak.sh kills and restarts this binary repeatedly and asserts
// the final report matches the batch analyzer.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/streaming.hpp"
#include "net/pcap.hpp"
#include "util/strings.hpp"

using namespace uncharted;

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --pcap FILE [--checkpoint FILE] [--interval PACKETS]\n"
               "          [--batch PACKETS] [--max-flows N] [--max-reassembly-bytes N]\n"
               "          [--max-records N] [--max-parsers N] [--reassembled]\n"
               "          [--kill-after PACKETS] [--quiet] [--threads N]\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  std::string pcap_path;
  core::StreamingOptions options;
  options.checkpoint_every_packets = 1000;
  options.analyze.threads = 0;  // one worker per hardware thread
  std::uint64_t kill_after = 0;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--pcap") {
      pcap_path = next();
    } else if (arg == "--checkpoint") {
      options.checkpoint_path = next();
    } else if (arg == "--interval") {
      options.checkpoint_every_packets =
          static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--batch") {
      options.batch_packets = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--max-flows") {
      options.budgets.max_flow_entries = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--max-reassembly-bytes") {
      options.budgets.max_reassembly_bytes =
          static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--max-records") {
      options.budgets.max_records = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--max-parsers") {
      options.budgets.max_parsers = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--reassembled") {
      options.analyze.mode = analysis::ParseMode::kReassembled;
    } else if (arg == "--threads") {
      options.analyze.threads = static_cast<unsigned>(std::atoll(next()));
    } else if (arg == "--kill-after") {
      kill_after = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      usage(argv[0]);
      return 1;
    }
  }
  if (pcap_path.empty()) {
    usage(argv[0]);
    return 1;
  }

  auto read = net::PcapReader::read_file_tolerant(pcap_path);
  if (!read) {
    std::fprintf(stderr, "read failed: %s\n", read.error().str().c_str());
    return 1;
  }

  core::StreamingAnalyzer analyzer(options);
  std::uint64_t skip = 0;
  if (analyzer.try_restore()) {
    skip = analyzer.packets_consumed();
    std::printf("resumed from checkpoint: %s packets already consumed\n",
                format_count(skip).c_str());
    if (skip > read->packets.size()) {
      std::fprintf(stderr, "checkpoint cursor beyond end of input; starting over\n");
      return 1;
    }
  }

  const auto& packets = read->packets;
  for (std::size_t i = static_cast<std::size_t>(skip); i < packets.size(); ++i) {
    analyzer.add_packet(packets[i]);
    if (kill_after > 0 && analyzer.packets_consumed() >= kill_after) {
      // Simulated crash: no shutdown checkpoint, no destructors — the
      // next run must survive on the last periodic checkpoint alone.
      std::printf("simulated crash at %s packets\n",
                  format_count(analyzer.packets_consumed()).c_str());
      std::fflush(stdout);
      std::_Exit(42);
    }
  }

  auto report = analyzer.finalize();
  if (read->truncated_tail) {
    report.degradation.pcap_truncated = true;
    report.degradation.warnings.insert(report.degradation.warnings.begin(),
                                       read->warning);
  }

  if (quiet) {
    // Headline metrics only — what the soak harness diffs against batch.
    std::printf("packets=%llu apdus=%llu stations=%zu flows=%llu clusters=%zu\n",
                static_cast<unsigned long long>(report.stats.packets),
                static_cast<unsigned long long>(report.stats.apdus),
                report.station_types.size(),
                static_cast<unsigned long long>(report.flows.summary.total),
                report.clustering.profiles.size());
  } else {
    core::NameMap names;  // no topology at hand: raw addresses
    std::printf("%s\n", core::render_report(report, names).c_str());
  }
  // The uniform CLI exit-code contract (README "Exit codes").
  if (report.conformance.any_hostile()) return 3;
  if (report.degradation.degraded() || !report.degradation.warnings.empty()) return 2;
  return 0;
}
