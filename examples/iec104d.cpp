// iec104d: the always-on live-ingest daemon.
//
//   ./iec104d --port 0 --checkpoint live.ckpt --threads 8
//             --expect-streams 70 --drain-when-done --report report.json
//
// Accepts tapstream connections (see src/netd/wire.hpp) from fleet
// clients, merges them into one deterministic frame order, and feeds the
// streaming analyzer continuously. SIGTERM/SIGINT drain gracefully (final
// composed checkpoint + full report); SIGKILL at any point is recovered by
// restarting with --restore — the watermark merge plus cursor-based client
// resume make the final report byte-identical to an uninterrupted run.
//
// Exit codes: 0 clean, 1 usage or startup failure, 2 degraded (analyzer
// degradation warnings or forced releases), 3 hostile (conformance
// verdicts in the report, or transport-hostile peers evicted by netd;
// wins over 2), 4 self-terminate (the health watchdog ladder exhausted
// its recovery rungs; a process supervisor should restart with --restore).
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <string>

#include "core/export.hpp"
#include "core/liveingest.hpp"
#include "faultinject/sysfault.hpp"
#include "health/health.hpp"
#include "util/strings.hpp"

using namespace uncharted;

namespace {

netd::Reactor* g_reactor = nullptr;
volatile std::sig_atomic_t g_signal = 0;

void on_signal(int sig) {
  g_signal = sig;
  if (g_reactor != nullptr) g_reactor->notify_from_signal();
}

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--port N] [--bind ADDR] [--checkpoint FILE] [--restore]\n"
      "          [--threads N] [--interval SECONDS] [--report FILE]\n"
      "          [--expect-streams N] [--drain-when-done] [--run-for SECONDS]\n"
      "          [--kill-after-frames N] [--max-conns N] [--accept-rate R]\n"
      "          [--max-buffered-bytes N] [--per-conn-buffer N]\n"
      "          [--no-forced-release] [--handshake-timeout S]\n"
      "          [--read-timeout S] [--idle-timeout S] [--query-sock PATH]\n"
      "          [--max-flows N] [--max-reassembly-bytes N] [--max-records N]\n"
      "          [--max-parsers N] [--reassembled] [--quiet]\n"
      "          [--sysfault-rate R] [--sysfault-seed N]\n"
      "          [--sysfault-mode network|storage|compound]\n"
      "          [--no-watchdog] [--watchdog-poll S] [--watchdog-reactor S]\n"
      "          [--watchdog-merge S] [--watchdog-lane S]\n"
      "          [--watchdog-checkpoint S] [--breaker-max N]\n"
      "          [--breaker-window S] [--stall-checkpoint]\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  core::LiveIngestOptions options;
  options.streaming.analyze.threads = 1;
  bool restore = false;
  bool drain_when_done = false;
  bool quiet = false;
  double run_for = 0.0;
  std::uint64_t kill_after_frames = 0;
  std::string report_path;
  double sysfault_rate = 0.0;
  std::uint64_t sysfault_seed = 1;
  std::string sysfault_mode = "compound";

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--port") {
      options.server.port = static_cast<std::uint16_t>(std::atoi(next()));
    } else if (arg == "--bind") {
      options.server.bind_addr = next();
    } else if (arg == "--checkpoint") {
      options.streaming.checkpoint_path = next();
    } else if (arg == "--restore") {
      restore = true;
    } else if (arg == "--threads") {
      options.streaming.analyze.threads = static_cast<unsigned>(std::atoll(next()));
    } else if (arg == "--interval") {
      options.checkpoint_every_s = std::atof(next());
    } else if (arg == "--report") {
      report_path = next();
    } else if (arg == "--expect-streams") {
      options.server.expect_streams = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--drain-when-done") {
      drain_when_done = true;
    } else if (arg == "--run-for") {
      run_for = std::atof(next());
    } else if (arg == "--kill-after-frames") {
      kill_after_frames = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--max-conns") {
      options.server.max_connections = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--accept-rate") {
      options.server.accept_rate = std::atof(next());
    } else if (arg == "--max-buffered-bytes") {
      options.server.max_buffered_bytes = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--per-conn-buffer") {
      options.server.per_conn_buffered_bytes =
          static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--no-forced-release") {
      options.server.allow_forced_release = false;
    } else if (arg == "--handshake-timeout") {
      options.server.handshake_timeout_s = std::atof(next());
    } else if (arg == "--read-timeout") {
      options.server.read_timeout_s = std::atof(next());
    } else if (arg == "--idle-timeout") {
      options.server.idle_timeout_s = std::atof(next());
    } else if (arg == "--query-sock") {
      options.server.query_sock_path = next();
    } else if (arg == "--max-flows") {
      options.streaming.budgets.max_flow_entries =
          static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--max-reassembly-bytes") {
      options.streaming.budgets.max_reassembly_bytes =
          static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--max-records") {
      options.streaming.budgets.max_records =
          static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--max-parsers") {
      options.streaming.budgets.max_parsers =
          static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--reassembled") {
      options.streaming.analyze.mode = analysis::ParseMode::kReassembled;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--sysfault-rate") {
      sysfault_rate = std::atof(next());
    } else if (arg == "--sysfault-seed") {
      sysfault_seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--sysfault-mode") {
      sysfault_mode = next();
    } else if (arg == "--no-watchdog") {
      options.watchdog.poll_s = 0.0;
    } else if (arg == "--watchdog-poll") {
      options.watchdog.poll_s = std::atof(next());
    } else if (arg == "--watchdog-reactor") {
      options.watchdog.reactor_deadline_s = std::atof(next());
    } else if (arg == "--watchdog-merge") {
      options.watchdog.merge_deadline_s = std::atof(next());
    } else if (arg == "--watchdog-lane") {
      options.watchdog.lane_deadline_s = std::atof(next());
    } else if (arg == "--watchdog-checkpoint") {
      options.watchdog.checkpoint_deadline_s = std::atof(next());
    } else if (arg == "--breaker-max") {
      options.watchdog.breaker.max_recoveries =
          static_cast<std::uint32_t>(std::atoll(next()));
    } else if (arg == "--breaker-window") {
      options.watchdog.breaker.window_s = std::atof(next());
    } else if (arg == "--stall-checkpoint") {
      // Test knob: wedge the checkpoint writer to drive the recovery
      // ladder (restart-checkpoint ×2 → self-terminate, exit 4).
      options.stall_checkpoint = true;
    } else {
      usage(argv[0]);
      return 1;
    }
  }

  // Self-chaos: one FaultySysOps shared by the reactor, the ingest
  // server, and the checkpoint writer — the soak script's in-binary knob.
  std::unique_ptr<faultinject::FaultySysOps> sysfault;
  if (sysfault_rate > 0.0) {
    faultinject::SysFaultPlan plan;
    if (sysfault_mode == "network") {
      plan = faultinject::SysFaultPlan::network(sysfault_rate, sysfault_seed);
    } else if (sysfault_mode == "storage") {
      plan = faultinject::SysFaultPlan::storage(sysfault_rate, sysfault_seed);
    } else if (sysfault_mode == "compound") {
      plan = faultinject::SysFaultPlan::compound(sysfault_rate, sysfault_seed);
    } else {
      usage(argv[0]);
      return 1;
    }
    sysfault = std::make_unique<faultinject::FaultySysOps>(plan);
    options.server.sys = sysfault.get();
    options.sys = sysfault.get();
  }

  netd::Reactor reactor(netd::Reactor::default_backend(), sysfault.get());
  g_reactor = &reactor;
  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
  std::signal(SIGPIPE, SIG_IGN);
  reactor.set_wakeup_callback([&reactor] {
    if (g_signal != 0) reactor.stop();
  });

  core::LiveIngestDaemon daemon(reactor, options);
  // Every recovery action lands on stderr (the health JSON keeps the full
  // ledger); the ladder's final rung stops the loop for the exit-4 path.
  daemon.set_recovery_hook([&](const health::StallEvent& ev, bool ok,
                               const std::string& detail) {
    std::fprintf(stderr, "health: %s %s: %s (%s)\n", ev.subsystem.c_str(),
                 health::action_name(ev.action), detail.c_str(),
                 ok ? "ok" : "failed");
    std::fflush(stderr);
    if (daemon.terminate_requested()) reactor.stop();
  });
  if (auto st = daemon.start(restore); !st) {
    std::fprintf(stderr, "start failed: %s\n", st.error().str().c_str());
    return 1;
  }
  if (daemon.restored()) {
    std::fprintf(stderr, "restored from checkpoint: %s frames already ingested\n",
                 format_count(daemon.frames_ingested()).c_str());
  }
  std::printf("listening on %s:%u\n", options.server.bind_addr.c_str(),
              daemon.server().port());
  std::fflush(stdout);

  if (run_for > 0.0) reactor.add_timer_after(run_for, [&reactor] { reactor.stop(); });
  // Re-arming watcher (declared at function scope: the timer callback
  // re-registers it by reference across fires): simulated SIGKILL (no
  // drain, no checkpoint, no destructors) and/or drain once every expected
  // stream has finished.
  std::function<void()> watch;
  if (kill_after_frames > 0 || drain_when_done) {
    watch = [&] {
      if (kill_after_frames > 0 &&
          daemon.frames_ingested() >= kill_after_frames) {
        std::fprintf(stderr, "simulated crash at %s frames\n",
                     format_count(daemon.frames_ingested()).c_str());
        std::fflush(stderr);
        std::_Exit(42);
      }
      if (drain_when_done && daemon.server().all_expected_finished()) {
        reactor.stop();
        return;
      }
      reactor.add_timer_after(0.01, watch);
    };
    reactor.add_timer_after(0.01, watch);
  }

  reactor.run();
  if (daemon.terminate_requested()) {
    // Controlled self-terminate: no finalize (the daemon is wedged — the
    // last good checkpoint on disk is the restart point). The supervisor
    // contract is exit 4 → restart with --restore.
    std::fprintf(stderr, "self-terminate: %s\n",
                 daemon.terminate_reason().c_str());
    std::fprintf(stderr, "health: %s\n", daemon.health_json().c_str());
    return health::kRecoveryExitCode;
  }
  if (sysfault) {
    // Chaos stops at drain: the final checkpoint and report measure
    // recovery, not luck (inject -> stop -> verify steady state).
    sysfault->set_enabled(false);
    std::fprintf(stderr, "sysfault: %s\n", sysfault->log().summary().c_str());
  }
  if (!quiet) {
    std::fprintf(stderr, "draining: %s\n", daemon.server().stats_line().c_str());
  }

  const netd::ServerStats stats = daemon.server().stats();  // pre-drain copy
  auto report = daemon.finalize();
  const std::string json = core::report_to_json(report);
  if (!report_path.empty()) {
    std::ofstream out(report_path, std::ios::binary | std::ios::trunc);
    out.write(json.data(), static_cast<std::streamsize>(json.size()));
    if (!out) {
      std::fprintf(stderr, "cannot write report to %s\n", report_path.c_str());
      return 1;
    }
  }
  if (!quiet) {
    core::NameMap names;
    std::printf("%s\n", core::render_report(report, names).c_str());
  }

  const bool hostile = report.conformance.any_hostile() || stats.evicted_hostile > 0;
  const bool degraded =
      report.degradation.degraded() || !report.degradation.warnings.empty();
  if (hostile) return 3;
  if (degraded) return 2;
  return 0;
}
