// capture_generator: synthesize bulk-power-system SCADA captures.
//
//   ./capture_generator --year 1 --duration 1200 --seed 7 --out y1.pcap
//
// Produces a pcap identical in kind to the paper's network tap (Fig 5):
// IEC 104 over TCP/IPv4/Ethernet between 4 control servers and the Fig 6
// outstation fleet, including every §6 anomaly. Also prints the ground
// truth (what the operator would tell you).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>

#include "faultinject/fault.hpp"
#include "iec104/constants.hpp"
#include "netd/client.hpp"
#include "power/measurement.hpp"
#include "sim/capture.hpp"
#include "sim/fleet.hpp"
#include "sim/hostile.hpp"
#include "util/strings.hpp"

using namespace uncharted;

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--year 1|2] [--duration SECONDS] [--seed N]\n"
               "          [--retransmit P] [--no-events] [--out FILE.pcap]\n"
               "          [--fault-rate P] [--fault-seed N] [--hostile]\n"
               "          [--stream HOST:PORT] [--pace FACTOR]\n",
               argv0);
}

/// Live-replay mode (--stream): instead of writing a pcap, feed the
/// capture to a running iec104d as a fleet of tapstream connections, paced
/// so that `capture time / pace == wall time` (--pace 0 = full speed).
int stream_capture(const std::vector<net::CapturedPacket>& packets,
                   const std::string& target, double pace) {
  auto colon = target.rfind(':');
  const int port = colon == std::string::npos ? 0 : std::atoi(target.c_str() + colon + 1);
  if (colon == std::string::npos || colon == 0 || port <= 0 || port > 65535) {
    std::fprintf(stderr, "--stream needs HOST:PORT, got '%s'\n", target.c_str());
    return 1;
  }
  auto script = sim::build_fleet_script(packets, sim::FleetScriptConfig{});
  netd::FleetConfig fleet;
  fleet.host = target.substr(0, colon);
  fleet.port = static_cast<std::uint16_t>(port);
  fleet.pace = pace;
  netd::Reactor reactor;
  netd::FleetClient client(reactor, fleet, std::move(script.streams));
  client.start();
  std::function<void()> watch = [&] {
    if (client.all_done()) {
      reactor.stop();
      return;
    }
    reactor.add_timer_after(0.02, watch);
  };
  reactor.add_timer_after(0.02, watch);
  reactor.run();
  std::printf("streamed %s frames over %zu connections to %s\n",
              format_count(client.stats().frames_sent).c_str(),
              script.benign_streams, target.c_str());
  return client.all_benign_ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  int year = 1;
  double duration = 1200.0;
  std::uint64_t seed = 0;
  bool seed_set = false;  // honor an explicit `--seed 0` too
  double retransmit = -1.0;
  bool events = true;
  double fault_rate = 0.0;
  std::uint64_t fault_seed = 0xfa0175;
  bool hostile = false;
  std::string out = "capture.pcap";
  std::string stream_target;
  double pace = 0.0;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--year") {
      year = std::atoi(next());
    } else if (arg == "--duration") {
      duration = std::atof(next());
    } else if (arg == "--seed") {
      seed = static_cast<std::uint64_t>(std::atoll(next()));
      seed_set = true;
    } else if (arg == "--retransmit") {
      retransmit = std::atof(next());
    } else if (arg == "--no-events") {
      events = false;
    } else if (arg == "--fault-rate") {
      fault_rate = std::atof(next());
    } else if (arg == "--fault-seed") {
      fault_seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--hostile") {
      hostile = true;
    } else if (arg == "--out") {
      out = next();
    } else if (arg == "--stream") {
      stream_target = next();
    } else if (arg == "--pace") {
      pace = std::atof(next());
    } else {
      usage(argv[0]);
      return 1;
    }
  }

  sim::CaptureConfig config =
      year == 2 ? sim::CaptureConfig::y2(duration) : sim::CaptureConfig::y1(duration);
  if (seed_set) config.seed = seed;
  if (retransmit >= 0) config.retransmit_probability = retransmit;
  config.include_physical_events = events;

  std::printf("generating year-%d capture: %.0f s, seed %llu ...\n", year, duration,
              static_cast<unsigned long long>(config.seed));
  auto capture = sim::generate_capture(config);
  if (hostile) {
    // Interleave every HostilePeer attack scenario with the benign fleet,
    // so `iec104dump --conformance` on the result demonstrates the full
    // detection path (and its hostile exit code 3) from the command line.
    Rng rng(config.seed ^ 0xad7e5aull);
    auto sink = [&capture](Timestamp ts, std::vector<std::uint8_t> frame) {
      net::CapturedPacket pkt;
      pkt.ts = ts;
      pkt.original_length = static_cast<std::uint32_t>(frame.size());
      pkt.data = std::move(frame);
      capture.packets.push_back(std::move(pkt));
    };
    sim::HostilePeer peer(net::Ipv4Addr::from_octets(10, 9, 9, 9),
                          sim::Endpoint::make(net::Ipv4Addr::from_octets(10, 0, 2, 50),
                                              iec104::kIec104Port),
                          sink, &rng);
    // Anchor the attack timeline to the capture's own clock (the sim
    // starts at a wall-clock epoch, not zero): a detached timebase would
    // put a multi-decade gap in the merged pcap.
    Timestamp attack_start =
        capture.packets.empty() ? from_seconds(1.0)
                                : capture.packets.front().ts + from_seconds(1.0);
    peer.run_all(attack_start);
    std::stable_sort(capture.packets.begin(), capture.packets.end(),
                     [](const net::CapturedPacket& a, const net::CapturedPacket& b) {
                       return a.ts < b.ts;
                     });
    std::printf("injected hostile peer 10.9.9.9: %zu attack scenarios\n",
                sim::all_hostile_scenarios().size());
  }
  if (fault_rate > 0.0) {
    // Reproducible chaos capture: same seeds in == byte-identical pcap out,
    // so a soak failure can be replayed from the command line.
    auto damaged = faultinject::apply_faults(
        capture.packets, faultinject::FaultConfig::uniform(fault_rate, fault_seed));
    std::printf("injected faults at rate %.3f (seed %llu): %s events over %s packets\n",
                fault_rate, static_cast<unsigned long long>(fault_seed),
                format_count(damaged.log.total()).c_str(),
                format_count(damaged.log.eligible_packets).c_str());
    capture.packets = std::move(damaged.packets);
  }
  if (!stream_target.empty()) return stream_capture(capture.packets, stream_target, pace);
  if (auto st = sim::write_capture_pcap(capture, out); !st.ok()) {
    std::fprintf(stderr, "write failed: %s\n", st.error().str().c_str());
    return 1;
  }

  std::printf("wrote %s packets to %s\n", format_count(capture.packets.size()).c_str(),
              out.c_str());
  std::printf("\nground truth:\n");
  std::printf("  outstations visible: %zu\n", capture.truth.outstation_ids.size());
  std::printf("  telemetry points:    %zu\n", capture.truth.signals.size());
  if (capture.truth.load_loss_at_s > 0) {
    std::printf("  load-loss event:     t=%.0fs (restored t=%.0fs)\n",
                capture.truth.load_loss_at_s, capture.truth.load_restore_at_s);
  }
  if (capture.truth.generator_online_at_s > 0) {
    std::printf("  generator startup:   O%d at t=%.0fs\n",
                capture.truth.generator_online_outstation,
                capture.truth.generator_online_at_s);
  }
  std::printf("  legacy encodings:    O37 (2-octet IOA)%s\n",
              year == 2 ? ", O53/O58 (1-octet COT)" : ", O28 (1-octet COT)");
  return 0;
}
