// Quickstart: synthesize a bulk-power-system capture, write it to pcap,
// read it back and run the full measurement pipeline.
//
//   ./quickstart [duration_seconds] [output.pcap]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/analyzer.hpp"
#include "sim/capture.hpp"

int main(int argc, char** argv) {
  using namespace uncharted;

  double duration = argc > 1 ? std::atof(argv[1]) : 300.0;
  std::string path = argc > 2 ? argv[2] : "quickstart_y1.pcap";

  // 1. Generate a Year-1 capture of the paper's 49-outstation network.
  sim::CaptureConfig config = sim::CaptureConfig::y1(duration);
  sim::CaptureResult capture = sim::generate_capture(config);
  std::printf("generated %zu packets over %.0f s\n", capture.packets.size(), duration);

  // 2. Round-trip through the pcap format (what a real tap would produce).
  if (auto st = sim::write_capture_pcap(capture, path); !st.ok()) {
    std::fprintf(stderr, "pcap write failed: %s\n", st.error().str().c_str());
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());

  // 3. Analyze the pcap with the tolerant parser and print the report.
  auto report = core::CaptureAnalyzer::analyze_file(path);
  if (!report) {
    std::fprintf(stderr, "analysis failed: %s\n", report.error().str().c_str());
    return 1;
  }
  core::NameMap names = core::name_map(capture.topology);
  std::printf("%s\n", core::render_report(report.value(), names).c_str());
  return 0;
}
