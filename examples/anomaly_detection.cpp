// anomaly_detection: the paper's proposed future-work use case (§7) —
// learn a cyber+physical whitelist from a benign capture, then flag an
// Industroyer-style intrusion.
//
// The injected attack follows the 2016 Ukraine playbook the paper
// describes: a new host connects to outstations, sweeps them with
// interrogation commands (the paper notes one I100 does what Industroyer's
// IOA brute-force did), then fires breaker-open double commands.
#include <cstdio>

#include "analysis/conformance_audit.hpp"
#include "core/analyzer.hpp"
#include "core/profiler.hpp"
#include "sim/capture.hpp"
#include "sim/tcp.hpp"

using namespace uncharted;

namespace {

/// Builds the attack traffic against three outstations of the Y1 fleet.
std::vector<net::CapturedPacket> build_attack(const sim::CaptureResult& benign) {
  std::vector<net::CapturedPacket> packets;
  Rng rng(666);
  Timestamp t = benign.truth.start_ts + from_seconds(10.0);
  auto attacker_ip = net::Ipv4Addr::from_octets(10, 0, 0, 66);

  for (int id : {1, 5, 31}) {
    const auto* os = benign.topology.find_outstation(id);
    sim::Endpoint attacker = sim::Endpoint::make(attacker_ip, 40000 + static_cast<std::uint16_t>(id));
    sim::Endpoint rtu = sim::Endpoint::make(os->ip, iec104::kIec104Port);
    sim::SimTcpConnection conn(
        attacker, rtu,
        [&](Timestamp ts, std::vector<std::uint8_t> frame) {
          net::CapturedPacket pkt;
          pkt.ts = ts;
          pkt.original_length = static_cast<std::uint32_t>(frame.size());
          pkt.data = std::move(frame);
          packets.push_back(std::move(pkt));
        },
        &rng);

    t = conn.open(t + from_seconds(1.0));
    auto send = [&](const iec104::Apdu& apdu) {
      t = conn.send(t + 50'000, true, apdu.encode().value());
    };
    send(iec104::Apdu::make_u(iec104::UFunction::kStartDtAct));

    // Recon: general interrogation reveals every IOA at once.
    iec104::Asdu gi;
    gi.type = iec104::TypeId::C_IC_NA_1;
    gi.cot.cause = iec104::Cause::kActivation;
    gi.common_address = static_cast<std::uint16_t>(id);
    gi.objects.push_back({0, iec104::InterrogationCommand{20}, std::nullopt});
    send(iec104::Apdu::make_i(0, 0, gi));

    // Attack: breaker-open double commands on guessed IOAs.
    for (std::uint32_t ioa = 1101; ioa <= 1103; ++ioa) {
      iec104::Asdu cmd;
      cmd.type = iec104::TypeId::C_DC_NA_1;
      cmd.cot.cause = iec104::Cause::kActivation;
      cmd.common_address = static_cast<std::uint16_t>(id);
      cmd.objects.push_back({ioa, iec104::DoubleCommand{1, false, 0}, std::nullopt});
      send(iec104::Apdu::make_i(static_cast<std::uint16_t>(ioa - 1100), 0, cmd));
    }
    conn.close_rst(t + 100'000, true);
  }
  return packets;
}

}  // namespace

int main() {
  std::printf("1. generating a benign day of operation (learning corpus)...\n");
  auto benign = sim::generate_capture(sim::CaptureConfig::y1(600.0));
  auto benign_ds = analysis::CaptureDataset::build(benign.packets);
  core::NameMap names = core::name_map(benign.topology);

  std::printf("2. learning the cyber/physical whitelist (%zu APDUs)...\n",
              benign_ds.records().size());
  core::NetworkProfiler profiler;
  profiler.learn(benign_ds);
  std::printf("   known outstations: %zu\n", profiler.known_stations());

  std::printf("3. replaying benign traffic through the detector...\n");
  auto benign_alerts = profiler.detect(benign_ds, names);
  std::printf("   alerts on benign traffic: %zu\n", benign_alerts.size());

  std::printf("4. injecting Industroyer-style attack traffic...\n");
  auto mixed = benign.packets;
  auto attack = build_attack(benign);
  mixed.insert(mixed.end(), attack.begin(), attack.end());
  std::sort(mixed.begin(), mixed.end(),
            [](const net::CapturedPacket& a, const net::CapturedPacket& b) {
              return a.ts < b.ts;
            });
  auto mixed_ds = analysis::CaptureDataset::build(mixed);

  auto alerts = profiler.detect(mixed_ds, names);
  std::printf("5. detector output on the mixed capture (%zu alerts):\n", alerts.size());
  std::size_t shown = 0;
  for (const auto& a : alerts) {
    bool novel = true;
    for (const auto& b : benign_alerts) {
      if (b.description == a.description &&
          core::anomaly_kind_name(b.kind) == core::anomaly_kind_name(a.kind)) {
        novel = false;
      }
    }
    if (!novel) continue;
    std::printf("   [%-24s] %s\n", core::anomaly_kind_name(a.kind).c_str(),
                a.description.c_str());
    if (++shown >= 12) {
      std::printf("   ...\n");
      break;
    }
  }
  if (shown == 0) {
    std::printf("   (no new alerts -- detection failed!)\n");
    return 1;
  }
  std::printf("6. conformance audit (no learning phase needed):\n");
  auto benign_conf = analysis::audit_conformance(benign_ds);
  auto mixed_conf = analysis::audit_conformance(mixed_ds);
  std::printf("   benign capture: %llu hostile connections\n",
              static_cast<unsigned long long>(benign_conf.hostile_connections));
  for (const auto& entry : mixed_conf.entries) {
    if (entry.verdict != iec104::Verdict::kHostile) continue;
    std::printf("   [hostile] %-12s <-> %-12s  %s\n",
                core::name_of(names, entry.pair.a).c_str(),
                core::name_of(names, entry.pair.b).c_str(),
                entry.profile.summary().c_str());
  }
  if (benign_conf.any_hostile() || !mixed_conf.any_hostile()) {
    std::printf("   (conformance audit missed the attack or flagged benign traffic!)\n");
    return 1;
  }

  std::printf("\nThe attacker host, its interrogation sweep, and the never-before-seen\n"
              "breaker commands (typeID 46) all surface as whitelist violations; the\n"
              "conformance machine flags the same connections from protocol state\n"
              "alone (commands sent before STARTDT was ever confirmed).\n");
  return 0;
}
