// iec104dump: a tshark-style line printer for IEC 104 traffic — the tool
// you reach for when Wireshark calls the packets malformed.
//
//   ./iec104dump capture.pcap [--strict] [--limit N] [--conformance]
//               [--threads N] [--profile]
//
// Prints one line per APDU with the tolerant parse, marking non-compliant
// frames with the legacy profile that explains them. With --conformance,
// also runs the conformance state machine over every connection and prints
// per-connection profiles plus a violation summary. Without a pcap,
// self-demos on a short synthetic capture.
//
// Exit codes: 0 clean, 1 unreadable input, 2 degraded (the pcap tail was
// truncated or the capture carried damage the pipeline had to skip), 3
// hostile conformance profiles present (--conformance only; wins over 2) —
// the partial report is still printed in every case.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "analysis/conformance_audit.hpp"
#include "analysis/dataset.hpp"
#include "analysis/sharded.hpp"
#include "core/names.hpp"
#include "core/profiler.hpp"
#include "exec/pool.hpp"
#include "sim/capture.hpp"
#include "util/strings.hpp"

using namespace uncharted;

int main(int argc, char** argv) {
  std::string path;
  bool strict = false;
  bool conformance = false;
  bool profile = false;
  long limit = 40;
  unsigned threads = 0;  // 0 = one per hardware thread
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--strict") {
      strict = true;
    } else if (arg == "--conformance") {
      conformance = true;
    } else if (arg == "--profile") {
      profile = true;
    } else if (arg == "--limit" && i + 1 < argc) {
      limit = std::atol(argv[++i]);
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = static_cast<unsigned>(std::atol(argv[++i]));
    } else {
      path = arg;
    }
  }

  std::vector<net::CapturedPacket> packets;
  core::NameMap names;
  bool pcap_truncated = false;
  if (!path.empty()) {
    auto loaded = net::PcapReader::read_file_tolerant(path);
    if (!loaded) {
      std::fprintf(stderr, "cannot read %s: %s\n", path.c_str(),
                   loaded.error().str().c_str());
      return 1;
    }
    if (loaded->truncated_tail) {
      std::fprintf(stderr, "warning: %s: %s; dumping the complete prefix\n",
                   path.c_str(), loaded->warning.c_str());
      pcap_truncated = true;
    }
    packets = std::move(loaded->packets);
  } else {
    std::printf("(no pcap given; using a 30 s synthetic capture)\n");
    auto capture = sim::generate_capture(sim::CaptureConfig::y1(30.0));
    packets = std::move(capture.packets);
    names = core::name_map(capture.topology);
  }

  analysis::CaptureDataset::Options opts;
  opts.parser_mode = strict ? iec104::ApduStreamParser::Mode::kStrict
                            : iec104::ApduStreamParser::Mode::kTolerant;
  unsigned resolved = threads == 0 ? exec::Pool::default_threads() : threads;
  core::StageTimings timings;
  auto ds = [&] {
    if (resolved <= 1) {
      core::ScopedStageTimer t(&timings, "ingest");
      return analysis::CaptureDataset::build(packets, opts);
    }
    exec::Pool pool(resolved);
    return analysis::build_dataset_sharded(
        packets, opts, &pool, analysis::kDefaultShardCount, {}, nullptr,
        [&](const char* stage, double ms) { timings.add(stage, ms); });
  }();
  if (names.empty()) names = core::infer_names(ds);

  Timestamp t0 = ds.records().empty() ? 0 : ds.records().front().ts;
  long printed = 0;
  for (const auto& rec : ds.records()) {
    if (limit > 0 && printed >= limit) {
      std::printf("... (%zu more APDUs; raise --limit)\n",
                  ds.records().size() - static_cast<std::size_t>(printed));
      break;
    }
    double t = to_seconds(static_cast<DurationUs>(rec.ts - t0));
    std::string flag = rec.apdu.compliant ? "" : "  [LEGACY " + rec.apdu.profile.str() + "]";
    std::printf("%10.6f  %-12s -> %-12s  %-5s %s%s\n", t,
                core::name_of(names, rec.flow.src_ip).c_str(),
                core::name_of(names, rec.flow.dst_ip).c_str(),
                rec.apdu.apdu.token().c_str(),
                rec.apdu.apdu.format == iec104::ApduFormat::kI
                    ? rec.apdu.apdu.asdu->str().c_str()
                    : "",
                flag.c_str());
    ++printed;
  }

  std::printf("\n%s APDUs (%s non-compliant), %s parse failures\n",
              format_count(ds.stats().apdus).c_str(),
              format_count(ds.stats().non_compliant_apdus).c_str(),
              format_count(ds.stats().apdu_failures).c_str());

  bool hostile = false;
  if (conformance) {
    auto report = analysis::audit_conformance(ds);
    hostile = report.any_hostile();
    std::printf("\n== conformance ==\n");
    std::printf("connections: %s clean, %s legacy, %s suspect, %s hostile\n",
                format_count(report.clean_connections).c_str(),
                format_count(report.legacy_connections).c_str(),
                format_count(report.suspect_connections).c_str(),
                format_count(report.hostile_connections).c_str());
    for (const auto& entry : report.entries) {
      std::printf("%-12s <-> %-12s  %-7s  %s\n",
                  core::name_of(names, entry.pair.a).c_str(),
                  core::name_of(names, entry.pair.b).c_str(),
                  iec104::verdict_name(entry.verdict).c_str(),
                  entry.profile.summary().c_str());
    }
    if (hostile) {
      std::printf("violation summary (hostile connections):\n");
      for (const auto& entry : report.entries) {
        if (entry.verdict != iec104::Verdict::kHostile) continue;
        for (const auto& v : entry.profile.violations) {
          if (v.severity != iec104::Severity::kHostile &&
              v.severity != iec104::Severity::kWarn) {
            continue;
          }
          std::printf("  %s <-> %s: %s x%s (%s) -- %s\n",
                      core::name_of(names, entry.pair.a).c_str(),
                      core::name_of(names, entry.pair.b).c_str(),
                      iec104::violation_code_name(v.code).c_str(),
                      format_count(v.count).c_str(),
                      iec104::severity_name(v.severity).c_str(), v.detail.c_str());
        }
      }
    }
  }

  const auto& deg = ds.stats().degradation;
  bool degraded = pcap_truncated || deg.any();
  if (degraded) {
    std::fprintf(stderr,
                 "degraded: %s resyncs, %s garbage bytes, %s truncated tail "
                 "bytes, %s quarantined connections%s\n",
                 format_count(deg.parser_resyncs).c_str(),
                 format_count(deg.garbage_bytes).c_str(),
                 format_count(deg.truncated_tail_bytes).c_str(),
                 format_count(deg.quarantined_connections).c_str(),
                 pcap_truncated ? ", pcap tail truncated" : "");
  }
  if (profile) {
    std::printf("\n== stage timings (%u threads) ==\n", resolved);
    for (const auto& s : timings.stages) {
      std::printf("%-14s %10.2f ms\n", s.stage.c_str(), s.wall_ms);
    }
  }

  if (hostile) return 3;  // hostile wins: an attacker also causes damage
  if (degraded) return 2;
  return 0;
}
