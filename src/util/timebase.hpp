// Time representation shared by the capture, simulation and analysis layers.
//
// All timestamps are microseconds since the Unix epoch, carried as uint64.
// pcap's (sec, usec) pairs convert losslessly; double seconds are used only
// for durations in analysis output.
#pragma once

#include <cstdint>

namespace uncharted {

/// Microseconds since the Unix epoch.
using Timestamp = std::uint64_t;

/// Duration in microseconds.
using DurationUs = std::int64_t;

constexpr Timestamp kMicrosPerSecond = 1'000'000;

constexpr Timestamp make_timestamp(std::uint32_t sec, std::uint32_t usec) {
  return static_cast<Timestamp>(sec) * kMicrosPerSecond + usec;
}

constexpr std::uint32_t timestamp_sec(Timestamp ts) {
  return static_cast<std::uint32_t>(ts / kMicrosPerSecond);
}

constexpr std::uint32_t timestamp_usec(Timestamp ts) {
  return static_cast<std::uint32_t>(ts % kMicrosPerSecond);
}

constexpr double to_seconds(DurationUs d) { return static_cast<double>(d) / 1e6; }

constexpr Timestamp from_seconds(double s) {
  return static_cast<Timestamp>(s * 1e6);
}

}  // namespace uncharted
