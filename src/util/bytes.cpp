#include "util/bytes.hpp"

#include <bit>

namespace uncharted {

Error ByteReader::fail(std::size_t want) {
  failed_ = true;
  return Err("truncated", "need " + std::to_string(want) + " bytes, have " +
                              std::to_string(remaining()));
}

Result<float> ByteReader::f32le() {
  auto raw = u32le();
  if (!raw) return raw.error();
  return std::bit_cast<float>(raw.value());
}

Result<double> ByteReader::f64le() {
  auto raw = u64le();
  if (!raw) return raw.error();
  return std::bit_cast<double>(raw.value());
}

void ByteReader::seek(std::size_t pos) {
  pos_ = pos <= data_.size() ? pos : data_.size();
  failed_ = false;
}

void ByteWriter::f32le(float v) { u32le(std::bit_cast<std::uint32_t>(v)); }

void ByteWriter::f64le(double v) { u64le(std::bit_cast<std::uint64_t>(v)); }

void ByteWriter::patch_u16be(std::size_t pos, std::uint16_t v) {
  buf_.at(pos) = static_cast<std::uint8_t>(v >> 8);
  buf_.at(pos + 1) = static_cast<std::uint8_t>(v & 0xff);
}

std::string hex_dump(std::span<const std::uint8_t> data) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 3);
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (i) out.push_back(' ');
    out.push_back(kHex[data[i] >> 4]);
    out.push_back(kHex[data[i] & 0xf]);
  }
  return out;
}

}  // namespace uncharted
