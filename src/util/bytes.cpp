#include "util/bytes.hpp"

#include <bit>

namespace uncharted {

namespace {
Error truncated(std::size_t want, std::size_t have) {
  return Err("truncated",
             "need " + std::to_string(want) + " bytes, have " + std::to_string(have));
}
}  // namespace

#define UNCHARTED_CHECK_READ(n)                  \
  do {                                           \
    if (!can_read(n)) {                          \
      failed_ = true;                            \
      return truncated((n), remaining());        \
    }                                            \
  } while (0)

Result<std::uint8_t> ByteReader::u8() {
  UNCHARTED_CHECK_READ(1);
  return data_[pos_++];
}

Result<std::uint16_t> ByteReader::u16le() {
  UNCHARTED_CHECK_READ(2);
  // Assemble in unsigned arithmetic: the implicit uint8_t -> int promotion
  // of `b << 8` is a signed shift, which tidy rightly flags on a wire path.
  std::uint16_t v = static_cast<std::uint16_t>(
      static_cast<std::uint32_t>(data_[pos_]) |
      (static_cast<std::uint32_t>(data_[pos_ + 1]) << 8));
  pos_ += 2;
  return v;
}

Result<std::uint16_t> ByteReader::u16be() {
  UNCHARTED_CHECK_READ(2);
  std::uint16_t v = static_cast<std::uint16_t>(
      (static_cast<std::uint32_t>(data_[pos_]) << 8) |
      static_cast<std::uint32_t>(data_[pos_ + 1]));
  pos_ += 2;
  return v;
}

Result<std::uint32_t> ByteReader::u32le() {
  UNCHARTED_CHECK_READ(4);
  std::uint32_t v = static_cast<std::uint32_t>(data_[pos_]) |
                    (static_cast<std::uint32_t>(data_[pos_ + 1]) << 8) |
                    (static_cast<std::uint32_t>(data_[pos_ + 2]) << 16) |
                    (static_cast<std::uint32_t>(data_[pos_ + 3]) << 24);
  pos_ += 4;
  return v;
}

Result<std::uint32_t> ByteReader::u32be() {
  UNCHARTED_CHECK_READ(4);
  std::uint32_t v = (static_cast<std::uint32_t>(data_[pos_]) << 24) |
                    (static_cast<std::uint32_t>(data_[pos_ + 1]) << 16) |
                    (static_cast<std::uint32_t>(data_[pos_ + 2]) << 8) |
                    static_cast<std::uint32_t>(data_[pos_ + 3]);
  pos_ += 4;
  return v;
}

Result<std::uint64_t> ByteReader::u64le() {
  UNCHARTED_CHECK_READ(8);
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(i)]);
  }
  pos_ += 8;
  return v;
}

Result<float> ByteReader::f32le() {
  auto raw = u32le();
  if (!raw) return raw.error();
  return std::bit_cast<float>(raw.value());
}

Result<double> ByteReader::f64le() {
  auto raw = u64le();
  if (!raw) return raw.error();
  return std::bit_cast<double>(raw.value());
}

Result<std::span<const std::uint8_t>> ByteReader::bytes(std::size_t n) {
  UNCHARTED_CHECK_READ(n);
  auto out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

Status ByteReader::skip(std::size_t n) {
  UNCHARTED_CHECK_READ(n);
  pos_ += n;
  return Status::Ok();
}

void ByteReader::seek(std::size_t pos) {
  pos_ = pos <= data_.size() ? pos : data_.size();
  failed_ = false;
}

void ByteWriter::u16le(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v & 0xff));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::u16be(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v & 0xff));
}

void ByteWriter::u32le(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
}

void ByteWriter::u32be(std::uint32_t v) {
  for (int i = 3; i >= 0; --i) buf_.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
}

void ByteWriter::u64le(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
}

void ByteWriter::f32le(float v) { u32le(std::bit_cast<std::uint32_t>(v)); }

void ByteWriter::f64le(double v) { u64le(std::bit_cast<std::uint64_t>(v)); }

void ByteWriter::bytes(std::span<const std::uint8_t> data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void ByteWriter::patch_u16be(std::size_t pos, std::uint16_t v) {
  buf_.at(pos) = static_cast<std::uint8_t>(v >> 8);
  buf_.at(pos + 1) = static_cast<std::uint8_t>(v & 0xff);
}

std::string hex_dump(std::span<const std::uint8_t> data) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 3);
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (i) out.push_back(' ');
    out.push_back(kHex[data[i] >> 4]);
    out.push_back(kHex[data[i] & 0xf]);
  }
  return out;
}

}  // namespace uncharted
