// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) for checkpoint
// integrity. A snapshot written mid-crash must be detectably bad, never
// silently restored; the CRC covers the whole serialized payload.
#pragma once

#include <cstdint>
#include <span>

namespace uncharted {

/// CRC-32 of `data`, optionally continuing from a previous value (pass the
/// prior return value as `seed` to checksum in pieces).
std::uint32_t crc32(std::span<const std::uint8_t> data, std::uint32_t seed = 0);

}  // namespace uncharted
