#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace uncharted {

void RunningStats::add(double x) {
  ++n_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::save(ByteWriter& w) const {
  w.u64le(n_);
  w.f64le(mean_);
  w.f64le(m2_);
  w.f64le(sum_);
  w.f64le(min_);
  w.f64le(max_);
}

Result<RunningStats> RunningStats::load(ByteReader& r) {
  RunningStats s;
  auto n = r.u64le();
  auto mean = r.f64le();
  auto m2 = r.f64le();
  auto sum = r.f64le();
  auto mn = r.f64le();
  auto mx = r.f64le();
  if (!mx) return mx.error();
  s.n_ = static_cast<std::size_t>(n.value());
  s.mean_ = mean.value();
  s.m2_ = m2.value();
  s.sum_ = sum.value();
  s.min_ = mn.value();
  s.max_ = mx.value();
  return s;
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  if (p <= 0) return values.front();
  if (p >= 100) return values.back();
  double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  auto lo = static_cast<std::size_t>(rank);
  double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= values.size()) return values.back();
  return values[lo] * (1.0 - frac) + values[lo + 1] * frac;
}

double mean_of(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double s = 0.0;
  for (double v : values) s += v;
  return s / static_cast<double>(values.size());
}

double variance_of(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  double m = mean_of(values);
  double s = 0.0;
  for (double v : values) s += (v - m) * (v - m);
  return s / static_cast<double>(values.size());
}

double normalized_variance(const std::vector<double>& values) {
  double var = variance_of(values);
  double m = mean_of(values);
  if (std::fabs(m) < 1e-9) return var;
  return var / (m * m);
}

LogHistogram::LogHistogram(int lo_exp, int hi_exp, int per_decade)
    : lo_exp_(lo_exp), per_decade_(per_decade) {
  counts_.assign(static_cast<std::size_t>((hi_exp - lo_exp) * per_decade), 0);
}

void LogHistogram::add(double value) {
  ++total_;
  if (value <= 0) {
    ++underflow_;
    return;
  }
  double pos = (std::log10(value) - lo_exp_) * per_decade_;
  if (pos < 0) {
    ++underflow_;
  } else if (pos >= static_cast<double>(counts_.size())) {
    ++overflow_;
  } else {
    ++counts_[static_cast<std::size_t>(pos)];
  }
}

double LogHistogram::edge(std::size_t bin) const {
  return std::pow(10.0, lo_exp_ + static_cast<double>(bin) / per_decade_);
}

}  // namespace uncharted
