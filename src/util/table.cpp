#include "util/table.hpp"

#include <algorithm>

namespace uncharted {

void TextTable::header(std::vector<std::string> cells) { header_ = std::move(cells); }
void TextTable::row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

std::string TextTable::render() const {
  // Compute per-column widths over header and rows.
  std::size_t cols = header_.size();
  for (const auto& r : rows_) cols = std::max(cols, r.size());
  std::vector<std::size_t> width(cols, 0);
  auto widen = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i)
      width[i] = std::max(width[i], cells[i].size());
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  auto rule = [&] {
    std::string s = "+";
    for (std::size_t i = 0; i < cols; ++i) s += std::string(width[i] + 2, '-') + "+";
    return s + "\n";
  };
  auto line = [&](const std::vector<std::string>& cells) {
    std::string s = "|";
    for (std::size_t i = 0; i < cols; ++i) {
      std::string cell = i < cells.size() ? cells[i] : "";
      s += " " + cell + std::string(width[i] - cell.size(), ' ') + " |";
    }
    return s + "\n";
  };

  std::string out;
  if (!title_.empty()) out += title_ + "\n";
  out += rule();
  if (!header_.empty()) {
    out += line(header_);
    out += rule();
  }
  for (const auto& r : rows_) out += line(r);
  out += rule();
  return out;
}

}  // namespace uncharted
