// Descriptive statistics used across the analysis pipeline.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "util/bytes.hpp"
#include "util/expected.hpp"

namespace uncharted {

/// Welford online mean/variance plus min/max.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Population variance (divide by n); 0 when n < 2.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  /// Checkpoint serialization: the exact Welford state round-trips, so a
  /// restored accumulator continues as if never interrupted.
  void save(ByteWriter& w) const;
  static Result<RunningStats> load(ByteReader& r);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Percentile of a sample (linear interpolation); p in [0, 100].
double percentile(std::vector<double> values, double p);

/// Mean of a sample (0 for empty).
double mean_of(const std::vector<double>& values);

/// Population variance of a sample (0 for n < 2).
double variance_of(const std::vector<double>& values);

/// Variance normalized by the squared mean — the paper's "normalized
/// variance analysis" for flagging time series that change more than usual.
/// Returns 0 when the mean is ~0 and falls back to plain variance there.
double normalized_variance(const std::vector<double>& values);

/// Fixed-bin log10 histogram for flow-duration plots (Fig 8).
class LogHistogram {
 public:
  /// Bins span [10^lo_exp, 10^hi_exp) with `per_decade` bins per decade.
  LogHistogram(int lo_exp, int hi_exp, int per_decade);

  void add(double value);

  std::size_t bin_count() const { return counts_.size(); }
  std::uint64_t count_at(std::size_t bin) const { return counts_[bin]; }
  /// Lower edge of a bin.
  double edge(std::size_t bin) const;
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  std::uint64_t total() const { return total_; }

 private:
  int lo_exp_;
  int per_decade_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace uncharted
