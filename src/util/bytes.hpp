// Bounds-checked byte readers/writers with explicit endianness.
//
// Network headers (Ethernet/IPv4/TCP, pcap) are big-endian or host-defined;
// IEC 60870-5-104 fields are little-endian. Both views are provided and every
// access is range-checked: a truncated capture must surface as a decode
// error, never as UB.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "util/expected.hpp"

namespace uncharted {

/// Sequential reader over a non-owning byte span. All reads are checked.
/// A failed read poisons the reader: every subsequent read also fails, so
/// multi-field decode chains can check only the final result without a
/// shorter later read "succeeding" past an earlier failure.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::size_t remaining() const { return data_.size() - pos_; }
  std::size_t position() const { return pos_; }
  bool empty() const { return remaining() == 0; }
  bool failed() const { return failed_; }

  /// True if at least n bytes remain and no prior read has failed.
  bool can_read(std::size_t n) const { return !failed_ && remaining() >= n; }

  Result<std::uint8_t> u8();
  Result<std::uint16_t> u16le();
  Result<std::uint16_t> u16be();
  Result<std::uint32_t> u32le();
  Result<std::uint32_t> u32be();
  Result<std::uint64_t> u64le();
  /// IEEE-754 single precision, little-endian (IEC 104 float encoding).
  Result<float> f32le();
  /// IEEE-754 double precision, little-endian (checkpoint snapshots).
  Result<double> f64le();

  /// Returns a subspan of n bytes and advances.
  Result<std::span<const std::uint8_t>> bytes(std::size_t n);

  /// Skips n bytes.
  Status skip(std::size_t n);

  /// Rewinds to an absolute position (must be <= size) and clears any
  /// failure state.
  void seek(std::size_t pos);

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

/// Append-only writer into an owned buffer.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { buf_.reserve(reserve); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16le(std::uint16_t v);
  void u16be(std::uint16_t v);
  void u32le(std::uint32_t v);
  void u32be(std::uint32_t v);
  void u64le(std::uint64_t v);
  void f32le(float v);
  void f64le(double v);
  void bytes(std::span<const std::uint8_t> data);

  /// Overwrites a previously written byte (e.g. a length field backpatch).
  void patch_u8(std::size_t pos, std::uint8_t v) { buf_.at(pos) = v; }
  void patch_u16be(std::size_t pos, std::uint16_t v);

  std::size_t size() const { return buf_.size(); }
  std::span<const std::uint8_t> view() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }
  const std::vector<std::uint8_t>& data() const { return buf_; }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Hex dump (for diagnostics and golden tests), e.g. "68 0e 02 00 ...".
std::string hex_dump(std::span<const std::uint8_t> data);

}  // namespace uncharted
