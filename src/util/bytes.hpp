// Bounds-checked byte readers/writers with explicit endianness.
//
// Network headers (Ethernet/IPv4/TCP, pcap) are big-endian or host-defined;
// IEC 60870-5-104 fields are little-endian. Both views are provided and every
// access is range-checked: a truncated capture must surface as a decode
// error, never as UB.
//
// The readers are defined inline: decode loops call them tens of millions of
// times per capture, and an out-of-line call per field read dominated the
// ingest profile. Only the failure path (which allocates an error message)
// stays out of line.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "util/expected.hpp"

namespace uncharted {

/// Sequential reader over a non-owning byte span. All reads are checked.
/// A failed read poisons the reader: every subsequent read also fails, so
/// multi-field decode chains can check only the final result without a
/// shorter later read "succeeding" past an earlier failure.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::size_t remaining() const { return data_.size() - pos_; }
  std::size_t position() const { return pos_; }
  bool empty() const { return remaining() == 0; }
  bool failed() const { return failed_; }

  /// True if at least n bytes remain and no prior read has failed.
  bool can_read(std::size_t n) const { return !failed_ && remaining() >= n; }

  Result<std::uint8_t> u8() {
    if (!can_read(1)) return fail(1);
    return data_[pos_++];
  }

  Result<std::uint16_t> u16le() {
    if (!can_read(2)) return fail(2);
    // Assemble in unsigned arithmetic: the implicit uint8_t -> int promotion
    // of `b << 8` is a signed shift, which tidy rightly flags on a wire path.
    std::uint16_t v = static_cast<std::uint16_t>(
        static_cast<std::uint32_t>(data_[pos_]) |
        (static_cast<std::uint32_t>(data_[pos_ + 1]) << 8));
    pos_ += 2;
    return v;
  }

  Result<std::uint16_t> u16be() {
    if (!can_read(2)) return fail(2);
    std::uint16_t v = static_cast<std::uint16_t>(
        (static_cast<std::uint32_t>(data_[pos_]) << 8) |
        static_cast<std::uint32_t>(data_[pos_ + 1]));
    pos_ += 2;
    return v;
  }

  Result<std::uint32_t> u32le() {
    if (!can_read(4)) return fail(4);
    std::uint32_t v = static_cast<std::uint32_t>(data_[pos_]) |
                      (static_cast<std::uint32_t>(data_[pos_ + 1]) << 8) |
                      (static_cast<std::uint32_t>(data_[pos_ + 2]) << 16) |
                      (static_cast<std::uint32_t>(data_[pos_ + 3]) << 24);
    pos_ += 4;
    return v;
  }

  Result<std::uint32_t> u32be() {
    if (!can_read(4)) return fail(4);
    std::uint32_t v = (static_cast<std::uint32_t>(data_[pos_]) << 24) |
                      (static_cast<std::uint32_t>(data_[pos_ + 1]) << 16) |
                      (static_cast<std::uint32_t>(data_[pos_ + 2]) << 8) |
                      static_cast<std::uint32_t>(data_[pos_ + 3]);
    pos_ += 4;
    return v;
  }

  Result<std::uint64_t> u64le() {
    if (!can_read(8)) return fail(8);
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) {
      v = (v << 8) |
          static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(i)]);
    }
    pos_ += 8;
    return v;
  }

  /// IEEE-754 single precision, little-endian (IEC 104 float encoding).
  Result<float> f32le();
  /// IEEE-754 double precision, little-endian (checkpoint snapshots).
  Result<double> f64le();

  /// Returns a subspan of n bytes and advances.
  Result<std::span<const std::uint8_t>> bytes(std::size_t n) {
    if (!can_read(n)) return fail(n);
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  /// Skips n bytes.
  Status skip(std::size_t n) {
    if (!can_read(n)) return fail(n);
    pos_ += n;
    return Status::Ok();
  }

  /// Rewinds to an absolute position (must be <= size) and clears any
  /// failure state.
  void seek(std::size_t pos);

 private:
  /// Cold path: poisons the reader and builds the truncation error.
  Error fail(std::size_t want);

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

/// Append-only writer into an owned buffer.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { buf_.reserve(reserve); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16le(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v & 0xff));
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  }
  void u16be(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v & 0xff));
  }
  void u32le(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buf_.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
    }
  }
  void u32be(std::uint32_t v) {
    for (int i = 3; i >= 0; --i) {
      buf_.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
    }
  }
  void u64le(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      buf_.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
    }
  }
  void f32le(float v);
  void f64le(double v);
  void bytes(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  /// Overwrites a previously written byte (e.g. a length field backpatch).
  void patch_u8(std::size_t pos, std::uint8_t v) { buf_.at(pos) = v; }
  void patch_u16be(std::size_t pos, std::uint16_t v);

  std::size_t size() const { return buf_.size(); }
  std::span<const std::uint8_t> view() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }
  const std::vector<std::uint8_t>& data() const { return buf_; }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Hex dump (for diagnostics and golden tests), e.g. "68 0e 02 00 ...".
std::string hex_dump(std::span<const std::uint8_t> data);

}  // namespace uncharted
