// Minimal leveled logger writing to stderr.
//
// The library itself logs nothing by default (level = Warn); tools and
// examples raise verbosity explicitly. No global locking beyond a single
// write call — callers in this codebase are single-threaded per stream.
#pragma once

#include <sstream>
#include <string>

namespace uncharted {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global minimum level; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one line "[level] message" to stderr if level is enabled.
void log_line(LogLevel level, const std::string& message);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, stream_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

inline detail::LogStream log_debug() { return detail::LogStream(LogLevel::Debug); }
inline detail::LogStream log_info() { return detail::LogStream(LogLevel::Info); }
inline detail::LogStream log_warn() { return detail::LogStream(LogLevel::Warn); }
inline detail::LogStream log_error() { return detail::LogStream(LogLevel::Error); }

}  // namespace uncharted
