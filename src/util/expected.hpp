// Minimal Result<T> type for recoverable errors (std::expected is C++23).
//
// Parsing network bytes fails routinely (truncated captures, malformed
// frames), so decode APIs return Result<T> rather than throwing; exceptions
// are reserved for programming errors.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace uncharted {

/// Error payload: a short machine-readable code plus human-readable detail.
struct Error {
  std::string code;    ///< e.g. "truncated", "bad-start-byte"
  std::string detail;  ///< free-form context for diagnostics

  std::string str() const { return detail.empty() ? code : code + ": " + detail; }
};

/// Result<T> holds either a value or an Error.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  Result(Error error) : error_(std::move(error)) {}      // NOLINT(google-explicit-constructor)

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& take() && {
    assert(ok());
    return std::move(*value_);
  }

  const Error& error() const {
    assert(!ok());
    return *error_;
  }

  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }

 private:
  std::optional<T> value_;
  std::optional<Error> error_;
};

/// Result<void> analogue.
class Status {
 public:
  Status() = default;
  Status(Error error) : error_(std::move(error)) {}  // NOLINT(google-explicit-constructor)

  static Status Ok() { return Status{}; }

  bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }

  const Error& error() const {
    assert(!ok());
    return *error_;
  }

 private:
  std::optional<Error> error_;
};

inline Error Err(std::string code, std::string detail = "") {
  return Error{std::move(code), std::move(detail)};
}

}  // namespace uncharted
