// Small string/formatting helpers shared by reports and benches.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace uncharted {

/// Fixed-precision double formatting, e.g. format_double(3.14159, 2) == "3.14".
std::string format_double(double v, int precision);

/// "65.1322%" style percentage with 4 decimals (Table 7 style).
std::string format_percent(double fraction, int precision = 4);

/// Seconds rendered human-readably: "430 ms", "12.3 s", "2.1 h".
std::string format_duration(double seconds);

/// Thousands separator: 31614 -> "31,614".
std::string format_count(std::uint64_t n);

/// Splits on a delimiter, keeping empty fields.
std::vector<std::string> split(const std::string& s, char delim);

/// Joins with a delimiter.
std::string join(const std::vector<std::string>& parts, const std::string& delim);

}  // namespace uncharted
