// Deterministic pseudo-random number generation for the simulator.
//
// Every synthetic capture must be reproducible from a single seed so that
// tests and benches can assert exact properties. We use xoshiro256** with a
// SplitMix64 seeder; both are tiny, fast and well distributed.
#pragma once

#include <cstdint>
#include <cmath>

namespace uncharted {

/// SplitMix64: used only to expand a single seed into xoshiro state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** deterministic generator with convenience distributions.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5ca1ab1eULL) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n) for n > 0.
  std::uint64_t below(std::uint64_t n) { return next_u64() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Standard normal via Box-Muller (one value per call; simple, stateless).
  double normal() {
    double u1 = uniform();
    double u2 = uniform();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Exponential with given mean (inter-arrival modelling).
  double exponential(double mean) {
    double u = uniform();
    if (u < 1e-300) u = 1e-300;
    return -mean * std::log(u);
  }

  /// Bernoulli trial.
  bool chance(double p) { return uniform() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace uncharted
