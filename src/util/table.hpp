// ASCII table renderer used by the bench harnesses to print paper tables.
#pragma once

#include <string>
#include <vector>

namespace uncharted {

/// Column-aligned ASCII table with an optional title and header row.
class TextTable {
 public:
  explicit TextTable(std::string title = "") : title_(std::move(title)) {}

  void header(std::vector<std::string> cells);
  void row(std::vector<std::string> cells);

  /// Renders with a box border and padded columns.
  std::string render() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace uncharted
