#include "util/strings.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace uncharted {

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string format_percent(double fraction, int precision) {
  return format_double(fraction * 100.0, precision) + "%";
}

std::string format_duration(double seconds) {
  if (seconds < 1e-3) return format_double(seconds * 1e6, 1) + " us";
  if (seconds < 1.0) return format_double(seconds * 1e3, 1) + " ms";
  if (seconds < 120.0) return format_double(seconds, 1) + " s";
  if (seconds < 7200.0) return format_double(seconds / 60.0, 1) + " min";
  return format_double(seconds / 3600.0, 1) + " h";
}

std::string format_count(std::uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  int pos = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it, ++pos) {
    if (pos && pos % 3 == 0) out.push_back(',');
    out.push_back(*it);
  }
  return {out.rbegin(), out.rend()};
}

std::vector<std::string> split(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == delim) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

std::string join(const std::vector<std::string>& parts, const std::string& delim) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += delim;
    out += parts[i];
  }
  return out;
}

}  // namespace uncharted
