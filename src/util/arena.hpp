// Monotonic byte arena: bump allocation for short-lived payload copies.
//
// The zero-copy ingest path only copies bytes that must outlive the packet
// that carried them (out-of-order reassembly segments, partial APDU tails).
// Those copies are small, bursty and die together — exactly the monotonic
// pattern: allocate by bumping a cursor through chunked blocks, free
// everything at once with reset(). Individual deallocation does not exist;
// callers that drop an allocation early must account the waste themselves
// (bytes_used() reports the full footprint, waste included, so resource
// budgets can bound the arena honestly).
#pragma once

#include <cstdint>
#include <cstring>
#include <memory_resource>
#include <span>
#include <vector>

namespace uncharted::util {

class MonotonicArena {
 public:
  /// `block_bytes` is the granularity of growth; allocations larger than a
  /// block get a dedicated block of their exact size.
  explicit MonotonicArena(std::size_t block_bytes = 64 * 1024)
      : block_bytes_(block_bytes == 0 ? 1 : block_bytes) {}

  MonotonicArena(const MonotonicArena&) = delete;
  MonotonicArena& operator=(const MonotonicArena&) = delete;
  MonotonicArena(MonotonicArena&&) = default;
  MonotonicArena& operator=(MonotonicArena&&) = default;

  /// Uninitialized storage, stable until reset() (blocks never move: the
  /// block index grows but each block's buffer stays put).
  std::span<std::uint8_t> allocate(std::size_t n) {
    if (n == 0) return {};
    if (blocks_.empty() || blocks_.back().capacity() - blocks_.back().size() < n) {
      std::vector<std::uint8_t> block;
      block.reserve(n > block_bytes_ ? n : block_bytes_);
      blocks_.push_back(std::move(block));
    }
    auto& block = blocks_.back();
    std::size_t offset = block.size();
    block.resize(offset + n);
    used_ += n;
    return {block.data() + offset, n};
  }

  /// Copies `bytes` into the arena and returns the stable copy.
  std::span<const std::uint8_t> store(std::span<const std::uint8_t> bytes) {
    auto dst = allocate(bytes.size());
    if (!bytes.empty()) std::memcpy(dst.data(), bytes.data(), bytes.size());
    return dst;
  }

  /// Frees every allocation at once. The largest block is kept (emptied)
  /// so a steady-state fill/reset cycle stops touching the heap.
  void reset() {
    if (blocks_.size() > 1) {
      std::size_t keep = 0;
      for (std::size_t i = 1; i < blocks_.size(); ++i) {
        if (blocks_[i].capacity() > blocks_[keep].capacity()) keep = i;
      }
      blocks_[0] = std::move(blocks_[keep]);
      blocks_.resize(1);
    }
    if (!blocks_.empty()) blocks_[0].clear();
    used_ = 0;
  }

  /// Bytes handed out since the last reset — the arena's honest footprint,
  /// including allocations the caller has since abandoned.
  std::size_t bytes_used() const { return used_; }

  /// Heap bytes held across resets.
  std::size_t bytes_reserved() const {
    std::size_t total = 0;
    for (const auto& b : blocks_) total += b.capacity();
    return total;
  }

 private:
  std::size_t block_bytes_;
  std::vector<std::vector<std::uint8_t>> blocks_;
  std::size_t used_ = 0;
};

/// std::pmr arena for parsed records: a monotonic resource over a counting
/// upstream, so the per-lane record arena can report its true heap
/// footprint (resource governance and the allocation-budget tests read
/// it). Containers allocated from resource() must not outlive the arena;
/// lanes hand theirs to the dataset via shared_ptr so records and their
/// backing blocks travel together. Not movable — the resource chain is
/// self-referencing.
class RecordArena {
 public:
  RecordArena() : mono_(&upstream_) {}
  RecordArena(const RecordArena&) = delete;
  RecordArena& operator=(const RecordArena&) = delete;

  std::pmr::memory_resource* resource() { return &mono_; }

  /// Bytes drawn from the heap so far (block-granular; never shrinks until
  /// the arena dies).
  std::size_t heap_bytes() const { return upstream_.bytes(); }

 private:
  class CountingUpstream final : public std::pmr::memory_resource {
   public:
    std::size_t bytes() const { return bytes_; }

   private:
    void* do_allocate(std::size_t bytes, std::size_t align) override {
      bytes_ += bytes;
      return std::pmr::new_delete_resource()->allocate(bytes, align);
    }
    void do_deallocate(void* p, std::size_t bytes, std::size_t align) override {
      std::pmr::new_delete_resource()->deallocate(p, bytes, align);
    }
    bool do_is_equal(const std::pmr::memory_resource& other) const noexcept override {
      return this == &other;
    }
    std::size_t bytes_ = 0;
  };

  CountingUpstream upstream_;
  std::pmr::monotonic_buffer_resource mono_;
};

}  // namespace uncharted::util
