// Direct-mapped key→pointer cache for fronting an ordered map on a hot
// path. Repo rule: unordered containers are banned in src/ (iteration
// order leaks into reports), so per-packet state lives in std::map; the
// O(log n) pointer-chasing lookup then dominates tight ingest loops. This
// cache keeps the map as the single source of truth and only memoizes
// node addresses — std::map nodes are stable under insertion, so a hit is
// valid until something erases or rebuilds nodes, at which point the
// owner must call invalidate(). Determinism is unaffected: a collision or
// stale slot merely falls back to the map.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace uncharted {

template <typename Key, typename Value, std::size_t Slots>
class DirectMappedCache {
  static_assert(Slots > 0 && (Slots & (Slots - 1)) == 0,
                "Slots must be a power of two");

 public:
  /// Cached node addresses must not travel with the owning object: after a
  /// copy the pointers would alias the SOURCE's nodes, and after a move the
  /// source's map may be gone. Copying or moving therefore yields empty
  /// caches on both sides — correctness over a one-off warm-up cost.
  DirectMappedCache() = default;
  DirectMappedCache(const DirectMappedCache&) {}
  DirectMappedCache(DirectMappedCache&& other) noexcept { other.invalidate(); }
  DirectMappedCache& operator=(const DirectMappedCache&) {
    invalidate();
    return *this;
  }
  DirectMappedCache& operator=(DirectMappedCache&& other) noexcept {
    invalidate();
    other.invalidate();
    return *this;
  }

  /// Cached pointer for `key`, or nullptr on miss. The caller supplies the
  /// hash so one computation can serve find() and a following put().
  Value* find(const Key& key, std::uint64_t hash) const {
    const Slot& s = slots_[hash & (Slots - 1)];
    return (s.value != nullptr && s.key == key) ? s.value : nullptr;
  }

  /// Installs `value` for `key`, displacing whatever shared the slot.
  void put(const Key& key, std::uint64_t hash, Value* value) {
    Slot& s = slots_[hash & (Slots - 1)];
    s.key = key;
    s.value = value;
  }

  /// Drops every entry. Required after any operation that erases, moves,
  /// or clears nodes in the backing map.
  void invalidate() {
    for (auto& s : slots_) s.value = nullptr;
  }

 private:
  struct Slot {
    Key key{};
    Value* value = nullptr;
  };
  std::array<Slot, Slots> slots_{};
};

}  // namespace uncharted
