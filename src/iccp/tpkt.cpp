#include "iccp/tpkt.hpp"

namespace uncharted::iccp {

std::vector<std::uint8_t> tpkt_wrap(std::span<const std::uint8_t> payload) {
  ByteWriter w(payload.size() + 4);
  w.u8(3);  // version
  w.u8(0);  // reserved
  w.u16be(static_cast<std::uint16_t>(payload.size() + 4));
  w.bytes(payload);
  return w.take();
}

Result<std::vector<std::uint8_t>> tpkt_unwrap(ByteReader& r) {
  auto version = r.u8();
  auto reserved = r.u8();
  auto length = r.u16be();
  if (!length) return Err("truncated", "tpkt header");
  if (version.value() != 3) return Err("bad-tpkt-version", std::to_string(version.value()));
  (void)reserved;
  if (length.value() < 4) return Err("bad-tpkt-length");
  auto body = r.bytes(length.value() - 4);
  if (!body) return Err("truncated", "tpkt body");
  return std::vector<std::uint8_t>(body->begin(), body->end());
}

std::vector<std::uint8_t> CotpTpdu::encode() const {
  ByteWriter w;
  switch (type) {
    case CotpType::kData: {
      w.u8(2);  // LI
      w.u8(static_cast<std::uint8_t>(type));
      w.u8(static_cast<std::uint8_t>(last_data_unit ? 0x80 : 0x00));  // TPDU-NR|EOT
      break;
    }
    case CotpType::kConnectionRequest:
    case CotpType::kConnectionConfirm:
    case CotpType::kDisconnectRequest: {
      w.u8(6);  // LI: code + dst(2) + src(2) + class(1)
      w.u8(static_cast<std::uint8_t>(type));
      w.u16be(dst_ref);
      w.u16be(src_ref);
      w.u8(0x00);  // class 0
      break;
    }
  }
  w.bytes(payload);
  return w.take();
}

Result<CotpTpdu> CotpTpdu::decode(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  auto li = r.u8();
  auto code = r.u8();
  if (!code) return Err("truncated", "cotp header");

  CotpTpdu tpdu;
  switch (code.value()) {
    case 0xf0: {
      auto nr = r.u8();
      if (!nr) return Err("truncated", "cotp dt");
      tpdu.type = CotpType::kData;
      tpdu.last_data_unit = nr.value() & 0x80;
      break;
    }
    case 0xe0:
    case 0xd0:
    case 0x80: {
      auto dst = r.u16be();
      auto src = r.u16be();
      auto cls = r.u8();
      if (!cls) return Err("truncated", "cotp cr/cc");
      tpdu.type = static_cast<CotpType>(code.value());
      tpdu.dst_ref = dst.value();
      tpdu.src_ref = src.value();
      // Variable part (options) may follow within LI; skip it.
      std::size_t consumed = 6;
      if (li.value() > consumed) {
        auto skipped = r.skip(li.value() - consumed);
        if (!skipped.ok()) return skipped.error();
      }
      break;
    }
    default:
      return Err("bad-cotp-type", std::to_string(code.value()));
  }
  auto rest = r.bytes(r.remaining());
  tpdu.payload.assign(rest->begin(), rest->end());
  return tpdu;
}

std::vector<std::uint8_t> iso_wrap_data(std::span<const std::uint8_t> payload) {
  CotpTpdu dt;
  dt.type = CotpType::kData;
  dt.payload.assign(payload.begin(), payload.end());
  return tpkt_wrap(dt.encode());
}

}  // namespace uncharted::iccp
