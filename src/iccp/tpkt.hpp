// TPKT (RFC 1006) and ISO 8073 COTP transport framing — the stack under
// ICCP/TASE.2, which the paper's tap carried between control centers
// ("communications between SCADA servers of different companies", Fig 5).
//
// Only what ICCP sessions need is implemented: TPKT version 3 packets,
// COTP connection request/confirm and data TPDUs (class 0).
#pragma once

#include <cstdint>
#include <vector>

#include "util/bytes.hpp"
#include "util/expected.hpp"

namespace uncharted::iccp {

/// ISO transport over TCP uses port 102.
constexpr std::uint16_t kIsoTsapPort = 102;

/// Wraps a payload in a TPKT header (vsn=3, reserved=0, 16-bit length).
std::vector<std::uint8_t> tpkt_wrap(std::span<const std::uint8_t> payload);

/// Unwraps exactly one TPKT packet; errors on version/length problems.
Result<std::vector<std::uint8_t>> tpkt_unwrap(ByteReader& r);

/// COTP TPDU kinds we model.
enum class CotpType : std::uint8_t {
  kConnectionRequest = 0xe0,
  kConnectionConfirm = 0xd0,
  kData = 0xf0,
  kDisconnectRequest = 0x80,
};

struct CotpTpdu {
  CotpType type = CotpType::kData;
  std::uint16_t dst_ref = 0;  ///< CR/CC/DR only
  std::uint16_t src_ref = 0;  ///< CR/CC/DR only
  bool last_data_unit = true; ///< DT only (EOT bit)
  std::vector<std::uint8_t> payload;

  /// Serializes the TPDU (without TPKT framing).
  std::vector<std::uint8_t> encode() const;
  static Result<CotpTpdu> decode(std::span<const std::uint8_t> bytes);
};

/// Convenience: payload -> COTP DT -> TPKT, ready for a TCP segment.
std::vector<std::uint8_t> iso_wrap_data(std::span<const std::uint8_t> payload);

}  // namespace uncharted::iccp
