// Simplified ICCP (TASE.2) message layer.
//
// Real ICCP runs MMS over the full OSI stack; modelling that faithfully is
// out of scope (and the paper leaves ICCP analysis to future work). This
// layer implements the *shapes* that matter to traffic measurement — an
// association handshake, periodic data-set transfer ("information
// reports") between control centers, and point reads — in a compact TLV
// encoding carried over COTP/TPKT. It is explicitly NOT wire-compatible
// with MMS; DESIGN.md records the substitution.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "iccp/tpkt.hpp"

namespace uncharted::iccp {

enum class MessageType : std::uint8_t {
  kAssociationRequest = 1,
  kAssociationResponse = 2,
  kInformationReport = 3,  ///< periodic data-set value push
  kReadRequest = 4,
  kReadResponse = 5,
  kConclude = 6,
};

/// One named point value in a report.
struct PointValue {
  std::string name;  ///< e.g. "KV.BUS7_VOLTAGE"
  double value = 0.0;
  std::uint8_t quality = 0;
};

struct Message {
  MessageType type = MessageType::kInformationReport;
  std::uint32_t invoke_id = 0;
  std::string association_name;    ///< association messages
  std::vector<PointValue> points;  ///< reports / read responses
  std::vector<std::string> names;  ///< read requests

  /// Serializes the application message (TLV body only).
  std::vector<std::uint8_t> encode() const;
  static Result<Message> decode(std::span<const std::uint8_t> bytes);

  /// Full wire form: message -> COTP DT -> TPKT.
  std::vector<std::uint8_t> to_wire() const;
};

/// Parses one TPKT-framed ICCP message from a stream reader.
Result<Message> from_wire(ByteReader& r);

}  // namespace uncharted::iccp
