#include "iccp/iccp.hpp"

namespace uncharted::iccp {

namespace {
void write_string(ByteWriter& w, const std::string& s) {
  w.u16be(static_cast<std::uint16_t>(s.size()));
  for (char c : s) w.u8(static_cast<std::uint8_t>(c));
}

Result<std::string> read_string(ByteReader& r) {
  auto len = r.u16be();
  if (!len) return len.error();
  auto bytes = r.bytes(len.value());
  if (!bytes) return bytes.error();
  return std::string(bytes->begin(), bytes->end());
}
}  // namespace

std::vector<std::uint8_t> Message::encode() const {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(type));
  w.u32be(invoke_id);
  write_string(w, association_name);
  w.u16be(static_cast<std::uint16_t>(points.size()));
  for (const auto& p : points) {
    write_string(w, p.name);
    w.f32le(static_cast<float>(p.value));
    w.u8(p.quality);
  }
  w.u16be(static_cast<std::uint16_t>(names.size()));
  for (const auto& n : names) write_string(w, n);
  return w.take();
}

Result<Message> Message::decode(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  auto type = r.u8();
  auto invoke = r.u32be();
  if (!invoke) return Err("truncated", "iccp header");
  if (type.value() < 1 || type.value() > 6) {
    return Err("bad-iccp-type", std::to_string(type.value()));
  }
  Message m;
  m.type = static_cast<MessageType>(type.value());
  m.invoke_id = invoke.value();
  auto assoc = read_string(r);
  if (!assoc) return assoc.error();
  m.association_name = assoc.value();

  auto n_points = r.u16be();
  if (!n_points) return n_points.error();
  for (std::uint16_t i = 0; i < n_points.value(); ++i) {
    PointValue p;
    auto name = read_string(r);
    if (!name) return name.error();
    p.name = name.value();
    auto value = r.f32le();
    auto quality = r.u8();
    if (!quality) return Err("truncated", "point value");
    p.value = value.value();
    p.quality = quality.value();
    m.points.push_back(std::move(p));
  }

  auto n_names = r.u16be();
  if (!n_names) return n_names.error();
  for (std::uint16_t i = 0; i < n_names.value(); ++i) {
    auto name = read_string(r);
    if (!name) return name.error();
    m.names.push_back(name.value());
  }
  if (!r.empty()) return Err("trailing-bytes");
  return m;
}

std::vector<std::uint8_t> Message::to_wire() const { return iso_wrap_data(encode()); }

Result<Message> from_wire(ByteReader& r) {
  auto cotp_bytes = tpkt_unwrap(r);
  if (!cotp_bytes) return cotp_bytes.error();
  auto tpdu = CotpTpdu::decode(cotp_bytes.value());
  if (!tpdu) return tpdu.error();
  if (tpdu->type != CotpType::kData) return Err("not-data-tpdu");
  return Message::decode(tpdu->payload);
}

}  // namespace uncharted::iccp
