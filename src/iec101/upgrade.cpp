#include "iec101/upgrade.hpp"

namespace uncharted::iec101 {

Result<std::vector<std::uint8_t>> UpgradeAdapter::reframe(const Ft12Frame& serial_frame,
                                                          std::uint16_t ns,
                                                          std::uint16_t nr) const {
  auto asdu = unframe_asdu(serial_frame);
  if (!asdu) return asdu.error();
  auto apdu = iec104::Apdu::make_i(ns, nr, std::move(asdu).take());
  return apdu.encode(config_.effective_profile());
}

}  // namespace uncharted::iec101
