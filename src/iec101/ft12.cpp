#include "iec101/ft12.hpp"

#include <numeric>

namespace uncharted::iec101 {

namespace {
constexpr std::uint8_t kSingleChar = 0xe5;
constexpr std::uint8_t kFixedStart = 0x10;
constexpr std::uint8_t kVariableStart = 0x68;
constexpr std::uint8_t kStop = 0x16;

std::uint8_t checksum(std::span<const std::uint8_t> bytes) {
  std::uint32_t sum = 0;
  for (auto b : bytes) sum += b;
  return static_cast<std::uint8_t>(sum & 0xff);
}
}  // namespace

std::uint8_t LinkControl::encode() const {
  std::uint8_t c = function & 0x0f;
  if (prm) {
    c |= 0x40;
    if (fcb) c |= 0x20;
    if (fcv) c |= 0x10;
  } else {
    if (acd) c |= 0x20;
    if (dfc) c |= 0x10;
  }
  return c;
}

LinkControl LinkControl::decode(std::uint8_t octet) {
  LinkControl c;
  c.prm = octet & 0x40;
  c.function = octet & 0x0f;
  if (c.prm) {
    c.fcb = octet & 0x20;
    c.fcv = octet & 0x10;
  } else {
    c.acd = octet & 0x20;
    c.dfc = octet & 0x10;
  }
  return c;
}

Ft12Frame Ft12Frame::single_char() {
  Ft12Frame f;
  f.kind = Kind::kSingleChar;
  return f;
}

Ft12Frame Ft12Frame::fixed(LinkControl control, std::uint8_t address) {
  Ft12Frame f;
  f.kind = Kind::kFixed;
  f.control = control;
  f.address = address;
  return f;
}

Ft12Frame Ft12Frame::variable(LinkControl control, std::uint8_t address,
                              std::vector<std::uint8_t> asdu) {
  Ft12Frame f;
  f.kind = Kind::kVariable;
  f.control = control;
  f.address = address;
  f.user_data = std::move(asdu);
  return f;
}

std::vector<std::uint8_t> Ft12Frame::encode() const {
  ByteWriter w;
  switch (kind) {
    case Kind::kSingleChar:
      w.u8(kSingleChar);
      break;
    case Kind::kFixed: {
      w.u8(kFixedStart);
      std::uint8_t body[2] = {control.encode(), address};
      w.bytes(body);
      w.u8(checksum(body));
      w.u8(kStop);
      break;
    }
    case Kind::kVariable: {
      w.u8(kVariableStart);
      auto len = static_cast<std::uint8_t>(2 + user_data.size());
      w.u8(len);
      w.u8(len);
      w.u8(kVariableStart);
      ByteWriter body;
      body.u8(control.encode());
      body.u8(address);
      body.bytes(user_data);
      w.bytes(body.view());
      w.u8(checksum(body.view()));
      w.u8(kStop);
      break;
    }
  }
  return w.take();
}

Result<Ft12Frame> decode_ft12(ByteReader& r) {
  auto start = r.u8();
  if (!start) return start.error();

  if (start.value() == kSingleChar) return Ft12Frame::single_char();

  if (start.value() == kFixedStart) {
    auto control = r.u8();
    auto address = r.u8();
    auto sum = r.u8();
    auto stop = r.u8();
    if (!stop) return Err("truncated", "fixed frame");
    std::uint8_t body[2] = {control.value(), address.value()};
    if (sum.value() != checksum(body)) return Err("bad-checksum", "fixed frame");
    if (stop.value() != kStop) return Err("bad-stop-octet");
    return Ft12Frame::fixed(LinkControl::decode(control.value()), address.value());
  }

  if (start.value() == kVariableStart) {
    auto len1 = r.u8();
    auto len2 = r.u8();
    auto start2 = r.u8();
    if (!start2) return Err("truncated", "variable header");
    if (len1.value() != len2.value()) return Err("length-mismatch");
    if (start2.value() != kVariableStart) return Err("bad-second-start");
    if (len1.value() < 2) return Err("bad-length", std::to_string(len1.value()));
    auto body = r.bytes(len1.value());
    if (!body) return Err("truncated", "variable body");
    auto sum = r.u8();
    auto stop = r.u8();
    if (!stop) return Err("truncated", "variable trailer");
    if (sum.value() != checksum(body.value())) return Err("bad-checksum");
    if (stop.value() != kStop) return Err("bad-stop-octet");

    Ft12Frame f;
    f.kind = Ft12Frame::Kind::kVariable;
    f.control = LinkControl::decode(body.value()[0]);
    f.address = body.value()[1];
    f.user_data.assign(body.value().begin() + 2, body.value().end());
    return f;
  }

  return Err("bad-start-octet", std::to_string(start.value()));
}

Result<Ft12Frame> frame_asdu(const iec104::Asdu& asdu, std::uint8_t link_address,
                             bool fcb) {
  ByteWriter w;
  auto st = asdu.encode(w, serial_profile());
  if (!st.ok()) return st.error();
  LinkControl control;
  control.prm = true;
  control.fcb = fcb;
  control.fcv = true;
  control.function = static_cast<std::uint8_t>(PrimaryFunction::kUserDataConfirmed);
  return Ft12Frame::variable(control, link_address, w.take());
}

Result<iec104::Asdu> unframe_asdu(const Ft12Frame& frame) {
  if (frame.kind != Ft12Frame::Kind::kVariable) {
    return Err("no-user-data", "not a variable frame");
  }
  ByteReader r(frame.user_data);
  return iec104::Asdu::decode(r, serial_profile());
}

}  // namespace uncharted::iec101
