// IEC 60870-5-101 serial link layer: FT1.2 frame format (IEC 60870-5-1)
// and the link control field (IEC 60870-5-2).
//
// The paper's §6.1 finding — IEC 104 packets with IEC 101 field widths —
// comes from substations upgraded from this protocol. Implementing the
// serial side makes the upgrade path testable end-to-end: an ASDU encoded
// with the 101 address widths, re-framed over TCP without reconfiguration,
// is byte-identical to the malformed packets the paper captured.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "iec104/asdu.hpp"
#include "util/bytes.hpp"
#include "util/expected.hpp"

namespace uncharted::iec101 {

/// IEC 101 addressing: 1-octet COT, 1-octet common address, 2-octet IOA
/// (one common configuration; the standard allows several widths).
inline iec104::CodecProfile serial_profile() { return iec104::CodecProfile{1, 2, 1}; }

/// Link function codes (primary station, PRM=1).
enum class PrimaryFunction : std::uint8_t {
  kResetRemoteLink = 0,
  kTestLink = 2,
  kUserDataConfirmed = 3,
  kUserDataNoReply = 4,
  kRequestStatus = 9,
  kRequestClass1 = 10,
  kRequestClass2 = 11,
};

/// Link function codes (secondary station, PRM=0).
enum class SecondaryFunction : std::uint8_t {
  kAck = 0,
  kNack = 1,
  kUserData = 8,
  kNoData = 9,
  kStatus = 11,
};

/// Link control field.
struct LinkControl {
  bool prm = true;   ///< 1 = from primary (master)
  bool fcb = false;  ///< frame count bit (primary)
  bool fcv = false;  ///< frame count valid (primary)
  bool acd = false;  ///< access demand (secondary)
  bool dfc = false;  ///< data flow control (secondary)
  std::uint8_t function = 0;  ///< 4-bit function code

  std::uint8_t encode() const;
  static LinkControl decode(std::uint8_t octet);
  bool operator==(const LinkControl&) const = default;
};

/// One FT1.2 frame.
struct Ft12Frame {
  enum class Kind {
    kSingleChar,  ///< 0xE5 positive acknowledgement
    kFixed,       ///< 0x10 start: control + address, no user data
    kVariable,    ///< 0x68 start: control + address + ASDU
  };

  Kind kind = Kind::kFixed;
  LinkControl control;
  std::uint8_t address = 0;  ///< link address (1 octet configured here)
  std::vector<std::uint8_t> user_data;  ///< serialized ASDU (variable frames)

  static Ft12Frame single_char();
  static Ft12Frame fixed(LinkControl control, std::uint8_t address);
  static Ft12Frame variable(LinkControl control, std::uint8_t address,
                            std::vector<std::uint8_t> asdu);

  /// Serializes with start/length/checksum/stop octets.
  std::vector<std::uint8_t> encode() const;
};

/// Decodes exactly one frame from the reader (leaves trailing bytes).
/// Errors: bad start/stop octets, length mismatch, checksum mismatch.
Result<Ft12Frame> decode_ft12(ByteReader& r);

/// Convenience: frame an IEC 101 ASDU as confirmed user data.
Result<Ft12Frame> frame_asdu(const iec104::Asdu& asdu, std::uint8_t link_address,
                             bool fcb);

/// Extracts and decodes the ASDU of a variable frame with the serial
/// profile.
Result<iec104::Asdu> unframe_asdu(const Ft12Frame& frame);

}  // namespace uncharted::iec101
