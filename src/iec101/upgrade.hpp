// The 101 -> 104 upgrade path, modelling the §6.1 misconfiguration.
//
// When a serial substation is migrated to TCP/IP, its telecontrol
// configuration (field widths for COT / common address / IOA) should be
// changed to the IEC 104 values. The paper found devices whose
// configuration survived the migration, producing IEC 104 framing around
// IEC 101 field layouts. UpgradeAdapter reproduces both the correct and
// the misconfigured migration so the tolerant parser can be exercised
// against ground truth.
#pragma once

#include <vector>

#include "iec101/ft12.hpp"
#include "iec104/apdu.hpp"

namespace uncharted::iec101 {

/// Which parts of the serial configuration were (incorrectly) retained.
struct UpgradeConfig {
  bool keep_serial_cot = false;  ///< 1-octet cause (the O53/O58/O28 case)
  bool keep_serial_ioa = false;  ///< 2-octet IOA (the O37 case)

  /// Common address is widened to 2 octets by every vendor tool we model;
  /// the paper observed only COT/IOA retention.
  iec104::CodecProfile effective_profile() const {
    iec104::CodecProfile p = iec104::CodecProfile::standard();
    if (keep_serial_cot) p.cot_octets = 1;
    if (keep_serial_ioa) p.ioa_octets = 2;
    return p;
  }
};

/// Converts serial-link traffic into IEC 104 APDUs as an upgraded RTU
/// would emit them.
class UpgradeAdapter {
 public:
  explicit UpgradeAdapter(UpgradeConfig config) : config_(config) {}

  /// Re-frames the ASDU of a received FT1.2 frame as an IEC 104 I-format
  /// APDU with the given sequence numbers. The ASDU content is preserved;
  /// only the field widths follow the (possibly wrong) configuration.
  Result<std::vector<std::uint8_t>> reframe(const Ft12Frame& serial_frame,
                                            std::uint16_t ns, std::uint16_t nr) const;

  const UpgradeConfig& config() const { return config_; }

 private:
  UpgradeConfig config_;
};

}  // namespace uncharted::iec101
