// Self-healing supervision for the live-ingest daemon.
//
// Three pieces, all pure logic (no sockets, no threads, no wall clock of
// their own — time is injected so every stall scenario replays exactly):
//
//   Heartbeats   Subsystems publish cheap monotonic progress counters
//                (reactor ticks, per-lane packets ingested, watermark
//                frames released, checkpoints written, queries served)
//                plus a "demand" hint — how much work is pending. A
//                counter that stops advancing while demand is nonzero is
//                a stall; a counter that stops because there is nothing
//                to do is just quiet.
//   Watchdogs    Per-subsystem deadline rules evaluated on the caller's
//                cadence (the daemon's reactor tick; a fake clock in
//                tests). A stall past the deadline emits one StallEvent
//                carrying the next rung of the subsystem's recovery
//                ladder, then rearms for a full deadline so recovery has
//                time to take before escalation.
//   Ladder +     Each subsystem names its graduated recovery actions
//   breaker      (condemn stream → restart lane from checkpoint →
//                restart checkpoint writer → controlled self-terminate).
//                The rung escalates while the stall persists and resets
//                when progress resumes. A crash-loop circuit breaker
//                bounds attempts per sliding window: when it opens, the
//                subsystem is marked failed and recovery stops — a
//                degraded-but-honest daemon beats a flapping one.
//
// Every recovery attempt lands in a ledger rendered into the `health`
// query JSON, so a months-long capture campaign can be audited after the
// fact: what stalled, when, what the daemon did about it, and whether it
// worked.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace uncharted::health {

/// Monotonic clock in seconds, injectable so watchdog tests run entirely
/// on virtual time. The default (empty) clock reads steady_clock.
using Clock = std::function<double()>;

/// Exit code of the recovery ladder's final rung: the daemon terminates
/// itself so a process supervisor restarts it into `--restore`. Distinct
/// from the 0/1/2/3 analysis contract and from 42 (simulated crash).
inline constexpr int kRecoveryExitCode = 4;

enum class State : std::uint8_t {
  kHealthy,     ///< progress advancing, or no demand
  kStalled,     ///< deadline exceeded with pending demand
  kRecovering,  ///< a recovery action ran; waiting for progress to resume
  kFailed,      ///< breaker open: recovery stopped, degradation is sticky
};
const char* state_name(State s);

/// Recovery actions, cheapest first. The registry only *selects* them;
/// executing is the daemon's job (the registry stays I/O-free).
enum class Action : std::uint8_t {
  kObserve,            ///< record the stall; nothing to restart (late tick)
  kCondemnStream,      ///< evict the merge laggard on the severity ladder
  kRestartLane,        ///< quarantine-restart from the last v3 checkpoint
  kRestartCheckpoint,  ///< reset the checkpoint writer and retry now
  kSelfTerminate,      ///< exit kRecoveryExitCode for a supervisor restart
};
const char* action_name(Action a);

struct WatchdogConfig {
  /// No progress for this long while demand is pending = stalled.
  /// 0 disables the watchdog (the heartbeat still shows in the JSON).
  double deadline_s = 0.0;
  /// Escalation order. Empty behaves as a single kObserve rung.
  std::vector<Action> ladder;
};

struct BreakerConfig {
  /// Recovery attempts allowed per subsystem inside the window before the
  /// breaker opens (0 = never opens).
  std::uint32_t max_recoveries = 6;
  /// Sliding attempt window (<= 0 counts over the whole run).
  double window_s = 120.0;
};

/// One recovery attempt, as recorded for the health JSON and stderr.
struct LedgerEntry {
  double t_s = 0.0;  ///< registry-relative time of the attempt
  std::string subsystem;
  Action action = Action::kObserve;
  bool ok = false;
  std::string detail;
};

/// One watchdog firing: the subsystem, how long it has been stuck, and
/// the ladder rung the caller should execute now.
struct StallEvent {
  std::string subsystem;
  double stalled_for_s = 0.0;
  Action action = Action::kObserve;
};

class Registry {
 public:
  explicit Registry(Clock clock = {});

  void configure_breaker(BreakerConfig breaker) { breaker_ = breaker; }

  /// Registers a subsystem. Re-adding an existing name replaces its
  /// watchdog config but keeps its history (recoveries, ledger).
  void add(const std::string& name, WatchdogConfig config);

  /// Publishes the subsystem's monotonic progress counter. Any advance
  /// restarts the watchdog deadline and, if the subsystem was stalled or
  /// recovering, returns it to healthy (resetting the ladder rung).
  void publish(const std::string& name, std::uint64_t progress);

  /// Pending-work hint. While zero the watchdog never fires and the
  /// deadline clock stays parked: an idle subsystem is not a stalled one.
  void set_demand(const std::string& name, std::uint64_t pending);

  /// Evaluates every watchdog at the injected clock's current time.
  /// At most one event per stalled subsystem per call; firing rearms that
  /// subsystem's deadline so the chosen recovery gets a full period to
  /// take effect before the ladder escalates.
  std::vector<StallEvent> evaluate();

  /// Records the outcome of a recovery attempt: ledger entry, recovery
  /// counters, breaker accounting, rung escalation. Call once per
  /// StallEvent acted on (including kObserve no-ops).
  void record_recovery(const std::string& name, Action action, bool ok,
                       const std::string& detail);

  State state(const std::string& name) const;
  bool breaker_open(const std::string& name) const;
  std::uint64_t recoveries(const std::string& name) const;
  std::uint64_t total_recoveries() const { return total_recoveries_; }
  const std::vector<LedgerEntry>& ledger() const { return ledger_; }

  /// Seconds since the registry was constructed, per the injected clock.
  double now() const;

  /// Deterministic JSON: per-subsystem state / progress / demand /
  /// recovery count / breaker flag, then the full recovery ledger. The
  /// payload of the query socket's `health` command.
  std::string to_json() const;

 private:
  struct Subsystem {
    WatchdogConfig config;
    State state = State::kHealthy;
    std::uint64_t progress = 0;
    std::uint64_t demand = 0;
    double last_progress_t = 0.0;  ///< when progress last advanced (or idle)
    std::size_t rung = 0;          ///< ladder escalation level
    std::uint64_t recoveries = 0;
    std::deque<double> attempts;   ///< attempt times, for the breaker window
  };

  bool breaker_open_at(const Subsystem& sub, double now) const;

  Clock clock_;
  double t0_ = 0.0;
  BreakerConfig breaker_;
  std::map<std::string, Subsystem> subs_;
  std::vector<LedgerEntry> ledger_;
  std::uint64_t total_recoveries_ = 0;
};

}  // namespace uncharted::health
