#include "health/health.hpp"

#include <chrono>
#include <cstdio>

namespace uncharted::health {

namespace {

double steady_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string fmt_seconds(double s) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", s);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

const char* state_name(State s) {
  switch (s) {
    case State::kHealthy: return "healthy";
    case State::kStalled: return "stalled";
    case State::kRecovering: return "recovering";
    case State::kFailed: return "failed";
  }
  return "unknown";
}

const char* action_name(Action a) {
  switch (a) {
    case Action::kObserve: return "observe";
    case Action::kCondemnStream: return "condemn-stream";
    case Action::kRestartLane: return "restart-lane";
    case Action::kRestartCheckpoint: return "restart-checkpoint";
    case Action::kSelfTerminate: return "self-terminate";
  }
  return "unknown";
}

Registry::Registry(Clock clock) : clock_(std::move(clock)) {
  if (!clock_) clock_ = steady_seconds;
  t0_ = clock_();
}

double Registry::now() const { return clock_() - t0_; }

void Registry::add(const std::string& name, WatchdogConfig config) {
  Subsystem& sub = subs_[name];
  sub.config = std::move(config);
  sub.last_progress_t = now();
}

void Registry::publish(const std::string& name, std::uint64_t progress) {
  auto it = subs_.find(name);
  if (it == subs_.end()) return;
  Subsystem& sub = it->second;
  if (progress != sub.progress) {
    sub.progress = progress;
    sub.last_progress_t = now();
    // Progress is the ground truth of recovery: whatever the last action
    // was, the subsystem is moving again, so the ladder starts over.
    if (sub.state != State::kFailed || progress > 0) sub.state = State::kHealthy;
    sub.rung = 0;
  }
}

void Registry::set_demand(const std::string& name, std::uint64_t pending) {
  auto it = subs_.find(name);
  if (it == subs_.end()) return;
  Subsystem& sub = it->second;
  sub.demand = pending;
  // An idle subsystem parks its deadline clock: the watchdog measures
  // "demand waited this long without progress", not "nothing happened".
  if (pending == 0) sub.last_progress_t = now();
}

bool Registry::breaker_open_at(const Subsystem& sub, double t) const {
  if (breaker_.max_recoveries == 0) return false;
  std::uint64_t in_window = 0;
  for (double at : sub.attempts) {
    if (breaker_.window_s <= 0.0 || t - at <= breaker_.window_s) in_window++;
  }
  return in_window >= breaker_.max_recoveries;
}

std::vector<StallEvent> Registry::evaluate() {
  std::vector<StallEvent> events;
  const double t = now();
  for (auto& [name, sub] : subs_) {
    if (sub.config.deadline_s <= 0.0) continue;
    if (sub.demand == 0) continue;
    const double stalled_for = t - sub.last_progress_t;
    if (stalled_for <= sub.config.deadline_s) continue;
    if (breaker_open_at(sub, t)) {
      sub.state = State::kFailed;
      continue;
    }
    sub.state = State::kStalled;
    StallEvent ev;
    ev.subsystem = name;
    ev.stalled_for_s = stalled_for;
    if (sub.config.ladder.empty()) {
      ev.action = Action::kObserve;
    } else {
      const std::size_t rung =
          sub.rung < sub.config.ladder.size() ? sub.rung : sub.config.ladder.size() - 1;
      ev.action = sub.config.ladder[rung];
    }
    // Rearm: the recovery the caller is about to run gets one full
    // deadline to produce progress before the next (escalated) firing.
    sub.last_progress_t = t;
    events.push_back(std::move(ev));
  }
  return events;
}

void Registry::record_recovery(const std::string& name, Action action, bool ok,
                               const std::string& detail) {
  auto it = subs_.find(name);
  if (it == subs_.end()) return;
  Subsystem& sub = it->second;
  const double t = now();
  sub.recoveries++;
  total_recoveries_++;
  sub.attempts.push_back(t);
  // Bound the window bookkeeping; only entries inside the window matter.
  while (sub.attempts.size() > 64 &&
         (breaker_.window_s > 0.0 && t - sub.attempts.front() > breaker_.window_s)) {
    sub.attempts.pop_front();
  }
  sub.rung++;
  sub.state = breaker_open_at(sub, t) ? State::kFailed : State::kRecovering;
  LedgerEntry entry;
  entry.t_s = t;
  entry.subsystem = name;
  entry.action = action;
  entry.ok = ok;
  entry.detail = detail;
  ledger_.push_back(std::move(entry));
}

State Registry::state(const std::string& name) const {
  auto it = subs_.find(name);
  return it == subs_.end() ? State::kHealthy : it->second.state;
}

bool Registry::breaker_open(const std::string& name) const {
  auto it = subs_.find(name);
  return it != subs_.end() && breaker_open_at(it->second, now());
}

std::uint64_t Registry::recoveries(const std::string& name) const {
  auto it = subs_.find(name);
  return it == subs_.end() ? 0 : it->second.recoveries;
}

std::string Registry::to_json() const {
  const double t = now();
  std::string out = "{\"subsystems\":{";
  bool first = true;
  for (const auto& [name, sub] : subs_) {
    if (!first) out += ",";
    first = false;
    const double since =
        sub.demand == 0 ? 0.0 : t - sub.last_progress_t;
    out += "\"" + json_escape(name) + "\":{";
    out += "\"state\":\"" + std::string(state_name(sub.state)) + "\",";
    out += "\"progress\":" + std::to_string(sub.progress) + ",";
    out += "\"demand\":" + std::to_string(sub.demand) + ",";
    out += "\"since_progress_s\":" + fmt_seconds(since) + ",";
    out += "\"deadline_s\":" + fmt_seconds(sub.config.deadline_s) + ",";
    out += "\"recoveries\":" + std::to_string(sub.recoveries) + ",";
    out += "\"breaker_open\":" +
           std::string(breaker_open_at(sub, t) ? "true" : "false");
    out += "}";
  }
  out += "},\"ledger\":[";
  for (std::size_t i = 0; i < ledger_.size(); ++i) {
    if (i > 0) out += ",";
    const LedgerEntry& e = ledger_[i];
    out += "{\"t_s\":" + fmt_seconds(e.t_s);
    out += ",\"subsystem\":\"" + json_escape(e.subsystem) + "\"";
    out += ",\"action\":\"" + std::string(action_name(e.action)) + "\"";
    out += ",\"ok\":" + std::string(e.ok ? "true" : "false");
    out += ",\"detail\":\"" + json_escape(e.detail) + "\"}";
  }
  out += "],\"recoveries_total\":" + std::to_string(total_recoveries_) + "}";
  return out;
}

}  // namespace uncharted::health
