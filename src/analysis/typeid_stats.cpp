#include "analysis/typeid_stats.hpp"

#include <algorithm>

namespace uncharted::analysis {

std::vector<std::pair<std::uint8_t, std::uint64_t>> TypeIdDistribution::sorted() const {
  std::vector<std::pair<std::uint8_t, std::uint64_t>> out(counts.begin(), counts.end());
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return out;
}

TypeIdDistribution typeid_distribution(const CaptureDataset& dataset) {
  // Counting pass over the SoA type_id column: one flat u16 array instead
  // of a pointer chase through every fat record's optional ASDU.
  TypeIdDistribution dist;
  for (std::uint16_t type : dataset.columns().type_id) {
    if (type == CaptureDataset::kNoTypeId) continue;
    ++dist.counts[static_cast<std::uint8_t>(type)];
    ++dist.total;
  }
  return dist;
}

TypeIdStations typeid_station_counts(const CaptureDataset& dataset) {
  TypeIdStations out;
  // The outstation owns the IEC 104 port; commands from a server are
  // attributed to the outstation they address. Resolved once per directed
  // flow, then the per-record loop reads only the two hot columns.
  const auto& keys = dataset.flow_keys();
  std::vector<net::Ipv4Addr> station_of(keys.size());
  for (std::size_t f = 0; f < keys.size(); ++f) {
    station_of[f] = keys[f].src_port == iec104::kIec104Port ? keys[f].src_ip
                                                            : keys[f].dst_ip;
  }
  const auto& cols = dataset.columns();
  for (std::size_t i = 0; i < cols.type_id.size(); ++i) {
    if (cols.type_id[i] == CaptureDataset::kNoTypeId) continue;
    out.stations[static_cast<std::uint8_t>(cols.type_id[i])].insert(
        station_of[cols.flow_index[i]]);
  }
  return out;
}

}  // namespace uncharted::analysis
