#include "analysis/typeid_stats.hpp"

#include <algorithm>

namespace uncharted::analysis {

std::vector<std::pair<std::uint8_t, std::uint64_t>> TypeIdDistribution::sorted() const {
  std::vector<std::pair<std::uint8_t, std::uint64_t>> out(counts.begin(), counts.end());
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return out;
}

TypeIdDistribution typeid_distribution(const CaptureDataset& dataset) {
  TypeIdDistribution dist;
  for (const auto& rec : dataset.records()) {
    if (rec.apdu.apdu.format != iec104::ApduFormat::kI || !rec.apdu.apdu.asdu) continue;
    ++dist.counts[static_cast<std::uint8_t>(rec.apdu.apdu.asdu->type)];
    ++dist.total;
  }
  return dist;
}

TypeIdStations typeid_station_counts(const CaptureDataset& dataset) {
  TypeIdStations out;
  for (const auto& rec : dataset.records()) {
    if (rec.apdu.apdu.format != iec104::ApduFormat::kI || !rec.apdu.apdu.asdu) continue;
    // The outstation owns the IEC 104 port; commands from a server are
    // attributed to the outstation they address.
    net::Ipv4Addr station = rec.flow.src_port == iec104::kIec104Port ? rec.flow.src_ip
                                                                     : rec.flow.dst_ip;
    out.stations[static_cast<std::uint8_t>(rec.apdu.apdu.asdu->type)].insert(station);
  }
  return out;
}

}  // namespace uncharted::analysis
