// Analysis of the non-IEC-104 traffic on the tap (Fig 5): C37.118
// synchrophasor streams and ICCP control-center links. The paper left
// these protocols "for future studies"; this module provides the first
// pass — stream inventory, frame rates, PMU channel maps, ICCP data-set
// activity — using the same reassembly substrate as the IEC 104 pipeline.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "iccp/iccp.hpp"
#include "net/flow.hpp"
#include "net/pcap.hpp"
#include "synchro/c37118.hpp"

namespace uncharted::analysis {

/// One synchrophasor stream (a directed PMU -> concentrator connection).
struct PmuStreamSummary {
  net::Ipv4Addr source;
  net::Ipv4Addr sink;
  std::uint16_t idcode = 0;
  std::string station_name;           ///< from the CFG-2 frame, if seen
  std::vector<std::string> channels;  ///< phasor names
  std::uint16_t configured_rate = 0;  ///< CFG-2 DATA_RATE
  std::uint64_t data_frames = 0;
  std::uint64_t config_frames = 0;
  std::uint64_t command_frames = 0;
  std::uint64_t bad_frames = 0;
  double measured_rate_fps = 0.0;     ///< data frames / observed span
  double mean_freq_deviation_mhz = 0.0;
};

/// One ICCP association (an endpoint pair on port 102).
struct IccpLinkSummary {
  net::Ipv4Addr a;
  net::Ipv4Addr b;
  std::vector<std::string> associations;  ///< association names seen
  std::uint64_t reports = 0;
  std::uint64_t reads = 0;
  std::uint64_t points = 0;           ///< total point values transferred
  std::map<std::string, std::uint64_t> point_names;  ///< per-name counts
};

struct BackgroundTraffic {
  std::vector<PmuStreamSummary> pmu_streams;
  std::vector<IccpLinkSummary> iccp_links;
  std::uint64_t c37118_packets = 0;
  std::uint64_t iccp_packets = 0;
};

/// Reassembles and decodes the port-4712 and port-102 traffic in a capture.
BackgroundTraffic analyze_background(const std::vector<net::CapturedPacket>& packets);

}  // namespace uncharted::analysis
