// Outstation classification into the paper's eight interaction types
// (Table 6 + Fig 17), inferred purely from observed traffic.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "analysis/dataset.hpp"
#include "analysis/markov.hpp"

namespace uncharted::analysis {

/// Paper types. Values match the paper's numbering.
enum class StationType {
  kType1 = 1,  ///< no secondary connection, I-format only
  kType2 = 2,  ///< secondary with proper U16&U32
  kType3 = 3,  ///< U-format only (pure backup RTU)
  kType4 = 4,  ///< I-format only, to both servers
  kType5 = 5,  ///< single server, both I and U formats
  kType6 = 6,  ///< secondary sees I-format and U16 only (reset backup)
  kType7 = 7,  ///< U16-only reset-backup connections (the (1,1) point)
  kType8 = 8,  ///< switchover observed: U keep-alive then STARTDT + I100
};

std::string station_type_description(StationType t);

/// Per-connection observation used for the classification.
struct ConnectionProfile {
  net::Ipv4Addr server;
  std::uint64_t i_from_station = 0;
  std::uint64_t i_from_server = 0;
  std::uint64_t u16 = 0;   ///< TESTFR act seen
  std::uint64_t u32 = 0;   ///< TESTFR con seen
  std::uint64_t startdt = 0;
  bool has_i100 = false;
  bool u_before_i = false;  ///< keep-alive phase preceding data (switchover)
};

struct StationClassification {
  net::Ipv4Addr station;
  StationType type = StationType::kType1;
  std::vector<ConnectionProfile> connections;
};

/// Classifies every outstation (IEC 104 port owner) in the capture.
std::vector<StationClassification> classify_stations(const CaptureDataset& dataset);

/// Fig 17 bar data: count per type.
std::map<StationType, std::size_t> type_histogram(
    const std::vector<StationClassification>& stations);

}  // namespace uncharted::analysis
