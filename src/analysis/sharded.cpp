#include "analysis/sharded.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "exec/pool.hpp"
#include "net/frame.hpp"
#include "util/rng.hpp"

namespace uncharted::analysis {

std::size_t shard_of(std::span<const std::uint8_t> frame, std::size_t shard_count) {
  if (shard_count <= 1) return 0;
  auto pair = net::peek_ipv4_pair(frame);
  if (!pair) return 0;
  auto [x, y] = *pair;
  EndpointPair ep = EndpointPair::of(x, y);
  // SplitMix64 as a finalizer: one next() over the packed pair scrambles
  // the low bits the modulo looks at (raw SCADA addresses are sequential).
  SplitMix64 mix((static_cast<std::uint64_t>(ep.a.value) << 32) | ep.b.value);
  return static_cast<std::size_t>(mix.next() % shard_count);
}

ResourceBudgets divide_budgets(const ResourceBudgets& budgets, std::size_t shards) {
  if (shards <= 1) return budgets;
  auto slice = [shards](std::size_t b) {
    return b == 0 ? std::size_t{0} : (b + shards - 1) / shards;
  };
  ResourceBudgets out;
  out.max_flow_entries = slice(budgets.max_flow_entries);
  out.max_reassembly_bytes = slice(budgets.max_reassembly_bytes);
  out.max_records = slice(budgets.max_records);
  out.max_parsers = slice(budgets.max_parsers);
  return out;
}

namespace {

net::FrameView to_view(const net::CapturedPacket& pkt) {
  return net::FrameView{pkt.ts, pkt.original_length, pkt.data};
}
net::FrameView to_view(const net::FrameView& view) { return view; }

void fold_pressure(ResourcePressure& into, const ResourcePressure& from) {
  into.flow_evictions += from.flow_evictions;
  into.reassembly_flushes += from.reassembly_flushes;
  into.records_evicted += from.records_evicted;
  into.parsers_evicted += from.parsers_evicted;
  // Peaks are concurrent high-water marks; the max across shards is the
  // honest single number (summing would claim simultaneity never observed).
  into.peak_flow_entries = std::max(into.peak_flow_entries, from.peak_flow_entries);
  into.peak_reassembly_bytes =
      std::max(into.peak_reassembly_bytes, from.peak_reassembly_bytes);
  into.peak_records = std::max(into.peak_records, from.peak_records);
  into.peak_parsers = std::max(into.peak_parsers, from.peak_parsers);
}

/// Both frame representations expose `.ts` and `.data` (an owning vector
/// or a borrowed span — shard_of and the builder take spans either way),
/// so one template serves both public overloads identically.
template <typename Frame>
CaptureDataset build_dataset_sharded_impl(std::span<const Frame> packets,
                                          const CaptureDataset::Options& options,
                                          exec::Pool* pool, std::size_t shard_count,
                                          const ResourceBudgets& budgets,
                                          ResourcePressure* pressure_out,
                                          const StageHook& on_stage) {
  using Clock = std::chrono::steady_clock;
  auto ms_since = [](Clock::time_point start) {
    return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
  };

  if (shard_count == 0) shard_count = 1;
  // Partition by index — routing is a header peek, far cheaper than the
  // decode the shard will do, so the driver loop is not the bottleneck.
  std::vector<std::vector<std::size_t>> members(shard_count);
  for (std::size_t i = 0; i < packets.size(); ++i) {
    members[shard_of(packets[i].data, shard_count)].push_back(i);
  }
  Timestamp flush_ts = packets.empty() ? Timestamp{0} : packets.back().ts;
  ResourceBudgets per_shard = divide_budgets(budgets, shard_count);

  std::vector<ShardPartial> partials(shard_count);
  std::vector<ResourcePressure> pressures(shard_count);
  {
    auto start = Clock::now();
    exec::TaskGroup group(pool);
    for (std::size_t s = 0; s < shard_count; ++s) {
      if (members[s].empty()) continue;
      group.run([&, s] {
        DatasetBuilder builder(options, per_shard);
        // Gather the shard's frames into one contiguous batch so the
        // builder's batched path amortizes its per-packet bookkeeping.
        // Views only — for owning packets this borrows, never copies.
        std::vector<net::FrameView> batch;
        batch.reserve(members[s].size());
        for (std::size_t idx : members[s]) batch.push_back(to_view(packets[idx]));
        builder.add_packets(batch);
        pressures[s] = builder.pressure();
        partials[s] = builder.finish_partial(flush_ts);
      });
    }
    group.wait();
    if (on_stage) on_stage("shard fan-out", ms_since(start));
  }

  if (pressure_out) {
    *pressure_out = ResourcePressure{};
    for (const auto& p : pressures) fold_pressure(*pressure_out, p);
  }
  auto start = Clock::now();
  auto dataset = merge_partials(std::move(partials), options);
  if (on_stage) on_stage("shard merge", ms_since(start));
  return dataset;
}

}  // namespace

CaptureDataset build_dataset_sharded(const std::vector<net::CapturedPacket>& packets,
                                     const CaptureDataset::Options& options,
                                     exec::Pool* pool, std::size_t shard_count,
                                     const ResourceBudgets& budgets,
                                     ResourcePressure* pressure_out,
                                     const StageHook& on_stage) {
  return build_dataset_sharded_impl<net::CapturedPacket>(
      packets, options, pool, shard_count, budgets, pressure_out, on_stage);
}

CaptureDataset build_dataset_sharded(std::span<const net::FrameView> frames,
                                     const CaptureDataset::Options& options,
                                     exec::Pool* pool, std::size_t shard_count,
                                     const ResourceBudgets& budgets,
                                     ResourcePressure* pressure_out,
                                     const StageHook& on_stage) {
  return build_dataset_sharded_impl<net::FrameView>(
      frames, options, pool, shard_count, budgets, pressure_out, on_stage);
}

struct ShardedDatasetBuilder::Lane {
  std::mutex m;
  std::deque<std::vector<net::CapturedPacket>> pending;
  bool active = false;  ///< a drain task is scheduled or running
  DatasetBuilder builder;
  // Health-watchdog counters, readable without the lane mutex.
  std::atomic<std::uint64_t> ingested{0};
  std::atomic<std::size_t> queued{0};

  Lane(const CaptureDataset::Options& options, const ResourceBudgets& budgets)
      : builder(options, budgets) {}
};

ShardedDatasetBuilder::ShardedDatasetBuilder(CaptureDataset::Options options,
                                             ResourceBudgets budgets,
                                             exec::Pool* pool,
                                             std::size_t shard_count)
    : options_(options), pool_(pool) {
  if (shard_count == 0) shard_count = 1;
  group_ = std::make_unique<exec::TaskGroup>(pool_);
  ResourceBudgets per_shard = divide_budgets(budgets, shard_count);
  lanes_.reserve(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    lanes_.push_back(std::make_unique<Lane>(options_, per_shard));
  }
  staging_.resize(shard_count);
}

ShardedDatasetBuilder::~ShardedDatasetBuilder() {
  // TaskGroup's destructor joins outstanding lane tasks; they only touch
  // lanes_, which outlives group_ in member order (declared before it).
  group_.reset();
}

void ShardedDatasetBuilder::add_packet(const net::CapturedPacket& pkt) {
  std::size_t s = shard_of(pkt.data, lanes_.size());
  ++dispatched_;
  last_ts_ = pkt.ts;
  auto& batch = staging_[s];
  batch.push_back(pkt);
  if (batch.size() >= staging_batch_) {
    push_batch(*lanes_[s], std::move(batch));
    batch = {};
  }
}

void ShardedDatasetBuilder::push_batch(Lane& lane,
                                       std::vector<net::CapturedPacket>&& batch) {
  bool schedule = false;
  lane.queued.fetch_add(batch.size(), std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(lane.m);
    lane.pending.push_back(std::move(batch));
    if (!lane.active) {
      lane.active = true;
      schedule = true;
    }
  }
  // The strand invariant: at most one drain task per lane exists, so the
  // lane's builder is never touched by two threads. Scheduling outside the
  // lock keeps pool submission (which may block on backpressure) out of
  // the lane's critical section.
  if (schedule) group_->run([this, &lane] { drain_lane(lane); });
}

void ShardedDatasetBuilder::drain_lane(Lane& lane) {
  for (;;) {
    std::vector<net::CapturedPacket> batch;
    {
      std::lock_guard<std::mutex> lock(lane.m);
      if (lane.pending.empty()) {
        lane.active = false;
        return;
      }
      batch = std::move(lane.pending.front());
      lane.pending.pop_front();
    }
    lane.builder.add_packets(net::as_frame_views(batch));
    lane.ingested.fetch_add(batch.size(), std::memory_order_relaxed);
    lane.queued.fetch_sub(batch.size(), std::memory_order_relaxed);
  }
}

std::vector<ShardedDatasetBuilder::LaneStat> ShardedDatasetBuilder::lane_stats()
    const {
  std::vector<LaneStat> out(lanes_.size());
  for (std::size_t s = 0; s < lanes_.size(); ++s) {
    out[s].ingested = lanes_[s]->ingested.load(std::memory_order_relaxed);
    // Staging is deliberately excluded: it is a driver-side batching
    // buffer flushed on a deterministic threshold, so packets parked
    // there under a slow trickle are normal operation, not lane demand —
    // counting them would make the lane watchdog see phantom stalls.
    out[s].queued_packets = lanes_[s]->queued.load(std::memory_order_relaxed);
  }
  return out;
}

void ShardedDatasetBuilder::drain() {
  for (std::size_t s = 0; s < lanes_.size(); ++s) {
    if (!staging_[s].empty()) {
      push_batch(*lanes_[s], std::move(staging_[s]));
      staging_[s] = {};
    }
  }
  group_->wait();
}

ResourcePressure ShardedDatasetBuilder::pressure() {
  drain();
  ResourcePressure total;
  for (const auto& lane : lanes_) fold_pressure(total, lane->builder.pressure());
  return total;
}

CaptureDataset ShardedDatasetBuilder::finish() {
  drain();
  std::vector<ShardPartial> partials(lanes_.size());
  {
    exec::TaskGroup group(pool_);
    for (std::size_t s = 0; s < lanes_.size(); ++s) {
      group.run([&, s] { partials[s] = lanes_[s]->builder.finish_partial(last_ts_); });
    }
    group.wait();
  }
  return merge_partials(std::move(partials), options_);
}

Status ShardedDatasetBuilder::save(ByteWriter& w) {
  drain();
  w.u32le(static_cast<std::uint32_t>(lanes_.size()));
  w.u64le(dispatched_);
  w.u64le(last_ts_);
  for (auto& lane : lanes_) {
    if (auto st = lane->builder.save(w); !st) return st;
  }
  return Status::Ok();
}

Status ShardedDatasetBuilder::load(ByteReader& r) {
  drain();
  auto shard_count = r.u32le();
  if (!shard_count) return shard_count.error();
  if (shard_count.value() != lanes_.size()) {
    return Error{"checkpoint-shard-mismatch",
                 "checkpoint has " + std::to_string(shard_count.value()) +
                     " shards, builder has " + std::to_string(lanes_.size())};
  }
  auto dispatched = r.u64le();
  auto last_ts = r.u64le();
  if (!last_ts) return last_ts.error();
  for (auto& lane : lanes_) {
    if (auto st = lane->builder.load(r); !st) return st;
  }
  dispatched_ = dispatched.value();
  last_ts_ = last_ts.value();
  return Status::Ok();
}

}  // namespace uncharted::analysis
