#include "analysis/topology_diff.hpp"

#include <algorithm>

namespace uncharted::analysis {

std::map<net::Ipv4Addr, StationInventory> station_inventory(const CaptureDataset& dataset) {
  std::map<net::Ipv4Addr, StationInventory> out;
  for (const auto& rec : dataset.records()) {
    // Outstations own the IEC 104 port; count every endpoint that appears
    // on either side of outstation traffic.
    net::Ipv4Addr station = rec.flow.src_port == iec104::kIec104Port ? rec.flow.src_ip
                                                                     : rec.flow.dst_ip;
    auto& inv = out[station];
    inv.station = station;
    ++inv.apdus;
    if (rec.apdu.apdu.format == iec104::ApduFormat::kI && rec.apdu.apdu.asdu &&
        rec.flow.src_port == iec104::kIec104Port) {
      auto type = static_cast<std::uint8_t>(rec.apdu.apdu.asdu->type);
      if (type < 45) {  // monitor-direction telemetry only
        for (const auto& obj : rec.apdu.apdu.asdu->objects) inv.ioas.insert(obj.ioa);
      }
    }
  }
  return out;
}

std::string station_change_name(StationChange c) {
  switch (c) {
    case StationChange::kAdded: return "added";
    case StationChange::kRemoved: return "removed";
    case StationChange::kMoreIoas: return "more IOAs";
    case StationChange::kFewerIoas: return "fewer IOAs";
    case StationChange::kUnchanged: return "unchanged";
  }
  return "?";
}

TopologyDiff diff_topology(const CaptureDataset& before, const CaptureDataset& after) {
  auto inv_before = station_inventory(before);
  auto inv_after = station_inventory(after);

  TopologyDiff diff;
  std::set<net::Ipv4Addr> all;
  for (const auto& [ip, inv] : inv_before) all.insert(ip);
  for (const auto& [ip, inv] : inv_after) all.insert(ip);

  for (const auto& ip : all) {
    TopologyDiffEntry e;
    e.station = ip;
    auto b = inv_before.find(ip);
    auto a = inv_after.find(ip);
    e.ioas_before = b == inv_before.end() ? 0 : b->second.ioas.size();
    e.ioas_after = a == inv_after.end() ? 0 : a->second.ioas.size();

    if (b == inv_before.end()) {
      e.change = StationChange::kAdded;
      ++diff.added;
    } else if (a == inv_after.end()) {
      e.change = StationChange::kRemoved;
      ++diff.removed;
    } else if (e.ioas_after > e.ioas_before) {
      e.change = StationChange::kMoreIoas;
      ++diff.more_ioas;
    } else if (e.ioas_after < e.ioas_before) {
      e.change = StationChange::kFewerIoas;
      ++diff.fewer_ioas;
    } else {
      e.change = StationChange::kUnchanged;
      ++diff.unchanged;
      if (e.ioas_before > 0) ++diff.unchanged_reporting;
    }
    diff.entries.push_back(e);
  }
  return diff;
}

}  // namespace uncharted::analysis
