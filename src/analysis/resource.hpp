// Resource governance for long-running ingestion.
//
// A streaming analyzer that runs for days cannot let its state grow with
// the capture: flow tables, reassembly buffers and the APDU record log are
// all unbounded in the input. ResourceBudgets caps each of them;
// ResourcePressure reports every enforcement action so a bounded run is
// honest about what it shed — the same philosophy as DegradationCounters,
// but for self-inflicted (budgeted) loss rather than damaged input.
#pragma once

#include <cstdint>

#include "util/bytes.hpp"

namespace uncharted::analysis {

/// Caps on builder state. 0 means unlimited (the batch default — a one-shot
/// build over an in-memory capture has nothing to govern).
struct ResourceBudgets {
  /// Max connections tracked by the flow table; least-recently-active
  /// entries are evicted past it.
  std::size_t max_flow_entries = 0;
  /// Max total out-of-order bytes buffered across all stream directions;
  /// the fullest direction is force-flushed (hole abandoned) past it.
  std::size_t max_reassembly_bytes = 0;
  /// Max APDU records retained; the oldest quarter of the budget is
  /// dropped when it overflows so eviction amortizes.
  std::size_t max_records = 0;
  /// Max per-direction stream parsers; idle ones (empty buffer) are
  /// retired first, then the rest (their partial frame becomes a
  /// truncated-tail failure).
  std::size_t max_parsers = 0;

  bool unlimited() const {
    return max_flow_entries == 0 && max_reassembly_bytes == 0 &&
           max_records == 0 && max_parsers == 0;
  }
};

/// What budget enforcement actually did, plus high-water marks. Monotone;
/// `any()` is false iff every budget held without intervention.
struct ResourcePressure {
  std::uint64_t flow_evictions = 0;       ///< connections dropped from the table
  std::uint64_t reassembly_flushes = 0;   ///< directions force-flushed
  std::uint64_t records_evicted = 0;      ///< APDU records dropped (oldest first)
  std::uint64_t parsers_evicted = 0;      ///< stream parsers retired

  std::uint64_t peak_flow_entries = 0;
  std::uint64_t peak_reassembly_bytes = 0;
  std::uint64_t peak_records = 0;
  std::uint64_t peak_parsers = 0;

  bool any() const {
    return flow_evictions + reassembly_flushes + records_evicted +
               parsers_evicted !=
           0;
  }

  void save(ByteWriter& w) const;
  static Result<ResourcePressure> load(ByteReader& r);
};

}  // namespace uncharted::analysis
