#include "analysis/kmeans.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "exec/pool.hpp"

namespace uncharted::analysis {

namespace {

double sq_distance(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

Matrix seed_plus_plus(const Matrix& points, int k, Rng& rng) {
  Matrix centroids;
  centroids.push_back(points[rng.below(points.size())]);
  std::vector<double> d2(points.size());
  while (static_cast<int>(centroids.size()) < k) {
    double total = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      double best = std::numeric_limits<double>::infinity();
      for (const auto& c : centroids) best = std::min(best, sq_distance(points[i], c));
      d2[i] = best;
      total += best;
    }
    if (total <= 0.0) {
      // All points coincide with existing centroids; duplicate one.
      centroids.push_back(points[rng.below(points.size())]);
      continue;
    }
    double target = rng.uniform() * total;
    std::size_t pick = 0;
    double acc = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      acc += d2[i];
      if (acc >= target) {
        pick = i;
        break;
      }
    }
    centroids.push_back(points[pick]);
  }
  return centroids;
}

/// Points per assignment chunk. A fixed grain (never derived from the
/// worker count) keeps the partition — and thus every FP operation's
/// operands — identical at all thread counts.
constexpr std::size_t kAssignGrain = 64;

KMeansResult lloyd(const Matrix& points, Matrix centroids, const KMeansOptions& options) {
  const int k = static_cast<int>(centroids.size());
  const std::size_t dims = points[0].size();
  KMeansResult result;
  result.k = k;
  result.assignment.assign(points.size(), 0);

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    // Assign. Each point is independent (no reduction), so this
    // parallelizes without any FP-order concern.
    exec::parallel_for(options.pool, points.size(), kAssignGrain,
                       [&](std::size_t begin, std::size_t end) {
                         for (std::size_t i = begin; i < end; ++i) {
                           double best = std::numeric_limits<double>::infinity();
                           int best_c = 0;
                           for (int c = 0; c < k; ++c) {
                             double d = sq_distance(
                                 points[i], centroids[static_cast<std::size_t>(c)]);
                             if (d < best) {
                               best = d;
                               best_c = c;
                             }
                           }
                           result.assignment[i] = best_c;
                         }
                       });
    // Update.
    Matrix next(static_cast<std::size_t>(k), std::vector<double>(dims, 0.0));
    std::vector<std::size_t> counts(static_cast<std::size_t>(k), 0);
    for (std::size_t i = 0; i < points.size(); ++i) {
      auto c = static_cast<std::size_t>(result.assignment[i]);
      ++counts[c];
      for (std::size_t d = 0; d < dims; ++d) next[c][d] += points[i][d];
    }
    double movement = 0.0;
    for (std::size_t c = 0; c < static_cast<std::size_t>(k); ++c) {
      if (counts[c] == 0) {
        next[c] = centroids[c];  // keep empty centroid in place
        continue;
      }
      for (std::size_t d = 0; d < dims; ++d) next[c][d] /= static_cast<double>(counts[c]);
      movement += sq_distance(next[c], centroids[c]);
    }
    centroids = std::move(next);
    if (movement < options.tolerance) break;
  }

  result.centroids = std::move(centroids);
  result.sse = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    result.sse +=
        sq_distance(points[i], result.centroids[static_cast<std::size_t>(result.assignment[i])]);
  }
  return result;
}

}  // namespace

KMeansResult kmeans(const Matrix& points, int k, const KMeansOptions& options) {
  if (k < 1 || points.empty() || points.size() < static_cast<std::size_t>(k)) {
    throw std::invalid_argument("kmeans: need k >= 1 and at least k points");
  }
  // Each restart owns an Rng seeded from a SplitMix64 chain over
  // options.seed: restarts never share generator state, so they can run
  // concurrently, and restart r draws the same numbers no matter how many
  // threads execute the batch (or whether a pool exists at all).
  const int restarts = std::max(1, options.restarts);
  std::vector<std::uint64_t> seeds(static_cast<std::size_t>(restarts));
  SplitMix64 seeder(options.seed);
  for (auto& s : seeds) s = seeder.next();

  std::vector<KMeansResult> results(static_cast<std::size_t>(restarts));
  {
    exec::TaskGroup group(options.pool);
    for (int r = 0; r < restarts; ++r) {
      group.run([&, r] {
        // Assignment-level parallelism nests under restart-level
        // parallelism; the group's help-based wait makes that safe.
        Rng rng(seeds[static_cast<std::size_t>(r)]);
        results[static_cast<std::size_t>(r)] =
            lloyd(points, seed_plus_plus(points, k, rng), options);
      });
    }
    group.wait();
  }

  // Ties resolve to the earliest restart (strict <), independent of which
  // task finished first.
  KMeansResult best;
  best.sse = std::numeric_limits<double>::infinity();
  for (auto& result : results) {
    if (result.sse < best.sse) best = std::move(result);
  }
  return best;
}

double silhouette_score(const Matrix& points, const std::vector<int>& assignment, int k) {
  if (k < 2 || points.size() < 2) return 0.0;
  const std::size_t n = points.size();

  std::vector<std::size_t> cluster_size(static_cast<std::size_t>(k), 0);
  for (int a : assignment) ++cluster_size[static_cast<std::size_t>(a)];

  double total = 0.0;
  std::size_t counted = 0;
  for (std::size_t i = 0; i < n; ++i) {
    auto ci = static_cast<std::size_t>(assignment[i]);
    if (cluster_size[ci] <= 1) continue;  // silhouette undefined; skip

    std::vector<double> mean_dist(static_cast<std::size_t>(k), 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      mean_dist[static_cast<std::size_t>(assignment[j])] +=
          std::sqrt(sq_distance(points[i], points[j]));
    }
    double a = mean_dist[ci] / static_cast<double>(cluster_size[ci] - 1);
    double b = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < static_cast<std::size_t>(k); ++c) {
      if (c == ci || cluster_size[c] == 0) continue;
      b = std::min(b, mean_dist[c] / static_cast<double>(cluster_size[c]));
    }
    if (!std::isfinite(b)) continue;
    double denom = std::max(a, b);
    total += denom > 0 ? (b - a) / denom : 0.0;
    ++counted;
  }
  return counted ? total / static_cast<double>(counted) : 0.0;
}

double explained_variance(const Matrix& points, const KMeansResult& result) {
  if (points.empty()) return 0.0;
  const std::size_t dims = points[0].size();
  std::vector<double> mean(dims, 0.0);
  for (const auto& p : points) {
    for (std::size_t d = 0; d < dims; ++d) mean[d] += p[d];
  }
  for (auto& m : mean) m /= static_cast<double>(points.size());
  double tss = 0.0;
  for (const auto& p : points) tss += sq_distance(p, mean);
  if (tss <= 0.0) return 1.0;
  return 1.0 - result.sse / tss;
}

std::vector<KSweepEntry> sweep_k(const Matrix& points, int k_min, int k_max,
                                 const KMeansOptions& options) {
  std::vector<int> ks;
  for (int k = k_min; k <= k_max && static_cast<std::size_t>(k) <= points.size(); ++k) {
    ks.push_back(k);
  }
  std::vector<KSweepEntry> sweep(ks.size());
  exec::TaskGroup group(options.pool);
  for (std::size_t i = 0; i < ks.size(); ++i) {
    group.run([&, i] {
      int k = ks[i];
      auto result = kmeans(points, k, options);
      sweep[i] = KSweepEntry{k, result.sse, explained_variance(points, result),
                             silhouette_score(points, result.assignment, k)};
    });
  }
  group.wait();
  return sweep;
}

int elbow_k(const std::vector<KSweepEntry>& sweep) {
  if (sweep.size() < 3) return sweep.empty() ? 0 : sweep.front().k;
  // Largest perpendicular distance from the line joining the endpoints of
  // the (k, sse) curve.
  double x1 = sweep.front().k, y1 = sweep.front().sse;
  double x2 = sweep.back().k, y2 = sweep.back().sse;
  double norm = std::hypot(x2 - x1, y2 - y1);
  int best_k = sweep.front().k;
  double best_dist = -1.0;
  for (const auto& e : sweep) {
    double dist = std::fabs((y2 - y1) * e.k - (x2 - x1) * e.sse + x2 * y1 - y2 * x1) / norm;
    if (dist > best_dist) {
      best_dist = dist;
      best_k = e.k;
    }
  }
  return best_k;
}

Matrix standardize(const Matrix& points) {
  if (points.empty()) return points;
  const std::size_t dims = points[0].size();
  std::vector<double> mean(dims, 0.0), var(dims, 0.0);
  for (const auto& p : points) {
    for (std::size_t d = 0; d < dims; ++d) mean[d] += p[d];
  }
  for (auto& m : mean) m /= static_cast<double>(points.size());
  for (const auto& p : points) {
    for (std::size_t d = 0; d < dims; ++d) {
      double delta = p[d] - mean[d];
      var[d] += delta * delta;
    }
  }
  Matrix out = points;
  for (std::size_t d = 0; d < dims; ++d) {
    double sd = std::sqrt(var[d] / static_cast<double>(points.size()));
    if (sd < 1e-12) continue;
    for (auto& p : out) p[d] = (p[d] - mean[d]) / sd;
  }
  return out;
}

}  // namespace uncharted::analysis
