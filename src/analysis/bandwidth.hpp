// Bandwidth and timing analysis — the first prong of the paper's approach
// ("traffic analysis of TCP flows, bandwidth used, and timing
// characteristics of the packets").
//
// Produces per-protocol byte/packet rate time series (bucketed), per-
// connection byte totals, and packet inter-arrival statistics for the
// IEC 104 traffic.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "net/flow.hpp"
#include "net/pcap.hpp"
#include "util/stats.hpp"

namespace uncharted::analysis {

/// Protocol classes on the tap.
enum class TapProtocol { kIec104, kC37118, kIccp, kOther };

std::string tap_protocol_name(TapProtocol p);

/// One bucket of a rate series.
struct RateBucket {
  double t_seconds = 0.0;  ///< bucket start, relative to capture start
  std::uint64_t bytes = 0;
  std::uint64_t packets = 0;
};

struct BandwidthReport {
  double bucket_seconds = 0.0;
  Timestamp start_ts = 0;
  /// Byte/packet rate per protocol over time.
  std::map<TapProtocol, std::vector<RateBucket>> series;
  /// Whole-capture totals.
  std::map<TapProtocol, std::uint64_t> total_bytes;
  std::map<TapProtocol, std::uint64_t> total_packets;
  /// Top talkers (canonical connection -> payload bytes), descending.
  std::vector<std::pair<net::FlowKey, std::uint64_t>> top_connections;
  /// IEC 104 packet inter-arrival statistics (all packets on port 2404).
  RunningStats iec104_interarrival_s;

  double duration_seconds() const;
  /// Mean throughput for a protocol in bytes/second.
  double mean_rate_bps(TapProtocol p) const;
};

/// Computes the report with the given time bucket (default 10 s).
BandwidthReport analyze_bandwidth(const std::vector<net::CapturedPacket>& packets,
                                  double bucket_seconds = 10.0);
/// Zero-copy variant over frame views (the mmap'd-file path).
BandwidthReport analyze_bandwidth(std::span<const net::FrameView> frames,
                                  double bucket_seconds = 10.0);

/// Incremental bandwidth accounting: one packet at a time, checkpointable.
/// `analyze_bandwidth` is a thin wrapper; the streaming analyzer feeds one
/// of these alongside the DatasetBuilder.
class BandwidthAccumulator {
 public:
  explicit BandwidthAccumulator(double bucket_seconds = 10.0);

  void add_packet(const net::CapturedPacket& pkt) {
    add_packet(pkt.ts, pkt.data);
  }
  /// Zero-copy form: all accounting reads only the timestamp and the raw
  /// frame bytes, so views and owning packets take the same path.
  void add_packet(Timestamp ts, std::span<const std::uint8_t> data);

  /// Snapshot of the report so far (top talkers sorted and truncated).
  BandwidthReport finish() const;

  /// Checkpoint serialization. The bucket width is saved too — it shapes
  /// the series, so a restore under a different width must not silently
  /// mix scales (load adopts the saved width).
  void save(ByteWriter& w) const;
  Status load(ByteReader& r);

 private:
  double bucket_seconds_;
  bool have_start_ = false;
  Timestamp start_ts_ = 0;
  std::map<TapProtocol, std::vector<RateBucket>> series_;
  std::map<TapProtocol, std::uint64_t> total_bytes_;
  std::map<TapProtocol, std::uint64_t> total_packets_;
  std::map<net::FlowKey, std::uint64_t> connection_bytes_;
  std::optional<Timestamp> prev_iec104_;
  RunningStats iec104_interarrival_s_;
};

}  // namespace uncharted::analysis
