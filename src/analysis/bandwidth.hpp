// Bandwidth and timing analysis — the first prong of the paper's approach
// ("traffic analysis of TCP flows, bandwidth used, and timing
// characteristics of the packets").
//
// Produces per-protocol byte/packet rate time series (bucketed), per-
// connection byte totals, and packet inter-arrival statistics for the
// IEC 104 traffic.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "net/flow.hpp"
#include "net/pcap.hpp"
#include "util/stats.hpp"

namespace uncharted::analysis {

/// Protocol classes on the tap.
enum class TapProtocol { kIec104, kC37118, kIccp, kOther };

std::string tap_protocol_name(TapProtocol p);

/// One bucket of a rate series.
struct RateBucket {
  double t_seconds = 0.0;  ///< bucket start, relative to capture start
  std::uint64_t bytes = 0;
  std::uint64_t packets = 0;
};

struct BandwidthReport {
  double bucket_seconds = 0.0;
  Timestamp start_ts = 0;
  /// Byte/packet rate per protocol over time.
  std::map<TapProtocol, std::vector<RateBucket>> series;
  /// Whole-capture totals.
  std::map<TapProtocol, std::uint64_t> total_bytes;
  std::map<TapProtocol, std::uint64_t> total_packets;
  /// Top talkers (canonical connection -> payload bytes), descending.
  std::vector<std::pair<net::FlowKey, std::uint64_t>> top_connections;
  /// IEC 104 packet inter-arrival statistics (all packets on port 2404).
  RunningStats iec104_interarrival_s;

  double duration_seconds() const;
  /// Mean throughput for a protocol in bytes/second.
  double mean_rate_bps(TapProtocol p) const;
};

/// Computes the report with the given time bucket (default 10 s).
BandwidthReport analyze_bandwidth(const std::vector<net::CapturedPacket>& packets,
                                  double bucket_seconds = 10.0);

}  // namespace uncharted::analysis
