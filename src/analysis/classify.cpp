#include "analysis/classify.hpp"

#include <algorithm>

namespace uncharted::analysis {

std::string station_type_description(StationType t) {
  switch (t) {
    case StationType::kType1: return "No secondary connection and I-format only";
    case StationType::kType2: return "With secondary connection and U16&U32";
    case StationType::kType3: return "U-format only";
    case StationType::kType4: return "I-format only to both servers";
    case StationType::kType5: return "Single server with both I and U formats";
    case StationType::kType6: return "With secondary connection I-format and U16 only";
    case StationType::kType7: return "Reset-backup: unanswered U16 keep-alives";
    case StationType::kType8: return "Switchover observed (keep-alive then I100 + data)";
  }
  return "?";
}

std::vector<StationClassification> classify_stations(const CaptureDataset& dataset) {
  const auto& records = dataset.records();

  // station IP -> server IP -> profile
  std::map<net::Ipv4Addr, std::map<net::Ipv4Addr, ConnectionProfile>> profiles;

  for (const auto& [pair, indices] : dataset.connections()) {
    if (indices.empty()) continue;
    // The outstation owns port 2404 on its flows.
    const auto& first = records[indices.front()];
    net::Ipv4Addr station = first.flow.dst_port == iec104::kIec104Port
                                ? first.flow.dst_ip
                                : first.flow.src_ip;
    net::Ipv4Addr server = station == pair.a ? pair.b : pair.a;

    ConnectionProfile& p = profiles[station][server];
    p.server = server;
    bool seen_i = false;
    for (std::size_t idx : indices) {
      const auto& rec = records[idx];
      bool from_station = rec.flow.src_ip == station;
      switch (rec.apdu.apdu.format) {
        case iec104::ApduFormat::kI:
          if (from_station) {
            ++p.i_from_station;
          } else {
            ++p.i_from_server;
          }
          seen_i = true;
          if (rec.apdu.apdu.asdu &&
              rec.apdu.apdu.asdu->type == iec104::TypeId::C_IC_NA_1) {
            p.has_i100 = true;
          }
          break;
        case iec104::ApduFormat::kU:
          switch (rec.apdu.apdu.u_function) {
            case iec104::UFunction::kTestFrAct:
              ++p.u16;
              if (!seen_i) p.u_before_i = true;
              break;
            case iec104::UFunction::kTestFrCon:
              ++p.u32;
              break;
            case iec104::UFunction::kStartDtAct:
            case iec104::UFunction::kStartDtCon:
              ++p.startdt;
              break;
            default:
              break;
          }
          break;
        case iec104::ApduFormat::kS:
          break;
      }
    }
  }

  std::vector<StationClassification> out;
  for (auto& [station, by_server] : profiles) {
    StationClassification sc;
    sc.station = station;
    for (auto& [server, p] : by_server) sc.connections.push_back(p);

    std::size_t n_conn = sc.connections.size();
    std::size_t i_conns = 0, u_only_conns = 0, dead_u16_conns = 0, healthy_u_conns = 0;
    bool any_i100 = false, any_switchover = false, any_inband_test = false;
    for (const auto& p : sc.connections) {
      bool has_i = p.i_from_station + p.i_from_server > 0;
      bool has_u = p.u16 + p.u32 > 0;
      if (has_i) ++i_conns;
      if (!has_i && has_u) {
        ++u_only_conns;
        if (p.u16 > 0 && p.u32 == 0) {
          ++dead_u16_conns;
        } else {
          ++healthy_u_conns;
        }
      }
      if (p.has_i100) any_i100 = true;
      if (p.has_i100 && p.u_before_i && p.startdt > 0) any_switchover = true;
      if (has_i && p.u16 > 0 && p.u32 > 0) any_inband_test = true;
    }

    if (any_switchover) {
      sc.type = StationType::kType8;
    } else if (i_conns >= 2) {
      sc.type = StationType::kType4;
    } else if (i_conns == 1 && dead_u16_conns > 0) {
      sc.type = StationType::kType6;
    } else if (i_conns == 1 && healthy_u_conns > 0) {
      sc.type = StationType::kType2;
    } else if (i_conns == 1 && any_inband_test) {
      sc.type = StationType::kType5;
    } else if (i_conns == 1) {
      sc.type = StationType::kType1;
    } else if (dead_u16_conns > 0 && healthy_u_conns == 0) {
      sc.type = StationType::kType7;
    } else {
      sc.type = StationType::kType3;
    }
    (void)n_conn;
    (void)any_i100;
    out.push_back(std::move(sc));
  }
  return out;
}

std::map<StationType, std::size_t> type_histogram(
    const std::vector<StationClassification>& stations) {
  std::map<StationType, std::size_t> hist;
  for (const auto& s : stations) ++hist[s.type];
  return hist;
}

}  // namespace uncharted::analysis
