// Conformance audit: runs the IEC 104 conformance state machine over every
// TCP connection in a capture dataset and aggregates the profiles per
// endpoint pair (the paper's C-O "connection" granularity). Machines are
// keyed by the directed 4-tuple's canonical form, NOT by endpoint pair, so
// a reconnect or redundancy switchover starts a fresh machine instead of
// reading as a hostile sequence reset.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/dataset.hpp"
#include "iec104/conformance.hpp"

namespace uncharted::analysis {

/// Merged conformance result for one endpoint pair.
struct ConnectionConformance {
  EndpointPair pair;
  iec104::Verdict verdict = iec104::Verdict::kClean;  ///< worst across flows
  iec104::ConformanceProfile profile;  ///< counts summed, timers maxed
  std::size_t flows = 0;               ///< TCP connections merged in
};

/// Capture-wide conformance summary (part of AnalysisReport).
struct ConformanceReport {
  std::vector<ConnectionConformance> entries;  ///< ordered by endpoint pair
  std::uint64_t clean_connections = 0;
  std::uint64_t legacy_connections = 0;
  std::uint64_t suspect_connections = 0;
  std::uint64_t hostile_connections = 0;
  std::uint64_t hostile_events = 0;  ///< across all entries

  bool any_hostile() const { return hostile_connections > 0; }
};

/// Runs the conformance machines over `dataset`. The outstation side of
/// each flow is identified by `iec104_port`; flows whose establishing
/// SYN/SYN-ACK are inside the capture get the definitive fresh-connection
/// state machine, everything else anchors mid-stream.
ConformanceReport audit_conformance(
    const CaptureDataset& dataset,
    const iec104::ConformancePolicy& policy = {},
    std::uint16_t iec104_port = iec104::kIec104Port);

}  // namespace uncharted::analysis
