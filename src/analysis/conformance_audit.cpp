#include "analysis/conformance_audit.hpp"

#include <algorithm>
#include <map>

namespace uncharted::analysis {

namespace {

/// Folds one per-flow profile into the pair-level aggregate.
void merge_profile(iec104::ConformanceProfile& into,
                   const iec104::ConformanceProfile& from) {
  into.apdus += from.apdus;
  into.i_apdus += from.i_apdus;
  into.warn_score += from.warn_score;
  into.hostile_events += from.hostile_events;
  into.legacy_events += from.legacy_events;
  into.timers.max_idle_s = std::max(into.timers.max_idle_s, from.timers.max_idle_s);
  into.timers.max_ack_delay_s =
      std::max(into.timers.max_ack_delay_s, from.timers.max_ack_delay_s);
  into.timers.max_testfr_rtt_s =
      std::max(into.timers.max_testfr_rtt_s, from.timers.max_testfr_rtt_s);
  into.timers.max_startdt_rtt_s =
      std::max(into.timers.max_startdt_rtt_s, from.timers.max_startdt_rtt_s);
  for (const auto& v : from.violations) {
    auto it = std::find_if(into.violations.begin(), into.violations.end(),
                           [&](const auto& e) { return e.code == v.code; });
    if (it == into.violations.end()) {
      into.violations.push_back(v);
    } else {
      it->count += v.count;
      it->first_ts = std::min(it->first_ts, v.first_ts);
      it->last_ts = std::max(it->last_ts, v.last_ts);
    }
  }
}

}  // namespace

ConformanceReport audit_conformance(const CaptureDataset& dataset,
                                    const iec104::ConformancePolicy& policy,
                                    std::uint16_t iec104_port) {
  std::map<net::FlowKey, iec104::ConformanceMachine> machines;

  auto machine_for = [&](const net::FlowKey& canonical) -> iec104::ConformanceMachine& {
    auto it = machines.find(canonical);
    if (it == machines.end()) {
      it = machines.emplace(canonical, iec104::ConformanceMachine(policy)).first;
    }
    return it->second;
  };

  // Fresh connections (SYN + SYN-ACK inside the capture) get the strict
  // state machine: STOPDT initial state, sequence counters pinned to zero.
  for (const auto& flow : dataset.flow_table().flows()) {
    if (flow.saw_syn && flow.saw_synack) {
      machine_for(flow.key.canonical()).on_connection_open(flow.first_ts);
    }
  }

  // Records are in capture (time) order; each feeds its flow's machine.
  for (const auto& rec : dataset.records()) {
    bool from_controller = rec.flow.src_port != iec104_port;
    machine_for(rec.flow.canonical())
        .on_apdu(rec.ts, from_controller, rec.apdu.apdu, rec.apdu.profile);
  }

  // Parse-level damage, including flows the quarantine dropped from
  // records(): a stream too poisoned to trust is still evidence about the
  // peer — often the strongest evidence there is.
  for (const auto& [key, dmg] : dataset.damage()) {
    auto& machine = machine_for(key.canonical());
    Timestamp ts = dmg.last_failure_ts;
    machine.on_parse_failures(ts, iec104::FailureKind::kGarbage, dmg.garbage);
    machine.on_parse_failures(ts, iec104::FailureKind::kUndecodable, dmg.undecodable);
    machine.on_parse_failures(ts, iec104::FailureKind::kTruncatedTail, dmg.truncated);
    // Oversized frames are already inside one of the above kind counters;
    // this call only adds their hostile-severity classification.
    machine.on_parse_failures(ts, iec104::FailureKind::kUndecodable, 0, dmg.oversized);
  }

  // Aggregate per endpoint pair: counts sum, the verdict is the worst
  // verdict of any single flow (summing warn scores across flows would
  // punish a pair for reconnecting often).
  std::map<EndpointPair, ConnectionConformance> pairs;
  for (const auto& [key, machine] : machines) {
    auto pair_key = EndpointPair::of(key.src_ip, key.dst_ip);
    auto& entry = pairs[pair_key];
    entry.pair = pair_key;
    entry.verdict = std::max(entry.verdict, machine.verdict());
    merge_profile(entry.profile, machine.profile());
    ++entry.flows;
  }

  ConformanceReport report;
  for (auto& [pair_key, entry] : pairs) {
    switch (entry.verdict) {
      case iec104::Verdict::kClean: ++report.clean_connections; break;
      case iec104::Verdict::kLegacy: ++report.legacy_connections; break;
      case iec104::Verdict::kSuspect: ++report.suspect_connections; break;
      case iec104::Verdict::kHostile: ++report.hostile_connections; break;
    }
    report.hostile_events += entry.profile.hostile_events;
    report.entries.push_back(std::move(entry));
  }
  return report;
}

}  // namespace uncharted::analysis
