// Physical-measurement deep packet inspection (§6.4, Figs 18-21): extract
// per-IOA time series from I-format payloads, rank them by normalized
// variance to surface "interesting" events, correlate AGC set points with
// generator response, and match the generator-synchronization signature
// state machine of Fig 21.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "analysis/dataset.hpp"
#include "util/timebase.hpp"

namespace uncharted::analysis {

/// Identifies one telemetry point: outstation IP + IOA.
struct SeriesKey {
  net::Ipv4Addr station;
  std::uint32_t ioa = 0;
  auto operator<=>(const SeriesKey&) const = default;
  std::string str() const { return station.str() + "#" + std::to_string(ioa); }
};

struct SeriesPoint {
  Timestamp ts;
  double value;
};

struct TimeSeries {
  std::uint8_t type_id = 0;  ///< ASDU type carrying it
  std::vector<SeriesPoint> points;

  double min_value() const;
  double max_value() const;
};

/// All numeric monitor-direction series in the capture.
std::map<SeriesKey, TimeSeries> extract_time_series(const CaptureDataset& dataset);

/// Set-point commands (I50 C_SE_NC act) addressed to each station.
std::map<net::Ipv4Addr, TimeSeries> extract_setpoint_series(const CaptureDataset& dataset);

/// Normalized-variance ranking: series whose variation is largest relative
/// to their mean — the paper's screen for "interesting" events.
struct VarianceRank {
  SeriesKey key;
  std::uint8_t type_id = 0;
  double normalized_variance = 0.0;
  std::size_t samples = 0;
};
std::vector<VarianceRank> rank_by_normalized_variance(
    const std::map<SeriesKey, TimeSeries>& series, std::size_t min_samples = 8);

/// Fig 21 signature: the legal generator-activation sequence.
enum class SignatureState {
  kIdle,          ///< V ~ 0, P ~ 0, status open/intermediate
  kVoltageRamp,   ///< V rising towards nominal, P still ~0
  kSynchronized,  ///< V at nominal, P ~ 0, breaker still open
  kBreakerClosed, ///< status -> 2
  kPowerRamp,     ///< P rising after breaker close
};

std::string signature_state_name(SignatureState s);

/// Detected generator-activation event.
struct GeneratorActivation {
  bool complete = false;       ///< full legal sequence observed in order
  Timestamp voltage_ramp_at = 0;
  Timestamp synchronized_at = 0;
  Timestamp breaker_closed_at = 0;
  Timestamp power_ramp_at = 0;
  std::vector<SignatureState> trajectory;
};

/// Runs the Fig 21 state machine over one station's voltage, breaker-status
/// and active-power series. `nominal_kv` is the expected plateau.
GeneratorActivation detect_generator_activation(const TimeSeries& voltage,
                                                const TimeSeries& status,
                                                const TimeSeries& power,
                                                double nominal_kv = 130.0);

/// Fig 19: correlation between AGC set points and a generator's measured
/// output (Pearson r of setpoint vs the power value `lag_s` later).
double setpoint_response_correlation(const TimeSeries& setpoints, const TimeSeries& power,
                                     double lag_s = 8.0);

/// Simple step detection: largest absolute jump between consecutive
/// samples, for flagging events like the Fig 18 voltage jump 0 -> 120 kV.
struct StepEvent {
  Timestamp at = 0;
  double delta = 0.0;
};
std::optional<StepEvent> largest_step(const TimeSeries& series);

}  // namespace uncharted::analysis
