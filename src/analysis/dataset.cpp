#include "analysis/dataset.hpp"

#include <algorithm>
#include <set>

namespace uncharted::analysis {

EndpointPair EndpointPair::of(net::Ipv4Addr x, net::Ipv4Addr y) {
  if (y < x) std::swap(x, y);
  return EndpointPair{x, y};
}

namespace {

/// Per-directed-flow parse health, for the quarantine decision.
struct FlowHealth {
  std::uint64_t apdus = 0;
  std::uint64_t failures = 0;
};

}  // namespace

CaptureDataset CaptureDataset::build(const std::vector<net::CapturedPacket>& packets,
                                     const Options& options) {
  CaptureDataset ds;
  auto& deg = ds.stats_.degradation;

  // One stream parser per directed 4-tuple keeps APDU framing correct even
  // when APDUs straddle segment boundaries or ports are reused.
  std::map<net::FlowKey, iec104::ApduStreamParser> parsers;
  auto parser_for = [&](const net::FlowKey& key) -> iec104::ApduStreamParser& {
    auto it = parsers.find(key);
    if (it == parsers.end()) {
      it = parsers.emplace(key, iec104::ApduStreamParser(options.parser_mode)).first;
    }
    return it->second;
  };

  std::map<net::FlowKey, FlowHealth> health;

  // Accounts everything a parser produced since the last visit: new APDUs
  // become records, new failures feed the degradation taxonomy.
  auto collect = [&](const net::FlowKey& key, iec104::ApduStreamParser& parser,
                     std::size_t apdus_before, std::size_t failures_before) {
    auto& h = health[key];
    for (std::size_t i = failures_before; i < parser.failures().size(); ++i) {
      const auto& f = parser.failures()[i];
      ++ds.stats_.apdu_failures;
      ++h.failures;
      switch (f.kind) {
        case iec104::FailureKind::kGarbage:
          ++deg.parser_resyncs;
          deg.garbage_bytes += f.raw.size();
          break;
        case iec104::FailureKind::kUndecodable:
          ++deg.undecodable_apdus;
          break;
        case iec104::FailureKind::kTruncatedTail:
          deg.truncated_tail_bytes += f.raw.size();
          break;
      }
    }
    for (std::size_t i = apdus_before; i < parser.apdus().size(); ++i) {
      ApduRecord rec;
      rec.ts = parser.apdus()[i].ts;
      rec.flow = key;
      rec.apdu = parser.apdus()[i];
      ds.records_.push_back(std::move(rec));
      ++h.apdus;
    }
  };

  auto ingest = [&](const net::FlowKey& key, Timestamp ts,
                    std::span<const std::uint8_t> payload) {
    auto& parser = parser_for(key);
    std::size_t apdus_before = parser.apdus().size();
    std::size_t failures_before = parser.failures().size();
    parser.feed(ts, payload);
    collect(key, parser, apdus_before, failures_before);
  };

  std::optional<net::TcpReassembler> reassembler;
  if (options.mode == ParseMode::kReassembled) {
    reassembler.emplace(
        [&](const net::FlowKey& key, const net::StreamChunk& chunk) {
          ingest(key, chunk.ts, chunk.data);
        },
        options.reassembly_limits);
  }

  Timestamp last_ts = 0;
  for (const auto& pkt : packets) {
    ++ds.stats_.packets;
    last_ts = pkt.ts;
    auto frame = net::decode_frame(pkt.data);
    if (!frame) {
      ++ds.stats_.undecodable_frames;
      ++deg.undecodable_frames;
      continue;
    }
    ++ds.stats_.tcp_packets;
    ds.flows_.add(pkt.ts, frame.value());

    bool is_iec104 = frame->tcp.src_port == options.iec104_port ||
                     frame->tcp.dst_port == options.iec104_port;
    if (!is_iec104) {
      auto on_port = [&](std::uint16_t port) {
        return frame->tcp.src_port == port || frame->tcp.dst_port == port;
      };
      if (on_port(4712)) {
        ++ds.stats_.c37118_packets;
      } else if (on_port(102)) {
        ++ds.stats_.iccp_packets;
      } else {
        ++ds.stats_.other_tcp_packets;
      }
      continue;
    }

    if (options.mode == ParseMode::kReassembled) {
      reassembler->add(pkt.ts, frame.value());
    } else if (!frame->payload.empty()) {
      ++ds.stats_.iec104_payload_packets;
      net::FlowKey key{frame->ip.src, frame->tcp.src_port, frame->ip.dst,
                       frame->tcp.dst_port};
      // Per-packet mode: each payload parsed independently (fresh framing),
      // matching the paper's per-packet SCAPY pipeline. An APDU cut off by
      // the packet boundary is a truncated tail, not silence.
      iec104::ApduStreamParser packet_parser(options.parser_mode);
      packet_parser.feed(pkt.ts, frame->payload);
      packet_parser.finish(pkt.ts);
      collect(key, packet_parser, 0, 0);
    }
  }

  if (reassembler) {
    // End of capture: abandon outstanding holes, deliver what is behind
    // them, then account the partial tails left in the stream parsers.
    reassembler->flush(last_ts);
    ds.stats_.tcp_retransmissions = reassembler->retransmitted_segments();
    auto totals = reassembler->totals();
    deg.reassembly_gaps += totals.gaps_skipped;
    deg.reassembly_lost_bytes += totals.lost_bytes;
    deg.overlapping_segments += totals.overlapping_segments;
    deg.aborted_streams += totals.aborted_with_pending;
    deg.wild_segments += totals.wild_segments;
    for (auto& [key, parser] : parsers) {
      std::size_t apdus_before = parser.apdus().size();
      std::size_t failures_before = parser.failures().size();
      parser.finish(last_ts);
      collect(key, parser, apdus_before, failures_before);
    }
  }

  // Quarantine: a directed stream drowning in parse failures is producing
  // mis-decoded APDUs, not telemetry. Drop its records so one poisoned
  // stream cannot skew the report, and say so in the counters.
  if (options.quarantine_failure_threshold > 0) {
    std::set<net::FlowKey> quarantined;
    for (const auto& [key, h] : health) {
      if (h.failures >= options.quarantine_failure_threshold && h.failures > h.apdus) {
        quarantined.insert(key);
      }
    }
    if (!quarantined.empty()) {
      auto dropped = std::erase_if(ds.records_, [&](const ApduRecord& rec) {
        return quarantined.count(rec.flow) != 0;
      });
      deg.quarantined_apdus += dropped;
      deg.quarantined_connections += quarantined.size();
      ds.quarantined_.assign(quarantined.begin(), quarantined.end());
    }
  }

  // Per-packet mode appends in packet order which is already time order;
  // reassembled mode can deliver chunks out of order across flows.
  std::stable_sort(ds.records_.begin(), ds.records_.end(),
                   [](const ApduRecord& a, const ApduRecord& b) { return a.ts < b.ts; });

  for (std::size_t i = 0; i < ds.records_.size(); ++i) {
    const auto& rec = ds.records_[i];
    ++ds.stats_.apdus;
    if (!rec.apdu.compliant) ++ds.stats_.non_compliant_apdus;
    ds.sessions_[{rec.flow.src_ip, rec.flow.dst_ip}].push_back(i);
    ds.connections_[EndpointPair::of(rec.flow.src_ip, rec.flow.dst_ip)].push_back(i);

    if (rec.apdu.apdu.format == iec104::ApduFormat::kI) {
      // Attribute to the outstation (the IEC 104 port owner): a vendor
      // server configured for a legacy RTU mirrors its dialect, but the
      // paper's compliance finding is about the device, not the direction.
      net::Ipv4Addr station = rec.flow.src_port == options.iec104_port
                                  ? rec.flow.src_ip
                                  : rec.flow.dst_ip;
      auto& entry = ds.compliance_[station];
      ++entry.i_apdus;
      if (!rec.apdu.compliant) {
        ++entry.non_compliant;
        entry.profile = rec.apdu.profile;
      }
    }
  }

  return ds;
}

}  // namespace uncharted::analysis
