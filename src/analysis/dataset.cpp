#include "analysis/dataset.hpp"

#include <algorithm>

namespace uncharted::analysis {

EndpointPair EndpointPair::of(net::Ipv4Addr x, net::Ipv4Addr y) {
  if (y < x) std::swap(x, y);
  return EndpointPair{x, y};
}

CaptureDataset CaptureDataset::build(const std::vector<net::CapturedPacket>& packets,
                                     const Options& options) {
  CaptureDataset ds;

  // One stream parser per directed 4-tuple keeps APDU framing correct even
  // when APDUs straddle segment boundaries or ports are reused.
  std::map<net::FlowKey, iec104::ApduStreamParser> parsers;
  auto parser_for = [&](const net::FlowKey& key) -> iec104::ApduStreamParser& {
    auto it = parsers.find(key);
    if (it == parsers.end()) {
      it = parsers.emplace(key, iec104::ApduStreamParser(options.parser_mode)).first;
    }
    return it->second;
  };

  auto ingest = [&](const net::FlowKey& key, Timestamp ts,
                    std::span<const std::uint8_t> payload) {
    auto& parser = parser_for(key);
    std::size_t before = parser.apdus().size();
    std::size_t fail_before = parser.failures().size();
    parser.feed(ts, payload);
    ds.stats_.apdu_failures += parser.failures().size() - fail_before;
    for (std::size_t i = before; i < parser.apdus().size(); ++i) {
      ApduRecord rec;
      rec.ts = parser.apdus()[i].ts;
      rec.flow = key;
      rec.apdu = parser.apdus()[i];
      ds.records_.push_back(std::move(rec));
    }
  };

  std::optional<net::TcpReassembler> reassembler;
  if (options.mode == ParseMode::kReassembled) {
    reassembler.emplace([&](const net::FlowKey& key, const net::StreamChunk& chunk) {
      ingest(key, chunk.ts, chunk.data);
    });
  }

  for (const auto& pkt : packets) {
    ++ds.stats_.packets;
    auto frame = net::decode_frame(pkt.data);
    if (!frame) {
      ++ds.stats_.undecodable_frames;
      continue;
    }
    ++ds.stats_.tcp_packets;
    ds.flows_.add(pkt.ts, frame.value());

    bool is_iec104 = frame->tcp.src_port == options.iec104_port ||
                     frame->tcp.dst_port == options.iec104_port;
    if (!is_iec104) {
      auto on_port = [&](std::uint16_t port) {
        return frame->tcp.src_port == port || frame->tcp.dst_port == port;
      };
      if (on_port(4712)) {
        ++ds.stats_.c37118_packets;
      } else if (on_port(102)) {
        ++ds.stats_.iccp_packets;
      } else {
        ++ds.stats_.other_tcp_packets;
      }
      continue;
    }

    if (options.mode == ParseMode::kReassembled) {
      reassembler->add(pkt.ts, frame.value());
    } else if (!frame->payload.empty()) {
      ++ds.stats_.iec104_payload_packets;
      net::FlowKey key{frame->ip.src, frame->tcp.src_port, frame->ip.dst,
                       frame->tcp.dst_port};
      // Per-packet mode: each payload parsed independently (fresh framing),
      // matching the paper's per-packet SCAPY pipeline.
      iec104::ApduStreamParser packet_parser(options.parser_mode);
      packet_parser.feed(pkt.ts, frame->payload);
      ds.stats_.apdu_failures += packet_parser.failures().size();
      for (const auto& parsed : packet_parser.apdus()) {
        ApduRecord rec;
        rec.ts = parsed.ts;
        rec.flow = key;
        rec.apdu = parsed;
        ds.records_.push_back(std::move(rec));
      }
    }
  }

  if (reassembler) {
    ds.stats_.tcp_retransmissions = reassembler->retransmitted_segments();
  }

  // Per-packet mode appends in packet order which is already time order;
  // reassembled mode can deliver chunks out of order across flows.
  std::stable_sort(ds.records_.begin(), ds.records_.end(),
                   [](const ApduRecord& a, const ApduRecord& b) { return a.ts < b.ts; });

  for (std::size_t i = 0; i < ds.records_.size(); ++i) {
    const auto& rec = ds.records_[i];
    ++ds.stats_.apdus;
    if (!rec.apdu.compliant) ++ds.stats_.non_compliant_apdus;
    ds.sessions_[{rec.flow.src_ip, rec.flow.dst_ip}].push_back(i);
    ds.connections_[EndpointPair::of(rec.flow.src_ip, rec.flow.dst_ip)].push_back(i);

    if (rec.apdu.apdu.format == iec104::ApduFormat::kI) {
      // Attribute to the outstation (the IEC 104 port owner): a vendor
      // server configured for a legacy RTU mirrors its dialect, but the
      // paper's compliance finding is about the device, not the direction.
      net::Ipv4Addr station = rec.flow.src_port == options.iec104_port
                                  ? rec.flow.src_ip
                                  : rec.flow.dst_ip;
      auto& entry = ds.compliance_[station];
      ++entry.i_apdus;
      if (!rec.apdu.compliant) {
        ++entry.non_compliant;
        entry.profile = rec.apdu.profile;
      }
    }
  }

  return ds;
}

}  // namespace uncharted::analysis
