#include "analysis/dataset.hpp"

#include <algorithm>
#include <array>
#include <numeric>
#include <set>

namespace uncharted::analysis {

EndpointPair EndpointPair::of(net::Ipv4Addr x, net::Ipv4Addr y) {
  if (y < x) std::swap(x, y);
  return EndpointPair{x, y};
}

CaptureDataset CaptureDataset::build(const std::vector<net::CapturedPacket>& packets,
                                     const Options& options) {
  DatasetBuilder builder(options);
  for (const auto& pkt : packets) builder.add_packet(pkt);
  return builder.finish();
}

CaptureDataset CaptureDataset::build(std::span<const net::FrameView> frames,
                                     const Options& options) {
  DatasetBuilder builder(options);
  builder.add_packets(frames);
  return builder.finish();
}

DatasetBuilder::DatasetBuilder(CaptureDataset::Options options,
                               ResourceBudgets budgets)
    : options_(options),
      budgets_(budgets),
      record_arena_(std::make_shared<util::RecordArena>()),
      packet_parser_(options.parser_mode) {
  packet_parser_.set_arena(record_arena_->resource());
  if (options_.mode == ParseMode::kReassembled) {
    reassembler_.emplace(
        [this](const net::FlowKey& key, Timestamp ts,
               std::span<const std::uint8_t> data) { ingest(key, ts, data); },
        options_.reassembly_limits);
  }
}

iec104::ApduStreamParser& DatasetBuilder::parser_for(const net::FlowKey& key) {
  auto it = parsers_.find(key);
  if (it == parsers_.end()) {
    it = parsers_.emplace(key, iec104::ApduStreamParser(options_.parser_mode)).first;
    it->second.set_arena(record_arena_->resource());
  }
  return it->second;
}

void DatasetBuilder::collect(const net::FlowKey& key,
                             std::vector<iec104::ParsedApdu>& apdus,
                             std::vector<iec104::ParseFailure>& failures) {
  auto& deg = stats_.degradation;
  std::uint64_t hash = net::flow_key_hash(key);
  FlowDamage* dmgp = damage_cache_.find(key, hash);
  if (dmgp == nullptr) {
    dmgp = &damage_[key];
    damage_cache_.put(key, hash, dmgp);
  }
  auto& dmg = *dmgp;
  for (const auto& f : failures) {
    ++stats_.apdu_failures;
    dmg.last_failure_ts = f.ts;
    // A framed 0x68 start whose length octet exceeds the 253-octet APDU
    // limit is its own damage class: no conforming implementation can emit
    // it, so the conformance audit scores it hostile rather than corrupt.
    if (f.raw.size() >= 2 && f.raw[0] == iec104::kStartByte &&
        f.raw[1] > iec104::kMaxApduLength) {
      ++dmg.oversized;
    }
    switch (f.kind) {
      case iec104::FailureKind::kGarbage:
        ++dmg.garbage;
        dmg.garbage_bytes += f.raw.size();
        ++deg.parser_resyncs;
        deg.garbage_bytes += f.raw.size();
        break;
      case iec104::FailureKind::kUndecodable:
        ++dmg.undecodable;
        ++deg.undecodable_apdus;
        break;
      case iec104::FailureKind::kTruncatedTail:
        ++dmg.truncated;
        deg.truncated_tail_bytes += f.raw.size();
        break;
    }
  }
  for (auto& parsed : apdus) {
    ApduRecord rec;
    rec.ts = parsed.ts;
    rec.flow = key;
    rec.seq = dmg.apdus;  // arrival index within this directed flow
    rec.apdu = std::move(parsed);
    records_.push_back(std::move(rec));
    ++dmg.apdus;
  }
  apdus.clear();
  failures.clear();
}

void DatasetBuilder::ingest(const net::FlowKey& key, Timestamp ts,
                            std::span<const std::uint8_t> payload) {
  auto& parser = parser_for(key);
  parser.feed(ts, payload);
  parser.drain(drained_apdus_, drained_failures_);
  collect(key, drained_apdus_, drained_failures_);
}

void DatasetBuilder::enforce_budgets() {
  if (budgets_.max_flow_entries > 0 &&
      flows_.connection_count() > budgets_.max_flow_entries) {
    pressure_.flow_evictions += flows_.evict_lru(budgets_.max_flow_entries);
  }
  if (reassembler_ && budgets_.max_reassembly_bytes > 0 &&
      reassembler_->pending_bytes() > budgets_.max_reassembly_bytes) {
    pressure_.reassembly_flushes +=
        reassembler_->evict_pending(last_ts_, budgets_.max_reassembly_bytes);
  }
  if (budgets_.max_records > 0 && records_.size() > budgets_.max_records) {
    // Drop a quarter of the budget at once so the O(n) front erase
    // amortizes instead of firing on every subsequent packet.
    std::size_t target = budgets_.max_records - budgets_.max_records / 4;
    std::size_t drop = records_.size() - target;
    records_.erase(records_.begin(),
                   records_.begin() + static_cast<std::ptrdiff_t>(drop));
    pressure_.records_evicted += drop;
  }
  if (budgets_.max_parsers > 0 && parsers_.size() > budgets_.max_parsers) {
    // Idle parsers (no partial frame) carry only a locked profile: retire
    // them first. If that is not enough, retire buffering parsers too —
    // their partial frame becomes an accounted truncated tail.
    for (int pass = 0; pass < 2 && parsers_.size() > budgets_.max_parsers; ++pass) {
      for (auto it = parsers_.begin();
           it != parsers_.end() && parsers_.size() > budgets_.max_parsers;) {
        if (pass == 0 && it->second.buffered_bytes() > 0) {
          ++it;
          continue;
        }
        it->second.finish(last_ts_);
        it->second.drain(drained_apdus_, drained_failures_);
        collect(it->first, drained_apdus_, drained_failures_);
        it = parsers_.erase(it);
        ++pressure_.parsers_evicted;
      }
    }
  }

  // Peaks are sampled after enforcement: they are the post-governance
  // high-water marks, so an enforced budget is never reported as exceeded
  // by the one-packet transient that triggered the eviction.
  pressure_.peak_flow_entries =
      std::max<std::uint64_t>(pressure_.peak_flow_entries, flows_.connection_count());
  pressure_.peak_records =
      std::max<std::uint64_t>(pressure_.peak_records, records_.size());
  pressure_.peak_parsers =
      std::max<std::uint64_t>(pressure_.peak_parsers, parsers_.size());
  if (reassembler_) {
    pressure_.peak_reassembly_bytes = std::max<std::uint64_t>(
        pressure_.peak_reassembly_bytes, reassembler_->pending_bytes());
  }
}

void DatasetBuilder::add_packet_impl(Timestamp ts,
                                     std::span<const std::uint8_t> data) {
  ++packets_consumed_;
  ++stats_.packets;
  last_ts_ = ts;
  net::DecodedFrame frame_storage;
  if (!net::decode_frame_into(data, frame_storage)) {
    ++stats_.undecodable_frames;
    ++stats_.degradation.undecodable_frames;
    return;
  }
  const net::DecodedFrame* frame = &frame_storage;
  ++stats_.tcp_packets;
  flows_.add(ts, *frame);

  bool is_iec104 = frame->tcp.src_port == options_.iec104_port ||
                   frame->tcp.dst_port == options_.iec104_port;
  if (!is_iec104) {
    auto on_port = [&](std::uint16_t port) {
      return frame->tcp.src_port == port || frame->tcp.dst_port == port;
    };
    if (on_port(4712)) {
      ++stats_.c37118_packets;
    } else if (on_port(102)) {
      ++stats_.iccp_packets;
    } else {
      ++stats_.other_tcp_packets;
    }
    return;
  }

  if (options_.mode == ParseMode::kReassembled) {
    reassembler_->add(ts, *frame);
  } else if (!frame->payload.empty()) {
    ++stats_.iec104_payload_packets;
    net::FlowKey key{frame->ip.src, frame->tcp.src_port, frame->ip.dst,
                     frame->tcp.dst_port};
    // Per-packet mode: each payload parsed independently (fresh framing),
    // matching the paper's per-packet SCAPY pipeline. An APDU cut off by
    // the packet boundary is a truncated tail, not silence. The scratch
    // parser is reset, not reconstructed: same semantics, no allocation.
    packet_parser_.reset_stream();
    packet_parser_.feed(ts, frame->payload);
    packet_parser_.finish(ts);
    packet_parser_.drain(drained_apdus_, drained_failures_);
    collect(key, drained_apdus_, drained_failures_);
  }
}

void DatasetBuilder::add_packet(Timestamp ts, std::span<const std::uint8_t> data) {
  add_packet_impl(ts, data);
  enforce_budgets();
}

void DatasetBuilder::add_packets(std::span<const net::FrameView> frames) {
  if (!budgets_.unlimited()) {
    // Budgets in play: enforcement has to see every packet boundary, or
    // eviction timing would depend on the driver's batch size.
    for (const auto& frame : frames) {
      add_packet_impl(frame.ts, frame.data);
      enforce_budgets();
    }
    return;
  }
  // Unlimited budgets: no enforcement branch can fire, so enforce_budgets
  // degenerates to peak sampling. Flows, records and parsers only grow
  // within a batch, so end-of-batch sampling observes their true peaks;
  // only the (unbudgeted) reassembly transient can be sampled lower.
  for (const auto& frame : frames) add_packet_impl(frame.ts, frame.data);
  enforce_budgets();
}

ShardPartial DatasetBuilder::finish_partial(Timestamp flush_ts) {
  ShardPartial part;

  if (reassembler_) {
    // End of capture: abandon outstanding holes, deliver what is behind
    // them, then account the partial tails left in the stream parsers.
    reassembler_->flush(flush_ts);
    stats_.tcp_retransmissions = reassembler_->retransmitted_segments();
    auto totals = reassembler_->totals();
    auto& deg = stats_.degradation;
    deg.reassembly_gaps += totals.gaps_skipped;
    deg.reassembly_lost_bytes += totals.lost_bytes;
    deg.overlapping_segments += totals.overlapping_segments;
    deg.aborted_streams += totals.aborted_with_pending;
    deg.wild_segments += totals.wild_segments;
    for (auto& [key, parser] : parsers_) {
      parser.finish(flush_ts);
      parser.drain(drained_apdus_, drained_failures_);
      collect(key, drained_apdus_, drained_failures_);
    }
  }

  // Quarantine: a directed stream drowning in parse failures is producing
  // mis-decoded APDUs, not telemetry. The policy scores each failure kind
  // by severity; streams crossing the threshold are dropped so one
  // poisoned stream cannot skew the report, and the counters say so. The
  // decision reads only this stream's own damage, so applying it per shard
  // is identical to applying it globally.
  {
    const auto& policy = options_.quarantine;
    std::set<net::FlowKey> quarantined;
    for (const auto& [key, dmg] : damage_) {
      double score =
          policy.score(dmg.garbage, dmg.undecodable, dmg.truncated, dmg.oversized);
      if (policy.should_quarantine(score, dmg.failures(), dmg.apdus)) {
        quarantined.insert(key);
      }
    }
    if (!quarantined.empty()) {
      auto dropped = std::erase_if(records_, [&](const ApduRecord& rec) {
        return quarantined.count(rec.flow) != 0;
      });
      stats_.degradation.quarantined_apdus += dropped;
      stats_.degradation.quarantined_connections += quarantined.size();
      part.quarantined.assign(quarantined.begin(), quarantined.end());
    }
  }

  part.stats = stats_;
  part.flows = std::move(flows_);
  part.records = std::move(records_);
  part.damage = std::move(damage_);
  // Shared, not moved: the builder's parsers still point at the arena, and
  // the partial must keep it alive once the records leave the builder.
  part.arena = record_arena_;
  damage_cache_.invalidate();
  return part;
}

CaptureDataset DatasetBuilder::finish() {
  std::vector<ShardPartial> one;
  one.push_back(finish_partial(last_ts_));
  return merge_partials(std::move(one), options_);
}

namespace {

void sum_degradation(DegradationCounters& into, const DegradationCounters& from) {
  into.undecodable_frames += from.undecodable_frames;
  into.parser_resyncs += from.parser_resyncs;
  into.garbage_bytes += from.garbage_bytes;
  into.undecodable_apdus += from.undecodable_apdus;
  into.truncated_tail_bytes += from.truncated_tail_bytes;
  into.reassembly_gaps += from.reassembly_gaps;
  into.reassembly_lost_bytes += from.reassembly_lost_bytes;
  into.overlapping_segments += from.overlapping_segments;
  into.aborted_streams += from.aborted_streams;
  into.wild_segments += from.wild_segments;
  into.quarantined_connections += from.quarantined_connections;
  into.quarantined_apdus += from.quarantined_apdus;
}

void sum_stats(DatasetStats& into, const DatasetStats& from) {
  into.packets += from.packets;
  into.tcp_packets += from.tcp_packets;
  into.undecodable_frames += from.undecodable_frames;
  into.iec104_payload_packets += from.iec104_payload_packets;
  into.apdus += from.apdus;
  into.apdu_failures += from.apdu_failures;
  into.c37118_packets += from.c37118_packets;
  into.iccp_packets += from.iccp_packets;
  into.other_tcp_packets += from.other_tcp_packets;
  into.non_compliant_apdus += from.non_compliant_apdus;
  into.tcp_retransmissions += from.tcp_retransmissions;
  sum_degradation(into.degradation, from.degradation);
}

}  // namespace

CaptureDataset merge_partials(std::vector<ShardPartial> partials,
                              const CaptureDataset::Options& options) {
  CaptureDataset ds;

  std::size_t total_records = 0;
  std::size_t total_quarantined = 0;
  for (const auto& part : partials) {
    total_records += part.records.size();
    total_quarantined += part.quarantined.size();
  }
  ds.quarantined_.reserve(total_quarantined);

  for (auto& part : partials) {
    sum_stats(ds.stats_, part.stats);
    if (part.arena) ds.arenas_.push_back(std::move(part.arena));
    ds.flows_.merge(std::move(part.flows));
    if (&part == &partials.front()) {
      // First (or only) partial: adopt the vector wholesale. At
      // --threads 1 this elides the element-wise move of every record.
      ds.records_ = std::move(part.records);
      ds.records_.reserve(total_records);
    } else {
      std::move(part.records.begin(), part.records.end(),
                std::back_inserter(ds.records_));
    }
    ds.quarantined_.insert(ds.quarantined_.end(), part.quarantined.begin(),
                           part.quarantined.end());
    // Directed flows are shard-affine, so damage maps are disjoint.
    ds.damage_.merge(std::move(part.damage));
  }
  std::sort(ds.quarantined_.begin(), ds.quarantined_.end());

  // Canonical record order: (ts, flow, per-flow seq). A strict total order
  // — no two records share all three — so the merged sequence is the same
  // no matter how the records were distributed across partials, and the
  // single-shard case reproduces it too. The sort runs over a u32
  // permutation so each fat record (owning a parsed ASDU) is moved exactly
  // once when the permutation is applied, not O(n log n) times inside the
  // sort.
  std::vector<std::uint32_t> order(ds.records_.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t ia, std::uint32_t ib) {
                     const ApduRecord& a = ds.records_[ia];
                     const ApduRecord& b = ds.records_[ib];
                     if (a.ts != b.ts) return a.ts < b.ts;
                     if (!(a.flow == b.flow)) return a.flow < b.flow;
                     return a.seq < b.seq;
                   });
  std::vector<ApduRecord> sorted;
  sorted.reserve(ds.records_.size());
  for (std::uint32_t idx : order) sorted.push_back(std::move(ds.records_[idx]));
  ds.records_ = std::move(sorted);

  // Hot columns are filled in the same pass that indexes sessions and
  // connections, so the SoA projection is exactly row-aligned with the
  // canonical record order.
  auto& cols = ds.columns_;
  cols.ts.reserve(ds.records_.size());
  cols.flow_index.reserve(ds.records_.size());
  cols.seq.reserve(ds.records_.size());
  cols.type_id.reserve(ds.records_.size());
  cols.wire_size.reserve(ds.records_.size());
  std::map<net::FlowKey, std::uint32_t> flow_ids;

  for (std::size_t i = 0; i < ds.records_.size(); ++i) {
    const auto& rec = ds.records_[i];
    ++ds.stats_.apdus;
    if (!rec.apdu.compliant) ++ds.stats_.non_compliant_apdus;
    ds.sessions_[{rec.flow.src_ip, rec.flow.dst_ip}].push_back(i);
    ds.connections_[EndpointPair::of(rec.flow.src_ip, rec.flow.dst_ip)].push_back(i);

    auto [fit, fresh] = flow_ids.try_emplace(
        rec.flow, static_cast<std::uint32_t>(ds.flow_keys_.size()));
    if (fresh) ds.flow_keys_.push_back(rec.flow);
    cols.ts.push_back(rec.ts);
    cols.flow_index.push_back(fit->second);
    cols.seq.push_back(rec.seq);
    cols.type_id.push_back(
        rec.apdu.apdu.format == iec104::ApduFormat::kI && rec.apdu.apdu.asdu
            ? static_cast<std::uint16_t>(rec.apdu.apdu.asdu->type)
            : CaptureDataset::kNoTypeId);
    cols.wire_size.push_back(static_cast<std::uint32_t>(rec.apdu.wire_size));

    if (rec.apdu.apdu.format == iec104::ApduFormat::kI) {
      // Attribute to the outstation (the IEC 104 port owner): a vendor
      // server configured for a legacy RTU mirrors its dialect, but the
      // paper's compliance finding is about the device, not the direction.
      net::Ipv4Addr station = rec.flow.src_port == options.iec104_port
                                  ? rec.flow.src_ip
                                  : rec.flow.dst_ip;
      auto& entry = ds.compliance_[station];
      ++entry.i_apdus;
      if (!rec.apdu.compliant) {
        ++entry.non_compliant;
        entry.profile = rec.apdu.profile;
      }
    }
  }

  return ds;
}

namespace {

void save_counters(ByteWriter& w, const DegradationCounters& d) {
  w.u64le(d.undecodable_frames);
  w.u64le(d.parser_resyncs);
  w.u64le(d.garbage_bytes);
  w.u64le(d.undecodable_apdus);
  w.u64le(d.truncated_tail_bytes);
  w.u64le(d.reassembly_gaps);
  w.u64le(d.reassembly_lost_bytes);
  w.u64le(d.overlapping_segments);
  w.u64le(d.aborted_streams);
  w.u64le(d.wild_segments);
  w.u64le(d.quarantined_connections);
  w.u64le(d.quarantined_apdus);
}

Status load_counters(ByteReader& r, DegradationCounters& d) {
  std::array<std::uint64_t*, 12> fields = {
      &d.undecodable_frames,   &d.parser_resyncs,
      &d.garbage_bytes,        &d.undecodable_apdus,
      &d.truncated_tail_bytes, &d.reassembly_gaps,
      &d.reassembly_lost_bytes, &d.overlapping_segments,
      &d.aborted_streams,      &d.wild_segments,
      &d.quarantined_connections, &d.quarantined_apdus};
  for (auto* field : fields) {
    auto v = r.u64le();
    if (!v) return v.error();
    *field = v.value();
  }
  return Status::Ok();
}

void save_stats(ByteWriter& w, const DatasetStats& s) {
  w.u64le(s.packets);
  w.u64le(s.tcp_packets);
  w.u64le(s.undecodable_frames);
  w.u64le(s.iec104_payload_packets);
  w.u64le(s.apdus);
  w.u64le(s.apdu_failures);
  w.u64le(s.c37118_packets);
  w.u64le(s.iccp_packets);
  w.u64le(s.other_tcp_packets);
  w.u64le(s.non_compliant_apdus);
  w.u64le(s.tcp_retransmissions);
  save_counters(w, s.degradation);
}

Status load_stats(ByteReader& r, DatasetStats& s) {
  std::array<std::uint64_t*, 11> fields = {
      &s.packets,         &s.tcp_packets,        &s.undecodable_frames,
      &s.iec104_payload_packets, &s.apdus,       &s.apdu_failures,
      &s.c37118_packets,  &s.iccp_packets,       &s.other_tcp_packets,
      &s.non_compliant_apdus, &s.tcp_retransmissions};
  for (auto* field : fields) {
    auto v = r.u64le();
    if (!v) return v.error();
    *field = v.value();
  }
  return load_counters(r, s.degradation);
}

void save_profile(ByteWriter& w, const iec104::CodecProfile& p) {
  w.u8(static_cast<std::uint8_t>(p.cot_octets));
  w.u8(static_cast<std::uint8_t>(p.ioa_octets));
  w.u8(static_cast<std::uint8_t>(p.ca_octets));
}

Result<iec104::CodecProfile> load_profile(ByteReader& r) {
  auto cot = r.u8();
  auto ioa = r.u8();
  auto ca = r.u8();
  if (!ca) return ca.error();
  return iec104::CodecProfile{cot.value(), ioa.value(), ca.value()};
}

}  // namespace

Status DatasetBuilder::save(ByteWriter& w) const {
  save_stats(w, stats_);
  pressure_.save(w);
  flows_.save(w);
  w.u64le(last_ts_);
  w.u64le(packets_consumed_);

  // APDU records travel re-encoded under their own codec profile. The
  // parser only accepts exact decodes, so encode(profile) round-trips.
  w.u32le(static_cast<std::uint32_t>(records_.size()));
  for (const auto& rec : records_) {
    w.u64le(rec.ts);
    rec.flow.save(w);
    w.u64le(rec.apdu.ts);
    save_profile(w, rec.apdu.profile);
    w.u8(rec.apdu.compliant ? 1 : 0);
    w.u32le(static_cast<std::uint32_t>(rec.apdu.wire_size));
    auto encoded = rec.apdu.apdu.encode(rec.apdu.profile);
    if (!encoded) return encoded.error();
    w.u32le(static_cast<std::uint32_t>(encoded->size()));
    w.bytes(*encoded);
  }

  w.u32le(static_cast<std::uint32_t>(parsers_.size()));
  for (const auto& [key, parser] : parsers_) {
    key.save(w);
    parser.save(w);
  }

  w.u32le(static_cast<std::uint32_t>(damage_.size()));
  for (const auto& [key, dmg] : damage_) {
    key.save(w);
    w.u64le(dmg.apdus);
    w.u64le(dmg.garbage);
    w.u64le(dmg.garbage_bytes);
    w.u64le(dmg.undecodable);
    w.u64le(dmg.truncated);
    w.u64le(dmg.oversized);
    w.u64le(dmg.last_failure_ts);
  }

  w.u8(reassembler_.has_value() ? 1 : 0);
  if (reassembler_) reassembler_->save(w);
  return Status::Ok();
}

Status DatasetBuilder::load(ByteReader& r) {
  if (auto st = load_stats(r, stats_); !st) return st;
  auto pressure = ResourcePressure::load(r);
  if (!pressure) return pressure.error();
  pressure_ = pressure.value();
  if (auto st = flows_.load(r); !st) return st;
  auto last_ts = r.u64le();
  auto consumed = r.u64le();
  if (!consumed) return consumed.error();
  last_ts_ = last_ts.value();
  packets_consumed_ = consumed.value();

  auto record_count = r.u32le();
  if (!record_count) return record_count.error();
  records_.clear();
  records_.reserve(record_count.value());
  for (std::uint32_t i = 0; i < record_count.value(); ++i) {
    ApduRecord rec;
    auto ts = r.u64le();
    if (!ts) return ts.error();
    rec.ts = ts.value();
    auto flow = net::FlowKey::load(r);
    if (!flow) return flow.error();
    rec.flow = flow.value();
    auto apdu_ts = r.u64le();
    if (!apdu_ts) return apdu_ts.error();
    rec.apdu.ts = apdu_ts.value();
    auto profile = load_profile(r);
    if (!profile) return profile.error();
    rec.apdu.profile = profile.value();
    auto compliant = r.u8();
    auto wire_size = r.u32le();
    auto len = r.u32le();
    if (!len) return len.error();
    auto bytes = r.bytes(len.value());
    if (!bytes) return bytes.error();
    rec.apdu.compliant = compliant.value() != 0;
    rec.apdu.wire_size = wire_size.value();
    ByteReader apdu_reader(*bytes);
    auto apdu =
        iec104::decode_apdu(apdu_reader, rec.apdu.profile, record_arena_->resource());
    if (!apdu) return apdu.error();
    rec.apdu.apdu = std::move(apdu).take();
    records_.push_back(std::move(rec));
  }

  // seq is not serialized: records were saved in append order, so within
  // each flow that order IS the arrival order, and only the relative order
  // matters to the canonical (ts, flow, seq) comparator. Records collected
  // after the restore continue from the persisted damage counter, which is
  // >= any recomputed value here (it also counts budget-evicted records).
  {
    std::map<net::FlowKey, std::uint64_t> next_seq;
    for (auto& rec : records_) rec.seq = next_seq[rec.flow]++;
  }

  auto parser_count = r.u32le();
  if (!parser_count) return parser_count.error();
  parsers_.clear();
  for (std::uint32_t i = 0; i < parser_count.value(); ++i) {
    auto key = net::FlowKey::load(r);
    if (!key) return key.error();
    auto parser = iec104::ApduStreamParser::load(r);
    if (!parser) return parser.error();
    auto [it, ok] = parsers_.emplace(key.value(), std::move(parser).take());
    // The arena is runtime configuration, not checkpoint state: re-point
    // every restored parser at this builder's arena.
    it->second.set_arena(record_arena_->resource());
  }

  auto damage_count = r.u32le();
  if (!damage_count) return damage_count.error();
  damage_cache_.invalidate();
  damage_.clear();
  for (std::uint32_t i = 0; i < damage_count.value(); ++i) {
    auto key = net::FlowKey::load(r);
    if (!key) return key.error();
    FlowDamage dmg;
    std::array<std::uint64_t*, 7> fields = {
        &dmg.apdus,     &dmg.garbage,   &dmg.garbage_bytes, &dmg.undecodable,
        &dmg.truncated, &dmg.oversized, &dmg.last_failure_ts};
    for (auto* field : fields) {
      auto v = r.u64le();
      if (!v) return v.error();
      *field = v.value();
    }
    damage_[key.value()] = dmg;
  }

  auto has_reassembler = r.u8();
  if (!has_reassembler) return has_reassembler.error();
  if (has_reassembler.value()) {
    if (!reassembler_) {
      return Error{"checkpoint-mode-mismatch",
                   "checkpoint has reassembler state but builder mode is per-packet"};
    }
    if (auto st = reassembler_->load(r); !st) return st;
  }
  return Status::Ok();
}

}  // namespace uncharted::analysis
