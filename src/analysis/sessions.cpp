#include "analysis/sessions.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "exec/pool.hpp"

namespace uncharted::analysis {

std::string feature_name(std::size_t index) {
  switch (index) {
    case kFeatDirection: return "direction";
    case kFeatMeanInterArrival: return "mean_interarrival";
    case kFeatStdInterArrival: return "std_interarrival";
    case kFeatTotalBytes: return "total_bytes";
    case kFeatPacketCount: return "num_packets";
    case kFeatMeanApduSize: return "mean_apdu_size";
    case kFeatPercentI: return "percent_I";
    case kFeatPercentS: return "percent_S";
    case kFeatPercentU: return "percent_U";
    case kFeatDistinctIoas: return "distinct_ioas";
  }
  return "feature_" + std::to_string(index);
}

std::vector<SessionFeatures> extract_session_features(const CaptureDataset& dataset,
                                                      exec::Pool* pool) {
  const auto& records = dataset.records();

  // Flatten the map so sessions can be processed by index; output order
  // stays the map's key order regardless of execution order.
  struct Item {
    const std::pair<net::Ipv4Addr, net::Ipv4Addr>* key;
    const std::vector<std::size_t>* indices;
  };
  std::vector<Item> items;
  items.reserve(dataset.sessions().size());
  for (const auto& [key, indices] : dataset.sessions()) {
    if (indices.empty()) continue;
    items.push_back(Item{&key, &indices});
  }

  auto featurize = [&records](const std::pair<net::Ipv4Addr, net::Ipv4Addr>& key,
                              const std::vector<std::size_t>& indices) {
    SessionFeatures sf;
    sf.src = key.first;
    sf.dst = key.second;
    sf.values.assign(kFeatureCount, 0.0);

    // Direction: the outstation owns the IEC 104 port, so a sender whose
    // flows target port 2404 is the control-server side.
    const auto& first = records[indices.front()];
    bool from_server = first.flow.dst_port == iec104::kIec104Port;
    sf.values[kFeatDirection] = from_server ? 1.0 : 0.0;

    double bytes = 0.0;
    std::size_t count_i = 0, count_s = 0, count_u = 0;
    std::set<std::uint32_t> ioas;
    double sum_dt = 0.0, sum_dt2 = 0.0;
    std::size_t dt_n = 0;
    Timestamp prev = 0;

    for (std::size_t idx : indices) {
      const auto& rec = records[idx];
      bytes += static_cast<double>(rec.apdu.wire_size);
      switch (rec.apdu.apdu.format) {
        case iec104::ApduFormat::kI: ++count_i; break;
        case iec104::ApduFormat::kS: ++count_s; break;
        case iec104::ApduFormat::kU: ++count_u; break;
      }
      if (rec.apdu.apdu.asdu) {
        for (const auto& obj : rec.apdu.apdu.asdu->objects) ioas.insert(obj.ioa);
      }
      if (prev != 0) {
        double dt = to_seconds(static_cast<DurationUs>(rec.ts - prev));
        sum_dt += dt;
        sum_dt2 += dt * dt;
        ++dt_n;
      }
      prev = rec.ts;
    }

    double n = static_cast<double>(indices.size());
    double mean_dt = dt_n ? sum_dt / static_cast<double>(dt_n) : 0.0;
    double var_dt = dt_n ? std::max(0.0, sum_dt2 / static_cast<double>(dt_n) -
                                             mean_dt * mean_dt)
                         : 0.0;
    sf.values[kFeatMeanInterArrival] = mean_dt;
    sf.values[kFeatStdInterArrival] = std::sqrt(var_dt);
    sf.values[kFeatTotalBytes] = bytes;
    sf.values[kFeatPacketCount] = n;
    sf.values[kFeatMeanApduSize] = bytes / n;
    sf.values[kFeatPercentI] = static_cast<double>(count_i) / n;
    sf.values[kFeatPercentS] = static_cast<double>(count_s) / n;
    sf.values[kFeatPercentU] = static_cast<double>(count_u) / n;
    sf.values[kFeatDistinctIoas] = static_cast<double>(ioas.size());
    return sf;
  };

  std::vector<SessionFeatures> out(items.size());
  exec::parallel_for(pool, items.size(), 8, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      out[i] = featurize(*items[i].key, *items[i].indices);
    }
  });
  return out;
}

std::vector<FeatureRank> rank_features_by_silhouette(
    const std::vector<SessionFeatures>& sessions, int k, exec::Pool* pool) {
  std::vector<FeatureRank> ranks;
  if (sessions.size() < static_cast<std::size_t>(k) + 1) return ranks;

  ranks.resize(kFeatureCount);
  KMeansOptions opts;
  opts.pool = pool;
  exec::TaskGroup group(pool);
  for (std::size_t f = 0; f < kFeatureCount; ++f) {
    group.run([&, f] {
      Matrix column;
      column.reserve(sessions.size());
      for (const auto& s : sessions) column.push_back({s.values[f]});
      Matrix standardized = standardize(column);
      auto result = kmeans(standardized, k, opts);
      ranks[f] = FeatureRank{f, silhouette_score(standardized, result.assignment, k)};
    });
  }
  group.wait();
  std::sort(ranks.begin(), ranks.end(),
            [](const FeatureRank& a, const FeatureRank& b) {
              return a.silhouette > b.silhouette;
            });
  return ranks;
}

std::vector<std::size_t> paper_feature_selection() {
  return {kFeatMeanInterArrival, kFeatPacketCount, kFeatPercentI, kFeatPercentS,
          kFeatPercentU};
}

SessionClustering cluster_sessions(const CaptureDataset& dataset, int force_k,
                                   exec::Pool* pool) {
  SessionClustering out;
  out.sessions = extract_session_features(dataset, pool);
  out.selected_features = paper_feature_selection();
  if (out.sessions.size() < 8) return out;

  Matrix selected;
  selected.reserve(out.sessions.size());
  for (const auto& s : out.sessions) {
    std::vector<double> row;
    row.reserve(out.selected_features.size());
    for (std::size_t f : out.selected_features) row.push_back(s.values[f]);
    selected.push_back(std::move(row));
  }
  Matrix standardized = standardize(selected);

  KMeansOptions opts;
  opts.pool = pool;
  int k_max = static_cast<int>(std::min<std::size_t>(8, out.sessions.size() - 1));
  out.k_sweep = sweep_k(standardized, 2, k_max, opts);
  out.chosen_k = force_k > 0 ? force_k : elbow_k(out.k_sweep);
  out.chosen_k = std::min<int>(out.chosen_k, static_cast<int>(out.sessions.size()));
  out.clustering = kmeans(standardized, out.chosen_k, opts);
  out.projection = pca(standardized, 2, pool);

  // Cluster profiles with heuristic interpretations (Fig 11 semantics).
  const int k = out.chosen_k;
  out.profiles.assign(static_cast<std::size_t>(k), {});
  for (int c = 0; c < k; ++c) out.profiles[static_cast<std::size_t>(c)].cluster = c;
  for (std::size_t i = 0; i < out.sessions.size(); ++i) {
    auto& p = out.profiles[static_cast<std::size_t>(out.clustering.assignment[i])];
    const auto& v = out.sessions[i].values;
    ++p.size;
    p.mean_inter_arrival += v[kFeatMeanInterArrival];
    p.mean_packets += v[kFeatPacketCount];
    p.pct_i += v[kFeatPercentI];
    p.pct_s += v[kFeatPercentS];
    p.pct_u += v[kFeatPercentU];
  }
  double max_dt = 0.0;
  int outlier_cluster = -1;
  for (auto& p : out.profiles) {
    if (p.size == 0) continue;
    double n = static_cast<double>(p.size);
    p.mean_inter_arrival /= n;
    p.mean_packets /= n;
    p.pct_i /= n;
    p.pct_s /= n;
    p.pct_u /= n;
    if (p.mean_inter_arrival > max_dt) {
      max_dt = p.mean_inter_arrival;
      outlier_cluster = p.cluster;
    }
  }
  for (auto& p : out.profiles) {
    if (p.size == 0) {
      p.interpretation = "empty";
    } else if (p.cluster == outlier_cluster) {
      p.interpretation = "outlier: extremely long inter-arrival times";
    } else if (p.pct_s > 0.8) {
      p.interpretation = "acknowledgements (S) from control servers";
    } else if (p.pct_u > 0.8) {
      p.interpretation = "keep-alive (U) backup connections";
    } else if (p.pct_i > 0.6 && p.mean_packets > 0) {
      p.interpretation = p.mean_inter_arrival < 3.0
                             ? "bulk I-format telemetry (spontaneous-heavy)"
                             : "regular I-format telemetry";
    } else {
      p.interpretation = "mixed";
    }
  }

  if (outlier_cluster >= 0) {
    for (std::size_t i = 0; i < out.sessions.size(); ++i) {
      if (out.clustering.assignment[i] == outlier_cluster) {
        out.outlier_sessions.push_back(&out.sessions[i]);
      }
    }
  }
  return out;
}

}  // namespace uncharted::analysis
