// Message-sequence models (§6.3.1): APDU tokenization (Table 4), bigram
// language models with MLE probabilities (Eq. 1-2), per-connection Markov
// chains, and the Fig 13 (nodes, edges) scatter with its three clusters:
// the (1,1) point (reset-backup connections), the "square" (ordinary
// chains) and the "ellipse" (chains containing the I100 interrogation).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "analysis/dataset.hpp"

namespace uncharted::exec {
class Pool;
}  // namespace uncharted::exec

namespace uncharted::analysis {

/// Paper Table 4 token for an APDU: "S", "U1".."U32", "I_<typeid>".
std::string apdu_token(const iec104::Apdu& apdu);

/// First-order Markov chain over tokens with MLE transition probabilities.
class MarkovChain {
 public:
  /// Builds from a token sequence; consecutive pairs become transitions.
  static MarkovChain from_tokens(const std::vector<std::string>& tokens);

  std::size_t node_count() const { return counts_.size(); }
  std::size_t edge_count() const;

  /// MLE P(next | current); 0 when the transition was never seen.
  double probability(const std::string& current, const std::string& next) const;

  /// Raw transition counts: counts[current][next].
  const std::map<std::string, std::map<std::string, std::uint64_t>>& counts() const {
    return counts_;
  }

  bool has_node(const std::string& token) const { return counts_.count(token) > 0; }

  /// True when the chain contains a self-loop on `token`.
  bool has_self_loop(const std::string& token) const;

  /// Multi-line "A -> B : p" rendering, probabilities in edge order.
  std::string str() const;

 private:
  // Every node has an entry (possibly with an empty successor map).
  std::map<std::string, std::map<std::string, std::uint64_t>> counts_;
  std::map<std::string, std::uint64_t> outgoing_totals_;
};

/// Bigram language model over many sequences (Eq. 1-2), with
/// log-probability scoring for whitelist-style anomaly detection.
class BigramModel {
 public:
  static constexpr const char* kStart = "<s>";
  static constexpr const char* kEnd = "</s>";

  void add_sequence(const std::vector<std::string>& tokens);

  /// MLE P(next | current) including start/end pseudo-tokens.
  double probability(const std::string& current, const std::string& next) const;

  /// Average log2-probability per transition; `floor` substitutes for
  /// unseen transitions (default: treat as probability 2^-20).
  double log2_score(const std::vector<std::string>& tokens, double floor_log2 = -20.0) const;

  /// A sequence is anomalous when it contains a transition never seen in
  /// training.
  bool contains_unseen_transition(const std::vector<std::string>& tokens) const;

  std::size_t vocabulary_size() const { return counts_.size(); }

 private:
  std::map<std::string, std::map<std::string, std::uint64_t>> counts_;
  std::map<std::string, std::uint64_t> totals_;
};

/// Fig 13 cluster labels.
enum class ChainCluster {
  kPoint11,  ///< one node, one edge: repeated unanswered U16
  kSquare,   ///< ordinary chains without interrogation
  kEllipse,  ///< chains containing the I100 interrogation command
};

std::string chain_cluster_name(ChainCluster c);

/// One connection's chain summary (a Fig 13 scatter point).
struct ConnectionChain {
  EndpointPair pair;
  MarkovChain chain;
  std::vector<std::string> tokens;
  std::size_t nodes = 0;
  std::size_t edges = 0;
  bool has_i100 = false;
  ChainCluster cluster = ChainCluster::kSquare;
};

/// Builds per-connection chains (tokens from both directions, time order).
/// Connections are independent; `pool` fans them out (inline when null),
/// output in connection-map order either way.
std::vector<ConnectionChain> build_connection_chains(const CaptureDataset& dataset,
                                                     exec::Pool* pool = nullptr);

}  // namespace uncharted::analysis
