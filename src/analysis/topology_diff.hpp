// Year-over-year topology comparison (Fig 6 / Table 2): which outstations
// appeared, disappeared, and how their IOA populations drifted.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/dataset.hpp"

namespace uncharted::analysis {

/// What one capture reveals about one outstation.
struct StationInventory {
  net::Ipv4Addr station;
  std::set<std::uint32_t> ioas;     ///< distinct IOAs observed in monitor data
  std::uint64_t apdus = 0;
};

/// Inventory of every outstation IP in a capture.
std::map<net::Ipv4Addr, StationInventory> station_inventory(const CaptureDataset& dataset);

enum class StationChange { kAdded, kRemoved, kMoreIoas, kFewerIoas, kUnchanged };

std::string station_change_name(StationChange c);

struct TopologyDiffEntry {
  net::Ipv4Addr station;
  StationChange change = StationChange::kUnchanged;
  std::size_t ioas_before = 0;
  std::size_t ioas_after = 0;
};

struct TopologyDiff {
  std::vector<TopologyDiffEntry> entries;
  std::size_t added = 0;
  std::size_t removed = 0;
  std::size_t more_ioas = 0;
  std::size_t fewer_ioas = 0;
  std::size_t unchanged = 0;
  /// Unchanged stations that actually report telemetry (IOAs > 0); pure
  /// keep-alive RTUs show 0 IOAs in both years and would otherwise count.
  std::size_t unchanged_reporting = 0;

  double unchanged_fraction() const {
    std::size_t total = entries.size();
    return total ? static_cast<double>(unchanged) / static_cast<double>(total) : 0.0;
  }
};

/// Compares two captures (e.g. Y1 vs Y2).
TopologyDiff diff_topology(const CaptureDataset& before, const CaptureDataset& after);

}  // namespace uncharted::analysis
