// Principal Component Analysis via cyclic Jacobi eigendecomposition of the
// covariance matrix — used to project session features to 2-D (Fig 10).
#pragma once

#include <vector>

#include "analysis/kmeans.hpp"  // Matrix

namespace uncharted::analysis {

struct PcaResult {
  std::vector<double> mean;                 ///< column means
  Matrix components;                        ///< rows: eigenvectors, desc. eigenvalue
  std::vector<double> eigenvalues;          ///< descending
  Matrix projected;                         ///< input projected onto `dims` components

  /// Fraction of variance captured by the first n components.
  double explained_by(std::size_t n) const;
};

/// Computes PCA of row-major data and projects onto the top `dims`
/// components. Requires at least 2 rows. The mean and covariance
/// accumulations run as fixed-grain chunked reductions (partials combined
/// in chunk order), so the result is bit-identical whether `pool` is null
/// or has any number of workers.
PcaResult pca(const Matrix& points, std::size_t dims, exec::Pool* pool = nullptr);

}  // namespace uncharted::analysis
