// Principal Component Analysis via cyclic Jacobi eigendecomposition of the
// covariance matrix — used to project session features to 2-D (Fig 10).
#pragma once

#include <vector>

#include "analysis/kmeans.hpp"  // Matrix

namespace uncharted::analysis {

struct PcaResult {
  std::vector<double> mean;                 ///< column means
  Matrix components;                        ///< rows: eigenvectors, desc. eigenvalue
  std::vector<double> eigenvalues;          ///< descending
  Matrix projected;                         ///< input projected onto `dims` components

  /// Fraction of variance captured by the first n components.
  double explained_by(std::size_t n) const;
};

/// Computes PCA of row-major data and projects onto the top `dims`
/// components. Requires at least 2 rows.
PcaResult pca(const Matrix& points, std::size_t dims);

}  // namespace uncharted::analysis
