#include "analysis/background.hpp"

#include <algorithm>

#include "net/frame.hpp"
#include "net/reassembly.hpp"

namespace uncharted::analysis {

namespace {

struct PmuAccumulator {
  PmuStreamSummary summary;
  std::vector<std::uint8_t> buffer;
  std::optional<synchro::ConfigFrame> config;
  Timestamp first_data = 0;
  Timestamp last_data = 0;
  double freq_dev_sum = 0.0;

  void feed(Timestamp ts, std::span<const std::uint8_t> data) {
    buffer.insert(buffer.end(), data.begin(), data.end());
    auto split = synchro::split_stream(buffer);
    for (const auto& frame_bytes : split.frames) {
      auto frame = synchro::decode_frame(frame_bytes, config ? &*config : nullptr);
      if (!frame) {
        // Data frames before the CFG-2 cannot be decoded; still count them.
        auto header = synchro::peek_header(frame_bytes);
        if (header && header->type == synchro::FrameType::kData) {
          note_data(ts, 0.0, false);
        } else {
          ++summary.bad_frames;
        }
        continue;
      }
      if (const auto* cfg = std::get_if<synchro::ConfigFrame>(&frame.value())) {
        config = *cfg;
        ++summary.config_frames;
        summary.configured_rate = cfg->data_rate;
        if (!cfg->pmus.empty()) {
          summary.idcode = cfg->pmus[0].idcode;
          summary.station_name = cfg->pmus[0].station_name;
          summary.channels = cfg->pmus[0].phasor_names;
        }
      } else if (const auto* d = std::get_if<synchro::DataFrame>(&frame.value())) {
        double dev = d->pmus.empty() ? 0.0 : d->pmus[0].freq_deviation_mhz;
        note_data(ts, dev, true);
      } else if (std::holds_alternative<synchro::CommandFrame>(frame.value())) {
        ++summary.command_frames;
      }
    }
    buffer.erase(buffer.begin(), buffer.begin() + static_cast<std::ptrdiff_t>(split.consumed));
  }

  void note_data(Timestamp ts, double dev, bool decoded) {
    ++summary.data_frames;
    if (decoded) freq_dev_sum += dev;
    if (first_data == 0) first_data = ts;
    last_data = std::max(last_data, ts);
  }

  void finalize() {
    if (summary.data_frames > 1 && last_data > first_data) {
      summary.measured_rate_fps = static_cast<double>(summary.data_frames - 1) /
                                  to_seconds(static_cast<DurationUs>(last_data - first_data));
    }
    if (summary.data_frames > 0) {
      summary.mean_freq_deviation_mhz =
          freq_dev_sum / static_cast<double>(summary.data_frames);
    }
  }
};

struct IccpAccumulator {
  IccpLinkSummary summary;
  std::vector<std::uint8_t> buffer;

  void feed(std::span<const std::uint8_t> data) {
    buffer.insert(buffer.end(), data.begin(), data.end());
    ByteReader r(buffer);
    std::size_t consumed = 0;
    while (true) {
      std::size_t before = r.position();
      auto msg = iccp::from_wire(r);
      if (!msg) {
        r.seek(before);
        break;
      }
      consumed = r.position();
      if (!msg->association_name.empty() &&
          std::find(summary.associations.begin(), summary.associations.end(),
                    msg->association_name) == summary.associations.end()) {
        summary.associations.push_back(msg->association_name);
      }
      switch (msg->type) {
        case iccp::MessageType::kAssociationRequest:
        case iccp::MessageType::kAssociationResponse:
          break;
        case iccp::MessageType::kInformationReport:
          ++summary.reports;
          break;
        case iccp::MessageType::kReadRequest:
        case iccp::MessageType::kReadResponse:
          ++summary.reads;
          break;
        case iccp::MessageType::kConclude:
          break;
      }
      summary.points += msg->points.size();
      for (const auto& p : msg->points) ++summary.point_names[p.name];
    }
    buffer.erase(buffer.begin(), buffer.begin() + static_cast<std::ptrdiff_t>(consumed));
  }
};

}  // namespace

BackgroundTraffic analyze_background(const std::vector<net::CapturedPacket>& packets) {
  BackgroundTraffic out;

  std::map<net::FlowKey, PmuAccumulator> pmu_dirs;
  std::map<std::pair<net::Ipv4Addr, net::Ipv4Addr>, IccpAccumulator> iccp_pairs;

  net::TcpReassembler reassembler([&](const net::FlowKey& key, Timestamp ts,
                                      std::span<const std::uint8_t> data) {
    if (key.dst_port == synchro::kC37118Port) {
      // PMU -> concentrator direction carries the frames.
      auto& acc = pmu_dirs[key];
      acc.summary.source = key.src_ip;
      acc.summary.sink = key.dst_ip;
      acc.feed(ts, data);
    } else if (key.src_port == iccp::kIsoTsapPort || key.dst_port == iccp::kIsoTsapPort) {
      net::Ipv4Addr a = key.src_ip, b = key.dst_ip;
      if (b < a) std::swap(a, b);
      auto& acc = iccp_pairs[std::make_pair(a, b)];
      acc.summary.a = a;
      acc.summary.b = b;
      acc.feed(data);
    }
  });

  for (const auto& pkt : packets) {
    auto frame = net::decode_frame(pkt.data);
    if (!frame) continue;
    bool c37 = frame->tcp.src_port == synchro::kC37118Port ||
               frame->tcp.dst_port == synchro::kC37118Port;
    bool iccp_port = frame->tcp.src_port == iccp::kIsoTsapPort ||
                     frame->tcp.dst_port == iccp::kIsoTsapPort;
    if (c37) ++out.c37118_packets;
    if (iccp_port) ++out.iccp_packets;
    if (c37 || iccp_port) reassembler.add(pkt.ts, frame.value());
  }

  for (auto& [key, acc] : pmu_dirs) {
    if (acc.summary.data_frames + acc.summary.config_frames == 0) continue;
    acc.finalize();
    out.pmu_streams.push_back(std::move(acc.summary));
  }
  for (auto& [key, acc] : iccp_pairs) {
    out.iccp_links.push_back(std::move(acc.summary));
  }
  return out;
}

}  // namespace uncharted::analysis
