#include "analysis/resource.hpp"

#include <array>

namespace uncharted::analysis {

void ResourcePressure::save(ByteWriter& w) const {
  w.u64le(flow_evictions);
  w.u64le(reassembly_flushes);
  w.u64le(records_evicted);
  w.u64le(parsers_evicted);
  w.u64le(peak_flow_entries);
  w.u64le(peak_reassembly_bytes);
  w.u64le(peak_records);
  w.u64le(peak_parsers);
}

Result<ResourcePressure> ResourcePressure::load(ByteReader& r) {
  ResourcePressure p;
  std::array<std::uint64_t*, 8> fields = {
      &p.flow_evictions, &p.reassembly_flushes, &p.records_evicted,
      &p.parsers_evicted, &p.peak_flow_entries, &p.peak_reassembly_bytes,
      &p.peak_records,    &p.peak_parsers};
  for (auto* field : fields) {
    auto v = r.u64le();
    if (!v) return v.error();
    *field = v.value();
  }
  return p;
}

}  // namespace uncharted::analysis
